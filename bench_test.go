// Benchmarks regenerating every table and figure of the paper's
// evaluation (§6), plus ablations for the design choices DESIGN.md calls
// out. Run with:
//
//	go test -bench=. -benchmem
//
// Each Figure 7 benchmark measures one full exhaustive exploration of the
// corresponding unit test (the paper's "Total Time" column); each
// Figure 8 benchmark measures one full injection sweep.
package main

import (
	"testing"
	"time"

	"repro/internal/checker"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/memmodel"
	"repro/internal/structures/blockingqueue"
	"repro/internal/structures/chaselev"
)

// benchFig7 runs one benchmark's exhaustive exploration per iteration.
func benchFig7(b *testing.B, name string) {
	bm := harness.BenchmarkByName(name)
	if bm == nil {
		b.Fatalf("unknown benchmark %q", name)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		row := bm.RunFig7(harness.Options{Workers: 1})
		if row.Feasible == 0 {
			b.Fatalf("no feasible executions for %s", name)
		}
		b.ReportMetric(float64(row.Executions), "executions")
		b.ReportMetric(float64(row.Feasible), "feasible")
	}
}

func BenchmarkFigure7ChaseLevDeque(b *testing.B)     { benchFig7(b, "Chase-Lev Deque") }
func BenchmarkFigure7SPSCQueue(b *testing.B)         { benchFig7(b, "SPSC Queue") }
func BenchmarkFigure7RCU(b *testing.B)               { benchFig7(b, "RCU") }
func BenchmarkFigure7LockfreeHashtable(b *testing.B) { benchFig7(b, "Lockfree Hashtable") }
func BenchmarkFigure7MCSLock(b *testing.B)           { benchFig7(b, "MCS Lock") }
func BenchmarkFigure7MPMCQueue(b *testing.B)         { benchFig7(b, "MPMC Queue") }
func BenchmarkFigure7MSQueue(b *testing.B)           { benchFig7(b, "M&S Queue") }
func BenchmarkFigure7LinuxRWLock(b *testing.B)       { benchFig7(b, "Linux RW Lock") }
func BenchmarkFigure7Seqlock(b *testing.B)           { benchFig7(b, "Seqlock") }
func BenchmarkFigure7TicketLock(b *testing.B)        { benchFig7(b, "Ticket Lock") }

// benchFig8 runs one benchmark's full injection sweep per iteration.
func benchFig8(b *testing.B, name string) {
	bm := harness.BenchmarkByName(name)
	if bm == nil {
		b.Fatalf("unknown benchmark %q", name)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		row := bm.RunFig8(harness.Options{Workers: 1})
		b.ReportMetric(float64(row.Injections), "injections")
		b.ReportMetric(float64(row.Detected), "detected")
	}
}

// BenchmarkParallelSpeedup contrasts a sequential Figure 8 sweep with a
// 4-worker one over a fixed set of benchmarks, reporting the wall-clock
// speedup (on a >= 4-core machine the target is >= 2x).
func BenchmarkParallelSpeedup(b *testing.B) {
	names := []string{"M&S Queue", "SPSC Queue", "Ticket Lock", "Linux RW Lock"}
	sweep := func(workers int) time.Duration {
		start := time.Now()
		for _, n := range names {
			bm := harness.BenchmarkByName(n)
			if bm == nil {
				b.Fatalf("unknown benchmark %q", n)
			}
			bm.RunFig8(harness.Options{Workers: workers})
		}
		return time.Since(start)
	}
	for i := 0; i < b.N; i++ {
		seq := sweep(1)
		par := sweep(4)
		b.ReportMetric(seq.Seconds(), "seq-s")
		b.ReportMetric(par.Seconds(), "par-s")
		b.ReportMetric(seq.Seconds()/par.Seconds(), "speedup-x")
	}
}

func BenchmarkFigure8ChaseLevDeque(b *testing.B)     { benchFig8(b, "Chase-Lev Deque") }
func BenchmarkFigure8SPSCQueue(b *testing.B)         { benchFig8(b, "SPSC Queue") }
func BenchmarkFigure8RCU(b *testing.B)               { benchFig8(b, "RCU") }
func BenchmarkFigure8LockfreeHashtable(b *testing.B) { benchFig8(b, "Lockfree Hashtable") }
func BenchmarkFigure8MCSLock(b *testing.B)           { benchFig8(b, "MCS Lock") }
func BenchmarkFigure8MPMCQueue(b *testing.B)         { benchFig8(b, "MPMC Queue") }
func BenchmarkFigure8MSQueue(b *testing.B)           { benchFig8(b, "M&S Queue") }
func BenchmarkFigure8LinuxRWLock(b *testing.B)       { benchFig8(b, "Linux RW Lock") }
func BenchmarkFigure8Seqlock(b *testing.B)           { benchFig8(b, "Seqlock") }
func BenchmarkFigure8TicketLock(b *testing.B)        { benchFig8(b, "Ticket Lock") }

// BenchmarkKnownBugs measures the §6.4.1 experiment (three known bugs).
func BenchmarkKnownBugs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rs := harness.RunKnownBugs()
		for _, r := range rs {
			if !r.Detected {
				b.Fatalf("known bug not detected: %s", r.Name)
			}
		}
	}
}

// BenchmarkOverlyStrong measures the §6.4.3 experiment.
func BenchmarkOverlyStrong(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := harness.RunOverlyStrong()
		if r.Violations != 0 {
			b.Fatalf("unexpected violations: %d", r.Violations)
		}
	}
}

// --- Ablations (DESIGN.md §6) -------------------------------------------

// queueWorkload is the shared workload for the ablation benchmarks.
func queueWorkload(ord *memmodel.OrderTable) func(*checker.Thread) {
	return func(root *checker.Thread) {
		q := blockingqueue.New(root, "q", ord)
		a := root.Spawn("a", func(tt *checker.Thread) {
			q.Enq(tt, 1)
			q.Enq(tt, 2)
		})
		b := root.Spawn("b", func(tt *checker.Thread) {
			q.Deq(tt)
			q.Deq(tt)
		})
		root.Join(a)
		root.Join(b)
	}
}

// BenchmarkAblationHistoryCapFull checks every sequential history per
// execution (the paper's default).
func BenchmarkAblationHistoryCapFull(b *testing.B) {
	spec := blockingqueue.Spec("q")
	spec.MaxHistories = -1
	for i := 0; i < b.N; i++ {
		res := core.Explore(spec, checker.Config{}, queueWorkload(nil))
		if res.FailureCount != 0 {
			b.Fatal("unexpected failure")
		}
	}
}

// BenchmarkAblationHistoryCapOne checks only the first history per
// execution (the paper's "user-customized number of sequential
// histories" option at its cheapest setting).
func BenchmarkAblationHistoryCapOne(b *testing.B) {
	spec := blockingqueue.Spec("q")
	spec.MaxHistories = 1
	for i := 0; i < b.N; i++ {
		res := core.Explore(spec, checker.Config{}, queueWorkload(nil))
		if res.FailureCount != 0 {
			b.Fatal("unexpected failure")
		}
	}
}

// BenchmarkAblationRFBranchingOn explores stale reads (full C/C++11
// visibility) on the Chase-Lev known-bug configuration in the paper's
// silenced-uninit mode (buffers pre-zeroed, lifetime check off), where
// the bug manifests as a wrong-item specification violation.
func BenchmarkAblationRFBranchingOn(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := core.Explore(chaselev.Spec("d"),
			checker.Config{StopAtFirst: true, DisableLifetimeCheck: true},
			chaselevKnownBugWorkload())
		if res.FailureCount == 0 {
			b.Fatal("known bug should be detected with stale reads on")
		}
	}
}

// BenchmarkAblationRFBranchingOff explores only SC executions
// (DisableStaleReads) under the same configuration: every load returns
// the newest value, so the wrong-item violation can never manifest — the
// ablation showing why a weak-memory checker needs reads-from branching.
func BenchmarkAblationRFBranchingOff(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := core.Explore(chaselev.Spec("d"),
			checker.Config{StopAtFirst: true, DisableStaleReads: true, DisableLifetimeCheck: true},
			chaselevKnownBugWorkload())
		if res.FailureCount != 0 {
			b.Fatalf("SC-only exploration should miss the weak-memory bug, got %v", res.FirstFailure())
		}
	}
}

func chaselevKnownBugWorkload() func(*checker.Thread) {
	return func(root *checker.Thread) {
		d := chaselev.New(root, "d", chaselev.KnownBugOrders(), 2, chaselev.WithInitializedCells())
		owner := root.Spawn("owner", func(tt *checker.Thread) {
			d.Push(tt, 1)
			d.Push(tt, 2)
			d.Push(tt, 3)
			d.Take(tt)
			d.Take(tt)
		})
		thief := root.Spawn("thief", func(tt *checker.Thread) {
			d.Steal(tt)
			d.Steal(tt)
		})
		root.Join(owner)
		root.Join(thief)
	}
}

// BenchmarkCheckerThroughput measures raw executions per second of the
// substrate on a small program (the scheduling/replay overhead floor).
func BenchmarkCheckerThroughput(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := checker.Explore(checker.Config{}, func(root *checker.Thread) {
			x := root.NewAtomicInit("x", 0)
			a := root.Spawn("a", func(tt *checker.Thread) { x.Store(tt, memmodel.Release, 1) })
			c := root.Spawn("b", func(tt *checker.Thread) { _ = x.Load(tt, memmodel.Acquire) })
			root.Join(a)
			root.Join(c)
		})
		b.ReportMetric(float64(res.Executions), "executions")
	}
}

// BenchmarkExploreHotPath is the kernel hot-path gate: each paper
// benchmark's primary unit test explored through the bare checker (no
// spec monitor, so the measurement isolates the memory-model kernel),
// with the hot-path optimizations on ("opt", the defaults) and off
// ("base"). Compare ns/op and allocs/op between the two modes; the
// cdsspec kernelbench subcommand records the same comparison into
// BENCH_kernel.json.
func BenchmarkExploreHotPath(b *testing.B) {
	modes := []struct {
		name string
		opts harness.Options
	}{
		{"opt", harness.Options{}},
		{"base", harness.Options{DisableKernelOpts: true}},
	}
	for _, bm := range harness.Benchmarks() {
		bm := bm
		prog := bm.Progs(bm.Orders())[0]
		for _, mode := range modes {
			mode := mode
			b.Run(bm.Name+"/"+mode.name, func(b *testing.B) {
				cfg := mode.opts.ExplorerConfig(bm.Name)
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					res := checker.Explore(cfg, prog)
					if res.Feasible == 0 {
						b.Fatalf("no feasible executions for %s", bm.Name)
					}
				}
			})
		}
	}
}
