package main

import (
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/fuzz"
	"repro/internal/service"
)

// startTestDaemon runs an in-process daemon against a temp state dir so
// the client subcommands can be exercised through run() without signals.
func startTestDaemon(t *testing.T, dir string) *service.Server {
	t.Helper()
	srv, err := service.Open(service.Config{
		StateDir:        dir,
		Workers:         1,
		CheckpointEvery: 10 * time.Millisecond,
		ProgressEvery:   5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Drain() })
	return srv
}

// TestServiceCLIRoundTrip: submit via -state (addr-file discovery),
// watch to completion, list, and confirm cancel errors on the now
// terminal job — the full client-side subcommand surface.
func TestServiceCLIRoundTrip(t *testing.T) {
	dir := t.TempDir()
	startTestDaemon(t, dir)

	var out, errOut strings.Builder
	if code := run([]string{"submit", "-state", dir, "-par", "2", "RCU"}, &out, &errOut); code != 0 {
		t.Fatalf("submit exited %d: %s", code, errOut.String())
	}
	id := strings.Fields(out.String())[0]
	if !strings.HasPrefix(id, "j") {
		t.Fatalf("submit printed no job id: %q", out.String())
	}

	out.Reset()
	errOut.Reset()
	if code := run([]string{"watch", "-state", dir, id}, &out, &errOut); code != 0 {
		t.Fatalf("watch exited %d: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "done") {
		t.Fatalf("watch final line missing done state: %q", out.String())
	}

	out.Reset()
	errOut.Reset()
	if code := run([]string{"jobs", "-state", dir}, &out, &errOut); code != 0 {
		t.Fatalf("jobs exited %d: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), id) || !strings.Contains(out.String(), "RCU") {
		t.Fatalf("jobs listing missing the job: %q", out.String())
	}

	out.Reset()
	errOut.Reset()
	if code := run([]string{"cancel", "-state", dir, id}, &out, &errOut); code != 1 {
		t.Fatalf("cancel of a done job exited %d, want 1: %s", code, out.String())
	}
}

// TestServiceCLIJSONSubmit: -json emits the job view, and a fast-mode
// job round-trips through watch -json with its summary.
func TestServiceCLIJSONSubmit(t *testing.T) {
	dir := t.TempDir()
	startTestDaemon(t, dir)

	var out, errOut strings.Builder
	code := run([]string{"submit", "-state", dir, "-kind", "fast", "-seed", "3", "-max", "100", "-json", "SPSC Queue"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("submit exited %d: %s", code, errOut.String())
	}
	var view service.JobView
	if err := json.Unmarshal([]byte(out.String()), &view); err != nil {
		t.Fatalf("submit -json output: %v\n%s", err, out.String())
	}
	if view.Spec.Kind != service.KindFast || view.Spec.Seed != 3 || view.Spec.MaxExecutions != 100 {
		t.Fatalf("submitted spec mangled: %+v", view.Spec)
	}

	out.Reset()
	errOut.Reset()
	if code := run([]string{"watch", "-state", dir, "-json", view.ID}, &out, &errOut); code != 0 {
		t.Fatalf("watch exited %d: %s", code, errOut.String())
	}
	var ev service.Event
	if err := json.Unmarshal([]byte(out.String()), &ev); err != nil {
		t.Fatalf("watch -json output: %v\n%s", err, out.String())
	}
	if ev.State != service.StateDone || ev.Summary == nil || ev.Summary.Executions != 100 {
		t.Fatalf("watch final event: %+v", ev)
	}
}

// TestServiceCLIUsageErrors: the service subcommands reject missing
// addressing and missing positionals with exit 2.
func TestServiceCLIUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{"serve"},                      // no -state
		{"submit"},                     // no benchmark
		{"submit", "RCU"},              // no -state/-addr
		{"jobs"},                       // no -state/-addr
		{"watch"},                      // no job id
		{"watch", "j000001"},           // no -state/-addr
		{"cancel"},                     // no job id
		{"triage"},                     // no benchmark
	} {
		var out, errOut strings.Builder
		if code := run(args, &out, &errOut); code != 2 {
			t.Errorf("run(%q) exited %d, want 2: %s", args, code, errOut.String())
		}
		if errOut.Len() == 0 {
			t.Errorf("run(%q) printed nothing to stderr", args)
		}
	}
}

// TestTriageCLI: the screen→confirm→shrink tier runs clean against a
// correct benchmark, emits valid -json, and folds confirmed hits from a
// weakened site into the corpus without tripping the regression exit.
func TestTriageCLI(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"triage", "-seed", "1", "-count", "4", "-fastruns", "50", "-json", "Ticket Lock"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("triage exited %d: %s", code, errOut.String())
	}
	var res fuzz.TriageResult
	if err := json.Unmarshal([]byte(out.String()), &res); err != nil {
		t.Fatalf("triage -json output: %v\n%s", err, out.String())
	}
	if res.Screened != 4 || res.Benchmark != "Ticket Lock" {
		t.Fatalf("triage result: %+v", res)
	}

	// A weakened memory-order site seeds a real bug; triage must catch
	// it, exit 0 (a -weaken hunt is not a regression), and persist the
	// confirmed reproducer to the corpus.
	corpus := filepath.Join(t.TempDir(), "corpus.json")
	out.Reset()
	errOut.Reset()
	code = run([]string{"triage", "-seed", "1", "-count", "12", "-fastruns", "300", "-budget", "4000",
		"-weaken", "unlock_store_serving", "-corpus", corpus, "Ticket Lock"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("weakened triage exited %d: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "flagged") {
		t.Fatalf("triage summary missing: %q", out.String())
	}
	saved, err := fuzz.LoadCorpus(corpus)
	if err != nil {
		t.Fatal(err)
	}
	// Triage is deterministic per seed: this weakened screen confirms
	// hits every run, and every confirmed hit lands in the corpus.
	if len(saved.Entries) == 0 {
		t.Errorf("weakened triage folded no confirmed hits into the corpus:\n%s", out.String())
	}
}
