package main

import (
	"encoding/json"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
	"syscall"

	"repro/internal/fuzz"
	"repro/internal/harness"
	"repro/internal/service"
)

// This file holds the verification-service subcommands:
//
//	cdsspec serve -state dir [-addr host:port] [-jobs N]
//	cdsspec submit -state dir|-addr host:port [flags] <benchmark>
//	cdsspec jobs -state dir|-addr host:port
//	cdsspec watch -state dir|-addr host:port <job-id>
//	cdsspec cancel -state dir|-addr host:port <job-id>
//
// plus the local (daemonless) triage tier:
//
//	cdsspec triage [-seed N] [-count N] [-budget N] [-fastruns N]
//	               [-shrink] [-corpus file] [-weaken site] [-json] <benchmark>

// serveCmd runs the daemon until SIGINT/SIGTERM, then drains: running
// jobs checkpoint and suspend, and a later serve against the same state
// directory resumes them.
func (c *cli) serveCmd() int {
	if c.stateDir == "" {
		fmt.Fprintln(c.stderr, "serve needs -state <dir> to persist the job journal and checkpoints")
		return 2
	}
	srv, err := service.Open(service.Config{
		StateDir:        c.stateDir,
		Addr:            c.addr,
		Workers:         c.jobWorkers,
		CheckpointEvery: c.checkpointEvery,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(c.stderr, format+"\n", args...)
		},
	})
	if err != nil {
		fmt.Fprintln(c.stderr, err)
		return 1
	}
	if err := srv.Start(); err != nil {
		fmt.Fprintln(c.stderr, err)
		return 1
	}
	fmt.Fprintf(c.stdout, "cdsspec service listening on %s (state %s)\n", srv.Addr(), c.stateDir)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	signal.Stop(sig)
	fmt.Fprintln(c.stderr, "draining: interrupting running jobs and checkpointing...")
	if err := srv.Drain(); err != nil {
		fmt.Fprintln(c.stderr, err)
		return 1
	}
	fmt.Fprintln(c.stdout, "drained cleanly; suspended jobs resume on the next serve")
	return 0
}

// serviceClient resolves the daemon address: -addr wins, otherwise the
// state directory's addr file (written by serve on startup).
func (c *cli) serviceClient() (*service.Client, bool) {
	addr := c.addr
	if addr == "" {
		if c.stateDir == "" {
			fmt.Fprintln(c.stderr, "need -addr <host:port> or -state <dir> (to read its addr file)")
			return nil, false
		}
		blob, err := os.ReadFile(filepath.Join(c.stateDir, "addr"))
		if err != nil {
			fmt.Fprintf(c.stderr, "reading daemon address: %v (is the daemon running?)\n", err)
			return nil, false
		}
		addr = strings.TrimSpace(string(blob))
	}
	return &service.Client{Base: addr}, true
}

// submitSpec builds the job spec from the parsed flags. Triage knobs are
// only attached to triage jobs, so an explore job's journal record stays
// free of irrelevant defaults.
func (c *cli) submitSpec(benchmark string) service.JobSpec {
	spec := service.JobSpec{
		Kind:          service.JobKind(c.jobKind),
		Benchmark:     benchmark,
		Model:         string(c.model),
		MaxExecutions: c.maxExecs,
		Parallelism:   c.parallelism(),
		Deadline:      c.deadline,
	}
	switch spec.KindOrDefault() {
	case service.KindExplore:
		spec.CheckpointEvery = c.checkpointEvery
		spec.NoCache = c.nocache
	case service.KindFast:
		spec.Seed = c.seed
	case service.KindTriage:
		spec.Seed = c.seed
		spec.Count = c.count
		spec.Budget = c.budget
		spec.FastRuns = c.fastRuns
		spec.Shrink = c.shrinkHits
	}
	return spec
}

// submitCmd submits one job and prints its id (or the full view with
// -json).
func (c *cli) submitCmd(benchmark string) int {
	cl, ok := c.serviceClient()
	if !ok {
		return 2
	}
	v, err := cl.Submit(c.submitSpec(benchmark))
	if err != nil {
		fmt.Fprintln(c.stderr, err)
		return 1
	}
	if c.jsonOut {
		return c.printJSON(v)
	}
	fmt.Fprintf(c.stdout, "%s submitted: %s %s (state %s)\n", v.ID, v.Spec.KindOrDefault(), v.Spec.Benchmark, v.State)
	return 0
}

// jobsCmd lists the daemon's jobs in submit order.
func (c *cli) jobsCmd() int {
	cl, ok := c.serviceClient()
	if !ok {
		return 2
	}
	jobs, err := cl.Jobs()
	if err != nil {
		fmt.Fprintln(c.stderr, err)
		return 1
	}
	if c.jsonOut {
		return c.printJSON(jobs)
	}
	for _, v := range jobs {
		line := fmt.Sprintf("%s  %-7s  %-9s  %s", v.ID, v.Spec.KindOrDefault(), v.State, v.Spec.Benchmark)
		switch {
		case v.State == service.StateRunning && v.Progress != nil:
			line += fmt.Sprintf("  %d executions, %.0f exec/s", v.Progress.Executions, v.Progress.ExecsPerSec)
		case v.Summary != nil:
			line += fmt.Sprintf("  %d executions in %v", v.Summary.Executions, v.Summary.Elapsed.Round(timeUnit))
			if v.Summary.FailureCount > 0 {
				line += fmt.Sprintf(", %d failures", v.Summary.FailureCount)
			}
			if v.Summary.Confirmed > 0 {
				line += fmt.Sprintf(", %d confirmed hits", v.Summary.Confirmed)
			}
		case v.Error != "":
			line += "  " + v.Error
		}
		fmt.Fprintln(c.stdout, line)
	}
	return 0
}

// watchCmd follows one job's event stream until it ends. Exit code 0 for
// done, 1 for every other final state (failed, canceled, deadline, or a
// drain suspension that ended the stream early).
func (c *cli) watchCmd(id string) int {
	cl, ok := c.serviceClient()
	if !ok {
		return 2
	}
	last, err := cl.Watch(id, func(ev service.Event) bool {
		switch {
		case ev.Progress != nil:
			fmt.Fprintf(c.stderr, "[%s] %s: %d executions (%d feasible, %d pruned, %d failures) %.0f exec/s\n",
				id, ev.State, ev.Progress.Executions, ev.Progress.Feasible,
				ev.Progress.Pruned, ev.Progress.Failures, ev.Progress.ExecsPerSec)
		default:
			fmt.Fprintf(c.stderr, "[%s] %s\n", id, ev.State)
		}
		return true
	})
	if err != nil {
		fmt.Fprintln(c.stderr, err)
		return 1
	}
	if c.jsonOut {
		if code := c.printJSON(last); code != 0 {
			return code
		}
	} else if s := last.Summary; s != nil {
		fmt.Fprintf(c.stdout, "%s %s: %d executions in %v", id, last.State, s.Executions, s.Elapsed.Round(timeUnit))
		if s.FailureCount > 0 {
			fmt.Fprintf(c.stdout, ", %d failures", s.FailureCount)
		}
		if s.Screened > 0 {
			fmt.Fprintf(c.stdout, " (screened %d, flagged %d, confirmed %d)", s.Screened, s.Flagged, s.Confirmed)
		}
		fmt.Fprintln(c.stdout)
	} else {
		fmt.Fprintf(c.stdout, "%s %s", id, last.State)
		if last.Error != "" {
			fmt.Fprintf(c.stdout, ": %s", last.Error)
		}
		fmt.Fprintln(c.stdout)
	}
	if last.State == service.StateDone {
		return 0
	}
	return 1
}

// cancelCmd requests cancellation of one job.
func (c *cli) cancelCmd(id string) int {
	cl, ok := c.serviceClient()
	if !ok {
		return 2
	}
	v, err := cl.Cancel(id)
	if err != nil {
		fmt.Fprintln(c.stderr, err)
		return 1
	}
	if c.jsonOut {
		return c.printJSON(v)
	}
	fmt.Fprintf(c.stdout, "%s cancel requested (state %s)\n", v.ID, v.State)
	return 0
}

func (c *cli) printJSON(v any) int {
	blob, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		fmt.Fprintf(c.stderr, "encoding output: %v\n", err)
		return 1
	}
	fmt.Fprintln(c.stdout, string(blob))
	return 0
}

// triageCmd runs the screen→confirm→shrink triage tier locally: fast
// mode screens -count generated programs, exhaustive mode confirms the
// flagged ones within -budget, and -shrink minimizes the confirmed
// reproducers. Confirmed hits are folded into -corpus like fuzz does.
// Exit codes mirror fuzz: 3 when confirmed failures hit the correct
// memory orders, 0 for a clean (or -weaken) run.
func (c *cli) triageCmd(name string) int {
	b := harness.BenchmarkByName(name)
	if b == nil {
		return unknownBenchmark(c.stderr, name)
	}
	ord, ok := c.weakenedOrders(b)
	if !ok {
		return 2
	}
	intr, cleanup := interruptOnSignal()
	defer cleanup()
	res, err := fuzz.Triage(b.FuzzTarget(), fuzz.TriageConfig{
		Seed:          c.seed,
		Count:         c.count,
		FastRuns:      c.fastRuns,
		ConfirmBudget: c.budget,
		Workers:       c.workers,
		Orders:        ord,
		Shrink:        c.shrinkHits,
		Interrupt:     intr,
	})
	if err != nil {
		fmt.Fprintf(c.stderr, "triaging %s: %v\n", b.Name, err)
		return 1
	}

	if c.corpusPath != "" {
		corpus, err := fuzz.LoadCorpus(c.corpusPath)
		if err != nil {
			fmt.Fprintln(c.stderr, err)
			return 1
		}
		added := 0
		for _, h := range res.Confirmed {
			e := fuzz.EntryFor(h.Verdict)
			if h.Minimal != nil {
				e.Shrunk = h.Minimal.Minimal
			}
			if corpus.Add(e) {
				added++
			}
		}
		if err := corpus.Save(c.corpusPath); err != nil {
			fmt.Fprintln(c.stderr, err)
			return 1
		}
		fmt.Fprintf(c.stderr, "corpus %s: %d new entries (%d total)\n", c.corpusPath, added, len(corpus.Entries))
	}

	if c.jsonOut {
		if code := c.printJSON(res); code != 0 {
			return code
		}
	} else {
		fmt.Fprintf(c.stdout, "=== triage: %s (seed %d) ===\n", b.Name, res.Seed)
		fmt.Fprintf(c.stdout, "screened %d programs (%d fast executions), flagged %d, confirmed %d, unconfirmed %d (%d confirm executions) in %v\n",
			res.Screened, res.FastExecutions, res.Flagged, len(res.Confirmed),
			len(res.Unconfirmed), res.ConfirmExecutions, res.Elapsed.Round(timeUnit))
		buckets := make([]string, 0, len(res.Buckets))
		for k := range res.Buckets {
			buckets = append(buckets, k)
		}
		sort.Strings(buckets)
		for _, k := range buckets {
			fmt.Fprintf(c.stdout, "  bucket %-12s %d\n", k, res.Buckets[k])
		}
		for _, h := range res.Confirmed {
			fmt.Fprintf(c.stdout, "  confirmed: %s\n    program: %s\n", h.Verdict.Failure.Msg, h.Program)
			if h.Minimal != nil {
				fmt.Fprintf(c.stdout, "    minimal (%d ops): %s\n", h.Minimal.Minimal.OpCount(), h.Minimal.Minimal)
			}
		}
	}
	if len(res.Confirmed) > 0 && c.weaken == "" {
		fmt.Fprintf(c.stderr, "triage: %d confirmed failures against the correct memory orders\n", len(res.Confirmed))
		return 3
	}
	return 0
}
