package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/harness"
)

// TestListSucceeds: list prints every benchmark name and exits zero.
func TestListSucceeds(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"list"}, &out, &errOut); code != 0 {
		t.Fatalf("list exited %d: %s", code, errOut.String())
	}
	for _, b := range harness.Benchmarks() {
		if !strings.Contains(out.String(), b.Name) {
			t.Errorf("list output missing %q:\n%s", b.Name, out.String())
		}
	}
}

// TestUnknownBenchmark: run/dot/json with a bogus name exit non-zero and
// list the available benchmarks so the caller need not guess.
func TestUnknownBenchmark(t *testing.T) {
	for _, cmd := range []string{"run", "dot", "json"} {
		var out, errOut strings.Builder
		code := run([]string{cmd, "no-such-benchmark"}, &out, &errOut)
		if code == 0 {
			t.Errorf("%s with unknown benchmark exited 0", cmd)
		}
		msg := errOut.String()
		if !strings.Contains(msg, `unknown benchmark "no-such-benchmark"`) {
			t.Errorf("%s: missing unknown-benchmark message:\n%s", cmd, msg)
		}
		for _, b := range harness.Benchmarks() {
			if !strings.Contains(msg, b.Name) {
				t.Errorf("%s: available-benchmark listing missing %q:\n%s", cmd, b.Name, msg)
			}
		}
	}
}

// TestBadInvocations: no arguments, an unknown subcommand, and a missing
// positional argument all exit 2 with usage on stderr.
func TestBadInvocations(t *testing.T) {
	for _, args := range [][]string{
		nil,
		{"frobnicate"},
		{"run"},
		{"dot"},
		{"json"},
	} {
		var out, errOut strings.Builder
		if code := run(args, &out, &errOut); code != 2 {
			t.Errorf("run(%q) exited %d, want 2", args, code)
		}
		if errOut.Len() == 0 {
			t.Errorf("run(%q) printed nothing to stderr", args)
		}
	}
}

// TestRunJSONSnapshot: trailing subcommand flags parse (cdsspec run
// -json <bench>) and produce a valid bench snapshot with stats.
func TestRunJSONSnapshot(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"run", "-json", "SPSC Queue"}, &out, &errOut); code != 0 {
		t.Fatalf("run -json exited %d: %s", code, errOut.String())
	}
	var snap harness.BenchSnapshot
	if err := json.Unmarshal([]byte(out.String()), &snap); err != nil {
		t.Fatalf("output is not a snapshot: %v\n%s", err, out.String())
	}
	if snap.Schema != harness.SnapshotSchema {
		t.Errorf("schema = %q, want %q", snap.Schema, harness.SnapshotSchema)
	}
	if len(snap.Fig7) != 1 || len(snap.Fig8) != 1 {
		t.Fatalf("expected one fig7 and one fig8 row: %+v", snap)
	}
	if snap.Fig7[0].Name != "SPSC Queue" || snap.Fig7[0].Executions == 0 {
		t.Errorf("implausible fig7 row: %+v", snap.Fig7[0])
	}
	if snap.Fig7[0].Stats.TotalSteps == 0 {
		t.Errorf("fig7 row missing stats: %+v", snap.Fig7[0].Stats)
	}
}

// TestJSONSubcommand: cdsspec json <bench> emits the full result plus a
// machine-readable trace of one execution.
func TestJSONSubcommand(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"json", "SPSC Queue"}, &out, &errOut); code != 0 {
		t.Fatalf("json exited %d: %s", code, errOut.String())
	}
	var doc struct {
		Benchmark string `json:"benchmark"`
		Result    struct {
			Executions int `json:"executions"`
			Stats      struct {
				Histories int `json:"histories"`
			} `json:"stats"`
		} `json:"result"`
		Trace struct {
			Actions []json.RawMessage `json:"actions"`
		} `json:"trace"`
	}
	if err := json.Unmarshal([]byte(out.String()), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out.String())
	}
	if doc.Benchmark != "SPSC Queue" || doc.Result.Executions == 0 {
		t.Errorf("implausible document header: %+v", doc)
	}
	if doc.Result.Stats.Histories == 0 {
		t.Errorf("result stats missing spec-layer counters: %+v", doc.Result)
	}
	if len(doc.Trace.Actions) == 0 {
		t.Error("document missing the execution trace")
	}
}

// TestProgressFlag: -progress emits progress lines on stderr, ending
// with the final "done" line carrying the spec-cache hit count.
func TestProgressFlag(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"run", "-progress", "SPSC Queue"}, &out, &errOut); code != 0 {
		t.Fatalf("run -progress exited %d: %s", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "[SPSC Queue] done:") {
		t.Errorf("no final progress line on stderr:\n%s", errOut.String())
	}
	if !strings.Contains(errOut.String(), "spec-cache hits)") {
		t.Errorf("final progress line missing spec-cache hits:\n%s", errOut.String())
	}
}

// snapshotStats decodes a fig7-only snapshot from a finished run.
func snapshotStats(t *testing.T, out string) harness.Fig7Row {
	t.Helper()
	snap, err := harness.ReadSnapshot([]byte(out))
	if err != nil {
		t.Fatalf("output is not a snapshot: %v\n%s", err, out)
	}
	if len(snap.Fig7) != 1 {
		t.Fatalf("expected one fig7 row: %+v", snap)
	}
	return snap.Fig7[0]
}

// TestNoCacheFlag: -nocache zeroes the spec-cache counters; without it
// the same workload reports hits. Everything else about the run must
// match (same executions, same histories).
func TestNoCacheFlag(t *testing.T) {
	var on, off, errOut strings.Builder
	if code := run([]string{"run", "-json", "SPSC Queue"}, &on, &errOut); code != 0 {
		t.Fatalf("run -json exited %d: %s", code, errOut.String())
	}
	if code := run([]string{"run", "-json", "-nocache", "SPSC Queue"}, &off, &errOut); code != 0 {
		t.Fatalf("run -json -nocache exited %d: %s", code, errOut.String())
	}
	rOn := snapshotStats(t, on.String())
	rOff := snapshotStats(t, off.String())
	if rOn.Stats.SpecCacheHits == 0 || rOn.Stats.SpecCacheMisses == 0 {
		t.Errorf("cached run reports no cache activity: %+v", rOn.Stats)
	}
	if rOff.Stats.SpecCacheHits != 0 || rOff.Stats.SpecCacheMisses != 0 || rOff.Stats.SpecCacheEntries != 0 {
		t.Errorf("-nocache run reports cache activity: %+v", rOff.Stats)
	}
	if rOn.Executions != rOff.Executions || rOn.Stats.Histories != rOff.Stats.Histories {
		t.Errorf("cache changed the exploration: on %d execs/%d histories, off %d/%d",
			rOn.Executions, rOn.Stats.Histories, rOff.Executions, rOff.Stats.Histories)
	}
}

// TestBenchDiffSubcommand: benchdiff reads two snapshot files (v1 or v2)
// and renders the comparison; bad paths and schemas exit non-zero.
func TestBenchDiffSubcommand(t *testing.T) {
	dir := t.TempDir()
	v1 := filepath.Join(dir, "old.json")
	if err := os.WriteFile(v1, []byte(`{
	  "schema": "cdsspec-bench/v1",
	  "fig7": [{"name": "SPSC Queue", "executions": 1, "stats": {}}]
	}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var snap, errOut strings.Builder
	if code := run([]string{"run", "-json", "SPSC Queue"}, &snap, &errOut); code != 0 {
		t.Fatalf("run -json exited %d: %s", code, errOut.String())
	}
	v2 := filepath.Join(dir, "new.json")
	if err := os.WriteFile(v2, []byte(snap.String()), 0o644); err != nil {
		t.Fatal(err)
	}

	var out strings.Builder
	errOut.Reset()
	if code := run([]string{"benchdiff", v1, v2}, &out, &errOut); code != 0 {
		t.Fatalf("benchdiff exited %d: %s", code, errOut.String())
	}
	for _, want := range []string{"SPSC Queue", "hit(old)", "n/a", "EXECUTION COUNT CHANGED"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("benchdiff output missing %q:\n%s", want, out.String())
		}
	}

	errOut.Reset()
	if code := run([]string{"benchdiff", filepath.Join(dir, "missing.json"), v2}, &out, &errOut); code == 0 {
		t.Error("benchdiff with a missing file exited 0")
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"schema": "cdsspec-bench/v99"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	errOut.Reset()
	if code := run([]string{"benchdiff", bad, v2}, &out, &errOut); code == 0 {
		t.Error("benchdiff with an unknown schema exited 0")
	}
	if !strings.Contains(errOut.String(), "unsupported snapshot schema") {
		t.Errorf("missing schema error: %s", errOut.String())
	}
	if code := run([]string{"benchdiff", v1}, &out, &errOut); code != 2 {
		t.Error("benchdiff with one argument should exit 2")
	}
}
