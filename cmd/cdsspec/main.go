// Command cdsspec reproduces the paper's evaluation from the command
// line:
//
//	cdsspec fig7                 regenerate Figure 7 (benchmark results)
//	cdsspec fig8                 regenerate Figure 8 (bug-injection detection)
//	cdsspec knownbugs            reproduce the §6.4.1 known bugs
//	cdsspec overlystrong         reproduce the §6.4.3 overly strong CAS
//	cdsspec specstats            print the §6.2 specification statistics
//	cdsspec run <benchmark>      explore one benchmark's unit test
//	cdsspec dot <benchmark>      print one execution as a Graphviz graph
//	cdsspec list                 list benchmark names
//	cdsspec all                  run every experiment in sequence
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/checker"
	"repro/internal/core"
	"repro/internal/harness"
)

// workers is the -workers flag: worker-pool size for the experiment
// harness and the parallel explorer (0 = GOMAXPROCS).
var workers = flag.Int("workers", 0, "worker pool size for experiments (0 = GOMAXPROCS)")

func opts() harness.Options { return harness.Options{Workers: *workers} }

func main() {
	flag.Usage = usage
	flag.Parse()
	args := flag.Args()
	if len(args) < 1 {
		usage()
		os.Exit(2)
	}
	switch args[0] {
	case "fig7":
		fig7()
	case "fig8":
		fig8()
	case "knownbugs":
		knownBugs()
	case "overlystrong":
		overlyStrong()
	case "specstats":
		specStats()
	case "list":
		for _, b := range harness.Benchmarks() {
			fmt.Println(b.Name)
		}
	case "run":
		if len(args) < 2 {
			fmt.Fprintln(os.Stderr, "usage: cdsspec [-workers N] run <benchmark>")
			os.Exit(2)
		}
		runOne(args[1])
	case "dot":
		if len(args) < 2 {
			fmt.Fprintln(os.Stderr, "usage: cdsspec dot <benchmark>")
			os.Exit(2)
		}
		dotOne(args[1])
	case "all":
		fig7()
		fmt.Println()
		fig8()
		fmt.Println()
		knownBugs()
		fmt.Println()
		overlyStrong()
		fmt.Println()
		specStats()
	default:
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: cdsspec [-workers N] {fig7|fig8|knownbugs|overlystrong|specstats|run <benchmark>|list|all}")
}

func fig7() {
	fmt.Println("=== Figure 7: benchmark results ===")
	fmt.Print(harness.FormatFig7(harness.RunAllFig7(opts())))
}

func fig8() {
	fmt.Println("=== Figure 8: bug injection detection ===")
	fmt.Print(harness.FormatFig8(harness.RunAllFig8(opts())))
}

func knownBugs() {
	fmt.Println("=== §6.4.1: known bugs ===")
	fmt.Print(harness.FormatKnownBugs(harness.RunKnownBugs()))
}

func overlyStrong() {
	fmt.Println("=== §6.4.3: overly strong parameter (Chase-Lev take CAS -> relaxed) ===")
	r := harness.RunOverlyStrong()
	fmt.Printf("executions=%d feasible=%d violations=%d\n", r.Executions, r.Feasible, r.Violations)
	if r.Violations == 0 {
		fmt.Println("no specification violation: the seq_cst CAS on top is overly strong (authors confirmed)")
	}
}

func specStats() {
	fmt.Println("=== §6.2: specification statistics ===")
	fmt.Print(harness.FormatSpecStats(harness.RunSpecStats()))
}

func dotOne(name string) {
	b := harness.BenchmarkByName(name)
	if b == nil {
		fmt.Fprintf(os.Stderr, "unknown benchmark %q; try: cdsspec list\n", name)
		os.Exit(2)
	}
	// The first DFS paths may be pruned (fairness); capture the first
	// feasible execution and stop shortly after.
	var dot string
	cfg := checker.Config{
		MaxExecutions: 1000,
		OnExecution: func(sys *checker.System) []*checker.Failure {
			if dot == "" {
				dot = checker.ExportDOT(sys)
				return []*checker.Failure{{Kind: checker.FailAssertion, Msg: "stop after first feasible execution"}}
			}
			return nil
		},
	}
	cfg.StopAtFirst = true
	core.Explore(b.Spec(), cfg, b.Progs(b.Orders())[0])
	fmt.Print(dot)
}

func runOne(name string) {
	b := harness.BenchmarkByName(name)
	if b == nil {
		fmt.Fprintf(os.Stderr, "unknown benchmark %q; try: cdsspec list\n", name)
		os.Exit(2)
	}
	row := b.RunFig7()
	fmt.Print(harness.FormatFig7([]harness.Fig7Row{row}))
	f8 := b.RunFig8(opts())
	fmt.Print(harness.FormatFig8([]harness.Fig8Row{f8}))
}
