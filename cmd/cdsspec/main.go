// Command cdsspec reproduces the paper's evaluation from the command
// line:
//
//	cdsspec fig7 [-json]         regenerate Figure 7 (benchmark results)
//	cdsspec fig8 [-json]         regenerate Figure 8 (bug-injection detection)
//	cdsspec knownbugs            reproduce the §6.4.1 known bugs
//	cdsspec overlystrong         reproduce the §6.4.3 overly strong CAS
//	cdsspec specstats            print the §6.2 specification statistics
//	cdsspec run <benchmark>      explore one benchmark's unit test
//	cdsspec explore <benchmark>  parallel exploration with checkpointing
//	cdsspec resume <file>        resume a checkpointed exploration
//	cdsspec fastrun <benchmark>  fast-mode screen (random plausible executions)
//	cdsspec fastbench [-json]    fast-mode gate + BENCH_fastmode.json snapshot
//	cdsspec dot <benchmark>      print one execution as a Graphviz graph
//	cdsspec json <benchmark>     print one execution + stats as JSON
//	cdsspec benchdiff <a> <b>    compare two fig7 -json snapshots (any schema)
//	cdsspec modeldiff <target>   diff behavior sets across consistency models
//	cdsspec reducediff <target>  prove reduced == unreduced behavior sets
//	cdsspec kernelbench [-json]  kernel hot-path before/after measurements
//	cdsspec fuzz [benchmark]     run generative campaigns (§6.4's unit-test gap)
//	cdsspec triage <benchmark>   screen→confirm→shrink triage over generated programs
//	cdsspec shrink <benchmark>   minimize a failing generated program
//	cdsspec serve                run the verification-service daemon
//	cdsspec submit <benchmark>   submit a job to a running daemon
//	cdsspec jobs                 list a daemon's jobs
//	cdsspec watch <job-id>       stream one job's progress until it ends
//	cdsspec cancel <job-id>      cancel a queued or running job
//	cdsspec list [-v]            list benchmark names (-v: ops, roles, sites)
//	cdsspec all                  run every experiment in sequence
//
// Flags: -workers N (global or per-subcommand), and per-subcommand
// -json (machine-readable output), -progress (periodic progress to
// stderr), -nocache (disable spec-check memoization), -nokernelopts
// (disable the kernel hot-path optimizations), -model (consistency
// model: c11, sc, or scatomics — see DESIGN.md), -reduce (execution-
// equivalence reductions: all, none, or a comma list of
// rf,symmetry,spinloop — default all for explore and reducediff, none
// elsewhere; honored by run, resume, fig7 and fig8), -par N
// (work-stealing exploration workers), and -cpuprofile/-memprofile
// (write pprof profiles of the subcommand). The modeldiff subcommand
// adds -a and -b (the two models to compare). The explore and resume
// subcommands add -max, -checkpoint, -checkpoint-every and -verify (see
// their help text); a SIGINT stops them gracefully and writes a final
// checkpoint. Resume adopts the checkpoint's reduction set and refuses
// an explicit -reduce that disagrees with it.
// The fuzz and shrink subcommands add -seed, -count, -budget, -corpus,
// -weaken and -index. The fastrun subcommand adds -seed, -max (run
// budget), -time (wall-clock budget) and -par; fastbench adds -seed and
// -json. Subcommand flags go between the subcommand and its positional
// arguments: cdsspec run -progress "M&S Queue".
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"sync"
	"time"

	"repro/internal/checker"
	"repro/internal/checker/model"
	"repro/internal/core"
	"repro/internal/harness"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// cli carries one invocation's parsed flags and output streams, so run
// is testable without touching process state.
type cli struct {
	stdout, stderr io.Writer
	workers        int
	jsonOut        bool
	progress       bool
	nocache        bool
	nokernelopts   bool
	cpuProfile     string
	memProfile     string

	// -model: consistency model for the explored executions. model is
	// the parsed ID; modelSet records whether the flag was given
	// explicitly (resume adopts the envelope's model when it wasn't).
	model    model.ID
	modelSet bool

	// -reduce: execution-equivalence reductions. reduce is the parsed
	// set; reduceGiven records whether the flag was given explicitly
	// (explore and reducediff default to all reductions, resume adopts
	// the checkpoint envelope's set).
	reduce      checker.ReduceSet
	reduceGiven bool

	// modeldiff -a/-b.
	diffA, diffB string

	// explore / resume flags.
	par             int
	maxExecs        int
	checkpointPath  string
	checkpointEvery time.Duration
	verify          bool

	// fuzz / shrink / list -v flags.
	seed       uint64
	count      int
	budget     int
	corpusPath string
	weaken     string
	index      int
	verbose    bool

	// fastrun flags.
	timeBudget time.Duration

	// service flags (serve/submit/jobs/watch/cancel) and triage flags.
	addr       string
	stateDir   string
	jobWorkers int
	jobKind    string
	deadline   time.Duration
	fastRuns   int
	shrinkHits bool
}

// parallelism resolves the exploration worker count for explore/resume:
// -par wins, otherwise -workers doubles as the parallelism knob there
// (the two subcommands run a single exploration, so the work-item pool
// the flag normally sizes is empty anyway).
func (c *cli) parallelism() int {
	if c.par > 0 {
		return c.par
	}
	return c.workers
}

func (c *cli) opts() harness.Options {
	o := harness.Options{
		Workers:           c.workers,
		Model:             c.model,
		Reduce:            c.reduce,
		DisableSpecCache:  c.nocache,
		DisableKernelOpts: c.nokernelopts,
		CPUProfile:        c.cpuProfile,
		MemProfile:        c.memProfile,
	}
	if c.progress {
		o.Progress = func(name string, p checker.Progress) {
			if p.Final {
				fmt.Fprintf(c.stderr, "[%s] done: %d executions in %v (%.0f exec/s, %d spec-cache hits)\n",
					name, p.Executions, p.Elapsed.Round(timeUnit), p.ExecsPerSec, p.SpecCacheHits)
				return
			}
			line := fmt.Sprintf("[%s] %d executions (%d feasible, %d pruned, %d failures, %d cache hits) %.0f exec/s",
				name, p.Executions, p.Feasible, p.Pruned, p.Failures, p.SpecCacheHits, p.ExecsPerSec)
			if p.RFEquivPrunes > 0 || p.SymmetryPrunes > 0 || p.SpinloopBounds > 0 || p.RFClasses > 0 {
				line += fmt.Sprintf(", reduce[%d rf-pruned/%d classes, %d sym, %d spin]",
					p.RFEquivPrunes, p.RFClasses, p.SymmetryPrunes, p.SpinloopBounds)
			}
			if p.ETA > 0 {
				line += fmt.Sprintf(", ETA %v", p.ETA.Round(timeUnit))
			}
			fmt.Fprintln(c.stderr, line)
		}
	}
	return o
}

const timeUnit = 1e6 // round displayed durations to milliseconds

func run(args []string, stdout, stderr io.Writer) int {
	c := &cli{stdout: stdout, stderr: stderr}
	global := flag.NewFlagSet("cdsspec", flag.ContinueOnError)
	global.SetOutput(stderr)
	global.Usage = func() { usage(stderr) }
	globalWorkers := global.Int("workers", 0, "worker pool size for experiments (0 = GOMAXPROCS)")
	if err := global.Parse(args); err != nil {
		return 2
	}
	c.workers = *globalWorkers
	rest := global.Args()
	if len(rest) < 1 {
		usage(stderr)
		return 2
	}
	cmd := rest[0]

	// The global flag.Parse stops at the first non-flag argument, so
	// trailing flags (cdsspec fig7 -json) need a second, per-subcommand
	// parse over everything after the subcommand name.
	sub := flag.NewFlagSet(cmd, flag.ContinueOnError)
	sub.SetOutput(stderr)
	subWorkers := sub.Int("workers", c.workers, "worker pool size (0 = GOMAXPROCS)")
	sub.BoolVar(&c.jsonOut, "json", false, "emit machine-readable JSON instead of tables")
	sub.BoolVar(&c.progress, "progress", false, "print periodic exploration progress to stderr")
	sub.BoolVar(&c.nocache, "nocache", false, "disable the per-shard spec-check memoization cache")
	sub.BoolVar(&c.nokernelopts, "nokernelopts", false, "disable the memory-model kernel hot-path optimizations")
	sub.StringVar(&c.cpuProfile, "cpuprofile", "", "write a pprof CPU profile of the subcommand to this file")
	sub.StringVar(&c.memProfile, "memprofile", "", "write a pprof heap profile after the subcommand to this file")
	sub.Uint64Var(&c.seed, "seed", 1, "fuzz: program generator seed (same seed = same batch)")
	sub.IntVar(&c.count, "count", 25, "fuzz: programs to generate per benchmark")
	sub.IntVar(&c.budget, "budget", 5000, "fuzz: max executions explored per program (0 = exhaustive)")
	sub.StringVar(&c.corpusPath, "corpus", "", "fuzz/shrink: on-disk corpus JSON to accumulate failures in")
	sub.StringVar(&c.weaken, "weaken", "", "fuzz/shrink: weaken this memory-order site one step (seeded bug)")
	sub.IntVar(&c.index, "index", 0, "shrink: corpus entry index among the benchmark's entries")
	sub.BoolVar(&c.verbose, "v", false, "list: include op registries and memory-order sites")
	sub.IntVar(&c.par, "par", 0, "explore/resume: work-stealing workers (0 = use -workers, 1 = sequential engine)")
	sub.IntVar(&c.maxExecs, "max", 0, "explore/resume: total execution budget incl. checkpointed work (0 = exhaustive)")
	sub.StringVar(&c.checkpointPath, "checkpoint", "", "explore/resume: write the exploration checkpoint to this file")
	sub.DurationVar(&c.checkpointEvery, "checkpoint-every", 0, "explore/resume: also checkpoint periodically at this interval")
	sub.BoolVar(&c.verify, "verify", false, "resume: re-explore sequentially from scratch and require a bit-identical result")
	sub.DurationVar(&c.timeBudget, "time", 0, "fastrun: wall-clock budget for the screen (0 = run budget only)")
	sub.StringVar(&c.addr, "addr", "", "serve: listen address (default 127.0.0.1:0); submit/jobs/watch/cancel: daemon address")
	sub.StringVar(&c.stateDir, "state", "", "serve: state directory (journal + checkpoints); clients read its addr file")
	sub.IntVar(&c.jobWorkers, "jobs", 1, "serve: concurrent job workers")
	sub.StringVar(&c.jobKind, "kind", "", "submit: job kind (explore, fast, or triage; default explore)")
	sub.DurationVar(&c.deadline, "deadline", 0, "submit: per-job wall-clock budget (0 = none)")
	sub.IntVar(&c.fastRuns, "fastruns", 0, "triage: fast-mode screen runs per program (0 = default 200)")
	sub.BoolVar(&c.shrinkHits, "shrink", false, "triage: minimize confirmed reproducers")
	modelName := sub.String("model", "", "consistency model: c11 (default), sc, or scatomics")
	reduceName := sub.String("reduce", "", "execution-equivalence reductions: all, none, or a comma list of rf,symmetry,spinloop (explore/reducediff default: all; elsewhere: none)")
	sub.StringVar(&c.diffA, "a", "c11", "modeldiff: first model")
	sub.StringVar(&c.diffB, "b", "sc", "modeldiff: second model")
	if err := sub.Parse(rest[1:]); err != nil {
		return 2
	}
	c.workers = *subWorkers
	id, err := model.Parse(*modelName)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	c.model = id
	red, err := checker.ParseReduce(*reduceName)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	c.reduce = red
	sub.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "model":
			c.modelSet = true
		case "reduce":
			c.reduceGiven = true
		}
	})
	pos := sub.Args()

	// Profiling wraps the whole subcommand, whatever it is, so a slow
	// fig7 row or a fuzz campaign can be profiled the same way.
	stopProfiles, err := c.opts().StartProfiles()
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	defer func() {
		if err := stopProfiles(); err != nil {
			fmt.Fprintf(stderr, "stopping profiles: %v\n", err)
		}
	}()

	switch cmd {
	case "fig7":
		return c.fig7()
	case "fig8":
		return c.fig8()
	case "knownbugs":
		c.knownBugs()
	case "overlystrong":
		c.overlyStrong()
	case "specstats":
		c.specStats()
	case "list":
		if c.verbose {
			c.listVerbose()
			break
		}
		for _, b := range harness.Benchmarks() {
			fmt.Fprintln(c.stdout, b.Name)
		}
	case "fuzz":
		return c.fuzzCmd(pos)
	case "shrink":
		if len(pos) < 1 {
			fmt.Fprintln(stderr, "usage: cdsspec shrink [-seed N] [-count N] [-budget N] [-weaken site] [-corpus file [-index N]] [-json] <benchmark>")
			return 2
		}
		return c.shrinkCmd(pos[0])
	case "run":
		if len(pos) < 1 {
			fmt.Fprintln(stderr, "usage: cdsspec run [-workers N] [-json] [-progress] <benchmark>")
			return 2
		}
		return c.runOne(pos[0])
	case "explore":
		if len(pos) < 1 {
			fmt.Fprintln(stderr, "usage: cdsspec explore [-par N] [-max N] [-checkpoint file] [-checkpoint-every dur] [-json] [-progress] <benchmark>")
			return 2
		}
		return c.exploreCmd(pos[0])
	case "resume":
		if len(pos) < 1 {
			fmt.Fprintln(stderr, "usage: cdsspec resume [-par N] [-max N] [-checkpoint file] [-verify] [-json] [-progress] <file>")
			return 2
		}
		return c.resumeCmd(pos[0])
	case "dot":
		if len(pos) < 1 {
			fmt.Fprintln(stderr, "usage: cdsspec dot <benchmark>")
			return 2
		}
		return c.dotOne(pos[0])
	case "json":
		if len(pos) < 1 {
			fmt.Fprintln(stderr, "usage: cdsspec json [-progress] <benchmark>")
			return 2
		}
		return c.jsonOne(pos[0])
	case "kernelbench":
		return c.kernelBench()
	case "fastrun":
		if len(pos) < 1 {
			fmt.Fprintln(stderr, "usage: cdsspec fastrun [-seed N] [-max N] [-time dur] [-par N] [-json] <benchmark>")
			return 2
		}
		return c.fastRunCmd(pos[0])
	case "fastbench":
		return c.fastBenchCmd()
	case "benchdiff":
		if len(pos) < 2 {
			fmt.Fprintln(stderr, "usage: cdsspec benchdiff <old.json> <new.json>")
			return 2
		}
		return c.benchDiff(pos[0], pos[1])
	case "modeldiff":
		if len(pos) < 1 {
			fmt.Fprintln(stderr, "usage: cdsspec modeldiff [-a model] [-b model] [-json] <target>")
			fmt.Fprintf(stderr, "targets: %s\n", strings.Join(harness.ModelDiffTargets(), ", "))
			return 2
		}
		return c.modelDiffCmd(pos[0])
	case "reducediff":
		if len(pos) < 1 {
			fmt.Fprintln(stderr, "usage: cdsspec reducediff [-reduce set] [-model m] [-par N] [-json] <target>")
			fmt.Fprintf(stderr, "targets: %s\n", strings.Join(harness.ModelDiffTargets(), ", "))
			return 2
		}
		return c.reduceDiffCmd(pos[0])
	case "serve":
		return c.serveCmd()
	case "submit":
		if len(pos) < 1 {
			fmt.Fprintln(stderr, "usage: cdsspec submit {-state dir|-addr host:port} [-kind explore|fast|triage] [-max N] [-par N] [-deadline dur] [-model m] [-seed N] [-count N] [-budget N] [-fastruns N] [-shrink] [-json] <benchmark>")
			return 2
		}
		return c.submitCmd(pos[0])
	case "jobs":
		return c.jobsCmd()
	case "watch":
		if len(pos) < 1 {
			fmt.Fprintln(stderr, "usage: cdsspec watch {-state dir|-addr host:port} [-json] <job-id>")
			return 2
		}
		return c.watchCmd(pos[0])
	case "cancel":
		if len(pos) < 1 {
			fmt.Fprintln(stderr, "usage: cdsspec cancel {-state dir|-addr host:port} [-json] <job-id>")
			return 2
		}
		return c.cancelCmd(pos[0])
	case "triage":
		if len(pos) < 1 {
			fmt.Fprintln(stderr, "usage: cdsspec triage [-seed N] [-count N] [-budget N] [-fastruns N] [-shrink] [-corpus file] [-weaken site] [-json] <benchmark>")
			return 2
		}
		return c.triageCmd(pos[0])
	case "all":
		if code := c.fig7(); code != 0 {
			return code
		}
		fmt.Fprintln(c.stdout)
		if code := c.fig8(); code != 0 {
			return code
		}
		fmt.Fprintln(c.stdout)
		c.knownBugs()
		fmt.Fprintln(c.stdout)
		c.overlyStrong()
		fmt.Fprintln(c.stdout)
		c.specStats()
	default:
		usage(stderr)
		return 2
	}
	return 0
}

func usage(w io.Writer) {
	fmt.Fprintln(w, "usage: cdsspec [-workers N] {fig7|fig8|knownbugs|overlystrong|specstats|run <benchmark>|explore <benchmark>|resume <file>|fastrun <benchmark>|fastbench|dot <benchmark>|json <benchmark>|benchdiff <old.json> <new.json>|modeldiff <target>|reducediff <target>|kernelbench|fuzz [benchmark]|triage <benchmark>|shrink <benchmark>|serve|submit <benchmark>|jobs|watch <job-id>|cancel <job-id>|list [-v]|all} [-json] [-progress] [-nocache] [-nokernelopts] [-model c11|sc|scatomics] [-reduce all|none|rf,symmetry,spinloop] [-cpuprofile file] [-memprofile file]")
	fmt.Fprintln(w, "  explore/resume flags: -par N -max N -checkpoint file -checkpoint-every dur -verify (explore defaults to -reduce=all)")
	fmt.Fprintln(w, "  reducediff flags: -reduce set -model m -par N (compares the reduced vs unreduced behavior sets; fails on any difference)")
	fmt.Fprintln(w, "  fuzz/shrink flags: -seed N -count N -budget N -corpus file -weaken site -index N")
	fmt.Fprintln(w, "  triage flags: -seed N -count N -budget N -fastruns N -shrink -corpus file -weaken site")
	fmt.Fprintln(w, "  fastrun flags: -seed N -max N -time dur -par N; fastbench flags: -seed N -json")
	fmt.Fprintln(w, "  modeldiff flags: -a model -b model (litmus targets: SB, MP, IRIW; or any benchmark)")
	fmt.Fprintln(w, "  serve flags: -state dir -addr host:port -jobs N -checkpoint-every dur")
	fmt.Fprintln(w, "  submit/jobs/watch/cancel flags: -state dir|-addr host:port; submit adds -kind -max -par -deadline plus the triage flags")
}

// modelDiffCmd explores target under the -a and -b models and reports
// the behavior- and failure-set differences. A non-empty diff is the
// expected outcome, not an error; only unknown targets/models fail.
func (c *cli) modelDiffCmd(target string) int {
	a, err := model.Parse(c.diffA)
	if err != nil {
		fmt.Fprintln(c.stderr, err)
		return 2
	}
	b, err := model.Parse(c.diffB)
	if err != nil {
		fmt.Fprintln(c.stderr, err)
		return 2
	}
	rep, err := harness.RunModelDiff(target, a, b, c.opts())
	if err != nil {
		fmt.Fprintln(c.stderr, err)
		return 2
	}
	if c.jsonOut {
		blob, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintf(c.stderr, "encoding report: %v\n", err)
			return 1
		}
		fmt.Fprintln(c.stdout, string(blob))
		return 0
	}
	fmt.Fprint(c.stdout, rep.Render())
	return 0
}

// reduceDiffCmd explores target twice — unreduced and under the -reduce
// set (default all) — and compares the observable behavior and failure
// sets, which the reduction must preserve exactly. A behavior-set
// difference is a soundness bug and fails the command; CI runs this as
// the reduction-smoke gate.
func (c *cli) reduceDiffCmd(target string) int {
	if !c.reduceGiven {
		c.reduce = checker.ReduceAll()
	}
	if !c.reduce.Any() {
		fmt.Fprintln(c.stderr, "reducediff needs a non-empty -reduce set to compare against the unreduced run")
		return 2
	}
	opts := c.opts()
	opts.Parallelism = c.parallelism()
	rep, err := harness.RunReduceDiff(target, c.reduce, opts)
	if err != nil {
		fmt.Fprintln(c.stderr, err)
		return 2
	}
	if c.jsonOut {
		blob, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintf(c.stderr, "encoding report: %v\n", err)
			return 1
		}
		fmt.Fprintln(c.stdout, string(blob))
	} else {
		fmt.Fprint(c.stdout, rep.Render())
	}
	if !rep.Sound {
		fmt.Fprintf(c.stderr, "reducediff: reduction %q changed the behavior set for %q\n", c.reduce, target)
		return 1
	}
	return 0
}

// benchDiff compares two benchmark snapshot files (schema v1 or v2) and
// prints the per-row execution-count / wall-clock / spec-cache hit-rate
// comparison. CI runs it between the archived previous artifact and the
// freshly measured one.
func (c *cli) benchDiff(oldPath, newPath string) int {
	read := func(path string) (*harness.BenchSnapshot, bool) {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(c.stderr, "reading snapshot: %v\n", err)
			return nil, false
		}
		s, err := harness.ReadSnapshot(data)
		if err != nil {
			fmt.Fprintf(c.stderr, "%s: %v\n", path, err)
			return nil, false
		}
		return s, true
	}
	oldSnap, ok := read(oldPath)
	if !ok {
		return 1
	}
	newSnap, ok := read(newPath)
	if !ok {
		return 1
	}
	fmt.Fprintf(c.stdout, "=== bench snapshot diff: %s (%s) vs %s (%s) ===\n",
		oldPath, oldSnap.Schema, newPath, newSnap.Schema)
	fmt.Fprint(c.stdout, harness.DiffSnapshots(oldSnap, newSnap))
	return 0
}

// unknownBenchmark reports an unrecognized benchmark name, listing the
// valid ones so the caller need not guess.
func unknownBenchmark(w io.Writer, name string) int {
	fmt.Fprintf(w, "unknown benchmark %q; available benchmarks:\n", name)
	for _, b := range harness.Benchmarks() {
		fmt.Fprintf(w, "  %s\n", b.Name)
	}
	return 2
}

func (c *cli) fig7() int {
	rows := harness.RunAllFig7(c.opts())
	if c.jsonOut {
		return c.emitSnapshot(rows, nil)
	}
	fmt.Fprintln(c.stdout, "=== Figure 7: benchmark results ===")
	fmt.Fprint(c.stdout, harness.FormatFig7(rows))
	return 0
}

func (c *cli) fig8() int {
	rows := harness.RunAllFig8(c.opts())
	if c.jsonOut {
		return c.emitSnapshot(nil, rows)
	}
	fmt.Fprintln(c.stdout, "=== Figure 8: bug injection detection ===")
	fmt.Fprint(c.stdout, harness.FormatFig8(rows))
	return 0
}

func (c *cli) emitSnapshot(fig7 []harness.Fig7Row, fig8 []harness.Fig8Row) int {
	blob, err := harness.SnapshotJSONFor(c.model, fig7, fig8)
	if err != nil {
		fmt.Fprintf(c.stderr, "encoding snapshot: %v\n", err)
		return 1
	}
	fmt.Fprintln(c.stdout, string(blob))
	return 0
}

// kernelBench measures every benchmark's primary unit test through the
// bare checker (no spec monitor) with the kernel hot-path optimizations
// on and off. With -json it emits the BENCH_kernel.json snapshot CI
// archives. A result mismatch between the two modes is a checker bug
// and fails the command.
func (c *cli) kernelBench() int {
	rows := harness.RunKernelBench(c.opts())
	if c.jsonOut {
		blob, err := harness.KernelSnapshotJSON(rows)
		if err != nil {
			fmt.Fprintf(c.stderr, "encoding kernel snapshot: %v\n", err)
			return 1
		}
		fmt.Fprintln(c.stdout, string(blob))
	} else {
		fmt.Fprintln(c.stdout, "=== kernel hot-path benchmark (optimizations on vs off) ===")
		fmt.Fprint(c.stdout, harness.FormatKernelBench(rows))
	}
	for _, r := range rows {
		if !r.Identical {
			fmt.Fprintf(c.stderr, "kernel optimization changed results for %q\n", r.Name)
			return 1
		}
	}
	return 0
}

func (c *cli) knownBugs() {
	fmt.Fprintln(c.stdout, "=== §6.4.1: known bugs ===")
	fmt.Fprint(c.stdout, harness.FormatKnownBugs(harness.RunKnownBugs()))
}

func (c *cli) overlyStrong() {
	fmt.Fprintln(c.stdout, "=== §6.4.3: overly strong parameter (Chase-Lev take CAS -> relaxed) ===")
	r := harness.RunOverlyStrong()
	fmt.Fprintf(c.stdout, "executions=%d feasible=%d violations=%d\n", r.Executions, r.Feasible, r.Violations)
	if r.Violations == 0 {
		fmt.Fprintln(c.stdout, "no specification violation: the seq_cst CAS on top is overly strong (authors confirmed)")
	}
}

func (c *cli) specStats() {
	fmt.Fprintln(c.stdout, "=== §6.2: specification statistics ===")
	fmt.Fprint(c.stdout, harness.FormatSpecStats(harness.RunSpecStats()))
}

func (c *cli) dotOne(name string) int {
	b := harness.BenchmarkByName(name)
	if b == nil {
		return unknownBenchmark(c.stderr, name)
	}
	// The first DFS paths may be pruned (fairness); capture the first
	// feasible execution and stop shortly after.
	var dot string
	cfg := checker.Config{
		MaxExecutions: 1000,
		OnExecution: func(sys *checker.System) []*checker.Failure {
			if dot == "" {
				dot = checker.ExportDOT(sys)
				return []*checker.Failure{{Kind: checker.FailAssertion, Msg: "stop after first feasible execution"}}
			}
			return nil
		},
	}
	cfg.StopAtFirst = true
	core.Explore(b.Spec(), cfg, b.Progs(b.Orders())[0])
	fmt.Fprint(c.stdout, dot)
	return 0
}

// jsonOne explores the benchmark's primary unit test to completion and
// prints a JSON document holding the full Result (with Stats) plus the
// machine-readable trace of the first feasible execution.
func (c *cli) jsonOne(name string) int {
	b := harness.BenchmarkByName(name)
	if b == nil {
		return unknownBenchmark(c.stderr, name)
	}
	var trace json.RawMessage
	spec := b.Spec()
	spec.DisableCheckCache = c.nocache
	cfg := c.opts().ExplorerConfig(b.Name)
	cfg.OnExecution = func(sys *checker.System) []*checker.Failure {
		if trace == nil {
			if blob, err := checker.ExportJSON(sys); err == nil {
				trace = blob
			}
		}
		return nil
	}
	res := core.Explore(spec, cfg, b.Progs(b.Orders())[0])
	out := struct {
		Benchmark string          `json:"benchmark"`
		Result    *checker.Result `json:"result"`
		Trace     json.RawMessage `json:"trace,omitempty"`
	}{Benchmark: b.Name, Result: res, Trace: trace}
	blob, err := json.MarshalIndent(&out, "", "  ")
	if err != nil {
		fmt.Fprintf(c.stderr, "encoding result: %v\n", err)
		return 1
	}
	fmt.Fprintln(c.stdout, string(blob))
	return 0
}

// interruptOnSignal returns a channel that closes on the first SIGINT,
// plus a cleanup func. The engine drains gracefully and writes its final
// checkpoint; a second SIGINT kills the process the usual way because
// the handler is removed after the first.
func interruptOnSignal() (<-chan struct{}, func()) {
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	return interruptFrom(sig, func() { signal.Stop(sig) })
}

// interruptFrom wires an already-registered signal channel to an
// interrupt channel; stop unregisters it. Split from interruptOnSignal
// so tests can drive sig directly instead of raising real signals.
//
// Teardown uses a dedicated done channel instead of closing sig: the old
// `signal.Stop(sig); close(sig)` cleanup both let the parked receiver
// observe a zero-value receive and — worse — left a signal delivered
// just before Stop sitting in sig's buffer, where the receiver could
// still drain it (ok=true) after the run had completed and close the
// interrupt channel retroactively, making a finished explore run look
// interrupted. Now cleanup flips `finished` under the mutex before
// waking the receiver, so once cleanup returns, intr is guaranteed never
// to close — no matter what is buffered in sig.
func interruptFrom(sig chan os.Signal, stop func()) (<-chan struct{}, func()) {
	intr := make(chan struct{})
	done := make(chan struct{})
	var mu sync.Mutex
	finished := false
	go func() {
		select {
		case <-done:
			return
		case <-sig:
		}
		stop()
		mu.Lock()
		defer mu.Unlock()
		if !finished {
			close(intr)
		}
	}()
	cleanup := func() {
		mu.Lock()
		finished = true
		mu.Unlock()
		stop()
		close(done)
	}
	return intr, cleanup
}

// reduceField renders a reduction set for the checkpoint envelope: the
// zero set maps to the absent field (omitempty), matching the back-compat
// rule that absence means no reduction.
func reduceField(r checker.ReduceSet) string {
	if !r.Any() {
		return ""
	}
	return r.String()
}

// checkpointWriter builds the Config.Checkpoint hook: every snapshot
// (periodic and final) is wrapped in the benchmark-pinning envelope and
// atomically written to path. Write errors go to stderr but don't stop
// the exploration — the previous checkpoint on disk stays intact.
func (c *cli) checkpointWriter(path, benchmark string) func(*checker.Checkpoint) {
	return func(cp *checker.Checkpoint) {
		cf := &harness.CheckpointFile{
			Schema:       harness.CheckpointFileSchema,
			Benchmark:    benchmark,
			Workers:      c.parallelism(),
			Model:        string(c.model),
			NoCache:      c.nocache,
			NoKernelOpts: c.nokernelopts,
			Reduce:       reduceField(c.reduce),
			State:        cp,
		}
		if err := harness.WriteCheckpointFile(path, cf); err != nil {
			fmt.Fprintln(c.stderr, err)
		}
	}
}

// printExploreResult summarizes one exploration, either human-readable
// or as the same JSON shape jsonOne emits (minus the trace).
func (c *cli) printExploreResult(name string, res *checker.Result) int {
	if c.jsonOut {
		out := struct {
			Benchmark string          `json:"benchmark"`
			Result    *checker.Result `json:"result"`
		}{Benchmark: name, Result: res}
		blob, err := json.MarshalIndent(&out, "", "  ")
		if err != nil {
			fmt.Fprintf(c.stderr, "encoding result: %v\n", err)
			return 1
		}
		fmt.Fprintln(c.stdout, string(blob))
		return 0
	}
	state := "stopped"
	if res.Exhausted {
		state = "exhausted"
	}
	fmt.Fprintf(c.stdout, "%s: %d executions (%d feasible, %d pruned, %d failures) in %v — %s\n",
		name, res.Executions, res.Feasible, res.Pruned, res.FailureCount,
		res.Elapsed.Round(timeUnit), state)
	if res.Stats.Steals > 0 || res.Stats.MaxFrontier > 0 {
		fmt.Fprintf(c.stdout, "  scheduler: %d steals, frontier high-water %d, worker-busy %v\n",
			res.Stats.Steals, res.Stats.MaxFrontier, res.Stats.WorkerBusy.Round(timeUnit))
	}
	if s := res.Stats; s.RFEquivPrunes > 0 || s.SymmetryPrunes > 0 || s.SpinloopBounds > 0 || s.RFClasses > 0 {
		fmt.Fprintf(c.stdout, "  reduction: %d rf-equiv prunes, %d symmetry prunes, %d spinloop bounds, %d rf classes\n",
			s.RFEquivPrunes, s.SymmetryPrunes, s.SpinloopBounds, s.RFClasses)
	}
	for _, f := range res.Failures {
		fmt.Fprintf(c.stdout, "  failure at execution %d: %v\n", f.Execution, f)
	}
	return 0
}

// exploreCmd explores one benchmark's primary unit test under the
// work-stealing engine, writing a checkpoint on SIGINT, periodically
// with -checkpoint-every, and once more when the run ends.
func (c *cli) exploreCmd(name string) int {
	b := harness.BenchmarkByName(name)
	if b == nil {
		return unknownBenchmark(c.stderr, name)
	}
	if c.checkpointEvery > 0 && c.checkpointPath == "" {
		fmt.Fprintln(c.stderr, "-checkpoint-every needs -checkpoint <file> to write to")
		return 2
	}
	if !c.reduceGiven {
		// explore defaults to the full reduction set; pass -reduce=none
		// for the pre-reduction explorer.
		c.reduce = checker.ReduceAll()
	}
	opts := c.opts()
	opts.Parallelism = c.parallelism()
	spec := b.Spec()
	spec.DisableCheckCache = c.nocache
	cfg := opts.ExplorerConfig(b.Name)
	cfg.MaxExecutions = c.maxExecs
	if c.checkpointPath != "" {
		cfg.Checkpoint = c.checkpointWriter(c.checkpointPath, b.Name)
		cfg.CheckpointEvery = c.checkpointEvery
	}
	if err := cfg.Validate(); err != nil {
		fmt.Fprintln(c.stderr, err)
		return 2
	}
	intr, cleanup := interruptOnSignal()
	defer cleanup()
	cfg.Interrupt = intr
	res := core.Explore(spec, cfg, b.Progs(b.Orders())[0])
	if c.checkpointPath != "" && !c.jsonOut {
		fmt.Fprintf(c.stdout, "checkpoint written to %s\n", c.checkpointPath)
	}
	return c.printExploreResult(b.Name, res)
}

// resumeCmd continues an exploration from a checkpoint file. The
// envelope's -nocache/-nokernelopts switches are adopted so the resumed
// half explores under the exact configuration of the first half. With
// -verify the result is additionally checked bit-identical against a
// fresh sequential exploration. Re-checkpointing goes back to the same
// file unless -checkpoint names another.
func (c *cli) resumeCmd(path string) int {
	cf, err := harness.ReadCheckpointFile(path)
	if err != nil {
		fmt.Fprintln(c.stderr, err)
		return 1
	}
	c.nocache = cf.NoCache
	c.nokernelopts = cf.NoKernelOpts
	// The opt switches are adopted silently (they don't change the
	// explored space), and so is the model when -model wasn't given. An
	// explicit -model must match: a frontier is only valid under the
	// model that produced it.
	if c.modelSet {
		if err := cf.ValidateModel(c.model); err != nil {
			fmt.Fprintln(c.stderr, err)
			return 1
		}
	}
	c.model = cf.ModelID()
	// The reduction set likewise shapes the frontier: adopt the
	// envelope's, and refuse an explicit mismatch.
	if c.reduceGiven {
		if err := cf.ValidateReduce(c.reduce); err != nil {
			fmt.Fprintln(c.stderr, err)
			return 1
		}
	}
	c.reduce = cf.ReduceSet()
	if c.verify && c.reduce.RF {
		fmt.Fprintln(c.stderr, "resume -verify cannot run with the rf reduction: checkpoints do not carry the rf seen-set, so the resumed half re-registers states and its execution/prune split legitimately differs from an uninterrupted run (explore with -reduce=none, or without rf, for round-trip verification)")
		return 2
	}
	b := harness.BenchmarkByName(cf.Benchmark)
	opts := c.opts()
	opts.Parallelism = c.parallelism()
	spec := b.Spec()
	spec.DisableCheckCache = c.nocache
	cfg := opts.ExplorerConfig(b.Name)
	cfg.MaxExecutions = c.maxExecs
	cfg.ResumeFrom = cf.State
	rePath := c.checkpointPath
	if rePath == "" {
		rePath = path
	}
	cfg.Checkpoint = c.checkpointWriter(rePath, b.Name)
	cfg.CheckpointEvery = c.checkpointEvery
	if err := cfg.Validate(); err != nil {
		fmt.Fprintln(c.stderr, err)
		return 2
	}
	intr, cleanup := interruptOnSignal()
	defer cleanup()
	cfg.Interrupt = intr
	res := core.Explore(spec, cfg, b.Progs(b.Orders())[0])
	if code := c.printExploreResult(b.Name, res); code != 0 {
		return code
	}
	if c.verify {
		return c.verifyResumed(b, res)
	}
	return 0
}

// verifyResumed re-explores the benchmark sequentially from scratch and
// requires the resumed result to match bit-for-bit (timings, scheduler
// telemetry, and the spec-cache hit/miss split exempt — see
// harness.ResumeComparableStats) — the checkpoint round-trip smoke check
// CI runs.
func (c *cli) verifyResumed(b *harness.Benchmark, resumed *checker.Result) int {
	opts := c.opts()
	opts.Parallelism = 0
	spec := b.Spec()
	spec.DisableCheckCache = c.nocache
	cfg := opts.ExplorerConfig(b.Name)
	cfg.MaxExecutions = c.maxExecs
	seq := core.Explore(spec, cfg, b.Progs(b.Orders())[0])
	switch {
	case seq.Executions != resumed.Executions,
		seq.Feasible != resumed.Feasible,
		seq.Pruned != resumed.Pruned,
		seq.Exhausted != resumed.Exhausted,
		seq.FailureCount != resumed.FailureCount:
		fmt.Fprintf(c.stderr, "verify FAILED: sequential %+v vs resumed %+v\n", seq, resumed)
		return 1
	case harness.ResumeComparableStats(seq.Stats) != harness.ResumeComparableStats(resumed.Stats):
		fmt.Fprintf(c.stderr, "verify FAILED: stats diverge\n  sequential: %+v\n  resumed:    %+v\n",
			harness.ResumeComparableStats(seq.Stats), harness.ResumeComparableStats(resumed.Stats))
		return 1
	}
	for i := range seq.Failures {
		sf, rf := seq.Failures[i], resumed.Failures[i]
		if sf.Kind != rf.Kind || sf.Execution != rf.Execution {
			fmt.Fprintf(c.stderr, "verify FAILED: failure %d diverges: %v@%d vs %v@%d\n",
				i, sf.Kind, sf.Execution, rf.Kind, rf.Execution)
			return 1
		}
	}
	fmt.Fprintln(c.stdout, "verify OK: resumed result is bit-identical to a fresh sequential exploration")
	return 0
}

func (c *cli) runOne(name string) int {
	b := harness.BenchmarkByName(name)
	if b == nil {
		return unknownBenchmark(c.stderr, name)
	}
	row := b.RunFig7(c.opts())
	f8 := b.RunFig8(c.opts())
	if c.jsonOut {
		return c.emitSnapshot([]harness.Fig7Row{row}, []harness.Fig8Row{f8})
	}
	fmt.Fprint(c.stdout, harness.FormatFig7([]harness.Fig7Row{row}))
	fmt.Fprint(c.stdout, harness.FormatFig8([]harness.Fig8Row{f8}))
	return 0
}
