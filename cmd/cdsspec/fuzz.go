package main

import (
	"encoding/json"
	"fmt"

	"repro/internal/checker"
	"repro/internal/fuzz"
	"repro/internal/harness"
	"repro/internal/memmodel"
)

// campaignConfig builds the fuzz campaign configuration from the parsed
// flags, wiring per-program progress reporting when requested.
func (c *cli) campaignConfig() fuzz.CampaignConfig {
	cfg := fuzz.CampaignConfig{
		Seed:             c.seed,
		Count:            c.count,
		Budget:           c.budget,
		Workers:          c.workers,
		DisableSpecCache: c.nocache,
	}
	if c.progress {
		cfg.Progress = func(i int, p checker.Progress) {
			if p.Final {
				return // per-program completions would flood a campaign log
			}
			fmt.Fprintf(c.stderr, "[program %d] %d executions (%d feasible, %d pruned) %.0f exec/s\n",
				i, p.Executions, p.Feasible, p.Pruned, p.ExecsPerSec)
		}
	}
	return cfg
}

// weakenedOrders resolves the -weaken flag against one benchmark's order
// table: nil orders (campaign uses the correct defaults) when the flag
// is unset, a one-step-weakened clone otherwise. ok is false when the
// site is unknown or already weakest.
func (c *cli) weakenedOrders(b *harness.Benchmark) (*memmodel.OrderTable, bool) {
	if c.weaken == "" {
		return nil, true
	}
	ord := b.Orders()
	if _, ok := ord.Site(c.weaken); !ok {
		fmt.Fprintf(c.stderr, "unknown memory-order site %q for %s; sites:\n", c.weaken, b.Name)
		for _, s := range ord.Sites() {
			fmt.Fprintf(c.stderr, "  %s (default %s)\n", s.Name, s.Default)
		}
		return nil, false
	}
	if !ord.WeakenSite(c.weaken) {
		fmt.Fprintf(c.stderr, "site %q of %s is already at its weakest order\n", c.weaken, b.Name)
		return nil, false
	}
	return ord, true
}

// fuzzCmd runs generative campaigns: over every benchmark, or over the
// one named positionally. Exit codes: 0 on a clean campaign (or when a
// -weaken hunt ran, whatever it found), 3 when a campaign against the
// correct orders found failures (a regression the nightly CI job turns
// into a red run), 1/2 on operational/usage errors.
func (c *cli) fuzzCmd(pos []string) int {
	bs := harness.Benchmarks()
	if len(pos) > 0 {
		b := harness.BenchmarkByName(pos[0])
		if b == nil {
			return unknownBenchmark(c.stderr, pos[0])
		}
		bs = []*harness.Benchmark{b}
	}
	if c.weaken != "" && len(bs) != 1 {
		fmt.Fprintln(c.stderr, "-weaken needs a single benchmark: sites are per-benchmark")
		return 2
	}

	var corpus *fuzz.Corpus
	if c.corpusPath != "" {
		var err error
		if corpus, err = fuzz.LoadCorpus(c.corpusPath); err != nil {
			fmt.Fprintln(c.stderr, err)
			return 1
		}
	}

	sums := make([]fuzz.Summary, 0, len(bs))
	var details []string
	unique, added := 0, 0
	for _, b := range bs {
		ord, ok := c.weakenedOrders(b)
		if !ok {
			return 2
		}
		cfg := c.campaignConfig()
		cfg.Orders = ord
		camp, err := fuzz.Run(b.FuzzTarget(), cfg)
		if err != nil {
			fmt.Fprintf(c.stderr, "fuzzing %s: %v\n", b.Name, err)
			return 1
		}
		sums = append(sums, camp.Summary)
		unique += camp.Summary.Unique
		if corpus != nil {
			added += corpus.AddCampaign(camp)
		}
		for _, v := range camp.Unique {
			details = append(details, fmt.Sprintf("[%s] %s: %s\n  program: %s",
				b.Name, v.Bucket, v.Failure.Msg, v.Program))
		}
	}
	if corpus != nil {
		if err := corpus.Save(c.corpusPath); err != nil {
			fmt.Fprintln(c.stderr, err)
			return 1
		}
		fmt.Fprintf(c.stderr, "corpus %s: %d new entries (%d total)\n", c.corpusPath, added, len(corpus.Entries))
	}

	if c.jsonOut {
		blob, err := json.MarshalIndent(&harness.BenchSnapshot{Schema: harness.SnapshotSchema, Fuzz: sums}, "", "  ")
		if err != nil {
			fmt.Fprintf(c.stderr, "encoding snapshot: %v\n", err)
			return 1
		}
		fmt.Fprintln(c.stdout, string(blob))
	} else {
		fmt.Fprintf(c.stdout, "=== fuzz campaign (seed %d, %d programs/benchmark, budget %d) ===\n",
			c.seed, c.count, c.budget)
		fmt.Fprint(c.stdout, fuzz.FormatSummaries(sums))
		for _, d := range details {
			fmt.Fprintln(c.stdout, d)
		}
	}
	if unique > 0 && c.weaken == "" {
		fmt.Fprintf(c.stderr, "fuzz: %d unique failures against the correct memory orders\n", unique)
		return 3
	}
	return 0
}

// shrinkCmd minimizes a failing program for one benchmark. With -corpus
// the program comes from the corpus (-index selects among the
// benchmark's entries) and the minimal form is saved back; otherwise a
// fresh campaign supplies the first unique failure.
func (c *cli) shrinkCmd(name string) int {
	b := harness.BenchmarkByName(name)
	if b == nil {
		return unknownBenchmark(c.stderr, name)
	}
	ord, ok := c.weakenedOrders(b)
	if !ok {
		return 2
	}
	target := b.FuzzTarget()
	cfg := c.campaignConfig()

	var prog *fuzz.Program
	var corpus *fuzz.Corpus
	var entry *fuzz.CorpusEntry
	if c.corpusPath != "" {
		var err error
		if corpus, err = fuzz.LoadCorpus(c.corpusPath); err != nil {
			fmt.Fprintln(c.stderr, err)
			return 1
		}
		entries := corpus.ForBenchmark(b.Name)
		if c.index < 0 || c.index >= len(entries) {
			fmt.Fprintf(c.stderr, "corpus %s holds %d entries for %s; -index %d is out of range\n",
				c.corpusPath, len(entries), b.Name, c.index)
			return 1
		}
		entry = entries[c.index]
		prog = entry.Program
	} else {
		cfg.Orders = ord
		camp, err := fuzz.Run(target, cfg)
		if err != nil {
			fmt.Fprintf(c.stderr, "fuzzing %s: %v\n", b.Name, err)
			return 1
		}
		if len(camp.Unique) == 0 {
			fmt.Fprintf(c.stderr, "campaign found no failure to shrink (seed %d, %d programs); try -weaken <site>, another -seed, or a larger -count\n",
				c.seed, c.count)
			return 1
		}
		prog = camp.Unique[0].Program
	}

	res, err := fuzz.Shrink(target, prog, ord, cfg)
	if err != nil {
		fmt.Fprintln(c.stderr, err)
		return 1
	}
	if entry != nil {
		entry.Shrunk = res.Minimal
		if err := corpus.Save(c.corpusPath); err != nil {
			fmt.Fprintln(c.stderr, err)
			return 1
		}
	}

	if c.jsonOut {
		blob, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			fmt.Fprintf(c.stderr, "encoding shrink result: %v\n", err)
			return 1
		}
		fmt.Fprintln(c.stdout, string(blob))
		return 0
	}
	fmt.Fprintf(c.stdout, "=== shrink: %s (%s) ===\n", b.Name, res.Kind)
	fmt.Fprintf(c.stdout, "original (%d ops): %s\n", res.Original.OpCount(), res.Original)
	fmt.Fprintf(c.stdout, "minimal  (%d ops): %s\n", res.Minimal.OpCount(), res.Minimal)
	fmt.Fprintf(c.stdout, "%d reductions accepted over %d candidate checks; failure: %s\n",
		res.Steps, res.Attempts, res.Verdict.Failure.Msg)
	fmt.Fprintln(c.stdout)
	fmt.Fprint(c.stdout, res.Minimal.GoClosure(target.Registry))
	return 0
}

// listVerbose prints each benchmark with its fuzzable op registry and
// memory-order sites (the -weaken and shrink vocabulary).
func (c *cli) listVerbose() {
	for _, b := range harness.Benchmarks() {
		fmt.Fprintln(c.stdout, b.Name)
		reg := b.Ops()
		for _, r := range reg.Roles {
			cap := "unlimited"
			if r.Max > 0 {
				cap = fmt.Sprintf("max %d", r.Max)
			}
			fmt.Fprintf(c.stdout, "  role %s (%s)\n", r.Name, cap)
		}
		for _, op := range reg.Ops {
			line := fmt.Sprintf("  op %s/%d", op.Name, op.Arity)
			if op.Role != "" {
				line += " [" + op.Role + "]"
			}
			if op.Produces > 0 {
				line += fmt.Sprintf(" produces=%d", op.Produces)
			}
			if op.Consumes > 0 {
				line += fmt.Sprintf(" consumes=%d", op.Consumes)
			}
			fmt.Fprintln(c.stdout, line)
		}
		for _, s := range b.Orders().Sites() {
			fmt.Fprintf(c.stdout, "  site %s (default %s)\n", s.Name, s.Default)
		}
	}
}
