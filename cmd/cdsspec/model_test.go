package main

import (
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/harness"
)

// TestModelDiffCLI: the modeldiff subcommand on SB reports the relaxed
// store-buffering outcome as c11-only, in both renderings.
func TestModelDiffCLI(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"modeldiff", "SB"}, &out, &errOut); code != 0 {
		t.Fatalf("modeldiff SB exited %d: %s", code, errOut.String())
	}
	for _, want := range []string{"only c11: r1=0 r2=0", "c11 vs sc"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}

	out.Reset()
	errOut.Reset()
	if code := run([]string{"modeldiff", "-json", "-a", "c11", "-b", "sc", "SB"}, &out, &errOut); code != 0 {
		t.Fatalf("modeldiff -json exited %d: %s", code, errOut.String())
	}
	var rep harness.ModelDiffReport
	if err := json.Unmarshal([]byte(out.String()), &rep); err != nil {
		t.Fatalf("decoding report: %v", err)
	}
	if rep.OnlyACount < 1 || rep.OnlyBCount != 0 {
		t.Errorf("unexpected diff counts: %+v", rep)
	}
}

// TestModelDiffCLIErrors: unknown targets and models exit 2 with a
// message naming the valid choices.
func TestModelDiffCLIErrors(t *testing.T) {
	cases := [][]string{
		{"modeldiff"},
		{"modeldiff", "no-such-target"},
		{"modeldiff", "-a", "tso", "SB"},
		{"explore", "-model", "tso", "M&S Queue"},
	}
	for _, args := range cases {
		var out, errOut strings.Builder
		if code := run(args, &out, &errOut); code != 2 {
			t.Errorf("run(%q) exited %d, want 2: %s", args, code, errOut.String())
		}
		if errOut.Len() == 0 {
			t.Errorf("run(%q) printed nothing to stderr", args)
		}
	}
}

// TestResumeModelMismatchCLI: a checkpoint explored under one model is
// stamped with it, refuses an explicitly different -model on resume, and
// resumes cleanly when the flag is omitted (the envelope's model is
// adopted, like the opt switches).
func TestResumeModelMismatchCLI(t *testing.T) {
	cp := filepath.Join(t.TempDir(), "cp.json")
	var out, errOut strings.Builder
	if code := run([]string{"explore", "-par", "2", "-max", "100", "-model", "sc", "-checkpoint", cp, "M&S Queue"}, &out, &errOut); code != 0 {
		t.Fatalf("explore exited %d: %s", code, errOut.String())
	}
	cf, err := harness.ReadCheckpointFile(cp)
	if err != nil {
		t.Fatal(err)
	}
	if cf.Model != "sc" {
		t.Fatalf("envelope model = %q, want sc", cf.Model)
	}

	out.Reset()
	errOut.Reset()
	if code := run([]string{"resume", "-model", "c11", cp}, &out, &errOut); code == 0 {
		t.Fatal("resume under a mismatched model exited 0")
	}
	if msg := errOut.String(); !strings.Contains(msg, `explored under memory model "sc"`) || !strings.Contains(msg, `"c11"`) {
		t.Errorf("mismatch error should name both models:\n%s", msg)
	}

	out.Reset()
	errOut.Reset()
	if code := run([]string{"resume", "-par", "2", cp}, &out, &errOut); code != 0 {
		t.Fatalf("flagless resume exited %d: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "exhausted") {
		t.Errorf("adopted-model resume did not exhaust:\n%s", out.String())
	}
}
