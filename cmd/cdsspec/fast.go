package main

import (
	"fmt"

	"repro/internal/checker"
	"repro/internal/harness"
)

// fastRunCmd screens one benchmark's primary unit test in fast mode:
// randomized plausible executions with bounded store buffers, no
// decision tree, no CDSSpec layer — built-in checks only (races,
// uninitialized loads, deadlocks, livelocks). The run budget is -max
// (default 1000), the wall-clock budget -time, and -seed makes the whole
// run deterministic: same seed, same failures, at any -par.
func (c *cli) fastRunCmd(name string) int {
	b := harness.BenchmarkByName(name)
	if b == nil {
		return unknownBenchmark(c.stderr, name)
	}
	cfg := checker.Config{
		FastMode:      true,
		Model:         c.model,
		Seed:          int64(c.seed),
		MaxExecutions: c.maxExecs,
		TimeBudget:    c.timeBudget,
		Parallelism:   c.parallelism(),
	}
	if err := cfg.Validate(); err != nil {
		fmt.Fprintln(c.stderr, err)
		return 2
	}
	intr, cleanup := interruptOnSignal()
	defer cleanup()
	cfg.Interrupt = intr
	res := checker.Explore(cfg, b.Progs(b.Orders())[0])
	code := c.printExploreResult(b.Name, res)
	if !c.jsonOut {
		fmt.Fprintf(c.stdout, "  fast mode: %.0f runs/sec, %d store-buffer evictions\n",
			res.Stats.RunsPerSec, res.Stats.StoreBufferEvictions)
	}
	if res.FailureCount > 0 {
		return 1
	}
	return code
}

// fastBenchCmd runs the fast-mode gate: every paper benchmark at unit
// scale (must stay clean), the builtin-detectable §6.4.1 seeded bugs
// (must be caught), and a 10⁵-operation MPMC workload exhaustive mode
// cannot touch (must stay feasible under bounded store buffers). With
// -json it emits the BENCH_fastmode.json snapshot CI archives next to
// the kernel-bench artifact. Non-zero exit when any row fails its gate.
func (c *cli) fastBenchCmd() int {
	rows := harness.RunFastBench(harness.FastBenchConfig{Seed: int64(c.seed)})
	if c.jsonOut {
		blob, err := harness.FastSnapshotJSON(rows)
		if err != nil {
			fmt.Fprintf(c.stderr, "encoding snapshot: %v\n", err)
			return 1
		}
		fmt.Fprintln(c.stdout, string(blob))
	} else {
		fmt.Fprint(c.stdout, harness.FormatFastBench(rows))
	}
	for i := range rows {
		if !rows[i].Pass() {
			fmt.Fprintf(c.stderr, "fastbench: row %q (%s) failed its gate\n", rows[i].Name, rows[i].RowKind)
			return 1
		}
	}
	return 0
}
