package main

import (
	"os"
	"sync"
	"testing"
	"time"
)

// TestInterruptFires: a signal arriving mid-run closes the interrupt
// channel and stops signal delivery.
func TestInterruptFires(t *testing.T) {
	sig := make(chan os.Signal, 1)
	var mu sync.Mutex
	stopped := 0
	intr, cleanup := interruptFrom(sig, func() { mu.Lock(); stopped++; mu.Unlock() })
	sig <- os.Interrupt
	select {
	case <-intr:
	case <-time.After(5 * time.Second):
		t.Fatal("interrupt channel never closed after a signal")
	}
	mu.Lock()
	if stopped == 0 {
		t.Error("stop was not called before the interrupt fired")
	}
	mu.Unlock()
	cleanup()
}

// TestInterruptAfterCompletion is the regression test for the teardown
// bug: the old cleanup (signal.Stop + close(sig)) left a signal
// delivered around completion time sitting in sig's buffer, where the
// receiver goroutine could still drain it after the run finished and
// close the interrupt channel retroactively — making a completed explore
// run checkpoint as interrupted. Once cleanup returns, a buffered or
// late signal must never fire the interrupt.
func TestInterruptAfterCompletion(t *testing.T) {
	sig := make(chan os.Signal, 1)
	intr, cleanup := interruptFrom(sig, func() {})
	cleanup()           // the run completed normally
	sig <- os.Interrupt // a signal lands just after completion
	select {
	case <-intr:
		t.Fatal("interrupt fired after the run completed")
	case <-time.After(50 * time.Millisecond):
	}
}

// TestInterruptRaceWithCompletion pins down the exact interleaving the
// old code lost: the receiver has already taken the signal out of sig
// (it is inside stop, about to mark the run interrupted) when the run
// completes. Completion wins — the interrupt channel must stay open.
func TestInterruptRaceWithCompletion(t *testing.T) {
	sig := make(chan os.Signal, 1)
	inStop := make(chan struct{})
	release := make(chan struct{})
	// The receiver's stop call (always the first — the test waits on
	// inStop before triggering cleanup) parks until the test releases
	// it; cleanup's own stop call must return immediately, so this is a
	// call counter rather than a sync.Once (Once.Do would block the
	// second caller while the first is parked inside it).
	var mu sync.Mutex
	calls := 0
	stop := func() {
		mu.Lock()
		calls++
		first := calls == 1
		mu.Unlock()
		if first {
			close(inStop)
			<-release
		}
	}
	intr, cleanup := interruptFrom(sig, stop)
	sig <- os.Interrupt
	<-inStop  // the receiver holds the signal and is parked in stop
	cleanup() // the run completes while the receiver is mid-teardown
	close(release)
	select {
	case <-intr:
		t.Fatal("interrupt fired even though the run completed first")
	case <-time.After(50 * time.Millisecond):
	}
}
