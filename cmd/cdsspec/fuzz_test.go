package main

import (
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/fuzz"
	"repro/internal/harness"
)

// TestListVerbose: list -v prints each benchmark's ops, roles, and
// memory-order sites.
func TestListVerbose(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"list", "-v"}, &out, &errOut); code != 0 {
		t.Fatalf("list -v exited %d: %s", code, errOut.String())
	}
	for _, want := range []string{
		"Chase-Lev Deque", "role owner (max 1)", "op push/1 [owner]",
		"op enq/1 [producer] produces=1", "site enq_store_next (default release)",
		"op lock_inc_unlock", "site take_cas_top (default seq_cst)",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("list -v missing %q:\n%s", want, out.String())
		}
	}
}

// TestFuzzJSONSnapshot: fuzz -json over one benchmark emits a schema-v3
// snapshot whose Fuzz summaries carry the campaign counts.
func TestFuzzJSONSnapshot(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"fuzz", "-json", "-seed", "5", "-count", "6", "-budget", "1500", "SPSC Queue"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("fuzz -json exited %d: %s", code, errOut.String())
	}
	snap, err := harness.ReadSnapshot([]byte(out.String()))
	if err != nil {
		t.Fatalf("output is not a snapshot: %v\n%s", err, out.String())
	}
	if snap.Schema != harness.SnapshotSchema {
		t.Errorf("schema = %q, want %q", snap.Schema, harness.SnapshotSchema)
	}
	if len(snap.Fuzz) != 1 {
		t.Fatalf("expected one fuzz summary: %+v", snap)
	}
	s := snap.Fuzz[0]
	if s.Benchmark != "SPSC Queue" || s.Seed != 5 || s.Programs != 6 || s.Executions == 0 {
		t.Errorf("implausible summary: %+v", s)
	}
	if s.Failing != 0 {
		t.Errorf("campaign against correct orders found failures: %+v", s)
	}
}

// TestFuzzSeededBugExitCodes: a -weaken campaign that finds the seeded
// bug exits 0 (the hunt succeeded); the same failures against the
// correct orders would exit 3. Also checks the human-readable report.
func TestFuzzSeededBugExitCodes(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"fuzz", "-count", "10", "-budget", "3000", "-weaken", "enq_store_next", "SPSC Queue"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("fuzz -weaken exited %d: %s", code, errOut.String())
	}
	for _, want := range []string{"=== fuzz campaign", "SPSC Queue", "bucket builtin/", "program: t0["} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("fuzz report missing %q:\n%s", want, out.String())
		}
	}
}

// TestFuzzBadWeaken: an unknown site name exits 2 and lists the valid
// sites; -weaken without a single benchmark exits 2.
func TestFuzzBadWeaken(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"fuzz", "-weaken", "no_such_site", "SPSC Queue"}, &out, &errOut); code != 2 {
		t.Fatalf("fuzz -weaken no_such_site exited %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), `unknown memory-order site "no_such_site"`) ||
		!strings.Contains(errOut.String(), "enq_store_next") {
		t.Errorf("missing site listing:\n%s", errOut.String())
	}
	errOut.Reset()
	if code := run([]string{"fuzz", "-weaken", "enq_store_next"}, &out, &errOut); code != 2 {
		t.Errorf("fuzz -weaken without a benchmark exited %d, want 2", code)
	}
}

// TestShrinkCLIEndToEnd: fuzz -corpus persists the seeded-bug failures,
// shrink -corpus minimizes entry 0 and saves the shrunk form back, and
// the report carries the Go-closure rendering.
func TestShrinkCLIEndToEnd(t *testing.T) {
	corpus := filepath.Join(t.TempDir(), "corpus.json")
	var out, errOut strings.Builder
	code := run([]string{"fuzz", "-count", "10", "-budget", "3000",
		"-weaken", "enq_store_next", "-corpus", corpus, "SPSC Queue"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("fuzz -corpus exited %d: %s", code, errOut.String())
	}
	c, err := fuzz.LoadCorpus(corpus)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.ForBenchmark("SPSC Queue")) == 0 {
		t.Fatal("campaign persisted no corpus entries")
	}

	out.Reset()
	errOut.Reset()
	code = run([]string{"shrink", "-weaken", "enq_store_next", "-corpus", corpus, "-index", "0",
		"-budget", "3000", "SPSC Queue"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("shrink exited %d: %s", code, errOut.String())
	}
	for _, want := range []string{"=== shrink: SPSC Queue", "minimal ", "func(root *checker.Thread)", "spsc.New(root, orders)"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("shrink report missing %q:\n%s", want, out.String())
		}
	}
	c, err = fuzz.LoadCorpus(corpus)
	if err != nil {
		t.Fatal(err)
	}
	entry := c.ForBenchmark("SPSC Queue")[0]
	if entry.Shrunk == nil {
		t.Fatal("shrink did not save the minimal program back to the corpus")
	}
	if entry.Shrunk.OpCount() > entry.Program.OpCount() {
		t.Errorf("shrunk program (%d ops) larger than the original (%d)",
			entry.Shrunk.OpCount(), entry.Program.OpCount())
	}

	// shrink -json emits the machine-readable ShrinkResult.
	out.Reset()
	errOut.Reset()
	code = run([]string{"shrink", "-json", "-weaken", "enq_store_next", "-corpus", corpus,
		"-budget", "3000", "SPSC Queue"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("shrink -json exited %d: %s", code, errOut.String())
	}
	var res fuzz.ShrinkResult
	if err := json.Unmarshal([]byte(out.String()), &res); err != nil {
		t.Fatalf("shrink -json output invalid: %v\n%s", err, out.String())
	}
	if res.Minimal == nil || res.Kind.String() == "" {
		t.Errorf("implausible shrink result: %+v", res)
	}
}

// TestShrinkNoFailure: shrinking a benchmark whose campaign finds no
// failure reports the situation instead of succeeding vacuously.
func TestShrinkNoFailure(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"shrink", "-count", "3", "-budget", "1000", "SPSC Queue"}, &out, &errOut); code != 1 {
		t.Fatalf("shrink without failures exited %d, want 1", code)
	}
	if !strings.Contains(errOut.String(), "no failure to shrink") {
		t.Errorf("missing explanation:\n%s", errOut.String())
	}
}
