// Compose demonstrates the paper's composability theorem (§3.2,
// Theorem 1): objects that are individually non-deterministic
// linearizable remain so under composition, and composition never masks a
// component's bug.
//
// Run with: go run ./examples/compose
package main

import (
	"fmt"

	"repro/internal/checker"
	"repro/internal/core"
	"repro/internal/structures/msqueue"
	"repro/internal/structures/ticketlock"
)

func main() {
	fmt.Println("Composing a Michael & Scott queue with a ticket lock (Theorem 1)...")
	spec := core.Compose(msqueue.Spec("q"), ticketlock.Spec("l"))
	res := core.Explore(spec, checker.Config{}, func(root *checker.Thread) {
		q := msqueue.New(root, "q", nil)
		l := ticketlock.New(root, "l", nil)
		a := root.Spawn("a", func(tt *checker.Thread) {
			l.Lock(tt)
			q.Enq(tt, 1)
			l.Unlock(tt)
		})
		b := root.Spawn("b", func(tt *checker.Thread) {
			l.Lock(tt)
			q.Deq(tt)
			l.Unlock(tt)
		})
		root.Join(a)
		root.Join(b)
	})
	fmt.Printf("correct composition: %d executions, %d feasible, %d violations\n\n",
		res.Executions, res.Feasible, res.FailureCount)

	fmt.Println("Breaking one component (the queue's publication CAS)...")
	res = core.Explore(spec, checker.Config{StopAtFirst: true}, func(root *checker.Thread) {
		q := msqueue.New(root, "q", msqueue.KnownBugEnqueue())
		l := ticketlock.New(root, "l", nil)
		a := root.Spawn("a", func(tt *checker.Thread) {
			q.Enq(tt, 1)
			l.Lock(tt)
			l.Unlock(tt)
		})
		b := root.Spawn("b", func(tt *checker.Thread) {
			q.Deq(tt)
		})
		root.Join(a)
		root.Join(b)
	})
	if f := res.FirstFailure(); f != nil {
		fmt.Printf("composition did not mask it: detected via %s\n  %s\n", f.Kind, f.Msg)
	} else {
		fmt.Println("unexpected: bug not detected")
	}
}
