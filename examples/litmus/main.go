// Litmus explores the classic weak-memory litmus tests under the
// simulated C/C++11 memory model and prints the admitted outcomes —
// useful both as a sanity check of the substrate and as a tour of what
// "relaxed behavior" means.
//
// Run with: go run ./examples/litmus
package main

import (
	"fmt"
	"sort"

	"repro/internal/checker"
	"repro/internal/memmodel"
)

// explore runs prog exhaustively and returns its outcome histogram.
func explore(prog func(root *checker.Thread, report func(string))) map[string]int {
	outcomes := map[string]int{}
	var cur []string
	cfg := checker.Config{
		OnRunStart: func(sys *checker.System) { cur = nil },
		OnExecution: func(sys *checker.System) []*checker.Failure {
			for _, o := range cur {
				outcomes[o]++
			}
			return nil
		},
	}
	checker.Explore(cfg, func(root *checker.Thread) {
		prog(root, func(o string) { cur = append(cur, o) })
	})
	return outcomes
}

func show(name string, outcomes map[string]int, note string) {
	keys := make([]string, 0, len(outcomes))
	for k := range outcomes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Printf("%s: %v\n  %s\n\n", name, keys, note)
}

func storeBuffering(ord memmodel.MemOrder) map[string]int {
	return explore(func(root *checker.Thread, report func(string)) {
		x := root.NewAtomicInit("x", 0)
		y := root.NewAtomicInit("y", 0)
		var r1, r2 memmodel.Value
		a := root.Spawn("a", func(tt *checker.Thread) {
			x.Store(tt, ord, 1)
			r1 = y.Load(tt, ord)
		})
		b := root.Spawn("b", func(tt *checker.Thread) {
			y.Store(tt, ord, 1)
			r2 = x.Load(tt, ord)
		})
		root.Join(a)
		root.Join(b)
		report(fmt.Sprintf("r1=%d,r2=%d", r1, r2))
	})
}

func messagePassing(storeOrd, loadOrd memmodel.MemOrder) map[string]int {
	return explore(func(root *checker.Thread, report func(string)) {
		data := root.NewAtomicInit("data", 0)
		flag := root.NewAtomicInit("flag", 0)
		w := root.Spawn("w", func(tt *checker.Thread) {
			data.Store(tt, memmodel.Relaxed, 42)
			flag.Store(tt, storeOrd, 1)
		})
		r := root.Spawn("r", func(tt *checker.Thread) {
			f := flag.Load(tt, loadOrd)
			d := data.Load(tt, memmodel.Relaxed)
			report(fmt.Sprintf("flag=%d,data=%d", f, d))
		})
		root.Join(w)
		root.Join(r)
	})
}

func iriw(storeOrd, loadOrd memmodel.MemOrder) map[string]int {
	return explore(func(root *checker.Thread, report func(string)) {
		x := root.NewAtomicInit("x", 0)
		y := root.NewAtomicInit("y", 0)
		var r1, r2, r3, r4 memmodel.Value
		ts := []*checker.Thread{
			root.Spawn("wx", func(tt *checker.Thread) { x.Store(tt, storeOrd, 1) }),
			root.Spawn("wy", func(tt *checker.Thread) { y.Store(tt, storeOrd, 1) }),
			root.Spawn("r1", func(tt *checker.Thread) { r1, r2 = x.Load(tt, loadOrd), y.Load(tt, loadOrd) }),
			root.Spawn("r2", func(tt *checker.Thread) { r3, r4 = y.Load(tt, loadOrd), x.Load(tt, loadOrd) }),
		}
		for _, th := range ts {
			root.Join(th)
		}
		report(fmt.Sprintf("%d%d%d%d", r1, r2, r3, r4))
	})
}

func main() {
	fmt.Println("Classic litmus tests under the simulated C/C++11 memory model")
	fmt.Println()

	show("SB (store buffering), seq_cst", storeBuffering(memmodel.SeqCst),
		"r1=0,r2=0 is forbidden: seq_cst restores a total order")
	show("SB (store buffering), relaxed", storeBuffering(memmodel.Relaxed),
		"r1=0,r2=0 appears: both loads may ignore the other thread's store")
	show("MP (message passing), release/acquire", messagePassing(memmodel.Release, memmodel.Acquire),
		"flag=1,data=0 is forbidden: the acquire load synchronizes")
	show("MP (message passing), relaxed", messagePassing(memmodel.Relaxed, memmodel.Relaxed),
		"flag=1,data=0 appears: no synchronizes-with edge")
	show("IRIW, seq_cst", iriw(memmodel.SeqCst, memmodel.SeqCst),
		"1010 is forbidden: both readers agree on the write order")
	show("IRIW, release/acquire", iriw(memmodel.Release, memmodel.Acquire),
		"1010 appears: this is the §1.2 behavior that breaks sequential histories")
}
