// Queuespec walks through the paper's running example (§2, Figures 2–6):
// the blocking queue, its non-deterministic FIFO specification, the
// Figure 3 non-linearizable execution that the spec nevertheless admits,
// and a seeded bug the spec catches.
//
// Run with: go run ./examples/queuespec
package main

import (
	"fmt"

	"repro/internal/checker"
	"repro/internal/core"
	"repro/internal/memmodel"
	"repro/internal/structures/blockingqueue"
)

func main() {
	fmt.Println("1. The Figure 3 execution: two queues, two threads, both deqs may")
	fmt.Println("   return empty. Not linearizable — but admitted by the paper's")
	fmt.Println("   non-deterministic specification with justifying prefixes.")
	spec := core.Compose(blockingqueue.Spec("x"), blockingqueue.Spec("y"))
	bothEmpty := 0
	var r1, r2 memmodel.Value
	cfg := checker.Config{
		OnExecution: func(sys *checker.System) []*checker.Failure {
			if r1 == blockingqueue.Empty && r2 == blockingqueue.Empty {
				bothEmpty++
			}
			return nil
		},
	}
	res := core.Explore(spec, cfg, func(root *checker.Thread) {
		x := blockingqueue.New(root, "x", nil)
		y := blockingqueue.New(root, "y", nil)
		t1 := root.Spawn("t1", func(tt *checker.Thread) {
			x.Enq(tt, 1)
			r1 = y.Deq(tt)
		})
		t2 := root.Spawn("t2", func(tt *checker.Thread) {
			y.Enq(tt, 1)
			r2 = x.Deq(tt)
		})
		root.Join(t1)
		root.Join(t2)
	})
	fmt.Printf("   explored %d executions, %d with r1=r2=-1, violations: %d\n\n",
		res.Executions, bothEmpty, res.FailureCount)

	fmt.Println("2. The same spec still catches real bugs: a deq that follows an")
	fmt.Println("   enq in program order must see the element (§2.1).")
	res = core.Explore(blockingqueue.Spec("q"), checker.Config{}, func(root *checker.Thread) {
		q := blockingqueue.New(root, "q", nil)
		q.Enq(root, 42)
		v := q.Deq(root)
		root.Assert(v == 42, "deq returned %d", int64(v))
	})
	fmt.Printf("   single-thread enq/deq: %d executions, violations: %d\n\n",
		res.Executions, res.FailureCount)

	fmt.Println("3. Seed the Figure 1 bug: weaken the enqueue CAS to relaxed, so the")
	fmt.Println("   dequeuer can receive a node whose contents were never published.")
	ord := blockingqueue.DefaultOrders()
	ord.Set(blockingqueue.SiteEnqCASNext, memmodel.Relaxed)
	res = core.Explore(blockingqueue.Spec("q"), checker.Config{StopAtFirst: true}, func(root *checker.Thread) {
		q := blockingqueue.New(root, "q", ord)
		a := root.Spawn("a", func(tt *checker.Thread) { q.Enq(tt, 7) })
		b := root.Spawn("b", func(tt *checker.Thread) { q.Deq(tt) })
		root.Join(a)
		root.Join(b)
	})
	if f := res.FirstFailure(); f != nil {
		fmt.Printf("   detected (%s): %s\n", f.Kind, f.Msg)
	} else {
		fmt.Println("   unexpected: bug not detected")
	}
}
