// Quickstart: specify and check a tiny concurrent data structure — a
// one-word register with relaxed atomics — reproducing the paper's §2.2
// discussion: a read may return a stale value only if a justifying prefix
// (or a concurrent write) accounts for it.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/internal/checker"
	"repro/internal/core"
	"repro/internal/memmodel"
	"repro/internal/seqds"
)

// register is the data structure under test: one relaxed atomic word,
// instrumented with CDSSpec method boundaries and ordering points.
type register struct {
	mon  *core.Monitor
	cell *checker.Atomic
}

func newRegister(t *checker.Thread) *register {
	return &register{mon: core.Of(t), cell: t.NewAtomicInit("reg", 0)}
}

func (r *register) Write(t *checker.Thread, v memmodel.Value) {
	c := r.mon.Begin(t, "write", v)
	r.cell.Store(t, memmodel.Relaxed, v)
	c.OPDefine(t, true) // the store is the ordering point
	c.EndVoid(t)
}

func (r *register) Read(t *checker.Thread) memmodel.Value {
	c := r.mon.Begin(t, "read")
	v := r.cell.Load(t, memmodel.Relaxed)
	c.OPDefine(t, true) // the load is the ordering point
	c.End(t, v)
	return v
}

// spec is the §2.2 register specification: reads are justified by a
// prefix in which the register holds the returned value, or by a
// concurrent write of that value.
func spec() *core.Spec {
	return &core.Spec{
		Name:     "register",
		NewState: func() core.State { return seqds.NewRegister(0) },
		Methods: map[string]*core.MethodSpec{
			"write": {
				SideEffect: func(st core.State, c *core.Call) {
					st.(*seqds.Register).Write(c.Arg(0))
				},
			},
			"read": {
				SideEffect: func(st core.State, c *core.Call) {
					c.SRet = st.(*seqds.Register).Read()
				},
				NeedsJustify: func(c *core.Call) bool { return true },
				JustifyPost: func(st core.State, c *core.Call, conc []*core.Call) bool {
					return c.SRet == c.Ret
				},
				JustifyConcurrent: func(c *core.Call, conc []*core.Call) bool {
					for _, w := range conc {
						if !w.HasRet && w.Arg(0) == c.Ret {
							return true
						}
					}
					return false
				},
			},
		},
	}
}

func main() {
	fmt.Println("Checking a relaxed atomic register against its CDSSpec specification...")
	res := core.Explore(spec(), checker.Config{}, func(root *checker.Thread) {
		r := newRegister(root)
		w := root.Spawn("writer", func(tt *checker.Thread) {
			r.Write(tt, 1)
			r.Write(tt, 2)
		})
		rd := root.Spawn("reader", func(tt *checker.Thread) {
			a := r.Read(tt)
			b := r.Read(tt)
			// Reads may be stale but never go backwards (read-read
			// coherence); the spec's justification checks it.
			_ = a
			_ = b
		})
		root.Join(w)
		root.Join(rd)
	})
	fmt.Printf("explored %d executions (%d feasible) in %v\n",
		res.Executions, res.Feasible, res.Elapsed)
	if res.FailureCount == 0 {
		fmt.Println("all executions satisfy the specification")
	} else {
		fmt.Printf("VIOLATION: %v\n", res.FirstFailure())
	}

	// Now break the structure: claim reads are deterministic (always the
	// newest value). Relaxed atomics do not provide that, and the
	// checker shows it.
	fmt.Println()
	fmt.Println("Re-checking against a (wrong) deterministic specification...")
	strict := spec()
	strict.Methods["read"].JustifyConcurrent = nil
	strict.Methods["read"].Post = func(st core.State, c *core.Call) bool {
		return c.Ret == c.SRet
	}
	res = core.Explore(strict, checker.Config{StopAtFirst: true}, func(root *checker.Thread) {
		r := newRegister(root)
		w := root.Spawn("writer", func(tt *checker.Thread) { r.Write(tt, 1) })
		rd := root.Spawn("reader", func(tt *checker.Thread) { _ = r.Read(tt) })
		root.Join(w)
		root.Join(rd)
	})
	if f := res.FirstFailure(); f != nil {
		fmt.Printf("as expected, the strict spec is violated:\n  %s\n", f.Msg)
	} else {
		fmt.Println("unexpected: no violation found")
	}
}
