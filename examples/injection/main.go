// Injection demonstrates the §6.4.2 experiment on a single structure:
// weaken each memory-order site of the Michael & Scott queue one step and
// show which checker channel catches it.
//
// Run with: go run ./examples/injection
package main

import (
	"fmt"

	"repro/internal/checker"
	"repro/internal/core"
	"repro/internal/memmodel"
	"repro/internal/structures/msqueue"
)

func workload(ord *memmodel.OrderTable) func(*checker.Thread) {
	return func(root *checker.Thread) {
		q := msqueue.New(root, "q", ord)
		a := root.Spawn("a", func(tt *checker.Thread) {
			q.Enq(tt, 1)
			q.Deq(tt)
		})
		b := root.Spawn("b", func(tt *checker.Thread) {
			q.Enq(tt, 2)
			q.Deq(tt)
		})
		root.Join(a)
		root.Join(b)
		q.Deq(root)
	}
}

func main() {
	fmt.Println("Bug injection on the Michael & Scott queue (one weakened site per trial)")
	fmt.Println()
	defaults := msqueue.DefaultOrders()
	for _, s := range defaults.Sites() {
		weak := defaults.Clone()
		if !weak.WeakenSite(s.Name) {
			fmt.Printf("%-22s %-18s (already weakest; not injectable)\n", s.Name, s.Default)
			continue
		}
		res := core.Explore(msqueue.Spec("q"), checker.Config{StopAtFirst: true}, workload(weak))
		verdict := "NOT DETECTED"
		if f := res.FirstFailure(); f != nil {
			verdict = "detected via " + f.Kind.String()
		}
		fmt.Printf("%-22s %s -> %-10s %s\n", s.Name, s.Default, weak.Get(s.Name), verdict)
	}
	fmt.Println()
	fmt.Println("(The paper's Figure 8 runs this for all ten benchmarks: `cdsspec fig8`.)")
}
