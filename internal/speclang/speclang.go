// Package speclang implements the front end of the paper's specification
// compiler: a parser for the CDSSpec annotation language of Figure 5.
//
// The paper embeds annotations in C/C++ comments; the specification
// compiler extracts them and generates instrumented code. In this
// reproduction the *back end* (the instrumentation) is the core package's
// Monitor API, written by hand where the compiler would emit it; this
// package supplies the front end so that annotation blocks can be parsed,
// validated, and cross-checked against a core.Spec.
//
// Grammar (Figure 5):
//
//	Structure     := (admissibility)* stateDefine
//	stateDefine   := "@DeclareState:" code ("@Initial:" code)?
//	                 ("@Copy:" code)? ("@Clear:" code)?
//	admissibility := "@Admit:" label "<->" label "(" cond ")"
//	Method        := ("@PreCondition:" code)? ("@JustifyingPrecondition:" code)?
//	                 ("@SideEffect:" code)? ("@JustifyingPostcondition:" code)?
//	                 ("@PostCondition:" code)?
//	OrderingPoint := "@OPDefine:" cond | "@PotentialOP(" label "):" cond |
//	                 "@OPCheck(" label "):" cond | "@OPClear:" cond |
//	                 "@OPClearDefine:" cond
package speclang

import (
	"fmt"
	"strings"
)

// AnnotationKind identifies one production of the Figure 5 grammar.
type AnnotationKind string

// The annotation kinds of Figure 5.
const (
	DeclareState   AnnotationKind = "DeclareState"
	Initial        AnnotationKind = "Initial"
	Copy           AnnotationKind = "Copy"
	Clear          AnnotationKind = "Clear"
	Admit          AnnotationKind = "Admit"
	PreCondition   AnnotationKind = "PreCondition"
	JustifyingPre  AnnotationKind = "JustifyingPrecondition"
	SideEffect     AnnotationKind = "SideEffect"
	JustifyingPost AnnotationKind = "JustifyingPostcondition"
	PostCondition  AnnotationKind = "PostCondition"
	OPDefine       AnnotationKind = "OPDefine"
	PotentialOP    AnnotationKind = "PotentialOP"
	OPCheck        AnnotationKind = "OPCheck"
	OPClear        AnnotationKind = "OPClear"
	OPClearDefine  AnnotationKind = "OPClearDefine"
)

// methodKinds are the annotations that belong to method blocks.
var methodKinds = map[AnnotationKind]bool{
	PreCondition: true, JustifyingPre: true, SideEffect: true,
	JustifyingPost: true, PostCondition: true,
}

// opKinds are the ordering-point annotations.
var opKinds = map[AnnotationKind]bool{
	OPDefine: true, PotentialOP: true, OPCheck: true,
	OPClear: true, OPClearDefine: true,
}

// structureKinds are the structure-level annotations.
var structureKinds = map[AnnotationKind]bool{
	DeclareState: true, Initial: true, Copy: true, Clear: true, Admit: true,
}

// Annotation is one parsed annotation.
type Annotation struct {
	Kind AnnotationKind
	// Label is the parenthesized label of PotentialOP/OPCheck.
	Label string
	// M1, M2 are the two method names of an Admit rule.
	M1, M2 string
	// Body is the code or condition text following the colon.
	Body string
	// Line is the 1-based line within the parsed block.
	Line int
}

// ParseError reports a malformed annotation.
type ParseError struct {
	Line int
	Msg  string
}

// Error implements the error interface.
func (e *ParseError) Error() string {
	return fmt.Sprintf("line %d: %s", e.Line, e.Msg)
}

// Parse extracts the annotations from a comment block (the text between
// the paper's /** ... */ markers, comment decoration allowed). Unknown
// @-directives and grammar violations are errors; ordinary text is
// ignored, matching the compiler's behavior of leaving the program's
// semantics untouched.
func Parse(block string) ([]Annotation, error) {
	var out []Annotation
	lines := strings.Split(block, "\n")
	var cur *Annotation
	for i, raw := range lines {
		line := strings.TrimSpace(raw)
		line = strings.TrimPrefix(line, "/**")
		line = strings.TrimSuffix(line, "*/")
		line = strings.TrimPrefix(line, "*")
		line = strings.TrimSpace(line)
		at := strings.Index(line, "@")
		if at < 0 {
			// Continuation of the previous annotation's body.
			if cur != nil && line != "" {
				cur.Body += " " + line
			}
			continue
		}
		if cur != nil {
			out = append(out, *cur)
			cur = nil
		}
		ann, err := parseDirective(line[at+1:], i+1)
		if err != nil {
			return nil, err
		}
		cur = ann
	}
	if cur != nil {
		out = append(out, *cur)
	}
	for i := range out {
		out[i].Body = strings.TrimSpace(out[i].Body)
	}
	return out, nil
}

// parseDirective parses "Kind(Label)?: body" or the Admit form.
func parseDirective(s string, line int) (*Annotation, error) {
	colon := strings.Index(s, ":")
	if colon < 0 {
		return nil, &ParseError{Line: line, Msg: fmt.Sprintf("annotation %q missing ':'", "@"+s)}
	}
	head := strings.TrimSpace(s[:colon])
	body := strings.TrimSpace(s[colon+1:])

	name := head
	label := ""
	if open := strings.Index(head, "("); open >= 0 {
		if !strings.HasSuffix(head, ")") {
			return nil, &ParseError{Line: line, Msg: fmt.Sprintf("unbalanced label in %q", head)}
		}
		name = head[:open]
		label = strings.TrimSpace(head[open+1 : len(head)-1])
		if label == "" {
			return nil, &ParseError{Line: line, Msg: fmt.Sprintf("empty label in %q", head)}
		}
	}
	kind := AnnotationKind(name)
	switch {
	case kind == Admit:
		return parseAdmit(body, line)
	case kind == PotentialOP || kind == OPCheck:
		if label == "" {
			return nil, &ParseError{Line: line, Msg: fmt.Sprintf("%s requires a label", kind)}
		}
		return &Annotation{Kind: kind, Label: label, Body: body, Line: line}, nil
	case methodKinds[kind] || opKinds[kind] || structureKinds[kind]:
		if label != "" {
			return nil, &ParseError{Line: line, Msg: fmt.Sprintf("%s takes no label", kind)}
		}
		return &Annotation{Kind: kind, Body: body, Line: line}, nil
	default:
		return nil, &ParseError{Line: line, Msg: fmt.Sprintf("unknown annotation @%s", name)}
	}
}

// parseAdmit parses "m1 <-> m2 (cond)".
func parseAdmit(body string, line int) (*Annotation, error) {
	arrow := strings.Index(body, "<->")
	if arrow < 0 {
		return nil, &ParseError{Line: line, Msg: "@Admit requires 'm1 <-> m2 (cond)'"}
	}
	m1 := strings.TrimSpace(body[:arrow])
	rest := strings.TrimSpace(body[arrow+3:])
	open := strings.Index(rest, "(")
	if open < 0 || !strings.HasSuffix(rest, ")") {
		return nil, &ParseError{Line: line, Msg: "@Admit condition must be parenthesized"}
	}
	m2 := strings.TrimSpace(rest[:open])
	cond := strings.TrimSpace(rest[open+1 : len(rest)-1])
	if m1 == "" || m2 == "" {
		return nil, &ParseError{Line: line, Msg: "@Admit requires two method names"}
	}
	return &Annotation{Kind: Admit, M1: m1, M2: m2, Body: cond, Line: line}, nil
}

// MethodBlock is the parsed annotation set of one API method.
type MethodBlock struct {
	Name        string
	Annotations []Annotation
}

// Validate checks the structural rules of the grammar over a structure
// block and its method blocks:
//
//   - exactly one @DeclareState per structure,
//   - at most one of each method annotation per method,
//   - every @OPCheck label has a matching @PotentialOP in the same method.
func Validate(structure []Annotation, methods []MethodBlock) error {
	declares := 0
	for _, a := range structure {
		if !structureKinds[a.Kind] {
			return fmt.Errorf("annotation @%s is not a structure annotation", a.Kind)
		}
		if a.Kind == DeclareState {
			declares++
		}
	}
	if declares != 1 {
		return fmt.Errorf("structure must have exactly one @DeclareState, found %d", declares)
	}
	for _, m := range methods {
		seen := map[AnnotationKind]int{}
		labels := map[string]bool{}
		for _, a := range m.Annotations {
			if structureKinds[a.Kind] {
				return fmt.Errorf("method %s: @%s belongs in the structure block", m.Name, a.Kind)
			}
			if methodKinds[a.Kind] {
				seen[a.Kind]++
			}
			if a.Kind == PotentialOP {
				labels[a.Label] = true
			}
		}
		for k, n := range seen {
			if n > 1 {
				return fmt.Errorf("method %s: @%s given %d times", m.Name, k, n)
			}
		}
		for _, a := range m.Annotations {
			if a.Kind == OPCheck && !labels[a.Label] {
				return fmt.Errorf("method %s: @OPCheck(%s) has no matching @PotentialOP", m.Name, a.Label)
			}
		}
	}
	return nil
}
