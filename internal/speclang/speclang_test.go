package speclang

import (
	"strings"
	"testing"
)

// figure6Structure is the structure annotation of the paper's Figure 6.
const figure6Structure = `/** @DeclareState: IntList *q; */`

// figure6Deq is the deq method annotation block of Figure 6.
const figure6Deq = `/** @SideEffect:
     S_RET = STATE(q)->empty() ? -1 : STATE(q)->front();
     if (S_RET != -1 && C_RET != -1) STATE(q)->pop_front();
    @PostCondition:
     return C_RET == -1 ? true : C_RET == S_RET;
    @JustifyingPostcondition: if (C_RET == -1)
     return S_RET == -1; */`

func TestParseFigure6Structure(t *testing.T) {
	anns, err := Parse(figure6Structure)
	if err != nil {
		t.Fatal(err)
	}
	if len(anns) != 1 || anns[0].Kind != DeclareState {
		t.Fatalf("anns = %+v", anns)
	}
	if anns[0].Body != "IntList *q;" {
		t.Errorf("body = %q", anns[0].Body)
	}
}

func TestParseFigure6Deq(t *testing.T) {
	anns, err := Parse(figure6Deq)
	if err != nil {
		t.Fatal(err)
	}
	kinds := []AnnotationKind{SideEffect, PostCondition, JustifyingPost}
	if len(anns) != len(kinds) {
		t.Fatalf("got %d annotations: %+v", len(anns), anns)
	}
	for i, k := range kinds {
		if anns[i].Kind != k {
			t.Errorf("annotation %d kind = %s, want %s", i, anns[i].Kind, k)
		}
	}
	// Multi-line bodies are joined.
	if !strings.Contains(anns[0].Body, "pop_front") {
		t.Errorf("side effect body lost its continuation: %q", anns[0].Body)
	}
	if !strings.Contains(anns[2].Body, "S_RET == -1") {
		t.Errorf("justifying body = %q", anns[2].Body)
	}
}

func TestParseOrderingPoints(t *testing.T) {
	anns, err := Parse(`/** @OPDefine: true */`)
	if err != nil || len(anns) != 1 || anns[0].Kind != OPDefine || anns[0].Body != "true" {
		t.Fatalf("OPDefine parse: %+v, %v", anns, err)
	}
	anns, err = Parse(`/** @OPClearDefine: n == NULL */`)
	if err != nil || anns[0].Kind != OPClearDefine {
		t.Fatalf("OPClearDefine parse: %+v, %v", anns, err)
	}
	anns, err = Parse(`/** @PotentialOP(LabelA): x > 0 */`)
	if err != nil || anns[0].Kind != PotentialOP || anns[0].Label != "LabelA" {
		t.Fatalf("PotentialOP parse: %+v, %v", anns, err)
	}
	anns, err = Parse(`/** @OPCheck(LabelA): succeeded */`)
	if err != nil || anns[0].Kind != OPCheck || anns[0].Label != "LabelA" {
		t.Fatalf("OPCheck parse: %+v, %v", anns, err)
	}
}

func TestParseAdmit(t *testing.T) {
	// The paper's §4.1 example rule.
	anns, err := Parse(`/** @Admit: deq <-> enq (M1->C_RET == -1) */`)
	if err != nil {
		t.Fatal(err)
	}
	a := anns[0]
	if a.Kind != Admit || a.M1 != "deq" || a.M2 != "enq" || a.Body != "M1->C_RET == -1" {
		t.Fatalf("admit parse: %+v", a)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name  string
		block string
	}{
		{"unknown directive", `/** @Bogus: x */`},
		{"missing colon", `/** @OPDefine true */`},
		{"potential without label", `/** @PotentialOP: c */`},
		{"opcheck without label", `/** @OPCheck: c */`},
		{"label on sideeffect", `/** @SideEffect(x): c */`},
		{"admit missing arrow", `/** @Admit: deq enq (c) */`},
		{"admit missing cond", `/** @Admit: deq <-> enq */`},
		{"admit missing name", `/** @Admit: <-> enq (c) */`},
		{"unbalanced label", `/** @PotentialOP(a: c */`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := Parse(c.block); err == nil {
				t.Errorf("Parse(%q) should fail", c.block)
			}
		})
	}
}

func TestParseIgnoresProse(t *testing.T) {
	anns, err := Parse(`/** This structure is a queue.
	 * It has methods.
	 */`)
	if err != nil || len(anns) != 0 {
		t.Fatalf("prose should parse to nothing: %+v, %v", anns, err)
	}
}

func TestValidateStructureRules(t *testing.T) {
	good := []Annotation{{Kind: DeclareState, Body: "IntList *q;"}}
	if err := Validate(good, nil); err != nil {
		t.Errorf("valid structure rejected: %v", err)
	}
	if err := Validate(nil, nil); err == nil {
		t.Error("missing @DeclareState accepted")
	}
	two := []Annotation{{Kind: DeclareState}, {Kind: DeclareState}}
	if err := Validate(two, nil); err == nil {
		t.Error("duplicate @DeclareState accepted")
	}
	misplaced := []Annotation{{Kind: DeclareState}, {Kind: SideEffect}}
	if err := Validate(misplaced, nil); err == nil {
		t.Error("method annotation in structure block accepted")
	}
}

func TestValidateMethodRules(t *testing.T) {
	structure := []Annotation{{Kind: DeclareState}}
	dup := []MethodBlock{{Name: "deq", Annotations: []Annotation{
		{Kind: SideEffect}, {Kind: SideEffect},
	}}}
	if err := Validate(structure, dup); err == nil {
		t.Error("duplicate @SideEffect accepted")
	}
	danglingCheck := []MethodBlock{{Name: "put", Annotations: []Annotation{
		{Kind: OPCheck, Label: "A"},
	}}}
	if err := Validate(structure, danglingCheck); err == nil {
		t.Error("@OPCheck without @PotentialOP accepted")
	}
	matched := []MethodBlock{{Name: "put", Annotations: []Annotation{
		{Kind: PotentialOP, Label: "A"},
		{Kind: OPCheck, Label: "A"},
		{Kind: SideEffect},
	}}}
	if err := Validate(structure, matched); err != nil {
		t.Errorf("valid method rejected: %v", err)
	}
}

func TestParseErrorMessage(t *testing.T) {
	_, err := Parse(`/** @Bogus: x */`)
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("error type = %T", err)
	}
	if pe.Line != 1 || !strings.Contains(pe.Error(), "Bogus") {
		t.Errorf("error = %v", pe)
	}
}
