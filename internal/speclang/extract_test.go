package speclang

import (
	"os"
	"strings"
	"testing"
)

func TestExtractInlineComments(t *testing.T) {
	src := `
func (q *Queue) Enq(t *checker.Thread, val Value) {
	if ok {
		c.OPDefine(t, true) // @OPDefine: true
	}
}
`
	anns, err := Extract(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(anns) != 1 || anns[0].Kind != OPDefine || anns[0].Body != "true" {
		t.Fatalf("anns = %+v", anns)
	}
}

func TestExtractBlockComment(t *testing.T) {
	src := `
/** @DeclareState: IntList *q; */
struct Queue;
/** @SideEffect: STATE(q)->push_back(val); */
void enq(int val);
`
	anns, err := Extract(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(anns) != 2 || anns[0].Kind != DeclareState || anns[1].Kind != SideEffect {
		t.Fatalf("anns = %+v", anns)
	}
}

func TestExtractContinuationLines(t *testing.T) {
	src := `
// @JustifyingPostcondition: if (C_RET == -1)
//     return S_RET == -1;
int deq();
`
	anns, err := Extract(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(anns) != 1 {
		t.Fatalf("anns = %+v", anns)
	}
	if !strings.Contains(anns[0].Body, "S_RET == -1") {
		t.Errorf("continuation lost: %q", anns[0].Body)
	}
}

func TestExtractIgnoresProseGaps(t *testing.T) {
	src := `
// @OPDefine: true

// This unrelated prose comment must not be folded into the body.
x := 1
`
	anns, err := Extract(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(anns) != 1 || anns[0].Body != "true" {
		t.Fatalf("prose leaked into annotation: %+v", anns)
	}
}

func TestExtractErrorCarriesLine(t *testing.T) {
	src := "x := 1\ny := 2\n// @Bogus: nope\n"
	_, err := Extract(src)
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("error = %v", err)
	}
	if pe.Line != 3 {
		t.Errorf("error line = %d, want 3", pe.Line)
	}
}

// TestExtractFromBlockingQueueSource runs the extractor over the real
// blocking-queue implementation and cross-checks the comment annotations
// against the hand-written instrumentation — the round trip the paper's
// specification compiler performs.
func TestExtractFromBlockingQueueSource(t *testing.T) {
	src, err := os.ReadFile("../structures/blockingqueue/blockingqueue.go")
	if err != nil {
		t.Fatal(err)
	}
	anns, err := Extract(string(src))
	if err != nil {
		t.Fatalf("extracting from real source: %v", err)
	}
	counts := CountByKind(anns)
	// The implementation carries one @OPDefine (the enq CAS) and one
	// @OPClearDefine (the deq next load); the spec function documents
	// @SideEffect, @PostCondition and @JustifyingPostcondition.
	if counts[OPDefine] < 1 {
		t.Errorf("no @OPDefine extracted: %v", counts)
	}
	if counts[OPClearDefine] < 1 {
		t.Errorf("no @OPClearDefine extracted: %v", counts)
	}
	if counts[SideEffect] < 1 || counts[PostCondition] < 1 || counts[JustifyingPost] < 1 {
		t.Errorf("method annotations missing from source comments: %v", counts)
	}
}
