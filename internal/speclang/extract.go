package speclang

import "strings"

// Extract scans source text (Go or C/C++) for CDSSpec annotations in
// comments — both block comments and line comments, including inline
// comments after code — and parses them. It is the extraction half of the
// paper's specification compiler: the same source compiles normally (the
// annotations live in comments) and yields its specification here.
//
// A line comment continues the previous annotation only when it is on the
// immediately following source line; a gap ends the annotation, so
// ordinary prose comments elsewhere in the file are not folded into
// annotation bodies.
func Extract(source string) ([]Annotation, error) {
	var out []Annotation
	var block []string
	blockStart := 0
	lastCommentLine := -10

	flush := func() error {
		if len(block) == 0 {
			return nil
		}
		anns, err := Parse(strings.Join(block, "\n"))
		if err != nil {
			if pe, ok := err.(*ParseError); ok {
				pe.Line += blockStart - 1
			}
			return err
		}
		out = append(out, anns...)
		block = nil
		return nil
	}

	lines := strings.Split(source, "\n")
	inBlockComment := false
	for i, raw := range lines {
		lineNo := i + 1
		text, hasComment := commentText(raw, &inBlockComment)
		switch {
		case !hasComment, lineNo > lastCommentLine+1 && len(block) > 0 && !strings.Contains(text, "@"):
			if err := flush(); err != nil {
				return nil, err
			}
			if !hasComment {
				continue
			}
			fallthrough
		default:
			if strings.Contains(text, "@") || (len(block) > 0 && lineNo == lastCommentLine+1) {
				if len(block) == 0 {
					blockStart = lineNo
				}
				block = append(block, text)
				lastCommentLine = lineNo
			}
		}
	}
	if err := flush(); err != nil {
		return nil, err
	}
	return out, nil
}

// commentText returns the comment portion of a source line, tracking
// multi-line block comments.
func commentText(raw string, inBlock *bool) (string, bool) {
	s := raw
	if *inBlock {
		if end := strings.Index(s, "*/"); end >= 0 {
			*inBlock = false
			return strings.TrimSpace(s[:end]), true
		}
		return strings.TrimSpace(s), true
	}
	if idx := strings.Index(s, "/*"); idx >= 0 {
		rest := s[idx+2:]
		rest = strings.TrimPrefix(rest, "*") // handle /**
		if end := strings.Index(rest, "*/"); end >= 0 {
			return strings.TrimSpace(rest[:end]), true
		}
		*inBlock = true
		return strings.TrimSpace(rest), true
	}
	if idx := strings.Index(s, "//"); idx >= 0 {
		return strings.TrimSpace(s[idx+2:]), true
	}
	return "", false
}

// CountByKind tallies annotations per kind, the summary the §6.2
// statistics use.
func CountByKind(anns []Annotation) map[AnnotationKind]int {
	out := map[AnnotationKind]int{}
	for _, a := range anns {
		out[a.Kind]++
	}
	return out
}
