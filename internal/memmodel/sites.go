package memmodel

import (
	"fmt"
	"sort"
)

// Site is one named atomic-operation site in a data structure: the unit
// of memory-order parameterization. The bug-injection experiment of the
// paper (§6.4.2) weakens one site at a time.
type Site struct {
	// Name identifies the site (e.g. "enq_cas_next").
	Name string
	// Class is the operation class at the site (load/store/rmw/fence).
	Class OpClass
	// Default is the order the correct implementation uses.
	Default MemOrder
}

// OrderTable maps site names to their current memory orders. Data
// structures read their orders through it so experiments can weaken
// individual sites without touching the implementation.
type OrderTable struct {
	sites []Site
	// defs indexes the site definitions by name. It is immutable after
	// NewOrderTable and shared by Clone, so per-site lookups (Site,
	// WeakenSite) are map hits rather than linear scans — fuzz campaigns
	// that sweep injected orders call them per generated program.
	defs map[string]Site
	cur  map[string]MemOrder
}

// NewOrderTable builds a table with every site at its default order.
func NewOrderTable(sites ...Site) *OrderTable {
	t := &OrderTable{
		sites: sites,
		defs:  make(map[string]Site, len(sites)),
		cur:   make(map[string]MemOrder, len(sites)),
	}
	for _, s := range sites {
		if _, dup := t.cur[s.Name]; dup {
			panic(fmt.Sprintf("duplicate site %q", s.Name))
		}
		t.defs[s.Name] = s
		t.cur[s.Name] = s.Default
	}
	return t
}

// Get returns the current order for a site; unknown sites panic — they
// are authoring errors in the structure or the experiment.
func (t *OrderTable) Get(name string) MemOrder {
	o, ok := t.cur[name]
	if !ok {
		panic(fmt.Sprintf("unknown memory-order site %q", name))
	}
	return o
}

// Set overrides the order of a site.
func (t *OrderTable) Set(name string, o MemOrder) {
	if _, ok := t.cur[name]; !ok {
		panic(fmt.Sprintf("unknown memory-order site %q", name))
	}
	t.cur[name] = o
}

// Sites returns the site definitions, sorted by name for determinism.
func (t *OrderTable) Sites() []Site {
	out := append([]Site(nil), t.sites...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Site returns the definition of a named site.
func (t *OrderTable) Site(name string) (Site, bool) {
	s, ok := t.defs[name]
	return s, ok
}

// Clone returns an independent copy with the same current orders.
func (t *OrderTable) Clone() *OrderTable {
	n := &OrderTable{sites: t.sites, defs: t.defs, cur: make(map[string]MemOrder, len(t.cur))}
	for k, v := range t.cur {
		n.cur[k] = v
	}
	return n
}

// WeakenSite lowers a site's current order one step on the injection
// ladder; it reports false when the site is already at the weakest order.
func (t *OrderTable) WeakenSite(name string) bool {
	s, ok := t.Site(name)
	if !ok {
		panic(fmt.Sprintf("unknown memory-order site %q", name))
	}
	next, ok := Weaken(s.Class, t.cur[name])
	if !ok {
		return false
	}
	t.cur[name] = next
	return true
}

// Weakenings enumerates every single-site one-step weakening of the
// table's *default* orders: the paper's injection set ("we weakened one
// operation per each trial").
func (t *OrderTable) Weakenings() []*OrderTable {
	var out []*OrderTable
	for _, s := range t.Sites() {
		c := t.Clone()
		c.cur[s.Name] = s.Default // injections start from defaults
		if c.WeakenSite(s.Name) {
			out = append(out, c)
		}
	}
	return out
}
