// Package memmodel defines the vocabulary of the C/C++11 memory model as
// used by the checker: memory orders, action kinds, actions, and vector
// clocks for the happens-before relation.
//
// The package is purely descriptive — the operational semantics (visible
// stores, coherence, release sequences, fences, the seq_cst order) live in
// internal/checker, which manipulates these values while exploring
// executions.
package memmodel

import "fmt"

// MemOrder is a C/C++11 memory order (std::memory_order).
type MemOrder uint8

const (
	// Relaxed is memory_order_relaxed: atomicity only, no ordering.
	Relaxed MemOrder = iota
	// Consume is memory_order_consume. The checker promotes it to
	// Acquire, which is what every production compiler does.
	Consume
	// Acquire is memory_order_acquire.
	Acquire
	// Release is memory_order_release.
	Release
	// AcqRel is memory_order_acq_rel.
	AcqRel
	// SeqCst is memory_order_seq_cst.
	SeqCst
)

// String returns the C++11 spelling of the order.
func (o MemOrder) String() string {
	switch o {
	case Relaxed:
		return "relaxed"
	case Consume:
		return "consume"
	case Acquire:
		return "acquire"
	case Release:
		return "release"
	case AcqRel:
		return "acq_rel"
	case SeqCst:
		return "seq_cst"
	default:
		return fmt.Sprintf("MemOrder(%d)", uint8(o))
	}
}

// IsAcquire reports whether a load (or the load half of an RMW, or a
// fence) with this order performs acquire synchronization.
func (o MemOrder) IsAcquire() bool {
	switch o {
	case Acquire, Consume, AcqRel, SeqCst:
		return true
	}
	return false
}

// IsRelease reports whether a store (or the store half of an RMW, or a
// fence) with this order performs release synchronization.
func (o MemOrder) IsRelease() bool {
	switch o {
	case Release, AcqRel, SeqCst:
		return true
	}
	return false
}

// IsSeqCst reports whether the order participates in the single total
// order S of seq_cst operations.
func (o MemOrder) IsSeqCst() bool { return o == SeqCst }

// OpClass describes what an atomic operation does to memory, for the
// purpose of computing the next-weaker memory order during bug injection.
type OpClass uint8

const (
	// OpLoad is an atomic load.
	OpLoad OpClass = iota
	// OpStore is an atomic store.
	OpStore
	// OpRMW is a read-modify-write (CAS, exchange, fetch_add, ...).
	OpRMW
	// OpFence is a stand-alone fence.
	OpFence
)

// String returns a short name for the class.
func (c OpClass) String() string {
	switch c {
	case OpLoad:
		return "load"
	case OpStore:
		return "store"
	case OpRMW:
		return "rmw"
	case OpFence:
		return "fence"
	default:
		return fmt.Sprintf("OpClass(%d)", uint8(c))
	}
}

// Weaken returns the next-weaker memory order for an operation of class c,
// following the injection ladder of the paper (§6.4.2): seq_cst → acq_rel,
// acq_rel → release/acquire, and acquire/release → relaxed. The second
// result is false when the order is already the weakest meaningful order
// for the class (no further weakening possible).
//
// Loads skip orders that are meaningless for them (a load cannot be
// release), and symmetrically for stores.
func Weaken(c OpClass, o MemOrder) (MemOrder, bool) {
	switch c {
	case OpLoad:
		switch o {
		case SeqCst:
			return Acquire, true
		case AcqRel, Acquire, Consume:
			return Relaxed, true
		}
	case OpStore:
		switch o {
		case SeqCst:
			return Release, true
		case AcqRel, Release:
			return Relaxed, true
		}
	case OpRMW:
		switch o {
		case SeqCst:
			return AcqRel, true
		case AcqRel:
			return Release, true
		case Release, Acquire, Consume:
			return Relaxed, true
		}
	case OpFence:
		switch o {
		case SeqCst:
			return AcqRel, true
		case AcqRel:
			return Release, true
		case Release, Acquire:
			return Relaxed, true
		}
	}
	return o, false
}

// WeakenLadder returns the full sequence of successively weaker orders for
// an operation of class c starting from (and excluding) o.
func WeakenLadder(c OpClass, o MemOrder) []MemOrder {
	var ladder []MemOrder
	cur := o
	for {
		next, ok := Weaken(c, cur)
		if !ok {
			return ladder
		}
		ladder = append(ladder, next)
		cur = next
	}
}
