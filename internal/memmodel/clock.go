package memmodel

// ClockVector is a vector clock indexed by thread id. Entry t holds the
// per-thread sequence number (TSeq) of the latest action of thread t that
// happens-before the point the clock describes (0 = none).
//
// Vector clocks implement happens-before exactly for the fragment the
// checker explores: hb is the transitive closure of sequenced-before and
// synchronizes-with edges, both of which the checker applies by merging
// clocks at the moment the edge is created.
type ClockVector struct {
	c []uint32
}

// NewClockVector returns an empty clock (all zeros).
func NewClockVector() *ClockVector { return &ClockVector{} }

// Get returns the clock entry for thread tid.
func (v *ClockVector) Get(tid int) uint32 {
	if tid < 0 || tid >= len(v.c) {
		return 0
	}
	return v.c[tid]
}

// Set raises the entry for thread tid to seq. It never lowers an entry.
func (v *ClockVector) Set(tid int, seq uint32) {
	v.grow(tid + 1)
	if seq > v.c[tid] {
		v.c[tid] = seq
	}
}

// Merge raises every entry of v to at least the corresponding entry of o.
// A nil o is a no-op.
func (v *ClockVector) Merge(o *ClockVector) {
	if o == nil {
		return
	}
	v.grow(len(o.c))
	for i, s := range o.c {
		if s > v.c[i] {
			v.c[i] = s
		}
	}
}

// Clone returns an independent copy of v.
func (v *ClockVector) Clone() *ClockVector {
	n := &ClockVector{c: make([]uint32, len(v.c))}
	copy(n.c, v.c)
	return n
}

// Contains reports whether the action identified by (tid, seq)
// happens-before (or is) the point described by v.
func (v *ClockVector) Contains(tid int, seq uint32) bool {
	return v.Get(tid) >= seq
}

// DominatedBy reports whether every entry of v is <= the corresponding
// entry of o (v ⊑ o). It is the component-wise partial order on clocks.
func (v *ClockVector) DominatedBy(o *ClockVector) bool {
	for i, s := range v.c {
		if s == 0 {
			continue
		}
		if o == nil || o.Get(i) < s {
			return false
		}
	}
	return true
}

// Len returns the number of thread slots the clock currently tracks.
func (v *ClockVector) Len() int { return len(v.c) }

func (v *ClockVector) grow(n int) {
	for len(v.c) < n {
		v.c = append(v.c, 0)
	}
}
