package memmodel

// inlineClockSize is the number of thread slots a ClockVector stores
// inline, without a heap-allocated backing array. Paper benchmarks run
// 2-5 simulated threads, so virtually every clock in an exploration fits;
// clocks only spill to the heap past this size.
const inlineClockSize = 8

// ClockVector is a vector clock indexed by thread id. Entry t holds the
// per-thread sequence number (TSeq) of the latest action of thread t that
// happens-before the point the clock describes (0 = none).
//
// Vector clocks implement happens-before exactly for the fragment the
// checker explores: hb is the transitive closure of sequenced-before and
// synchronizes-with edges, both of which the checker applies by merging
// clocks at the moment the edge is created.
//
// Storage discipline: clocks up to inlineClockSize entries live in the
// struct itself (c aliases inline); larger clocks use a heap slice.
// Share produces a read-shared snapshot in O(1) for heap-backed clocks
// (copy-on-write: the first mutation of either side copies); inline
// clocks are snapshotted by a plain copy, which is both allocation-cheap
// and avoids aliasing two structs' inline arrays.
type ClockVector struct {
	c []uint32
	// shared marks the backing array as referenced by another ClockVector
	// (the result of a heap-backed Share). Mutating methods copy the
	// array before the first write while shared is set.
	shared bool
	inline [inlineClockSize]uint32
}

// NewClockVector returns an empty clock (all zeros).
func NewClockVector() *ClockVector { return &ClockVector{} }

// Get returns the clock entry for thread tid.
func (v *ClockVector) Get(tid int) uint32 {
	if tid < 0 || tid >= len(v.c) {
		return 0
	}
	return v.c[tid]
}

// Set raises the entry for thread tid to seq. It never lowers an entry.
func (v *ClockVector) Set(tid int, seq uint32) {
	if tid < len(v.c) && v.c[tid] >= seq {
		return
	}
	v.ensureWritable()
	v.grow(tid + 1)
	if seq > v.c[tid] {
		v.c[tid] = seq
	}
}

// Merge raises every entry of v to at least the corresponding entry of o
// and reports whether any entry changed. A nil o is a no-op.
func (v *ClockVector) Merge(o *ClockVector) bool {
	if o == nil {
		return false
	}
	// First pass: detect whether the merge changes anything, so a shared
	// (copy-on-write) clock is only copied when a write really happens and
	// the caller can invalidate epoch-keyed caches precisely.
	changed := false
	for i, s := range o.c {
		if s > v.Get(i) {
			changed = true
			break
		}
	}
	if !changed {
		return false
	}
	v.ensureWritable()
	v.grow(len(o.c))
	for i, s := range o.c {
		if s > v.c[i] {
			v.c[i] = s
		}
	}
	return true
}

// Clone returns an independent deep copy of v.
func (v *ClockVector) Clone() *ClockVector {
	n := &ClockVector{}
	n.CopyFrom(v)
	return n
}

// Share returns a read-only snapshot of v's current value in O(1) for
// heap-backed clocks: the snapshot shares v's backing array and both
// sides copy on their next write. Inline-backed clocks (the common case)
// are snapshotted by value instead — a small copy with no aliasing.
// Mutating a snapshot is safe (copy-on-write) but defeats the sharing.
func (v *ClockVector) Share() *ClockVector {
	if len(v.c) <= inlineClockSize {
		n := &ClockVector{}
		n.c = n.inline[:len(v.c)]
		copy(n.c, v.c)
		return n
	}
	v.shared = true
	return &ClockVector{c: v.c, shared: true}
}

// CopyFrom overwrites v with o's value, reusing v's storage when it has
// the capacity. The execution pool uses it to snapshot clocks into
// recycled ClockVectors without allocating.
func (v *ClockVector) CopyFrom(o *ClockVector) {
	n := len(o.c)
	switch {
	case v.shared || cap(v.c) < n:
		if n <= inlineClockSize {
			v.c = v.inline[:n]
		} else {
			v.c = make([]uint32, n)
		}
		v.shared = false
	default:
		v.c = v.c[:n]
	}
	copy(v.c, o.c)
}

// Reset empties the clock (all zeros, length 0), retaining capacity for
// reuse. A shared backing array is abandoned rather than zeroed, so
// resetting one side of a Share never corrupts the other.
func (v *ClockVector) Reset() {
	if v.shared {
		v.c = nil
		v.shared = false
		return
	}
	for i := range v.c {
		v.c[i] = 0
	}
	v.c = v.c[:0]
}

// Contains reports whether the action identified by (tid, seq)
// happens-before (or is) the point described by v.
func (v *ClockVector) Contains(tid int, seq uint32) bool {
	return v.Get(tid) >= seq
}

// DominatedBy reports whether every entry of v is <= the corresponding
// entry of o (v ⊑ o). It is the component-wise partial order on clocks.
func (v *ClockVector) DominatedBy(o *ClockVector) bool {
	for i, s := range v.c {
		if s == 0 {
			continue
		}
		if o == nil || o.Get(i) < s {
			return false
		}
	}
	return true
}

// Len returns the number of thread slots the clock currently tracks.
func (v *ClockVector) Len() int { return len(v.c) }

// ensureWritable copies the backing array if it is shared with another
// ClockVector, so the pending mutation cannot be observed through the
// other side of the Share.
func (v *ClockVector) ensureWritable() {
	if !v.shared {
		return
	}
	nc := make([]uint32, len(v.c))
	copy(nc, v.c)
	v.c = nc
	v.shared = false
}

// grow extends the clock to at least n entries in a single step: within
// existing capacity it zeroes the extension (recycled storage may hold
// stale values), otherwise it allocates once with doubling growth.
// The caller must hold a writable (non-shared) backing array.
func (v *ClockVector) grow(n int) {
	if n <= len(v.c) {
		return
	}
	if cap(v.c) >= n {
		old := len(v.c)
		v.c = v.c[:n]
		for i := old; i < n; i++ {
			v.c[i] = 0
		}
		return
	}
	if n <= inlineClockSize && v.c == nil {
		v.c = v.inline[:n]
		return
	}
	newCap := 2 * cap(v.c)
	if newCap < n {
		newCap = n
	}
	nc := make([]uint32, n, newCap)
	copy(nc, v.c)
	v.c = nc
}
