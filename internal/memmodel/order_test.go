package memmodel

import (
	"testing"
	"testing/quick"
)

func TestOrderPredicates(t *testing.T) {
	cases := []struct {
		o                    MemOrder
		acquire, release, sc bool
	}{
		{Relaxed, false, false, false},
		{Consume, true, false, false},
		{Acquire, true, false, false},
		{Release, false, true, false},
		{AcqRel, true, true, false},
		{SeqCst, true, true, true},
	}
	for _, c := range cases {
		if got := c.o.IsAcquire(); got != c.acquire {
			t.Errorf("%s.IsAcquire() = %v, want %v", c.o, got, c.acquire)
		}
		if got := c.o.IsRelease(); got != c.release {
			t.Errorf("%s.IsRelease() = %v, want %v", c.o, got, c.release)
		}
		if got := c.o.IsSeqCst(); got != c.sc {
			t.Errorf("%s.IsSeqCst() = %v, want %v", c.o, got, c.sc)
		}
	}
}

func TestOrderStrings(t *testing.T) {
	want := map[MemOrder]string{
		Relaxed: "relaxed", Consume: "consume", Acquire: "acquire",
		Release: "release", AcqRel: "acq_rel", SeqCst: "seq_cst",
	}
	for o, s := range want {
		if o.String() != s {
			t.Errorf("%d.String() = %q, want %q", o, o.String(), s)
		}
	}
}

func TestWeakenLoadLadder(t *testing.T) {
	got := WeakenLadder(OpLoad, SeqCst)
	want := []MemOrder{Acquire, Relaxed}
	if len(got) != len(want) {
		t.Fatalf("load ladder = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("load ladder = %v, want %v", got, want)
		}
	}
}

func TestWeakenStoreLadder(t *testing.T) {
	got := WeakenLadder(OpStore, SeqCst)
	want := []MemOrder{Release, Relaxed}
	for i := range want {
		if i >= len(got) || got[i] != want[i] {
			t.Fatalf("store ladder = %v, want %v", got, want)
		}
	}
}

func TestWeakenRMWLadder(t *testing.T) {
	got := WeakenLadder(OpRMW, SeqCst)
	want := []MemOrder{AcqRel, Release, Relaxed}
	if len(got) != len(want) {
		t.Fatalf("rmw ladder = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rmw ladder = %v, want %v", got, want)
		}
	}
}

func TestWeakenRelaxedIsTerminal(t *testing.T) {
	for _, c := range []OpClass{OpLoad, OpStore, OpRMW, OpFence} {
		if _, ok := Weaken(c, Relaxed); ok {
			t.Errorf("Weaken(%s, relaxed) should be terminal", c)
		}
	}
}

// TestWeakenMonotone (property): weakening strictly reduces the
// acquire/release capabilities of an operation — never adds any.
func TestWeakenMonotone(t *testing.T) {
	f := func(cRaw, oRaw uint8) bool {
		c := OpClass(cRaw % 4)
		o := MemOrder(oRaw % 6)
		w, ok := Weaken(c, o)
		if !ok {
			return true
		}
		if w.IsAcquire() && !o.IsAcquire() {
			return false
		}
		if w.IsRelease() && !o.IsRelease() {
			return false
		}
		if w.IsSeqCst() {
			return false // weakening always leaves seq_cst
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestWeakenTerminates (property): every ladder reaches relaxed.
func TestWeakenTerminates(t *testing.T) {
	f := func(cRaw, oRaw uint8) bool {
		c := OpClass(cRaw % 4)
		o := MemOrder(oRaw % 6)
		for i := 0; i < 10; i++ {
			next, ok := Weaken(c, o)
			if !ok {
				return true
			}
			o = next
		}
		return false
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKindPredicates(t *testing.T) {
	if !KindAtomicRMW.IsWrite() || !KindAtomicRMW.IsRead() || !KindAtomicRMW.IsAtomic() {
		t.Error("RMW should read, write, and be atomic")
	}
	if KindPlainLoad.IsAtomic() || !KindPlainLoad.IsRead() || KindPlainLoad.IsWrite() {
		t.Error("plain load misclassified")
	}
	if KindFence.IsRead() || KindFence.IsWrite() {
		t.Error("fence should not access memory")
	}
}
