package memmodel

import "fmt"

// Kind classifies an action in an execution trace.
type Kind uint8

const (
	// KindAtomicLoad is an atomic load.
	KindAtomicLoad Kind = iota
	// KindAtomicStore is an atomic store.
	KindAtomicStore
	// KindAtomicRMW is a successful read-modify-write (CAS success,
	// exchange, fetch_add, ...). A failed CAS is recorded as
	// KindAtomicLoad.
	KindAtomicRMW
	// KindFence is a stand-alone memory fence.
	KindFence
	// KindPlainLoad is a non-atomic load (subject to race detection).
	KindPlainLoad
	// KindPlainStore is a non-atomic store (subject to race detection).
	KindPlainStore
	// KindLock is a mutex acquisition.
	KindLock
	// KindUnlock is a mutex release.
	KindUnlock
	// KindThreadCreate is the creation of a child thread.
	KindThreadCreate
	// KindThreadStart is the first action of a thread.
	KindThreadStart
	// KindThreadJoin is a join with a finished thread.
	KindThreadJoin
	// KindThreadFinish is the last action of a thread.
	KindThreadFinish
	// KindYield marks a voluntary yield in a spin loop.
	KindYield
)

// String returns a short name for the kind.
func (k Kind) String() string {
	switch k {
	case KindAtomicLoad:
		return "atomic-load"
	case KindAtomicStore:
		return "atomic-store"
	case KindAtomicRMW:
		return "atomic-rmw"
	case KindFence:
		return "fence"
	case KindPlainLoad:
		return "plain-load"
	case KindPlainStore:
		return "plain-store"
	case KindLock:
		return "lock"
	case KindUnlock:
		return "unlock"
	case KindThreadCreate:
		return "thread-create"
	case KindThreadStart:
		return "thread-start"
	case KindThreadJoin:
		return "thread-join"
	case KindThreadFinish:
		return "thread-finish"
	case KindYield:
		return "yield"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// IsWrite reports whether the action writes memory.
func (k Kind) IsWrite() bool {
	return k == KindAtomicStore || k == KindAtomicRMW || k == KindPlainStore
}

// IsRead reports whether the action reads memory.
func (k Kind) IsRead() bool {
	return k == KindAtomicLoad || k == KindAtomicRMW || k == KindPlainLoad
}

// IsAtomic reports whether the action is an atomic memory access.
func (k Kind) IsAtomic() bool {
	return k == KindAtomicLoad || k == KindAtomicStore || k == KindAtomicRMW
}

// Value is the word type stored in simulated memory locations. Pointers
// are modeled as opaque handles packed into a Value.
type Value = uint64

// Action is one event in an execution trace.
type Action struct {
	// ID is the global index of the action in the execution trace.
	ID int
	// Thread is the id of the thread that performed the action.
	Thread int
	// TSeq is the 1-based per-thread sequence number.
	TSeq uint32
	// Kind classifies the action.
	Kind Kind
	// Order is the memory order for atomic actions and fences.
	Order MemOrder
	// LocID identifies the memory location (-1 for fences/thread ops).
	LocID int
	// LocName is the debug name of the location.
	LocName string
	// Value is the value written (stores/RMWs) or read (loads).
	Value Value
	// RF is the store the action read from (loads and RMWs).
	RF *Action
	// MOIndex is the index of this store in its location's modification
	// order (stores and RMWs only).
	MOIndex int
	// SCIndex is the position in the seq_cst total order S, or -1.
	SCIndex int
	// Clock is the happens-before clock at this action, inclusive of the
	// action itself and of any synchronization the action performed.
	Clock *ClockVector
}

// HappensBefore reports whether a happens-before b. It relies on b.Clock
// including everything that happens-before b.
func (a *Action) HappensBefore(b *Action) bool {
	if a == b {
		return false
	}
	return b.Clock.Contains(a.Thread, a.TSeq)
}

// SCBefore reports whether a precedes b in the seq_cst total order
// (both must be seq_cst actions).
func (a *Action) SCBefore(b *Action) bool {
	return a.SCIndex >= 0 && b.SCIndex >= 0 && a.SCIndex < b.SCIndex
}

// String renders the action for diagnostics.
func (a *Action) String() string {
	switch {
	case a.Kind.IsAtomic() || a.Kind == KindPlainLoad || a.Kind == KindPlainStore:
		s := fmt.Sprintf("#%d T%d %s %s(%s)=%d", a.ID, a.Thread, a.Kind, a.LocName, a.Order, a.Value)
		if a.RF != nil {
			s += fmt.Sprintf(" rf=#%d", a.RF.ID)
		}
		return s
	case a.Kind == KindFence:
		return fmt.Sprintf("#%d T%d fence(%s)", a.ID, a.Thread, a.Order)
	default:
		return fmt.Sprintf("#%d T%d %s", a.ID, a.Thread, a.Kind)
	}
}
