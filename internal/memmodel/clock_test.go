package memmodel

import (
	"testing"
	"testing/quick"
)

func TestClockSetGet(t *testing.T) {
	v := NewClockVector()
	if v.Get(3) != 0 {
		t.Error("fresh clock should be zero everywhere")
	}
	v.Set(3, 7)
	if v.Get(3) != 7 {
		t.Errorf("Get(3) = %d, want 7", v.Get(3))
	}
	v.Set(3, 5) // never lowers
	if v.Get(3) != 7 {
		t.Errorf("Set must not lower: got %d", v.Get(3))
	}
	if v.Get(100) != 0 {
		t.Error("out-of-range Get should be zero")
	}
}

func TestClockMerge(t *testing.T) {
	a := NewClockVector()
	a.Set(0, 5)
	a.Set(2, 1)
	b := NewClockVector()
	b.Set(0, 3)
	b.Set(1, 9)
	a.Merge(b)
	for i, want := range []uint32{5, 9, 1} {
		if a.Get(i) != want {
			t.Errorf("merged[%d] = %d, want %d", i, a.Get(i), want)
		}
	}
	a.Merge(nil) // nil merge is a no-op
	if a.Get(0) != 5 {
		t.Error("nil merge changed the clock")
	}
}

func TestClockCloneIndependence(t *testing.T) {
	a := NewClockVector()
	a.Set(1, 4)
	c := a.Clone()
	c.Set(1, 10)
	if a.Get(1) != 4 {
		t.Error("Clone is not independent")
	}
}

func TestClockContains(t *testing.T) {
	a := NewClockVector()
	a.Set(2, 6)
	if !a.Contains(2, 6) || !a.Contains(2, 1) {
		t.Error("Contains should accept seq <= entry")
	}
	if a.Contains(2, 7) || a.Contains(0, 1) {
		t.Error("Contains accepted future action")
	}
}

func TestClockDominatedBy(t *testing.T) {
	a := NewClockVector()
	a.Set(0, 2)
	b := NewClockVector()
	b.Set(0, 3)
	b.Set(1, 1)
	if !a.DominatedBy(b) {
		t.Error("a should be dominated by b")
	}
	if b.DominatedBy(a) {
		t.Error("b should not be dominated by a")
	}
	if !NewClockVector().DominatedBy(nil) {
		t.Error("empty clock is dominated by nil")
	}
}

// clockFromSlice builds a clock from raw entries for property tests.
func clockFromSlice(s []uint32) *ClockVector {
	v := NewClockVector()
	for i, x := range s {
		v.Set(i, x)
	}
	return v
}

// TestClockMergeIsJoin (property): merge computes the least upper bound —
// it dominates both inputs and is dominated by any other upper bound.
func TestClockMergeIsJoin(t *testing.T) {
	f := func(xs, ys []uint32) bool {
		if len(xs) > 8 {
			xs = xs[:8]
		}
		if len(ys) > 8 {
			ys = ys[:8]
		}
		a := clockFromSlice(xs)
		b := clockFromSlice(ys)
		m := a.Clone()
		m.Merge(b)
		if !a.DominatedBy(m) || !b.DominatedBy(m) {
			return false
		}
		n := max(len(xs), len(ys))
		for i := 0; i < n; i++ {
			if m.Get(i) != max(a.Get(i), b.Get(i)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestClockMergeCommutative (property).
func TestClockMergeCommutative(t *testing.T) {
	f := func(xs, ys []uint32) bool {
		a1 := clockFromSlice(xs)
		a1.Merge(clockFromSlice(ys))
		a2 := clockFromSlice(ys)
		a2.Merge(clockFromSlice(xs))
		return a1.DominatedBy(a2) && a2.DominatedBy(a1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestClockMergeIdempotent (property).
func TestClockMergeIdempotent(t *testing.T) {
	f := func(xs []uint32) bool {
		a := clockFromSlice(xs)
		b := a.Clone()
		a.Merge(a)
		return a.DominatedBy(b) && b.DominatedBy(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestActionHappensBefore(t *testing.T) {
	w := &Action{Thread: 1, TSeq: 3}
	rClock := NewClockVector()
	rClock.Set(1, 3)
	rClock.Set(2, 5)
	r := &Action{Thread: 2, TSeq: 5, Clock: rClock}
	if !w.HappensBefore(r) {
		t.Error("w should happen before r")
	}
	w2 := &Action{Thread: 1, TSeq: 4}
	if w2.HappensBefore(r) {
		t.Error("w2 should not happen before r")
	}
	if r.HappensBefore(r) {
		t.Error("hb is irreflexive")
	}
}

func TestActionSCBefore(t *testing.T) {
	a := &Action{SCIndex: 2}
	b := &Action{SCIndex: 5}
	c := &Action{SCIndex: -1}
	if !a.SCBefore(b) || b.SCBefore(a) {
		t.Error("SCBefore ordering wrong")
	}
	if a.SCBefore(c) || c.SCBefore(a) {
		t.Error("non-SC action must not be SC-ordered")
	}
}
