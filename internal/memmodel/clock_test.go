package memmodel

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestClockSetGet(t *testing.T) {
	v := NewClockVector()
	if v.Get(3) != 0 {
		t.Error("fresh clock should be zero everywhere")
	}
	v.Set(3, 7)
	if v.Get(3) != 7 {
		t.Errorf("Get(3) = %d, want 7", v.Get(3))
	}
	v.Set(3, 5) // never lowers
	if v.Get(3) != 7 {
		t.Errorf("Set must not lower: got %d", v.Get(3))
	}
	if v.Get(100) != 0 {
		t.Error("out-of-range Get should be zero")
	}
}

func TestClockMerge(t *testing.T) {
	a := NewClockVector()
	a.Set(0, 5)
	a.Set(2, 1)
	b := NewClockVector()
	b.Set(0, 3)
	b.Set(1, 9)
	a.Merge(b)
	for i, want := range []uint32{5, 9, 1} {
		if a.Get(i) != want {
			t.Errorf("merged[%d] = %d, want %d", i, a.Get(i), want)
		}
	}
	a.Merge(nil) // nil merge is a no-op
	if a.Get(0) != 5 {
		t.Error("nil merge changed the clock")
	}
}

func TestClockCloneIndependence(t *testing.T) {
	a := NewClockVector()
	a.Set(1, 4)
	c := a.Clone()
	c.Set(1, 10)
	if a.Get(1) != 4 {
		t.Error("Clone is not independent")
	}
}

func TestClockContains(t *testing.T) {
	a := NewClockVector()
	a.Set(2, 6)
	if !a.Contains(2, 6) || !a.Contains(2, 1) {
		t.Error("Contains should accept seq <= entry")
	}
	if a.Contains(2, 7) || a.Contains(0, 1) {
		t.Error("Contains accepted future action")
	}
}

func TestClockDominatedBy(t *testing.T) {
	a := NewClockVector()
	a.Set(0, 2)
	b := NewClockVector()
	b.Set(0, 3)
	b.Set(1, 1)
	if !a.DominatedBy(b) {
		t.Error("a should be dominated by b")
	}
	if b.DominatedBy(a) {
		t.Error("b should not be dominated by a")
	}
	if !NewClockVector().DominatedBy(nil) {
		t.Error("empty clock is dominated by nil")
	}
}

// clockFromSlice builds a clock from raw entries for property tests.
func clockFromSlice(s []uint32) *ClockVector {
	v := NewClockVector()
	for i, x := range s {
		v.Set(i, x)
	}
	return v
}

// TestClockMergeIsJoin (property): merge computes the least upper bound —
// it dominates both inputs and is dominated by any other upper bound.
func TestClockMergeIsJoin(t *testing.T) {
	f := func(xs, ys []uint32) bool {
		if len(xs) > 8 {
			xs = xs[:8]
		}
		if len(ys) > 8 {
			ys = ys[:8]
		}
		a := clockFromSlice(xs)
		b := clockFromSlice(ys)
		m := a.Clone()
		m.Merge(b)
		if !a.DominatedBy(m) || !b.DominatedBy(m) {
			return false
		}
		n := max(len(xs), len(ys))
		for i := 0; i < n; i++ {
			if m.Get(i) != max(a.Get(i), b.Get(i)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestClockMergeCommutative (property).
func TestClockMergeCommutative(t *testing.T) {
	f := func(xs, ys []uint32) bool {
		a1 := clockFromSlice(xs)
		a1.Merge(clockFromSlice(ys))
		a2 := clockFromSlice(ys)
		a2.Merge(clockFromSlice(xs))
		return a1.DominatedBy(a2) && a2.DominatedBy(a1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestClockMergeIdempotent (property).
func TestClockMergeIdempotent(t *testing.T) {
	f := func(xs []uint32) bool {
		a := clockFromSlice(xs)
		b := a.Clone()
		a.Merge(a)
		return a.DominatedBy(b) && b.DominatedBy(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestActionHappensBefore(t *testing.T) {
	w := &Action{Thread: 1, TSeq: 3}
	rClock := NewClockVector()
	rClock.Set(1, 3)
	rClock.Set(2, 5)
	r := &Action{Thread: 2, TSeq: 5, Clock: rClock}
	if !w.HappensBefore(r) {
		t.Error("w should happen before r")
	}
	w2 := &Action{Thread: 1, TSeq: 4}
	if w2.HappensBefore(r) {
		t.Error("w2 should not happen before r")
	}
	if r.HappensBefore(r) {
		t.Error("hb is irreflexive")
	}
}

func TestActionSCBefore(t *testing.T) {
	a := &Action{SCIndex: 2}
	b := &Action{SCIndex: 5}
	c := &Action{SCIndex: -1}
	if !a.SCBefore(b) || b.SCBefore(a) {
		t.Error("SCBefore ordering wrong")
	}
	if a.SCBefore(c) || c.SCBefore(a) {
		t.Error("non-SC action must not be SC-ordered")
	}
}

func TestClockShareCopyOnWrite(t *testing.T) {
	// Inline-backed share: plain copy, fully independent.
	a := NewClockVector()
	a.Set(0, 5)
	a.Set(3, 2)
	s := a.Share()
	a.Set(0, 9)
	s.Set(3, 7)
	if s.Get(0) != 5 || a.Get(3) != 2 {
		t.Errorf("inline share not independent: s[0]=%d a[3]=%d", s.Get(0), a.Get(3))
	}

	// Heap-backed share: backing array is shared until first write.
	big := NewClockVector()
	for i := 0; i <= inlineClockSize; i++ {
		big.Set(i, uint32(i+1))
	}
	snap := big.Share()
	big.Set(0, 100) // must copy, not corrupt snap
	if snap.Get(0) != 1 {
		t.Errorf("mutating original leaked into shared snapshot: got %d", snap.Get(0))
	}
	snap2 := big.Share()
	snap2.Set(1, 100) // mutating the snapshot must copy too
	if big.Get(1) != 2 {
		t.Errorf("mutating snapshot leaked into original: got %d", big.Get(1))
	}
	// Growing a shared clock must not extend into the shared backing array.
	snap3 := big.Share()
	big.Set(inlineClockSize+5, 1)
	if snap3.Len() > inlineClockSize+1 || snap3.Get(inlineClockSize+5) != 0 {
		t.Error("growing original extended shared snapshot")
	}
}

func TestClockShareMergeNoChangeKeepsSharing(t *testing.T) {
	big := NewClockVector()
	for i := 0; i <= inlineClockSize; i++ {
		big.Set(i, 10)
	}
	snap := big.Share()
	small := NewClockVector()
	small.Set(0, 3)
	if snap.Merge(small) {
		t.Error("dominated merge reported a change")
	}
	if snap.Merge(big) {
		t.Error("self-valued merge reported a change")
	}
	other := NewClockVector()
	other.Set(1, 99)
	if !snap.Merge(other) {
		t.Error("raising merge did not report a change")
	}
	if big.Get(1) == 99 {
		t.Error("merge into snapshot leaked into original")
	}
}

func TestClockGrowZeroesRecycledCapacity(t *testing.T) {
	v := NewClockVector()
	for i := 0; i < 2*inlineClockSize; i++ {
		v.Set(i, uint32(i+1))
	}
	v.Reset()
	if v.Len() != 0 {
		t.Fatalf("Reset left Len=%d", v.Len())
	}
	v.Set(2*inlineClockSize-1, 1) // regrow into retained capacity
	for i := 0; i < 2*inlineClockSize-1; i++ {
		if v.Get(i) != 0 {
			t.Fatalf("stale value survived Reset+grow at %d: %d", i, v.Get(i))
		}
	}
}

func TestClockResetOfSharedSnapshot(t *testing.T) {
	big := NewClockVector()
	for i := 0; i <= inlineClockSize; i++ {
		big.Set(i, 7)
	}
	snap := big.Share()
	snap.Reset()
	if big.Get(0) != 7 {
		t.Error("resetting a shared snapshot zeroed the original")
	}
	if snap.Len() != 0 {
		t.Error("Reset did not empty the snapshot")
	}
}

func TestClockCopyFromReusesStorage(t *testing.T) {
	src := NewClockVector()
	src.Set(1, 4)
	src.Set(5, 2)
	dst := NewClockVector()
	dst.Set(2, 99)
	dst.CopyFrom(src)
	if !dst.DominatedBy(src) || !src.DominatedBy(dst) {
		t.Error("CopyFrom did not produce an equal clock")
	}
	if dst.Get(2) != 0 {
		t.Errorf("CopyFrom left stale entry: %d", dst.Get(2))
	}
	dst.Set(0, 50)
	if src.Get(0) != 0 {
		t.Error("CopyFrom aliased the source")
	}
	allocs := testing.AllocsPerRun(100, func() {
		dst.CopyFrom(src)
	})
	if allocs != 0 {
		t.Errorf("CopyFrom into sized storage allocated %.0f times", allocs)
	}
}

func TestClockInlineOpsDoNotAllocate(t *testing.T) {
	a := NewClockVector()
	a.Set(3, 5)
	b := NewClockVector()
	b.Set(inlineClockSize-1, 2)
	allocs := testing.AllocsPerRun(100, func() {
		a.Merge(b)
		a.Set(0, a.Get(0)+1)
	})
	if allocs != 0 {
		t.Errorf("inline Merge/Set allocated %.0f times per run", allocs)
	}
}

// BenchmarkClockGrow measures extending a fresh clock to n entries — the
// satellite fix replacing one-append-per-entry growth with a single
// make+copy.
func BenchmarkClockGrow(b *testing.B) {
	for _, n := range []int{8, 64, 512} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				v := NewClockVector()
				v.Set(n-1, 1)
			}
		})
	}
}

func BenchmarkClockMerge(b *testing.B) {
	a := NewClockVector()
	o := NewClockVector()
	for i := 0; i < 4; i++ {
		a.Set(i, uint32(2*i))
		o.Set(i, uint32(2*i+1))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a.Merge(o)
	}
}

func BenchmarkClockSnapshot(b *testing.B) {
	small := NewClockVector()
	for i := 0; i < 4; i++ {
		small.Set(i, uint32(i+1))
	}
	b.Run("share-inline", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = small.Share()
		}
	})
	big := NewClockVector()
	for i := 0; i < 4*inlineClockSize; i++ {
		big.Set(i, uint32(i+1))
	}
	b.Run("share-heap", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = big.Share()
		}
	})
	b.Run("clone-heap", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = big.Clone()
		}
	})
}
