package memmodel

import (
	"testing"
	"testing/quick"
)

func sampleTable() *OrderTable {
	return NewOrderTable(
		Site{Name: "load_a", Class: OpLoad, Default: Acquire},
		Site{Name: "store_b", Class: OpStore, Default: Release},
		Site{Name: "rmw_c", Class: OpRMW, Default: SeqCst},
		Site{Name: "relaxed_d", Class: OpLoad, Default: Relaxed},
	)
}

func TestOrderTableGetSet(t *testing.T) {
	tb := sampleTable()
	if tb.Get("load_a") != Acquire {
		t.Errorf("Get = %v, want acquire", tb.Get("load_a"))
	}
	tb.Set("load_a", Relaxed)
	if tb.Get("load_a") != Relaxed {
		t.Error("Set did not take effect")
	}
}

func TestOrderTableUnknownSitePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Get of unknown site should panic")
		}
	}()
	sampleTable().Get("nope")
}

func TestOrderTableDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate site should panic")
		}
	}()
	NewOrderTable(
		Site{Name: "x", Class: OpLoad, Default: Acquire},
		Site{Name: "x", Class: OpStore, Default: Release},
	)
}

func TestOrderTableCloneIndependence(t *testing.T) {
	tb := sampleTable()
	c := tb.Clone()
	c.Set("load_a", Relaxed)
	if tb.Get("load_a") != Acquire {
		t.Error("Clone is not independent")
	}
}

func TestOrderTableSitesSorted(t *testing.T) {
	sites := sampleTable().Sites()
	for i := 1; i < len(sites); i++ {
		if sites[i-1].Name >= sites[i].Name {
			t.Fatalf("Sites not sorted: %v", sites)
		}
	}
}

func TestWeakenSite(t *testing.T) {
	tb := sampleTable()
	if !tb.WeakenSite("rmw_c") || tb.Get("rmw_c") != AcqRel {
		t.Errorf("WeakenSite rmw: got %v", tb.Get("rmw_c"))
	}
	if tb.WeakenSite("relaxed_d") {
		t.Error("relaxed site should not weaken")
	}
}

// TestWeakenings: one table per weakenable site, each differing from the
// defaults in exactly that site by exactly one ladder step.
func TestWeakenings(t *testing.T) {
	tb := sampleTable()
	ws := tb.Weakenings()
	if len(ws) != 3 { // relaxed_d is terminal
		t.Fatalf("expected 3 weakenings, got %d", len(ws))
	}
	for _, w := range ws {
		diffs := 0
		for _, s := range tb.Sites() {
			if w.Get(s.Name) != s.Default {
				diffs++
				want, ok := Weaken(s.Class, s.Default)
				if !ok || w.Get(s.Name) != want {
					t.Errorf("site %s weakened to %v, want %v", s.Name, w.Get(s.Name), want)
				}
			}
		}
		if diffs != 1 {
			t.Errorf("weakening changed %d sites, want exactly 1", diffs)
		}
	}
}

// TestWeakeningsProperty (property): for any well-formed table, every
// weakening differs from defaults in exactly one site.
func TestWeakeningsProperty(t *testing.T) {
	f := func(classes []uint8) bool {
		if len(classes) > 6 {
			classes = classes[:6]
		}
		var sites []Site
		for i, c := range classes {
			sites = append(sites, Site{
				Name:    string(rune('a' + i)),
				Class:   OpClass(c % 4),
				Default: MemOrder(c % 6),
			})
		}
		tb := NewOrderTable(sites...)
		for _, w := range tb.Weakenings() {
			diffs := 0
			for _, s := range sites {
				if w.Get(s.Name) != s.Default {
					diffs++
				}
			}
			if diffs != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSiteLookup(t *testing.T) {
	tb := sampleTable()
	if s, ok := tb.Site("store_b"); !ok || s.Class != OpStore {
		t.Errorf("Site lookup failed: %v %v", s, ok)
	}
	if _, ok := tb.Site("nope"); ok {
		t.Error("Site lookup of unknown name succeeded")
	}
}
