package fuzz_test

import (
	"reflect"
	"testing"

	"repro/internal/fuzz"
	"repro/internal/harness"
)

// spscWeakened returns the SPSC benchmark's target and an order table
// with the enq_store_next release store weakened to relaxed — the
// publication edge consumers rely on, so a campaign over the tiny SPSC
// state space finds the seeded bug almost immediately.
func spscWeakened(t *testing.T) (*fuzz.Target, *harness.Benchmark) {
	t.Helper()
	b := harness.BenchmarkByName("SPSC Queue")
	if b == nil {
		t.Fatal("SPSC Queue benchmark missing")
	}
	return b.FuzzTarget(), b
}

// TestCampaignWorkerDeterminism: a campaign's verdicts and summary are
// bit-identical no matter how many workers explore the programs (only
// Elapsed, a timing, may differ).
func TestCampaignWorkerDeterminism(t *testing.T) {
	target, b := spscWeakened(t)
	run := func(workers int) *fuzz.Campaign {
		ord := b.Orders()
		if !ord.WeakenSite("enq_store_next") {
			t.Fatal("cannot weaken enq_store_next")
		}
		camp, err := fuzz.Run(target, fuzz.CampaignConfig{
			Seed: 11, Count: 12, Budget: 2000, Workers: workers, Orders: ord,
		})
		if err != nil {
			t.Fatal(err)
		}
		camp.Summary.Elapsed = 0
		return camp
	}
	seq, par := run(1), run(4)
	if !reflect.DeepEqual(seq.Verdicts, par.Verdicts) {
		t.Error("verdicts differ between -workers 1 and -workers 4")
	}
	if !reflect.DeepEqual(seq.Unique, par.Unique) {
		t.Error("unique failures differ between -workers 1 and -workers 4")
	}
	if !reflect.DeepEqual(seq.Summary, par.Summary) {
		t.Errorf("summaries differ:\n%+v\n%+v", seq.Summary, par.Summary)
	}
	if seq.Summary.Failing == 0 {
		t.Error("seeded-bug campaign found nothing; the determinism check is vacuous")
	}
}

// TestSeededBugEndToEnd is the full pipeline over a seeded bug: weaken
// one SPSC site, fuzz until the campaign surfaces the failure, shrink
// the first unique failing program, and confirm the minimal program (a)
// fails with the same kind and (b) is locally minimal — every valid
// one-step reduction of it passes.
func TestSeededBugEndToEnd(t *testing.T) {
	target, b := spscWeakened(t)
	ord := b.Orders()
	if !ord.WeakenSite("enq_store_next") {
		t.Fatal("cannot weaken enq_store_next")
	}
	cfg := fuzz.CampaignConfig{Seed: 1, Count: 15, Budget: 3000, Orders: ord}
	camp, err := fuzz.Run(target, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(camp.Unique) == 0 {
		t.Fatal("campaign did not find the seeded bug")
	}
	first := camp.Unique[0]
	t.Logf("campaign: %d failing, %d unique; first: %s (%s)",
		camp.Summary.Failing, camp.Summary.Unique, first.Program, first.Failure.Kind)

	res, err := fuzz.Shrink(target, first.Program, ord, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("shrunk %d -> %d ops in %d steps (%d attempts): %s",
		res.Original.OpCount(), res.Minimal.OpCount(), res.Steps, res.Attempts, res.Minimal)
	if res.Kind != first.Failure.Kind {
		t.Errorf("shrink changed the failure kind: %s -> %s", first.Failure.Kind, res.Kind)
	}
	if res.Verdict.Failure == nil || res.Verdict.Failure.Kind != res.Kind {
		t.Errorf("minimal program's verdict does not carry the kind: %+v", res.Verdict)
	}
	if res.Minimal.OpCount() > res.Original.OpCount() {
		t.Error("shrink grew the program")
	}

	// Local minimality: every candidate reduction that still validates
	// must no longer fail with the same kind.
	for _, cand := range fuzz.ShrinkCandidates(res.Minimal) {
		if target.Validate(cand) != nil {
			continue
		}
		v, err := target.Check(cand, ord, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if v.Failure != nil && v.Failure.Kind == res.Kind {
			t.Errorf("minimal program is not minimal: reduction %s still fails with %s", cand, res.Kind)
		}
	}
}

// TestCleanCampaignAllBenchmarks: a small campaign against every
// benchmark's correct orders finds nothing — the generated programs do
// not trip spurious deadlocks/livelocks (the balance constraints at
// work), and the registries' instance names line up with their specs.
func TestCleanCampaignAllBenchmarks(t *testing.T) {
	for _, b := range harness.Benchmarks() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			camp, err := fuzz.Run(b.FuzzTarget(), fuzz.CampaignConfig{Seed: 3, Count: 4, Budget: 1200, Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			if camp.Summary.Failing != 0 {
				t.Fatalf("campaign against correct orders failed: %s: %s",
					camp.Unique[0].Program, camp.Unique[0].Failure.Msg)
			}
			if camp.Summary.Executions == 0 {
				t.Fatal("campaign explored nothing")
			}
		})
	}
}
