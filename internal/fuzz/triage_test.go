// Triage end-to-end tests live in an external test package: the real
// structure registries (msqueue) import internal/fuzz for the Registry
// type, so an in-package test importing them would be an import cycle.
package fuzz_test

import (
	"encoding/json"
	"testing"

	"repro/internal/checker"
	"repro/internal/core"
	"repro/internal/fuzz"
	"repro/internal/structures/msqueue"
)

func msqueueTarget() *fuzz.Target {
	return &fuzz.Target{
		Name:     "msqueue",
		Spec:     func() *core.Spec { return msqueue.Spec("q") },
		Orders:   msqueue.DefaultOrders,
		Registry: msqueue.FuzzOps(),
	}
}

// TestTriageEndToEnd drives the full screen → confirm → shrink pipeline
// against the §6.4.1 seeded bug (KnownBugEnqueue weakens the enqueue's
// publishing CAS to relaxed): fast mode screens generated programs at
// screen-tier speed and flags the ones where a dequeuer reads the node
// payload before the weakened publication makes it visible; exhaustive
// mode re-checks every flagged program through the CDSSpec layer and
// confirms the uninitialized load; the shrinker reduces each confirmed
// reproducer to a local minimum (an enq racing a deq — two ops).
func TestTriageEndToEnd(t *testing.T) {
	res, err := fuzz.Triage(msqueueTarget(), fuzz.TriageConfig{
		Seed:     42,
		Count:    12,
		FastRuns: 300,
		Orders:   msqueue.KnownBugEnqueue(),
		Shrink:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Screened != 12 {
		t.Fatalf("screened %d programs, want 12", res.Screened)
	}
	if res.Flagged == 0 {
		t.Fatal("fast-mode screen flagged nothing: the seeded bug went undetected")
	}
	if len(res.Confirmed) == 0 {
		t.Fatal("exhaustive tier confirmed none of the flagged programs")
	}
	if len(res.Confirmed)+len(res.Unconfirmed) != res.Flagged {
		t.Errorf("confirmed %d + unconfirmed %d != flagged %d",
			len(res.Confirmed), len(res.Unconfirmed), res.Flagged)
	}
	if res.FastExecutions == 0 || res.ConfirmExecutions == 0 {
		t.Errorf("both tiers must spend executions: fast=%d confirm=%d",
			res.FastExecutions, res.ConfirmExecutions)
	}
	if res.Buckets["builtin/uninitialized-load"] != len(res.Confirmed) {
		t.Errorf("buckets = %v, want all %d confirmed hits under builtin/uninitialized-load",
			res.Buckets, len(res.Confirmed))
	}
	for _, h := range res.Confirmed {
		if h.Screen == nil || h.Screen.Kind != checker.FailUninitLoad {
			t.Errorf("screen failure = %v, want uninitialized-load", h.Screen)
		}
		if h.Verdict == nil || h.Verdict.Failure == nil {
			t.Fatalf("confirmed hit %s has no exhaustive verdict", h.Program)
		}
		if h.Minimal == nil {
			t.Fatalf("confirmed hit %s was not shrunk", h.Program)
		}
		if got, orig := h.Minimal.Minimal.OpCount(), h.Program.OpCount(); got > orig {
			t.Errorf("shrinker grew the program: %d ops -> %d", orig, got)
		}
		// The minimal reproducer of this bug is one enqueue racing one
		// dequeue: the shrinker must reach it from every flagged shape.
		if got := h.Minimal.Minimal.OpCount(); got != 2 {
			t.Errorf("minimal reproducer has %d ops, want 2:\n%s", got, h.Minimal.Minimal)
		}
		if h.Minimal.Kind != h.Verdict.Failure.Kind {
			t.Errorf("shrink preserved kind %s but original failed with %s",
				h.Minimal.Kind, h.Verdict.Failure.Kind)
		}
	}
}

// TestTriageDeterministic: everything except Elapsed is a pure function
// of (target, config) — two runs agree bit-for-bit even though the
// screen and confirm tiers fan out across workers.
func TestTriageDeterministic(t *testing.T) {
	run := func(workers int) []byte {
		res, err := fuzz.Triage(msqueueTarget(), fuzz.TriageConfig{
			Seed:     42,
			Count:    8,
			FastRuns: 200,
			Workers:  workers,
			Orders:   msqueue.KnownBugEnqueue(),
		})
		if err != nil {
			t.Fatal(err)
		}
		res.Elapsed = 0
		blob, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return blob
	}
	a, b, c := run(1), run(4), run(4)
	if string(a) != string(b) || string(b) != string(c) {
		t.Errorf("triage results differ across runs/worker counts:\n%s\n%s\n%s", a, b, c)
	}
}

// TestTriageCleanOrders: with the correct order table the screen flags
// nothing — the triage tier does not manufacture false positives.
// Two-thread shapes only: some generated 3-thread msqueue programs hit a
// genuine uninitialized q.next load even under the correct orders (both
// modes agree — exhaustive mode reproduces it in ~6.6k executions), so
// 3-thread clean programs are not a false-positive baseline.
// ConfirmBudget is a belt-and-suspenders bound: nothing should be
// flagged, but an unbounded confirm tier on a large clean program can
// run for minutes.
func TestTriageCleanOrders(t *testing.T) {
	res, err := fuzz.Triage(msqueueTarget(), fuzz.TriageConfig{
		Seed:          42,
		Count:         8,
		FastRuns:      200,
		ConfirmBudget: 20000,
		Gen:           fuzz.GenConfig{MaxThreads: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Flagged != 0 {
		t.Errorf("screen flagged %d programs under correct orders", res.Flagged)
	}
	if len(res.Confirmed) != 0 || len(res.Unconfirmed) != 0 {
		t.Errorf("nothing was flagged but confirm tier produced hits: %+v", res)
	}
}
