// Package fuzz turns the exhaustive checker into a test generator: it
// draws randomized unit-test programs ("scenarios") for a benchmark from
// a registry of named client operations, runs each generated program
// through the existing explorer and spec checker as a campaign, triages
// and dedups the failures, and shrinks a failing program to a minimal,
// human-readable counterexample.
//
// The paper itself flags the weakness this addresses (§6.4 "Limitation
// of Unit Tests"): hand-written ≤3-thread tests only exercise the
// scenarios their authors thought of. The fuzzer explores the scenario
// space too — while every individual generated program is still checked
// exhaustively (or up to a budget) under the C/C++11 memory model.
//
// Everything here is deterministic: the same seed against the same
// registry yields a byte-identical program batch, and campaigns produce
// identical verdicts regardless of worker count.
package fuzz

import (
	"fmt"

	"repro/internal/checker"
	"repro/internal/core"
	"repro/internal/memmodel"
)

// Role constrains which threads of a generated program may run an
// operation — the thread-role contracts of the benchmarks (Chase-Lev's
// single owner, SPSC's one producer and one consumer).
type Role struct {
	// Name identifies the role ("owner", "producer", ...).
	Name string
	// Max bounds how many threads of one program may hold the role;
	// 0 means unlimited.
	Max int
}

// Op is one named client operation of a data structure, as the fuzzer
// may generate it.
type Op struct {
	// Name identifies the operation ("push", "take", ...).
	Name string
	// Role is the thread role required to run the op ("" = any thread).
	Role string
	// Arity is the number of value arguments the op takes.
	Arity int
	// Produces/Consumes describe the op's effect on the structure's item
	// balance. They gate generation for structures with blocking ops
	// (see Registry.Blocking/Capacity): a generated program must never be
	// able to block forever, or every campaign would drown in spurious
	// deadlock reports.
	Produces, Consumes int
	// Apply runs the operation against the instance built by
	// Registry.New. args has exactly Arity elements.
	Apply func(inst any, t *checker.Thread, args []memmodel.Value)
}

// Registry describes the fuzzable client surface of one data structure.
// Each structure package exports one via its FuzzOps function; the
// harness wires it onto the corresponding Benchmark.
type Registry struct {
	// Structure is the short package-style name ("chaselev"), used in
	// rendered pseudocode.
	Structure string
	// New builds one instance on the root thread, before any program
	// thread is spawned. The instance name it registers with the monitor
	// must match the benchmark's Spec name.
	New func(root *checker.Thread, ord *memmodel.OrderTable) any
	// Roles lists the thread roles. Empty means a single anonymous role:
	// every thread may run every op.
	Roles []Role
	// Ops lists the generable operations.
	Ops []Op
	// Blocking marks structures whose consume ops block (spin) until an
	// item is available. Generated programs must then satisfy
	// total(Consumes) <= total(Produces).
	Blocking bool
	// Capacity, when positive, marks structures whose produce ops block
	// while the structure holds Capacity items. Generated programs must
	// then satisfy total(Produces) <= total(Consumes) + Capacity.
	//
	// Together with Blocking and producer/consumer role separation this
	// guarantees deadlock-freedom of every valid program: producers
	// blocked on "full" and consumers blocked on "empty" cannot coexist,
	// and the balance bounds rule out one side outliving the other.
	Capacity int
}

// Op returns the named operation, or nil.
func (r *Registry) Op(name string) *Op {
	for i := range r.Ops {
		if r.Ops[i].Name == name {
			return &r.Ops[i]
		}
	}
	return nil
}

// roleMax returns the thread cap for a role (0 = unlimited) and whether
// the role exists. The anonymous role "" exists iff Roles is empty.
func (r *Registry) roleMax(name string) (int, bool) {
	if len(r.Roles) == 0 {
		return 0, name == ""
	}
	for _, role := range r.Roles {
		if role.Name == name {
			return role.Max, true
		}
	}
	return 0, false
}

// opsForRole returns the indices into Ops runnable by a thread holding
// the role, in declaration order.
func (r *Registry) opsForRole(role string) []int {
	var out []int
	for i := range r.Ops {
		if r.Ops[i].Role == "" || r.Ops[i].Role == role {
			out = append(out, i)
		}
	}
	return out
}

// Target bundles everything needed to fuzz one benchmark: the spec and
// order table the harness already has, plus the op registry.
type Target struct {
	// Name matches the harness benchmark name.
	Name string
	// Spec builds the CDSSpec specification.
	Spec func() *core.Spec
	// Orders returns the correct memory-order table. Campaigns may run
	// against a weakened clone to hunt a seeded bug.
	Orders func() *memmodel.OrderTable
	// Registry is the op registry.
	Registry *Registry
}

// Validate checks a program against the target's registry: known ops and
// roles, role caps, arities, and the blocking-balance constraints. Every
// program the generator emits validates; the shrinker uses Validate to
// reject reductions that would leave a program able to block forever.
func (t *Target) Validate(p *Program) error {
	if p == nil {
		return fmt.Errorf("nil program")
	}
	reg := t.Registry
	roleCount := map[string]int{}
	produces, consumes := 0, 0
	for ti, ts := range p.Threads {
		max, ok := reg.roleMax(ts.Role)
		if !ok {
			return fmt.Errorf("thread %d: unknown role %q for %s", ti, ts.Role, reg.Structure)
		}
		roleCount[ts.Role]++
		if max > 0 && roleCount[ts.Role] > max {
			return fmt.Errorf("thread %d: role %q exceeds its cap of %d", ti, ts.Role, max)
		}
		for oi, oc := range ts.Ops {
			op := reg.Op(oc.Op)
			if op == nil {
				return fmt.Errorf("thread %d op %d: unknown op %q for %s", ti, oi, oc.Op, reg.Structure)
			}
			if op.Role != "" && op.Role != ts.Role {
				return fmt.Errorf("thread %d op %d: op %q requires role %q, thread has %q",
					ti, oi, oc.Op, op.Role, ts.Role)
			}
			if len(oc.Args) != op.Arity {
				return fmt.Errorf("thread %d op %d: op %q wants %d args, got %d",
					ti, oi, oc.Op, op.Arity, len(oc.Args))
			}
			produces += op.Produces
			consumes += op.Consumes
		}
	}
	if reg.Blocking && consumes > produces {
		return fmt.Errorf("program consumes %d items but produces only %d: a blocking consume could never return",
			consumes, produces)
	}
	if reg.Capacity > 0 && produces > consumes+reg.Capacity {
		return fmt.Errorf("program produces %d items against %d consumes + capacity %d: a blocked produce could never return",
			produces, consumes, reg.Capacity)
	}
	return nil
}

// Render compiles a program into the Progs-style closure the explorer
// runs: build the instance on the root thread, spawn one simulated
// thread per program thread, run its op sequence, join them all. ord nil
// means the target's default orders.
func (t *Target) Render(p *Program, ord *memmodel.OrderTable) (func(*checker.Thread), error) {
	if err := t.Validate(p); err != nil {
		return nil, fmt.Errorf("rendering %s program: %w", t.Name, err)
	}
	if ord == nil {
		ord = t.Orders()
	}
	reg := t.Registry
	return func(root *checker.Thread) {
		inst := reg.New(root, ord)
		kids := make([]*checker.Thread, len(p.Threads))
		for i, ts := range p.Threads {
			ts := ts
			kids[i] = root.Spawn(fmt.Sprintf("t%d", i), func(tt *checker.Thread) {
				for _, oc := range ts.Ops {
					reg.Op(oc.Op).Apply(inst, tt, oc.Args)
				}
			})
		}
		for _, k := range kids {
			root.Join(k)
		}
	}, nil
}
