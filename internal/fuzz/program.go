package fuzz

import (
	"fmt"
	"strings"

	"repro/internal/memmodel"
)

// OpCall is one operation invocation in a generated program.
type OpCall struct {
	Op   string           `json:"op"`
	Args []memmodel.Value `json:"args,omitempty"`
}

// ThreadSeq is one simulated thread: its role and op sequence.
type ThreadSeq struct {
	Role string   `json:"role,omitempty"`
	Ops  []OpCall `json:"ops"`
}

// Program is one generated scenario: threads × op sequences, with the
// provenance needed to regenerate or triage it. It is the unit the
// corpus persists and the shrinker minimizes.
type Program struct {
	// Benchmark names the harness benchmark the program targets.
	Benchmark string `json:"benchmark"`
	// Seed and Index record provenance: the campaign seed and the
	// program's position in the generated batch.
	Seed  uint64 `json:"seed,omitempty"`
	Index int    `json:"index,omitempty"`

	Threads []ThreadSeq `json:"threads"`
}

// Clone returns a deep copy (the shrinker mutates candidates freely).
func (p *Program) Clone() *Program {
	out := *p
	out.Threads = make([]ThreadSeq, len(p.Threads))
	for i, ts := range p.Threads {
		out.Threads[i] = ThreadSeq{Role: ts.Role, Ops: make([]OpCall, len(ts.Ops))}
		for j, oc := range ts.Ops {
			cp := oc
			cp.Args = append([]memmodel.Value(nil), oc.Args...)
			out.Threads[i].Ops[j] = cp
		}
	}
	return &out
}

// OpCount returns the total number of op invocations across all threads.
func (p *Program) OpCount() int {
	n := 0
	for _, ts := range p.Threads {
		n += len(ts.Ops)
	}
	return n
}

// String renders the program on one line, e.g.
// "t0[owner]: push(1) take | t1[thief]: steal".
func (p *Program) String() string {
	var b strings.Builder
	for i, ts := range p.Threads {
		if i > 0 {
			b.WriteString(" | ")
		}
		fmt.Fprintf(&b, "t%d", i)
		if ts.Role != "" {
			fmt.Fprintf(&b, "[%s]", ts.Role)
		}
		b.WriteString(":")
		for _, oc := range ts.Ops {
			b.WriteString(" ")
			b.WriteString(formatOpCall(oc))
		}
	}
	return b.String()
}

func formatOpCall(oc OpCall) string {
	if len(oc.Args) == 0 {
		return oc.Op
	}
	args := make([]string, len(oc.Args))
	for i, a := range oc.Args {
		args[i] = fmt.Sprintf("%d", a)
	}
	return fmt.Sprintf("%s(%s)", oc.Op, strings.Join(args, ", "))
}

// GoClosure renders the program as runnable Go-closure pseudocode in the
// style of the hand-written unit tests in harness/benchmarks.go, so a
// shrunk counterexample can be pasted into a report (op names stand in
// for the structure's method calls).
func (p *Program) GoClosure(reg *Registry) string {
	var b strings.Builder
	structure := "structure"
	if reg != nil {
		structure = reg.Structure
	}
	fmt.Fprintf(&b, "// benchmark: %s\n", p.Benchmark)
	fmt.Fprintf(&b, "func(root *checker.Thread) {\n")
	fmt.Fprintf(&b, "\tinst := %s.New(root, orders)\n", structure)
	for i, ts := range p.Threads {
		role := ""
		if ts.Role != "" {
			role = fmt.Sprintf(" // role: %s", ts.Role)
		}
		fmt.Fprintf(&b, "\tt%d := root.Spawn(\"t%d\", func(t *checker.Thread) {%s\n", i, i, role)
		for _, oc := range ts.Ops {
			args := make([]string, 0, len(oc.Args)+1)
			args = append(args, "t")
			for _, a := range oc.Args {
				args = append(args, fmt.Sprintf("%d", a))
			}
			fmt.Fprintf(&b, "\t\tinst.%s(%s)\n", goName(oc.Op), strings.Join(args, ", "))
		}
		fmt.Fprintf(&b, "\t})\n")
	}
	for i := range p.Threads {
		fmt.Fprintf(&b, "\troot.Join(t%d)\n", i)
	}
	fmt.Fprintf(&b, "}\n")
	return b.String()
}

// goName renders an op name like "read_trylock" as the exported-method
// style "ReadTrylock".
func goName(op string) string {
	parts := strings.Split(op, "_")
	for i, p := range parts {
		if p != "" {
			parts[i] = strings.ToUpper(p[:1]) + p[1:]
		}
	}
	return strings.Join(parts, "")
}
