package fuzz

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/checker"
)

// fakeTarget builds a target with an SPSC-shaped registry: roles with
// caps and both balance constraints, so generation exercises role
// picking and repair. Apply/New are nil — generation, validation, and
// shrink-candidate enumeration never invoke them.
func fakeTarget() *Target {
	return &Target{
		Name: "fake",
		Registry: &Registry{
			Structure: "fake",
			Roles:     []Role{{Name: "producer", Max: 1}, {Name: "consumer", Max: 1}},
			Blocking:  true,
			Capacity:  2,
			Ops: []Op{
				{Name: "enq", Role: "producer", Arity: 1, Produces: 1},
				{Name: "deq", Role: "consumer", Consumes: 1},
			},
		},
	}
}

// TestGeneratorDeterminism: the same (seed, config, registry) yields a
// byte-identical batch; a different seed yields a different one.
func TestGeneratorDeterminism(t *testing.T) {
	a := NewGenerator(fakeTarget(), 42, GenConfig{}).Generate(50)
	b := NewGenerator(fakeTarget(), 42, GenConfig{}).Generate(50)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different batches")
	}
	c := NewGenerator(fakeTarget(), 43, GenConfig{}).Generate(50)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical 50-program batches")
	}
}

// TestGeneratedProgramsValidate: every generated program satisfies the
// registry's role caps, arities, and blocking-balance constraints.
func TestGeneratedProgramsValidate(t *testing.T) {
	target := fakeTarget()
	for i, p := range NewGenerator(target, 7, GenConfig{}).Generate(200) {
		if err := target.Validate(p); err != nil {
			t.Fatalf("program %d does not validate: %v\n%s", i, err, p)
		}
		if p.Index != i {
			t.Fatalf("program %d records index %d", i, p.Index)
		}
	}
}

// TestValidateRejects: malformed programs are rejected with the specific
// violation.
func TestValidateRejects(t *testing.T) {
	target := fakeTarget()
	cases := []struct {
		name string
		p    *Program
		want string
	}{
		{"unknown role", &Program{Threads: []ThreadSeq{{Role: "pilot", Ops: []OpCall{{Op: "enq", Args: []uint64{1}}}}}}, "unknown role"},
		{"role cap", &Program{Threads: []ThreadSeq{
			{Role: "producer", Ops: []OpCall{{Op: "enq", Args: []uint64{1}}}},
			{Role: "producer", Ops: []OpCall{{Op: "enq", Args: []uint64{1}}}},
		}}, "exceeds its cap"},
		{"unknown op", &Program{Threads: []ThreadSeq{{Role: "producer", Ops: []OpCall{{Op: "push", Args: []uint64{1}}}}}}, "unknown op"},
		{"wrong role for op", &Program{Threads: []ThreadSeq{{Role: "consumer", Ops: []OpCall{{Op: "enq", Args: []uint64{1}}}}}}, "requires role"},
		{"arity", &Program{Threads: []ThreadSeq{{Role: "producer", Ops: []OpCall{{Op: "enq"}}}}}, "wants 1 args"},
		{"blocking balance", &Program{Threads: []ThreadSeq{{Role: "consumer", Ops: []OpCall{{Op: "deq"}}}}}, "blocking consume"},
		{"capacity balance", &Program{Threads: []ThreadSeq{{Role: "producer", Ops: []OpCall{
			{Op: "enq", Args: []uint64{1}}, {Op: "enq", Args: []uint64{1}}, {Op: "enq", Args: []uint64{1}},
		}}}}, "capacity"},
	}
	for _, tc := range cases {
		err := target.Validate(tc.p)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: Validate = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

// TestTriageBucketExhaustive: every failure kind the checker can report
// has an explicit non-empty triage bucket — adding a kind without one is
// a build-the-table-first error, mirroring the harness channel test.
func TestTriageBucketExhaustive(t *testing.T) {
	for _, k := range checker.FailureKinds() {
		if TriageBucket(k) == "" {
			t.Errorf("failure kind %s has no fuzz triage bucket", k)
		}
	}
	if TriageBucket(checker.FailureKind(255)) != "" {
		t.Error("an out-of-range kind must map to the empty bucket")
	}
}

// TestShrinkCandidates: candidate order is threads (desc), ops (desc),
// then value shrinks; no candidate aliases the original's memory.
func TestShrinkCandidates(t *testing.T) {
	p := &Program{Benchmark: "fake", Threads: []ThreadSeq{
		{Role: "producer", Ops: []OpCall{{Op: "enq", Args: []uint64{3}}, {Op: "enq", Args: []uint64{1}}}},
		{Role: "consumer", Ops: []OpCall{{Op: "deq"}}},
	}}
	cands := ShrinkCandidates(p)
	// 2 thread drops + 3 op drops + value shrinks for arg 3 (→1, →2); the
	// arg already at 1 must not shrink further.
	if len(cands) != 7 {
		t.Fatalf("got %d candidates, want 7: %v", len(cands), cands)
	}
	if len(cands[0].Threads) != 1 || cands[0].Threads[0].Role != "producer" {
		t.Errorf("first candidate should drop the last thread: %s", cands[0])
	}
	for i, c := range cands {
		if reflect.DeepEqual(c, p) {
			t.Errorf("candidate %d equals the original", i)
		}
	}
	// Mutating a candidate must not touch the original (deep clone).
	cands[0].Threads[0].Ops[0].Args[0] = 99
	if p.Threads[0].Ops[0].Args[0] != 3 {
		t.Error("candidate mutation leaked into the original program")
	}
}

// TestProgramRendering: the one-line and Go-closure renderings carry the
// roles, ops, and args.
func TestProgramRendering(t *testing.T) {
	p := &Program{Benchmark: "fake", Threads: []ThreadSeq{
		{Role: "producer", Ops: []OpCall{{Op: "enq", Args: []uint64{2}}}},
		{Role: "consumer", Ops: []OpCall{{Op: "deq"}}},
	}}
	if got, want := p.String(), "t0[producer]: enq(2) | t1[consumer]: deq"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	src := p.GoClosure(fakeTarget().Registry)
	for _, want := range []string{"fake.New(root, orders)", "inst.Enq(t, 2)", "inst.Deq(t)", "root.Join(t1)", "// role: producer"} {
		if !strings.Contains(src, want) {
			t.Errorf("GoClosure missing %q:\n%s", want, src)
		}
	}
	if got, want := goName("read_trylock"), "ReadTrylock"; got != want {
		t.Errorf("goName = %q, want %q", got, want)
	}
}

// TestCorpusRoundTrip: save/load preserves entries, Add dedups on
// (benchmark, kind, fingerprint), and a missing file loads empty.
func TestCorpusRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "corpus.json")
	c, err := LoadCorpus(path)
	if err != nil || len(c.Entries) != 0 {
		t.Fatalf("missing corpus: got %v, %v; want empty, nil", c.Entries, err)
	}
	v := &Verdict{
		Program: &Program{Benchmark: "fake", Threads: []ThreadSeq{
			{Role: "producer", Ops: []OpCall{{Op: "enq", Args: []uint64{1}}}},
		}},
		Failure:     &checker.Failure{Kind: checker.FailAssertion, Msg: "boom"},
		Bucket:      TriageBucket(checker.FailAssertion),
		Fingerprint: 0xdeadbeef,
	}
	if !c.Add(EntryFor(v)) {
		t.Fatal("first Add returned false")
	}
	if c.Add(EntryFor(v)) {
		t.Fatal("duplicate Add returned true")
	}
	if err := c.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadCorpus(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, c) {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", back, c)
	}
	got := back.ForBenchmark("fake")
	if len(got) != 1 || got[0].Fingerprint != "00000000deadbeef" || got[0].Kind != "assertion" {
		t.Fatalf("ForBenchmark = %+v", got)
	}
	if len(back.ForBenchmark("other")) != 0 {
		t.Fatal("ForBenchmark leaked entries across benchmarks")
	}
}

// TestCorpusRejectsUnknownSchema: a corpus written by a future schema is
// refused, not misread.
func TestCorpusRejectsUnknownSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "corpus.json")
	c := &Corpus{Schema: "cdsspec-fuzz-corpus/v999"}
	if err := c.Save(path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCorpus(path); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("LoadCorpus = %v, want schema error", err)
	}
}
