package fuzz

import (
	"fmt"

	"repro/internal/checker"
	"repro/internal/memmodel"
)

// ShrinkResult is the outcome of minimizing a failing program.
type ShrinkResult struct {
	// Original and Minimal bracket the reduction.
	Original *Program `json:"original"`
	Minimal  *Program `json:"minimal"`
	// Kind is the failure kind held stable throughout the reduction.
	Kind checker.FailureKind `json:"kind"`
	// Verdict is the minimal program's verdict (same Kind, by
	// construction).
	Verdict *Verdict `json:"verdict"`
	// Steps counts accepted reductions; Attempts counts candidate
	// re-checks (accepted or not).
	Steps    int `json:"steps"`
	Attempts int `json:"attempts"`
}

// ShrinkCandidates enumerates the single-step reductions of a program in
// the order the shrinker tries them: drop a whole thread (largest index
// first — also how thread counts get lowered), drop one op (from the
// tail), then shrink an argument value (to 1, else decrement). The
// shrinker accepts the first candidate that still fails with the same
// kind; a program none of whose candidates reproduce the failure is
// locally minimal. Candidates are not validated here — callers skip the
// ones the registry rejects.
func ShrinkCandidates(p *Program) []*Program {
	var out []*Program
	for ti := len(p.Threads) - 1; ti >= 0; ti-- {
		c := p.Clone()
		c.Threads = append(c.Threads[:ti], c.Threads[ti+1:]...)
		out = append(out, c)
	}
	for ti := len(p.Threads) - 1; ti >= 0; ti-- {
		for oi := len(p.Threads[ti].Ops) - 1; oi >= 0; oi-- {
			c := p.Clone()
			ops := c.Threads[ti].Ops
			c.Threads[ti].Ops = append(ops[:oi], ops[oi+1:]...)
			if len(c.Threads[ti].Ops) == 0 {
				c.Threads = append(c.Threads[:ti], c.Threads[ti+1:]...)
			}
			out = append(out, c)
		}
	}
	for ti := range p.Threads {
		for oi := range p.Threads[ti].Ops {
			for ai, a := range p.Threads[ti].Ops[oi].Args {
				for _, smaller := range []memmodel.Value{1, a - 1} {
					if smaller >= a || smaller < 1 {
						continue
					}
					c := p.Clone()
					c.Threads[ti].Ops[oi].Args[ai] = smaller
					out = append(out, c)
				}
			}
		}
	}
	return out
}

// Shrink minimizes a failing program by greedy delta debugging: at each
// round it re-checks the candidates of ShrinkCandidates in order and
// restarts from the first one that (a) still validates against the
// registry and (b) still fails with the same FailureKind. It returns
// when no candidate survives — the result is locally minimal: removing
// any single thread or op, or shrinking any value, loses the failure.
// ord nil means the target's default orders (a seeded-bug shrink passes
// the same weakened table the campaign used).
func Shrink(t *Target, p *Program, ord *memmodel.OrderTable, cfg CampaignConfig) (*ShrinkResult, error) {
	v, err := t.Check(p, ord, cfg)
	if err != nil {
		return nil, err
	}
	if v.Failure == nil {
		return nil, fmt.Errorf("shrink %s: program does not fail under the given orders: %s", t.Name, p)
	}
	res := &ShrinkResult{Original: p.Clone(), Kind: v.Failure.Kind, Verdict: v}
	cur := p.Clone()
	for {
		reduced := false
		for _, cand := range ShrinkCandidates(cur) {
			if t.Validate(cand) != nil {
				continue // would be able to block forever, or breaks a role cap
			}
			res.Attempts++
			cv, err := t.Check(cand, ord, cfg)
			if err != nil {
				return nil, err
			}
			if cv.Failure != nil && cv.Failure.Kind == res.Kind {
				cur, res.Verdict = cand, cv
				res.Steps++
				reduced = true
				break
			}
		}
		if !reduced {
			res.Minimal = cur
			return res, nil
		}
	}
}
