package fuzz

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/checker"
	"repro/internal/core"
	"repro/internal/memmodel"
)

// TriageBucket names the campaign triage bucket for a failure kind.
// Every FailureKind has an explicit case: a kind added to the checker
// without a bucket here returns "" and fails the exhaustiveness test
// (TestTriageBucketExhaustive), mirroring how the harness pins Figure 8
// channels — new kinds must not fall through the triage silently.
func TriageBucket(k checker.FailureKind) string {
	switch k {
	case checker.FailDataRace:
		return "builtin/data-race"
	case checker.FailUninitLoad:
		return "builtin/uninitialized-load"
	case checker.FailDeadlock:
		return "builtin/deadlock"
	case checker.FailLivelock:
		return "builtin/livelock"
	case checker.FailTooManySteps:
		// Never surfaces as a failure (step-bound runs are pruned); the
		// bucket exists so the switch is total and a leak is visible.
		return "prune/step-bound"
	case checker.FailAssertion:
		return "spec/assertion"
	case checker.FailAdmissibility:
		return "spec/admissibility"
	case checker.FailAPIMisuse:
		return "harness/api-misuse"
	case checker.FailMixedRace:
		return "builtin/mixed-race"
	}
	return ""
}

// CampaignConfig configures a fuzz campaign over one target.
type CampaignConfig struct {
	// Seed seeds the program generator.
	Seed uint64
	// Count is the number of programs to generate and check (default 20).
	Count int
	// Budget bounds the executions explored per program (0 = exhaustive).
	// Generated lock programs can reach millions of interleavings, so
	// campaigns usually set it; the per-program exploration then stops
	// early without reporting a failure.
	Budget int
	// MaxSteps bounds visible operations per execution. 0 scales with the
	// program: generated programs are bigger than the hand-written tests,
	// so the budget grows with op count instead of using the checker's
	// flat default.
	MaxSteps int
	// Workers bounds the program-level worker pool (0 = GOMAXPROCS).
	// Verdicts are written into index-addressed slots and folded in index
	// order, so campaign results are bit-identical for any worker count.
	Workers int
	// Gen bounds the generated program shapes.
	Gen GenConfig
	// Orders overrides the target's default order table — a weakened
	// clone injects a seeded bug for the campaign to find. nil means the
	// correct defaults.
	Orders *memmodel.OrderTable
	// DisableSpecCache disables the per-shard spec-check memoization.
	DisableSpecCache bool
	// Progress, when set, receives each program's periodic exploration
	// snapshots (the checker.Progress reuse), labeled with the program's
	// batch index. Programs run concurrently, so it must be safe for
	// concurrent use.
	Progress func(programIndex int, p checker.Progress)
	// ProgressInterval is the snapshot period (default 1s).
	ProgressInterval time.Duration
}

func (c CampaignConfig) withDefaults() CampaignConfig {
	if c.Count == 0 {
		c.Count = 20
	}
	if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c
}

// stepBudget scales the per-execution step bound with program size.
func stepBudget(p *Program, override int) int {
	if override > 0 {
		return override
	}
	return 1000 + 300*p.OpCount()
}

// Verdict is the outcome of checking one generated program. All fields
// are deterministic functions of (program, orders, budget) — timings are
// deliberately excluded so campaign results compare bit-identical across
// runs and worker counts.
type Verdict struct {
	Program *Program `json:"program"`
	// Failure is the first failure found, nil when the program passed
	// (or its budget ran out first).
	Failure *checker.Failure `json:"failure,omitempty"`
	// Bucket is the failure's triage bucket ("" when no failure).
	Bucket string `json:"bucket,omitempty"`
	// Fingerprint is the canonical content hash of the failing execution
	// (core.Monitor.Fingerprint); together with the failure kind it is
	// the dedup key.
	Fingerprint uint64 `json:"fingerprint,omitempty"`
	Executions  int    `json:"executions"`
	Feasible    int    `json:"feasible"`
	Exhausted   bool   `json:"exhausted"`
}

// dedupKey groups verdicts that expose the same failure behavior.
func (v *Verdict) dedupKey() string {
	return fmt.Sprintf("%s/%016x", v.Failure.Kind, v.Fingerprint)
}

// Check explores one program (sequentially, StopAtFirst) and returns its
// verdict. ord nil means the target's default orders.
func (t *Target) Check(p *Program, ord *memmodel.OrderTable, cfg CampaignConfig) (*Verdict, error) {
	prog, err := t.Render(p, ord)
	if err != nil {
		return nil, err
	}
	spec := t.Spec()
	if cfg.DisableSpecCache {
		spec.DisableCheckCache = true
	}
	ccfg := checker.Config{
		MaxExecutions:    cfg.Budget,
		MaxSteps:         stepBudget(p, cfg.MaxSteps),
		StopAtFirst:      true,
		ProgressInterval: cfg.ProgressInterval,
	}
	if cfg.Progress != nil {
		idx := p.Index
		ccfg.Progress = func(pr checker.Progress) { cfg.Progress(idx, pr) }
	}
	// The exploration is sequential, so the last monitor installed is the
	// failing execution's (StopAtFirst stops right after it) — its
	// canonical fingerprint is the dedup key. Built-in failures abort
	// mid-execution; Fingerprint handles the partial record.
	var mon *core.Monitor
	ccfg.OnRunStart = func(sys *checker.System) { mon = core.FromSys(sys) }
	res := core.Explore(spec, ccfg, prog)
	v := &Verdict{
		Program:    p,
		Executions: res.Executions,
		Feasible:   res.Feasible,
		Exhausted:  res.Exhausted,
	}
	if f := res.FirstFailure(); f != nil {
		v.Failure = f
		v.Bucket = TriageBucket(f.Kind)
		v.Fingerprint = mon.Fingerprint()
	}
	return v, nil
}

// Summary aggregates one campaign for reports and the bench snapshot.
type Summary struct {
	Benchmark string `json:"benchmark"`
	Seed      uint64 `json:"seed"`
	Programs  int    `json:"programs"`
	// Failing counts failing programs before dedup; Unique after.
	Failing int `json:"failing"`
	Unique  int `json:"unique"`
	Deduped int `json:"deduped"`
	// Buckets counts unique failures per triage bucket.
	Buckets map[string]int `json:"buckets,omitempty"`
	// Executions totals explored executions across all programs.
	Executions int           `json:"executions"`
	Elapsed    time.Duration `json:"elapsed_ns"`
}

// Campaign is the full outcome of one fuzz campaign.
type Campaign struct {
	Target   *Target
	Verdicts []*Verdict // every program, batch order
	Unique   []*Verdict // failing programs after fingerprint dedup, batch order
	Summary  Summary
}

// Run generates cfg.Count programs and checks each on the worker pool.
// The batch is generated up-front on one goroutine and the verdicts are
// folded in batch order, so everything except Summary.Elapsed is
// bit-identical across runs and worker counts.
func Run(t *Target, cfg CampaignConfig) (*Campaign, error) {
	cfg = cfg.withDefaults()
	start := time.Now()
	programs := NewGenerator(t, cfg.Seed, cfg.Gen).Generate(cfg.Count)

	verdicts := make([]*Verdict, len(programs))
	errs := make([]error, len(programs))
	forEach(cfg.Workers, len(programs), func(i int) {
		verdicts[i], errs[i] = t.Check(programs[i], cfg.Orders, cfg)
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	c := &Campaign{
		Target:   t,
		Verdicts: verdicts,
		Summary: Summary{
			Benchmark: t.Name,
			Seed:      cfg.Seed,
			Programs:  len(programs),
			Buckets:   map[string]int{},
		},
	}
	seen := map[string]bool{}
	for _, v := range verdicts {
		c.Summary.Executions += v.Executions
		if v.Failure == nil {
			continue
		}
		c.Summary.Failing++
		key := v.dedupKey()
		if seen[key] {
			c.Summary.Deduped++
			continue
		}
		seen[key] = true
		c.Unique = append(c.Unique, v)
		c.Summary.Unique++
		c.Summary.Buckets[v.Bucket]++
	}
	if len(c.Summary.Buckets) == 0 {
		c.Summary.Buckets = nil
	}
	c.Summary.Elapsed = time.Since(start)
	return c, nil
}

// forEach runs f(0..n-1) on at most workers goroutines and waits — the
// same index-addressed pool discipline the harness uses for Figure 8
// trials.
func forEach(workers, n int, f func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				f(i)
			}
		}()
	}
	wg.Wait()
}

// FormatSummaries renders campaign summaries as a table, with per-bucket
// unique-failure counts on follow-up lines.
func FormatSummaries(sums []Summary) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s %6s %8s %7s %8s %11s %10s\n",
		"Benchmark", "progs", "failing", "unique", "deduped", "executions", "time")
	for _, s := range sums {
		fmt.Fprintf(&b, "%-18s %6d %8d %7d %8d %11d %10s\n",
			s.Benchmark, s.Programs, s.Failing, s.Unique, s.Deduped, s.Executions,
			s.Elapsed.Round(time.Millisecond))
		buckets := make([]string, 0, len(s.Buckets))
		for k := range s.Buckets {
			buckets = append(buckets, k)
		}
		sort.Strings(buckets)
		for _, k := range buckets {
			fmt.Fprintf(&b, "%-18s   bucket %s: %d\n", "", k, s.Buckets[k])
		}
	}
	return b.String()
}
