package fuzz

import (
	"encoding/json"
	"fmt"
	"os"
)

// CorpusSchema versions the on-disk corpus layout.
const CorpusSchema = "cdsspec-fuzz-corpus/v1"

// CorpusEntry is one persisted interesting program: a unique failure
// found by a campaign, optionally with its shrunk form.
type CorpusEntry struct {
	Benchmark string `json:"benchmark"`
	// Kind is the failure kind's stable string name (FailureKind JSON
	// encoding), Bucket its triage bucket.
	Kind   string `json:"kind"`
	Bucket string `json:"bucket,omitempty"`
	// Fingerprint is the failing execution's canonical content hash in
	// hex; (Benchmark, Kind, Fingerprint) is the corpus dedup key.
	Fingerprint string `json:"fingerprint"`
	// Msg is the failure's human-readable description.
	Msg string `json:"msg,omitempty"`
	// Program is the generated program; Shrunk its minimized form when a
	// shrink has been run.
	Program *Program `json:"program"`
	Shrunk  *Program `json:"shrunk,omitempty"`
}

func (e *CorpusEntry) key() string {
	return e.Benchmark + "/" + e.Kind + "/" + e.Fingerprint
}

// Corpus is the on-disk store of interesting programs. Nightly campaigns
// persist it via the CI actions cache so failures accumulate across runs.
type Corpus struct {
	Schema  string         `json:"schema"`
	Entries []*CorpusEntry `json:"entries"`
}

// NewCorpus returns an empty corpus.
func NewCorpus() *Corpus { return &Corpus{Schema: CorpusSchema} }

// LoadCorpus reads a corpus file; a missing file yields an empty corpus
// (the first campaign run creates it).
func LoadCorpus(path string) (*Corpus, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return NewCorpus(), nil
	}
	if err != nil {
		return nil, fmt.Errorf("reading corpus: %w", err)
	}
	var c Corpus
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("decoding corpus %s: %w", path, err)
	}
	if c.Schema != CorpusSchema {
		return nil, fmt.Errorf("unsupported corpus schema %q in %s (want %q)", c.Schema, path, CorpusSchema)
	}
	return &c, nil
}

// Save writes the corpus as indented JSON.
func (c *Corpus) Save(path string) error {
	blob, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return fmt.Errorf("encoding corpus: %w", err)
	}
	return os.WriteFile(path, append(blob, '\n'), 0o644)
}

// Add inserts an entry unless an entry with the same key is already
// present; it reports whether the corpus grew.
func (c *Corpus) Add(e *CorpusEntry) bool {
	for _, have := range c.Entries {
		if have.key() == e.key() {
			return false
		}
	}
	c.Entries = append(c.Entries, e)
	return true
}

// ForBenchmark returns the entries targeting one benchmark, in corpus
// order.
func (c *Corpus) ForBenchmark(name string) []*CorpusEntry {
	var out []*CorpusEntry
	for _, e := range c.Entries {
		if e.Benchmark == name {
			out = append(out, e)
		}
	}
	return out
}

// EntryFor builds the corpus entry for one unique verdict.
func EntryFor(v *Verdict) *CorpusEntry {
	return &CorpusEntry{
		Benchmark:   v.Program.Benchmark,
		Kind:        v.Failure.Kind.String(),
		Bucket:      v.Bucket,
		Fingerprint: fmt.Sprintf("%016x", v.Fingerprint),
		Msg:         v.Failure.Msg,
		Program:     v.Program,
	}
}

// AddCampaign folds a campaign's unique failures into the corpus and
// returns how many entries were new.
func (c *Corpus) AddCampaign(camp *Campaign) int {
	added := 0
	for _, v := range camp.Unique {
		if c.Add(EntryFor(v)) {
			added++
		}
	}
	return added
}
