package fuzz

import (
	"math/rand/v2"
)

// GenConfig bounds the shape of generated programs. The zero value uses
// the defaults, which stay close to the paper's unit-test scale (≤3
// threads, a few calls per thread) while still generating scenarios the
// hand-written tests never cover.
type GenConfig struct {
	// MaxThreads bounds the simulated threads per program (default 3).
	MaxThreads int
	// MaxOpsPerThread bounds each thread's op-sequence length (default 4).
	MaxOpsPerThread int
	// ValueDomain is the size of the argument-value domain: args are
	// drawn uniformly from 1..ValueDomain (default 3). Small domains make
	// value collisions — the interesting case for specs — likely.
	ValueDomain int
}

func (c GenConfig) withDefaults() GenConfig {
	if c.MaxThreads == 0 {
		c.MaxThreads = 3
	}
	if c.MaxOpsPerThread == 0 {
		c.MaxOpsPerThread = 4
	}
	if c.ValueDomain == 0 {
		c.ValueDomain = 3
	}
	return c
}

// Generator draws programs for one target from a PCG stream. The stream
// is the only entropy source, so the same (seed, config, registry)
// triple yields a byte-identical program sequence — the determinism
// discipline the parallel engine already follows: generate everything on
// one goroutine, fan the work out afterwards.
type Generator struct {
	target *Target
	cfg    GenConfig
	rng    *rand.Rand
	seed   uint64
	next   int
}

// NewGenerator builds a deterministic generator for the target.
func NewGenerator(t *Target, seed uint64, cfg GenConfig) *Generator {
	return &Generator{
		target: t,
		cfg:    cfg.withDefaults(),
		// Both PCG words are seed-derived; the odd constant is the
		// splitmix64 increment, only here to decorrelate the two words.
		rng:  rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15)),
		seed: seed,
	}
}

// Next generates the next program. Every returned program validates
// against the target's registry.
func (g *Generator) Next() *Program {
	cfg := g.cfg
	reg := g.target.Registry
	p := &Program{Benchmark: g.target.Name, Seed: g.seed, Index: g.next}
	g.next++

	threads := 1 + g.rng.IntN(cfg.MaxThreads)
	roleCount := map[string]int{}
	for ti := 0; ti < threads; ti++ {
		role, ok := g.pickRole(reg, roleCount)
		if !ok {
			continue // every role is at its cap; program gets fewer threads
		}
		roleCount[role]++
		opIdx := reg.opsForRole(role)
		if len(opIdx) == 0 {
			roleCount[role]--
			continue
		}
		ts := ThreadSeq{Role: role}
		seqLen := 1 + g.rng.IntN(cfg.MaxOpsPerThread)
		for oi := 0; oi < seqLen; oi++ {
			op := &reg.Ops[opIdx[g.rng.IntN(len(opIdx))]]
			oc := OpCall{Op: op.Name}
			for a := 0; a < op.Arity; a++ {
				oc.Args = append(oc.Args, uint64(1+g.rng.IntN(cfg.ValueDomain)))
			}
			ts.Ops = append(ts.Ops, oc)
		}
		p.Threads = append(p.Threads, ts)
	}
	g.repair(reg, p)
	return p
}

// pickRole draws a role uniformly among the ones not yet at their cap.
func (g *Generator) pickRole(reg *Registry, count map[string]int) (string, bool) {
	if len(reg.Roles) == 0 {
		return "", true
	}
	var eligible []string
	for _, r := range reg.Roles {
		if r.Max == 0 || count[r.Name] < r.Max {
			eligible = append(eligible, r.Name)
		}
	}
	if len(eligible) == 0 {
		return "", false
	}
	return eligible[g.rng.IntN(len(eligible))], true
}

// repair trims ops until the blocking-balance constraints hold (see
// Registry.Blocking/Capacity), dropping from the tail of the last thread
// first so the cut is deterministic. Threads left empty are removed.
func (g *Generator) repair(reg *Registry, p *Program) {
	produces, consumes := p.balance(reg)
	trim := func(consume bool) bool {
		for ti := len(p.Threads) - 1; ti >= 0; ti-- {
			ops := p.Threads[ti].Ops
			for oi := len(ops) - 1; oi >= 0; oi-- {
				op := reg.Op(ops[oi].Op)
				if consume && op.Consumes > 0 || !consume && op.Produces > 0 {
					produces -= op.Produces
					consumes -= op.Consumes
					p.Threads[ti].Ops = append(ops[:oi], ops[oi+1:]...)
					return true
				}
			}
		}
		return false
	}
	for reg.Blocking && consumes > produces {
		if !trim(true) {
			break
		}
	}
	for reg.Capacity > 0 && produces > consumes+reg.Capacity {
		if !trim(false) {
			break
		}
	}
	kept := p.Threads[:0]
	for _, ts := range p.Threads {
		if len(ts.Ops) > 0 {
			kept = append(kept, ts)
		}
	}
	p.Threads = kept
}

// balance totals the program's Produces/Consumes under the registry.
func (p *Program) balance(reg *Registry) (produces, consumes int) {
	for _, ts := range p.Threads {
		for _, oc := range ts.Ops {
			if op := reg.Op(oc.Op); op != nil {
				produces += op.Produces
				consumes += op.Consumes
			}
		}
	}
	return produces, consumes
}

// Generate draws count programs in one batch.
func (g *Generator) Generate(count int) []*Program {
	out := make([]*Program, count)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}
