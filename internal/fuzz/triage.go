package fuzz

import (
	"runtime"
	"time"

	"repro/internal/checker"
	"repro/internal/memmodel"
)

// This file implements the triage tier of a fuzz campaign: fast mode
// (checker.Config.FastMode) screens a large batch of generated programs
// at thousands of runs per second, exhaustive mode re-checks only the
// programs the screen flagged (confirming the hit and attaching the
// CDSSpec verdict fast mode cannot produce), and the shrinker minimizes
// the confirmed reproducers. The screen is sampling-based, so a flagged
// program that exhaustive mode cannot confirm within its budget is
// reported as unconfirmed rather than dropped — fast-mode hits are real
// executions, so an unconfirmed hit usually means the confirm budget was
// too small, not a false positive.

// TriageConfig configures a screen-confirm-shrink triage run.
type TriageConfig struct {
	// Seed seeds the program generator and the fast-mode screens.
	Seed uint64
	// Count is the number of programs to generate and screen (default 100).
	Count int
	// FastRuns is the fast-mode run budget per program (default 200).
	FastRuns int
	// StoreBound overrides the screen's per-location store-buffer bound
	// (0 = checker default).
	StoreBound int
	// ConfirmBudget bounds the exhaustive executions spent confirming one
	// flagged program (0 = exhaustive).
	ConfirmBudget int
	// MaxSteps bounds visible operations per execution (0 scales with the
	// program, as in CampaignConfig).
	MaxSteps int
	// Workers bounds the program-level worker pool (0 = GOMAXPROCS).
	Workers int
	// Gen bounds the generated program shapes. The screen is built for
	// production-sized programs, so callers typically raise MaxThreads /
	// MaxOpsPerThread well past the campaign defaults.
	Gen GenConfig
	// Orders overrides the target's default order table (seeded bugs).
	Orders *memmodel.OrderTable
	// Shrink minimizes each confirmed hit to a local minimum.
	Shrink bool
	// Interrupt, when non-nil, stops the triage early once the channel
	// closes: in-flight fast-mode screens stop between runs (the checker
	// honors Interrupt in every engine) and the confirm/shrink tier is
	// not entered. The partial result is still returned, but the
	// bit-identical-across-runs guarantee only holds for uninterrupted
	// triages. The verification service wires job cancellation and
	// deadlines to it.
	Interrupt <-chan struct{}
}

// interrupted reports whether the triage's interrupt channel has fired.
func (c TriageConfig) interrupted() bool {
	select {
	case <-c.Interrupt:
		return true
	default:
		return false
	}
}

func (c TriageConfig) withDefaults() TriageConfig {
	if c.Count == 0 {
		c.Count = 100
	}
	if c.FastRuns == 0 {
		c.FastRuns = 200
	}
	return c
}

// TriageHit is one program the fast-mode screen flagged.
type TriageHit struct {
	Program *Program `json:"program"`
	// Screen is the failure fast mode observed.
	Screen *checker.Failure `json:"screen"`
	// Verdict is the exhaustive confirmation (nil Failure when the
	// confirm budget ran out before reproducing it).
	Verdict *Verdict `json:"verdict,omitempty"`
	// Minimal is the shrunk reproducer (TriageConfig.Shrink, confirmed
	// hits only).
	Minimal *ShrinkResult `json:"minimal,omitempty"`
}

// TriageResult aggregates one triage run. Everything except Elapsed is a
// deterministic function of (target, config) — programs are generated
// up-front, screened with per-program derived seeds, and folded in batch
// order — so results are bit-identical across runs and worker counts.
type TriageResult struct {
	Benchmark string `json:"benchmark"`
	Seed      uint64 `json:"seed"`
	// Screened counts programs screened; Flagged those fast mode failed.
	Screened int `json:"screened"`
	Flagged  int `json:"flagged"`
	// Confirmed and Unconfirmed partition the flagged programs by whether
	// exhaustive mode reproduced a failure within ConfirmBudget.
	Confirmed   []*TriageHit `json:"confirmed,omitempty"`
	Unconfirmed []*TriageHit `json:"unconfirmed,omitempty"`
	// Buckets counts confirmed hits per triage bucket (of the confirmed
	// failure kind, which exhaustive mode may classify more precisely
	// than the screen).
	Buckets map[string]int `json:"buckets,omitempty"`
	// FastExecutions and ConfirmExecutions split the exploration spend
	// between the two tiers — the screen typically runs orders of
	// magnitude more executions per second than the confirm tier.
	FastExecutions    int           `json:"fast_executions"`
	ConfirmExecutions int           `json:"confirm_executions"`
	Elapsed           time.Duration `json:"elapsed_ns"`
}

// screenOne runs the fast-mode screen on one program and returns the
// failure it observed (nil when the program survived the run budget).
func screenOne(t *Target, p *Program, cfg TriageConfig) (*checker.Failure, int, error) {
	prog, err := t.Render(p, cfg.Orders)
	if err != nil {
		return nil, 0, err
	}
	// Bare checker.Explore: fast mode rejects the CDSSpec layer (no
	// action trace for the monitor to reconstruct), so the screen sees
	// only the built-in checks — races, uninitialized loads, deadlocks,
	// livelocks. That is exactly the §6.4.1 seeded-bug class the screen
	// exists to catch cheaply; spec-level failures surface in the
	// confirm tier.
	res := checker.Explore(checker.Config{
		FastMode:      true,
		Seed:          int64(cfg.Seed) + int64(p.Index),
		MaxExecutions: cfg.FastRuns,
		MaxSteps:      stepBudget(p, cfg.MaxSteps),
		StoreBound:    cfg.StoreBound,
		StopAtFirst:   true,
		Interrupt:     cfg.Interrupt,
	}, prog)
	return res.FirstFailure(), res.Executions, nil
}

// Triage generates cfg.Count programs, screens each in fast mode,
// confirms the flagged ones exhaustively, and (optionally) shrinks the
// confirmed hits.
func Triage(t *Target, cfg TriageConfig) (*TriageResult, error) {
	cfg = cfg.withDefaults()
	start := time.Now()
	programs := NewGenerator(t, cfg.Seed, cfg.Gen).Generate(cfg.Count)

	type slot struct {
		screen *checker.Failure
		execs  int
		err    error
	}
	screens := make([]slot, len(programs))
	workers := cfg.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	forEach(workers, len(programs), func(i int) {
		screens[i].screen, screens[i].execs, screens[i].err = screenOne(t, programs[i], cfg)
	})

	res := &TriageResult{
		Benchmark: t.Name,
		Seed:      cfg.Seed,
		Screened:  len(programs),
		Buckets:   map[string]int{},
	}
	var flagged []*TriageHit
	for i, s := range screens {
		if s.err != nil {
			return nil, s.err
		}
		res.FastExecutions += s.execs
		if s.screen != nil {
			res.Flagged++
			flagged = append(flagged, &TriageHit{Program: programs[i], Screen: s.screen})
		}
	}

	// An interrupted triage stops here: the screen results above are
	// real (each flagged hit is a genuine fast-mode failure), but
	// spending the confirm/shrink budget against a closing deadline
	// would only be thrown away.
	if cfg.interrupted() {
		res.Elapsed = time.Since(start)
		res.Unconfirmed = flagged
		return res, nil
	}

	// Confirm tier: exhaustive (bounded) re-check of the flagged
	// programs only, through the full CDSSpec pipeline.
	ccfg := CampaignConfig{
		Budget:   cfg.ConfirmBudget,
		MaxSteps: cfg.MaxSteps,
		Workers:  1, // per-program exploration is sequential in Check
		Orders:   cfg.Orders,
	}
	errs := make([]error, len(flagged))
	forEach(workers, len(flagged), func(i int) {
		h := flagged[i]
		h.Verdict, errs[i] = t.Check(h.Program, cfg.Orders, ccfg)
		if errs[i] == nil && cfg.Shrink && h.Verdict.Failure != nil {
			h.Minimal, errs[i] = Shrink(t, h.Program, cfg.Orders, ccfg)
		}
	})
	for i, h := range flagged {
		if errs[i] != nil {
			return nil, errs[i]
		}
		res.ConfirmExecutions += h.Verdict.Executions
		if h.Minimal != nil {
			res.ConfirmExecutions += h.Minimal.Verdict.Executions
		}
		if h.Verdict.Failure != nil {
			res.Confirmed = append(res.Confirmed, h)
			res.Buckets[TriageBucket(h.Verdict.Failure.Kind)]++
		} else {
			res.Unconfirmed = append(res.Unconfirmed, h)
		}
	}
	res.Elapsed = time.Since(start)
	return res, nil
}
