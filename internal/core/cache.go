package core

import (
	"encoding/binary"
	"hash/fnv"
	"sort"
	"sync"

	"repro/internal/checker"
)

// This file implements the spec-check memoization layer. Many distinct
// interleavings of one program induce the same method-call sequence,
// ordering relation ~r~ and return values; their spec checks are
// necessarily identical, so re-enumerating every sequential history for
// each of them is pure waste — the dominant wall-clock cost on
// history-heavy benchmarks. checkCache keys the full CheckResult by a
// canonical fingerprint of the execution's spec-relevant content and
// answers repeated equivalent behaviors with one map lookup.
//
// One checkCache serves one exploration shard (checker.Config.NewScratch).
// Shards coincide between sequential and parallel DFS (one per
// root-decision branch), which keeps the hit/miss/entry counters
// bit-identical between exhaustive sequential and parallel runs: under
// the work-stealing engine several workers may explore one shard
// concurrently, but for a fixed set of executions through one cache the
// misses are exactly the distinct fingerprints and the hits the rest —
// totals independent of arrival order. The cache locks internally (mu)
// to serialize those concurrent checks.

// checkCache memoizes spec-check results across the executions of one
// exploration shard. It also owns the shard's reusable checkScratch, so
// the miss path's allocations (ordering-relation matrices, topological-
// sort bookkeeping) amortize across executions. mu guards both: the
// scratch is busy from buildOrder through fingerprinting and the miss
// path's check, so the critical section spans the whole memoized check.
type checkCache struct {
	mu      sync.Mutex
	entries map[string]*CheckResult
	scratch checkScratch
}

func newCheckCache() *checkCache {
	return &checkCache{entries: map[string]*CheckResult{}}
}

// cacheOf extracts the shard's checkCache from the system's Scratch slot,
// or nil when caching is disabled (no NewScratch hook, or a hook of a
// different owner).
func cacheOf(sys *checker.System) *checkCache {
	cc, _ := sys.Scratch.(*checkCache)
	return cc
}

// checkScratch is per-shard reusable memory for the spec-check miss path:
// the ~r~ reachability matrix backing, topological-sort bookkeeping, and
// the fingerprint buffer. A shard runs one check at a time, so a single
// instance serves every execution of the shard.
type checkScratch struct {
	reachRows  [][]bool
	reachCells []bool
	idx        map[*Call]int
	indeg      []int
	used       []bool
	order      []*Call
	ready      []int
	fp         []byte
	auxKeys    []string
}

// grabMatrix returns a zeroed n×n bool matrix backed by the scratch
// (valid until the next grabMatrix call).
func (sc *checkScratch) grabMatrix(n int) [][]bool {
	if cap(sc.reachCells) < n*n {
		sc.reachCells = make([]bool, n*n)
	}
	cells := sc.reachCells[:n*n]
	for i := range cells {
		cells[i] = false
	}
	if cap(sc.reachRows) < n {
		sc.reachRows = make([][]bool, n)
	}
	rows := sc.reachRows[:n]
	for i := 0; i < n; i++ {
		rows[i] = cells[i*n : (i+1)*n]
	}
	return rows
}

// grabTopo returns zeroed indegree/used arrays and an empty order slice
// of capacity n (valid until the next grabTopo call — topoSorts and
// randomTopoSort never run concurrently within one shard, but justify's
// enumeration must not overlap a pending history enumeration, which the
// checking pipeline's phase order guarantees).
func (sc *checkScratch) grabTopo(n int) (indeg []int, used []bool, order []*Call) {
	if cap(sc.indeg) < n {
		sc.indeg = make([]int, n)
		sc.used = make([]bool, n)
		sc.order = make([]*Call, 0, n)
	}
	indeg = sc.indeg[:n]
	used = sc.used[:n]
	for i := 0; i < n; i++ {
		indeg[i] = 0
		used[i] = false
	}
	return indeg, used, sc.order[:0]
}

// fingerprint serializes the execution's spec-relevant content into a
// canonical byte string and returns it together with its 64-bit FNV-1a
// hash. Two executions with equal fingerprints are indistinguishable to
// the checking pipeline: per call it covers identity (ID, thread), the
// method name, arguments, return value, and spec-visible aux values (in
// sorted key order), and it closes with the transitively closed ~r~
// reachability matrix. SRet is deliberately excluded — it is an output of
// the check, not an input. The hash is also the per-execution entropy
// source for the history sampler seed, which is why it must be a stable
// content hash (FNV), not a per-process one.
func fingerprint(sc *checkScratch, calls []*Call, r *orderRelation) (key string, hash uint64) {
	buf := sc.fp[:0]
	n := len(calls)
	buf = binary.AppendUvarint(buf, uint64(n))
	for _, c := range calls {
		buf = binary.AppendUvarint(buf, uint64(c.ID))
		buf = binary.AppendUvarint(buf, uint64(c.Thread))
		buf = binary.AppendUvarint(buf, uint64(len(c.Name)))
		buf = append(buf, c.Name...)
		buf = binary.AppendUvarint(buf, uint64(len(c.Args)))
		for _, a := range c.Args {
			buf = binary.AppendUvarint(buf, uint64(a))
		}
		if c.HasRet {
			buf = append(buf, 1)
			buf = binary.AppendUvarint(buf, uint64(c.Ret))
		} else {
			buf = append(buf, 0)
		}
		buf = binary.AppendUvarint(buf, uint64(len(c.Aux)))
		if len(c.Aux) > 0 {
			keys := sc.auxKeys[:0]
			for k := range c.Aux {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				buf = binary.AppendUvarint(buf, uint64(len(k)))
				buf = append(buf, k...)
				buf = binary.AppendUvarint(buf, uint64(c.Aux[k]))
			}
			sc.auxKeys = keys[:0]
		}
	}
	// The closed ~r~ matrix, bit-packed row-major.
	var acc byte
	bits := 0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			acc <<= 1
			if r.reach[i][j] {
				acc |= 1
			}
			bits++
			if bits == 8 {
				buf = append(buf, acc)
				acc, bits = 0, 0
			}
		}
	}
	if bits > 0 {
		buf = append(buf, acc<<(8-bits))
	}
	sc.fp = buf

	h := fnv.New64a()
	h.Write(buf)
	return string(buf), h.Sum64()
}

// reportFor summarizes a CheckResult as the per-execution SpecReport the
// checker folds into Stats. On a cache hit the cached result's counters
// are replayed as if the check had run, which keeps Histories /
// AdmissibilityChecks / JustifySearches independent of the hit/miss
// pattern (and therefore identical to a cache-disabled run).
func reportFor(cr *CheckResult) checker.SpecReport {
	return checker.SpecReport{
		Histories:           cr.Histories,
		HistoriesCapped:     cr.HistoriesCapped,
		AdmissibilityChecks: cr.AdmissibilityChecks,
		JustifySearches:     cr.JustifySearches,
	}
}

// withCopiedFailures returns cr itself when it has no failures, or a
// shallow copy with freshly copied Failure values otherwise. The explorer
// stamps Failure.Execution on the failures a check returns; handing out
// the cached structs directly would let the first execution's stamp leak
// into every later equivalent execution.
func withCopiedFailures(cr *CheckResult) *CheckResult {
	if len(cr.Failures) == 0 {
		return cr
	}
	out := *cr
	out.Failures = make([]*checker.Failure, len(cr.Failures))
	for i, f := range cr.Failures {
		cp := *f
		cp.Execution = 0
		out.Failures[i] = &cp
	}
	return &out
}
