// Package core implements CDSSpec, the paper's contribution: a
// specification checker for concurrent data structures under the C/C++11
// memory model.
//
// A specification (Spec) relates a concurrent data structure to an
// equivalent sequential data structure. Data-structure code is
// instrumented with the annotations of the paper's specification language
// — method boundaries and ordering points — as direct calls on a Monitor
// (the output the paper's specification compiler would generate). After
// the checker completes an execution, the Monitor:
//
//  1. extracts the ordering relation ~r~ over method calls from the
//     happens-before and seq_cst ordering of their ordering points,
//  2. checks admissibility (Definition 1),
//  3. enumerates valid sequential histories (Definition 2) and replays
//     the equivalent sequential data structure over each, checking
//     preconditions, side effects, and postconditions,
//  4. checks that every non-deterministic behavior is justified by a
//     justifying subhistory or by the set of concurrent method calls
//     (Definitions 3–5).
package core

import (
	"fmt"
	"strings"

	"repro/internal/memmodel"
)

// Call records one API method call in an execution: the paper's method
// invocation/response pair plus its dynamic information and ordering
// points.
type Call struct {
	// ID is the index of the call in the execution (program order of
	// invocation events).
	ID int
	// Thread is the simulated thread that made the call.
	Thread int
	// Name is the API method name.
	Name string
	// Args are the argument values at invocation.
	Args []memmodel.Value
	// Ret is the return value at response (C_RET in the paper).
	Ret memmodel.Value
	// HasRet distinguishes void methods.
	HasRet bool

	// OPs are the resolved ordering points.
	OPs []*memmodel.Action
	// potentials are PotentialOP annotations awaiting an OPCheck.
	potentials []potentialOP

	// SRet is scratch space for specs: the sequential return value
	// (S_RET in the paper), written by SideEffect, read by PostCondition.
	SRet memmodel.Value
	// Aux is extra scratch space for specs that need more than SRet.
	Aux map[string]memmodel.Value

	ended bool
}

type potentialOP struct {
	label string
	act   *memmodel.Action
}

// Arg returns the i-th argument (0 if absent), a convenience for specs.
func (c *Call) Arg(i int) memmodel.Value {
	if i < 0 || i >= len(c.Args) {
		return 0
	}
	return c.Args[i]
}

// SetAux stores a named scratch value on the call.
func (c *Call) SetAux(key string, v memmodel.Value) {
	if c.Aux == nil {
		c.Aux = map[string]memmodel.Value{}
	}
	c.Aux[key] = v
}

// GetAux reads a named scratch value (0 if absent).
func (c *Call) GetAux(key string) memmodel.Value {
	return c.Aux[key]
}

// String renders the call for diagnostics, e.g. "deq()/-1 [T2 #5]".
func (c *Call) String() string {
	var b strings.Builder
	b.WriteString(c.Name)
	b.WriteByte('(')
	for i, a := range c.Args {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%d", int64(a))
	}
	b.WriteByte(')')
	if c.HasRet {
		fmt.Fprintf(&b, "/%d", int64(c.Ret))
	}
	fmt.Fprintf(&b, " [T%d #%d]", c.Thread, c.ID)
	return b.String()
}

// formatHistory renders a sequential history for diagnostics.
func formatHistory(h []*Call) string {
	parts := make([]string, len(h))
	for i, c := range h {
		parts[i] = c.String()
	}
	return strings.Join(parts, " ; ")
}
