package core

import (
	"fmt"
	"math/rand"

	"repro/internal/checker"
)

// orderRelation is the ordering relation ~r~ over an execution's method
// calls, as a reachability matrix (closed under transitivity).
type orderRelation struct {
	calls []*Call
	// idx maps each call to its row/column in reach — its position in the
	// calls slice. Call.ID is NOT used as an index: IDs are dense for
	// monitor-recorded calls today, but nothing enforces that invariant
	// for filtered or hand-built call lists, and silently aliasing rows
	// through sparse IDs would corrupt the relation.
	idx map[*Call]int
	// reach[i][j] reports calls[i] ~r~ calls[j].
	reach [][]bool
}

// buildOrder extracts ~r~ from the happens-before and seq_cst ordering of
// the calls' ordering points (paper §5.2): for ordering points X of A and
// Y of B, X →hb Y or X →sc Y implies A ~r~ B. The relation is then closed
// transitively.
func buildOrder(calls []*Call) *orderRelation {
	return buildOrderScratch(calls, &checkScratch{})
}

// buildOrderScratch is buildOrder with the matrix and index map backed by
// the shard's reusable scratch. The returned relation is valid until the
// scratch's next buildOrderScratch call.
func buildOrderScratch(calls []*Call, sc *checkScratch) *orderRelation {
	n := len(calls)
	if sc.idx == nil {
		sc.idx = make(map[*Call]int, n)
	} else {
		clear(sc.idx)
	}
	r := &orderRelation{calls: calls, idx: sc.idx, reach: sc.grabMatrix(n)}
	for i, c := range calls {
		r.idx[c] = i
	}
	if len(r.idx) != n {
		// A duplicated *Call would alias two rows onto one index.
		panic(fmt.Sprintf("buildOrder: %d calls but %d distinct", n, len(r.idx)))
	}
	for i, a := range calls {
		for j, b := range calls {
			if i == j {
				continue
			}
			if opsOrdered(a, b) {
				r.reach[i][j] = true
			}
		}
	}
	// Transitive closure (n is small: unit tests have ≤ ~20 calls).
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			if !r.reach[i][k] {
				continue
			}
			for j := 0; j < n; j++ {
				if r.reach[k][j] {
					r.reach[i][j] = true
				}
			}
		}
	}
	return r
}

// opsOrdered reports whether some ordering point of a precedes some
// ordering point of b under hb ∪ sc.
func opsOrdered(a, b *Call) bool {
	for _, x := range a.OPs {
		for _, y := range b.OPs {
			if x.HappensBefore(y) || x.SCBefore(y) {
				return true
			}
		}
	}
	return false
}

// cyclic reports whether ~r~ is cyclic (possible only with multiple
// ordering points per call; the paper guarantees acyclicity for one).
func (r *orderRelation) cyclic() bool {
	for i := range r.calls {
		if r.reach[i][i] {
			return true
		}
	}
	return false
}

// ordered reports a ~r~ b for call values.
func (r *orderRelation) ordered(a, b *Call) bool { return r.reach[r.idx[a]][r.idx[b]] }

// concurrent returns the calls not ordered either way with c — the
// concurrent(m) set of paper §2.2.
func (r *orderRelation) concurrent(c *Call) []*Call {
	var out []*Call
	for _, o := range r.calls {
		if o == c {
			continue
		}
		if !r.ordered(c, o) && !r.ordered(o, c) {
			out = append(out, o)
		}
	}
	return out
}

// predecessors returns the calls ordered before c — the membership of
// every justifying subhistory of c (Definition 3).
func (r *orderRelation) predecessors(c *Call) []*Call {
	var out []*Call
	for _, o := range r.calls {
		if o != c && r.ordered(o, c) {
			out = append(out, o)
		}
	}
	return out
}

// topoSorts enumerates the topological sorts of nodes under edge,
// invoking emit for each; emit returns false to stop. limit caps the
// number of sorts generated. The slice passed to emit is live scratch
// memory, valid only for the duration of the emit call — callers must
// not retain it. sc backs the bookkeeping arrays (pass a fresh
// checkScratch when no shard scratch is available). It reports whether
// enumeration ran to completion (neither stopped nor truncated).
func topoSorts(nodes []*Call, edge func(a, b *Call) bool, limit int, sc *checkScratch, emit func([]*Call) bool) bool {
	n := len(nodes)
	indeg, used, order := sc.grabTopo(n)
	for i := range nodes {
		for j, b := range nodes {
			if i != j && edge(nodes[i], b) {
				indeg[j]++
			}
		}
	}
	count := 0
	complete := true
	var rec func() bool
	rec = func() bool {
		if len(order) == n {
			count++
			if !emit(order) {
				complete = false
				return false
			}
			if count >= limit {
				complete = false
				return false
			}
			return true
		}
		for i := 0; i < n; i++ {
			if used[i] || indeg[i] != 0 {
				continue
			}
			used[i] = true
			for j := 0; j < n; j++ {
				if j != i && !used[j] && edge(nodes[i], nodes[j]) {
					indeg[j]--
				}
			}
			order = append(order, nodes[i])
			ok := rec()
			order = order[:len(order)-1]
			for j := 0; j < n; j++ {
				if j != i && !used[j] && edge(nodes[i], nodes[j]) {
					indeg[j]++
				}
			}
			used[i] = false
			if !ok {
				return false
			}
		}
		return true
	}
	rec()
	return complete
}

// randomTopoSort draws one uniform-ish linear extension of the calls
// under edge by repeatedly picking a random ready node. The returned
// slice is backed by sc and valid until its next grabTopo call.
func randomTopoSort(nodes []*Call, edge func(a, b *Call) bool, rng *rand.Rand, sc *checkScratch) []*Call {
	n := len(nodes)
	indeg, used, out := sc.grabTopo(n)
	for i := range nodes {
		for j := range nodes {
			if i != j && edge(nodes[i], nodes[j]) {
				indeg[j]++
			}
		}
	}
	for len(out) < n {
		ready := sc.ready[:0]
		for i := 0; i < n; i++ {
			if !used[i] && indeg[i] == 0 {
				ready = append(ready, i)
			}
		}
		sc.ready = ready // keep any capacity growth for the next draw
		pick := ready[rng.Intn(len(ready))]
		used[pick] = true
		out = append(out, nodes[pick])
		for j := 0; j < n; j++ {
			if j != pick && !used[j] && edge(nodes[pick], nodes[j]) {
				indeg[j]--
			}
		}
	}
	return out
}

// CheckResult is the outcome of checking one execution against the spec.
type CheckResult struct {
	// Failures lists everything found; empty means the execution is
	// admissible and non-deterministic linearizable.
	Failures []*checker.Failure
	// Histories is the number of sequential histories checked.
	Histories int
	// HistoriesCapped reports that history enumeration was truncated by
	// Spec.MaxHistories before the space was exhausted — the check passed
	// on the histories it saw, but coverage was incomplete. Sampling
	// specs are incomplete by design and do not set it.
	HistoriesCapped bool
	// AdmissibilityChecks counts admissibility rule-pair evaluations
	// (MustOrder calls on unordered pairs).
	AdmissibilityChecks int
	// JustifySearches counts justifying-subhistory searches — one per
	// call whose non-deterministic behavior needed justification.
	JustifySearches int
	// Admissible reports whether the execution passed Definition 1.
	Admissible bool
}

// Check verifies the recorded execution against the spec and returns any
// failures. It implements the checking pipeline of paper §5.2, always
// running the full check (no memoization) — the entry point for direct
// unit-level checking.
func (m *Monitor) Check() *CheckResult {
	res, _ := m.checkMemo(nil)
	return res
}

// checkMemo is Check with an optional per-shard memoization cache. With a
// cache, the execution's canonical fingerprint (see fingerprint) keys the
// full CheckResult: a repeated equivalent behavior costs buildOrder plus
// one lookup instead of a sequential-history enumeration. The returned
// SpecReport carries the counters the checker folds into Stats — on a hit
// they replay the cached check's counters, so the spec-side Stats are
// independent of the hit/miss pattern.
func (m *Monitor) checkMemo(cc *checkCache) (*CheckResult, checker.SpecReport) {
	res := &CheckResult{Admissible: true}
	if m == nil || m.spec == nil {
		return res, checker.SpecReport{}
	}
	calls := m.calls
	for _, c := range calls {
		if !c.ended {
			res.Failures = append(res.Failures, specFail(
				"method call %s began but never ended (missing End instrumentation)", c))
			return res, reportFor(res)
		}
		if m.spec.Methods[c.Name] == nil {
			res.Failures = append(res.Failures, specFail(
				"no method spec for %q", c.Name))
			return res, reportFor(res)
		}
	}
	sc := &m.noScratch
	if cc != nil {
		// One shard's cache may serve several workers under the
		// work-stealing engine; the critical section covers the shared
		// scratch (order/fingerprint buffers) as well as the entries map.
		cc.mu.Lock()
		defer cc.mu.Unlock()
		sc = &cc.scratch
	}
	r := buildOrderScratch(calls, sc)
	if r.cyclic() {
		res.Failures = append(res.Failures, specFail(
			"ordering points induce a cyclic ~r~ relation; check OP annotations"))
		return res, reportFor(res)
	}

	// The canonical fingerprint doubles as the cache key and as the
	// per-execution entropy for the history-sampler seed, so it is needed
	// whenever either a cache or a sampling spec is in play.
	var key string
	var fp uint64
	if cc != nil || m.spec.SampleHistories > 0 {
		key, fp = fingerprint(sc, calls, r)
	}
	if cc != nil {
		if hit, ok := cc.entries[key]; ok {
			rep := reportFor(hit)
			rep.CacheHits = 1
			return withCopiedFailures(hit), rep
		}
	}

	m.runCheck(res, r, sc, fp)
	rep := reportFor(res)
	if cc != nil {
		cc.entries[key] = res
		rep.CacheMisses = 1
		rep.CacheEntries = 1
		res = withCopiedFailures(res)
	}
	return res, rep
}

// samplerSeed derives the history-sampler seed for one execution from the
// spec's base seed and the execution's canonical fingerprint hash. Tying
// the seed to content (rather than, say, the call count) makes distinct
// executions draw distinct samples — collapsing them onto one sample
// silently shrinks sampling coverage — while staying deterministic and
// identical between sequential and parallel exhaustive runs, which see
// the same executions.
func samplerSeed(base int64, fp uint64) int64 {
	return base ^ int64(fp)
}

// runCheck runs the expensive phases of the checking pipeline —
// admissibility, sequential-history enumeration or sampling, and
// justification — folding outcomes into res. fp is the execution's
// fingerprint hash (used only by the sampling path).
func (m *Monitor) runCheck(res *CheckResult, r *orderRelation, sc *checkScratch, fp uint64) {
	calls := m.calls
	// Admissibility (Definition 1). An inadmissible execution is a
	// warning: the spec's correctness properties are not checked for it.
	for _, rule := range m.spec.Admissibility {
		for _, a := range calls {
			if a.Name != rule.M1 {
				continue
			}
			for _, b := range calls {
				if b == a || b.Name != rule.M2 {
					continue
				}
				if rule.M1 == rule.M2 && a.ID > b.ID {
					continue // visit unordered same-name pairs once
				}
				if r.ordered(a, b) || r.ordered(b, a) {
					continue
				}
				res.AdmissibilityChecks++
				if rule.MustOrder(a, b) {
					res.Admissible = false
					res.Failures = append(res.Failures, &checker.Failure{
						Kind: checker.FailAdmissibility,
						Msg: fmt.Sprintf("inadmissible execution: %s and %s must be ordered (@Admit %s<->%s)",
							a, b, rule.M1, rule.M2),
					})
					return
				}
			}
		}
	}

	// Valid sequential histories (Definition 2) — check them all
	// (Definition 6) up to the configured cap, or a random sample when
	// the spec opts into sampling (§5.2).
	edge := func(a, b *Call) bool { return r.ordered(a, b) }
	var histFail *checker.Failure
	if n := m.spec.SampleHistories; n > 0 {
		rng := rand.New(rand.NewSource(samplerSeed(m.spec.SampleSeed, fp)))
		for i := 0; i < n && histFail == nil; i++ {
			h := randomTopoSort(calls, edge, rng, sc)
			res.Histories++
			histFail = m.runHistory(h)
		}
	} else {
		complete := topoSorts(calls, edge, m.spec.historyCap(), sc, func(h []*Call) bool {
			res.Histories++
			if f := m.runHistory(h); f != nil {
				histFail = f
				return false
			}
			return true
		})
		// complete is also false when emit stopped on a failure; only an
		// unfailed, truncated enumeration counts as capped coverage.
		res.HistoriesCapped = !complete && histFail == nil
	}
	if histFail != nil {
		res.Failures = append(res.Failures, histFail)
		return
	}

	// Justified behaviors (Definitions 3–4).
	for _, c := range calls {
		md := m.spec.Methods[c.Name]
		if md.NeedsJustify == nil || !md.NeedsJustify(c) {
			continue
		}
		res.JustifySearches++
		if f := m.justify(r, c, md, sc); f != nil {
			res.Failures = append(res.Failures, f)
			return
		}
	}
}

// runHistory replays the equivalent sequential data structure over a
// sequential history, checking pre/side-effect/post per call.
func (m *Monitor) runHistory(h []*Call) *checker.Failure {
	st := m.spec.NewState()
	for _, c := range h {
		md := m.spec.Methods[c.Name]
		if md.Pre != nil && !md.Pre(st, c) {
			return specFail("precondition of %s failed in history: %s", c, formatHistory(h))
		}
		if md.SideEffect != nil {
			md.SideEffect(st, c)
		}
		if md.Post != nil && !md.Post(st, c) {
			return specFail("postcondition of %s failed in history: %s", c, formatHistory(h))
		}
	}
	return nil
}

// justify checks Definition 4 for call c: some justifying subhistory (or
// the concurrent set) must enable the non-deterministic behavior.
func (m *Monitor) justify(r *orderRelation, c *Call, md *MethodSpec, sc *checkScratch) *checker.Failure {
	conc := r.concurrent(c)
	preds := r.predecessors(c)
	edge := func(a, b *Call) bool { return r.ordered(a, b) }
	justified := false
	topoSorts(preds, edge, m.spec.subhistoryCap(), sc, func(j []*Call) bool {
		// Execute the subhistory's predecessors, then m itself: the
		// justifying precondition holds before m and the justifying
		// postcondition after it (paper §4.3).
		st := m.spec.NewState()
		for _, p := range j {
			pmd := m.spec.Methods[p.Name]
			if pmd.SideEffect != nil {
				pmd.SideEffect(st, p)
			}
		}
		if md.JustifyPre != nil && !md.JustifyPre(st, c, conc) {
			return true // try the next subhistory
		}
		if md.SideEffect != nil {
			md.SideEffect(st, c)
		}
		if md.JustifyPost == nil || md.JustifyPost(st, c, conc) {
			justified = true
			return false
		}
		return true
	})
	if !justified && md.JustifyConcurrent != nil && md.JustifyConcurrent(c, conc) {
		justified = true
	}
	if !justified {
		return specFail("unjustified non-deterministic behavior of %s: no justifying subhistory or concurrent call enables it (predecessors: %s)",
			c, formatHistory(preds))
	}
	return nil
}

func specFail(format string, args ...any) *checker.Failure {
	return &checker.Failure{
		Kind: checker.FailAssertion,
		Msg:  fmt.Sprintf(format, args...),
	}
}

// Explore runs the model checker over prog with the spec checked after
// every feasible execution — the whole CDSSpec pipeline in one call. The
// per-execution spec check is memoized per exploration shard unless
// Spec.DisableCheckCache is set (or the caller installed its own
// Config.NewScratch hook, whose Scratch value the cache would collide
// with).
func Explore(spec *Spec, cfg checker.Config, prog func(*checker.Thread)) *checker.Result {
	if cfg.FastMode {
		// Fast mode retains no action trace and no per-action clocks, so
		// the monitor's history reconstruction has nothing to read; its
		// built-in checks (races, deadlocks, uninitialized loads) still
		// fire through checker.Explore directly. Rejecting loudly beats
		// silently skipping the spec.
		panic("core.Explore: FastMode cannot be combined with the CDSSpec layer; call checker.Explore directly for fast-mode screening")
	}
	userStart := cfg.OnRunStart
	cfg.OnRunStart = func(sys *checker.System) {
		Install(sys, spec)
		if userStart != nil {
			userStart(sys)
		}
	}
	if !spec.DisableCheckCache && cfg.NewScratch == nil {
		cfg.NewScratch = func() any { return newCheckCache() }
	}
	userExec := cfg.OnExecution
	cfg.OnExecution = func(sys *checker.System) []*checker.Failure {
		var fails []*checker.Failure
		if mon := FromSys(sys); mon != nil {
			cr, rep := mon.checkMemo(cacheOf(sys))
			sys.ReportSpecStats(rep)
			fails = cr.Failures
		}
		if userExec != nil {
			fails = append(fails, userExec(sys)...)
		}
		return fails
	}
	return checker.Explore(cfg, prog)
}
