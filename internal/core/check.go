package core

import (
	"fmt"
	"math/rand"

	"repro/internal/checker"
)

// orderRelation is the ordering relation ~r~ over an execution's method
// calls, as a reachability matrix (closed under transitivity).
type orderRelation struct {
	calls []*Call
	// reach[i][j] reports calls[i] ~r~ calls[j].
	reach [][]bool
}

// buildOrder extracts ~r~ from the happens-before and seq_cst ordering of
// the calls' ordering points (paper §5.2): for ordering points X of A and
// Y of B, X →hb Y or X →sc Y implies A ~r~ B. The relation is then closed
// transitively.
func buildOrder(calls []*Call) *orderRelation {
	n := len(calls)
	r := &orderRelation{calls: calls, reach: make([][]bool, n)}
	for i := range r.reach {
		r.reach[i] = make([]bool, n)
	}
	for i, a := range calls {
		for j, b := range calls {
			if i == j {
				continue
			}
			if opsOrdered(a, b) {
				r.reach[i][j] = true
			}
		}
	}
	// Transitive closure (n is small: unit tests have ≤ ~20 calls).
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			if !r.reach[i][k] {
				continue
			}
			for j := 0; j < n; j++ {
				if r.reach[k][j] {
					r.reach[i][j] = true
				}
			}
		}
	}
	return r
}

// opsOrdered reports whether some ordering point of a precedes some
// ordering point of b under hb ∪ sc.
func opsOrdered(a, b *Call) bool {
	for _, x := range a.OPs {
		for _, y := range b.OPs {
			if x.HappensBefore(y) || x.SCBefore(y) {
				return true
			}
		}
	}
	return false
}

// cyclic reports whether ~r~ is cyclic (possible only with multiple
// ordering points per call; the paper guarantees acyclicity for one).
func (r *orderRelation) cyclic() bool {
	for i := range r.calls {
		if r.reach[i][i] {
			return true
		}
	}
	return false
}

// ordered reports a ~r~ b for call values.
func (r *orderRelation) ordered(a, b *Call) bool { return r.reach[a.ID][b.ID] }

// concurrent returns the calls not ordered either way with c — the
// concurrent(m) set of paper §2.2.
func (r *orderRelation) concurrent(c *Call) []*Call {
	var out []*Call
	for _, o := range r.calls {
		if o == c {
			continue
		}
		if !r.ordered(c, o) && !r.ordered(o, c) {
			out = append(out, o)
		}
	}
	return out
}

// predecessors returns the calls ordered before c — the membership of
// every justifying subhistory of c (Definition 3).
func (r *orderRelation) predecessors(c *Call) []*Call {
	var out []*Call
	for _, o := range r.calls {
		if o != c && r.ordered(o, c) {
			out = append(out, o)
		}
	}
	return out
}

// topoSorts enumerates the topological sorts of nodes under edge,
// invoking emit for each; emit returns false to stop. limit caps the
// number of sorts generated. It reports whether enumeration ran to
// completion (neither stopped nor truncated).
func topoSorts(nodes []*Call, edge func(a, b *Call) bool, limit int, emit func([]*Call) bool) bool {
	n := len(nodes)
	indeg := make([]int, n)
	for i := range nodes {
		for j, b := range nodes {
			if i != j && edge(nodes[i], b) {
				indeg[j]++
			}
		}
	}
	order := make([]*Call, 0, n)
	used := make([]bool, n)
	count := 0
	complete := true
	var rec func() bool
	rec = func() bool {
		if len(order) == n {
			count++
			if !emit(append([]*Call(nil), order...)) {
				complete = false
				return false
			}
			if count >= limit {
				complete = false
				return false
			}
			return true
		}
		for i := 0; i < n; i++ {
			if used[i] || indeg[i] != 0 {
				continue
			}
			used[i] = true
			for j := 0; j < n; j++ {
				if j != i && !used[j] && edge(nodes[i], nodes[j]) {
					indeg[j]--
				}
			}
			order = append(order, nodes[i])
			ok := rec()
			order = order[:len(order)-1]
			for j := 0; j < n; j++ {
				if j != i && !used[j] && edge(nodes[i], nodes[j]) {
					indeg[j]++
				}
			}
			used[i] = false
			if !ok {
				return false
			}
		}
		return true
	}
	rec()
	return complete
}

// randomTopoSort draws one uniform-ish linear extension of the calls
// under edge by repeatedly picking a random ready node.
func randomTopoSort(nodes []*Call, edge func(a, b *Call) bool, rng *rand.Rand) []*Call {
	n := len(nodes)
	indeg := make([]int, n)
	for i := range nodes {
		for j := range nodes {
			if i != j && edge(nodes[i], nodes[j]) {
				indeg[j]++
			}
		}
	}
	used := make([]bool, n)
	out := make([]*Call, 0, n)
	for len(out) < n {
		var ready []int
		for i := 0; i < n; i++ {
			if !used[i] && indeg[i] == 0 {
				ready = append(ready, i)
			}
		}
		pick := ready[rng.Intn(len(ready))]
		used[pick] = true
		out = append(out, nodes[pick])
		for j := 0; j < n; j++ {
			if j != pick && !used[j] && edge(nodes[pick], nodes[j]) {
				indeg[j]--
			}
		}
	}
	return out
}

// CheckResult is the outcome of checking one execution against the spec.
type CheckResult struct {
	// Failures lists everything found; empty means the execution is
	// admissible and non-deterministic linearizable.
	Failures []*checker.Failure
	// Histories is the number of sequential histories checked.
	Histories int
	// HistoriesCapped reports that history enumeration was truncated by
	// Spec.MaxHistories before the space was exhausted — the check passed
	// on the histories it saw, but coverage was incomplete. Sampling
	// specs are incomplete by design and do not set it.
	HistoriesCapped bool
	// AdmissibilityChecks counts admissibility rule-pair evaluations
	// (MustOrder calls on unordered pairs).
	AdmissibilityChecks int
	// JustifySearches counts justifying-subhistory searches — one per
	// call whose non-deterministic behavior needed justification.
	JustifySearches int
	// Admissible reports whether the execution passed Definition 1.
	Admissible bool
}

// Check verifies the recorded execution against the spec and returns any
// failures. It implements the checking pipeline of paper §5.2.
func (m *Monitor) Check() *CheckResult {
	res := &CheckResult{Admissible: true}
	if m == nil || m.spec == nil {
		return res
	}
	calls := m.calls
	for _, c := range calls {
		if !c.ended {
			res.Failures = append(res.Failures, specFail(
				"method call %s began but never ended (missing End instrumentation)", c))
			return res
		}
		if m.spec.Methods[c.Name] == nil {
			res.Failures = append(res.Failures, specFail(
				"no method spec for %q", c.Name))
			return res
		}
	}
	r := buildOrder(calls)
	if r.cyclic() {
		res.Failures = append(res.Failures, specFail(
			"ordering points induce a cyclic ~r~ relation; check OP annotations"))
		return res
	}

	// Admissibility (Definition 1). An inadmissible execution is a
	// warning: the spec's correctness properties are not checked for it.
	for _, rule := range m.spec.Admissibility {
		for _, a := range calls {
			if a.Name != rule.M1 {
				continue
			}
			for _, b := range calls {
				if b == a || b.Name != rule.M2 {
					continue
				}
				if rule.M1 == rule.M2 && a.ID > b.ID {
					continue // visit unordered same-name pairs once
				}
				if r.ordered(a, b) || r.ordered(b, a) {
					continue
				}
				res.AdmissibilityChecks++
				if rule.MustOrder(a, b) {
					res.Admissible = false
					res.Failures = append(res.Failures, &checker.Failure{
						Kind: checker.FailAdmissibility,
						Msg: fmt.Sprintf("inadmissible execution: %s and %s must be ordered (@Admit %s<->%s)",
							a, b, rule.M1, rule.M2),
					})
					return res
				}
			}
		}
	}

	// Valid sequential histories (Definition 2) — check them all
	// (Definition 6) up to the configured cap, or a random sample when
	// the spec opts into sampling (§5.2).
	edge := func(a, b *Call) bool { return r.ordered(a, b) }
	var histFail *checker.Failure
	if n := m.spec.SampleHistories; n > 0 {
		rng := rand.New(rand.NewSource(m.spec.SampleSeed + int64(len(calls))))
		for i := 0; i < n && histFail == nil; i++ {
			h := randomTopoSort(calls, edge, rng)
			res.Histories++
			histFail = m.runHistory(h)
		}
	} else {
		complete := topoSorts(calls, edge, m.spec.historyCap(), func(h []*Call) bool {
			res.Histories++
			if f := m.runHistory(h); f != nil {
				histFail = f
				return false
			}
			return true
		})
		// complete is also false when emit stopped on a failure; only an
		// unfailed, truncated enumeration counts as capped coverage.
		res.HistoriesCapped = !complete && histFail == nil
	}
	if histFail != nil {
		res.Failures = append(res.Failures, histFail)
		return res
	}

	// Justified behaviors (Definitions 3–4).
	for _, c := range calls {
		md := m.spec.Methods[c.Name]
		if md.NeedsJustify == nil || !md.NeedsJustify(c) {
			continue
		}
		res.JustifySearches++
		if f := m.justify(r, c, md); f != nil {
			res.Failures = append(res.Failures, f)
			return res
		}
	}
	return res
}

// runHistory replays the equivalent sequential data structure over a
// sequential history, checking pre/side-effect/post per call.
func (m *Monitor) runHistory(h []*Call) *checker.Failure {
	st := m.spec.NewState()
	for _, c := range h {
		md := m.spec.Methods[c.Name]
		if md.Pre != nil && !md.Pre(st, c) {
			return specFail("precondition of %s failed in history: %s", c, formatHistory(h))
		}
		if md.SideEffect != nil {
			md.SideEffect(st, c)
		}
		if md.Post != nil && !md.Post(st, c) {
			return specFail("postcondition of %s failed in history: %s", c, formatHistory(h))
		}
	}
	return nil
}

// justify checks Definition 4 for call c: some justifying subhistory (or
// the concurrent set) must enable the non-deterministic behavior.
func (m *Monitor) justify(r *orderRelation, c *Call, md *MethodSpec) *checker.Failure {
	conc := r.concurrent(c)
	preds := r.predecessors(c)
	edge := func(a, b *Call) bool { return r.ordered(a, b) }
	justified := false
	topoSorts(preds, edge, m.spec.subhistoryCap(), func(j []*Call) bool {
		// Execute the subhistory's predecessors, then m itself: the
		// justifying precondition holds before m and the justifying
		// postcondition after it (paper §4.3).
		st := m.spec.NewState()
		for _, p := range j {
			pmd := m.spec.Methods[p.Name]
			if pmd.SideEffect != nil {
				pmd.SideEffect(st, p)
			}
		}
		if md.JustifyPre != nil && !md.JustifyPre(st, c, conc) {
			return true // try the next subhistory
		}
		if md.SideEffect != nil {
			md.SideEffect(st, c)
		}
		if md.JustifyPost == nil || md.JustifyPost(st, c, conc) {
			justified = true
			return false
		}
		return true
	})
	if !justified && md.JustifyConcurrent != nil && md.JustifyConcurrent(c, conc) {
		justified = true
	}
	if !justified {
		return specFail("unjustified non-deterministic behavior of %s: no justifying subhistory or concurrent call enables it (predecessors: %s)",
			c, formatHistory(preds))
	}
	return nil
}

func specFail(format string, args ...any) *checker.Failure {
	return &checker.Failure{
		Kind: checker.FailAssertion,
		Msg:  fmt.Sprintf(format, args...),
	}
}

// Explore runs the model checker over prog with the spec checked after
// every feasible execution — the whole CDSSpec pipeline in one call.
func Explore(spec *Spec, cfg checker.Config, prog func(*checker.Thread)) *checker.Result {
	userStart := cfg.OnRunStart
	cfg.OnRunStart = func(sys *checker.System) {
		Install(sys, spec)
		if userStart != nil {
			userStart(sys)
		}
	}
	userExec := cfg.OnExecution
	cfg.OnExecution = func(sys *checker.System) []*checker.Failure {
		var fails []*checker.Failure
		if mon := FromSys(sys); mon != nil {
			cr := mon.Check()
			sys.ReportSpecStats(cr.Histories, cr.HistoriesCapped, cr.AdmissibilityChecks, cr.JustifySearches)
			fails = cr.Failures
		}
		if userExec != nil {
			fails = append(fails, userExec(sys)...)
		}
		return fails
	}
	return checker.Explore(cfg, prog)
}
