package core

import (
	"math/rand"
	"testing"

	"repro/internal/checker"
	"repro/internal/memmodel"
	"repro/internal/seqds"
)

// fabricate builds an ordering-point action for tests. The returned
// action's clock contains everything in preds (and itself).
func fabricate(thread int, tseq uint32, sc int, preds ...*memmodel.Action) *memmodel.Action {
	cv := memmodel.NewClockVector()
	cv.Set(thread, tseq)
	for _, p := range preds {
		cv.Merge(p.Clock)
	}
	return &memmodel.Action{Thread: thread, TSeq: tseq, SCIndex: sc, Clock: cv}
}

func makeCall(id int, name string, ret memmodel.Value, ops ...*memmodel.Action) *Call {
	return &Call{ID: id, Name: name, Ret: ret, HasRet: true, OPs: ops, ended: true}
}

func TestBuildOrderHappensBefore(t *testing.T) {
	a := fabricate(0, 1, -1)
	b := fabricate(0, 2, -1, a) // same thread, later
	c := fabricate(1, 1, -1)    // concurrent

	ca := makeCall(0, "m", 0, a)
	cb := makeCall(1, "m", 0, b)
	cc := makeCall(2, "m", 0, c)
	r := buildOrder([]*Call{ca, cb, cc})
	if !r.ordered(ca, cb) || r.ordered(cb, ca) {
		t.Error("hb-ordered calls not ordered in ~r~")
	}
	if r.ordered(ca, cc) || r.ordered(cc, ca) {
		t.Error("concurrent calls should be unordered")
	}
	conc := r.concurrent(cc)
	if len(conc) != 2 {
		t.Errorf("concurrent(cc) = %v, want both others", conc)
	}
	if got := r.predecessors(cb); len(got) != 1 || got[0] != ca {
		t.Errorf("predecessors(cb) = %v", got)
	}
}

func TestBuildOrderSC(t *testing.T) {
	a := fabricate(0, 1, 3)
	b := fabricate(1, 1, 7) // different thread, no hb, later in S
	ca := makeCall(0, "m", 0, a)
	cb := makeCall(1, "m", 0, b)
	r := buildOrder([]*Call{ca, cb})
	if !r.ordered(ca, cb) || r.ordered(cb, ca) {
		t.Error("sc-ordered ordering points must order the calls")
	}
}

func TestBuildOrderTransitive(t *testing.T) {
	a := fabricate(0, 1, -1)
	b := fabricate(1, 1, -1, a)
	c := fabricate(2, 1, -1, b)
	ca := makeCall(0, "m", 0, a)
	cb := makeCall(1, "m", 0, b)
	cc := makeCall(2, "m", 0, c)
	r := buildOrder([]*Call{ca, cb, cc})
	if !r.ordered(ca, cc) {
		t.Error("~r~ must be transitively closed")
	}
}

func TestCyclicDetection(t *testing.T) {
	// Two calls with two ordering points each, crossing: a1 -> b2 and
	// b1 -> a2 gives a ~r~ cycle.
	a1 := fabricate(0, 1, -1)
	b1 := fabricate(1, 1, -1)
	a2 := fabricate(0, 2, -1, b1)
	b2 := fabricate(1, 2, -1, a1)
	ca := makeCall(0, "m", 0, a1, a2)
	cb := makeCall(1, "m", 0, b1, b2)
	r := buildOrder([]*Call{ca, cb})
	if !r.cyclic() {
		t.Error("crossed ordering points should be cyclic")
	}
}

func countSorts(t *testing.T, calls []*Call, edge func(a, b *Call) bool) int {
	t.Helper()
	n := 0
	complete := topoSorts(calls, edge, 1_000_000, &checkScratch{}, func(h []*Call) bool { n++; return true })
	if !complete {
		t.Fatal("enumeration truncated")
	}
	return n
}

func TestTopoSortsAntichain(t *testing.T) {
	calls := []*Call{makeCall(0, "a", 0), makeCall(1, "b", 0), makeCall(2, "c", 0)}
	noEdge := func(a, b *Call) bool { return false }
	if got := countSorts(t, calls, noEdge); got != 6 {
		t.Errorf("antichain of 3 has %d sorts, want 6", got)
	}
}

func TestTopoSortsChain(t *testing.T) {
	calls := []*Call{makeCall(0, "a", 0), makeCall(1, "b", 0), makeCall(2, "c", 0)}
	chain := func(a, b *Call) bool { return a.ID < b.ID }
	if got := countSorts(t, calls, chain); got != 1 {
		t.Errorf("chain of 3 has %d sorts, want 1", got)
	}
}

func TestTopoSortsDiamond(t *testing.T) {
	// a -> b, a -> c, b -> d, c -> d: two sorts.
	calls := []*Call{makeCall(0, "a", 0), makeCall(1, "b", 0), makeCall(2, "c", 0), makeCall(3, "d", 0)}
	edge := func(a, b *Call) bool {
		if a.ID == 0 {
			return b.ID != 0
		}
		return b.ID == 3 && a.ID != 3
	}
	if got := countSorts(t, calls, edge); got != 2 {
		t.Errorf("diamond has %d sorts, want 2", got)
	}
}

func TestTopoSortsRespectEdges(t *testing.T) {
	calls := []*Call{makeCall(0, "a", 0), makeCall(1, "b", 0), makeCall(2, "c", 0)}
	edge := func(a, b *Call) bool { return a.ID == 0 && b.ID == 2 } // a before c
	seen := 0
	topoSorts(calls, edge, 100, &checkScratch{}, func(h []*Call) bool {
		seen++
		posA, posC := -1, -1
		for i, c := range h {
			if c.ID == 0 {
				posA = i
			}
			if c.ID == 2 {
				posC = i
			}
		}
		if posA > posC {
			t.Errorf("sort violates edge: %v", formatHistory(h))
		}
		return true
	})
	if seen != 3 {
		t.Errorf("expected 3 sorts, got %d", seen)
	}
}

func TestTopoSortsLimit(t *testing.T) {
	calls := []*Call{makeCall(0, "a", 0), makeCall(1, "b", 0), makeCall(2, "c", 0)}
	noEdge := func(a, b *Call) bool { return false }
	n := 0
	complete := topoSorts(calls, noEdge, 2, &checkScratch{}, func(h []*Call) bool { n++; return true })
	if complete || n != 2 {
		t.Errorf("limit not honored: complete=%v n=%d", complete, n)
	}
}

// queueSpec is the running-example spec (Figure 6) for engine tests.
func queueSpec() *Spec {
	const empty = ^memmodel.Value(0)
	return &Spec{
		Name:     "q",
		NewState: func() State { return seqds.NewIntList() },
		Methods: map[string]*MethodSpec{
			"enq": {
				SideEffect: func(st State, c *Call) { st.(*seqds.IntList).PushBack(c.Arg(0)) },
			},
			"deq": {
				SideEffect: func(st State, c *Call) {
					l := st.(*seqds.IntList)
					if v, ok := l.Front(); ok {
						c.SRet = v
					} else {
						c.SRet = empty
					}
					if c.SRet != empty && c.Ret != empty {
						l.PopFront()
					}
				},
				Post: func(st State, c *Call) bool {
					if c.Ret == empty {
						return true
					}
					return c.Ret == c.SRet
				},
				NeedsJustify: func(c *Call) bool { return c.Ret == empty },
				JustifyPost: func(st State, c *Call, conc []*Call) bool {
					return c.SRet == empty
				},
			},
		},
	}
}

func checkCalls(spec *Spec, calls []*Call) *CheckResult {
	m := &Monitor{spec: spec, calls: calls, active: map[int]*Call{}, depth: map[int]int{}}
	return m.Check()
}

const empty = ^memmodel.Value(0)

// TestCheckSequentialDeqEmptyRejected: enq ~r~ deq, deq returns empty —
// the unjustified behavior the paper's §2.1 insists must be caught.
func TestCheckSequentialDeqEmptyRejected(t *testing.T) {
	opE := fabricate(0, 1, -1)
	opD := fabricate(0, 2, -1, opE)
	cE := makeCall(0, "enq", 0, opE)
	cE.Args = []memmodel.Value{1}
	cD := makeCall(1, "deq", empty, opD)
	res := checkCalls(queueSpec(), []*Call{cE, cD})
	if len(res.Failures) == 0 {
		t.Fatal("deq spuriously returning empty after an ordered enq must be rejected")
	}
}

// TestCheckConcurrentDeqEmptyJustified: enq and deq concurrent — the
// spurious empty is justified by the empty justifying prefix.
func TestCheckConcurrentDeqEmptyJustified(t *testing.T) {
	opE := fabricate(0, 1, -1)
	opD := fabricate(1, 1, -1)
	cE := makeCall(0, "enq", 0, opE)
	cE.Args = []memmodel.Value{1}
	cD := makeCall(1, "deq", empty, opD)
	res := checkCalls(queueSpec(), []*Call{cE, cD})
	if len(res.Failures) != 0 {
		t.Fatalf("concurrent spurious empty should be justified: %v", res.Failures[0])
	}
}

// TestCheckDeqWrongValue: a deq ordered after enq(1) returning 2 violates
// the postcondition.
func TestCheckDeqWrongValue(t *testing.T) {
	opE := fabricate(0, 1, -1)
	opD := fabricate(0, 2, -1, opE)
	cE := makeCall(0, "enq", 0, opE)
	cE.Args = []memmodel.Value{1}
	cD := makeCall(1, "deq", 2, opD)
	res := checkCalls(queueSpec(), []*Call{cE, cD})
	if len(res.Failures) == 0 {
		t.Fatal("wrong dequeue value must be rejected")
	}
}

// TestCheckFIFOOrder: two ordered enqs and two ordered deqs in FIFO order
// pass; swapped values fail.
func TestCheckFIFOOrder(t *testing.T) {
	opE1 := fabricate(0, 1, -1)
	opE2 := fabricate(0, 2, -1, opE1)
	opD1 := fabricate(0, 3, -1, opE2)
	opD2 := fabricate(0, 4, -1, opD1)
	mk := func(r1, r2 memmodel.Value) []*Call {
		cE1 := makeCall(0, "enq", 0, opE1)
		cE1.Args = []memmodel.Value{1}
		cE2 := makeCall(1, "enq", 0, opE2)
		cE2.Args = []memmodel.Value{2}
		cD1 := makeCall(2, "deq", r1, opD1)
		cD2 := makeCall(3, "deq", r2, opD2)
		return []*Call{cE1, cE2, cD1, cD2}
	}
	if res := checkCalls(queueSpec(), mk(1, 2)); len(res.Failures) != 0 {
		t.Errorf("FIFO order rejected: %v", res.Failures[0])
	}
	if res := checkCalls(queueSpec(), mk(2, 1)); len(res.Failures) == 0 {
		t.Error("LIFO order accepted by FIFO spec")
	}
}

// TestAdmissibilityRule: a rule requiring deq<->enq ordering flags the
// unordered pair.
func TestAdmissibilityRule(t *testing.T) {
	spec := queueSpec()
	spec.Admissibility = []AdmitRule{{
		M1: "deq", M2: "enq",
		MustOrder: func(d, e *Call) bool { return d.Ret == empty },
	}}
	opE := fabricate(0, 1, -1)
	opD := fabricate(1, 1, -1) // concurrent with the enq
	cE := makeCall(0, "enq", 0, opE)
	cE.Args = []memmodel.Value{1}
	cD := makeCall(1, "deq", empty, opD)
	res := checkCalls(spec, []*Call{cE, cD})
	if res.Admissible {
		t.Fatal("execution should be inadmissible under the rule")
	}
	if len(res.Failures) == 0 || res.Failures[0].Kind != checker.FailAdmissibility {
		t.Fatalf("expected admissibility failure, got %v", res.Failures)
	}
}

// TestHistoriesCount: two concurrent calls yield two checked histories.
func TestHistoriesCount(t *testing.T) {
	opE1 := fabricate(0, 1, -1)
	opE2 := fabricate(1, 1, -1)
	cE1 := makeCall(0, "enq", 0, opE1)
	cE1.Args = []memmodel.Value{1}
	cE2 := makeCall(1, "enq", 0, opE2)
	cE2.Args = []memmodel.Value{2}
	res := checkCalls(queueSpec(), []*Call{cE1, cE2})
	if res.Histories != 2 {
		t.Errorf("Histories = %d, want 2", res.Histories)
	}
}

// TestUnendedCallReported: missing End instrumentation is caught.
func TestUnendedCallReported(t *testing.T) {
	c := makeCall(0, "enq", 0)
	c.ended = false
	res := checkCalls(queueSpec(), []*Call{c})
	if len(res.Failures) == 0 {
		t.Error("unended call not reported")
	}
}

// TestUnknownMethodReported: a call without a method spec is caught.
func TestUnknownMethodReported(t *testing.T) {
	c := makeCall(0, "mystery", 0)
	res := checkCalls(queueSpec(), []*Call{c})
	if len(res.Failures) == 0 {
		t.Error("unknown method not reported")
	}
}

// TestComposeIndependence: composed specs keep independent state and never require
// cross-object ordering.
func TestComposeIndependence(t *testing.T) {
	qx := queueSpec()
	qx.Name = "x"
	qx.Methods = map[string]*MethodSpec{"x.enq": qx.Methods["enq"], "x.deq": qx.Methods["deq"]}
	qy := queueSpec()
	qy.Name = "y"
	qy.Methods = map[string]*MethodSpec{"y.enq": qy.Methods["enq"], "y.deq": qy.Methods["deq"]}
	comp := Compose(qx, qy)

	// The Figure 3 execution: x.enq(1) ~r~ y.deq(-1) in thread 0,
	// y.enq(1) ~r~ x.deq(-1) in thread 1, nothing across threads.
	opXE := fabricate(0, 1, -1)
	opYD := fabricate(0, 2, -1, opXE)
	opYE := fabricate(1, 1, -1)
	opXD := fabricate(1, 2, -1, opYE)
	cXE := makeCall(0, "x.enq", 0, opXE)
	cXE.Args = []memmodel.Value{1}
	cYD := makeCall(1, "y.deq", empty, opYD)
	cYE := makeCall(2, "y.enq", 0, opYE)
	cYE.Args = []memmodel.Value{1}
	cXD := makeCall(3, "x.deq", empty, opXD)

	res := checkCalls(comp, []*Call{cXE, cYD, cYE, cXD})
	if len(res.Failures) != 0 {
		t.Fatalf("the Figure 3 execution must be accepted by the ND spec: %v", res.Failures[0])
	}
}

// TestComposeCollisionPanics: duplicate method names across components are
// an authoring error.
func TestComposeCollisionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Compose with colliding names should panic")
		}
	}()
	Compose(queueSpec(), queueSpec())
}

// TestJustifyPreFiltersSubhistories: the justifying precondition must
// hold right before the call executes in the subhistory; if no
// subhistory satisfies it, the behavior is unjustified.
func TestJustifyPreFiltersSubhistories(t *testing.T) {
	spec := queueSpec()
	deq := spec.Methods["deq"]
	deq.JustifyPre = func(st State, c *Call, conc []*Call) bool {
		return false // nothing can be justified
	}
	opE := fabricate(0, 1, -1)
	opD := fabricate(1, 1, -1)
	cE := makeCall(0, "enq", 0, opE)
	cE.Args = []memmodel.Value{1}
	cD := makeCall(1, "deq", empty, opD)
	res := checkCalls(spec, []*Call{cE, cD})
	if len(res.Failures) == 0 {
		t.Fatal("an always-false JustifyPre must make the spurious empty unjustifiable")
	}
}

// TestJustifyConcurrentFallback: when no subhistory justifies, the
// concurrent set may (Definition 4, case 2).
func TestJustifyConcurrentFallback(t *testing.T) {
	spec := queueSpec()
	deq := spec.Methods["deq"]
	deq.JustifyPost = func(st State, c *Call, conc []*Call) bool { return false }
	deq.JustifyConcurrent = func(c *Call, conc []*Call) bool { return len(conc) > 0 }
	opE := fabricate(0, 1, -1)
	opD := fabricate(1, 1, -1) // concurrent
	cE := makeCall(0, "enq", 0, opE)
	cE.Args = []memmodel.Value{1}
	cD := makeCall(1, "deq", empty, opD)
	res := checkCalls(spec, []*Call{cE, cD})
	if len(res.Failures) != 0 {
		t.Fatalf("concurrent-set justification should apply: %v", res.Failures[0])
	}
}

// TestHistoryCapLimitsWork: a tiny MaxHistories bounds the number of
// histories checked per execution.
func TestHistoryCapLimitsWork(t *testing.T) {
	spec := queueSpec()
	spec.MaxHistories = 2
	var calls []*Call
	for i := 0; i < 4; i++ {
		op := fabricate(i, 1, -1) // four mutually concurrent enqs
		c := makeCall(i, "enq", 0, op)
		c.Args = []memmodel.Value{memmodel.Value(i)}
		calls = append(calls, c)
	}
	res := checkCalls(spec, calls)
	if res.Histories != 2 {
		t.Errorf("Histories = %d, want 2 (capped)", res.Histories)
	}
}

// TestSampledHistories: sampling mode checks exactly the requested
// number of randomly drawn histories.
func TestSampledHistories(t *testing.T) {
	spec := queueSpec()
	spec.SampleHistories = 7
	var calls []*Call
	for i := 0; i < 4; i++ {
		op := fabricate(i, 1, -1)
		c := makeCall(i, "enq", 0, op)
		c.Args = []memmodel.Value{memmodel.Value(i)}
		calls = append(calls, c)
	}
	res := checkCalls(spec, calls)
	if res.Histories != 7 {
		t.Errorf("Histories = %d, want 7 (sampled)", res.Histories)
	}
	if len(res.Failures) != 0 {
		t.Errorf("sampled checking of a correct set failed: %v", res.Failures[0])
	}
}

// TestRandomTopoSortRespectsEdges (property-ish): random linear
// extensions always respect the partial order.
func TestRandomTopoSortRespectsEdges(t *testing.T) {
	opA := fabricate(0, 1, -1)
	opB := fabricate(0, 2, -1, opA)
	opC := fabricate(1, 1, -1)
	ca := makeCall(0, "a", 0, opA)
	cb := makeCall(1, "b", 0, opB)
	cc := makeCall(2, "c", 0, opC)
	calls := []*Call{ca, cb, cc}
	r := buildOrder(calls)
	edge := func(x, y *Call) bool { return r.ordered(x, y) }
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		h := randomTopoSort(calls, edge, rng, &checkScratch{})
		posA, posB := -1, -1
		for j, c := range h {
			if c == ca {
				posA = j
			}
			if c == cb {
				posB = j
			}
		}
		if posA > posB {
			t.Fatalf("random sort violated a -> b: %v", formatHistory(h))
		}
	}
}
