package core

// State is the internal state of the equivalent sequential data structure
// (the paper's @DeclareState). Specs define their own concrete type and
// assert it back in their method functions.
type State any

// MethodSpec carries the paper's method annotations for one API method.
// All functions may be nil, with the paper's defaults: an omitted
// SideEffect leaves the sequential state unchanged; omitted conditions
// hold trivially.
type MethodSpec struct {
	// SideEffect applies the call to the equivalent sequential data
	// structure (@SideEffect). It typically also computes c.SRet.
	SideEffect func(st State, c *Call)
	// Pre is checked before the call executes in a sequential history
	// (@PreCondition).
	Pre func(st State, c *Call) bool
	// Post is checked after the call executes in a sequential history
	// (@PostCondition).
	Post func(st State, c *Call) bool

	// NeedsJustify reports whether the call exhibited a non-deterministic
	// behavior that must be justified (Definition 4). It depends only on
	// the call's concrete values (e.g. C_RET == -1).
	NeedsJustify func(c *Call) bool
	// JustifyPre is checked before the call executes in a justifying
	// subhistory (@JustifyingPrecondition).
	JustifyPre func(st State, c *Call, concurrent []*Call) bool
	// JustifyPost is checked after the call executes in a justifying
	// subhistory (@JustifyingPostcondition). The behavior is justified
	// if at least one justifying subhistory satisfies both conditions.
	JustifyPost func(st State, c *Call, concurrent []*Call) bool
	// JustifyConcurrent justifies the behavior directly from the set of
	// concurrent method calls (Definition 4, case 2), independent of any
	// subhistory. It is tried when no subhistory justifies the call.
	JustifyConcurrent func(c *Call, concurrent []*Call) bool
}

// AdmitRule is one admissibility rule (@Admit: M1 <-> M2 (cond)): when
// MustOrder returns true for an *unordered* pair of calls, the execution
// is inadmissible (Definition 1).
type AdmitRule struct {
	// M1 and M2 name the two methods the rule relates (they may be
	// equal).
	M1, M2 string
	// MustOrder receives a call to M1 and a call to M2 that the ordering
	// relation ~r~ leaves unordered, and reports whether the data
	// structure's design requires them to be ordered.
	MustOrder func(m1, m2 *Call) bool
}

// Spec is a CDSSpec specification: the equivalent sequential data
// structure, per-method annotations, and admissibility rules.
type Spec struct {
	// Name identifies the data structure in reports.
	Name string
	// NewState builds a fresh equivalent sequential data structure
	// (@DeclareState/@Initial).
	NewState func() State
	// Methods maps API method names to their annotations.
	Methods map[string]*MethodSpec
	// Admissibility holds the @Admit rules.
	Admissibility []AdmitRule

	// MaxHistories caps the number of sequential histories checked per
	// execution, mirroring the checker's "randomly generate and check a
	// user-customized number" option. 0 means the safety default of
	// 20000; a negative value means unlimited.
	MaxHistories int
	// MaxSubhistories caps the justifying subhistories tried per call.
	// 0 means the safety default of 20000; negative means unlimited.
	MaxSubhistories int
	// SampleHistories, when positive, replaces exhaustive sequential-
	// history enumeration with that many randomly generated histories
	// per execution — the paper's "randomly generating and checking a
	// user-customized number of sequential histories" option for
	// executions whose topological-sort count explodes.
	SampleHistories int
	// SampleSeed seeds the history sampler (deterministic by default).
	SampleSeed int64
	// DisableCheckCache turns off the per-shard memoization of spec-check
	// results in Explore (see checkCache). Checking is then re-run for
	// every feasible execution — useful for ablation benchmarks and for
	// isolating suspected cache bugs; results must be identical either
	// way.
	DisableCheckCache bool
}

func (s *Spec) historyCap() int {
	switch {
	case s.MaxHistories == 0:
		return 20000
	case s.MaxHistories < 0:
		return int(^uint(0) >> 1)
	default:
		return s.MaxHistories
	}
}

func (s *Spec) subhistoryCap() int {
	switch {
	case s.MaxSubhistories == 0:
		return 20000
	case s.MaxSubhistories < 0:
		return int(^uint(0) >> 1)
	default:
		return s.MaxSubhistories
	}
}
