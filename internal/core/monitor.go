package core

import (
	"repro/internal/checker"
	"repro/internal/memmodel"
)

// Monitor records the method calls of one execution and checks them
// against a Spec when the execution completes. One Monitor is installed
// per execution via Install (typically from Config.OnRunStart).
type Monitor struct {
	spec  *Spec
	calls []*Call
	// active tracks the outermost open call per thread: when an API
	// method calls another API method, only the outermost counts
	// (paper §4.3, "Nested API Method Call").
	active map[int]*Call
	depth  map[int]int
	// noScratch backs the check when no shard cache (and thus no shared
	// checkScratch) is available — direct Check() calls from unit tests.
	noScratch checkScratch
	// muts counts spec-layer mutations per thread, for the checker's
	// spinloop reduction (see ReduceThreadMuts in reduce.go).
	muts map[int]uint64
}

// Install creates a Monitor for spec and hangs it off the system so the
// instrumented data-structure code can find it.
func Install(sys *checker.System, spec *Spec) *Monitor {
	m := &Monitor{spec: spec, active: map[int]*Call{}, depth: map[int]int{}}
	sys.Aux = m
	return m
}

// Of returns the Monitor installed on the thread's system, or nil.
func Of(t *checker.Thread) *Monitor {
	m, _ := t.Sys().Aux.(*Monitor)
	return m
}

// FromSys returns the Monitor installed on sys, or nil.
func FromSys(sys *checker.System) *Monitor {
	m, _ := sys.Aux.(*Monitor)
	return m
}

// Calls returns the method calls recorded so far.
func (m *Monitor) Calls() []*Call { return m.calls }

// Fingerprint returns the canonical 64-bit content hash of the calls
// recorded so far — the same FNV-1a hash the spec-check memoization keys
// on (see fingerprint in cache.go): call identities, arguments, return
// values, spec-visible aux values, and the closed ~r~ relation. Two
// executions with equal fingerprints are indistinguishable to the
// checking pipeline, which is what makes the hash a sound dedup key for
// fuzz-campaign failure triage. It is safe on a partially recorded
// execution (a built-in failure aborts mid-run before calls end); an
// empty record hashes to 0.
func (m *Monitor) Fingerprint() uint64 {
	if m == nil || len(m.calls) == 0 {
		return 0
	}
	r := buildOrderScratch(m.calls, &m.noScratch)
	_, h := fingerprint(&m.noScratch, m.calls, r)
	return h
}

// CallCtx is the instrumentation handle for one method call, carrying the
// ordering-point annotations of the specification language. For nested
// API calls the context is inert (the outermost call owns the record).
type CallCtx struct {
	m    *Monitor
	call *Call // nil when nested (inert)
	tid  int
}

// Begin opens an API method call (the method-begin annotation action).
// It must be paired with End/EndVoid on every return path.
func (m *Monitor) Begin(t *checker.Thread, name string, args ...memmodel.Value) *CallCtx {
	if m == nil {
		return nil
	}
	tid := t.ID()
	m.mut(tid)
	m.depth[tid]++
	if m.depth[tid] > 1 {
		return &CallCtx{m: m, tid: tid} // nested: inert
	}
	c := &Call{ID: len(m.calls), Thread: tid, Name: name, Args: args}
	m.calls = append(m.calls, c)
	m.active[tid] = c
	return &CallCtx{m: m, call: c, tid: tid}
}

// End closes the call with a return value (C_RET).
func (x *CallCtx) End(t *checker.Thread, ret memmodel.Value) {
	if x == nil {
		return
	}
	x.m.mut(x.tid)
	x.m.depth[x.tid]--
	if x.call != nil {
		x.call.Ret = ret
		x.call.HasRet = true
		x.call.ended = true
		delete(x.m.active, x.tid)
	}
}

// EndVoid closes a void call.
func (x *CallCtx) EndVoid(t *checker.Thread) {
	if x == nil {
		return
	}
	x.m.mut(x.tid)
	x.m.depth[x.tid]--
	if x.call != nil {
		x.call.ended = true
		delete(x.m.active, x.tid)
	}
}

// SetAux stores a named scratch value on the underlying call (no-op for
// nested calls). Structures use it to expose extra observed values to the
// specification.
func (x *CallCtx) SetAux(key string, v memmodel.Value) {
	if x == nil || x.call == nil {
		return
	}
	x.m.mut(x.tid)
	x.call.SetAux(key, v)
}

// OPDefine marks the thread's immediately preceding atomic operation as an
// ordering point when cond holds (@OPDefine).
func (x *CallCtx) OPDefine(t *checker.Thread, cond bool) {
	if x == nil || x.call == nil || !cond {
		return
	}
	if a := t.LastAction(); a != nil {
		x.m.mut(x.tid)
		x.call.OPs = append(x.call.OPs, a)
	}
}

// OPClear removes all ordering points observed so far in this call when
// cond holds (@OPClear).
func (x *CallCtx) OPClear(t *checker.Thread, cond bool) {
	if x == nil || x.call == nil || !cond {
		return
	}
	x.m.mut(x.tid)
	x.call.OPs = x.call.OPs[:0]
	x.call.potentials = x.call.potentials[:0]
}

// OPClearDefine is OPClear followed by OPDefine (@OPClearDefine), the
// idiom for "the operation from the last loop iteration is the ordering
// point".
func (x *CallCtx) OPClearDefine(t *checker.Thread, cond bool) {
	if x == nil || x.call == nil || !cond {
		return
	}
	x.OPClear(t, true)
	x.OPDefine(t, true)
}

// PotentialOP labels the preceding atomic operation as a potential
// ordering point (@PotentialOP(label)); a later OPCheck with the same
// label promotes it.
func (x *CallCtx) PotentialOP(t *checker.Thread, label string, cond bool) {
	if x == nil || x.call == nil || !cond {
		return
	}
	if a := t.LastAction(); a != nil {
		x.m.mut(x.tid)
		x.call.potentials = append(x.call.potentials, potentialOP{label: label, act: a})
	}
}

// OPCheck promotes all potential ordering points with the given label to
// real ordering points when cond holds (@OPCheck(label)).
func (x *CallCtx) OPCheck(t *checker.Thread, label string, cond bool) {
	if x == nil || x.call == nil || !cond {
		return
	}
	x.m.mut(x.tid)
	kept := x.call.potentials[:0]
	for _, p := range x.call.potentials {
		if p.label == label {
			x.call.OPs = append(x.call.OPs, p.act)
		} else {
			kept = append(kept, p)
		}
	}
	x.call.potentials = kept
}
