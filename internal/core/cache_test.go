package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/checker"
	"repro/internal/memmodel"
)

// cacheProg is a tiny instrumented queue (one slot, enq stores / deq
// loads) plus two uninstrumented noise stores. The noise interleavings
// multiply the executions without changing the recorded calls or ~r~, so
// an exploration repeats spec-equivalent executions — the situation the
// check cache exists for.
func cacheProg(root *checker.Thread) {
	mon := Of(root)
	x := root.NewAtomicInit("x", 0)
	noise := root.NewAtomicInit("noise", 0)
	a := root.Spawn("a", func(tt *checker.Thread) {
		c := mon.Begin(tt, "enq", 1)
		x.Store(tt, memmodel.Release, 1)
		c.OPDefine(tt, true)
		c.EndVoid(tt)
	})
	b := root.Spawn("b", func(tt *checker.Thread) {
		c := mon.Begin(tt, "deq")
		v := x.Load(tt, memmodel.Acquire)
		c.OPDefine(tt, true)
		if v == 0 {
			c.End(tt, empty)
		} else {
			c.End(tt, v)
		}
	})
	n1 := root.Spawn("n1", func(tt *checker.Thread) { noise.Store(tt, memmodel.Relaxed, 1) })
	n2 := root.Spawn("n2", func(tt *checker.Thread) { noise.Store(tt, memmodel.Relaxed, 2) })
	root.Join(a)
	root.Join(b)
	root.Join(n1)
	root.Join(n2)
}

// buggyCacheProg is cacheProg with an off-by-one dequeue value, so the
// spec check fails on the executions where deq observes the enqueue.
func buggyCacheProg(root *checker.Thread) {
	mon := Of(root)
	x := root.NewAtomicInit("x", 0)
	noise := root.NewAtomicInit("noise", 0)
	a := root.Spawn("a", func(tt *checker.Thread) {
		c := mon.Begin(tt, "enq", 1)
		x.Store(tt, memmodel.Release, 1)
		c.OPDefine(tt, true)
		c.EndVoid(tt)
	})
	b := root.Spawn("b", func(tt *checker.Thread) {
		c := mon.Begin(tt, "deq")
		v := x.Load(tt, memmodel.Acquire)
		c.OPDefine(tt, true)
		if v == 0 {
			c.End(tt, empty)
		} else {
			c.End(tt, v+1) // bug: wrong value out
		}
	})
	n1 := root.Spawn("n1", func(tt *checker.Thread) { noise.Store(tt, memmodel.Relaxed, 1) })
	n2 := root.Spawn("n2", func(tt *checker.Thread) { noise.Store(tt, memmodel.Relaxed, 2) })
	root.Join(a)
	root.Join(b)
	root.Join(n1)
	root.Join(n2)
}

// TestExploreSpecCacheHits: an exhaustive exploration with repeated
// spec-equivalent executions gets cache hits, and the counters satisfy
// their invariants: every feasible execution is either a hit or a miss,
// and every miss inserts exactly one entry.
func TestExploreSpecCacheHits(t *testing.T) {
	res := Explore(queueSpec(), checker.Config{}, cacheProg)
	if !res.Exhausted {
		t.Fatalf("not exhausted: %v", res)
	}
	s := res.Stats
	if s.SpecCacheHits == 0 {
		t.Error("expected spec-cache hits on a program with noise-only nondeterminism")
	}
	if s.SpecCacheHits+s.SpecCacheMisses != res.Feasible {
		t.Errorf("hits %d + misses %d != feasible %d", s.SpecCacheHits, s.SpecCacheMisses, res.Feasible)
	}
	if s.SpecCacheEntries != s.SpecCacheMisses {
		t.Errorf("entries %d != misses %d (every miss must insert exactly one entry)",
			s.SpecCacheEntries, s.SpecCacheMisses)
	}
}

// TestExploreCacheDisabledZeroCounters: DisableCheckCache really turns
// the cache off.
func TestExploreCacheDisabledZeroCounters(t *testing.T) {
	spec := queueSpec()
	spec.DisableCheckCache = true
	res := Explore(spec, checker.Config{}, cacheProg)
	s := res.Stats
	if s.SpecCacheHits != 0 || s.SpecCacheMisses != 0 || s.SpecCacheEntries != 0 {
		t.Errorf("disabled cache left counters nonzero: hits=%d misses=%d entries=%d",
			s.SpecCacheHits, s.SpecCacheMisses, s.SpecCacheEntries)
	}
}

// TestExploreCacheTransparency: a cached run must be observationally
// identical to an uncached one — same counts, same spec counters, and
// the same failures at the same execution indices (the cached-failure
// copies must be re-stamped per execution, not reused).
func TestExploreCacheTransparency(t *testing.T) {
	for _, prog := range []struct {
		name string
		fn   func(*checker.Thread)
	}{{"clean", cacheProg}, {"buggy", buggyCacheProg}} {
		on := Explore(queueSpec(), checker.Config{MaxFailures: 1 << 20}, prog.fn)
		off := Explore(func() *Spec { s := queueSpec(); s.DisableCheckCache = true; return s }(),
			checker.Config{MaxFailures: 1 << 20}, prog.fn)
		if on.Executions != off.Executions || on.Feasible != off.Feasible ||
			on.Pruned != off.Pruned || on.FailureCount != off.FailureCount {
			t.Errorf("%s: counts differ: cached %v, uncached %v", prog.name, on, off)
		}
		a, b := on.Stats.WithoutTimings(), off.Stats.WithoutTimings()
		a.SpecCacheHits, a.SpecCacheMisses, a.SpecCacheEntries = 0, 0, 0
		if a != b {
			t.Errorf("%s: non-cache stats differ:\n  cached:   %+v\n  uncached: %+v", prog.name, a, b)
		}
		if len(on.Failures) != len(off.Failures) {
			t.Fatalf("%s: retained failures differ: %d vs %d", prog.name, len(on.Failures), len(off.Failures))
		}
		for i := range on.Failures {
			fa, fb := on.Failures[i], off.Failures[i]
			if fa.Kind != fb.Kind || fa.Execution != fb.Execution || fa.Msg != fb.Msg {
				t.Errorf("%s: failure %d differs: cached %v@%d, uncached %v@%d",
					prog.name, i, fa.Kind, fa.Execution, fb.Kind, fb.Execution)
			}
		}
	}
}

// TestExploreCacheSeqParIdentity: exhaustive sequential and parallel
// explorations must agree on every Stats counter including the cache
// fields — the shard design exists precisely for this property.
func TestExploreCacheSeqParIdentity(t *testing.T) {
	for _, prog := range []struct {
		name string
		fn   func(*checker.Thread)
	}{{"clean", cacheProg}, {"buggy", buggyCacheProg}} {
		seq := Explore(queueSpec(), checker.Config{MaxFailures: 1 << 20}, prog.fn)
		par := Explore(queueSpec(), checker.Config{MaxFailures: 1 << 20, Parallelism: 4}, prog.fn)
		if seq.Stats.WithoutTimings() != par.Stats.WithoutTimings() {
			t.Errorf("%s: stats differ:\n  sequential: %+v\n  parallel:   %+v",
				prog.name, seq.Stats.WithoutTimings(), par.Stats.WithoutTimings())
		}
		if seq.Stats.SpecCacheHits == 0 {
			t.Errorf("%s: expected nonzero cache hits", prog.name)
		}
	}
}

// fingerprintOf runs the fingerprint pipeline over a fabricated call set.
func fingerprintOf(t *testing.T, calls []*Call) (string, uint64) {
	t.Helper()
	sc := &checkScratch{}
	r := buildOrderScratch(calls, sc)
	return fingerprint(sc, calls, r)
}

// TestFingerprintDistinguishesContent: executions differing in any
// spec-relevant dimension — return value, argument, aux value, or the
// ~r~ relation — must fingerprint differently; identical ones must
// collide exactly.
func TestFingerprintDistinguishesContent(t *testing.T) {
	base := func() []*Call {
		opE := fabricate(0, 1, -1)
		opD := fabricate(1, 1, -1)
		cE := makeCall(0, "enq", 0, opE)
		cE.Args = []memmodel.Value{1}
		cD := makeCall(1, "deq", empty, opD)
		return []*Call{cE, cD}
	}
	k0, h0 := fingerprintOf(t, base())
	k1, h1 := fingerprintOf(t, base())
	if k0 != k1 || h0 != h1 {
		t.Error("identical executions must share fingerprint and hash")
	}

	ret := base()
	ret[1].Ret = 1
	if k, _ := fingerprintOf(t, ret); k == k0 {
		t.Error("different return value, same fingerprint")
	}

	arg := base()
	arg[0].Args = []memmodel.Value{2}
	if k, _ := fingerprintOf(t, arg); k == k0 {
		t.Error("different argument, same fingerprint")
	}

	aux := base()
	aux[0].SetAux("k", 5)
	if k, _ := fingerprintOf(t, aux); k == k0 {
		t.Error("different aux, same fingerprint")
	}

	// Same calls, but the deq's ordering point now observes the enq's:
	// ~r~ gains an edge, nothing else changes.
	opE := fabricate(0, 1, -1)
	opD := fabricate(1, 1, -1, opE)
	cE := makeCall(0, "enq", 0, opE)
	cE.Args = []memmodel.Value{1}
	cD := makeCall(1, "deq", empty, opD)
	if k, _ := fingerprintOf(t, []*Call{cE, cD}); k == k0 {
		t.Error("different ~r~, same fingerprint")
	}
}

// TestCheckMemoHitIsolation: a hit returns failures that are fresh copies
// — the explorer stamps Failure.Execution on what a check returns, and a
// stamp on one execution's failures must not leak into later equivalent
// executions or into the cached master copy.
func TestCheckMemoHitIsolation(t *testing.T) {
	mk := func() *Monitor {
		opE := fabricate(0, 1, -1)
		opD := fabricate(0, 2, -1, opE)
		cE := makeCall(0, "enq", 0, opE)
		cE.Args = []memmodel.Value{1}
		cD := makeCall(1, "deq", 2, opD) // wrong value: check fails
		return &Monitor{spec: queueSpec(), calls: []*Call{cE, cD}, active: map[int]*Call{}, depth: map[int]int{}}
	}
	cc := newCheckCache()
	r1, rep1 := mk().checkMemo(cc)
	if rep1.CacheMisses != 1 || rep1.CacheHits != 0 {
		t.Fatalf("first check should miss: %+v", rep1)
	}
	if len(r1.Failures) == 0 {
		t.Fatal("expected a failure")
	}
	r1.Failures[0].Execution = 7 // what runOne does

	r2, rep2 := mk().checkMemo(cc)
	if rep2.CacheHits != 1 || rep2.CacheMisses != 0 || rep2.CacheEntries != 0 {
		t.Fatalf("second check should hit: %+v", rep2)
	}
	if len(r2.Failures) != len(r1.Failures) {
		t.Fatalf("hit returned %d failures, want %d", len(r2.Failures), len(r1.Failures))
	}
	if r2.Failures[0] == r1.Failures[0] {
		t.Error("hit returned the same *Failure as the earlier execution")
	}
	if r2.Failures[0].Execution != 0 {
		t.Errorf("hit's failure carries a stale execution stamp %d", r2.Failures[0].Execution)
	}
	// The hit replays the miss's spec counters.
	if rep2.Histories != rep1.Histories || rep2.AdmissibilityChecks != rep1.AdmissibilityChecks ||
		rep2.JustifySearches != rep1.JustifySearches {
		t.Errorf("hit did not replay counters: miss %+v, hit %+v", rep1, rep2)
	}
}

// TestOrderedNonDenseIDs: ordered() must work on call lists whose IDs are
// not dense positions. The old implementation indexed the reachability
// matrix by Call.ID and either panicked or silently aliased rows here.
func TestOrderedNonDenseIDs(t *testing.T) {
	opA := fabricate(0, 1, -1)
	opB := fabricate(0, 2, -1, opA)
	opC := fabricate(1, 1, -1)
	ca := makeCall(5, "m", 0, opA)
	cb := makeCall(2, "m", 0, opB)
	cc := makeCall(9, "m", 0, opC)
	r := buildOrder([]*Call{ca, cb, cc})
	if !r.ordered(ca, cb) || r.ordered(cb, ca) {
		t.Error("hb-ordered calls with sparse IDs not ordered correctly")
	}
	if r.ordered(ca, cc) || r.ordered(cc, ca) || r.ordered(cb, cc) || r.ordered(cc, cb) {
		t.Error("concurrent calls with sparse IDs spuriously ordered")
	}
	if got := r.predecessors(cb); len(got) != 1 || got[0] != ca {
		t.Errorf("predecessors with sparse IDs = %v, want [ca]", got)
	}
}

// TestSamplerSeedVariesWithReach: two executions with equal call counts
// but different ~r~ fingerprint differently, so their sampler seeds
// differ. The old derivation (base + call count) collapsed them onto one
// seed, silently sampling the same histories for every same-sized
// execution of a run.
func TestSamplerSeedVariesWithReach(t *testing.T) {
	// Unordered pair.
	opE1 := fabricate(0, 1, -1)
	opD1 := fabricate(1, 1, -1)
	a := []*Call{makeCall(0, "enq", 0, opE1), makeCall(1, "deq", empty, opD1)}
	a[0].Args = []memmodel.Value{1}
	// Same calls, ordered pair.
	opE2 := fabricate(0, 1, -1)
	opD2 := fabricate(1, 1, -1, opE2)
	b := []*Call{makeCall(0, "enq", 0, opE2), makeCall(1, "deq", empty, opD2)}
	b[0].Args = []memmodel.Value{1}

	_, ha := fingerprintOf(t, a)
	_, hb := fingerprintOf(t, b)
	if ha == hb {
		t.Fatal("different ~r~ must hash differently")
	}
	const base = 12345
	if samplerSeed(base, ha) == samplerSeed(base, hb) {
		t.Error("equal-count executions with different ~r~ got the same sampler seed")
	}
	if samplerSeed(base, ha) != samplerSeed(base, ha) {
		t.Error("sampler seed must be deterministic")
	}
}

// samplingRecorderSpec is a spec whose method "m" records the order in
// which calls execute within each checked history into *got.
func samplingRecorderSpec(got *[][]int) *Spec {
	return &Spec{
		Name:     "rec",
		NewState: func() State { h := []int{}; return &h },
		Methods: map[string]*MethodSpec{
			"m": {
				SideEffect: func(st State, c *Call) {
					h := st.(*[]int)
					*h = append(*h, c.ID)
				},
				Post: func(st State, c *Call) bool {
					h := st.(*[]int)
					if len(*h) == 4 {
						*got = append(*got, append([]int(nil), (*h)...))
					}
					return true
				},
			},
		},
		SampleHistories: 3,
		SampleSeed:      42,
	}
}

// concurrentMs builds four mutually concurrent "m" calls whose args carry
// the execution tag — equal call counts, equal ~r~, different content.
func concurrentMs(tag int) []*Call {
	var calls []*Call
	for i := 0; i < 4; i++ {
		op := fabricate(i, 1, -1)
		c := makeCall(i, "m", 0, op)
		c.Args = []memmodel.Value{memmodel.Value(tag)}
		calls = append(calls, c)
	}
	return calls
}

// TestSampledHistoriesVaryAcrossExecutions is the regression for the
// sampler-seed collapse: two executions with the same call count (the old
// seed's only entropy) must not draw the same history sample when their
// content differs. Against the old base+len(calls) derivation both
// executions drew byte-identical samples and this test fails.
func TestSampledHistoriesVaryAcrossExecutions(t *testing.T) {
	sample := func(tag int) [][]int {
		var got [][]int
		spec := samplingRecorderSpec(&got)
		res := checkCalls(spec, concurrentMs(tag))
		if len(res.Failures) != 0 {
			t.Fatalf("recorder spec failed: %v", res.Failures[0])
		}
		if res.Histories != 3 {
			t.Fatalf("Histories = %d, want 3", res.Histories)
		}
		return got
	}
	s1 := sample(1)
	s2 := sample(2)
	if fmt.Sprint(s1) == fmt.Sprint(s2) {
		t.Errorf("executions with different content sampled identical history sets: %v", s1)
	}
	// Determinism: the same execution always draws the same sample.
	if fmt.Sprint(sample(1)) != fmt.Sprint(s1) {
		t.Error("sampling is not deterministic for identical executions")
	}
}

// TestSamplingNeverSetsHistoriesCapped pins the contract that sampling
// specs — incomplete by design — never report HistoriesCapped, even when
// the sample budget exceeds the exhaustive cap that would have tripped
// it.
func TestSamplingNeverSetsHistoriesCapped(t *testing.T) {
	var got [][]int
	spec := samplingRecorderSpec(&got)
	spec.SampleHistories = 50
	spec.MaxHistories = 1 // would truncate an exhaustive enumeration instantly
	res := checkCalls(spec, concurrentMs(0))
	if res.HistoriesCapped {
		t.Error("sampling spec set HistoriesCapped")
	}
	if res.Histories != 50 {
		t.Errorf("Histories = %d, want 50", res.Histories)
	}
}

// TestSeededBugNeedsVariedSamples: a bug that only one of the 24
// possible histories exposes, checked with SampleHistories=1. Detection
// requires different executions to draw different histories; the test
// first proves the old derivation's single shared draw misses the bug,
// then that the content-derived seeds find it across a handful of
// executions.
func TestSeededBugNeedsVariedSamples(t *testing.T) {
	const seed = 3
	bad := []int{3, 2, 1, 0} // the one history that trips the bug
	buggySpec := func(hit *bool) *Spec {
		return &Spec{
			Name:     "seeded",
			NewState: func() State { h := []int{}; return &h },
			Methods: map[string]*MethodSpec{
				"m": {
					SideEffect: func(st State, c *Call) {
						h := st.(*[]int)
						*h = append(*h, c.ID)
					},
					Post: func(st State, c *Call) bool {
						h := st.(*[]int)
						if len(*h) == 4 && fmt.Sprint(*h) == fmt.Sprint(bad) {
							*hit = true
							return false
						}
						return true
					},
				},
			},
			SampleHistories: 1,
			SampleSeed:      seed,
		}
	}

	// The old derivation seeds every 4-call execution with seed+4 and
	// therefore draws one fixed history for all of them. Show that this
	// single shared draw is not the buggy one — so the old sampler would
	// have missed the bug no matter how many executions ran.
	calls := concurrentMs(0)
	sc := &checkScratch{}
	r := buildOrderScratch(calls, sc)
	edge := func(a, b *Call) bool { return r.ordered(a, b) }
	oldRng := rand.New(rand.NewSource(seed + int64(len(calls))))
	oldDraw := randomTopoSort(calls, edge, oldRng, sc)
	var oldIDs []int
	for _, c := range oldDraw {
		oldIDs = append(oldIDs, c.ID)
	}
	if fmt.Sprint(oldIDs) == fmt.Sprint(bad) {
		t.Fatalf("test setup: the old shared draw %v accidentally hits the bug; pick another seed", oldIDs)
	}

	// The fixed derivation varies the draw with execution content, so a
	// modest batch of distinct executions covers the buggy history.
	detected := false
	for tag := 0; tag < 30 && !detected; tag++ {
		var hit bool
		res := checkCalls(buggySpec(&hit), concurrentMs(tag))
		if hit != (len(res.Failures) != 0) {
			t.Fatalf("tag %d: hit=%v but failures=%d", tag, hit, len(res.Failures))
		}
		detected = detected || hit
	}
	if !detected {
		t.Error("content-derived sampler seeds never drew the buggy history in 30 executions")
	}
}

// BenchmarkSpecCacheOn/Off measure the end-to-end exploration win of the
// memoized spec check on the cache-friendly program.
func BenchmarkSpecCacheOn(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Explore(queueSpec(), checker.Config{}, cacheProg)
	}
}

func BenchmarkSpecCacheOff(b *testing.B) {
	spec := queueSpec()
	spec.DisableCheckCache = true
	for i := 0; i < b.N; i++ {
		Explore(spec, checker.Config{}, cacheProg)
	}
}
