package core

import (
	"testing"

	"repro/internal/checker"
	"repro/internal/memmodel"
)

// runOnce executes prog under the checker a single time with a monitor
// installed and returns the recorded calls.
func runOnce(t *testing.T, spec *Spec, prog func(*checker.Thread)) []*Call {
	t.Helper()
	var calls []*Call
	cfg := checker.Config{
		MaxExecutions: 1,
		OnRunStart:    func(sys *checker.System) { Install(sys, spec) },
		OnExecution: func(sys *checker.System) []*checker.Failure {
			calls = FromSys(sys).Calls()
			return nil
		},
	}
	res := checker.Explore(cfg, prog)
	if res.Feasible == 0 {
		t.Fatalf("no feasible execution: %v", res)
	}
	return calls
}

func trivialSpec() *Spec {
	return &Spec{
		Name:     "t",
		NewState: func() State { return nil },
		Methods: map[string]*MethodSpec{
			"m": {}, "n": {},
		},
	}
}

// TestBeginEndRecordsCall: method boundaries capture thread, args, and
// return value.
func TestBeginEndRecordsCall(t *testing.T) {
	calls := runOnce(t, trivialSpec(), func(root *checker.Thread) {
		mon := Of(root)
		c := mon.Begin(root, "m", 3, 4)
		c.End(root, 7)
	})
	if len(calls) != 1 {
		t.Fatalf("expected 1 call, got %d", len(calls))
	}
	c := calls[0]
	if c.Name != "m" || c.Arg(0) != 3 || c.Arg(1) != 4 || !c.HasRet || c.Ret != 7 {
		t.Errorf("call mis-recorded: %s", c)
	}
	if c.Thread != 0 {
		t.Errorf("thread = %d, want 0", c.Thread)
	}
}

// TestNestedCallsUseOutermost: per §4.3, only the outermost API call is
// recorded; inner Begin/End pairs are inert.
func TestNestedCallsUseOutermost(t *testing.T) {
	calls := runOnce(t, trivialSpec(), func(root *checker.Thread) {
		mon := Of(root)
		outer := mon.Begin(root, "m")
		inner := mon.Begin(root, "n") // nested: must not be recorded
		inner.End(root, 1)
		outer.End(root, 2)
	})
	if len(calls) != 1 || calls[0].Name != "m" || calls[0].Ret != 2 {
		t.Fatalf("nested call handling wrong: %v", calls)
	}
}

// TestOPDefineCapturesPrecedingAction: the ordering point is the atomic
// operation immediately before the annotation.
func TestOPDefineCapturesPrecedingAction(t *testing.T) {
	calls := runOnce(t, trivialSpec(), func(root *checker.Thread) {
		mon := Of(root)
		x := root.NewAtomicInit("x", 0)
		c := mon.Begin(root, "m")
		x.Store(root, memmodel.Release, 5)
		c.OPDefine(root, true)
		c.EndVoid(root)
	})
	c := calls[0]
	if len(c.OPs) != 1 {
		t.Fatalf("expected 1 OP, got %d", len(c.OPs))
	}
	if c.OPs[0].Kind != memmodel.KindAtomicStore || c.OPs[0].Value != 5 {
		t.Errorf("wrong OP action: %v", c.OPs[0])
	}
}

// TestOPDefineConditionFalse: a false condition records nothing.
func TestOPDefineConditionFalse(t *testing.T) {
	calls := runOnce(t, trivialSpec(), func(root *checker.Thread) {
		mon := Of(root)
		x := root.NewAtomicInit("x", 0)
		c := mon.Begin(root, "m")
		x.Store(root, memmodel.Release, 5)
		c.OPDefine(root, false)
		c.EndVoid(root)
	})
	if len(calls[0].OPs) != 0 {
		t.Errorf("false condition recorded an OP")
	}
}

// TestOPClearDefineKeepsLastIteration: the loop idiom — only the final
// iteration's operation remains.
func TestOPClearDefineKeepsLastIteration(t *testing.T) {
	calls := runOnce(t, trivialSpec(), func(root *checker.Thread) {
		mon := Of(root)
		x := root.NewAtomicInit("x", 0)
		c := mon.Begin(root, "m")
		for i := 0; i < 3; i++ {
			x.Store(root, memmodel.Relaxed, memmodel.Value(i))
			c.OPClearDefine(root, true)
		}
		c.EndVoid(root)
	})
	c := calls[0]
	if len(c.OPs) != 1 || c.OPs[0].Value != 2 {
		t.Fatalf("OPClearDefine should keep only the last iteration: %v", c.OPs)
	}
}

// TestPotentialOPPromotion: a PotentialOP is inert until an OPCheck with
// the matching label promotes it (§4.2).
func TestPotentialOPPromotion(t *testing.T) {
	calls := runOnce(t, trivialSpec(), func(root *checker.Thread) {
		mon := Of(root)
		x := root.NewAtomicInit("x", 0)
		c := mon.Begin(root, "m")
		x.Store(root, memmodel.Relaxed, 1)
		c.PotentialOP(root, "A", true)
		x.Store(root, memmodel.Relaxed, 2)
		c.PotentialOP(root, "B", true)
		c.OPCheck(root, "A", true)
		c.EndVoid(root)
	})
	c := calls[0]
	if len(c.OPs) != 1 || c.OPs[0].Value != 1 {
		t.Fatalf("OPCheck(A) should promote only the A potential: %v", c.OPs)
	}
	if len(c.potentials) != 1 || c.potentials[0].label != "B" {
		t.Fatalf("unpromoted potentials should remain: %v", c.potentials)
	}
}

// TestOPCheckConditionFalse: a false OPCheck promotes nothing.
func TestOPCheckConditionFalse(t *testing.T) {
	calls := runOnce(t, trivialSpec(), func(root *checker.Thread) {
		mon := Of(root)
		x := root.NewAtomicInit("x", 0)
		c := mon.Begin(root, "m")
		x.Store(root, memmodel.Relaxed, 1)
		c.PotentialOP(root, "A", true)
		c.OPCheck(root, "A", false)
		c.EndVoid(root)
	})
	if len(calls[0].OPs) != 0 {
		t.Error("false OPCheck promoted a potential OP")
	}
}

// TestOPClearRemovesPotentials: OPClear drops pending potentials too.
func TestOPClearRemovesPotentials(t *testing.T) {
	calls := runOnce(t, trivialSpec(), func(root *checker.Thread) {
		mon := Of(root)
		x := root.NewAtomicInit("x", 0)
		c := mon.Begin(root, "m")
		x.Store(root, memmodel.Relaxed, 1)
		c.PotentialOP(root, "A", true)
		c.OPClear(root, true)
		c.OPCheck(root, "A", true) // nothing left to promote
		c.EndVoid(root)
	})
	if len(calls[0].OPs) != 0 {
		t.Error("OPClear did not remove potentials")
	}
}

// TestNilMonitorIsInert: instrumented structures run fine without an
// installed monitor (production mode — the paper's same-source property).
func TestNilMonitorIsInert(t *testing.T) {
	res := checker.Explore(checker.Config{MaxExecutions: 1}, func(root *checker.Thread) {
		mon := Of(root) // nil: nothing installed
		c := mon.Begin(root, "m", 1)
		c.OPDefine(root, true)
		c.SetAux("k", 2)
		c.End(root, 3)
	})
	if res.FailureCount != 0 {
		t.Fatalf("nil monitor should be inert: %v", res.FirstFailure())
	}
}

// TestUnendedCallCaught: a Begin without End is flagged by Check.
func TestUnendedCallCaught(t *testing.T) {
	spec := trivialSpec()
	var fails []*checker.Failure
	cfg := checker.Config{
		MaxExecutions: 1,
		OnRunStart:    func(sys *checker.System) { Install(sys, spec) },
		OnExecution: func(sys *checker.System) []*checker.Failure {
			fails = FromSys(sys).Check().Failures
			return nil
		},
	}
	checker.Explore(cfg, func(root *checker.Thread) {
		mon := Of(root)
		mon.Begin(root, "m") // never ended
	})
	if len(fails) == 0 {
		t.Error("unended call not reported")
	}
}

// TestSetAuxThroughCtx: aux values set via the context reach the call.
func TestSetAuxThroughCtx(t *testing.T) {
	calls := runOnce(t, trivialSpec(), func(root *checker.Thread) {
		mon := Of(root)
		c := mon.Begin(root, "m")
		c.SetAux("extra", 99)
		c.EndVoid(root)
	})
	if calls[0].GetAux("extra") != 99 {
		t.Errorf("aux = %d, want 99", calls[0].GetAux("extra"))
	}
}

// TestCrossThreadOPOrdering: ordering points in different threads with a
// release/acquire edge order the calls end to end through the pipeline.
func TestCrossThreadOPOrdering(t *testing.T) {
	type obs struct{ ordered, reverse bool }
	var seen obs
	spec := trivialSpec()
	cfg := checker.Config{
		OnRunStart: func(sys *checker.System) { Install(sys, spec) },
		OnExecution: func(sys *checker.System) []*checker.Failure {
			calls := FromSys(sys).Calls()
			if len(calls) == 2 {
				r := buildOrder(calls)
				if r.ordered(calls[0], calls[1]) {
					seen.ordered = true
				}
				if r.ordered(calls[1], calls[0]) {
					seen.reverse = true
				}
			}
			return nil
		},
	}
	res := checker.Explore(cfg, func(root *checker.Thread) {
		mon := Of(root)
		x := root.NewAtomicInit("x", 0)
		a := root.Spawn("a", func(tt *checker.Thread) {
			c := mon.Begin(tt, "m")
			x.Store(tt, memmodel.Release, 1)
			c.OPDefine(tt, true)
			c.EndVoid(tt)
		})
		b := root.Spawn("b", func(tt *checker.Thread) {
			c := mon.Begin(tt, "n")
			v := x.Load(tt, memmodel.Acquire)
			c.OPDefine(tt, true)
			c.End(tt, v)
		})
		root.Join(a)
		root.Join(b)
	})
	if !res.Exhausted {
		t.Fatalf("not exhausted: %v", res)
	}
	if !seen.ordered {
		t.Error("never saw the store-before-load ordering (rf edge should order the calls)")
	}
	if seen.reverse {
		t.Error("saw a bogus reverse ordering (a load cannot happen-before the store it reads)")
	}
}
