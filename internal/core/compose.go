package core

import "fmt"

// composedState is the state of a composed specification: one sub-state
// per component spec, keyed by spec name.
type composedState map[string]State

// Compose builds the composition S_A ⊗ S_B ⊗ ... of Definition 8: each
// component's sequential data structure applies to its own methods, and
// pairs of calls on different components are never required to be ordered
// (admissibility case 3).
//
// Method names must be disjoint across components; give instances
// distinct prefixes (e.g. "x.enq", "y.enq") when composing two objects of
// the same type. Compose panics on a name collision — that is a test
// authoring error, not a runtime condition.
func Compose(specs ...*Spec) *Spec {
	out := &Spec{
		Name:    "compose",
		Methods: map[string]*MethodSpec{},
	}
	maxHist, maxSub := 0, 0
	for _, s := range specs {
		out.Name += "+" + s.Name
		if s.MaxHistories != 0 {
			maxHist = s.MaxHistories
		}
		if s.MaxSubhistories != 0 {
			maxSub = s.MaxSubhistories
		}
		for name, md := range s.Methods {
			if _, dup := out.Methods[name]; dup {
				panic(fmt.Sprintf("core.Compose: duplicate method name %q", name))
			}
			out.Methods[name] = wrapMethod(s.Name, md)
		}
		out.Admissibility = append(out.Admissibility, s.Admissibility...)
	}
	out.MaxHistories = maxHist
	out.MaxSubhistories = maxSub
	specsCopy := append([]*Spec(nil), specs...)
	out.NewState = func() State {
		st := composedState{}
		for _, s := range specsCopy {
			st[s.Name] = s.NewState()
		}
		return st
	}
	return out
}

// wrapMethod rebinds a method spec to extract its component's sub-state
// from the composed state.
func wrapMethod(specName string, md *MethodSpec) *MethodSpec {
	sub := func(st State) State { return st.(composedState)[specName] }
	out := &MethodSpec{
		NeedsJustify:      md.NeedsJustify,
		JustifyConcurrent: md.JustifyConcurrent,
	}
	if md.SideEffect != nil {
		f := md.SideEffect
		out.SideEffect = func(st State, c *Call) { f(sub(st), c) }
	}
	if md.Pre != nil {
		f := md.Pre
		out.Pre = func(st State, c *Call) bool { return f(sub(st), c) }
	}
	if md.Post != nil {
		f := md.Post
		out.Post = func(st State, c *Call) bool { return f(sub(st), c) }
	}
	if md.JustifyPre != nil {
		f := md.JustifyPre
		out.JustifyPre = func(st State, c *Call, conc []*Call) bool { return f(sub(st), c, conc) }
	}
	if md.JustifyPost != nil {
		f := md.JustifyPost
		out.JustifyPost = func(st State, c *Call, conc []*Call) bool { return f(sub(st), c, conc) }
	}
	return out
}
