package core

import "sort"

// This file implements the checker's reduction-layer hooks on Monitor
// (checker.AuxFingerprinter and checker.AuxMutTracker, matched
// structurally — the checker never imports this package). The
// execution-equivalence reduction may only merge two exploration prefixes
// when their *entire* observable state matches, and the monitor's call
// record is part of that state: call IDs are assigned in global begin
// order, so two prefixes that interleaved spec calls differently must
// hash differently. Likewise the spinloop reduction may only call an
// iteration pure if the spinning thread performed no spec-layer mutation
// in it, which the per-thread mutation counter witnesses.

// reduceMix is the splitmix64 finalizer (mirrors the checker's mix64).
func reduceMix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// reducePair is a two-lane order-sensitive hash stream (mirrors the
// checker's fpPair; two lanes make accidental collisions — which would
// cause an unsound prune — a 128-bit event).
type reducePair struct{ a, b uint64 }

func (p *reducePair) push(w uint64) {
	p.a = reduceMix(p.a ^ reduceMix(w^0x9e3779b97f4a7c15))
	p.b = reduceMix(p.b ^ reduceMix(w^0xc2b2ae3d27d4eb4f))
}

func (p *reducePair) pushString(s string) {
	p.push(uint64(len(s)))
	for i := 0; i < len(s); i += 8 {
		var w uint64
		for j := i; j < len(s) && j < i+8; j++ {
			w = w<<8 | uint64(s[j])
		}
		p.push(w)
	}
}

func reduceBool(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// ReduceFingerprint hashes the monitor's full recorded state — every
// call in begin order with identity, arguments, return, ordering points,
// pending potentials, aux values, and open/closed status, plus the
// per-thread nesting depths. It implements checker.AuxFingerprinter.
//
// Thread identity is the raw tid (the same identity the spec-check
// fingerprint in cache.go serializes), not the checker's canonical id:
// once spec calls exist, states that differ only by a symmetric-thread
// renaming therefore do not rf-merge — a deliberate loss of reduction
// that keeps the merged states' spec fingerprints byte-identical.
// Ordering points are identified by (thread, per-thread sequence
// number), which replay reproduces exactly; trace IDs are not used (they
// shift with unrelated interleaving).
func (m *Monitor) ReduceFingerprint() (uint64, uint64) {
	var p reducePair
	p.push(uint64(len(m.calls)))
	for _, c := range m.calls {
		p.push(uint64(c.ID))
		p.push(uint64(c.Thread))
		p.pushString(c.Name)
		p.push(uint64(len(c.Args)))
		for _, a := range c.Args {
			p.push(uint64(a))
		}
		p.push(reduceBool(c.HasRet))
		p.push(uint64(c.Ret))
		p.push(reduceBool(c.ended))
		p.push(uint64(len(c.OPs)))
		for _, a := range c.OPs {
			p.push(uint64(a.Thread))
			p.push(uint64(a.TSeq))
		}
		p.push(uint64(len(c.potentials)))
		for _, pot := range c.potentials {
			p.pushString(pot.label)
			p.push(uint64(pot.act.Thread))
			p.push(uint64(pot.act.TSeq))
		}
		p.push(uint64(len(c.Aux)))
		if len(c.Aux) > 0 {
			keys := make([]string, 0, len(c.Aux))
			for k := range c.Aux {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				p.pushString(k)
				p.push(uint64(c.Aux[k]))
			}
		}
	}
	// Nesting depths fold commutatively (map iteration order must not
	// leak); zero depths are absent-equivalent and skipped.
	var da, db uint64
	for tid, d := range m.depth {
		if d == 0 {
			continue
		}
		e := reducePair{}
		e.push(uint64(tid))
		e.push(uint64(d))
		da += e.a
		db += e.b
	}
	p.push(da)
	p.push(db)
	return p.a, p.b
}

// ReduceThreadMuts reports how many spec-layer mutations thread tid has
// performed (checker.AuxMutTracker). The counter is per-thread — other
// threads' spec calls while one thread spins must not spoil that
// thread's iteration purity — and bumps on every monitor mutator:
// Begin/End (including nested pairs, conservatively), SetAux, and the
// ordering-point annotations.
func (m *Monitor) ReduceThreadMuts(tid int) uint64 {
	return m.muts[tid]
}

// mut bumps tid's spec-mutation counter.
func (m *Monitor) mut(tid int) {
	if m.muts == nil {
		m.muts = map[int]uint64{}
	}
	m.muts[tid]++
}
