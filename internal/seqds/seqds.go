// Package seqds provides the equivalent sequential data structures that
// CDSSpec specifications declare as their internal state — the paper's
// pre-defined types: an ordered list, a set, and a hashmap (§4.1), plus
// small sequential lock states used by the lock benchmarks.
//
// These are deliberately plain, obviously-correct implementations: the
// whole point of the methodology is that the sequential equivalent is
// simple enough to trust.
package seqds

import "repro/internal/memmodel"

// Value is the element type, matching the checker's word type.
type Value = memmodel.Value

// IntList is an ordered list of values (the paper's pre-defined ordered
// list, used as the sequential FIFO queue and deque).
type IntList struct {
	items []Value
}

// NewIntList returns an empty list.
func NewIntList() *IntList { return &IntList{} }

// Len returns the number of elements.
func (l *IntList) Len() int { return len(l.items) }

// Empty reports whether the list has no elements.
func (l *IntList) Empty() bool { return len(l.items) == 0 }

// PushBack appends v.
func (l *IntList) PushBack(v Value) { l.items = append(l.items, v) }

// PushFront prepends v.
func (l *IntList) PushFront(v Value) {
	l.items = append([]Value{v}, l.items...)
}

// Front returns the first element; ok is false when empty.
func (l *IntList) Front() (Value, bool) {
	if len(l.items) == 0 {
		return 0, false
	}
	return l.items[0], true
}

// Back returns the last element; ok is false when empty.
func (l *IntList) Back() (Value, bool) {
	if len(l.items) == 0 {
		return 0, false
	}
	return l.items[len(l.items)-1], true
}

// PopFront removes and returns the first element.
func (l *IntList) PopFront() (Value, bool) {
	if len(l.items) == 0 {
		return 0, false
	}
	v := l.items[0]
	l.items = l.items[1:]
	return v, true
}

// PopBack removes and returns the last element.
func (l *IntList) PopBack() (Value, bool) {
	if len(l.items) == 0 {
		return 0, false
	}
	v := l.items[len(l.items)-1]
	l.items = l.items[:len(l.items)-1]
	return v, true
}

// Contains reports whether v occurs in the list.
func (l *IntList) Contains(v Value) bool {
	for _, x := range l.items {
		if x == v {
			return true
		}
	}
	return false
}

// Remove deletes the first occurrence of v, reporting whether it did.
func (l *IntList) Remove(v Value) bool {
	for i, x := range l.items {
		if x == v {
			l.items = append(l.items[:i], l.items[i+1:]...)
			return true
		}
	}
	return false
}

// Items returns a copy of the elements in order.
func (l *IntList) Items() []Value {
	return append([]Value(nil), l.items...)
}

// IntSet is an unordered set of values.
type IntSet struct {
	m map[Value]struct{}
}

// NewIntSet returns an empty set.
func NewIntSet() *IntSet { return &IntSet{m: map[Value]struct{}{}} }

// Len returns the number of elements.
func (s *IntSet) Len() int { return len(s.m) }

// Add inserts v, reporting whether it was absent.
func (s *IntSet) Add(v Value) bool {
	if _, ok := s.m[v]; ok {
		return false
	}
	s.m[v] = struct{}{}
	return true
}

// Remove deletes v, reporting whether it was present.
func (s *IntSet) Remove(v Value) bool {
	if _, ok := s.m[v]; !ok {
		return false
	}
	delete(s.m, v)
	return true
}

// Contains reports membership.
func (s *IntSet) Contains(v Value) bool {
	_, ok := s.m[v]
	return ok
}

// IntMap is a hashmap from values to values (the paper's pre-defined
// hashmap, used as the sequential equivalent of the concurrent
// hashtable).
type IntMap struct {
	m map[Value]Value
}

// NewIntMap returns an empty map.
func NewIntMap() *IntMap { return &IntMap{m: map[Value]Value{}} }

// Len returns the number of entries.
func (m *IntMap) Len() int { return len(m.m) }

// Put sets key to val and returns the previous value (0 if absent).
func (m *IntMap) Put(key, val Value) Value {
	old := m.m[key]
	m.m[key] = val
	return old
}

// Get returns the value for key (0 if absent) and whether it was present.
func (m *IntMap) Get(key Value) (Value, bool) {
	v, ok := m.m[key]
	return v, ok
}

// Delete removes key, reporting whether it was present.
func (m *IntMap) Delete(key Value) bool {
	if _, ok := m.m[key]; !ok {
		return false
	}
	delete(m.m, key)
	return true
}

// LockState is the sequential equivalent of a mutual-exclusion lock.
type LockState struct {
	locked bool
	owner  Value
}

// NewLockState returns an unlocked state.
func NewLockState() *LockState { return &LockState{} }

// Locked reports whether the lock is held.
func (l *LockState) Locked() bool { return l.locked }

// Owner returns the current holder (meaningful only when Locked).
func (l *LockState) Owner() Value { return l.owner }

// Acquire takes the lock; it reports false if already held (a sequential
// spec violation when it happens in a history).
func (l *LockState) Acquire(owner Value) bool {
	if l.locked {
		return false
	}
	l.locked = true
	l.owner = owner
	return true
}

// Release drops the lock; it reports false if not held by owner.
func (l *LockState) Release(owner Value) bool {
	if !l.locked || l.owner != owner {
		return false
	}
	l.locked = false
	return true
}

// RWLockState is the sequential equivalent of a reader-writer lock: a
// writer flag plus a reader count (the paper's abstraction for the Linux
// reader-writer lock, §6.1).
type RWLockState struct {
	writer  bool
	readers int
}

// NewRWLockState returns an unlocked state.
func NewRWLockState() *RWLockState { return &RWLockState{} }

// Writer reports whether the write lock is held.
func (l *RWLockState) Writer() bool { return l.writer }

// Readers returns the number of read-lock holders.
func (l *RWLockState) Readers() int { return l.readers }

// AcquireRead takes a read lock; false if a writer holds the lock.
func (l *RWLockState) AcquireRead() bool {
	if l.writer {
		return false
	}
	l.readers++
	return true
}

// ReleaseRead drops a read lock; false if none held.
func (l *RWLockState) ReleaseRead() bool {
	if l.readers == 0 {
		return false
	}
	l.readers--
	return true
}

// AcquireWrite takes the write lock; false if any holder exists.
func (l *RWLockState) AcquireWrite() bool {
	if l.writer || l.readers > 0 {
		return false
	}
	l.writer = true
	return true
}

// ReleaseWrite drops the write lock; false if not held.
func (l *RWLockState) ReleaseWrite() bool {
	if !l.writer {
		return false
	}
	l.writer = false
	return true
}

// Register is the sequential equivalent of an atomic register (§2.2):
// it remembers every write so that non-deterministic reads can be
// justified against the set of written values.
type Register struct {
	current Value
	written []Value
}

// NewRegister returns a register holding initial.
func NewRegister(initial Value) *Register {
	return &Register{current: initial, written: []Value{initial}}
}

// Write sets the current value.
func (r *Register) Write(v Value) {
	r.current = v
	r.written = append(r.written, v)
}

// Read returns the current value.
func (r *Register) Read() Value { return r.current }

// EverWritten reports whether v was ever written (including the initial
// value).
func (r *Register) EverWritten(v Value) bool {
	for _, x := range r.written {
		if x == v {
			return true
		}
	}
	return false
}
