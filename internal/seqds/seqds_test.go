package seqds

import (
	"testing"
	"testing/quick"
)

func TestIntListFIFO(t *testing.T) {
	l := NewIntList()
	if !l.Empty() {
		t.Fatal("new list not empty")
	}
	l.PushBack(1)
	l.PushBack(2)
	l.PushBack(3)
	if l.Len() != 3 {
		t.Fatalf("Len = %d, want 3", l.Len())
	}
	for _, want := range []Value{1, 2, 3} {
		got, ok := l.PopFront()
		if !ok || got != want {
			t.Fatalf("PopFront = %d,%v want %d", got, ok, want)
		}
	}
	if _, ok := l.PopFront(); ok {
		t.Fatal("PopFront on empty should fail")
	}
}

func TestIntListDeque(t *testing.T) {
	l := NewIntList()
	l.PushBack(2)
	l.PushFront(1)
	l.PushBack(3)
	if f, _ := l.Front(); f != 1 {
		t.Errorf("Front = %d, want 1", f)
	}
	if b, _ := l.Back(); b != 3 {
		t.Errorf("Back = %d, want 3", b)
	}
	v, ok := l.PopBack()
	if !ok || v != 3 {
		t.Errorf("PopBack = %d,%v", v, ok)
	}
	v, ok = l.PopFront()
	if !ok || v != 1 {
		t.Errorf("PopFront = %d,%v", v, ok)
	}
}

func TestIntListRemoveContains(t *testing.T) {
	l := NewIntList()
	l.PushBack(5)
	l.PushBack(6)
	l.PushBack(5)
	if !l.Contains(5) || l.Contains(7) {
		t.Error("Contains wrong")
	}
	if !l.Remove(5) || l.Len() != 2 {
		t.Error("Remove first occurrence failed")
	}
	if got := l.Items(); got[0] != 6 || got[1] != 5 {
		t.Errorf("Items = %v", got)
	}
	if l.Remove(7) {
		t.Error("Remove of absent value succeeded")
	}
}

// TestIntListQueueOrder (property): pushing then popping returns elements
// in insertion order.
func TestIntListQueueOrder(t *testing.T) {
	f := func(xs []Value) bool {
		l := NewIntList()
		for _, x := range xs {
			l.PushBack(x)
		}
		for _, x := range xs {
			got, ok := l.PopFront()
			if !ok || got != x {
				return false
			}
		}
		return l.Empty()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestIntListStackOrder (property): PushBack/PopBack is LIFO.
func TestIntListStackOrder(t *testing.T) {
	f := func(xs []Value) bool {
		l := NewIntList()
		for _, x := range xs {
			l.PushBack(x)
		}
		for i := len(xs) - 1; i >= 0; i-- {
			got, ok := l.PopBack()
			if !ok || got != xs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntSet(t *testing.T) {
	s := NewIntSet()
	if !s.Add(1) || s.Add(1) {
		t.Error("Add semantics wrong")
	}
	if !s.Contains(1) || s.Contains(2) {
		t.Error("Contains wrong")
	}
	if !s.Remove(1) || s.Remove(1) || s.Len() != 0 {
		t.Error("Remove semantics wrong")
	}
}

func TestIntMap(t *testing.T) {
	m := NewIntMap()
	if old := m.Put(1, 10); old != 0 {
		t.Errorf("Put returned %d for fresh key", old)
	}
	if old := m.Put(1, 20); old != 10 {
		t.Errorf("Put returned %d, want 10", old)
	}
	if v, ok := m.Get(1); !ok || v != 20 {
		t.Errorf("Get = %d,%v", v, ok)
	}
	if _, ok := m.Get(2); ok {
		t.Error("Get of absent key succeeded")
	}
	if !m.Delete(1) || m.Delete(1) {
		t.Error("Delete semantics wrong")
	}
}

// TestIntMapPutGet (property): Get returns the last Put per key.
func TestIntMapPutGet(t *testing.T) {
	f := func(ops []struct{ K, V Value }) bool {
		m := NewIntMap()
		shadow := map[Value]Value{}
		for _, op := range ops {
			m.Put(op.K, op.V)
			shadow[op.K] = op.V
		}
		for k, want := range shadow {
			got, ok := m.Get(k)
			if !ok || got != want {
				return false
			}
		}
		return m.Len() == len(shadow)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLockState(t *testing.T) {
	l := NewLockState()
	if l.Locked() {
		t.Error("new lock held")
	}
	if !l.Acquire(1) || l.Acquire(2) {
		t.Error("Acquire semantics wrong")
	}
	if l.Owner() != 1 {
		t.Errorf("Owner = %d", l.Owner())
	}
	if l.Release(2) {
		t.Error("Release by non-owner succeeded")
	}
	if !l.Release(1) || l.Locked() {
		t.Error("Release failed")
	}
	if l.Release(1) {
		t.Error("double release succeeded")
	}
}

func TestRWLockState(t *testing.T) {
	l := NewRWLockState()
	if !l.AcquireRead() || !l.AcquireRead() {
		t.Fatal("two readers should coexist")
	}
	if l.AcquireWrite() {
		t.Fatal("writer acquired with readers present")
	}
	if !l.ReleaseRead() || !l.ReleaseRead() || l.ReleaseRead() {
		t.Fatal("read release miscounted")
	}
	if !l.AcquireWrite() {
		t.Fatal("writer should acquire free lock")
	}
	if l.AcquireRead() || l.AcquireWrite() {
		t.Fatal("lock not exclusive")
	}
	if !l.ReleaseWrite() || l.ReleaseWrite() {
		t.Fatal("write release wrong")
	}
}

func TestRegister(t *testing.T) {
	r := NewRegister(0)
	if r.Read() != 0 || !r.EverWritten(0) {
		t.Error("initial value wrong")
	}
	r.Write(5)
	r.Write(9)
	if r.Read() != 9 {
		t.Errorf("Read = %d, want 9", r.Read())
	}
	if !r.EverWritten(5) || r.EverWritten(7) {
		t.Error("EverWritten wrong")
	}
}
