package checker

import (
	"fmt"
	"strings"

	"repro/internal/memmodel"
)

// chooser supplies nondeterministic decisions to a running execution.
// The explorer implements it with a replayable decision stack.
type chooser interface {
	// choose picks one of n alternatives (n >= 1) for value
	// nondeterminism ('r' reads-from, 'c' CAS outcome).
	choose(n int, kind byte) int
	// pickThread picks the next thread to run among the enabled ones.
	// A nil result prunes the execution as redundant (every enabled
	// thread is asleep under the sleep-set reduction).
	pickThread(s *System, enabled []*Thread) *Thread
	// pinnedFloor returns the recorded visibility record for the next
	// value-nondeterminism site while the chooser is re-driving a frozen
	// decision prefix: replay is deterministic, so the site reaches the
	// exact state it had when the record was taken and may skip the
	// store/load scans entirely. ok is false when the site must compute
	// fresh (and then report the result via noteFloor).
	pinnedFloor() (*floorRec, bool)
	// noteFloor records a freshly computed visibility record at the
	// current value-site position and returns a pointer the caller may
	// update with resolved-choice bookkeeping (see doCAS).
	noteFloor(rec floorRec) *floorRec
	// freshDecision reports whether the next decision would open a fresh
	// node, past any replayed prefix. The reduction layer (reduce.go)
	// checks and counts only at fresh nodes: a replayed branch point was
	// registered by its own first visit and must not re-check (it would
	// prune itself), and counting once per fresh visit keeps sequential
	// and parallel totals identical.
	freshDecision() bool
}

// floorRec is the visibility computation of one value-nondeterminism
// site (atomic load 'r', CAS 'c', RMW 'm'), pinned by the dfsChooser so
// frozen-prefix replay can reuse it. Everything in it is a function of
// the execution state at the site — never of the choice taken there —
// except the resolved* pair, which memoizes the store index the last
// taken choice mapped to (kind 'c' only; resolvedFor is -1 until set).
type floorRec struct {
	kind        byte
	floor       int
	published   bool
	n           int
	canSucceed  bool
	resolvedFor int
	resolvedIdx int
}

// System is the state of one simulated execution: threads, locations,
// the action trace, and the seq_cst bookkeeping. The explorer builds a
// fresh System per execution, or recycles one through an execPool.
type System struct {
	cfg     *Config
	chooser chooser
	// pool, when non-nil, recycles threads/locations/actions/clocks
	// across the executions of one shard (see pool.go).
	pool *execPool

	threads []*Thread
	locs    []*location
	actions []*memmodel.Action

	// scCount is the number of seq_cst actions so far (the next SC
	// index to hand out).
	scCount int
	// storeEpoch counts state changes that can wake yielded spinners.
	storeEpoch uint64
	stepCount  int

	execIndex   int
	aborted     bool
	pruned      bool
	pruneReason pruneReason
	failure     *Failure
	mutexCount  int

	// Reduction state (reduce.go): the registry of mutexes created this
	// execution (canonical identity for fingerprints and sleep
	// signatures), the thread-symmetry classes, the incremental seq_cst
	// order stream, the sleep-signature scratch buffer, and the per-run
	// reduction counters runOne folds into Stats (counted at fresh
	// decisions only, so any worker count agrees).
	mutexes       []*Mutex
	symClasses    []symClass
	fpSC          fpPair
	fpSleepBuf    []uint64
	redSpinBounds int
	redSymPrunes  int

	// schedDone is how the baton-passing scheduler returns control to
	// runExecution: scheduling decisions run inline in whichever thread
	// goroutine holds the baton (see Thread.park), and the holder whose
	// decision finds the execution over signals here exactly once.
	schedDone chan struct{}
	// draining tells an unwinding thread goroutine that reap is
	// collecting goroutines: skip the baton handoff and just signal
	// exit.
	draining bool

	// enabledBuf backs enabledThreads, reused across scheduling steps.
	enabledBuf []*Thread

	// Fast-mode state (Config.FastMode). Fast mode retains no action
	// trace: only actions alive in some store buffer are kept, recycled
	// through freeActs/freeClks when evicted, so a run's memory is O(live
	// state) instead of O(operations). scratchAct backs every non-retained
	// record() so loads/fences/locks allocate nothing per step.
	freeActs   []*memmodel.Action
	freeClks   []*memmodel.ClockVector
	scratchAct memmodel.Action
	// actionCount numbers actions in fast mode (the trace that would have
	// been); lastActID is the most recent ID for failure reports.
	actionCount int
	lastActID   int
	// evictions counts store-buffer evictions (Stats.StoreBufferEvictions).
	evictions int

	// Spec-checking statistics reported by the core layer through
	// ReportSpecStats; runOne folds them into Result.Stats.
	specReport SpecReport

	// sleep is the sleep set of the current exploration subtree.
	sleep *sleepSet

	// Aux carries per-execution state for higher layers (the CDSSpec
	// monitor installs itself here from the OnRunStart hook).
	Aux any
	// Scratch carries per-shard state created by Config.NewScratch (the
	// CDSSpec layer keeps its spec-check memoization cache here). Unlike
	// Aux it outlives the execution: every execution of one exploration
	// shard sees the same value. Only the shard's own (single) goroutine
	// touches it, so no locking is needed.
	Scratch any
}

// Actions returns the action trace of the execution so far.
func (s *System) Actions() []*memmodel.Action { return s.actions }

// Failure returns the failure that aborted the execution, if any.
func (s *System) Failure() *Failure { return s.failure }

// ExecIndex returns the 1-based index of this execution within the
// exploration.
func (s *System) ExecIndex() int { return s.execIndex }

// SpecReport carries the per-execution checking statistics the
// specification layer (which sits above this package and cannot be
// imported from it) reports from the OnExecution hook: sequential
// histories enumerated, whether the enumeration hit the history cap,
// admissibility rule pairs evaluated, justifying-subhistory searches
// run, and the spec-check memoization outcome (at most one of CacheHits/
// CacheMisses is set per check; CacheEntries counts insertions).
type SpecReport struct {
	Histories           int
	HistoriesCapped     bool
	AdmissibilityChecks int
	JustifySearches     int
	CacheHits           int
	CacheMisses         int
	CacheEntries        int
}

// ReportSpecStats accumulates one SpecReport into the execution; runOne
// folds the total into Result.Stats.
func (s *System) ReportSpecStats(r SpecReport) {
	s.specReport.Histories += r.Histories
	s.specReport.HistoriesCapped = s.specReport.HistoriesCapped || r.HistoriesCapped
	s.specReport.AdmissibilityChecks += r.AdmissibilityChecks
	s.specReport.JustifySearches += r.JustifySearches
	s.specReport.CacheHits += r.CacheHits
	s.specReport.CacheMisses += r.CacheMisses
	s.specReport.CacheEntries += r.CacheEntries
}

// pruneReason records why an execution was abandoned without a report,
// feeding the Stats.Pruned* split.
type pruneReason uint8

const (
	pruneNone      pruneReason = iota
	pruneSleepSet              // every enabled thread asleep: redundant interleaving
	pruneFairness              // spinner ignored a newer store: unfair execution
	pruneStepBound             // Config.MaxSteps exceeded
	pruneRFEquiv               // prefix re-derives a witnessed equivalence class
)

// failf records a failure and abandons the current execution by
// unwinding the calling simulated thread.
func (s *System) failf(kind FailureKind, format string, args ...any) {
	if s.failure == nil {
		s.failure = &Failure{
			Kind:      kind,
			Msg:       fmt.Sprintf(format, args...),
			Execution: s.execIndex,
			ActionID:  s.lastActionID(),
			Trace:     s.TraceString(s.cfg.TraceLimit),
		}
	}
	s.aborted = true
	panic(abortRun{})
}

// prune abandons the current execution without reporting a bug.
func (s *System) prune() {
	s.pruned = true
	s.aborted = true
	panic(abortRun{})
}

// lastActionID returns the trace ID of the most recent action, or 0 when
// the trace is empty (action 0 is always the root thread's thread-start,
// never itself a failure site, so 0 doubles as "unknown").
func (s *System) lastActionID() int {
	if s.cfg != nil && s.cfg.FastMode {
		return s.lastActID
	}
	if len(s.actions) == 0 {
		return 0
	}
	return s.actions[len(s.actions)-1].ID
}

// TraceString renders up to limit trailing actions of the trace.
func (s *System) TraceString(limit int) string {
	if s.cfg != nil && s.cfg.FastMode {
		return "(fast mode: action trace not retained)\n"
	}
	acts := s.actions
	var b strings.Builder
	start := 0
	if limit > 0 && len(acts) > limit {
		start = len(acts) - limit
		fmt.Fprintf(&b, "... (%d earlier actions)\n", start)
	}
	for _, a := range acts[start:] {
		b.WriteString(a.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// newThread registers a thread running fn whose clock starts as a copy
// of src (empty when src is nil; Spawn passes the parent's clock).
func (s *System) newThread(name string, fn func(*Thread), src *memmodel.ClockVector) *Thread {
	if len(s.threads) >= s.cfg.MaxThreads {
		s.failf(FailAPIMisuse, "too many threads (max %d)", s.cfg.MaxThreads)
	}
	var t *Thread
	if s.pool != nil {
		t = s.pool.getThread(s, len(s.threads), name, fn, src)
	} else {
		t = newThreadStruct(s, len(s.threads), name, fn, cloneOrNew(src))
	}
	// The child starts parked at its start point; its goroutine blocks
	// on the resume channel until a scheduling decision picks it, so no
	// startup handshake is needed.
	t.state = tsParked
	s.threads = append(s.threads, t)
	go t.threadMain()
	return t
}

func (s *System) newAtomic(name string) *Atomic {
	return &Atomic{loc: s.newLocation(name, true), sys: s}
}

func (s *System) newPlain(name string) *Plain {
	return &Plain{loc: s.newLocation(name, false), sys: s}
}

// newLocation registers a location. Creation is ordered just before the
// creating thread's next action, so a location is published to exactly
// the threads that synchronized with anything the creator did afterwards.
func (s *System) newLocation(name string, atomic bool) *location {
	tid, tseq := 0, uint32(0)
	var canonA uint64
	var canonSeq uint32
	if len(s.threads) > 0 {
		if t := s.creatingThread(); t != nil {
			tid, tseq = t.id, t.tseq+1
			// An allocation is a side effect: a loop iteration that
			// allocates is never a pure spin iteration.
			t.spinClear()
			if s.cfg.rfSeen != nil {
				// Canonical identity: (creator's canonical id, per-creator
				// allocation index). Unlike l.id — whose assignment order
				// leaks the interleaving of allocations on different
				// threads — this pair is a function of the creating
				// thread's own history.
				t.allocSeq++
				canonA, canonSeq = s.canonOf(t.id), t.allocSeq
			}
		}
	}
	var l *location
	if s.pool != nil {
		l = s.pool.getLocation(len(s.locs))
	} else {
		l = &location{maxLoadRF: -1}
	}
	l.id = len(s.locs)
	l.name = name
	l.atomic = atomic
	l.creatorTid = tid
	l.creatorTSeq = tseq
	l.canonA, l.canonSeq = canonA, canonSeq
	l.fpMo = fpPair{}
	s.locs = append(s.locs, l)
	return l
}

// creatingThread returns the thread currently holding the baton.
func (s *System) creatingThread() *Thread {
	for _, t := range s.threads {
		if t.state == tsRunning {
			return t
		}
	}
	return nil
}

// checkLifetime enforces that the location's creation happened-before the
// access (the other half of CDSChecker's uninitialized-memory checking).
func (s *System) checkLifetime(t *Thread, loc *location, what string) {
	if s.cfg.DisableLifetimeCheck {
		return
	}
	if t.id == loc.creatorTid || t.clock.Contains(loc.creatorTid, loc.creatorTSeq) {
		return
	}
	t.tseq++
	t.clock.Set(t.id, t.tseq)
	s.record(t, memmodel.KindAtomicLoad, memmodel.Relaxed, loc, 0)
	s.failf(FailUninitLoad, "%s of %s: the location's creation does not happen-before the access (unpublished memory)", what, loc.name)
}

// record appends an action to the trace and snapshots the thread's clock.
// The caller must already have bumped t.tseq and applied any clock merges
// the action performs.
func (s *System) record(t *Thread, kind memmodel.Kind, ord memmodel.MemOrder, loc *location, v memmodel.Value) *memmodel.Action {
	if s.cfg.rfSeen != nil && t.canon == 0 {
		// First action of this thread: assign its canonical id (symmetry-
		// class members draw slots in first-action order).
		s.assignCanon(t)
	}
	if s.cfg.FastMode {
		return s.recordFast(t, kind, ord, loc, v)
	}
	var act *memmodel.Action
	if s.pool != nil {
		act = s.pool.getAction()
	} else {
		act = &memmodel.Action{}
	}
	// Full overwrite: pooled actions carry the previous execution's
	// values in every field.
	*act = memmodel.Action{
		ID:      len(s.actions),
		Thread:  t.id,
		TSeq:    t.tseq,
		Kind:    kind,
		Order:   ord,
		LocID:   -1,
		SCIndex: -1,
		Value:   v,
	}
	if loc != nil {
		act.LocID = loc.id
		act.LocName = loc.name
	}
	act.Clock = s.snap(t.clock)
	s.actions = append(s.actions, act)
	t.lastAction = act
	return act
}

// recordFast is record() without trace retention: only actions that end
// up in a store buffer (stores, RMWs) get a real allocation — from the
// free list the evictor feeds — and everything else reuses one scratch
// action. No per-action clock snapshot is taken: fast-mode race checks
// use the per-location seq vectors, not action clocks.
func (s *System) recordFast(t *Thread, kind memmodel.Kind, ord memmodel.MemOrder, loc *location, v memmodel.Value) *memmodel.Action {
	var act *memmodel.Action
	switch kind {
	case memmodel.KindAtomicStore, memmodel.KindAtomicRMW, memmodel.KindPlainStore:
		act = s.takeAction()
	default:
		act = &s.scratchAct
	}
	*act = memmodel.Action{
		ID:      s.actionCount,
		Thread:  t.id,
		TSeq:    t.tseq,
		Kind:    kind,
		Order:   ord,
		LocID:   -1,
		SCIndex: -1,
		Value:   v,
	}
	if loc != nil {
		act.LocID = loc.id
		act.LocName = loc.name
	}
	s.lastActID = s.actionCount
	s.actionCount++
	t.lastAction = act
	return act
}

// takeAction pops a recycled action (fast mode only). The free list is
// deliberately separate from the pool's action arena: arena slots are
// rewound wholesale between executions, which would alias actions still
// alive in store buffers.
func (s *System) takeAction() *memmodel.Action {
	if n := len(s.freeActs); n > 0 {
		act := s.freeActs[n-1]
		s.freeActs = s.freeActs[:n-1]
		return act
	}
	return &memmodel.Action{}
}

func (s *System) freeAction(act *memmodel.Action) {
	act.RF = nil
	act.Clock = nil
	s.freeActs = append(s.freeActs, act)
}

// takeClock pops a recycled clock (fast mode only); the caller overwrites
// its contents via CopyFrom/Reset.
func (s *System) takeClock() *memmodel.ClockVector {
	if n := len(s.freeClks); n > 0 {
		cv := s.freeClks[n-1]
		s.freeClks = s.freeClks[:n-1]
		return cv
	}
	return memmodel.NewClockVector()
}

func (s *System) freeClock(cv *memmodel.ClockVector) {
	s.freeClks = append(s.freeClks, cv)
}

// sweepFast returns every action and clock still alive in a store buffer
// to the free lists — called between pooled fast-mode runs so the next
// run starts with warm free lists instead of allocating.
func (s *System) sweepFast() {
	for _, loc := range s.locs {
		for i := range loc.stores {
			st := &loc.stores[i]
			if st.act != nil {
				s.freeAction(st.act)
			}
			if st.sync != nil {
				s.freeClock(st.sync)
			}
			st.act, st.sync = nil, nil
		}
	}
	for _, t := range s.threads {
		if t.relFence != nil {
			s.freeClock(t.relFence)
			t.relFence = nil
		}
	}
}

// snap captures the current value of cv for retention in per-execution
// state (action clocks, release clocks, mutex clocks). Pooled executions
// copy into a recycled arena clock; unpooled ones take a copy-on-write
// share, so the snapshot costs one small struct instead of a deep copy.
func (s *System) snap(cv *memmodel.ClockVector) *memmodel.ClockVector {
	if s.cfg.FastMode {
		// Always an owned copy from the free list, never a share and never
		// the pool arena: fast-mode clocks are recycled individually when
		// their store is evicted, which is unsound for shared or
		// arena-rewound storage.
		c := s.takeClock()
		c.CopyFrom(cv)
		return c
	}
	if s.pool != nil {
		return s.pool.getClock(cv)
	}
	return cv.Share()
}

// blank returns an empty clock for per-execution state.
func (s *System) blank() *memmodel.ClockVector {
	if s.cfg.FastMode {
		c := s.takeClock()
		c.Reset()
		return c
	}
	if s.pool != nil {
		return s.pool.getClock(nil)
	}
	return memmodel.NewClockVector()
}

// bumpStep advances the per-run step counter and prunes runaway runs.
// A run over the step bound is pruned, never reported: it must count
// exactly once, as Pruned (with Stats.PrunedStepBound), and never leak a
// FailTooManySteps into FailureCount or the Figure 8 detection channels.
// (An earlier version also populated s.failure here, relying on runOne
// checking s.pruned first to keep the failure invisible — a fragile
// ordering dependence this accounting no longer has.)
func (s *System) bumpStep() {
	s.stepCount++
	if s.cfg.MaxSteps > 0 && s.stepCount > s.cfg.MaxSteps {
		s.pruneReason = pruneStepBound
		s.prune()
	}
}

// visibleFloor computes the lowest modification-order index of loc that a
// load by thread t with order ord may read, applying:
//
//   - write-read coherence: a store that happens-before the load hides all
//     mo-earlier stores;
//   - read-read coherence: a load that happens-before this one pins the
//     floor at the store it read;
//   - the seq_cst rules: the load may not read mo-before the floor implied
//     by SC stores and SC fences that precede its effective SC position.
//
// The result is memoized per (thread, location) under the exact key
// (t.clockEpoch, s.storeEpoch, scIdx); see the invalidation argument on
// each epoch. Runs of loads with no intervening synchronization — the
// common case in spin loops and traversals — hit the cache and skip the
// scans entirely.
func (s *System) visibleFloor(t *Thread, loc *location, ord memmodel.MemOrder) (floor int, published bool) {
	scIdx := s.effectiveSCIdx(t, ord)
	if s.cfg.DisableFloorCache {
		return s.visibleFloorScan(t, loc, scIdx)
	}
	e := loc.cacheFor(t.id)
	// Exact-match validity: a new store anywhere bumps storeEpoch (so new
	// stores and new scFloors-from-SC-stores miss); anything raising
	// t.clock from outside bumps clockEpoch (so stores/loads by other
	// threads that became visible through a merge miss — without a merge
	// they are not covered by t.clock and cannot contribute); the
	// thread's own loads of loc raise e.floor in place below; scFloors
	// from SC fences change scIdx (an SC fence advances scCount, and the
	// thread's own fence moves t.lastSCFence).
	if e.valid && e.clockEpoch == t.clockEpoch && e.storeEpoch == s.storeEpoch && e.scIdx == scIdx {
		return e.floor, e.published
	}
	floor, published = s.visibleFloorScan(t, loc, scIdx)
	*e = floorEntry{
		clockEpoch: t.clockEpoch,
		storeEpoch: s.storeEpoch,
		scIdx:      scIdx,
		floor:      floor,
		published:  published,
		valid:      true,
	}
	return floor, published
}

// effectiveSCIdx is the reader's position in the seq_cst order S for
// floor purposes. For an SC load it is s.scCount (all existing SC actions
// precede it), which moves with every SC action anywhere; for a load
// after an SC fence it is the fence's fixed index, and scFloors entries
// appended later carry strictly larger scIdx (SC indices are handed out
// in increasing order), so the contributing set {f : f.scIdx < scIdx} is
// frozen — an exact match on scIdx keeps a cached floor sound in both
// cases.
func (s *System) effectiveSCIdx(t *Thread, ord memmodel.MemOrder) int {
	if ord.IsSeqCst() {
		return s.scCount
	}
	if t.lastSCFence >= 0 {
		return t.lastSCFence
	}
	return -1
}

// noteOwnLoad raises t's cached floor for loc to idx after t read the
// store at mo index idx: the thread's own loads are always covered by
// its own clock, so the read-read floor tightens without any epoch
// moving. A stale-keyed entry is updated harmlessly (it cannot match).
func (s *System) noteOwnLoad(t *Thread, loc *location, idx int) {
	if s.cfg.DisableFloorCache {
		return
	}
	if e := loc.cacheFor(t.id); e.valid && idx > e.floor {
		e.floor = idx
	}
}

// visibleFloorScan is the uncached visibility computation. Floors are
// absolute modification-order indices; stores below loc.moBase were
// evicted by fast mode and are treated as happened-before everything
// (they initialize the floor, and their existence publishes the
// location) — the documented plausibility approximation.
func (s *System) visibleFloorScan(t *Thread, loc *location, scIdx int) (floor int, published bool) {
	floor = loc.moBase
	published = loc.moBase > 0
	for i, st := range loc.stores {
		if t.clock.Contains(st.act.Thread, st.act.TSeq) {
			published = true
			if mo := loc.moBase + i; mo > floor {
				floor = mo
			}
		}
	}
	if loc.maxLoadRF > floor {
		for _, lr := range loc.loads {
			if lr.rfMO > floor && t.clock.Contains(lr.tid, lr.tseq) {
				floor = lr.rfMO
			}
		}
	}
	if scIdx >= 0 {
		for _, f := range loc.scFloors {
			if f.scIdx < scIdx && f.moIdx > floor {
				floor = f.moIdx
			}
		}
	}
	return floor, published
}

// addLoad appends a read-read coherence record and maintains the scan
// bound and compaction schedule.
func (s *System) addLoad(t *Thread, loc *location, idx int) {
	if s.cfg.FastMode {
		// Plain locations need no load records: fast-mode races are
		// detected through the seq vectors. Atomic locations keep a
		// bounded window for read-read coherence; overflow drops the
		// oldest half, which can only lower future floors (another
		// plausibility under-approximation, never a crash).
		if !loc.atomic {
			return
		}
		loc.loads = append(loc.loads, loadRec{tid: t.id, tseq: t.tseq, rfMO: idx})
		if idx > loc.maxLoadRF {
			loc.maxLoadRF = idx
		}
		if cap := 2 * s.cfg.StoreBound; len(loc.loads) > cap {
			keep := cap / 2
			n := copy(loc.loads, loc.loads[len(loc.loads)-keep:])
			loc.loads = loc.loads[:n]
			maxRF := -1
			for _, lr := range loc.loads {
				if lr.rfMO > maxRF {
					maxRF = lr.rfMO
				}
			}
			loc.maxLoadRF = maxRF
		}
		return
	}
	loc.loads = append(loc.loads, loadRec{tid: t.id, tseq: t.tseq, rfMO: idx})
	if idx > loc.maxLoadRF {
		loc.maxLoadRF = idx
	}
	if loc.atomic {
		s.maybeCompactLoads(loc)
	}
}

// maybeCompactLoads discards loadRec entries that can never again raise a
// visibility floor. A record with rfMO <= glb is dead, where glb is the
// minimum over all unfinished threads of the thread's store-derived floor
// for loc: any future load's floor starts at its thread's store floor,
// store floors only grow over time (clocks only gain entries, the
// modification order only appends), and a future thread inherits its
// spawner's clock, hence a store floor >= the spawner's. So every floor
// any future load can compute is >= glb, and records at or below it are
// dominated forever. Plain locations are never compacted — their load
// records feed the data-race check, not just coherence.
func (s *System) maybeCompactLoads(loc *location) {
	if s.cfg.DisableLoadCompaction {
		return
	}
	if loc.nextCompact == 0 {
		loc.nextCompact = s.cfg.compactThreshold
	}
	if len(loc.loads) < loc.nextCompact {
		return
	}
	glb := -1
	live := false
	for _, t := range s.threads {
		if t.state == tsFinished {
			continue
		}
		f := -1
		for i, st := range loc.stores {
			if t.clock.Contains(st.act.Thread, st.act.TSeq) {
				f = loc.moBase + i
			}
		}
		if !live || f < glb {
			glb = f
		}
		live = true
	}
	if live && glb >= 0 {
		kept := loc.loads[:0]
		maxRF := -1
		for _, lr := range loc.loads {
			if lr.rfMO > glb {
				kept = append(kept, lr)
				if lr.rfMO > maxRF {
					maxRF = lr.rfMO
				}
			}
		}
		loc.loads = kept
		loc.maxLoadRF = maxRF
	}
	// Re-arm after another threshold's worth of growth, so a location
	// whose records are all live is not rescanned on every load.
	loc.nextCompact = len(loc.loads) + s.cfg.compactThreshold
}

// maybeEvict bounds a location's store buffer in fast mode: when the
// window exceeds Config.StoreBound, the older half is evicted and its
// actions/clocks recycled. The caller appended a store (and bumped
// storeEpoch) immediately before, so every floor-cache entry already
// misses on its storeEpoch key — no invalidation pass is needed. Evicted
// stores become unreachable as reads-from candidates (visibleFloorScan
// starts the floor at moBase); the newest evicted value is kept for
// plain loads whose visibility fell below the window.
func (s *System) maybeEvict(loc *location) {
	bound := s.cfg.StoreBound
	if !s.cfg.FastMode || bound < 2 || len(loc.stores) <= bound {
		return
	}
	e := len(loc.stores) / 2
	loc.evictedVal = loc.stores[e-1].act.Value
	for i := 0; i < e; i++ {
		st := &loc.stores[i]
		s.freeAction(st.act)
		if st.sync != nil {
			s.freeClock(st.sync)
		}
	}
	n := copy(loc.stores, loc.stores[e:])
	for i := n; i < len(loc.stores); i++ {
		loc.stores[i] = storeRec{}
	}
	loc.stores = loc.stores[:n]
	loc.moBase += e
	s.evictions++

	// Constraints and coherence records below the new base are vacuous
	// (floors start at moBase); dropping them is what keeps the auxiliary
	// slices bounded too.
	keptSC := loc.scFloors[:0]
	for _, f := range loc.scFloors {
		if f.moIdx >= loc.moBase {
			keptSC = append(keptSC, f)
		}
	}
	loc.scFloors = keptSC
	keptL := loc.loads[:0]
	maxRF := -1
	for _, lr := range loc.loads {
		if lr.rfMO >= loc.moBase {
			keptL = append(keptL, lr)
			if lr.rfMO > maxRF {
				maxRF = lr.rfMO
			}
		}
	}
	loc.loads = keptL
	loc.maxLoadRF = maxRF
}

// checkMixed reports a FailMixedRace when any thread in seqs has an
// access not covered by t's clock — the C11Tester mixed atomic/
// non-atomic race check. seqs holds per-thread latest-access tseqs
// (covering a thread's latest access covers all its earlier ones, so one
// entry per thread is exact). kind is the action kind recorded for the
// failure report; what/other phrase the message.
func (s *System) checkMixed(t *Thread, loc *location, seqs []uint32, kind memmodel.Kind, what, other string) {
	rules := s.rules()
	for tid, seq := range seqs {
		if seq != 0 && tid != t.id && rules.races(t, tid, seq) {
			t.tseq++
			t.clock.Set(t.id, t.tseq)
			s.record(t, kind, memmodel.Relaxed, loc, 0)
			s.failf(FailMixedRace, "mixed atomic/non-atomic race on %s: T%d %s races with T%d %s",
				loc.name, t.id, what, tid, other)
		}
	}
}

// checkPublished enforces CDSChecker's uninitialized-load check in its
// full form: a load of a location none of whose stores happens-before the
// load is reading memory whose initialization was never made visible to
// this thread (e.g. a node reached through an unsynchronized pointer).
func (s *System) checkPublished(t *Thread, loc *location, published bool, what string) {
	if published || s.cfg.DisableLifetimeCheck {
		return
	}
	t.tseq++
	t.clock.Set(t.id, t.tseq)
	s.record(t, memmodel.KindAtomicLoad, memmodel.Relaxed, loc, 0)
	s.failf(FailUninitLoad, "%s of %s: no initializing store happens-before the access (reads unpublished memory)", what, loc.name)
}

// validatePin recomputes the visibility record the chooser pinned and
// panics on any mismatch — the DebugReplayCheck guard that frozen-prefix
// replay really is deterministic. A mismatch is an internal invariant
// violation, never a property of the checked program.
func (s *System) validatePin(t *Thread, loc *location, ord memmodel.MemOrder, rec *floorRec, spinPrev int) {
	floor, published := s.rules().scanFloor(s, t, loc, ord)
	switch rec.kind {
	case 'r':
		if spinPrev >= 0 {
			floor = s.spinBound(t, loc, spinPrev, floor)
		}
		n := loc.moNext() - floor
		if floor != rec.floor || published != rec.published || n != rec.n {
			panic(fmt.Sprintf("checker: replay pin mismatch at load of %s: pinned floor=%d published=%v n=%d, recomputed floor=%d published=%v n=%d",
				loc.name, rec.floor, rec.published, rec.n, floor, published, n))
		}
	case 'm':
		if published != rec.published {
			panic(fmt.Sprintf("checker: replay pin mismatch at RMW of %s: pinned published=%v, recomputed %v",
				loc.name, rec.published, published))
		}
	}
}

// releaseClockFor computes the release clock ("sync clock") carried by a
// new store: the clock an acquire load will merge when it reads the store.
//   - A release-or-stronger store releases the thread's current clock.
//   - A relaxed store after a release fence releases the fence's clock.
//   - An RMW additionally continues the release sequence of the store it
//     read from.
func (s *System) releaseClockFor(t *Thread, ord memmodel.MemOrder, rfSync *memmodel.ClockVector) *memmodel.ClockVector {
	var cv *memmodel.ClockVector
	switch {
	case ord.IsRelease():
		cv = s.snap(t.clock)
	case t.relFence != nil:
		cv = s.snap(t.relFence)
	}
	if rfSync != nil {
		if cv == nil {
			cv = s.blank()
		}
		cv.Merge(rfSync)
	}
	return cv
}

// applyReadSync applies the acquire side of reading store st.
func (s *System) applyReadSync(t *Thread, ord memmodel.MemOrder, st storeRec) {
	if st.sync == nil {
		return
	}
	if ord.IsAcquire() {
		if t.clock.Merge(st.sync) {
			t.clockEpoch++
		}
	} else {
		// A later acquire fence can still pick this up.
		t.acqPending.Merge(st.sync)
	}
}

// assignSCIndex is the C/C++11 SC-assignment rule: seq_cst-ordered
// actions join the total order S in execution order. Backends call it
// through consistency.assignSC.
func (s *System) assignSCIndex(act *memmodel.Action, ord memmodel.MemOrder) {
	if ord.IsSeqCst() {
		act.SCIndex = s.scCount
		s.scCount++
		if s.cfg.rfSeen != nil {
			s.fpSCOp(s.threads[act.Thread], uint64(act.Kind))
		}
	}
}

// doLoad implements an atomic load: compute the visible stores, branch on
// the choice, apply synchronization, and record the action. During
// frozen-prefix replay the candidate set is pinned by the chooser and the
// lifetime/visibility checks are skipped — they passed when the prefix
// was first executed, and replay re-creates the identical state.
func (s *System) doLoad(t *Thread, loc *location, ord memmodel.MemOrder) memmodel.Value {
	s.bumpStep()
	// Resolve the armed spin re-read bound up front, identically on the
	// fresh and the replayed path: replay must evolve the spin state the
	// same way the original run did.
	spinPrev := -1
	if s.cfg.Reduce.Spinloop && t.spinLoc == loc {
		spinPrev = t.spinRF
		t.spinLoc = nil
	}
	var floor, n int
	if rec, ok := s.chooser.pinnedFloor(); ok {
		if rec.kind != 'r' {
			panic(fmt.Sprintf("checker: replay pin desync: load of %s got record kind %q", loc.name, rec.kind))
		}
		if s.cfg.DebugReplayCheck {
			s.validatePin(t, loc, ord, rec, spinPrev)
		}
		floor, n = rec.floor, rec.n
	} else {
		s.checkLifetime(t, loc, "atomic load")
		s.checkMixed(t, loc, loc.rawWriteSeq, memmodel.KindAtomicLoad, "atomic load", "non-atomic store")
		if loc.moNext() == 0 {
			t.tseq++
			t.clock.Set(t.id, t.tseq)
			s.record(t, memmodel.KindAtomicLoad, ord, loc, 0)
			s.failf(FailUninitLoad, "atomic load of %s before any store", loc.name)
		}
		var published bool
		floor, published = s.rules().loadFloor(s, t, loc, ord)
		s.checkPublished(t, loc, published, "atomic load")
		if spinPrev >= 0 {
			if b := s.spinBound(t, loc, spinPrev, floor); b != floor {
				floor = b
				s.countSpinBound()
			}
		}
		n = loc.moNext() - floor
		s.rfCheck('r', t, loc, n)
		s.chooser.noteFloor(floorRec{kind: 'r', floor: floor, published: published, n: n})
	}
	var idx int
	if s.cfg.FastMode && t.lastResortEpoch == s.storeEpoch {
		// The thread is a spinner woken as a last resort: on real
		// hardware a spin loop eventually observes the newest value
		// (the fairness assumption the exhaustive engine enforces by
		// pruning). Sampling a stale store here would strand the whole
		// run in the fairness prune, so the retry reads the newest
		// store unconditionally — which is always readable.
		idx = loc.lastStoreIdx()
	} else {
		idx = floor + s.chooser.choose(n, 'r')
	}
	st := *loc.store(idx)

	t.tseq++
	t.clock.Set(t.id, t.tseq)
	s.rules().readSync(s, t, ord, st)
	act := s.record(t, memmodel.KindAtomicLoad, ord, loc, st.act.Value)
	act.RF = st.act
	s.rules().assignSC(s, act, ord)
	s.addLoad(t, loc, idx)
	s.noteOwnLoad(t, loc, idx)
	setSeq(&loc.readSeq, t.id, t.tseq)
	s.noteRecentRead(t, loc, idx)
	s.fpThreadOp(t, fpOpLoad, loc, uint64(idx)|uint64(ord)<<32, uint64(st.act.Value))
	s.sleep.wake(pendSig{class: sigMem, loc: loc.id, sc: ord.IsSeqCst()})
	return st.act.Value
}

// noteRecentRead appends to the spin-loop fairness window; fast mode
// bounds it (a thread that never yields would otherwise accumulate one
// entry per load forever).
func (s *System) noteRecentRead(t *Thread, loc *location, idx int) {
	if s.cfg.FastMode && len(t.recentReads) >= fastRecentReadsCap {
		n := copy(t.recentReads, t.recentReads[len(t.recentReads)-fastRecentReadsCap/2:])
		t.recentReads = t.recentReads[:n]
	}
	t.recentReads = append(t.recentReads, readRef{loc: loc, rfMO: idx})
}

// fastRecentReadsCap bounds Thread.recentReads in fast mode.
const fastRecentReadsCap = 64

// doStore implements an atomic store. rfSync is non-nil only when called
// from doRMW (release-sequence continuation).
func (s *System) doStore(t *Thread, loc *location, ord memmodel.MemOrder, v memmodel.Value, rfSync *memmodel.ClockVector) *memmodel.Action {
	s.bumpStep()
	t.spinClear()
	s.checkLifetime(t, loc, "atomic store")
	s.checkMixed(t, loc, loc.rawWriteSeq, memmodel.KindAtomicStore, "atomic store", "non-atomic store")
	s.checkMixed(t, loc, loc.rawReadSeq, memmodel.KindAtomicStore, "atomic store", "non-atomic load")
	t.tseq++
	t.clock.Set(t.id, t.tseq)
	sync := s.rules().storeSync(s, t, ord, rfSync)
	act := s.record(t, memmodel.KindAtomicStore, ord, loc, v)
	moIdx := loc.moNext()
	act.MOIndex = moIdx
	loc.stores = append(loc.stores, storeRec{act: act, sync: sync})
	loc.setLastStoreByThread(t.id, moIdx)
	setSeq(&loc.writeSeq, t.id, t.tseq)
	s.rules().assignSC(s, act, ord)
	if act.SCIndex >= 0 {
		loc.scFloors = append(loc.scFloors, scFloor{scIdx: act.SCIndex, moIdx: moIdx})
	}
	s.storeEpoch++
	s.maybeEvict(loc)
	s.fpMoOp(loc, fpOpStore, t, uint64(v))
	s.fpThreadOp(t, fpOpStore, loc, uint64(act.MOIndex)|uint64(ord)<<32, uint64(v))
	s.sleep.wake(pendSig{class: sigMem, loc: loc.id, write: true, sc: ord.IsSeqCst()})
	return act
}

// doRMW implements an atomic read-modify-write. Per C/C++11 atomicity the
// read half observes the mo-latest store; the write half is mo-adjacent.
func (s *System) doRMW(t *Thread, loc *location, ord memmodel.MemOrder, f func(memmodel.Value) memmodel.Value) memmodel.Value {
	s.bumpStep()
	t.spinClear()
	if rec, ok := s.chooser.pinnedFloor(); ok {
		if rec.kind != 'm' {
			panic(fmt.Sprintf("checker: replay pin desync: RMW of %s got record kind %q", loc.name, rec.kind))
		}
		if s.cfg.DebugReplayCheck {
			s.validatePin(t, loc, ord, rec, -1)
		}
	} else {
		s.checkLifetime(t, loc, "atomic RMW")
		s.checkMixed(t, loc, loc.rawWriteSeq, memmodel.KindAtomicRMW, "atomic RMW", "non-atomic store")
		s.checkMixed(t, loc, loc.rawReadSeq, memmodel.KindAtomicRMW, "atomic RMW", "non-atomic load")
		if loc.moNext() == 0 {
			t.tseq++
			t.clock.Set(t.id, t.tseq)
			s.record(t, memmodel.KindAtomicRMW, ord, loc, 0)
			s.failf(FailUninitLoad, "atomic RMW of %s before any store", loc.name)
		}
		_, published := s.rules().loadFloor(s, t, loc, ord)
		s.checkPublished(t, loc, published, "atomic RMW")
		s.chooser.noteFloor(floorRec{kind: 'm', published: published})
	}
	lastIdx := loc.lastStoreIdx()
	last := *loc.store(lastIdx)
	old := last.act.Value

	t.tseq++
	t.clock.Set(t.id, t.tseq)
	s.rules().readSync(s, t, ord, last)
	s.addLoad(t, loc, lastIdx)
	setSeq(&loc.readSeq, t.id, t.tseq)

	sync := s.rules().storeSync(s, t, ord, last.sync)
	act := s.record(t, memmodel.KindAtomicRMW, ord, loc, f(old))
	act.RF = last.act
	moIdx := loc.moNext()
	act.MOIndex = moIdx
	loc.stores = append(loc.stores, storeRec{act: act, sync: sync})
	loc.setLastStoreByThread(t.id, moIdx)
	setSeq(&loc.writeSeq, t.id, t.tseq)
	s.rules().assignSC(s, act, ord)
	if act.SCIndex >= 0 {
		loc.scFloors = append(loc.scFloors, scFloor{scIdx: act.SCIndex, moIdx: moIdx})
	}
	s.storeEpoch++
	s.maybeEvict(loc)
	s.fpMoOp(loc, fpOpRMW, t, uint64(act.Value))
	s.fpThreadOp(t, fpOpRMW, loc, uint64(lastIdx)|uint64(ord)<<32, uint64(old))
	s.sleep.wake(pendSig{class: sigMem, loc: loc.id, write: true, sc: ord.IsSeqCst()})
	return old
}

// doCAS implements compare_exchange_strong. The outcome set is:
//   - success (when the mo-latest value equals expected), plus
//   - one failure alternative per visible store whose value differs from
//     expected (a failing CAS is just a load with failOrd).
//
// Failure alternatives are counted, not materialized: the chosen one is
// resolved by rank afterwards (and the resolution memoized on the pinned
// record, so replays of the same branch skip even that scan).
func (s *System) doCAS(t *Thread, loc *location, expected, desired memmodel.Value, succOrd, failOrd memmodel.MemOrder) (memmodel.Value, bool) {
	s.bumpStep()
	var rec *floorRec
	if r, ok := s.chooser.pinnedFloor(); ok {
		if r.kind != 'c' {
			panic(fmt.Sprintf("checker: replay pin desync: CAS of %s got record kind %q", loc.name, r.kind))
		}
		if s.cfg.DebugReplayCheck {
			s.validateCASPin(t, loc, expected, failOrd, r)
		}
		rec = r
	} else {
		s.checkLifetime(t, loc, "CAS")
		s.checkMixed(t, loc, loc.rawWriteSeq, memmodel.KindAtomicRMW, "CAS", "non-atomic store")
		if loc.moNext() == 0 {
			t.tseq++
			t.clock.Set(t.id, t.tseq)
			s.record(t, memmodel.KindAtomicRMW, succOrd, loc, 0)
			s.failf(FailUninitLoad, "CAS of %s before any store", loc.name)
		}
		canSucceed := loc.store(loc.lastStoreIdx()).act.Value == expected
		floor, published := s.rules().loadFloor(s, t, loc, failOrd)
		s.checkPublished(t, loc, published, "CAS")
		n := 0
		for i := floor; i < loc.moNext(); i++ {
			if loc.store(i).act.Value != expected {
				n++
			}
		}
		if canSucceed {
			n++
		}
		if n == 0 {
			// Every visible store holds the expected value but the latest
			// is not it — impossible since the latest is always visible;
			// so n == 0 implies canSucceed was the only branch.
			s.failf(FailAPIMisuse, "CAS on %s with no outcome", loc.name)
		}
		s.rfCheck('c', t, loc, n)
		rec = s.chooser.noteFloor(floorRec{
			kind: 'c', floor: floor, published: published, n: n,
			canSucceed: canSucceed, resolvedFor: -1,
		})
	}
	choice := s.chooser.choose(rec.n, 'c')

	if rec.canSucceed && choice == 0 {
		// Success: behave exactly like doRMW writing desired. The write
		// side's mixed check runs here (not on the shared fresh path): a
		// failing CAS performs only a load and must not race with
		// non-atomic reads. Replay re-creates identical state, so running
		// it unconditionally cannot fail a prefix that passed before.
		s.checkMixed(t, loc, loc.rawReadSeq, memmodel.KindAtomicRMW, "CAS", "non-atomic load")
		t.spinClear()
		lastIdx := loc.lastStoreIdx()
		last := *loc.store(lastIdx)
		t.tseq++
		t.clock.Set(t.id, t.tseq)
		s.rules().readSync(s, t, succOrd, last)
		s.addLoad(t, loc, lastIdx)
		setSeq(&loc.readSeq, t.id, t.tseq)
		sync := s.rules().storeSync(s, t, succOrd, last.sync)
		act := s.record(t, memmodel.KindAtomicRMW, succOrd, loc, desired)
		act.RF = last.act
		moIdx := loc.moNext()
		act.MOIndex = moIdx
		loc.stores = append(loc.stores, storeRec{act: act, sync: sync})
		loc.setLastStoreByThread(t.id, moIdx)
		setSeq(&loc.writeSeq, t.id, t.tseq)
		s.rules().assignSC(s, act, succOrd)
		if act.SCIndex >= 0 {
			loc.scFloors = append(loc.scFloors, scFloor{scIdx: act.SCIndex, moIdx: moIdx})
		}
		s.storeEpoch++
		s.maybeEvict(loc)
		s.fpMoOp(loc, fpOpRMW, t, uint64(desired))
		s.fpThreadOp(t, fpOpRMW, loc, uint64(lastIdx)|uint64(succOrd)<<32, uint64(expected))
		s.sleep.wake(pendSig{class: sigMem, loc: loc.id, write: true, sc: succOrd.IsSeqCst()})
		return expected, true
	}
	idx := rec.resolvedIdx
	if rec.resolvedFor != choice {
		// Resolve the choice-th failure alternative: the rank-th store at
		// or above the floor whose value differs from expected.
		rank := choice
		if rec.canSucceed {
			rank--
		}
		idx = -1
		for i := rec.floor; i < loc.moNext(); i++ {
			if loc.store(i).act.Value != expected {
				if rank == 0 {
					idx = i
					break
				}
				rank--
			}
		}
		if idx < 0 {
			panic(fmt.Sprintf("checker: CAS of %s: failure alternative %d out of range", loc.name, choice))
		}
		rec.resolvedFor = choice
		rec.resolvedIdx = idx
	}
	st := *loc.store(idx)
	t.tseq++
	t.clock.Set(t.id, t.tseq)
	s.rules().readSync(s, t, failOrd, st)
	act := s.record(t, memmodel.KindAtomicLoad, failOrd, loc, st.act.Value)
	act.RF = st.act
	s.rules().assignSC(s, act, failOrd)
	s.addLoad(t, loc, idx)
	s.noteOwnLoad(t, loc, idx)
	setSeq(&loc.readSeq, t.id, t.tseq)
	s.noteRecentRead(t, loc, idx)
	s.fpThreadOp(t, fpOpCASFail, loc, uint64(idx)|uint64(failOrd)<<32, uint64(st.act.Value))
	s.sleep.wake(pendSig{class: sigMem, loc: loc.id, sc: failOrd.IsSeqCst()})
	return st.act.Value, false
}

// validateCASPin is validatePin for kind 'c'.
func (s *System) validateCASPin(t *Thread, loc *location, expected memmodel.Value, failOrd memmodel.MemOrder, rec *floorRec) {
	floor, published := s.rules().scanFloor(s, t, loc, failOrd)
	canSucceed := loc.moNext() > 0 && loc.store(loc.lastStoreIdx()).act.Value == expected
	n := 0
	for i := floor; i < loc.moNext(); i++ {
		if loc.store(i).act.Value != expected {
			n++
		}
	}
	if canSucceed {
		n++
	}
	if floor != rec.floor || published != rec.published || n != rec.n || canSucceed != rec.canSucceed {
		panic(fmt.Sprintf("checker: replay pin mismatch at CAS of %s: pinned floor=%d published=%v n=%d canSucceed=%v, recomputed floor=%d published=%v n=%d canSucceed=%v",
			loc.name, rec.floor, rec.published, rec.n, rec.canSucceed, floor, published, n, canSucceed))
	}
}

// doFence implements a stand-alone fence.
func (s *System) doFence(t *Thread, ord memmodel.MemOrder) {
	s.bumpStep()
	t.spinClear()
	t.tseq++
	t.clock.Set(t.id, t.tseq)
	if ord.IsAcquire() {
		if t.clock.Merge(t.acqPending) {
			t.clockEpoch++
		}
	}
	if ord.IsRelease() {
		if s.cfg.FastMode && t.relFence != nil {
			// Fast-mode snapshots are owned copies, so the replaced fence
			// clock can be recycled immediately.
			s.freeClock(t.relFence)
		}
		t.relFence = s.snap(t.clock)
	}
	act := s.record(t, memmodel.KindFence, ord, nil, 0)
	s.rules().assignSC(s, act, ord)
	s.fpThreadOp(t, fpOpFence, nil, uint64(ord), 0)
	s.sleep.wake(pendSig{class: sigFence, loc: -1, sc: ord.IsSeqCst()})
	if act.SCIndex >= 0 {
		t.lastSCFence = act.SCIndex
		// An SC load (or a load after an SC fence) that follows this
		// fence in S must not read anything older than the last store
		// each thread issued before the fence — but only stores by
		// *this* thread are sequenced before it, so only they
		// contribute floors.
		for _, loc := range s.locs {
			if !loc.atomic {
				continue
			}
			if mo := loc.lastStoreByThread(t.id); mo >= 0 {
				loc.scFloors = append(loc.scFloors, scFloor{scIdx: act.SCIndex, moIdx: mo})
			}
		}
	}
}

// doPlainLoad implements a non-atomic load with race detection. It does
// not schedule: plain accesses run under the baton of the surrounding
// visible operation, which keeps the state space small without losing
// race detection (races are a property of happens-before, not of the
// interleaving).
func (s *System) doPlainLoad(t *Thread, loc *location) memmodel.Value {
	s.bumpStep()
	s.checkLifetime(t, loc, "plain load")
	t.tseq++
	t.clock.Set(t.id, t.tseq)
	if loc.moNext() == 0 {
		s.record(t, memmodel.KindPlainLoad, memmodel.Relaxed, loc, 0)
		s.failf(FailUninitLoad, "load of plain location %s before any store", loc.name)
	}
	if s.cfg.FastMode {
		return s.fastPlainLoad(t, loc)
	}
	// Race: any store by another thread not ordered with this load.
	best := -1
	for i, st := range loc.stores {
		if t.clock.Contains(st.act.Thread, st.act.TSeq) {
			best = loc.moBase + i
		} else if st.act.Thread != t.id {
			s.record(t, memmodel.KindPlainLoad, memmodel.Relaxed, loc, 0)
			s.failf(FailDataRace, "data race on %s: T%d load races with T%d store (#%d)",
				loc.name, t.id, st.act.Thread, st.act.ID)
		}
	}
	if best < 0 {
		s.record(t, memmodel.KindPlainLoad, memmodel.Relaxed, loc, 0)
		s.failf(FailUninitLoad, "load of plain location %s sees no ordered store", loc.name)
	}
	st := *loc.store(best)
	act := s.record(t, memmodel.KindPlainLoad, memmodel.Relaxed, loc, st.act.Value)
	act.RF = st.act
	s.addLoad(t, loc, best)
	setSeq(&loc.readSeq, t.id, t.tseq)
	s.noteRecentRead(t, loc, best)
	return st.act.Value
}

// fastPlainLoad is the fast-mode plain load: races are detected against
// the per-thread writeSeq vector (exact and never evicted, unlike the
// store window), and the value is the newest visible store in the window
// — or the remembered evicted value when visibility fell below it.
func (s *System) fastPlainLoad(t *Thread, loc *location) memmodel.Value {
	for tid, seq := range loc.writeSeq {
		if seq != 0 && tid != t.id && !t.clock.Contains(tid, seq) {
			s.record(t, memmodel.KindPlainLoad, memmodel.Relaxed, loc, 0)
			s.failf(FailDataRace, "data race on %s: T%d load races with T%d store",
				loc.name, t.id, tid)
		}
	}
	best := -1
	for i, st := range loc.stores {
		if st.act.Thread == t.id || t.clock.Contains(st.act.Thread, st.act.TSeq) {
			best = loc.moBase + i
		}
	}
	var v memmodel.Value
	switch {
	case best >= 0:
		v = loc.store(best).act.Value
	case loc.moBase > 0:
		v = loc.evictedVal
		best = loc.moBase - 1
	default:
		s.record(t, memmodel.KindPlainLoad, memmodel.Relaxed, loc, 0)
		s.failf(FailUninitLoad, "load of plain location %s sees no ordered store", loc.name)
	}
	s.record(t, memmodel.KindPlainLoad, memmodel.Relaxed, loc, v)
	setSeq(&loc.readSeq, t.id, t.tseq)
	s.noteRecentRead(t, loc, best)
	return v
}

// doPlainStore implements a non-atomic store with race detection.
func (s *System) doPlainStore(t *Thread, loc *location, v memmodel.Value) {
	s.bumpStep()
	t.spinClear()
	s.checkLifetime(t, loc, "plain store")
	t.tseq++
	t.clock.Set(t.id, t.tseq)
	if s.cfg.FastMode {
		// Exact vector checks instead of the store/load record scans.
		for tid, seq := range loc.writeSeq {
			if seq != 0 && tid != t.id && !t.clock.Contains(tid, seq) {
				s.record(t, memmodel.KindPlainStore, memmodel.Relaxed, loc, v)
				s.failf(FailDataRace, "data race on %s: T%d store races with T%d store",
					loc.name, t.id, tid)
			}
		}
		for tid, seq := range loc.readSeq {
			if seq != 0 && tid != t.id && !t.clock.Contains(tid, seq) {
				s.record(t, memmodel.KindPlainStore, memmodel.Relaxed, loc, v)
				s.failf(FailDataRace, "data race on %s: T%d store races with T%d load",
					loc.name, t.id, tid)
			}
		}
	} else {
		for _, st := range loc.stores {
			if st.act.Thread != t.id && !t.clock.Contains(st.act.Thread, st.act.TSeq) {
				s.record(t, memmodel.KindPlainStore, memmodel.Relaxed, loc, v)
				s.failf(FailDataRace, "data race on %s: T%d store races with T%d store (#%d)",
					loc.name, t.id, st.act.Thread, st.act.ID)
			}
		}
		for _, lr := range loc.loads {
			if lr.tid != t.id && !t.clock.Contains(lr.tid, lr.tseq) {
				s.record(t, memmodel.KindPlainStore, memmodel.Relaxed, loc, v)
				s.failf(FailDataRace, "data race on %s: T%d store races with T%d load",
					loc.name, t.id, lr.tid)
			}
		}
	}
	act := s.record(t, memmodel.KindPlainStore, memmodel.Relaxed, loc, v)
	moIdx := loc.moNext()
	act.MOIndex = moIdx
	loc.stores = append(loc.stores, storeRec{act: act})
	loc.setLastStoreByThread(t.id, moIdx)
	setSeq(&loc.writeSeq, t.id, t.tseq)
	s.maybeEvict(loc)
	s.fpMoOp(loc, fpOpPlainStore, t, uint64(v))
	s.fpThreadOp(t, fpOpPlainStore, loc, uint64(moIdx), uint64(v))
}

// doRawLoad implements Atomic.RawLoad: a non-atomic load of an atomic
// location (C11Tester's signature mixed-access scenario — e.g. reading an
// atomic counter outside the critical section). Any write by another
// thread not ordered with the load — atomic or not — is a mixed race.
// Like plain accesses it is not a scheduling point.
func (s *System) doRawLoad(t *Thread, loc *location) memmodel.Value {
	s.bumpStep()
	// A raw load is not tracked in recentReads, so an iteration
	// containing one cannot be proven pure.
	t.spinClear()
	s.checkLifetime(t, loc, "non-atomic load")
	t.tseq++
	t.clock.Set(t.id, t.tseq)
	if loc.moNext() == 0 {
		s.record(t, memmodel.KindPlainLoad, memmodel.Relaxed, loc, 0)
		s.failf(FailUninitLoad, "non-atomic load of atomic %s before any store", loc.name)
	}
	s.checkMixed(t, loc, loc.writeSeq, memmodel.KindPlainLoad, "non-atomic load", "atomic store")
	s.checkMixed(t, loc, loc.rawWriteSeq, memmodel.KindPlainLoad, "non-atomic load", "non-atomic store")
	// Race-free means every store is ordered before this load, so the
	// newest one is the unique coherent value.
	idx := loc.lastStoreIdx()
	st := *loc.store(idx)
	act := s.record(t, memmodel.KindPlainLoad, memmodel.Relaxed, loc, st.act.Value)
	act.RF = st.act
	s.addLoad(t, loc, idx)
	setSeq(&loc.rawReadSeq, t.id, t.tseq)
	return st.act.Value
}

// doRawStore implements Atomic.RawStore: a non-atomic store to an atomic
// location. It conflicts with every other-thread access, atomic or not.
// The stored value joins the modification order (relaxed-like, carrying
// no release clock) so subsequent atomic loads observe it.
func (s *System) doRawStore(t *Thread, loc *location, v memmodel.Value) {
	s.bumpStep()
	t.spinClear()
	s.checkLifetime(t, loc, "non-atomic store")
	t.tseq++
	t.clock.Set(t.id, t.tseq)
	s.checkMixed(t, loc, loc.writeSeq, memmodel.KindPlainStore, "non-atomic store", "atomic store")
	s.checkMixed(t, loc, loc.readSeq, memmodel.KindPlainStore, "non-atomic store", "atomic load")
	s.checkMixed(t, loc, loc.rawWriteSeq, memmodel.KindPlainStore, "non-atomic store", "non-atomic store")
	s.checkMixed(t, loc, loc.rawReadSeq, memmodel.KindPlainStore, "non-atomic store", "non-atomic load")
	act := s.record(t, memmodel.KindPlainStore, memmodel.Relaxed, loc, v)
	moIdx := loc.moNext()
	act.MOIndex = moIdx
	loc.stores = append(loc.stores, storeRec{act: act})
	loc.setLastStoreByThread(t.id, moIdx)
	setSeq(&loc.rawWriteSeq, t.id, t.tseq)
	// Atomic readers use the visibility cache; the new store must miss it.
	s.storeEpoch++
	s.maybeEvict(loc)
	s.fpMoOp(loc, fpOpRawStore, t, uint64(v))
	s.fpThreadOp(t, fpOpRawStore, loc, uint64(moIdx), uint64(v))
}
