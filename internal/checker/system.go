package checker

import (
	"fmt"
	"strings"

	"repro/internal/memmodel"
)

// chooser supplies nondeterministic decisions to a running execution.
// The explorer implements it with a replayable decision stack.
type chooser interface {
	// choose picks one of n alternatives (n >= 1) for value
	// nondeterminism ('r' reads-from, 'c' CAS outcome).
	choose(n int, kind byte) int
	// pickThread picks the next thread to run among the enabled ones.
	// A nil result prunes the execution as redundant (every enabled
	// thread is asleep under the sleep-set reduction).
	pickThread(s *System, enabled []*Thread) *Thread
	// pinnedFloor returns the recorded visibility record for the next
	// value-nondeterminism site while the chooser is re-driving a frozen
	// decision prefix: replay is deterministic, so the site reaches the
	// exact state it had when the record was taken and may skip the
	// store/load scans entirely. ok is false when the site must compute
	// fresh (and then report the result via noteFloor).
	pinnedFloor() (*floorRec, bool)
	// noteFloor records a freshly computed visibility record at the
	// current value-site position and returns a pointer the caller may
	// update with resolved-choice bookkeeping (see doCAS).
	noteFloor(rec floorRec) *floorRec
}

// floorRec is the visibility computation of one value-nondeterminism
// site (atomic load 'r', CAS 'c', RMW 'm'), pinned by the dfsChooser so
// frozen-prefix replay can reuse it. Everything in it is a function of
// the execution state at the site — never of the choice taken there —
// except the resolved* pair, which memoizes the store index the last
// taken choice mapped to (kind 'c' only; resolvedFor is -1 until set).
type floorRec struct {
	kind        byte
	floor       int
	published   bool
	n           int
	canSucceed  bool
	resolvedFor int
	resolvedIdx int
}

// System is the state of one simulated execution: threads, locations,
// the action trace, and the seq_cst bookkeeping. The explorer builds a
// fresh System per execution, or recycles one through an execPool.
type System struct {
	cfg     *Config
	chooser chooser
	// pool, when non-nil, recycles threads/locations/actions/clocks
	// across the executions of one shard (see pool.go).
	pool *execPool

	threads []*Thread
	locs    []*location
	actions []*memmodel.Action

	// scCount is the number of seq_cst actions so far (the next SC
	// index to hand out).
	scCount int
	// storeEpoch counts state changes that can wake yielded spinners.
	storeEpoch uint64
	stepCount  int

	execIndex   int
	aborted     bool
	pruned      bool
	pruneReason pruneReason
	failure     *Failure
	mutexCount  int

	// schedDone is how the baton-passing scheduler returns control to
	// runExecution: scheduling decisions run inline in whichever thread
	// goroutine holds the baton (see Thread.park), and the holder whose
	// decision finds the execution over signals here exactly once.
	schedDone chan struct{}
	// draining tells an unwinding thread goroutine that reap is
	// collecting goroutines: skip the baton handoff and just signal
	// exit.
	draining bool

	// enabledBuf backs enabledThreads, reused across scheduling steps.
	enabledBuf []*Thread

	// Spec-checking statistics reported by the core layer through
	// ReportSpecStats; runOne folds them into Result.Stats.
	specReport SpecReport

	// sleep is the sleep set of the current exploration subtree.
	sleep *sleepSet

	// Aux carries per-execution state for higher layers (the CDSSpec
	// monitor installs itself here from the OnRunStart hook).
	Aux any
	// Scratch carries per-shard state created by Config.NewScratch (the
	// CDSSpec layer keeps its spec-check memoization cache here). Unlike
	// Aux it outlives the execution: every execution of one exploration
	// shard sees the same value. Only the shard's own (single) goroutine
	// touches it, so no locking is needed.
	Scratch any
}

// Actions returns the action trace of the execution so far.
func (s *System) Actions() []*memmodel.Action { return s.actions }

// Failure returns the failure that aborted the execution, if any.
func (s *System) Failure() *Failure { return s.failure }

// ExecIndex returns the 1-based index of this execution within the
// exploration.
func (s *System) ExecIndex() int { return s.execIndex }

// SpecReport carries the per-execution checking statistics the
// specification layer (which sits above this package and cannot be
// imported from it) reports from the OnExecution hook: sequential
// histories enumerated, whether the enumeration hit the history cap,
// admissibility rule pairs evaluated, justifying-subhistory searches
// run, and the spec-check memoization outcome (at most one of CacheHits/
// CacheMisses is set per check; CacheEntries counts insertions).
type SpecReport struct {
	Histories           int
	HistoriesCapped     bool
	AdmissibilityChecks int
	JustifySearches     int
	CacheHits           int
	CacheMisses         int
	CacheEntries        int
}

// ReportSpecStats accumulates one SpecReport into the execution; runOne
// folds the total into Result.Stats.
func (s *System) ReportSpecStats(r SpecReport) {
	s.specReport.Histories += r.Histories
	s.specReport.HistoriesCapped = s.specReport.HistoriesCapped || r.HistoriesCapped
	s.specReport.AdmissibilityChecks += r.AdmissibilityChecks
	s.specReport.JustifySearches += r.JustifySearches
	s.specReport.CacheHits += r.CacheHits
	s.specReport.CacheMisses += r.CacheMisses
	s.specReport.CacheEntries += r.CacheEntries
}

// pruneReason records why an execution was abandoned without a report,
// feeding the Stats.Pruned* split.
type pruneReason uint8

const (
	pruneNone      pruneReason = iota
	pruneSleepSet              // every enabled thread asleep: redundant interleaving
	pruneFairness              // spinner ignored a newer store: unfair execution
	pruneStepBound             // Config.MaxSteps exceeded
)

// failf records a failure and abandons the current execution by
// unwinding the calling simulated thread.
func (s *System) failf(kind FailureKind, format string, args ...any) {
	if s.failure == nil {
		s.failure = &Failure{
			Kind:      kind,
			Msg:       fmt.Sprintf(format, args...),
			Execution: s.execIndex,
			ActionID:  s.lastActionID(),
			Trace:     s.TraceString(s.cfg.TraceLimit),
		}
	}
	s.aborted = true
	panic(abortRun{})
}

// prune abandons the current execution without reporting a bug.
func (s *System) prune() {
	s.pruned = true
	s.aborted = true
	panic(abortRun{})
}

// lastActionID returns the trace ID of the most recent action, or 0 when
// the trace is empty (action 0 is always the root thread's thread-start,
// never itself a failure site, so 0 doubles as "unknown").
func (s *System) lastActionID() int {
	if len(s.actions) == 0 {
		return 0
	}
	return s.actions[len(s.actions)-1].ID
}

// TraceString renders up to limit trailing actions of the trace.
func (s *System) TraceString(limit int) string {
	acts := s.actions
	var b strings.Builder
	start := 0
	if limit > 0 && len(acts) > limit {
		start = len(acts) - limit
		fmt.Fprintf(&b, "... (%d earlier actions)\n", start)
	}
	for _, a := range acts[start:] {
		b.WriteString(a.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// newThread registers a thread running fn whose clock starts as a copy
// of src (empty when src is nil; Spawn passes the parent's clock).
func (s *System) newThread(name string, fn func(*Thread), src *memmodel.ClockVector) *Thread {
	if len(s.threads) >= s.cfg.MaxThreads {
		s.failf(FailAPIMisuse, "too many threads (max %d)", s.cfg.MaxThreads)
	}
	var t *Thread
	if s.pool != nil {
		t = s.pool.getThread(s, len(s.threads), name, fn, src)
	} else {
		t = newThreadStruct(s, len(s.threads), name, fn, cloneOrNew(src))
	}
	// The child starts parked at its start point; its goroutine blocks
	// on the resume channel until a scheduling decision picks it, so no
	// startup handshake is needed.
	t.state = tsParked
	s.threads = append(s.threads, t)
	go t.threadMain()
	return t
}

func (s *System) newAtomic(name string) *Atomic {
	return &Atomic{loc: s.newLocation(name, true), sys: s}
}

func (s *System) newPlain(name string) *Plain {
	return &Plain{loc: s.newLocation(name, false), sys: s}
}

// newLocation registers a location. Creation is ordered just before the
// creating thread's next action, so a location is published to exactly
// the threads that synchronized with anything the creator did afterwards.
func (s *System) newLocation(name string, atomic bool) *location {
	tid, tseq := 0, uint32(0)
	if len(s.threads) > 0 {
		if t := s.creatingThread(); t != nil {
			tid, tseq = t.id, t.tseq+1
		}
	}
	var l *location
	if s.pool != nil {
		l = s.pool.getLocation(len(s.locs))
	} else {
		l = &location{maxLoadRF: -1}
	}
	l.id = len(s.locs)
	l.name = name
	l.atomic = atomic
	l.creatorTid = tid
	l.creatorTSeq = tseq
	s.locs = append(s.locs, l)
	return l
}

// creatingThread returns the thread currently holding the baton.
func (s *System) creatingThread() *Thread {
	for _, t := range s.threads {
		if t.state == tsRunning {
			return t
		}
	}
	return nil
}

// checkLifetime enforces that the location's creation happened-before the
// access (the other half of CDSChecker's uninitialized-memory checking).
func (s *System) checkLifetime(t *Thread, loc *location, what string) {
	if s.cfg.DisableLifetimeCheck {
		return
	}
	if t.id == loc.creatorTid || t.clock.Contains(loc.creatorTid, loc.creatorTSeq) {
		return
	}
	t.tseq++
	t.clock.Set(t.id, t.tseq)
	s.record(t, memmodel.KindAtomicLoad, memmodel.Relaxed, loc, 0)
	s.failf(FailUninitLoad, "%s of %s: the location's creation does not happen-before the access (unpublished memory)", what, loc.name)
}

// record appends an action to the trace and snapshots the thread's clock.
// The caller must already have bumped t.tseq and applied any clock merges
// the action performs.
func (s *System) record(t *Thread, kind memmodel.Kind, ord memmodel.MemOrder, loc *location, v memmodel.Value) *memmodel.Action {
	var act *memmodel.Action
	if s.pool != nil {
		act = s.pool.getAction()
	} else {
		act = &memmodel.Action{}
	}
	// Full overwrite: pooled actions carry the previous execution's
	// values in every field.
	*act = memmodel.Action{
		ID:      len(s.actions),
		Thread:  t.id,
		TSeq:    t.tseq,
		Kind:    kind,
		Order:   ord,
		LocID:   -1,
		SCIndex: -1,
		Value:   v,
	}
	if loc != nil {
		act.LocID = loc.id
		act.LocName = loc.name
	}
	act.Clock = s.snap(t.clock)
	s.actions = append(s.actions, act)
	t.lastAction = act
	return act
}

// snap captures the current value of cv for retention in per-execution
// state (action clocks, release clocks, mutex clocks). Pooled executions
// copy into a recycled arena clock; unpooled ones take a copy-on-write
// share, so the snapshot costs one small struct instead of a deep copy.
func (s *System) snap(cv *memmodel.ClockVector) *memmodel.ClockVector {
	if s.pool != nil {
		return s.pool.getClock(cv)
	}
	return cv.Share()
}

// blank returns an empty clock for per-execution state.
func (s *System) blank() *memmodel.ClockVector {
	if s.pool != nil {
		return s.pool.getClock(nil)
	}
	return memmodel.NewClockVector()
}

// bumpStep advances the per-run step counter and prunes runaway runs.
// A run over the step bound is pruned, never reported: it must count
// exactly once, as Pruned (with Stats.PrunedStepBound), and never leak a
// FailTooManySteps into FailureCount or the Figure 8 detection channels.
// (An earlier version also populated s.failure here, relying on runOne
// checking s.pruned first to keep the failure invisible — a fragile
// ordering dependence this accounting no longer has.)
func (s *System) bumpStep() {
	s.stepCount++
	if s.cfg.MaxSteps > 0 && s.stepCount > s.cfg.MaxSteps {
		s.pruneReason = pruneStepBound
		s.prune()
	}
}

// visibleFloor computes the lowest modification-order index of loc that a
// load by thread t with order ord may read, applying:
//
//   - write-read coherence: a store that happens-before the load hides all
//     mo-earlier stores;
//   - read-read coherence: a load that happens-before this one pins the
//     floor at the store it read;
//   - the seq_cst rules: the load may not read mo-before the floor implied
//     by SC stores and SC fences that precede its effective SC position.
//
// The result is memoized per (thread, location) under the exact key
// (t.clockEpoch, s.storeEpoch, scIdx); see the invalidation argument on
// each epoch. Runs of loads with no intervening synchronization — the
// common case in spin loops and traversals — hit the cache and skip the
// scans entirely.
func (s *System) visibleFloor(t *Thread, loc *location, ord memmodel.MemOrder) (floor int, published bool) {
	// Effective SC position of the reader. For an SC load it is s.scCount
	// (all existing SC actions precede it), which moves with every SC
	// action anywhere; for a load after an SC fence it is the fence's
	// fixed index, and scFloors entries appended later carry strictly
	// larger scIdx (SC indices are handed out in increasing order), so
	// the contributing set {f : f.scIdx < scIdx} is frozen — an exact
	// match on scIdx keeps the cached floor sound in both cases.
	scIdx := -1
	if ord.IsSeqCst() {
		scIdx = s.scCount
	} else if t.lastSCFence >= 0 {
		scIdx = t.lastSCFence
	}
	if s.cfg.DisableFloorCache {
		return s.visibleFloorScan(t, loc, scIdx)
	}
	e := loc.cacheFor(t.id)
	// Exact-match validity: a new store anywhere bumps storeEpoch (so new
	// stores and new scFloors-from-SC-stores miss); anything raising
	// t.clock from outside bumps clockEpoch (so stores/loads by other
	// threads that became visible through a merge miss — without a merge
	// they are not covered by t.clock and cannot contribute); the
	// thread's own loads of loc raise e.floor in place below; scFloors
	// from SC fences change scIdx (an SC fence advances scCount, and the
	// thread's own fence moves t.lastSCFence).
	if e.valid && e.clockEpoch == t.clockEpoch && e.storeEpoch == s.storeEpoch && e.scIdx == scIdx {
		return e.floor, e.published
	}
	floor, published = s.visibleFloorScan(t, loc, scIdx)
	*e = floorEntry{
		clockEpoch: t.clockEpoch,
		storeEpoch: s.storeEpoch,
		scIdx:      scIdx,
		floor:      floor,
		published:  published,
		valid:      true,
	}
	return floor, published
}

// noteOwnLoad raises t's cached floor for loc to idx after t read the
// store at mo index idx: the thread's own loads are always covered by
// its own clock, so the read-read floor tightens without any epoch
// moving. A stale-keyed entry is updated harmlessly (it cannot match).
func (s *System) noteOwnLoad(t *Thread, loc *location, idx int) {
	if s.cfg.DisableFloorCache {
		return
	}
	if e := loc.cacheFor(t.id); e.valid && idx > e.floor {
		e.floor = idx
	}
}

// visibleFloorScan is the uncached visibility computation.
func (s *System) visibleFloorScan(t *Thread, loc *location, scIdx int) (floor int, published bool) {
	for i, st := range loc.stores {
		if t.clock.Contains(st.act.Thread, st.act.TSeq) {
			published = true
			if i > floor {
				floor = i
			}
		}
	}
	if loc.maxLoadRF > floor {
		for _, lr := range loc.loads {
			if lr.rfMO > floor && t.clock.Contains(lr.tid, lr.tseq) {
				floor = lr.rfMO
			}
		}
	}
	if scIdx >= 0 {
		for _, f := range loc.scFloors {
			if f.scIdx < scIdx && f.moIdx > floor {
				floor = f.moIdx
			}
		}
	}
	return floor, published
}

// addLoad appends a read-read coherence record and maintains the scan
// bound and compaction schedule.
func (s *System) addLoad(t *Thread, loc *location, idx int) {
	loc.loads = append(loc.loads, loadRec{tid: t.id, tseq: t.tseq, rfMO: idx})
	if idx > loc.maxLoadRF {
		loc.maxLoadRF = idx
	}
	if loc.atomic {
		s.maybeCompactLoads(loc)
	}
}

// maybeCompactLoads discards loadRec entries that can never again raise a
// visibility floor. A record with rfMO <= glb is dead, where glb is the
// minimum over all unfinished threads of the thread's store-derived floor
// for loc: any future load's floor starts at its thread's store floor,
// store floors only grow over time (clocks only gain entries, the
// modification order only appends), and a future thread inherits its
// spawner's clock, hence a store floor >= the spawner's. So every floor
// any future load can compute is >= glb, and records at or below it are
// dominated forever. Plain locations are never compacted — their load
// records feed the data-race check, not just coherence.
func (s *System) maybeCompactLoads(loc *location) {
	if s.cfg.DisableLoadCompaction {
		return
	}
	if loc.nextCompact == 0 {
		loc.nextCompact = s.cfg.compactThreshold
	}
	if len(loc.loads) < loc.nextCompact {
		return
	}
	glb := -1
	live := false
	for _, t := range s.threads {
		if t.state == tsFinished {
			continue
		}
		f := -1
		for i, st := range loc.stores {
			if t.clock.Contains(st.act.Thread, st.act.TSeq) {
				f = i
			}
		}
		if !live || f < glb {
			glb = f
		}
		live = true
	}
	if live && glb >= 0 {
		kept := loc.loads[:0]
		maxRF := -1
		for _, lr := range loc.loads {
			if lr.rfMO > glb {
				kept = append(kept, lr)
				if lr.rfMO > maxRF {
					maxRF = lr.rfMO
				}
			}
		}
		loc.loads = kept
		loc.maxLoadRF = maxRF
	}
	// Re-arm after another threshold's worth of growth, so a location
	// whose records are all live is not rescanned on every load.
	loc.nextCompact = len(loc.loads) + s.cfg.compactThreshold
}

// checkPublished enforces CDSChecker's uninitialized-load check in its
// full form: a load of a location none of whose stores happens-before the
// load is reading memory whose initialization was never made visible to
// this thread (e.g. a node reached through an unsynchronized pointer).
func (s *System) checkPublished(t *Thread, loc *location, published bool, what string) {
	if published || s.cfg.DisableLifetimeCheck {
		return
	}
	t.tseq++
	t.clock.Set(t.id, t.tseq)
	s.record(t, memmodel.KindAtomicLoad, memmodel.Relaxed, loc, 0)
	s.failf(FailUninitLoad, "%s of %s: no initializing store happens-before the access (reads unpublished memory)", what, loc.name)
}

// validatePin recomputes the visibility record the chooser pinned and
// panics on any mismatch — the DebugReplayCheck guard that frozen-prefix
// replay really is deterministic. A mismatch is an internal invariant
// violation, never a property of the checked program.
func (s *System) validatePin(t *Thread, loc *location, ord memmodel.MemOrder, rec *floorRec) {
	scIdx := -1
	if ord.IsSeqCst() {
		scIdx = s.scCount
	} else if t.lastSCFence >= 0 {
		scIdx = t.lastSCFence
	}
	floor, published := s.visibleFloorScan(t, loc, scIdx)
	switch rec.kind {
	case 'r':
		n := len(loc.stores) - floor
		if floor != rec.floor || published != rec.published || n != rec.n {
			panic(fmt.Sprintf("checker: replay pin mismatch at load of %s: pinned floor=%d published=%v n=%d, recomputed floor=%d published=%v n=%d",
				loc.name, rec.floor, rec.published, rec.n, floor, published, n))
		}
	case 'm':
		if published != rec.published {
			panic(fmt.Sprintf("checker: replay pin mismatch at RMW of %s: pinned published=%v, recomputed %v",
				loc.name, rec.published, published))
		}
	}
}

// releaseClockFor computes the release clock ("sync clock") carried by a
// new store: the clock an acquire load will merge when it reads the store.
//   - A release-or-stronger store releases the thread's current clock.
//   - A relaxed store after a release fence releases the fence's clock.
//   - An RMW additionally continues the release sequence of the store it
//     read from.
func (s *System) releaseClockFor(t *Thread, ord memmodel.MemOrder, rfSync *memmodel.ClockVector) *memmodel.ClockVector {
	var cv *memmodel.ClockVector
	switch {
	case ord.IsRelease():
		cv = s.snap(t.clock)
	case t.relFence != nil:
		cv = s.snap(t.relFence)
	}
	if rfSync != nil {
		if cv == nil {
			cv = s.blank()
		}
		cv.Merge(rfSync)
	}
	return cv
}

// applyReadSync applies the acquire side of reading store st.
func (s *System) applyReadSync(t *Thread, ord memmodel.MemOrder, st storeRec) {
	if st.sync == nil {
		return
	}
	if ord.IsAcquire() {
		if t.clock.Merge(st.sync) {
			t.clockEpoch++
		}
	} else {
		// A later acquire fence can still pick this up.
		t.acqPending.Merge(st.sync)
	}
}

func (s *System) assignSC(act *memmodel.Action, ord memmodel.MemOrder) {
	if ord.IsSeqCst() {
		act.SCIndex = s.scCount
		s.scCount++
	}
}

// doLoad implements an atomic load: compute the visible stores, branch on
// the choice, apply synchronization, and record the action. During
// frozen-prefix replay the candidate set is pinned by the chooser and the
// lifetime/visibility checks are skipped — they passed when the prefix
// was first executed, and replay re-creates the identical state.
func (s *System) doLoad(t *Thread, loc *location, ord memmodel.MemOrder) memmodel.Value {
	s.bumpStep()
	var floor, n int
	if rec, ok := s.chooser.pinnedFloor(); ok {
		if rec.kind != 'r' {
			panic(fmt.Sprintf("checker: replay pin desync: load of %s got record kind %q", loc.name, rec.kind))
		}
		if s.cfg.DebugReplayCheck {
			s.validatePin(t, loc, ord, rec)
		}
		floor, n = rec.floor, rec.n
	} else {
		s.checkLifetime(t, loc, "atomic load")
		if len(loc.stores) == 0 {
			t.tseq++
			t.clock.Set(t.id, t.tseq)
			s.record(t, memmodel.KindAtomicLoad, ord, loc, 0)
			s.failf(FailUninitLoad, "atomic load of %s before any store", loc.name)
		}
		var published bool
		floor, published = s.visibleFloor(t, loc, ord)
		s.checkPublished(t, loc, published, "atomic load")
		n = len(loc.stores) - floor
		s.chooser.noteFloor(floorRec{kind: 'r', floor: floor, published: published, n: n})
	}
	idx := floor + s.chooser.choose(n, 'r')
	st := loc.stores[idx]

	t.tseq++
	t.clock.Set(t.id, t.tseq)
	s.applyReadSync(t, ord, st)
	act := s.record(t, memmodel.KindAtomicLoad, ord, loc, st.act.Value)
	act.RF = st.act
	s.assignSC(act, ord)
	s.addLoad(t, loc, idx)
	s.noteOwnLoad(t, loc, idx)
	t.recentReads = append(t.recentReads, readRef{loc: loc, rfMO: idx})
	s.sleep.wake(pendSig{class: sigMem, loc: loc.id, sc: ord.IsSeqCst()})
	return st.act.Value
}

// doStore implements an atomic store. rfSync is non-nil only when called
// from doRMW (release-sequence continuation).
func (s *System) doStore(t *Thread, loc *location, ord memmodel.MemOrder, v memmodel.Value, rfSync *memmodel.ClockVector) *memmodel.Action {
	s.bumpStep()
	s.checkLifetime(t, loc, "atomic store")
	t.tseq++
	t.clock.Set(t.id, t.tseq)
	sync := s.releaseClockFor(t, ord, rfSync)
	act := s.record(t, memmodel.KindAtomicStore, ord, loc, v)
	moIdx := len(loc.stores)
	act.MOIndex = moIdx
	loc.stores = append(loc.stores, storeRec{act: act, sync: sync})
	loc.setLastStoreByThread(t.id, moIdx)
	s.assignSC(act, ord)
	if act.SCIndex >= 0 {
		loc.scFloors = append(loc.scFloors, scFloor{scIdx: act.SCIndex, moIdx: moIdx})
	}
	s.storeEpoch++
	s.sleep.wake(pendSig{class: sigMem, loc: loc.id, write: true, sc: ord.IsSeqCst()})
	return act
}

// doRMW implements an atomic read-modify-write. Per C/C++11 atomicity the
// read half observes the mo-latest store; the write half is mo-adjacent.
func (s *System) doRMW(t *Thread, loc *location, ord memmodel.MemOrder, f func(memmodel.Value) memmodel.Value) memmodel.Value {
	s.bumpStep()
	if rec, ok := s.chooser.pinnedFloor(); ok {
		if rec.kind != 'm' {
			panic(fmt.Sprintf("checker: replay pin desync: RMW of %s got record kind %q", loc.name, rec.kind))
		}
		if s.cfg.DebugReplayCheck {
			s.validatePin(t, loc, ord, rec)
		}
	} else {
		s.checkLifetime(t, loc, "atomic RMW")
		if len(loc.stores) == 0 {
			t.tseq++
			t.clock.Set(t.id, t.tseq)
			s.record(t, memmodel.KindAtomicRMW, ord, loc, 0)
			s.failf(FailUninitLoad, "atomic RMW of %s before any store", loc.name)
		}
		_, published := s.visibleFloor(t, loc, ord)
		s.checkPublished(t, loc, published, "atomic RMW")
		s.chooser.noteFloor(floorRec{kind: 'm', published: published})
	}
	last := loc.stores[len(loc.stores)-1]
	old := last.act.Value

	t.tseq++
	t.clock.Set(t.id, t.tseq)
	s.applyReadSync(t, ord, last)
	s.addLoad(t, loc, len(loc.stores)-1)

	sync := s.releaseClockFor(t, ord, last.sync)
	act := s.record(t, memmodel.KindAtomicRMW, ord, loc, f(old))
	act.RF = last.act
	moIdx := len(loc.stores)
	act.MOIndex = moIdx
	loc.stores = append(loc.stores, storeRec{act: act, sync: sync})
	loc.setLastStoreByThread(t.id, moIdx)
	s.assignSC(act, ord)
	if act.SCIndex >= 0 {
		loc.scFloors = append(loc.scFloors, scFloor{scIdx: act.SCIndex, moIdx: moIdx})
	}
	s.storeEpoch++
	s.sleep.wake(pendSig{class: sigMem, loc: loc.id, write: true, sc: ord.IsSeqCst()})
	return old
}

// doCAS implements compare_exchange_strong. The outcome set is:
//   - success (when the mo-latest value equals expected), plus
//   - one failure alternative per visible store whose value differs from
//     expected (a failing CAS is just a load with failOrd).
//
// Failure alternatives are counted, not materialized: the chosen one is
// resolved by rank afterwards (and the resolution memoized on the pinned
// record, so replays of the same branch skip even that scan).
func (s *System) doCAS(t *Thread, loc *location, expected, desired memmodel.Value, succOrd, failOrd memmodel.MemOrder) (memmodel.Value, bool) {
	s.bumpStep()
	var rec *floorRec
	if r, ok := s.chooser.pinnedFloor(); ok {
		if r.kind != 'c' {
			panic(fmt.Sprintf("checker: replay pin desync: CAS of %s got record kind %q", loc.name, r.kind))
		}
		if s.cfg.DebugReplayCheck {
			s.validateCASPin(t, loc, expected, failOrd, r)
		}
		rec = r
	} else {
		s.checkLifetime(t, loc, "CAS")
		if len(loc.stores) == 0 {
			t.tseq++
			t.clock.Set(t.id, t.tseq)
			s.record(t, memmodel.KindAtomicRMW, succOrd, loc, 0)
			s.failf(FailUninitLoad, "CAS of %s before any store", loc.name)
		}
		canSucceed := loc.stores[len(loc.stores)-1].act.Value == expected
		floor, published := s.visibleFloor(t, loc, failOrd)
		s.checkPublished(t, loc, published, "CAS")
		n := 0
		for i := floor; i < len(loc.stores); i++ {
			if loc.stores[i].act.Value != expected {
				n++
			}
		}
		if canSucceed {
			n++
		}
		if n == 0 {
			// Every visible store holds the expected value but the latest
			// is not it — impossible since the latest is always visible;
			// so n == 0 implies canSucceed was the only branch.
			s.failf(FailAPIMisuse, "CAS on %s with no outcome", loc.name)
		}
		rec = s.chooser.noteFloor(floorRec{
			kind: 'c', floor: floor, published: published, n: n,
			canSucceed: canSucceed, resolvedFor: -1,
		})
	}
	choice := s.chooser.choose(rec.n, 'c')

	if rec.canSucceed && choice == 0 {
		// Success: behave exactly like doRMW writing desired.
		lastIdx := len(loc.stores) - 1
		last := loc.stores[lastIdx]
		t.tseq++
		t.clock.Set(t.id, t.tseq)
		s.applyReadSync(t, succOrd, last)
		s.addLoad(t, loc, lastIdx)
		sync := s.releaseClockFor(t, succOrd, last.sync)
		act := s.record(t, memmodel.KindAtomicRMW, succOrd, loc, desired)
		act.RF = last.act
		moIdx := len(loc.stores)
		act.MOIndex = moIdx
		loc.stores = append(loc.stores, storeRec{act: act, sync: sync})
		loc.setLastStoreByThread(t.id, moIdx)
		s.assignSC(act, succOrd)
		if act.SCIndex >= 0 {
			loc.scFloors = append(loc.scFloors, scFloor{scIdx: act.SCIndex, moIdx: moIdx})
		}
		s.storeEpoch++
		s.sleep.wake(pendSig{class: sigMem, loc: loc.id, write: true, sc: succOrd.IsSeqCst()})
		return expected, true
	}
	idx := rec.resolvedIdx
	if rec.resolvedFor != choice {
		// Resolve the choice-th failure alternative: the rank-th store at
		// or above the floor whose value differs from expected.
		rank := choice
		if rec.canSucceed {
			rank--
		}
		idx = -1
		for i := rec.floor; i < len(loc.stores); i++ {
			if loc.stores[i].act.Value != expected {
				if rank == 0 {
					idx = i
					break
				}
				rank--
			}
		}
		if idx < 0 {
			panic(fmt.Sprintf("checker: CAS of %s: failure alternative %d out of range", loc.name, choice))
		}
		rec.resolvedFor = choice
		rec.resolvedIdx = idx
	}
	st := loc.stores[idx]
	t.tseq++
	t.clock.Set(t.id, t.tseq)
	s.applyReadSync(t, failOrd, st)
	act := s.record(t, memmodel.KindAtomicLoad, failOrd, loc, st.act.Value)
	act.RF = st.act
	s.assignSC(act, failOrd)
	s.addLoad(t, loc, idx)
	s.noteOwnLoad(t, loc, idx)
	t.recentReads = append(t.recentReads, readRef{loc: loc, rfMO: idx})
	s.sleep.wake(pendSig{class: sigMem, loc: loc.id, sc: failOrd.IsSeqCst()})
	return st.act.Value, false
}

// validateCASPin is validatePin for kind 'c'.
func (s *System) validateCASPin(t *Thread, loc *location, expected memmodel.Value, failOrd memmodel.MemOrder, rec *floorRec) {
	scIdx := -1
	if failOrd.IsSeqCst() {
		scIdx = s.scCount
	} else if t.lastSCFence >= 0 {
		scIdx = t.lastSCFence
	}
	floor, published := s.visibleFloorScan(t, loc, scIdx)
	canSucceed := len(loc.stores) > 0 && loc.stores[len(loc.stores)-1].act.Value == expected
	n := 0
	for i := floor; i < len(loc.stores); i++ {
		if loc.stores[i].act.Value != expected {
			n++
		}
	}
	if canSucceed {
		n++
	}
	if floor != rec.floor || published != rec.published || n != rec.n || canSucceed != rec.canSucceed {
		panic(fmt.Sprintf("checker: replay pin mismatch at CAS of %s: pinned floor=%d published=%v n=%d canSucceed=%v, recomputed floor=%d published=%v n=%d canSucceed=%v",
			loc.name, rec.floor, rec.published, rec.n, rec.canSucceed, floor, published, n, canSucceed))
	}
}

// doFence implements a stand-alone fence.
func (s *System) doFence(t *Thread, ord memmodel.MemOrder) {
	s.bumpStep()
	t.tseq++
	t.clock.Set(t.id, t.tseq)
	if ord.IsAcquire() {
		if t.clock.Merge(t.acqPending) {
			t.clockEpoch++
		}
	}
	if ord.IsRelease() {
		t.relFence = s.snap(t.clock)
	}
	act := s.record(t, memmodel.KindFence, ord, nil, 0)
	s.assignSC(act, ord)
	s.sleep.wake(pendSig{class: sigFence, loc: -1, sc: ord.IsSeqCst()})
	if act.SCIndex >= 0 {
		t.lastSCFence = act.SCIndex
		// An SC load (or a load after an SC fence) that follows this
		// fence in S must not read anything older than the last store
		// each thread issued before the fence — but only stores by
		// *this* thread are sequenced before it, so only they
		// contribute floors.
		for _, loc := range s.locs {
			if !loc.atomic {
				continue
			}
			if mo := loc.lastStoreByThread(t.id); mo >= 0 {
				loc.scFloors = append(loc.scFloors, scFloor{scIdx: act.SCIndex, moIdx: mo})
			}
		}
	}
}

// doPlainLoad implements a non-atomic load with race detection. It does
// not schedule: plain accesses run under the baton of the surrounding
// visible operation, which keeps the state space small without losing
// race detection (races are a property of happens-before, not of the
// interleaving).
func (s *System) doPlainLoad(t *Thread, loc *location) memmodel.Value {
	s.bumpStep()
	s.checkLifetime(t, loc, "plain load")
	t.tseq++
	t.clock.Set(t.id, t.tseq)
	if len(loc.stores) == 0 {
		s.record(t, memmodel.KindPlainLoad, memmodel.Relaxed, loc, 0)
		s.failf(FailUninitLoad, "load of plain location %s before any store", loc.name)
	}
	// Race: any store by another thread not ordered with this load.
	best := -1
	for i, st := range loc.stores {
		if t.clock.Contains(st.act.Thread, st.act.TSeq) {
			best = i
		} else if st.act.Thread != t.id {
			s.record(t, memmodel.KindPlainLoad, memmodel.Relaxed, loc, 0)
			s.failf(FailDataRace, "data race on %s: T%d load races with T%d store (#%d)",
				loc.name, t.id, st.act.Thread, st.act.ID)
		}
	}
	if best < 0 {
		s.record(t, memmodel.KindPlainLoad, memmodel.Relaxed, loc, 0)
		s.failf(FailUninitLoad, "load of plain location %s sees no ordered store", loc.name)
	}
	st := loc.stores[best]
	act := s.record(t, memmodel.KindPlainLoad, memmodel.Relaxed, loc, st.act.Value)
	act.RF = st.act
	s.addLoad(t, loc, best)
	t.recentReads = append(t.recentReads, readRef{loc: loc, rfMO: best})
	return st.act.Value
}

// doPlainStore implements a non-atomic store with race detection.
func (s *System) doPlainStore(t *Thread, loc *location, v memmodel.Value) {
	s.bumpStep()
	s.checkLifetime(t, loc, "plain store")
	t.tseq++
	t.clock.Set(t.id, t.tseq)
	for _, st := range loc.stores {
		if st.act.Thread != t.id && !t.clock.Contains(st.act.Thread, st.act.TSeq) {
			s.record(t, memmodel.KindPlainStore, memmodel.Relaxed, loc, v)
			s.failf(FailDataRace, "data race on %s: T%d store races with T%d store (#%d)",
				loc.name, t.id, st.act.Thread, st.act.ID)
		}
	}
	for _, lr := range loc.loads {
		if lr.tid != t.id && !t.clock.Contains(lr.tid, lr.tseq) {
			s.record(t, memmodel.KindPlainStore, memmodel.Relaxed, loc, v)
			s.failf(FailDataRace, "data race on %s: T%d store races with T%d load",
				loc.name, t.id, lr.tid)
		}
	}
	act := s.record(t, memmodel.KindPlainStore, memmodel.Relaxed, loc, v)
	moIdx := len(loc.stores)
	act.MOIndex = moIdx
	loc.stores = append(loc.stores, storeRec{act: act})
	loc.setLastStoreByThread(t.id, moIdx)
}
