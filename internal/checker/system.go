package checker

import (
	"fmt"
	"strings"

	"repro/internal/memmodel"
)

// chooser supplies nondeterministic decisions to a running execution.
// The explorer implements it with a replayable decision stack.
type chooser interface {
	// choose picks one of n alternatives (n >= 1) for value
	// nondeterminism ('r' reads-from, 'c' CAS outcome).
	choose(n int, kind byte) int
	// pickThread picks the next thread to run among the enabled ones.
	// A nil result prunes the execution as redundant (every enabled
	// thread is asleep under the sleep-set reduction).
	pickThread(s *System, enabled []*Thread) *Thread
}

// System is the state of one simulated execution: threads, locations,
// the action trace, and the seq_cst bookkeeping. A fresh System is built
// for every execution the explorer runs.
type System struct {
	cfg     *Config
	chooser chooser

	threads []*Thread
	locs    []*location
	actions []*memmodel.Action

	// scCount is the number of seq_cst actions so far (the next SC
	// index to hand out).
	scCount int
	// storeEpoch counts state changes that can wake yielded spinners.
	storeEpoch uint64
	stepCount  int

	execIndex   int
	aborted     bool
	pruned      bool
	pruneReason pruneReason
	failure     *Failure
	mutexCount  int

	// Spec-checking statistics reported by the core layer through
	// ReportSpecStats; runOne folds them into Result.Stats.
	specReport SpecReport

	// sleep is the sleep set of the current exploration subtree.
	sleep *sleepSet

	// Aux carries per-execution state for higher layers (the CDSSpec
	// monitor installs itself here from the OnRunStart hook).
	Aux any
	// Scratch carries per-shard state created by Config.NewScratch (the
	// CDSSpec layer keeps its spec-check memoization cache here). Unlike
	// Aux it outlives the execution: every execution of one exploration
	// shard sees the same value. Only the shard's own (single) goroutine
	// touches it, so no locking is needed.
	Scratch any
}

// Actions returns the action trace of the execution so far.
func (s *System) Actions() []*memmodel.Action { return s.actions }

// Failure returns the failure that aborted the execution, if any.
func (s *System) Failure() *Failure { return s.failure }

// ExecIndex returns the 1-based index of this execution within the
// exploration.
func (s *System) ExecIndex() int { return s.execIndex }

// SpecReport carries the per-execution checking statistics the
// specification layer (which sits above this package and cannot be
// imported from it) reports from the OnExecution hook: sequential
// histories enumerated, whether the enumeration hit the history cap,
// admissibility rule pairs evaluated, justifying-subhistory searches
// run, and the spec-check memoization outcome (at most one of CacheHits/
// CacheMisses is set per check; CacheEntries counts insertions).
type SpecReport struct {
	Histories           int
	HistoriesCapped     bool
	AdmissibilityChecks int
	JustifySearches     int
	CacheHits           int
	CacheMisses         int
	CacheEntries        int
}

// ReportSpecStats accumulates one SpecReport into the execution; runOne
// folds the total into Result.Stats.
func (s *System) ReportSpecStats(r SpecReport) {
	s.specReport.Histories += r.Histories
	s.specReport.HistoriesCapped = s.specReport.HistoriesCapped || r.HistoriesCapped
	s.specReport.AdmissibilityChecks += r.AdmissibilityChecks
	s.specReport.JustifySearches += r.JustifySearches
	s.specReport.CacheHits += r.CacheHits
	s.specReport.CacheMisses += r.CacheMisses
	s.specReport.CacheEntries += r.CacheEntries
}

// pruneReason records why an execution was abandoned without a report,
// feeding the Stats.Pruned* split.
type pruneReason uint8

const (
	pruneNone      pruneReason = iota
	pruneSleepSet              // every enabled thread asleep: redundant interleaving
	pruneFairness              // spinner ignored a newer store: unfair execution
	pruneStepBound             // Config.MaxSteps exceeded
)

// failf records a failure and abandons the current execution by
// unwinding the calling simulated thread.
func (s *System) failf(kind FailureKind, format string, args ...any) {
	if s.failure == nil {
		s.failure = &Failure{
			Kind:      kind,
			Msg:       fmt.Sprintf(format, args...),
			Execution: s.execIndex,
			ActionID:  s.lastActionID(),
			Trace:     s.TraceString(s.cfg.TraceLimit),
		}
	}
	s.aborted = true
	panic(abortRun{})
}

// prune abandons the current execution without reporting a bug.
func (s *System) prune() {
	s.pruned = true
	s.aborted = true
	panic(abortRun{})
}

// lastActionID returns the trace ID of the most recent action, or 0 when
// the trace is empty (action 0 is always the root thread's thread-start,
// never itself a failure site, so 0 doubles as "unknown").
func (s *System) lastActionID() int {
	if len(s.actions) == 0 {
		return 0
	}
	return s.actions[len(s.actions)-1].ID
}

// TraceString renders up to limit trailing actions of the trace.
func (s *System) TraceString(limit int) string {
	acts := s.actions
	var b strings.Builder
	start := 0
	if limit > 0 && len(acts) > limit {
		start = len(acts) - limit
		fmt.Fprintf(&b, "... (%d earlier actions)\n", start)
	}
	for _, a := range acts[start:] {
		b.WriteString(a.String())
		b.WriteByte('\n')
	}
	return b.String()
}

func (s *System) newThread(name string, fn func(*Thread), clock *memmodel.ClockVector) *Thread {
	if len(s.threads) >= s.cfg.MaxThreads {
		s.failf(FailAPIMisuse, "too many threads (max %d)", s.cfg.MaxThreads)
	}
	t := &Thread{
		sys:             s,
		id:              len(s.threads),
		name:            name,
		clock:           clock,
		lastSCFence:     -1,
		lastResortEpoch: ^uint64(0),
		acqPending:      memmodel.NewClockVector(),
		fn:              fn,
		resume:          make(chan struct{}),
		parked:          make(chan struct{}),
	}
	s.threads = append(s.threads, t)
	go t.threadMain()
	<-t.parked // wait for the child to park at its start point
	return t
}

func (s *System) newAtomic(name string) *Atomic {
	return &Atomic{loc: s.newLocation(name, true), sys: s}
}

func (s *System) newPlain(name string) *Plain {
	return &Plain{loc: s.newLocation(name, false), sys: s}
}

// newLocation registers a location. Creation is ordered just before the
// creating thread's next action, so a location is published to exactly
// the threads that synchronized with anything the creator did afterwards.
func (s *System) newLocation(name string, atomic bool) *location {
	tid, tseq := 0, uint32(0)
	if len(s.threads) > 0 {
		if t := s.creatingThread(); t != nil {
			tid, tseq = t.id, t.tseq+1
		}
	}
	l := &location{
		id:                len(s.locs),
		name:              name,
		atomic:            atomic,
		creatorTid:        tid,
		creatorTSeq:       tseq,
		lastStoreByThread: map[int]int{},
	}
	s.locs = append(s.locs, l)
	return l
}

// creatingThread returns the thread currently holding the baton.
func (s *System) creatingThread() *Thread {
	for _, t := range s.threads {
		if t.state == tsRunning {
			return t
		}
	}
	return nil
}

// checkLifetime enforces that the location's creation happened-before the
// access (the other half of CDSChecker's uninitialized-memory checking).
func (s *System) checkLifetime(t *Thread, loc *location, what string) {
	if s.cfg.DisableLifetimeCheck {
		return
	}
	if t.id == loc.creatorTid || t.clock.Contains(loc.creatorTid, loc.creatorTSeq) {
		return
	}
	t.tseq++
	t.clock.Set(t.id, t.tseq)
	s.record(t, memmodel.KindAtomicLoad, memmodel.Relaxed, loc, 0)
	s.failf(FailUninitLoad, "%s of %s: the location's creation does not happen-before the access (unpublished memory)", what, loc.name)
}

// record appends an action to the trace and snapshots the thread's clock.
// The caller must already have bumped t.tseq and applied any clock merges
// the action performs.
func (s *System) record(t *Thread, kind memmodel.Kind, ord memmodel.MemOrder, loc *location, v memmodel.Value) *memmodel.Action {
	act := &memmodel.Action{
		ID:      len(s.actions),
		Thread:  t.id,
		TSeq:    t.tseq,
		Kind:    kind,
		Order:   ord,
		LocID:   -1,
		SCIndex: -1,
		Value:   v,
	}
	if loc != nil {
		act.LocID = loc.id
		act.LocName = loc.name
	}
	act.Clock = t.clock.Clone()
	s.actions = append(s.actions, act)
	t.lastAction = act
	return act
}

// bumpStep advances the per-run step counter and prunes runaway runs.
// A run over the step bound is pruned, never reported: it must count
// exactly once, as Pruned (with Stats.PrunedStepBound), and never leak a
// FailTooManySteps into FailureCount or the Figure 8 detection channels.
// (An earlier version also populated s.failure here, relying on runOne
// checking s.pruned first to keep the failure invisible — a fragile
// ordering dependence this accounting no longer has.)
func (s *System) bumpStep() {
	s.stepCount++
	if s.cfg.MaxSteps > 0 && s.stepCount > s.cfg.MaxSteps {
		s.pruneReason = pruneStepBound
		s.prune()
	}
}

// visibleFloor computes the lowest modification-order index of loc that a
// load by thread t with order ord may read, applying:
//
//   - write-read coherence: a store that happens-before the load hides all
//     mo-earlier stores;
//   - read-read coherence: a load that happens-before this one pins the
//     floor at the store it read;
//   - the seq_cst rules: the load may not read mo-before the floor implied
//     by SC stores and SC fences that precede its effective SC position.
func (s *System) visibleFloor(t *Thread, loc *location, ord memmodel.MemOrder) (floor int, published bool) {
	for i, st := range loc.stores {
		if t.clock.Contains(st.act.Thread, st.act.TSeq) {
			published = true
			if i > floor {
				floor = i
			}
		}
	}
	for _, lr := range loc.loads {
		if lr.rfMO > floor && t.clock.Contains(lr.tid, lr.tseq) {
			floor = lr.rfMO
		}
	}
	// Effective SC position of the reader.
	scIdx := -1
	if ord.IsSeqCst() {
		scIdx = s.scCount // all existing SC actions precede it
	} else if t.lastSCFence >= 0 {
		scIdx = t.lastSCFence
	}
	if scIdx >= 0 {
		for _, f := range loc.scFloors {
			if f.scIdx < scIdx && f.moIdx > floor {
				floor = f.moIdx
			}
		}
	}
	return floor, published
}

// checkPublished enforces CDSChecker's uninitialized-load check in its
// full form: a load of a location none of whose stores happens-before the
// load is reading memory whose initialization was never made visible to
// this thread (e.g. a node reached through an unsynchronized pointer).
func (s *System) checkPublished(t *Thread, loc *location, published bool, what string) {
	if published || s.cfg.DisableLifetimeCheck {
		return
	}
	t.tseq++
	t.clock.Set(t.id, t.tseq)
	s.record(t, memmodel.KindAtomicLoad, memmodel.Relaxed, loc, 0)
	s.failf(FailUninitLoad, "%s of %s: no initializing store happens-before the access (reads unpublished memory)", what, loc.name)
}

// releaseClockFor computes the release clock ("sync clock") carried by a
// new store: the clock an acquire load will merge when it reads the store.
//   - A release-or-stronger store releases the thread's current clock.
//   - A relaxed store after a release fence releases the fence's clock.
//   - An RMW additionally continues the release sequence of the store it
//     read from.
func (s *System) releaseClockFor(t *Thread, ord memmodel.MemOrder, rfSync *memmodel.ClockVector) *memmodel.ClockVector {
	var cv *memmodel.ClockVector
	switch {
	case ord.IsRelease():
		cv = t.clock.Clone()
	case t.relFence != nil:
		cv = t.relFence.Clone()
	}
	if rfSync != nil {
		if cv == nil {
			cv = memmodel.NewClockVector()
		}
		cv.Merge(rfSync)
	}
	return cv
}

// applyReadSync applies the acquire side of reading store st.
func (s *System) applyReadSync(t *Thread, ord memmodel.MemOrder, st storeRec) {
	if st.sync == nil {
		return
	}
	if ord.IsAcquire() {
		t.clock.Merge(st.sync)
	} else {
		// A later acquire fence can still pick this up.
		t.acqPending.Merge(st.sync)
	}
}

func (s *System) assignSC(act *memmodel.Action, ord memmodel.MemOrder) {
	if ord.IsSeqCst() {
		act.SCIndex = s.scCount
		s.scCount++
	}
}

// doLoad implements an atomic load: compute the visible stores, branch on
// the choice, apply synchronization, and record the action.
func (s *System) doLoad(t *Thread, loc *location, ord memmodel.MemOrder) memmodel.Value {
	s.bumpStep()
	s.checkLifetime(t, loc, "atomic load")
	if len(loc.stores) == 0 {
		t.tseq++
		t.clock.Set(t.id, t.tseq)
		s.record(t, memmodel.KindAtomicLoad, ord, loc, 0)
		s.failf(FailUninitLoad, "atomic load of %s before any store", loc.name)
	}
	floor, published := s.visibleFloor(t, loc, ord)
	s.checkPublished(t, loc, published, "atomic load")
	n := len(loc.stores) - floor
	idx := floor + s.chooser.choose(n, 'r')
	st := loc.stores[idx]

	t.tseq++
	t.clock.Set(t.id, t.tseq)
	s.applyReadSync(t, ord, st)
	act := s.record(t, memmodel.KindAtomicLoad, ord, loc, st.act.Value)
	act.RF = st.act
	s.assignSC(act, ord)
	loc.loads = append(loc.loads, loadRec{tid: t.id, tseq: t.tseq, rfMO: idx})
	t.recentReads = append(t.recentReads, readRef{loc: loc, rfMO: idx})
	s.sleep.wake(pendSig{class: sigMem, loc: loc.id, sc: ord.IsSeqCst()})
	return st.act.Value
}

// doStore implements an atomic store. rfSync is non-nil only when called
// from doRMW (release-sequence continuation).
func (s *System) doStore(t *Thread, loc *location, ord memmodel.MemOrder, v memmodel.Value, rfSync *memmodel.ClockVector) *memmodel.Action {
	s.bumpStep()
	s.checkLifetime(t, loc, "atomic store")
	t.tseq++
	t.clock.Set(t.id, t.tseq)
	sync := s.releaseClockFor(t, ord, rfSync)
	act := s.record(t, memmodel.KindAtomicStore, ord, loc, v)
	moIdx := len(loc.stores)
	act.MOIndex = moIdx
	loc.stores = append(loc.stores, storeRec{act: act, sync: sync})
	loc.lastStoreByThread[t.id] = moIdx
	s.assignSC(act, ord)
	if act.SCIndex >= 0 {
		loc.scFloors = append(loc.scFloors, scFloor{scIdx: act.SCIndex, moIdx: moIdx})
	}
	s.storeEpoch++
	s.sleep.wake(pendSig{class: sigMem, loc: loc.id, write: true, sc: ord.IsSeqCst()})
	return act
}

// doRMW implements an atomic read-modify-write. Per C/C++11 atomicity the
// read half observes the mo-latest store; the write half is mo-adjacent.
func (s *System) doRMW(t *Thread, loc *location, ord memmodel.MemOrder, f func(memmodel.Value) memmodel.Value) memmodel.Value {
	s.bumpStep()
	s.checkLifetime(t, loc, "atomic RMW")
	if len(loc.stores) == 0 {
		t.tseq++
		t.clock.Set(t.id, t.tseq)
		s.record(t, memmodel.KindAtomicRMW, ord, loc, 0)
		s.failf(FailUninitLoad, "atomic RMW of %s before any store", loc.name)
	}
	_, published := s.visibleFloor(t, loc, ord)
	s.checkPublished(t, loc, published, "atomic RMW")
	last := loc.stores[len(loc.stores)-1]
	old := last.act.Value

	t.tseq++
	t.clock.Set(t.id, t.tseq)
	s.applyReadSync(t, ord, last)
	loc.loads = append(loc.loads, loadRec{tid: t.id, tseq: t.tseq, rfMO: len(loc.stores) - 1})

	sync := s.releaseClockFor(t, ord, last.sync)
	act := s.record(t, memmodel.KindAtomicRMW, ord, loc, f(old))
	act.RF = last.act
	moIdx := len(loc.stores)
	act.MOIndex = moIdx
	loc.stores = append(loc.stores, storeRec{act: act, sync: sync})
	loc.lastStoreByThread[t.id] = moIdx
	s.assignSC(act, ord)
	if act.SCIndex >= 0 {
		loc.scFloors = append(loc.scFloors, scFloor{scIdx: act.SCIndex, moIdx: moIdx})
	}
	s.storeEpoch++
	s.sleep.wake(pendSig{class: sigMem, loc: loc.id, write: true, sc: ord.IsSeqCst()})
	return old
}

// doCAS implements compare_exchange_strong. The outcome set is:
//   - success (when the mo-latest value equals expected), plus
//   - one failure alternative per visible store whose value differs from
//     expected (a failing CAS is just a load with failOrd).
func (s *System) doCAS(t *Thread, loc *location, expected, desired memmodel.Value, succOrd, failOrd memmodel.MemOrder) (memmodel.Value, bool) {
	s.bumpStep()
	s.checkLifetime(t, loc, "CAS")
	if len(loc.stores) == 0 {
		t.tseq++
		t.clock.Set(t.id, t.tseq)
		s.record(t, memmodel.KindAtomicRMW, succOrd, loc, 0)
		s.failf(FailUninitLoad, "CAS of %s before any store", loc.name)
	}
	lastIdx := len(loc.stores) - 1
	last := loc.stores[lastIdx]
	canSucceed := last.act.Value == expected

	floor, published := s.visibleFloor(t, loc, failOrd)
	s.checkPublished(t, loc, published, "CAS")
	var failIdxs []int
	for i := floor; i < len(loc.stores); i++ {
		if loc.stores[i].act.Value != expected {
			failIdxs = append(failIdxs, i)
		}
	}
	n := len(failIdxs)
	if canSucceed {
		n++
	}
	if n == 0 {
		// Every visible store holds the expected value but the latest
		// is not it — impossible since the latest is always visible;
		// so n == 0 implies canSucceed was the only branch.
		s.failf(FailAPIMisuse, "CAS on %s with no outcome", loc.name)
	}
	choice := s.chooser.choose(n, 'c')

	if canSucceed && choice == 0 {
		// Success: behave exactly like doRMW writing desired.
		t.tseq++
		t.clock.Set(t.id, t.tseq)
		s.applyReadSync(t, succOrd, last)
		loc.loads = append(loc.loads, loadRec{tid: t.id, tseq: t.tseq, rfMO: lastIdx})
		sync := s.releaseClockFor(t, succOrd, last.sync)
		act := s.record(t, memmodel.KindAtomicRMW, succOrd, loc, desired)
		act.RF = last.act
		moIdx := len(loc.stores)
		act.MOIndex = moIdx
		loc.stores = append(loc.stores, storeRec{act: act, sync: sync})
		loc.lastStoreByThread[t.id] = moIdx
		s.assignSC(act, succOrd)
		if act.SCIndex >= 0 {
			loc.scFloors = append(loc.scFloors, scFloor{scIdx: act.SCIndex, moIdx: moIdx})
		}
		s.storeEpoch++
		s.sleep.wake(pendSig{class: sigMem, loc: loc.id, write: true, sc: succOrd.IsSeqCst()})
		return expected, true
	}
	if canSucceed {
		choice--
	}
	idx := failIdxs[choice]
	st := loc.stores[idx]
	t.tseq++
	t.clock.Set(t.id, t.tseq)
	s.applyReadSync(t, failOrd, st)
	act := s.record(t, memmodel.KindAtomicLoad, failOrd, loc, st.act.Value)
	act.RF = st.act
	s.assignSC(act, failOrd)
	loc.loads = append(loc.loads, loadRec{tid: t.id, tseq: t.tseq, rfMO: idx})
	t.recentReads = append(t.recentReads, readRef{loc: loc, rfMO: idx})
	s.sleep.wake(pendSig{class: sigMem, loc: loc.id, sc: failOrd.IsSeqCst()})
	return st.act.Value, false
}

// doFence implements a stand-alone fence.
func (s *System) doFence(t *Thread, ord memmodel.MemOrder) {
	s.bumpStep()
	t.tseq++
	t.clock.Set(t.id, t.tseq)
	if ord.IsAcquire() {
		t.clock.Merge(t.acqPending)
	}
	if ord.IsRelease() {
		t.relFence = t.clock.Clone()
	}
	act := s.record(t, memmodel.KindFence, ord, nil, 0)
	s.assignSC(act, ord)
	s.sleep.wake(pendSig{class: sigFence, loc: -1, sc: ord.IsSeqCst()})
	if act.SCIndex >= 0 {
		t.lastSCFence = act.SCIndex
		// An SC load (or a load after an SC fence) that follows this
		// fence in S must not read anything older than the last store
		// each thread issued before the fence — but only stores by
		// *this* thread are sequenced before it, so only they
		// contribute floors.
		for _, loc := range s.locs {
			if !loc.atomic {
				continue
			}
			if mo, ok := loc.lastStoreByThread[t.id]; ok {
				loc.scFloors = append(loc.scFloors, scFloor{scIdx: act.SCIndex, moIdx: mo})
			}
		}
	}
}

// doPlainLoad implements a non-atomic load with race detection. It does
// not schedule: plain accesses run under the baton of the surrounding
// visible operation, which keeps the state space small without losing
// race detection (races are a property of happens-before, not of the
// interleaving).
func (s *System) doPlainLoad(t *Thread, loc *location) memmodel.Value {
	s.bumpStep()
	s.checkLifetime(t, loc, "plain load")
	t.tseq++
	t.clock.Set(t.id, t.tseq)
	if len(loc.stores) == 0 {
		s.record(t, memmodel.KindPlainLoad, memmodel.Relaxed, loc, 0)
		s.failf(FailUninitLoad, "load of plain location %s before any store", loc.name)
	}
	// Race: any store by another thread not ordered with this load.
	best := -1
	for i, st := range loc.stores {
		if t.clock.Contains(st.act.Thread, st.act.TSeq) {
			best = i
		} else if st.act.Thread != t.id {
			s.record(t, memmodel.KindPlainLoad, memmodel.Relaxed, loc, 0)
			s.failf(FailDataRace, "data race on %s: T%d load races with T%d store (#%d)",
				loc.name, t.id, st.act.Thread, st.act.ID)
		}
	}
	if best < 0 {
		s.record(t, memmodel.KindPlainLoad, memmodel.Relaxed, loc, 0)
		s.failf(FailUninitLoad, "load of plain location %s sees no ordered store", loc.name)
	}
	st := loc.stores[best]
	act := s.record(t, memmodel.KindPlainLoad, memmodel.Relaxed, loc, st.act.Value)
	act.RF = st.act
	loc.loads = append(loc.loads, loadRec{tid: t.id, tseq: t.tseq, rfMO: best})
	t.recentReads = append(t.recentReads, readRef{loc: loc, rfMO: best})
	return st.act.Value
}

// doPlainStore implements a non-atomic store with race detection.
func (s *System) doPlainStore(t *Thread, loc *location, v memmodel.Value) {
	s.bumpStep()
	s.checkLifetime(t, loc, "plain store")
	t.tseq++
	t.clock.Set(t.id, t.tseq)
	for _, st := range loc.stores {
		if st.act.Thread != t.id && !t.clock.Contains(st.act.Thread, st.act.TSeq) {
			s.record(t, memmodel.KindPlainStore, memmodel.Relaxed, loc, v)
			s.failf(FailDataRace, "data race on %s: T%d store races with T%d store (#%d)",
				loc.name, t.id, st.act.Thread, st.act.ID)
		}
	}
	for _, lr := range loc.loads {
		if lr.tid != t.id && !t.clock.Contains(lr.tid, lr.tseq) {
			s.record(t, memmodel.KindPlainStore, memmodel.Relaxed, loc, v)
			s.failf(FailDataRace, "data race on %s: T%d store races with T%d load",
				loc.name, t.id, lr.tid)
		}
	}
	act := s.record(t, memmodel.KindPlainStore, memmodel.Relaxed, loc, v)
	moIdx := len(loc.stores)
	act.MOIndex = moIdx
	loc.stores = append(loc.stores, storeRec{act: act})
	loc.lastStoreByThread[t.id] = moIdx
}
