package checker

// pendSig describes the visible operation a parked thread is about to
// perform — enough to decide dependency for the sleep-set reduction.
type pendSig struct {
	// class partitions operations for the dependency check.
	class sigClass
	// loc is the location id (memory ops) or mutex id (lock ops), -1
	// otherwise.
	loc int
	// write reports whether the op may write the location (store/RMW).
	write bool
	// sc reports whether the op participates in the seq_cst order.
	sc bool
}

type sigClass uint8

const (
	sigNone  sigClass = iota // join, thread start: op unknown or opaque
	sigMem                   // atomic load/store/RMW
	sigMutex                 // lock/trylock/unlock
	sigFence                 // stand-alone fence
	sigYield
)

// dependent reports whether two operations may not commute: exploring
// both orders is then necessary. The relation is deliberately
// conservative (dependence where unsure), which preserves soundness of
// the reduction; in particular a thread parked at its start point or at a
// join has an unknown next visible operation (sigNone) and is treated as
// dependent with everything, so it can never be starved by the sleep set.
func dependent(a, b pendSig) bool {
	if a.class == sigNone || b.class == sigNone {
		return true
	}
	// Two seq_cst operations never commute: their positions in the
	// total order S are observable (IRIW-style).
	if a.sc && b.sc {
		return true
	}
	switch {
	case a.class == sigMem && b.class == sigMem:
		return a.loc == b.loc && (a.write || b.write)
	case a.class == sigMutex && b.class == sigMutex:
		return a.loc == b.loc
	}
	return false
}

// sleepSet tracks threads that are asleep in the current subtree: their
// next operation was already explored in an earlier sibling, and running
// them now would reproduce an equivalent interleaving. A sleeping thread
// wakes when a dependent operation executes.
type sleepSet struct {
	m map[int]pendSig
}

func newSleepSet() *sleepSet { return &sleepSet{m: map[int]pendSig{}} }

func (s *sleepSet) sleep(tid int, sig pendSig) { s.m[tid] = sig }

func (s *sleepSet) asleep(tid int) bool {
	_, ok := s.m[tid]
	return ok
}

// wake removes every sleeper whose pending operation is dependent with
// the operation that just executed.
func (s *sleepSet) wake(executed pendSig) {
	for tid, sig := range s.m {
		if dependent(sig, executed) {
			delete(s.m, tid)
		}
	}
}
