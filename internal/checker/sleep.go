package checker

// pendSig describes the visible operation a parked thread is about to
// perform — enough to decide dependency for the sleep-set reduction.
type pendSig struct {
	// class partitions operations for the dependency check.
	class sigClass
	// loc is the location id (memory ops) or mutex id (lock ops), -1
	// otherwise.
	loc int
	// write reports whether the op may write the location (store/RMW).
	write bool
	// sc reports whether the op participates in the seq_cst order.
	sc bool
}

type sigClass uint8

const (
	sigNone  sigClass = iota // join, thread start: op unknown or opaque
	sigMem                   // atomic load/store/RMW
	sigMutex                 // lock/trylock/unlock
	sigFence                 // stand-alone fence
	sigYield
)

// dependent reports whether the sleeping thread's pending operation a
// may not commute with the just-executed operation b: exploring both
// orders is then necessary, so the sleeper must be woken. wake is the
// only caller, always as dependent(sleeper, executed).
//
// The relation is deliberately conservative where starvation is at
// stake (dependence where unsure): a thread parked at its start point
// or at a join has an unknown next visible operation (sigNone) and is
// treated as dependent with everything, and a thread parked at a fence
// is woken by every other fence and every seq_cst memory operation.
// Those are the operations a fence can observe across threads: SC
// memory operations and SC fences move the seq_cst total order and the
// per-location visibility floors derived from it, and fence/fence
// pairs are kept dependent defensively. A fence-pending sleeper is
// therefore re-interleaved with them rather than starved — the old
// relation left fences independent of everything except an sc×sc
// pair, so such a sleeper could sleep through the entire subtree.
//
// Two directions are deliberately kept precise, because a fence's
// remaining effects (release-fence store tagging, acquire-fence load
// upgrades) are local to its own thread and reach other threads only
// through that thread's surrounding stores and loads, which mem×mem
// dependence already re-interleaves: a fence-pending sleeper is not
// woken by non-SC memory operations, and an executed fence does not
// wake a memory-pending sleeper. Widening either direction is sound
// but defeats the reduction on fence-heavy structures (the Chase-Lev
// unit test explores >70× more executions with fences fully dependent
// and >20× with the sleeper direction alone; the relation below costs
// ~2.5×).
func dependent(a, b pendSig) bool {
	if a.class == sigNone || b.class == sigNone {
		return true
	}
	// Two seq_cst operations never commute: their positions in the
	// total order S are observable (IRIW-style).
	if a.sc && b.sc {
		return true
	}
	switch {
	case a.class == sigMem && b.class == sigMem:
		return a.loc == b.loc && (a.write || b.write)
	case a.class == sigMutex && b.class == sigMutex:
		return a.loc == b.loc
	case a.class == sigFence:
		return b.class == sigFence || (b.class == sigMem && b.sc)
	}
	return false
}

// sleepSet tracks threads that are asleep in the current subtree: their
// next operation was already explored in an earlier sibling, and running
// them now would reproduce an equivalent interleaving. A sleeping thread
// wakes when a dependent operation executes.
type sleepSet struct {
	m map[int]pendSig
}

func newSleepSet() *sleepSet { return &sleepSet{m: map[int]pendSig{}} }

// clear empties the set in place, so a pooled execution reuses the map.
func (s *sleepSet) clear() { clear(s.m) }

func (s *sleepSet) sleep(tid int, sig pendSig) { s.m[tid] = sig }

func (s *sleepSet) asleep(tid int) bool {
	_, ok := s.m[tid]
	return ok
}

// wake removes every sleeper whose pending operation is dependent with
// the operation that just executed.
func (s *sleepSet) wake(executed pendSig) {
	for tid, sig := range s.m {
		if dependent(sig, executed) {
			delete(s.m, tid)
		}
	}
}
