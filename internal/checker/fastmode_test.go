package checker

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/memmodel"
)

// --- Fast mode: budget, determinism, parallel bit-identity -------------

// fingerprint reduces a Result to the deterministic fields the fast-mode
// and random-walk engines promise to keep bit-identical across repeats
// and Parallelism settings.
func fingerprint(res *Result) string {
	var fails string
	for _, f := range res.Failures {
		fails += fmt.Sprintf("|%s:%s@%d", f.Kind, f.Msg, f.Execution)
	}
	return fmt.Sprintf("exec=%d feas=%d pruned=%d failcount=%d stats=%+v fails=%s",
		res.Executions, res.Feasible, res.Pruned, res.FailureCount,
		res.Stats.WithoutTimings(), fails)
}

// TestFastModeRunBudget: fast mode runs exactly its budget on a clean
// program and never claims exhaustion (sampling cannot prove absence).
func TestFastModeRunBudget(t *testing.T) {
	res := Explore(Config{FastMode: true, MaxExecutions: 50, Seed: 3}, manyExecProgram)
	if res.Executions != 50 {
		t.Errorf("fast mode ran %d executions, want 50", res.Executions)
	}
	if res.Exhausted {
		t.Error("fast mode must never report Exhausted")
	}
	if res.FailureCount != 0 {
		t.Errorf("clean program failed: %v", res.FirstFailure())
	}
	if res.Stats.RunsPerSec <= 0 {
		t.Errorf("RunsPerSec not computed: %v", res.Stats.RunsPerSec)
	}
}

// TestFastModeDeterministicSeed: a fixed (seed, budget) yields
// bit-identical results on repeat runs, and a different seed is allowed
// to differ (it samples different executions).
func TestFastModeDeterministicSeed(t *testing.T) {
	run := func(seed int64) string {
		return fingerprint(Explore(Config{FastMode: true, MaxExecutions: 40, Seed: seed}, manyExecProgram))
	}
	if run(7) != run(7) {
		t.Error("fast mode with fixed seed not deterministic")
	}
}

// TestFastModeParallelBitIdentical: for a fixed budget the Result —
// failures included — is bit-identical across Parallelism 1/4/16,
// because run indices own derived seeds and workers own contiguous index
// blocks merged in order.
func TestFastModeParallelBitIdentical(t *testing.T) {
	prog := func(root *Thread) {
		x := root.NewAtomic("x")
		a := root.Spawn("a", func(tt *Thread) { x.Store(tt, memmodel.Relaxed, 1) })
		// Racy-by-sampling: the load may run before the store and fail
		// as an uninitialized load, so failures (count, messages,
		// execution indices) exercise the merge path too.
		b := root.Spawn("b", func(tt *Thread) { _ = x.Load(tt, memmodel.Relaxed) })
		root.Join(a)
		root.Join(b)
	}
	want := ""
	for _, par := range []int{1, 4, 16} {
		got := fingerprint(Explore(Config{FastMode: true, MaxExecutions: 60, Seed: 11, Parallelism: par}, prog))
		if want == "" {
			want = got
			continue
		}
		if got != want {
			t.Errorf("parallelism %d diverged:\n got %s\nwant %s", par, got, want)
		}
	}
}

// TestRandomWalkParallelBitIdentical: the routing/sharding fix — random
// walks are now seed-stable at any Parallelism instead of silently
// falling into the DFS engine when Parallelism > 1.
func TestRandomWalkParallelBitIdentical(t *testing.T) {
	want := ""
	for _, par := range []int{1, 4, 16} {
		got := fingerprint(Explore(Config{RandomWalk: 60, Seed: 5, Parallelism: par}, manyExecProgram))
		if want == "" {
			want = got
			continue
		}
		if got != want {
			t.Errorf("parallelism %d diverged:\n got %s\nwant %s", par, got, want)
		}
	}
}

// TestFastModePoolingInvisible: pooled and unpooled fast runs produce
// bit-identical results — the free-list recycling and between-run sweep
// must not leak state into the next run.
func TestFastModePoolingInvisible(t *testing.T) {
	base := Config{FastMode: true, MaxExecutions: 60, Seed: 13, StoreBound: 2}
	pooled := Explore(base, manyExecProgram)
	unpooledCfg := base
	unpooledCfg.DisablePooling = true
	unpooled := Explore(unpooledCfg, manyExecProgram)
	if fingerprint(pooled) != fingerprint(unpooled) {
		t.Errorf("pooling changed fast-mode results:\npooled   %s\nunpooled %s",
			fingerprint(pooled), fingerprint(unpooled))
	}
}

// --- Fast mode: bug finding -------------------------------------------

// TestFastModeFindsSeededBug: the §6.4.1-style seeded bug — a message-
// passing handoff whose flag store was weakened to relaxed — is caught
// by sampling within a small run budget.
func TestFastModeFindsSeededBug(t *testing.T) {
	res := Explore(Config{FastMode: true, MaxExecutions: 500, Seed: 1}, func(root *Thread) {
		x := root.NewAtomicInit("x", 0)
		flag := root.NewAtomicInit("flag", 0)
		w := root.Spawn("w", func(tt *Thread) {
			x.Store(tt, memmodel.Relaxed, 42)
			flag.Store(tt, memmodel.Relaxed, 1) // bug: should be Release
		})
		r := root.Spawn("r", func(tt *Thread) {
			if flag.Load(tt, memmodel.Acquire) == 1 {
				tt.Assert(x.Load(tt, memmodel.Relaxed) == 42, "lost payload")
			}
		})
		root.Join(w)
		root.Join(r)
	})
	if !res.HasKind(FailAssertion) {
		t.Errorf("fast mode missed the seeded relaxed-flag bug in %d runs", res.Executions)
	}
}

// TestFastModeStopAtFirst: the first failing run stops the exploration.
func TestFastModeStopAtFirst(t *testing.T) {
	res := Explore(Config{FastMode: true, MaxExecutions: 100, StopAtFirst: true}, func(root *Thread) {
		x := root.NewAtomic("x")
		_ = x.Load(root, memmodel.Relaxed) // uninit on every run
	})
	if res.Executions != 1 || res.FailureCount != 1 {
		t.Errorf("StopAtFirst ignored in fast mode: %v", res)
	}
	if !res.HasKind(FailUninitLoad) {
		t.Errorf("wrong kind: %v", res.FirstFailure())
	}
}

// TestFastModeTimeBudget: a wall-clock budget terminates a run budget
// that could never complete in time.
func TestFastModeTimeBudget(t *testing.T) {
	res := Explore(Config{
		FastMode:      true,
		MaxExecutions: 1 << 30,
		TimeBudget:    50 * time.Millisecond,
		Seed:          2,
	}, manyExecProgram)
	if res.Executions == 0 {
		t.Error("time budget cut before the first run")
	}
	if res.Executions >= 1<<30 {
		t.Errorf("time budget ignored: %d executions", res.Executions)
	}
}

// TestFastModePlainRace: the clock-vector race detector still fires in
// fast mode (via the per-location seq vectors, not action clocks).
func TestFastModePlainRace(t *testing.T) {
	res := Explore(Config{FastMode: true, MaxExecutions: 200, Seed: 4}, func(root *Thread) {
		p := root.NewPlainInit("p", 0)
		a := root.Spawn("a", func(tt *Thread) { p.Store(tt, 1) })
		b := root.Spawn("b", func(tt *Thread) { p.Store(tt, 2) })
		root.Join(a)
		root.Join(b)
	})
	if !res.HasKind(FailDataRace) {
		t.Errorf("fast mode missed a plain-plain race in %d runs", res.Executions)
	}
}

// TestFastModeSynchronizedClean: a properly synchronized program
// (release/acquire handoff, joined threads) yields zero failures over a
// healthy run budget — the sampled detectors must not false-positive.
func TestFastModeSynchronizedClean(t *testing.T) {
	res := Explore(Config{FastMode: true, MaxExecutions: 300, Seed: 6}, func(root *Thread) {
		data := root.NewPlainInit("data", 0)
		flag := root.NewAtomicInit("flag", 0)
		w := root.Spawn("w", func(tt *Thread) {
			data.Store(tt, 42)
			flag.Store(tt, memmodel.Release, 1)
		})
		r := root.Spawn("r", func(tt *Thread) {
			for flag.Load(tt, memmodel.Acquire) == 0 {
				tt.Yield()
			}
			tt.Assert(data.Load(tt) == 42, "lost payload")
		})
		root.Join(w)
		root.Join(r)
	})
	if res.FailureCount != 0 {
		t.Errorf("false positive on synchronized program: %v", res.FirstFailure())
	}
}

// --- Store-buffer bounding --------------------------------------------

// TestFastModeEvictions: a long store chain over one location overflows
// a small StoreBound, evictions happen, and the program still checks
// clean — reads served from the bounded window (or the evicted-value
// fallback) stay plausible.
func TestFastModeEvictions(t *testing.T) {
	res := Explore(Config{FastMode: true, MaxExecutions: 20, Seed: 8, StoreBound: 4, MaxSteps: 5000}, func(root *Thread) {
		x := root.NewAtomicInit("x", 0)
		a := root.Spawn("a", func(tt *Thread) {
			for i := 0; i < 200; i++ {
				x.Store(tt, memmodel.Relaxed, memmodel.Value(i))
			}
		})
		b := root.Spawn("b", func(tt *Thread) {
			for i := 0; i < 50; i++ {
				_ = x.Load(tt, memmodel.Relaxed)
			}
		})
		root.Join(a)
		root.Join(b)
	})
	if res.FailureCount != 0 {
		t.Errorf("bounded buffers broke a clean program: %v", res.FirstFailure())
	}
	if res.Stats.StoreBufferEvictions == 0 {
		t.Error("expected store-buffer evictions with StoreBound=4 and 200 stores")
	}
	if res.Executions != 20 {
		t.Errorf("ran %d executions, want 20", res.Executions)
	}
}

// TestFastModeEvictionRMWChain: RMWs force reads of the newest store, so
// a fetch-add chain must stay exact across evictions (each increment
// reads the previous one, never a stale or evicted value).
func TestFastModeEvictionRMWChain(t *testing.T) {
	const perThread = 100
	res := Explore(Config{FastMode: true, MaxExecutions: 10, Seed: 9, StoreBound: 4, MaxSteps: 5000}, func(root *Thread) {
		c := root.NewAtomicInit("c", 0)
		a := root.Spawn("a", func(tt *Thread) {
			for i := 0; i < perThread; i++ {
				c.FetchAdd(tt, memmodel.Relaxed, 1)
			}
		})
		b := root.Spawn("b", func(tt *Thread) {
			for i := 0; i < perThread; i++ {
				c.FetchAdd(tt, memmodel.Relaxed, 1)
			}
		})
		root.Join(a)
		root.Join(b)
		tt := c.Load(root, memmodel.Acquire)
		root.Assert(tt == 2*perThread, "fetch-add chain lost increments: %d", tt)
	})
	if res.FailureCount != 0 {
		t.Errorf("RMW chain broke across evictions: %v", res.FirstFailure())
	}
	if res.Stats.StoreBufferEvictions == 0 {
		t.Error("expected evictions in the RMW chain")
	}
}

// --- Mixed atomic/non-atomic races ------------------------------------

// mixedRaceProg races a non-atomic RawLoad of an atomic location against
// another thread's atomic store.
func mixedRaceProg(root *Thread) {
	x := root.NewAtomicInit("x", 0)
	a := root.Spawn("a", func(tt *Thread) { x.Store(tt, memmodel.Relaxed, 1) })
	b := root.Spawn("b", func(tt *Thread) { _ = x.RawLoad(tt) })
	root.Join(a)
	root.Join(b)
}

// mixedCleanProg uses RawLoad/RawStore only in happens-before-ordered
// positions (before spawn, after join) — no race.
func mixedCleanProg(root *Thread) {
	x := root.NewAtomic("x")
	x.RawStore(root, 7) // pre-spawn init, like C++ non-atomic init of an atomic
	a := root.Spawn("a", func(tt *Thread) {
		v := x.Load(tt, memmodel.Relaxed)
		tt.Assert(v == 7, "lost raw init: %d", v)
		x.Store(tt, memmodel.Relaxed, 8)
	})
	root.Join(a)
	root.Assert(x.RawLoad(root) == 8, "post-join raw load missed the store")
}

// TestMixedRaceBothModes: the mixed-access detector fires in exhaustive
// and fast mode alike, and stays quiet on the synchronized variant.
func TestMixedRaceBothModes(t *testing.T) {
	configs := map[string]Config{
		"exhaustive": {},
		"fast":       {FastMode: true, MaxExecutions: 200, Seed: 10},
	}
	for name, cfg := range configs {
		res := Explore(cfg, mixedRaceProg)
		if !res.HasKind(FailMixedRace) {
			t.Errorf("%s: missed the mixed atomic/non-atomic race (executions=%d, first=%v)",
				name, res.Executions, res.FirstFailure())
		}
		res = Explore(cfg, mixedCleanProg)
		if res.FailureCount != 0 {
			t.Errorf("%s: false positive on ordered raw accesses: %v", name, res.FirstFailure())
		}
	}
}

// TestRawStoreVisibleToAtomics: a RawStore joins the modification order,
// so a later (happens-after) atomic load must observe it.
func TestRawStoreVisibleToAtomics(t *testing.T) {
	res := Explore(Config{}, func(root *Thread) {
		x := root.NewAtomic("x")
		x.RawStore(root, 5)
		a := root.Spawn("a", func(tt *Thread) {
			tt.Assert(x.Load(tt, memmodel.Relaxed) == 5, "atomic load missed the raw store")
		})
		root.Join(a)
	})
	if res.FailureCount != 0 {
		t.Errorf("raw store invisible to atomic load: %v", res.FirstFailure())
	}
	if !res.Exhausted {
		t.Errorf("tiny program should exhaust: %v", res)
	}
}

// --- Interrupt --------------------------------------------------------

// TestFastModeInterrupt: a pre-closed Interrupt channel stops the run
// loop before the first execution.
func TestFastModeInterrupt(t *testing.T) {
	ch := make(chan struct{})
	close(ch)
	res := Explore(Config{FastMode: true, MaxExecutions: 1000, Interrupt: ch}, manyExecProgram)
	if res.Executions != 0 {
		t.Errorf("interrupted fast run still executed %d times", res.Executions)
	}
}
