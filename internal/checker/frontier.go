package checker

import (
	"sync"
	"sync/atomic"
)

// This file implements the decision frontier of the work-stealing
// explorer: the set of unexplored decision-tree branches, each tagged
// with its canonical decision path, plus the ordered fold list that
// merges per-branch results back into the sequential DFS order.
//
// A frontier entry (wsTask) is one unexplored branch of one decision
// node, identified by the frozen path from the root to that branch. A
// task is exactly one execution of the program: the worker replays the
// frozen path, takes branch 0 at every decision node discovered below it
// (the chooser's fresh-node default), and reaches one leaf. Every fresh
// multi-way node discovered along the way contributes its remaining
// branches as new frontier entries. Leaves therefore correspond one-to-
// one with (node, branch) pairs, the same bijection sequential DFS walks
// with advance().

// fnode is one decision along a task's frozen path. Paths share their
// ancestry: sibling tasks point at the same parent chain, so the frontier
// costs O(frontier size) nodes, not O(frontier size × depth).
type fnode struct {
	parent *fnode
	// depth is the number of ancestors (the root decision node is 0).
	depth int
	// kind, n, cands mirror the decision fields: 's' nodes use cands
	// (shared, read-only across siblings), value nodes ('r'/'c'/'l')
	// use n.
	kind  byte
	n     int
	cands []int
	// branch is the chosen alternative at this node: an index into cands
	// for 's' nodes, the chosen value index otherwise.
	branch int
}

// branchCount is the node's number of alternatives.
func (n *fnode) branchCount() int {
	if n.kind == 's' {
		return len(n.cands)
	}
	return n.n
}

// wsTask is one frontier entry: the unexplored branch identified by the
// path ending at node (nil = the root task, the empty path).
type wsTask struct {
	node *fnode
	// cell is the task's slot in the fold list, assigned when the cell is
	// spliced in (before the task becomes stealable).
	cell *foldCell
}

// path materializes the frozen decision path as a chooser prefix. For
// 's' nodes the explored set is cands[:branch]: sequential DFS explores
// candidates in cands order, so by the time it reaches branch b exactly
// the candidates before b are explored — replaying them asleep preserves
// the sleep-set reduction bit-for-bit.
func (t *wsTask) path() []decision {
	depth := 0
	for n := t.node; n != nil; n = n.parent {
		depth++
	}
	out := make([]decision, depth)
	for n := t.node; n != nil; n = n.parent {
		depth--
		d := decision{kind: n.kind, n: n.n, chosen: n.branch}
		if n.kind == 's' {
			d.cands = n.cands
			d.explored = n.cands[:n.branch]
		}
		out[depth] = d
	}
	return out
}

// rootBranch is the branch taken at the root decision node — the shard
// the task belongs to (see Config.NewScratch). The empty path is shard 0.
func (t *wsTask) rootBranch() int {
	n := t.node
	for n != nil && n.parent != nil {
		n = n.parent
	}
	if n == nil {
		return 0
	}
	return n.branch
}

// foldCell is one slot of the fold list: either a completed region's
// merged Result (res != nil) or an outstanding task (task != nil).
type foldCell struct {
	prev, next *foldCell
	res        *Result
	task       *wsTask
}

// foldList is the ordered merge of the work-stealing explorer: a doubly
// linked alternation of done results and pending tasks, kept in canonical
// decision-path order. Completing a task replaces its cell with the
// leaf's result followed by its newly discovered subtasks (in the order
// sequential DFS would visit them) and coalesces adjacent done cells, so
// when the frontier drains the list collapses to a single cell holding
// the bit-identical sequential Result — regardless of which worker ran
// which task in which order. The list is also the checkpoint: its cell
// sequence is exactly the state a resumed run needs.
type foldList struct {
	mu          sync.Mutex
	head, tail  *foldCell
	maxFailures int
	// pending counts outstanding task cells — the live frontier size
	// (atomic so the progress tracker can read it without the lock).
	pending     atomic.Int64
	maxFrontier int
}

func newFoldList(maxFailures int) *foldList {
	return &foldList{maxFailures: maxFailures}
}

// appendCell links c at the tail (used only while building the initial
// list, before workers start).
func (l *foldList) appendCell(c *foldCell) {
	if l.tail == nil {
		l.head, l.tail = c, c
	} else {
		c.prev = l.tail
		l.tail.next = c
		l.tail = c
	}
	if c.task != nil {
		c.task.cell = c
		n := l.pending.Add(1)
		if int(n) > l.maxFrontier {
			l.maxFrontier = int(n)
		}
	}
}

// complete turns t's cell into the leaf result, splices in the subtasks
// discovered during the execution (already in fold order: deepest fresh
// node first, branches ascending), and coalesces adjacent done cells.
// Subtasks get their cell assigned here, before the caller publishes them
// to any deque.
func (l *foldList) complete(t *wsTask, leaf *Result, subs []*wsTask) {
	l.mu.Lock()
	defer l.mu.Unlock()
	c := t.cell
	c.task = nil
	c.res = leaf
	cursor := c
	for _, s := range subs {
		nc := &foldCell{task: s, prev: cursor, next: cursor.next}
		if cursor.next != nil {
			cursor.next.prev = nc
		} else {
			l.tail = nc
		}
		cursor.next = nc
		s.cell = nc
		cursor = nc
	}
	n := l.pending.Add(int64(len(subs) - 1))
	if int(n) > l.maxFrontier {
		l.maxFrontier = int(n)
	}
	l.coalesce(c)
}

// coalesce merges c with adjacent done cells. Merging right-into-left in
// list order reproduces the sequential failure numbering and retention:
// the right region's failure indices shift by the left region's
// execution count, and the concatenation is re-capped at maxFailures —
// exactly what Result.record would have kept running sequentially.
func (l *foldList) coalesce(c *foldCell) {
	for c.prev != nil && c.prev.res != nil {
		p := c.prev
		mergeResults(p.res, c.res, l.maxFailures)
		p.next = c.next
		if c.next != nil {
			c.next.prev = p
		} else {
			l.tail = p
		}
		c = p
	}
	for c.next != nil && c.next.res != nil {
		n := c.next
		mergeResults(c.res, n.res, l.maxFailures)
		c.next = n.next
		if n.next != nil {
			n.next.prev = c
		} else {
			l.tail = c
		}
	}
}

// pendingCount is the number of outstanding task cells.
func (l *foldList) pendingCount() int { return int(l.pending.Load()) }

// frontierHighWater is the maximum pending count observed.
func (l *foldList) frontierHighWater() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.maxFrontier
}

// foldResult folds the done cells in list order into a fresh Result,
// skipping pending cells (present only when the run was cut short). On a
// drained frontier the list is a single done cell and the fold is the
// identity. Destructive on the cell results; call once, after any final
// checkpoint has been serialized.
func (l *foldList) foldResult() *Result {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := &Result{}
	for c := l.head; c != nil; c = c.next {
		if c.res != nil {
			mergeResults(out, c.res, l.maxFailures)
		}
	}
	return out
}

// mergeResults folds src into dst, offsetting src's failure indices by
// dst's execution count — src's region follows dst's in canonical order.
// Elapsed is deliberately not folded (wall clock is owned by the
// engine); everything else adds, mirroring the sequential accumulation.
func mergeResults(dst, src *Result, maxFailures int) {
	for _, f := range src.Failures {
		f.Execution += dst.Executions
	}
	dst.Failures = append(dst.Failures, src.Failures...)
	if len(dst.Failures) > maxFailures {
		dst.Failures = dst.Failures[:maxFailures]
	}
	dst.Executions += src.Executions
	dst.Feasible += src.Feasible
	dst.Pruned += src.Pruned
	dst.FailureCount += src.FailureCount
	dst.Stats.Merge(&src.Stats)
}
