package checker

import "testing"

// Benchmarks for the backtrack-path candidate scan: nextUnexplored's
// bitmask membership against the linear reference scan it replaced.
// advance runs the scan on every backtrack, so wide scheduling nodes
// (many runnable threads, most already explored) make it hot.

// benchNode builds a width-w scheduling node that has explored all but
// the last candidate — the worst case for the scan, and the common one
// late in a node's lifetime.
func benchNode(w int) (cands, explored []int) {
	cands = make([]int, w)
	for i := range cands {
		cands[i] = i
	}
	explored = append([]int(nil), cands[:w-1]...)
	return cands, explored
}

func benchmarkNextUnexplored(b *testing.B, w int, fn func(cands, explored []int) int) {
	cands, explored := benchNode(w)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if fn(cands, explored) != w-1 {
			b.Fatal("scan missed the unexplored candidate")
		}
	}
}

func BenchmarkNextUnexploredBitmask4(b *testing.B)  { benchmarkNextUnexplored(b, 4, nextUnexplored) }
func BenchmarkNextUnexploredSlow4(b *testing.B)     { benchmarkNextUnexplored(b, 4, nextUnexploredSlow) }
func BenchmarkNextUnexploredBitmask16(b *testing.B) { benchmarkNextUnexplored(b, 16, nextUnexplored) }
func BenchmarkNextUnexploredSlow16(b *testing.B)    { benchmarkNextUnexplored(b, 16, nextUnexploredSlow) }
func BenchmarkNextUnexploredBitmask64(b *testing.B) { benchmarkNextUnexplored(b, 64, nextUnexplored) }
func BenchmarkNextUnexploredSlow64(b *testing.B)    { benchmarkNextUnexplored(b, 64, nextUnexploredSlow) }

// TestNextUnexploredMatchesSlow cross-checks the bitmask scan against
// the reference on exhaustive small cases, including ids past the mask
// width (the fallback path).
func TestNextUnexploredMatchesSlow(t *testing.T) {
	cases := []struct{ cands, explored []int }{
		{nil, nil},
		{[]int{0}, nil},
		{[]int{0}, []int{0}},
		{[]int{2, 0, 1}, []int{0}},
		{[]int{2, 0, 1}, []int{2, 0, 1}},
		{[]int{5, 3, 9}, []int{3, 9}},
		{[]int{70, 1}, []int{70}},    // id past mask width: fallback
		{[]int{1, 70}, []int{1, 70}}, // fallback, exhausted
	}
	for _, tc := range cases {
		got, want := nextUnexplored(tc.cands, tc.explored), nextUnexploredSlow(tc.cands, tc.explored)
		if got != want {
			t.Errorf("nextUnexplored(%v, %v) = %d, want %d", tc.cands, tc.explored, got, want)
		}
	}
}
