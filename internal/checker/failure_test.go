package checker

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"
)

// TestFailureKindExhaustive pins down String/BuiltIn/Channel for every
// kind. The length check against numFailureKinds forces whoever adds a
// kind to extend this table (and therefore to decide its Figure 8
// channel) instead of silently falling through to a default.
func TestFailureKindExhaustive(t *testing.T) {
	table := []struct {
		kind    FailureKind
		str     string
		builtin bool
		channel string
	}{
		{FailDataRace, "data-race", true, "builtin"},
		{FailUninitLoad, "uninitialized-load", true, "builtin"},
		{FailDeadlock, "deadlock", true, "builtin"},
		{FailLivelock, "livelock", true, "builtin"},
		{FailTooManySteps, "step-bound", false, "none"},
		{FailAssertion, "assertion", false, "assertion"},
		{FailAdmissibility, "admissibility", false, "admissibility"},
		{FailAPIMisuse, "api-misuse", false, "assertion"},
		{FailMixedRace, "mixed-race", true, "builtin"},
	}
	if len(table) != int(numFailureKinds) {
		t.Fatalf("table covers %d kinds but numFailureKinds = %d: a new kind needs a String/BuiltIn/Channel entry here",
			len(table), numFailureKinds)
	}
	// The exported enumeration must cover exactly the same kinds, in
	// declaration order — external triage switches (internal/fuzz) rely
	// on it for their own exhaustiveness tests.
	kinds := FailureKinds()
	if len(kinds) != int(numFailureKinds) {
		t.Fatalf("FailureKinds() returned %d kinds, want %d", len(kinds), numFailureKinds)
	}
	for i, k := range kinds {
		if k != table[i].kind {
			t.Errorf("FailureKinds()[%d] = %s, want %s", i, k, table[i].kind)
		}
	}
	for _, tc := range table {
		if got := tc.kind.String(); got != tc.str {
			t.Errorf("FailureKind(%d).String() = %q, want %q", tc.kind, got, tc.str)
		}
		if strings.HasPrefix(tc.kind.String(), "FailureKind(") {
			t.Errorf("kind %d fell through to the String() default", tc.kind)
		}
		if got := tc.kind.BuiltIn(); got != tc.builtin {
			t.Errorf("%s.BuiltIn() = %v, want %v", tc.kind, got, tc.builtin)
		}
		if got := tc.kind.Channel(); got != tc.channel {
			t.Errorf("%s.Channel() = %q, want %q", tc.kind, got, tc.channel)
		}
		switch tc.kind.Channel() {
		case "builtin", "admissibility", "assertion", "none":
		default:
			t.Errorf("%s.Channel() = %q is not a known Figure 8 channel", tc.kind, tc.kind.Channel())
		}
	}
	// Out-of-range values must be visibly bogus, not masquerade as a
	// real kind.
	if got, want := numFailureKinds.String(), fmt.Sprintf("FailureKind(%d)", uint8(numFailureKinds)); got != want {
		t.Errorf("numFailureKinds.String() = %q, want the %q default", got, want)
	}
}

// TestFailureKindJSON: kinds marshal as their stable string names, so
// exported snapshots survive an enum reorder.
func TestFailureKindJSON(t *testing.T) {
	blob, err := json.Marshal(FailDataRace)
	if err != nil {
		t.Fatal(err)
	}
	if string(blob) != `"data-race"` {
		t.Errorf("FailDataRace marshals as %s, want \"data-race\"", blob)
	}
	fblob, err := json.Marshal(&Failure{Kind: FailAssertion, Msg: "boom", Execution: 3, ActionID: 7})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"kind": "assertion"`, `"execution": 3`, `"action_id": 7`} {
		if !strings.Contains(string(fblob), strings.ReplaceAll(want, ": ", ":")) {
			t.Errorf("Failure JSON missing %s:\n%s", want, fblob)
		}
	}
	// Every kind round-trips through its name; unknown names are rejected.
	for _, k := range FailureKinds() {
		blob, err := json.Marshal(k)
		if err != nil {
			t.Fatal(err)
		}
		var back FailureKind
		if err := json.Unmarshal(blob, &back); err != nil || back != k {
			t.Errorf("kind %s does not round-trip: got %s, err %v", k, back, err)
		}
	}
	var bogus FailureKind
	if err := json.Unmarshal([]byte(`"no-such-kind"`), &bogus); err == nil {
		t.Error("unknown kind name unmarshaled without error")
	}
}
