// Package checker is an operational model checker for the C/C++11 memory
// model — the substrate the paper's CDSSpec tool plugs into (CDSChecker).
//
// Test programs are written against simulated atomics (Atomic, Plain,
// Mutex, Fence) and executed by a cooperative scheduler, one visible
// operation at a time. The explorer enumerates executions by depth-first
// search over two kinds of nondeterminism:
//
//   - which runnable thread performs the next visible operation, and
//   - which visible store each atomic load reads from (stale reads
//     included, subject to the coherence and seq_cst rules).
//
// Backtracking is stateless: the program is re-run from scratch following
// a recorded decision prefix, exactly as in CDSChecker.
package checker

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"repro/internal/checker/model"
)

// Config controls an exploration.
type Config struct {
	// Model selects the consistency model the exploration runs under
	// (default model.C11). Every engine honors it — exhaustive DFS, the
	// work-stealing engine, RandomWalk, and FastMode — because the rules
	// live behind the per-System consistency backend, not in the engines.
	// An unknown model is a configuration error (Validate reports it;
	// Explore panics on it).
	Model model.ID
	// MaxExecutions bounds the number of executions explored
	// (0 = exhaustive). It applies to both DFS and RandomWalk mode.
	MaxExecutions int
	// Parallelism is the number of worker goroutines exploring
	// concurrently (0 or 1 = sequential). DFS mode explores with
	// work-stealing over decision subtrees — each worker owns a Chase-Lev
	// deque of frontier tasks and steals when dry — while folding every
	// task's result at its canonical decision-path position, so an
	// exhaustive parallel run returns bit-identical
	// Executions/Feasible/Pruned/Failures/Stats (timings and scheduler
	// telemetry aside) to the sequential run. RandomWalk mode shards the
	// walk count, with each worker drawing from an independent seed
	// derived from Seed. When Parallelism > 1 the OnRunStart and
	// OnExecution hooks must be safe for concurrent use (each call still
	// receives a distinct *System).
	Parallelism int
	// MaxSteps bounds the visible operations per execution; runs that
	// exceed it are pruned as infeasible. 0 uses a default of 4000.
	MaxSteps int
	// MaxThreads bounds simultaneous simulated threads (default 16).
	MaxThreads int
	// StopAtFirst stops the exploration at the first failure.
	StopAtFirst bool
	// MaxFailures bounds how many failures are retained (default 16).
	MaxFailures int
	// TraceLimit bounds the rendered trace length in failure reports
	// (default 64 actions).
	TraceLimit int
	// RandomWalk, when positive, replaces exhaustive DFS with that many
	// independent random executions (decisions drawn from Seed). Useful
	// for state spaces too large to exhaust.
	//
	// Engine-routing precedence (explicit; each mode ignores the knobs of
	// the ones below it):
	//
	//	1. FastMode       — single-pass plausible executions, O(live state)
	//	2. RandomWalk > 0 — uniform random walks with full bookkeeping
	//	3. Parallelism > 1 or checkpoint/resume/interrupt configured
	//	                  — work-stealing DFS engine
	//	4. otherwise      — sequential DFS
	//
	// FastMode and RandomWalk honor Parallelism by sharding their run
	// budget over contiguous index blocks with per-run derived seeds, so
	// their Result and Stats are bit-identical at any Parallelism (timings
	// aside). Checkpoint/ResumeFrom apply only to DFS; Interrupt is
	// honored by every mode.
	RandomWalk int
	// Seed seeds RandomWalk and FastMode. Each run's decision stream is
	// derived from (Seed, run index), so results do not depend on how runs
	// are scheduled across workers.
	Seed int64
	// FastMode replaces exploration with C11Tester-style plausible-
	// execution sampling: each run picks one random schedule and one
	// plausible reads-from assignment, biased toward recent stores, with
	// clock-vector race detection for plain and atomic accesses — in O(live
	// state) memory (no action trace, per-location store buffers bounded by
	// StoreBound). Built-in checks (races, mixed races, uninitialized
	// loads, deadlocks) still fire; the CDSSpec layer is unsupported
	// (core.Explore rejects the combination). MaxExecutions is the run
	// budget (default 1000 when 0); Exhausted is never set — sampling
	// proves presence, not absence.
	FastMode bool
	// TimeBudget, when positive, stops a FastMode run loop after the
	// elapsed wall clock exceeds it (checked between runs). With
	// Parallelism > 1 the cut point is nondeterministic, unlike the
	// run-budget path.
	TimeBudget time.Duration
	// StoreBound bounds each location's retained store-buffer window in
	// FastMode (default 64, minimum 2). When a buffer overflows, the older
	// half is evicted: evicted stores are treated as happened-before
	// everything and can no longer be read stale — the plausibility
	// approximation that keeps memory constant.
	StoreBound int
	// DisableStaleReads, when set, forces every atomic load to read the
	// mo-latest store — i.e. explores only sequentially-consistent
	// executions. Used by the ablation benchmarks.
	DisableStaleReads bool
	// DisableSleepSet turns off the sleep-set partial-order reduction:
	// every enabled thread stays a scheduling candidate. Exhaustive but
	// slower; used by soundness tests that compare outcome sets with the
	// reduction on vs off.
	DisableSleepSet bool
	// Reduce selects the execution-equivalence reductions (reduce.go):
	// rf-class subtree pruning over a shared seen-set, thread-symmetry
	// canonicalization, and spinloop/await bounding. Zero value = no
	// reduction (the pre-reduction explorer). Each mechanism is
	// independently toggleable and composes with every DFS engine
	// (sequential and work-stealing) and every Model backend; RandomWalk
	// supports only Spinloop, and FastMode supports none (Validate
	// rejects the other combinations). The behavior set — spec
	// fingerprints and failure kinds — is preserved exactly; see
	// DESIGN.md §5c for the equivalence key and soundness argument.
	Reduce ReduceSet
	// DisableLifetimeCheck turns off the unpublished-memory built-in
	// check, the equivalent of silencing CDSChecker's uninitialized-load
	// report (the paper does this in §6.4.1 to let the Chase-Lev bug
	// surface as a specification violation instead).
	DisableLifetimeCheck bool
	// DisableFloorCache turns off the per-(thread, location) memoization
	// of visibleFloor. Results are identical either way (pinned by
	// tests); the flag exists for ablation benchmarks and as a field
	// escape hatch.
	DisableFloorCache bool
	// DisablePooling turns off per-shard recycling of executions
	// (System, threads, locations, actions, clock snapshots). Required
	// by clients that retain *memmodel.Action or Action.Clock pointers
	// across executions — with pooling on they are valid only within the
	// execution that produced them. Results are identical either way.
	DisablePooling bool
	// DisableLoadCompaction turns off the discarding of read-read
	// coherence records that can never again raise a visibility floor.
	// Results are identical either way.
	DisableLoadCompaction bool
	// DisableReplayPinning turns off the frozen-prefix replay fast path
	// (reusing recorded visibility computations while re-driving a
	// recorded decision prefix). Results are identical either way.
	DisableReplayPinning bool
	// DebugReplayCheck recomputes every pinned visibility record during
	// replay and panics on mismatch — a (slow) validation mode for the
	// replay-determinism invariant the pinning fast path relies on.
	DebugReplayCheck bool
	// compactThreshold is the loadRec count past which a location's
	// records are compacted (default 64; tests lower it to force
	// compaction on small programs).
	compactThreshold int
	// OnRunStart runs at the start of every execution, before the root
	// thread. It typically installs the spec monitor in sys.Aux.
	OnRunStart func(sys *System)
	// OnExecution runs after every feasible (completed) execution and
	// returns any specification failures found in it.
	OnExecution func(sys *System) []*Failure
	// NewScratch, when set, is called once per exploration shard and its
	// result is exposed to the hooks as System.Scratch for every execution
	// of that shard. A shard's boundaries coincide between sequential and
	// parallel DFS: each branch of the root decision node is one shard (in
	// RandomWalk mode each worker is a shard). The CDSSpec layer keeps its
	// spec-check memoization cache here — the alignment is what keeps
	// cache-derived Stats counters bit-identical between exhaustive
	// sequential and parallel runs. Under parallel DFS several workers may
	// explore one shard concurrently (work-stealing carves shards into
	// subtree tasks), so when Parallelism > 1 the scratch value must be
	// safe for concurrent use; the CDSSpec cache locks internally.
	NewScratch func() any
	// Progress, when set, receives a periodic snapshot of the running
	// exploration every ProgressInterval, plus a closing snapshot with
	// Final set whose counts equal the returned Result. It is invoked
	// from a dedicated goroutine (and, for the final snapshot, from the
	// Explore caller), never concurrently with itself.
	Progress func(Progress)
	// ProgressInterval is the delivery period for Progress snapshots
	// (default 1s).
	ProgressInterval time.Duration

	// Checkpoint, when set, receives serialized snapshots of the DFS
	// exploration state: the outstanding decision frontier plus the
	// Result/Stats accumulated so far (see Checkpoint). It is called
	// every CheckpointEvery (when positive) and once more after the
	// workers stop — whether the run completed, hit MaxExecutions, or was
	// interrupted — never concurrently with itself. Setting it routes
	// even Parallelism <= 1 runs through the work-stealing engine.
	// RandomWalk mode does not checkpoint (walks are independent; rerun
	// the missing count instead).
	Checkpoint func(*Checkpoint)
	// CheckpointEvery is the period between Checkpoint snapshots (0 =
	// only the final snapshot).
	CheckpointEvery time.Duration
	// ResumeFrom continues a previous exploration from its checkpoint:
	// completed regions are folded as-is and only the outstanding
	// frontier is explored, at any Parallelism. The final Result is
	// bit-identical (timings aside) to an uninterrupted run. Explore
	// panics if the checkpoint fails Validate.
	ResumeFrom *Checkpoint
	// Interrupt, when non-nil, makes the engine stop gracefully as soon
	// as the channel is closed (or receives): workers finish their
	// current execution, the final Checkpoint snapshot is emitted, and
	// Explore returns the partial Result. Wire a signal handler to it for
	// SIGINT-driven checkpointing.
	Interrupt <-chan struct{}

	// progress is the live tracker behind the Progress callback, shared
	// by every worker of this exploration. Explore installs it on its
	// private withDefaults copy.
	progress *progressTracker
	// backend is the resolved consistency backend for Model, installed by
	// withDefaults and read by every System of the exploration.
	backend consistency
	// rfSeen is the shared witnessed-state registry behind Reduce.RF,
	// installed by withDefaults (one per exploration, shared by every
	// worker; internally sharded and locked). Checkpoints do not carry it:
	// a resume starts with an empty registry, which is sound — the set
	// only prunes, never admits.
	rfSeen *rfSeenSet
}

// Validate reports the first configuration error, or nil. Explore panics
// on an invalid Config (misconfiguration is a caller bug, like an invalid
// checkpoint); callers that surface errors to users — the CLI, the
// harness — should Validate first.
//
// The checks reject combinations that earlier versions silently ignored
// or mishandled: a negative StoreBound fell through the minimum clamp to
// 2 as if it were a small bound, and FastMode quietly dropped
// Checkpoint/ResumeFrom/RandomWalk instead of refusing them (FastMode
// samples independent runs — there is no frontier to checkpoint and no
// walk bookkeeping; the engines are mutually exclusive by the routing
// precedence documented on RandomWalk).
func (c *Config) Validate() error {
	if !c.Model.OrDefault().Valid() {
		return fmt.Errorf("checker: unknown memory model %q (valid: %s)", c.Model, strings.Join(model.Names(), ", "))
	}
	if c.StoreBound < 0 {
		return fmt.Errorf("checker: StoreBound must be >= 0, got %d", c.StoreBound)
	}
	if c.FastMode {
		switch {
		case c.Checkpoint != nil || c.CheckpointEvery > 0:
			return fmt.Errorf("checker: FastMode cannot checkpoint — runs are independent samples with no decision frontier; rerun the missing budget instead")
		case c.ResumeFrom != nil:
			return fmt.Errorf("checker: FastMode cannot resume a checkpoint — checkpoints hold a DFS frontier, which FastMode does not explore")
		case c.RandomWalk > 0:
			return fmt.Errorf("checker: FastMode and RandomWalk are mutually exclusive engines — set MaxExecutions to size the FastMode run budget")
		}
	}
	if c.RandomWalk > 0 && c.ResumeFrom != nil {
		return fmt.Errorf("checker: RandomWalk cannot resume a checkpoint — checkpoints hold a DFS frontier; rerun the missing walk count instead")
	}
	if c.FastMode && c.Reduce.Any() {
		return fmt.Errorf("checker: FastMode samples plausible executions with no decision tree, so the %s reduction has nothing to prune — drop Reduce or FastMode", c.Reduce)
	}
	if c.RandomWalk > 0 && (c.Reduce.RF || c.Reduce.Symmetry) {
		return fmt.Errorf("checker: RandomWalk supports only the spinloop reduction — rf and symmetry prune DFS subtrees, which independent walks do not have (got Reduce=%s)", c.Reduce)
	}
	// A negative interval previously fell through every `> 0` guard and
	// behaved as 0 (final snapshot only) while still routing the run
	// through the work-stealing engine — reject it instead of silently
	// reinterpreting it. An interval with no Checkpoint sink likewise
	// forced the engine and ticked a snapshot loop whose output went
	// nowhere; the caller who wanted periodic checkpoints got none.
	if c.CheckpointEvery < 0 {
		return fmt.Errorf("checker: CheckpointEvery must be >= 0, got %v", c.CheckpointEvery)
	}
	if c.CheckpointEvery > 0 && c.Checkpoint == nil {
		return fmt.Errorf("checker: CheckpointEvery %v has no Checkpoint sink to deliver snapshots to — set Config.Checkpoint (0 with a sink means final snapshot only)", c.CheckpointEvery)
	}
	return nil
}

// wantsEngine reports whether checkpoint/resume/interrupt plumbing
// requires the work-stealing engine even at Parallelism <= 1.
func (c *Config) wantsEngine() bool {
	return c.Checkpoint != nil || c.CheckpointEvery > 0 || c.ResumeFrom != nil || c.Interrupt != nil
}

func (c *Config) withDefaults() *Config {
	out := *c
	if out.MaxSteps == 0 {
		out.MaxSteps = 4000
	}
	if out.MaxThreads == 0 {
		out.MaxThreads = 16
	}
	if out.MaxFailures == 0 {
		out.MaxFailures = 16
	}
	if out.TraceLimit == 0 {
		out.TraceLimit = 64
	}
	if out.ProgressInterval == 0 {
		out.ProgressInterval = time.Second
	}
	if out.compactThreshold == 0 {
		out.compactThreshold = 64
	}
	if out.StoreBound == 0 {
		out.StoreBound = 64
	}
	if out.StoreBound < 2 {
		out.StoreBound = 2 // the newest store must survive eviction
	}
	out.backend = backendFor(out.Model)
	if out.Reduce.RF {
		out.rfSeen = newRFSeenSet()
	}
	return &out
}

// Result aggregates an exploration.
type Result struct {
	// Executions is the total number of executions explored, feasible
	// or not.
	Executions int `json:"executions"`
	// Feasible is the number of executions that ran to completion and
	// were handed to the specification checker.
	Feasible int `json:"feasible"`
	// Pruned is the number of abandoned executions (sleep-set redundancy,
	// livelock fairness, step bound); Stats splits it by reason.
	Pruned int `json:"pruned"`
	// Failures holds detected failures, capped at Config.MaxFailures.
	Failures []*Failure `json:"failures,omitempty"`
	// FailureCount counts all failures, including ones not retained.
	FailureCount int `json:"failure_count"`
	// Elapsed is the wall-clock exploration time. Under Parallelism it is
	// still wall clock — never a per-worker sum folded through the merge.
	Elapsed time.Duration `json:"elapsed_ns"`
	// Exhausted reports whether the decision space was fully explored
	// (false when MaxExecutions or StopAtFirst cut it short).
	Exhausted bool `json:"exhausted"`
	// Stats breaks down where the executions and time went. On exhaustive
	// runs every field except the timings is bit-identical between
	// sequential and parallel exploration.
	Stats Stats `json:"stats"`
}

// HasKind reports whether any recorded failure has the given kind.
func (r *Result) HasKind(k FailureKind) bool {
	for _, f := range r.Failures {
		if f.Kind == k {
			return true
		}
	}
	return false
}

// HasBuiltIn reports whether any recorded failure is a built-in check.
func (r *Result) HasBuiltIn() bool {
	for _, f := range r.Failures {
		if f.Kind.BuiltIn() {
			return true
		}
	}
	return false
}

// FirstFailure returns the first retained failure, or nil.
func (r *Result) FirstFailure() *Failure {
	if len(r.Failures) == 0 {
		return nil
	}
	return r.Failures[0]
}

// String summarizes the result in one line.
func (r *Result) String() string {
	return fmt.Sprintf("executions=%d feasible=%d pruned=%d failures=%d elapsed=%v",
		r.Executions, r.Feasible, r.Pruned, r.FailureCount, r.Elapsed)
}

// decision is one explored choice point: either a value choice
// ('r'/'c', using n and chosen) or a scheduling choice ('s', using
// cands/chosen/explored).
type decision struct {
	kind   byte
	n      int
	chosen int

	// Scheduling decisions ('s'):
	//
	// cands are the candidate thread ids at this node — the enabled
	// threads minus the ones asleep under the sleep-set reduction.
	cands []int
	// explored lists candidates whose subtrees are fully explored; when
	// the node is replayed on the way to a sibling, they are put to
	// sleep (their next operation need not be re-interleaved until a
	// dependent operation wakes them — Godefroid's sleep sets).
	explored []int

	// callIdx is the dfsChooser vlog position the node corresponds to:
	// value-site records strictly below it stay valid when the node's
	// chosen branch advances (for a value node it counts the node's own
	// record, appended just before the node was created — the record is
	// a function of the execution state, never of the choice). advance
	// truncates the vlog validity to it when backtracking to the node.
	callIdx int
}

// dfsChooser replays a decision prefix and extends it depth-first.
type dfsChooser struct {
	decisions    []decision
	depth        int
	disableRF    bool
	disableSleep bool
	// stats receives decision counters; the explorer points it at the
	// Result the chooser's executions are folded into. Fresh decision
	// nodes count as branch points, replayed ones as ReplayedDecisions —
	// tallies that match sequential DFS exactly when a parallel worker
	// replays a frozen prefix, because the worker's stack is the same
	// stack sequential DFS holds inside that subtree.
	stats *Stats

	// pin enables the frozen-prefix replay fast path: vlog records the
	// visibility computation of every value-nondeterminism site of the
	// current execution in call order; positions below vvalid were
	// recorded by a previous execution of the identical prefix and are
	// served back (vpos is the cursor), positions at and past it are
	// computed fresh and appended. advance rewinds vvalid to the
	// backtracked node's callIdx — the calls before that node are the
	// ones its new branch replays unchanged.
	pin    bool
	vlog   []floorRec
	vpos   int
	vvalid int
	// scratchRec backs noteFloor when pinning is off.
	scratchRec floorRec
	// candsBuf backs pickThread's candidate filtering, copied only when
	// a fresh decision node retains the candidate list.
	candsBuf []int
}

// pinnedFloor serves the next recorded value-site computation while the
// cursor is inside the validated prefix.
func (d *dfsChooser) pinnedFloor() (*floorRec, bool) {
	if !d.pin || d.vpos >= d.vvalid {
		return nil, false
	}
	r := &d.vlog[d.vpos]
	d.vpos++
	return r, true
}

// noteFloor appends a freshly computed record at the cursor, truncating
// any stale tail from a longer previous execution.
func (d *dfsChooser) noteFloor(rec floorRec) *floorRec {
	if !d.pin {
		d.scratchRec = rec
		return &d.scratchRec
	}
	d.vlog = append(d.vlog[:d.vpos], rec)
	d.vpos = len(d.vlog)
	d.vvalid = d.vpos
	return &d.vlog[d.vpos-1]
}

// rewindVlog resets the cursor for the next execution, keeping records
// below the backtracked node's call position valid.
func (d *dfsChooser) rewindVlog(nd *decision) {
	if !d.pin {
		return
	}
	v := nd.callIdx
	if v > len(d.vlog) {
		v = len(d.vlog)
	}
	d.vvalid = v
	d.vpos = 0
}

// noteDecision updates the branch/replay counters for one decision with
// n > 1 alternatives. fresh marks a newly opened node; sched selects the
// schedule counter over the reads-from one.
func (d *dfsChooser) noteDecision(fresh, sched bool) {
	if d.stats == nil {
		return
	}
	switch {
	case !fresh:
		d.stats.ReplayedDecisions++
	case sched:
		d.stats.ScheduleBranchPoints++
	default:
		d.stats.RFBranchPoints++
	}
	if d.depth > d.stats.MaxDecisionDepth {
		d.stats.MaxDecisionDepth = d.depth
	}
}

func (d *dfsChooser) choose(n int, kind byte) int {
	if n <= 1 {
		return 0
	}
	if d.disableRF && (kind == 'r' || kind == 'c') {
		// SC-only exploration: always pick the newest store / the
		// success branch (choice 0 is "success" for CAS and we must
		// map loads to the latest store, which is the last index).
		if kind == 'r' {
			return n - 1
		}
		return 0
	}
	if d.depth < len(d.decisions) {
		// Refresh callIdx while replaying: it is a pure function of the
		// path (the vlog position when the node is reached), so recomputing
		// it here keeps prefixes handed over by the work-stealing engine —
		// which copies decisions between choosers without vlog context —
		// valid anchors for the next resetTo.
		d.decisions[d.depth].callIdx = d.vpos
		c := d.decisions[d.depth].chosen
		d.depth++
		d.noteDecision(false, false)
		return c
	}
	d.decisions = append(d.decisions, decision{n: n, chosen: 0, kind: kind, callIdx: d.vpos})
	d.depth++
	// 'l' (last-resort spinner wake) is a scheduling choice; 'r'/'c' are
	// value choices.
	d.noteDecision(true, kind == 'l')
	return 0
}

// freshDecision reports whether the next decision would open a fresh
// node, past any replayed prefix. Reduction checks and counters fire only
// at fresh nodes, so sequential and parallel runs count alike and a
// replay never re-checks the branch point it registered on first visit.
func (d *dfsChooser) freshDecision() bool { return d.depth >= len(d.decisions) }

func (d *dfsChooser) pickThread(s *System, enabled []*Thread) *Thread {
	cands := d.candsBuf[:0]
	for _, t := range enabled {
		if !d.disableSleep && t.state != tsYield && s.sleep.asleep(t.id) {
			continue
		}
		cands = append(cands, t.id)
	}
	if s.cfg.Reduce.Any() {
		// Deterministic function of the execution state, so replays and
		// frozen-prefix re-drives recompute the identical candidate list.
		cands = s.reduceCandidates(cands, d.freshDecision())
	}
	d.candsBuf = cands
	if len(cands) == 0 {
		// Every enabled thread is asleep: this interleaving is
		// equivalent to one already explored.
		return nil
	}
	if len(cands) == 1 {
		// No branching: not recorded (replay recomputes it identically).
		// The rf-equivalence check still applies on first-visit paths:
		// convergent interleavings often reach an equal state at a forced
		// step rather than at a branch point, and pruning there is sound
		// for the same reason — the registered instance explores every
		// continuation of the state, branching or not. Replays skip the
		// check (freshDecision), so a frozen prefix never self-prunes.
		if s.cfg.Reduce.RF && d.freshDecision() && s.rfStateSeen('s', nil, nil) {
			s.pruneReason = pruneRFEquiv
			return nil
		}
		return s.threads[cands[0]]
	}
	if d.depth < len(d.decisions) {
		nd := &d.decisions[d.depth]
		nd.callIdx = d.vpos // see choose: path-intrinsic, refreshed on replay
		d.depth++
		d.noteDecision(false, true)
		if !d.disableSleep {
			for _, tid := range nd.explored {
				t := s.threads[tid]
				if t.state != tsYield {
					s.sleep.sleep(tid, t.pendSig)
				}
			}
		}
		return s.threads[nd.cands[nd.chosen]]
	}
	if s.cfg.Reduce.RF && s.rfStateSeen('s', nil, nil) {
		// Fresh scheduling branch point in an already-witnessed state
		// (under a no-larger sleep set): every continuation re-derives a
		// registered rf class. The caller (nextThread) reads pruneReason.
		s.pruneReason = pruneRFEquiv
		return nil
	}
	d.decisions = append(d.decisions, decision{kind: 's', cands: append([]int(nil), cands...), callIdx: d.vpos})
	d.depth++
	d.noteDecision(true, true)
	return s.threads[cands[0]]
}

// advance moves to the next leaf of the decision tree; it reports false
// when the space is exhausted.
func (d *dfsChooser) advance() bool { return d.advanceFrom(0) }

// advanceFrom is advance restricted to decisions at depth >= floor; the
// prefix below floor is frozen. The parallel explorer uses it to keep a
// worker inside its assigned subtree.
func (d *dfsChooser) advanceFrom(floor int) bool {
	for i := len(d.decisions) - 1; i >= floor; i-- {
		nd := &d.decisions[i]
		if nd.kind == 's' {
			nd.explored = append(nd.explored, nd.cands[nd.chosen])
			next := nextUnexplored(nd.cands, nd.explored)
			if next >= 0 {
				nd.chosen = next
				d.decisions = d.decisions[:i+1]
				d.depth = 0
				d.rewindVlog(nd)
				return true
			}
			continue // node exhausted: pop
		}
		if nd.chosen+1 < nd.n {
			nd.chosen++
			d.decisions = d.decisions[:i+1]
			d.depth = 0
			d.rewindVlog(nd)
			return true
		}
	}
	return false
}

// resetTo repositions the chooser on a frozen decision path — the
// work-stealing engine's replacement for advance. The new path and the
// chooser's current decisions agree up to their first differing choice;
// value-site records recorded strictly below that node's call position
// stay valid for replay pinning, exactly as rewindVlog arranges when
// advance flips the same node. When the chooser carries no usable prefix
// (fresh worker, or a steal that shares nothing) the vlog conservatively
// invalidates entirely.
func (d *dfsChooser) resetTo(path []decision) {
	div := 0
	for div < len(d.decisions) && div < len(path) &&
		d.decisions[div].kind == path[div].kind && d.decisions[div].chosen == path[div].chosen {
		div++
	}
	if d.pin {
		v := 0
		if div < len(d.decisions) {
			// d.decisions[div] was replayed or created by the previous
			// execution, so its callIdx is current (see choose).
			v = d.decisions[div].callIdx
			if v > len(d.vlog) {
				v = len(d.vlog)
			}
		}
		d.vvalid = v
		d.vpos = 0
	}
	d.decisions = append(d.decisions[:0], path...)
	d.depth = 0
}

// rootBranch identifies the branch of the root decision node the chooser
// currently sits in (0 before any decision is recorded, or for a run with
// a deterministic first choice). DFS advances the root node's chosen
// branch monotonically, so a change in this value marks the boundary
// between two subtrees of the root decision — the shard boundary.
func (d *dfsChooser) rootBranch() int {
	if len(d.decisions) == 0 {
		return 0
	}
	return d.decisions[0].chosen
}

// nextUnexplored returns the index of the first candidate whose subtree
// is not yet explored, or -1. Thread ids are small, so membership is one
// bitmask over ids — O(cands + explored) — instead of the quadratic
// scan-per-candidate it replaces (hot on wide scheduling nodes: the scan
// runs at every backtrack). Ids past the mask width fall back to the
// linear scan, which remains the reference implementation (benchmarked
// against it in explorer_bench_test.go).
func nextUnexplored(cands, explored []int) int {
	var mask uint64
	for _, tid := range explored {
		if tid >= 64 {
			return nextUnexploredSlow(cands, explored)
		}
		mask |= 1 << uint(tid)
	}
	for j, tid := range cands {
		if tid >= 64 {
			return nextUnexploredSlow(cands, explored)
		}
		if mask&(1<<uint(tid)) == 0 {
			return j
		}
	}
	return -1
}

// nextUnexploredSlow is the pre-bitmask scan, kept as the fallback for
// thread ids beyond the mask width.
func nextUnexploredSlow(cands, explored []int) int {
	for j, tid := range cands {
		if !contains(explored, tid) {
			return j
		}
	}
	return -1
}

func contains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// randChooser draws every decision uniformly at random.
type randChooser struct {
	rng        *rand.Rand
	disableRF  bool
	stats      *Stats
	scratchRec floorRec
}

// pinnedFloor: random walks never replay a prefix, so value sites always
// compute fresh.
func (r *randChooser) pinnedFloor() (*floorRec, bool) { return nil, false }

// freshDecision: walks never replay, so every decision is fresh.
func (r *randChooser) freshDecision() bool { return true }

func (r *randChooser) noteFloor(rec floorRec) *floorRec {
	r.scratchRec = rec
	return &r.scratchRec
}

func (r *randChooser) choose(n int, kind byte) int {
	if n <= 1 {
		return 0
	}
	if r.disableRF && (kind == 'r' || kind == 'c') {
		if kind == 'r' {
			return n - 1
		}
		return 0
	}
	if r.stats != nil {
		// Random walks never replay, so every multi-way decision is a
		// branch point.
		if kind == 'l' {
			r.stats.ScheduleBranchPoints++
		} else {
			r.stats.RFBranchPoints++
		}
	}
	return r.rng.Intn(n)
}

func (r *randChooser) pickThread(s *System, enabled []*Thread) *Thread {
	if s.cfg.Reduce.Spinloop {
		// Drop provably futile spinners unless that would drop everyone
		// (the remaining futile spinners still drive livelock detection).
		live := 0
		for _, t := range enabled {
			if !s.spinBlocked(t) {
				live++
			}
		}
		if live > 0 && live < len(enabled) {
			s.redSpinBounds += len(enabled) - live
			out := enabled[:0]
			for _, t := range enabled {
				if !s.spinBlocked(t) {
					out = append(out, t)
				}
			}
			enabled = out
		}
	}
	if r.stats != nil && len(enabled) > 1 {
		r.stats.ScheduleBranchPoints++
	}
	return enabled[r.rng.Intn(len(enabled))]
}

// record folds a failure into the result, retaining at most maxFailures.
func (r *Result) record(f *Failure, maxFailures int) {
	r.FailureCount++
	if len(r.Failures) < maxFailures {
		r.Failures = append(r.Failures, f)
	}
}

// runOne performs one execution under ch and folds it into res, using
// res.Executions as the 1-based execution index. scratch is the shard
// state exposed as System.Scratch (nil when Config.NewScratch is unset);
// pool is the shard's execution pool (nil when pooling is disabled).
// It reports whether the execution failed.
func runOne(c *Config, res *Result, ch chooser, root func(*Thread), scratch any, pool *execPool) bool {
	res.Executions++
	exploreStart := time.Now()
	sys := runExecution(c, ch, root, res.Executions, scratch, pool)
	res.Stats.ExploreTime += time.Since(exploreStart)
	res.Stats.TotalSteps += sys.stepCount
	res.Stats.StoreBufferEvictions += sys.evictions
	res.Stats.SpinloopBounds += sys.redSpinBounds
	res.Stats.SymmetryPrunes += sys.redSymPrunes
	if c.rfSeen != nil {
		// Monotone live snapshot for progress gauges; Explore overwrites
		// it with the exact final count when the run ends.
		res.Stats.RFClasses = int(c.rfSeen.classes.Load())
	}

	failed := false
	failures := 0
	switch {
	case sys.pruned:
		res.Pruned++
		switch sys.pruneReason {
		case pruneFairness:
			res.Stats.PrunedFairness++
		case pruneStepBound:
			res.Stats.PrunedStepBound++
		case pruneRFEquiv:
			res.Stats.RFEquivPrunes++
		default:
			res.Stats.PrunedSleepSet++
		}
	case sys.failure != nil:
		res.record(sys.failure, c.MaxFailures)
		failed = true
		failures = 1
	default:
		res.Feasible++
		sys.noteCompleteExecution()
		if c.OnExecution != nil {
			specStart := time.Now()
			fails := c.OnExecution(sys)
			res.Stats.SpecTime += time.Since(specStart)
			res.Stats.Histories += sys.specReport.Histories
			if sys.specReport.HistoriesCapped {
				res.Stats.HistoriesCapped++
			}
			res.Stats.AdmissibilityChecks += sys.specReport.AdmissibilityChecks
			res.Stats.JustifySearches += sys.specReport.JustifySearches
			res.Stats.SpecCacheHits += sys.specReport.CacheHits
			res.Stats.SpecCacheMisses += sys.specReport.CacheMisses
			res.Stats.SpecCacheEntries += sys.specReport.CacheEntries
			for _, f := range fails {
				if f.Execution == 0 {
					f.Execution = res.Executions
				}
				res.record(f, c.MaxFailures)
			}
			failed = len(fails) > 0
			failures = len(fails)
		}
	}
	if c.progress != nil {
		c.progress.observe(!sys.pruned && sys.failure == nil, sys.pruned, failures, sys.specReport.CacheHits,
			sys.pruneReason == pruneRFEquiv, sys.redSymPrunes, sys.redSpinBounds)
	}
	return failed
}

// newScratch builds one shard's Scratch value (nil without NewScratch).
func (c *Config) newScratch() any {
	if c.NewScratch == nil {
		return nil
	}
	return c.NewScratch()
}

// randomWalkBudget returns the number of random-walk executions to run,
// honoring MaxExecutions.
func (c *Config) randomWalkBudget() int {
	n := c.RandomWalk
	if c.MaxExecutions > 0 && c.MaxExecutions < n {
		n = c.MaxExecutions
	}
	return n
}

// newDFSChooser builds a chooser for exhaustive exploration under c.
func newDFSChooser(c *Config) *dfsChooser {
	return &dfsChooser{
		disableRF:    c.DisableStaleReads,
		disableSleep: c.DisableSleepSet,
		pin:          !c.DisableReplayPinning,
	}
}

// Explore enumerates executions of root under cfg and returns the
// aggregated result.
func Explore(cfg Config, root func(*Thread)) *Result {
	if err := cfg.Validate(); err != nil {
		panic(err.Error())
	}
	c := cfg.withDefaults()
	if c.Progress != nil {
		c.progress = newProgressTracker(c.Progress, c.ProgressInterval, c.MaxExecutions)
		if c.rfSeen != nil {
			c.progress.attachClasses(&c.rfSeen.classes)
		}
		defer c.progress.close()
	}
	// Engine routing — the precedence documented on Config.RandomWalk:
	// FastMode > RandomWalk > work-stealing engine > sequential DFS.
	// (Before this was pinned, RandomWalk > 0 with Parallelism > 1
	// silently routed into the parallel DFS branch's walk shards.)
	switch {
	case c.FastMode:
		return exploreFast(c, root)
	case c.RandomWalk > 0:
		return exploreRandomWalk(c, root)
	case c.Parallelism > 1 || c.wantsEngine():
		return exploreParallel(c, root)
	}
	res := &Result{}
	start := time.Now()
	defer func() { res.Elapsed = time.Since(start) }()
	defer func() {
		if c.rfSeen != nil {
			// Exact final class count (the per-run snapshots in runOne are
			// monotone but may trail the registry).
			res.Stats.RFClasses = int(c.rfSeen.classes.Load())
		}
	}()

	d := newDFSChooser(c)
	d.stats = &res.Stats
	// Each branch of the root decision node is one shard — the same
	// partition parallel DFS uses for its tasks, so shard-scoped state
	// (spec caches) behaves identically in both modes. The execution pool
	// is also shard-scoped only because a shard is single-threaded; its
	// contents are mechanical, so carrying one pool across branches is
	// equally sound — but keeping the scopes aligned keeps the
	// sequential/parallel correspondence easy to reason about.
	scratch := c.newScratch()
	pool := newExecPool(c)
	branch := d.rootBranch()
	for {
		failed := runOne(c, res, d, root, scratch, pool)
		if failed && c.StopAtFirst {
			return res
		}
		if c.MaxExecutions > 0 && res.Executions >= c.MaxExecutions {
			return res
		}
		if !d.advance() {
			res.Exhausted = true
			return res
		}
		if rb := d.rootBranch(); rb != branch {
			branch = rb
			scratch = c.newScratch()
		}
	}
}

// runExecution performs a single execution under the given chooser,
// recycling per-execution state through pool when one is supplied.
func runExecution(cfg *Config, ch chooser, root func(*Thread), execIndex int, scratch any, pool *execPool) *System {
	var sys *System
	if pool != nil {
		sys = pool.take(cfg, ch, execIndex, scratch)
	} else {
		sys = &System{cfg: cfg, chooser: ch, execIndex: execIndex, sleep: newSleepSet(), Scratch: scratch, schedDone: make(chan struct{})}
	}
	if cfg.OnRunStart != nil {
		cfg.OnRunStart(sys)
	}
	sys.newThread("main", root, nil)

	// Hand the baton to the first thread; from then on every scheduling
	// decision runs inline in whichever thread goroutine holds the baton
	// (Thread.park), and the holder whose decision ends the execution
	// signals schedDone.
	if next := sys.nextThread(); next != nil {
		next.resume <- struct{}{}
		<-sys.schedDone
	}
	sys.reap()
	return sys
}

// nextThread makes one scheduling decision: the thread to run next, or
// nil when the execution is over (completed, pruned, stuck, or aborted).
// It runs in whichever goroutine currently holds the baton.
func (s *System) nextThread() *Thread {
	if s.aborted {
		return nil
	}
	enabled := s.enabledThreads()
	if len(enabled) == 0 {
		if s.allFinished() {
			return nil // normal completion
		}
		if t := s.wakeLastResort(); t != nil {
			return t
		}
		s.reportStuck()
		return nil
	}
	t := s.chooser.pickThread(s, enabled)
	if t == nil {
		s.pruned = true
		if s.pruneReason == pruneNone {
			// pickThread may have set pruneRFEquiv; the default nil
			// meaning is sleep-set redundancy.
			s.pruneReason = pruneSleepSet
		}
		s.aborted = true
		return nil
	}
	return t
}

// enabledThreads returns the threads that may take a step right now, in
// deterministic (thread-id) order. The returned slice aliases a buffer
// reused across scheduling steps; callers must not retain it.
func (s *System) enabledThreads() []*Thread {
	out := s.enabledBuf[:0]
	for _, t := range s.threads {
		switch t.state {
		case tsParked:
			out = append(out, t)
		case tsYield:
			if s.storeEpoch > t.yieldEpoch {
				out = append(out, t)
			}
		case tsLock:
			if t.waitMutex.owner == -1 {
				out = append(out, t)
			}
		case tsJoin:
			if t.waitThread.state == tsFinished {
				out = append(out, t)
			}
		}
	}
	s.enabledBuf = out
	return out
}

func (s *System) allFinished() bool {
	for _, t := range s.threads {
		if t.state != tsFinished {
			return false
		}
	}
	return true
}

// wakeLastResort re-enables yielded spinners when nothing else can run:
// a spinner that then makes no state change is not retried at the same
// epoch, which both guarantees termination and detects livelocks.
func (s *System) wakeLastResort() *Thread {
	var cands []*Thread
	for _, t := range s.threads {
		if t.state == tsYield && t.lastResortEpoch != s.storeEpoch {
			cands = append(cands, t)
		}
	}
	if len(cands) == 0 {
		return nil
	}
	idx := s.chooser.choose(len(cands), 'l')
	t := cands[idx]
	t.lastResortEpoch = s.storeEpoch
	return t
}

// reportStuck handles the no-enabled-threads case from scheduler context
// (no thread to unwind, so no panic). If some yielded spinner read a store
// that has since been superseded, the execution is an unfair one — the
// spinner could have read the newer value, and the sibling branch where it
// does exists — so the run is pruned rather than reported (CDSChecker's
// fairness assumption). Otherwise the stuck state is a genuine deadlock or
// livelock.
func (s *System) reportStuck() {
	blocked := false
	spinning := false
	for _, t := range s.threads {
		switch t.state {
		case tsLock, tsJoin:
			blocked = true
		case tsYield:
			spinning = true
			for _, rr := range t.recentReads {
				if rr.loc.lastStoreIdx() > rr.rfMO {
					// Unfair: prune without reporting.
					s.pruned = true
					s.pruneReason = pruneFairness
					s.aborted = true
					return
				}
			}
		}
	}
	// Classify by wait chains: a blocked thread whose wait bottoms out in
	// a yielded spinner (a join on the spinner, a lock held by it, or a
	// chain thereof) is a casualty of the livelock; a block that cannot
	// be traced to a spinner — a lock cycle, a mutex held by a finished
	// thread — is a genuine deadlock even when an unrelated fair spinner
	// is also stuck.
	spinStuck := map[int]bool{}
	for _, t := range s.threads {
		if t.state == tsYield {
			spinStuck[t.id] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for _, t := range s.threads {
			if spinStuck[t.id] {
				continue
			}
			switch t.state {
			case tsJoin:
				if spinStuck[t.waitThread.id] {
					spinStuck[t.id] = true
					changed = true
				}
			case tsLock:
				if o := t.waitMutex.owner; o >= 0 && spinStuck[o] {
					spinStuck[t.id] = true
					changed = true
				}
			}
		}
	}
	kind := FailLivelock
	msg := "livelock: a spin loop can never be satisfied"
	for _, t := range s.threads {
		if (t.state == tsLock || t.state == tsJoin) && !spinStuck[t.id] {
			kind = FailDeadlock
			msg = "deadlock: threads blocked on locks/joins that cannot be satisfied"
			break
		}
	}
	if !spinning && !blocked {
		// Unreachable in practice (reportStuck runs only when threads are
		// stuck), but keep the deadlock default for safety.
		kind = FailDeadlock
		msg = "deadlock: no thread can make progress"
	}
	if s.failure == nil {
		s.failure = &Failure{
			Kind:      kind,
			Msg:       msg,
			Execution: s.execIndex,
			ActionID:  s.lastActionID(),
			Trace:     s.TraceString(s.cfg.TraceLimit),
		}
	}
	s.aborted = true
}

// grant hands the baton to t and waits for it to park or finish.
// reap collects every thread goroutine: blocked ones are poisoned (they
// see aborted and unwind; draining suppresses their baton handoff), and
// each goroutine's final parked send is consumed, so by the time reap
// returns no goroutine of this execution is live — the precondition for
// pooling the Thread structs.
func (s *System) reap() {
	s.draining = true
	s.aborted = true
	for _, t := range s.threads {
		if t.state != tsFinished {
			t.resume <- struct{}{}
		}
		<-t.parked
	}
	s.draining = false
}
