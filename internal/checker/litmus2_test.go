package checker

import (
	"fmt"
	"testing"

	"repro/internal/memmodel"
)

// --- Fence rule variants -------------------------------------------------

// TestFenceToFenceSync: release fence + relaxed store / relaxed load +
// acquire fence synchronizes end to end.
func TestFenceToFenceSync(t *testing.T) {
	res := exploreForFailures(func(root *Thread) {
		data := root.NewPlainInit("data", 0)
		flag := root.NewAtomicInit("flag", 0)
		w := root.Spawn("w", func(tt *Thread) {
			data.Store(tt, 1)
			Fence(tt, memmodel.Release)
			flag.Store(tt, memmodel.Relaxed, 1)
		})
		r := root.Spawn("r", func(tt *Thread) {
			if flag.Load(tt, memmodel.Relaxed) == 1 {
				Fence(tt, memmodel.Acquire)
				v := data.Load(tt)
				tt.Assert(v == 1, "fence-to-fence sync broken: %d", v)
			}
		})
		root.Join(w)
		root.Join(r)
	})
	if res.FailureCount != 0 {
		t.Errorf("expected no failures: %v", res.FirstFailure())
	}
}

// TestAcqRelFenceActsBoth: a single acq_rel fence provides both halves.
func TestAcqRelFenceActsBoth(t *testing.T) {
	res := exploreForFailures(func(root *Thread) {
		d1 := root.NewPlainInit("d1", 0)
		d2 := root.NewPlainInit("d2", 0)
		f1 := root.NewAtomicInit("f1", 0)
		f2 := root.NewAtomicInit("f2", 0)
		a := root.Spawn("a", func(tt *Thread) {
			d1.Store(tt, 1)
			Fence(tt, memmodel.AcqRel)
			f1.Store(tt, memmodel.Relaxed, 1)
		})
		b := root.Spawn("b", func(tt *Thread) {
			if f1.Load(tt, memmodel.Relaxed) == 1 {
				Fence(tt, memmodel.AcqRel)
				tt.Assert(d1.Load(tt) == 1, "acquire half broken")
				d2.Store(tt, 1)
				Fence(tt, memmodel.AcqRel)
				f2.Store(tt, memmodel.Relaxed, 1)
			}
		})
		c := root.Spawn("c", func(tt *Thread) {
			if f2.Load(tt, memmodel.Relaxed) == 1 {
				Fence(tt, memmodel.AcqRel)
				tt.Assert(d2.Load(tt) == 1, "release half broken")
			}
		})
		root.Join(a)
		root.Join(b)
		root.Join(c)
	})
	if res.FailureCount != 0 {
		t.Errorf("expected no failures: %v", res.FirstFailure())
	}
}

// TestSCFenceStoreSide: rule "store W; SC fence F; ... SC load R with
// F before R in S ⟹ R reads W or newer" — the store-side fence rule.
func TestSCFenceStoreSide(t *testing.T) {
	out, _ := exploreOutcomes(t, func(root *Thread, report func(string)) {
		x := root.NewAtomicInit("x", 0)
		done := root.NewAtomicInit("done", 0)
		w := root.Spawn("w", func(tt *Thread) {
			x.Store(tt, memmodel.Relaxed, 1)
			Fence(tt, memmodel.SeqCst)
			done.Store(tt, memmodel.Relaxed, 1)
		})
		r := root.Spawn("r", func(tt *Thread) {
			if done.Load(tt, memmodel.SeqCst) == 1 {
				// The writer's fence precedes this SC load in S (the
				// fence ran before the done store we read), so x=0 is
				// no longer readable.
				report(fmt.Sprintf("x=%d", x.Load(tt, memmodel.SeqCst)))
			}
		})
		root.Join(w)
		root.Join(r)
	})
	if out["x=0"] != 0 {
		t.Errorf("SC fence store-side rule violated: %v", out)
	}
}

// TestConsumeIsAcquire: consume promotes to acquire (what compilers do).
func TestConsumeIsAcquire(t *testing.T) {
	res := exploreForFailures(func(root *Thread) {
		data := root.NewPlainInit("data", 0)
		ptr := root.NewAtomicInit("ptr", 0)
		w := root.Spawn("w", func(tt *Thread) {
			data.Store(tt, 1)
			ptr.Store(tt, memmodel.Release, 1)
		})
		r := root.Spawn("r", func(tt *Thread) {
			if ptr.Load(tt, memmodel.Consume) == 1 {
				v := data.Load(tt)
				tt.Assert(v == 1, "consume failed to order: %d", v)
			}
		})
		root.Join(w)
		root.Join(r)
	})
	if res.FailureCount != 0 {
		t.Errorf("expected no failures: %v", res.FirstFailure())
	}
}

// --- Transitivity and cumulative synchronization -------------------------

// TestReleaseAcquireTransitive: hb composes across three threads
// (ISA2-style).
func TestReleaseAcquireTransitive(t *testing.T) {
	res := exploreForFailures(func(root *Thread) {
		data := root.NewPlainInit("data", 0)
		f1 := root.NewAtomicInit("f1", 0)
		f2 := root.NewAtomicInit("f2", 0)
		a := root.Spawn("a", func(tt *Thread) {
			data.Store(tt, 1)
			f1.Store(tt, memmodel.Release, 1)
		})
		b := root.Spawn("b", func(tt *Thread) {
			if f1.Load(tt, memmodel.Acquire) == 1 {
				f2.Store(tt, memmodel.Release, 1)
			}
		})
		c := root.Spawn("c", func(tt *Thread) {
			if f2.Load(tt, memmodel.Acquire) == 1 {
				v := data.Load(tt)
				tt.Assert(v == 1, "transitivity broken: %d", v)
			}
		})
		root.Join(a)
		root.Join(b)
		root.Join(c)
	})
	if res.FailureCount != 0 {
		t.Errorf("expected no failures: %v", res.FirstFailure())
	}
}

// TestWRC: write-to-read causality. Even though the middle thread reads
// x relaxed (so no synchronizes-with edge from the writer), C/C++11's
// read-read coherence still forbids the stale outcome: the middle
// thread's read of x happens-before the final read (via the
// release/acquire on y), so the final read may not observe x
// modification-order-backwards ([intro.races]p16).
func TestWRC(t *testing.T) {
	out, _ := exploreOutcomes(t, func(root *Thread, report func(string)) {
		x := root.NewAtomicInit("x", 0)
		y := root.NewAtomicInit("y", 0)
		a := root.Spawn("a", func(tt *Thread) {
			x.Store(tt, memmodel.Relaxed, 1)
		})
		b := root.Spawn("b", func(tt *Thread) {
			if x.Load(tt, memmodel.Relaxed) == 1 {
				y.Store(tt, memmodel.Release, 1)
			}
		})
		c := root.Spawn("c", func(tt *Thread) {
			if y.Load(tt, memmodel.Acquire) == 1 {
				report(fmt.Sprintf("x=%d", x.Load(tt, memmodel.Relaxed)))
			}
		})
		root.Join(a)
		root.Join(b)
		root.Join(c)
	})
	if out["x=0"] != 0 {
		t.Errorf("read-read coherence violated (stale WRC observed): %v", out)
	}
	if out["x=1"] == 0 {
		t.Errorf("missing the coherent outcome: %v", out)
	}
}

// TestWRCCumulative: with an acquire middle read the chain is causal and
// x=0 is forbidden.
func TestWRCCumulative(t *testing.T) {
	out, _ := exploreOutcomes(t, func(root *Thread, report func(string)) {
		x := root.NewAtomicInit("x", 0)
		y := root.NewAtomicInit("y", 0)
		a := root.Spawn("a", func(tt *Thread) {
			x.Store(tt, memmodel.Release, 1)
		})
		b := root.Spawn("b", func(tt *Thread) {
			if x.Load(tt, memmodel.Acquire) == 1 {
				y.Store(tt, memmodel.Release, 1)
			}
		})
		c := root.Spawn("c", func(tt *Thread) {
			if y.Load(tt, memmodel.Acquire) == 1 {
				report(fmt.Sprintf("x=%d", x.Load(tt, memmodel.Relaxed)))
			}
		})
		root.Join(a)
		root.Join(b)
		root.Join(c)
	})
	if out["x=0"] != 0 {
		t.Errorf("cumulative WRC violated: %v", out)
	}
	if out["x=1"] == 0 {
		t.Errorf("missing the causal outcome: %v", out)
	}
}

// --- Release sequences under contention ----------------------------------

// TestReleaseSequenceChainOfRMWs: a chain of relaxed RMWs carries the
// head's release clock arbitrarily far.
func TestReleaseSequenceChainOfRMWs(t *testing.T) {
	res := exploreForFailures(func(root *Thread) {
		data := root.NewPlainInit("data", 0)
		x := root.NewAtomicInit("x", 0)
		w := root.Spawn("w", func(tt *Thread) {
			data.Store(tt, 1)
			x.Store(tt, memmodel.Release, 1)
		})
		m1 := root.Spawn("m1", func(tt *Thread) { x.FetchAdd(tt, memmodel.Relaxed, 1) })
		m2 := root.Spawn("m2", func(tt *Thread) { x.FetchAdd(tt, memmodel.Relaxed, 1) })
		r := root.Spawn("r", func(tt *Thread) {
			if x.Load(tt, memmodel.Acquire) == 3 {
				// Three increments deep, still synchronizes with w.
				v := data.Load(tt)
				tt.Assert(v == 1, "release sequence lost through RMW chain: %d", v)
			}
		})
		root.Join(w)
		root.Join(m1)
		root.Join(m2)
		root.Join(r)
	})
	for _, f := range res.Failures {
		if f.Kind == FailDataRace || f.Kind == FailAssertion {
			t.Fatalf("release sequence chain broken: %v", f)
		}
	}
}

// TestPlainStoreBreaksReleaseSequence: an unrelated plain *atomic* store
// from another thread does NOT continue the release sequence — a reader
// of that store gets no synchronization (C++20 semantics).
func TestPlainStoreBreaksReleaseSequence(t *testing.T) {
	res := Explore(Config{}, func(root *Thread) {
		data := root.NewPlainInit("data", 0)
		x := root.NewAtomicInit("x", 0)
		w := root.Spawn("w", func(tt *Thread) {
			data.Store(tt, 1)
			x.Store(tt, memmodel.Release, 1)
		})
		o := root.Spawn("o", func(tt *Thread) {
			x.Store(tt, memmodel.Relaxed, 2) // plain store: no continuation
		})
		r := root.Spawn("r", func(tt *Thread) {
			if x.Load(tt, memmodel.Acquire) == 2 {
				_ = data.Load(tt) // no hb to w: must race
			}
		})
		root.Join(w)
		root.Join(o)
		root.Join(r)
	})
	if !res.HasKind(FailDataRace) {
		t.Errorf("expected a race: a plain store must not extend the release sequence: %v", res)
	}
}

// --- Documented model limitations (witness tests) -------------------------

// TestLoadBufferingExcluded: the LB outcome (both relaxed loads see the
// other thread's later store) requires reading from a not-yet-executed
// store; our interleaving-based model excludes it (DESIGN.md limitation
// 1). This test pins that behavior so a future change is noticed.
func TestLoadBufferingExcluded(t *testing.T) {
	out, _ := exploreOutcomes(t, func(root *Thread, report func(string)) {
		x := root.NewAtomicInit("x", 0)
		y := root.NewAtomicInit("y", 0)
		var r1, r2 memmodel.Value
		a := root.Spawn("a", func(tt *Thread) {
			r1 = y.Load(tt, memmodel.Relaxed)
			x.Store(tt, memmodel.Relaxed, 1)
		})
		b := root.Spawn("b", func(tt *Thread) {
			r2 = x.Load(tt, memmodel.Relaxed)
			y.Store(tt, memmodel.Relaxed, 1)
		})
		root.Join(a)
		root.Join(b)
		report(fmt.Sprintf("r1=%d r2=%d", r1, r2))
	})
	if out["r1=1 r2=1"] != 0 {
		t.Errorf("model unexpectedly produced the load-buffering outcome: %v", out)
	}
	// One-sided staleness is still available.
	if out["r1=0 r2=0"] == 0 || out["r1=0 r2=1"] == 0 || out["r1=1 r2=0"] == 0 {
		t.Errorf("missing expected outcomes: %v", out)
	}
}

// Test2Plus2WExcluded: the 2+2W anomaly (each location's final value is
// the other thread's first store) requires a modification order
// inconsistent with every interleaving; our model fixes mo to execution
// order (DESIGN.md limitation 2). Pinned here as a witness.
func Test2Plus2WExcluded(t *testing.T) {
	out, _ := exploreOutcomes(t, func(root *Thread, report func(string)) {
		x := root.NewAtomicInit("x", 0)
		y := root.NewAtomicInit("y", 0)
		a := root.Spawn("a", func(tt *Thread) {
			x.Store(tt, memmodel.Relaxed, 1)
			y.Store(tt, memmodel.Relaxed, 2)
		})
		b := root.Spawn("b", func(tt *Thread) {
			y.Store(tt, memmodel.Relaxed, 1)
			x.Store(tt, memmodel.Relaxed, 2)
		})
		root.Join(a)
		root.Join(b)
		report(fmt.Sprintf("x=%d y=%d",
			x.Load(root, memmodel.Relaxed), y.Load(root, memmodel.Relaxed)))
	})
	if out["x=1 y=1"] != 0 {
		t.Errorf("model unexpectedly produced the 2+2W anomaly: %v", out)
	}
}
