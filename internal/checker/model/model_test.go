package model

import (
	"strings"
	"testing"
)

func TestParse(t *testing.T) {
	for _, name := range Names() {
		id, err := Parse(name)
		if err != nil {
			t.Fatalf("Parse(%q): %v", name, err)
		}
		if string(id) != name || !id.Valid() {
			t.Fatalf("Parse(%q) = %q, valid=%v", name, id, id.Valid())
		}
	}
	if id, err := Parse(""); err != nil || id != Default() {
		t.Fatalf("Parse(\"\") = %q, %v; want default %q", id, err, Default())
	}
	if _, err := Parse("tso"); err == nil || !strings.Contains(err.Error(), "c11") {
		t.Fatalf("Parse(\"tso\") = %v; want an error listing valid models", err)
	}
}

func TestOrDefault(t *testing.T) {
	if got := ID("").OrDefault(); got != C11 {
		t.Fatalf("zero OrDefault = %q, want c11", got)
	}
	if got := SC.OrDefault(); got != SC {
		t.Fatalf("SC OrDefault = %q, want sc", got)
	}
}

func TestDefaultIsValid(t *testing.T) {
	if !Default().Valid() {
		t.Fatalf("default model %q not valid", Default())
	}
	if ID("").Valid() {
		t.Fatal("zero ID must not be valid")
	}
}
