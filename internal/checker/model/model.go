// Package model names the consistency models the checker can explore
// under and documents the contract a consistency backend must satisfy.
//
// The checker is parametric in the choice of memory model (the GenMC
// architectural lesson): the rules that decide which stores a load may
// observe, which synchronization edges an access creates, how seq_cst
// ordering constrains visibility, and when two accesses race are owned
// by a per-model backend behind one seam, not welded into the execution
// kernel. This package is the identity layer of that seam — the names
// the CLI, the checkpoint envelopes, and the bench snapshots use — kept
// free of checker internals so every layer above the checker can import
// it without a dependency cycle.
//
// # Backend contract
//
// A backend supplies four rule families (the seam carved out of the
// execution kernel):
//
//   - visible-store computation: for a load by thread t at location l
//     with order o, the lowest modification-order index the load may
//     read ("the floor"; every store at or above it is a reads-from
//     candidate) and whether any readable store is published to t;
//   - synchronization edges: the release clock a new store carries and
//     the clock merge performed when a load reads a store;
//   - SC assignment: which actions join the seq_cst total order S;
//   - race predicate: whether an access by t races with a recorded
//     access (tid, tseq) of the same location.
//
// Every backend must additionally guarantee, for the kernel
// optimizations to stay sound (see DESIGN.md for the full argument):
//
//   - determinism: the floor is a pure function of the execution state
//     at the load, never of the choice taken there (frozen-prefix
//     replay recomputes identical floors, which replay pinning relies
//     on);
//   - monotonicity: a thread's floor for a location never decreases as
//     the execution extends (load compaction discards read-read
//     coherence records dominated under this assumption);
//   - cache contract: a backend either computes floors in O(1) (and
//     bypasses the per-(thread, location) floor cache), or its floors
//     are invalidated exactly by the (clockEpoch, storeEpoch, scIdx)
//     key the cache uses.
package model

import (
	"fmt"
	"strings"
)

// ID names a consistency model. The zero value is not a valid model;
// use Default for the checker's default.
type ID string

const (
	// C11 is the C/C++11 memory model as implemented by CDSChecker:
	// per-location coherence, release/acquire synchronization, release
	// sequences, fences, and the seq_cst total order S — stale reads
	// included, subject to those rules.
	C11 ID = "c11"
	// SC is plain sequential consistency (interleaving semantics):
	// every load reads the newest store, every atomic access carries
	// full synchronization, and no stale-read branching occurs. The
	// exploration space collapses to thread interleavings.
	SC ID = "sc"
	// SCAtomics is the strengthened-SC-atomics model of Batty et al.,
	// "Overhauling SC Atomics in C11 and OpenCL": seq_cst accesses get
	// interleaving semantics (a seq_cst load reads the newest store),
	// layered over the unmodified C/C++11 rules for relaxed, acquire,
	// and release accesses.
	SCAtomics ID = "scatomics"
)

// Default is the model explored when none is configured.
func Default() ID { return C11 }

// ids lists every valid model in presentation order.
var ids = []ID{C11, SC, SCAtomics}

// Names returns every valid model name in presentation order.
func Names() []string {
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = string(id)
	}
	return out
}

// Valid reports whether id names a known model.
func (id ID) Valid() bool {
	for _, k := range ids {
		if id == k {
			return true
		}
	}
	return false
}

// String returns the model name.
func (id ID) String() string { return string(id) }

// Parse resolves a user-supplied model name. The empty string resolves
// to Default, so optional flags and absent JSON fields need no special
// casing at call sites.
func Parse(s string) (ID, error) {
	if s == "" {
		return Default(), nil
	}
	id := ID(s)
	if !id.Valid() {
		return "", fmt.Errorf("unknown memory model %q (valid: %s)", s, strings.Join(Names(), ", "))
	}
	return id, nil
}

// OrDefault maps the zero value to Default and leaves valid IDs alone,
// for fields deserialized from files that predate model identity.
func (id ID) OrDefault() ID {
	if id == "" {
		return Default()
	}
	return id
}
