package checker

import (
	"math"
	"sync/atomic"
	"time"
)

// Progress is a periodic snapshot of a running exploration, delivered to
// Config.Progress every Config.ProgressInterval and once more when the
// exploration finishes (Final set). Long benchmarks are otherwise silent
// for minutes; CDSChecker prints per-execution diagnostics for the same
// reason.
type Progress struct {
	// Executions, Feasible, Pruned and Failures mirror the Result fields
	// for the executions completed so far (across all workers).
	Executions int
	Feasible   int
	Pruned     int
	Failures   int
	// SpecCacheHits mirrors Stats.SpecCacheHits: spec checks answered
	// from the memoization cache so far (zero when caching is off).
	SpecCacheHits int
	// Steals counts frontier tasks taken from another worker's deque so
	// far; Frontier is the current number of outstanding frontier entries
	// (unexplored decision subtrees). Both stay zero outside the
	// work-stealing DFS engine.
	Steals   int
	Frontier int
	// RFEquivPrunes, SymmetryPrunes and SpinloopBounds mirror the
	// execution-equivalence reduction counters in Stats for the work so
	// far, and RFClasses is the live count of distinct execution-graph
	// equivalence classes witnessed (a gauge on the shared registry). All
	// four stay zero when Config.Reduce is unset.
	RFEquivPrunes  int
	SymmetryPrunes int
	SpinloopBounds int
	RFClasses      int
	// Elapsed is the wall clock since the exploration started.
	Elapsed time.Duration
	// ExecsPerSec is the average execution rate so far.
	ExecsPerSec float64
	// ETA estimates the time remaining to reach Config.MaxExecutions
	// (zero when the exploration is unbounded or the rate is unknown).
	// DFS runs may finish earlier by exhausting the space.
	ETA time.Duration
	// Final marks the closing snapshot: its counts equal the returned
	// Result exactly, and it is always delivered, even for explorations
	// shorter than one interval.
	Final bool
}

// progressTracker aggregates per-execution counts from all workers (plain
// atomics, so runOne stays cheap) and drives a ticker goroutine that
// invokes the user callback. The callback itself only ever runs on the
// ticker goroutine or, for the final snapshot, on the Explore caller's
// goroutine after the ticker is stopped — so it needs no locking of its
// own.
type progressTracker struct {
	fn       func(Progress)
	maxExecs int
	start    time.Time

	execs      atomic.Int64
	feasible   atomic.Int64
	pruned     atomic.Int64
	fails      atomic.Int64
	cacheHits  atomic.Int64
	rfPrunes   atomic.Int64
	symPrunes  atomic.Int64
	spinBounds atomic.Int64

	// steals/frontier are gauges owned by the work-stealing engine,
	// attached before its workers start (nil otherwise); classes is the
	// rf seen-set's live class counter, attached when Reduce.RF is on.
	steals   *atomic.Int64
	frontier *atomic.Int64
	classes  *atomic.Int64

	stop chan struct{}
	done chan struct{}
}

// attachEngine points the tracker at the engine's live scheduler gauges.
func (t *progressTracker) attachEngine(steals, frontier *atomic.Int64) {
	t.steals = steals
	t.frontier = frontier
}

// attachClasses points the tracker at the rf seen-set's class counter.
func (t *progressTracker) attachClasses(classes *atomic.Int64) {
	t.classes = classes
}

func newProgressTracker(fn func(Progress), interval time.Duration, maxExecs int) *progressTracker {
	t := &progressTracker{
		fn:       fn,
		maxExecs: maxExecs,
		start:    time.Now(),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go t.loop(interval)
	return t
}

func (t *progressTracker) loop(interval time.Duration) {
	defer close(t.done)
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-t.stop:
			return
		case <-tick.C:
			t.fn(t.snapshot(false))
		}
	}
}

// observe folds one completed execution into the tracker. rfPrune marks
// an execution cut by the rf-equivalence reduction; symPrunes/spinBounds
// are the execution's reduction-counter deltas (zero with Reduce unset).
func (t *progressTracker) observe(feasible, pruned bool, failures, cacheHits int, rfPrune bool, symPrunes, spinBounds int) {
	t.execs.Add(1)
	if feasible {
		t.feasible.Add(1)
	}
	if pruned {
		t.pruned.Add(1)
	}
	if failures > 0 {
		t.fails.Add(int64(failures))
	}
	if cacheHits > 0 {
		t.cacheHits.Add(int64(cacheHits))
	}
	if rfPrune {
		t.rfPrunes.Add(1)
	}
	if symPrunes > 0 {
		t.symPrunes.Add(int64(symPrunes))
	}
	if spinBounds > 0 {
		t.spinBounds.Add(int64(spinBounds))
	}
}

func (t *progressTracker) snapshot(final bool) Progress {
	p := Progress{
		Executions:     int(t.execs.Load()),
		Feasible:       int(t.feasible.Load()),
		Pruned:         int(t.pruned.Load()),
		Failures:       int(t.fails.Load()),
		SpecCacheHits:  int(t.cacheHits.Load()),
		RFEquivPrunes:  int(t.rfPrunes.Load()),
		SymmetryPrunes: int(t.symPrunes.Load()),
		SpinloopBounds: int(t.spinBounds.Load()),
		Elapsed:        time.Since(t.start),
		Final:          final,
	}
	if t.steals != nil {
		p.Steals = int(t.steals.Load())
	}
	if t.frontier != nil {
		p.Frontier = int(t.frontier.Load())
	}
	if t.classes != nil {
		p.RFClasses = int(t.classes.Load())
	}
	if secs := p.Elapsed.Seconds(); secs > 0 {
		p.ExecsPerSec = float64(p.Executions) / secs
	}
	p.ETA = etaFor(p.Executions, t.maxExecs, p.ExecsPerSec)
	return p
}

// etaFor estimates the time remaining to reach maxExecs at the given
// rate, clamped to zero. The clamp matters: on the final snapshot
// Executions can exceed maxExecs (resumed runs start above the bound,
// and in-flight workers land past it), and a snapshot racing the very
// first execution can see a zero or non-finite rate — both previously
// produced negative or NaN ETAs.
func etaFor(executions, maxExecs int, rate float64) time.Duration {
	if maxExecs <= 0 || rate <= 0 || math.IsNaN(rate) || math.IsInf(rate, 0) {
		return 0
	}
	remaining := maxExecs - executions
	if remaining <= 0 {
		return 0
	}
	eta := time.Duration(float64(remaining) / rate * float64(time.Second))
	if eta < 0 {
		return 0
	}
	return eta
}

// close stops the ticker goroutine and delivers the final snapshot from
// the caller's goroutine, after every worker has finished — so the final
// counts match the merged Result exactly.
func (t *progressTracker) close() {
	close(t.stop)
	<-t.done
	t.fn(t.snapshot(true))
}
