package checker

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/checker/model"
	"repro/internal/memmodel"
)

// This file pins the behavioral differences between the three consistency
// backends on the classic litmus shapes: outcomes admitted by the C/C++11
// rules must vanish exactly where interleaving semantics forbid them, and
// the kernel optimizations must stay sound under every backend.

// exploreModelOutcomes is exploreOutcomes with a model selection.
func exploreModelOutcomes(t *testing.T, id model.ID, prog func(root *Thread, report func(string))) (map[string]int, *Result) {
	t.Helper()
	outcomes := map[string]int{}
	var cur []string
	cfg := Config{
		Model:      id,
		OnRunStart: func(sys *System) { cur = nil },
		OnExecution: func(sys *System) []*Failure {
			for _, o := range cur {
				outcomes[o]++
			}
			return nil
		},
	}
	res := Explore(cfg, func(root *Thread) {
		prog(root, func(o string) { cur = append(cur, o) })
	})
	if !res.Exhausted {
		t.Fatalf("model %s: exploration not exhausted: %v", id, res)
	}
	return outcomes, res
}

// storeBuffering is the SB litmus with a selectable order: both threads
// store their own location, then load the other's.
func sbProg(ord memmodel.MemOrder) func(root *Thread, report func(string)) {
	return func(root *Thread, report func(string)) {
		x := root.NewAtomicInit("x", 0)
		y := root.NewAtomicInit("y", 0)
		var r1, r2 memmodel.Value
		a := root.Spawn("a", func(tt *Thread) {
			x.Store(tt, ord, 1)
			r1 = y.Load(tt, ord)
		})
		b := root.Spawn("b", func(tt *Thread) {
			y.Store(tt, ord, 1)
			r2 = x.Load(tt, ord)
		})
		root.Join(a)
		root.Join(b)
		report(fmt.Sprintf("r1=%d r2=%d", r1, r2))
	}
}

// messagePassing is the MP litmus with a selectable flag/payload order.
func mpProg(storeOrd, loadOrd memmodel.MemOrder) func(root *Thread, report func(string)) {
	return func(root *Thread, report func(string)) {
		x := root.NewAtomicInit("x", 0)
		flag := root.NewAtomicInit("flag", 0)
		var f, v memmodel.Value
		w := root.Spawn("writer", func(tt *Thread) {
			x.Store(tt, storeOrd, 42)
			flag.Store(tt, storeOrd, 1)
		})
		r := root.Spawn("reader", func(tt *Thread) {
			f = flag.Load(tt, loadOrd)
			v = x.Load(tt, loadOrd)
		})
		root.Join(w)
		root.Join(r)
		report(fmt.Sprintf("f=%d v=%d", f, v))
	}
}

// iriw is the IRIW litmus with a selectable order: two writers to
// independent locations, two readers that each read both in opposite
// orders. The split outcome (both readers see their first location
// written but the other not yet) requires the writes to propagate in
// different orders to different threads.
func iriwProg(ord memmodel.MemOrder) func(root *Thread, report func(string)) {
	return func(root *Thread, report func(string)) {
		x := root.NewAtomicInit("x", 0)
		y := root.NewAtomicInit("y", 0)
		w1 := root.Spawn("w1", func(tt *Thread) { x.Store(tt, ord, 1) })
		w2 := root.Spawn("w2", func(tt *Thread) { y.Store(tt, ord, 1) })
		var a, b, c, d memmodel.Value
		r1 := root.Spawn("r1", func(tt *Thread) {
			a = x.Load(tt, ord)
			b = y.Load(tt, ord)
		})
		r2 := root.Spawn("r2", func(tt *Thread) {
			c = y.Load(tt, ord)
			d = x.Load(tt, ord)
		})
		root.Join(w1)
		root.Join(w2)
		root.Join(r1)
		root.Join(r2)
		report(fmt.Sprintf("a=%d b=%d c=%d d=%d", a, b, c, d))
	}
}

// TestModelDiffStoreBuffering: the paper-headline diff. Relaxed SB admits
// r1==0 && r2==0 under C/C++11 (each load reads the stale initial store),
// but no interleaving produces it — so the outcome must vanish under sc.
// scatomics leaves relaxed accesses on the C11 rules, so it keeps the
// weak outcome; with seq_cst accesses all three models agree it is gone.
func TestModelDiffStoreBuffering(t *testing.T) {
	const weak = "r1=0 r2=0"
	c11, _ := exploreModelOutcomes(t, model.C11, sbProg(memmodel.Relaxed))
	if c11[weak] == 0 {
		t.Errorf("c11: relaxed SB must admit %q: %v", weak, c11)
	}
	sc, scRes := exploreModelOutcomes(t, model.SC, sbProg(memmodel.Relaxed))
	if sc[weak] != 0 {
		t.Errorf("sc: interleaving semantics must forbid %q: %v", weak, sc)
	}
	for _, o := range []string{"r1=0 r2=1", "r1=1 r2=0", "r1=1 r2=1"} {
		if sc[o] == 0 {
			t.Errorf("sc: interleaving outcome %q missing: %v", o, sc)
		}
	}
	sca, _ := exploreModelOutcomes(t, model.SCAtomics, sbProg(memmodel.Relaxed))
	if sca[weak] == 0 {
		t.Errorf("scatomics: relaxed accesses keep C11 semantics, %q must stay: %v", weak, sca)
	}
	// Under seq_cst accesses the three models coincide on SB.
	c11SC, _ := exploreModelOutcomes(t, model.C11, sbProg(memmodel.SeqCst))
	scaSC, _ := exploreModelOutcomes(t, model.SCAtomics, sbProg(memmodel.SeqCst))
	scSC, _ := exploreModelOutcomes(t, model.SC, sbProg(memmodel.SeqCst))
	for name, out := range map[string]map[string]int{"c11": c11SC, "scatomics": scaSC, "sc": scSC} {
		if out[weak] != 0 {
			t.Errorf("%s: seq_cst SB must forbid %q: %v", name, weak, out)
		}
	}
	// Stale-read branching is what sc removes, so its exploration must be
	// strictly smaller than c11's on the same program.
	c11Res := Explore(Config{}, func(root *Thread) { sbProg(memmodel.Relaxed)(root, func(string) {}) })
	if scRes.Executions >= c11Res.Executions {
		t.Errorf("sc explored %d executions, want fewer than c11's %d", scRes.Executions, c11Res.Executions)
	}
}

// TestModelDiffMessagePassing: relaxed MP can lose the payload under C11
// (f=1 v=0) and under scatomics, never under sc; seq_cst MP never loses
// it anywhere, and under scatomics the seq_cst loads take the
// forced-latest path.
func TestModelDiffMessagePassing(t *testing.T) {
	const lost = "f=1 v=0"
	c11, _ := exploreModelOutcomes(t, model.C11, mpProg(memmodel.Relaxed, memmodel.Relaxed))
	if c11[lost] == 0 {
		t.Errorf("c11: relaxed MP must admit the lost payload: %v", c11)
	}
	sc, _ := exploreModelOutcomes(t, model.SC, mpProg(memmodel.Relaxed, memmodel.Relaxed))
	if sc[lost] != 0 {
		t.Errorf("sc: must not lose the payload: %v", sc)
	}
	if sc["f=1 v=42"] == 0 || sc["f=0 v=0"] == 0 {
		t.Errorf("sc: expected interleaving outcomes missing: %v", sc)
	}
	sca, _ := exploreModelOutcomes(t, model.SCAtomics, mpProg(memmodel.Relaxed, memmodel.Relaxed))
	if sca[lost] == 0 {
		t.Errorf("scatomics: relaxed MP keeps C11 semantics: %v", sca)
	}
	scaSC, _ := exploreModelOutcomes(t, model.SCAtomics, mpProg(memmodel.SeqCst, memmodel.SeqCst))
	if scaSC[lost] != 0 {
		t.Errorf("scatomics: seq_cst MP must not lose the payload: %v", scaSC)
	}
}

// TestModelDiffIRIW: with acquire/release accesses C11 admits the split
// outcome a=1 b=0 c=1 d=0 (writes propagate in different orders to the
// two readers); sc forbids it, and seq_cst accesses forbid it under all
// three models (that is what the S order is for).
func TestModelDiffIRIW(t *testing.T) {
	const split = "a=1 b=0 c=1 d=0"
	// Acquire loads + release stores: IRIW is still weak under C11.
	relProg := func(root *Thread, report func(string)) {
		x := root.NewAtomicInit("x", 0)
		y := root.NewAtomicInit("y", 0)
		w1 := root.Spawn("w1", func(tt *Thread) { x.Store(tt, memmodel.Release, 1) })
		w2 := root.Spawn("w2", func(tt *Thread) { y.Store(tt, memmodel.Release, 1) })
		var a, b, c, d memmodel.Value
		r1 := root.Spawn("r1", func(tt *Thread) {
			a = x.Load(tt, memmodel.Acquire)
			b = y.Load(tt, memmodel.Acquire)
		})
		r2 := root.Spawn("r2", func(tt *Thread) {
			c = y.Load(tt, memmodel.Acquire)
			d = x.Load(tt, memmodel.Acquire)
		})
		root.Join(w1)
		root.Join(w2)
		root.Join(r1)
		root.Join(r2)
		report(fmt.Sprintf("a=%d b=%d c=%d d=%d", a, b, c, d))
	}
	c11, _ := exploreModelOutcomes(t, model.C11, relProg)
	if c11[split] == 0 {
		t.Errorf("c11: acquire/release IRIW must admit the split outcome: %v", c11)
	}
	sc, _ := exploreModelOutcomes(t, model.SC, relProg)
	if sc[split] != 0 {
		t.Errorf("sc: interleaving semantics must forbid the split outcome: %v", sc)
	}
	sca, _ := exploreModelOutcomes(t, model.SCAtomics, relProg)
	if sca[split] == 0 {
		t.Errorf("scatomics: acquire/release IRIW keeps C11 semantics: %v", sca)
	}
	for _, id := range []model.ID{model.C11, model.SC, model.SCAtomics} {
		out, _ := exploreModelOutcomes(t, id, iriwProg(memmodel.SeqCst))
		if out[split] != 0 {
			t.Errorf("%s: seq_cst IRIW must forbid the split outcome: %v", id, out)
		}
	}
}

// TestModelDiffSeededBug: the §6.4.1 seeded-bug shape — a correctly
// structured protocol whose release edge was weakened to relaxed. Under
// C11 and scatomics the missing edge is a real data race on the plain
// payload; under sc every atomic store synchronizes, so the weakened
// program is indistinguishable from the correct one. This is exactly the
// "bug only under relaxed semantics" class modeldiff exists to surface.
func TestModelDiffSeededBug(t *testing.T) {
	seeded := func(root *Thread) {
		p := root.NewPlainInit("p", 0)
		flag := root.NewAtomicInit("flag", 0)
		w := root.Spawn("writer", func(tt *Thread) {
			p.Store(tt, 42)
			flag.Store(tt, memmodel.Relaxed, 1) // seeded: should be Release
		})
		r := root.Spawn("reader", func(tt *Thread) {
			if flag.Load(tt, memmodel.Acquire) == 1 {
				_ = p.Load(tt)
			}
		})
		root.Join(w)
		root.Join(r)
	}
	for _, tc := range []struct {
		id   model.ID
		racy bool
	}{
		{model.C11, true},
		{model.SCAtomics, true},
		{model.SC, false},
	} {
		res := Explore(Config{Model: tc.id}, seeded)
		if !res.Exhausted {
			t.Fatalf("%s: not exhausted: %v", tc.id, res)
		}
		if got := res.HasKind(FailDataRace); got != tc.racy {
			t.Errorf("%s: data race detected = %v, want %v (failures: %v)", tc.id, got, tc.racy, res.Failures)
		}
	}
}

// TestModelFloorCacheSoundness extends TestLoadCompactionSoundness across
// backends (the satellite-3 contract): for every model, exploration with
// the floor cache, load compaction, pooling, and replay pinning enabled
// must be bit-identical to the ablated run, and a DebugReplayCheck run —
// which recomputes every pinned floor through the backend's scanFloor —
// must agree and not panic. sc and scatomics take the forced-latest O(1)
// path (bypassing the cache) on exactly the accesses where their floors
// diverge from C11's, so the cached entries they do share with C11 are
// invalidated by the same (clockEpoch, storeEpoch, scIdx) key.
func TestModelFloorCacheSoundness(t *testing.T) {
	for _, id := range []model.ID{model.C11, model.SC, model.SCAtomics} {
		id := id
		for _, p := range kernelProgs {
			p := p
			t.Run(string(id)+"/"+p.name, func(t *testing.T) {
				withModel := func(c Config) Config { c.Model = id; return c }
				base, baseOut := runKernelProg(t, withModel(Config{}), p)
				for _, v := range []struct {
					name string
					cfg  Config
				}{
					{"opts-off", withModel(kernelOptsOff())},
					{"floor-cache-off", withModel(Config{DisableFloorCache: true})},
					{"compact-2", withModel(Config{compactThreshold: 2})},
					{"replay-check", withModel(Config{DebugReplayCheck: true})},
					{"par4", withModel(Config{Parallelism: 4})},
				} {
					got, gotOut := runKernelProg(t, v.cfg, p)
					if !reflect.DeepEqual(base, got) {
						t.Errorf("%s: Result differs from default run:\n default: %+v\n %s: %+v",
							v.name, base, v.name, got)
					}
					if v.cfg.Parallelism <= 1 && !reflect.DeepEqual(baseOut, gotOut) {
						t.Errorf("%s: outcome sets differ:\n default: %v\n %s: %v",
							v.name, baseOut, v.name, gotOut)
					}
				}
			})
		}
	}
}

// TestModelScanAgreesWithCachedFloor cross-checks, per backend, the
// cached hot path against the uncached scan at every load — by driving a
// full exploration with DebugReplayCheck (validatePin panics on any
// cached-vs-scanned divergence during replay) and by comparing the
// outcome sets of cached and uncached runs.
func TestModelScanAgreesWithCachedFloor(t *testing.T) {
	for _, id := range []model.ID{model.C11, model.SC, model.SCAtomics} {
		id := id
		t.Run(string(id), func(t *testing.T) {
			prog := kernelProgs[5] // load-history: the floor-heaviest program
			cached, cachedOut := runKernelProg(t, Config{Model: id, DebugReplayCheck: true}, prog)
			scanned, scannedOut := runKernelProg(t, Config{Model: id, DisableFloorCache: true, DebugReplayCheck: true}, prog)
			if !reflect.DeepEqual(cached, scanned) {
				t.Errorf("cached vs scanned Result differ:\n cached:  %+v\n scanned: %+v", cached, scanned)
			}
			if !reflect.DeepEqual(cachedOut, scannedOut) {
				t.Errorf("cached vs scanned outcomes differ:\n cached:  %v\n scanned: %v", cachedOut, scannedOut)
			}
		})
	}
}

// TestModelEnginesAgree: RandomWalk and FastMode runs under sc/scatomics
// must be feasible and respect the model (no run of a relaxed SB walk may
// report the weak outcome under sc) — the backends are engine-independent.
func TestModelEnginesAgree(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"random-walk", Config{Model: model.SC, RandomWalk: 200, Seed: 11}},
		{"fast-mode", Config{Model: model.SC, FastMode: true, MaxExecutions: 200, Seed: 11}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			weak := 0
			cfg := tc.cfg
			prog := sbProg(memmodel.Relaxed)
			res := Explore(cfg, func(root *Thread) {
				prog(root, func(o string) {
					if o == "r1=0 r2=0" {
						weak++
					}
				})
			})
			if res.Executions == 0 {
				t.Fatalf("no executions ran: %v", res)
			}
			if weak != 0 {
				t.Errorf("sc %s reported the weak SB outcome %d times", tc.name, weak)
			}
		})
	}
}
