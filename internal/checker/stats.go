package checker

import "time"

// Stats breaks down where an exploration's executions and time went, the
// observability layer behind the paper's Figure 7 "seconds per benchmark"
// claim: without it a partial-order-reduction regression is
// indistinguishable from a spec-checking slowdown. All counters are
// bit-identical between an exhaustive sequential run and an exhaustive
// parallel run (the merge sums them in branch order); only the timing
// fields differ, since parallel workers accumulate wall clock
// concurrently. (One exception: with Reduce.RF enabled at Parallelism > 1
// the prune/execution split depends on which racing worker registers a
// state first — the behavior set and RFClasses stay invariant, the
// counters do not.)
type Stats struct {
	// Prune-reason split of Result.Pruned; together with RFEquivPrunes
	// below, the reasons always sum to it.
	//
	// PrunedSleepSet counts interleavings abandoned because every enabled
	// thread was asleep (the sleep-set reduction proved the suffix
	// redundant). PrunedFairness counts executions stuck with a spinner
	// that ignored a newer store (CDSChecker's fairness assumption).
	// PrunedStepBound counts executions that exceeded Config.MaxSteps.
	PrunedSleepSet  int `json:"pruned_sleep_set"`
	PrunedFairness  int `json:"pruned_fairness"`
	PrunedStepBound int `json:"pruned_step_bound"`

	// Execution-equivalence reduction counters (Config.Reduce; reduce.go).
	//
	// RFEquivPrunes counts subtrees cut because the branch-point state was
	// already registered by an equal-fingerprint visit (Reduce.RF) — part
	// of the Result.Pruned split. RFClasses is the number of distinct
	// execution-graph equivalence classes among the feasible executions;
	// it is deterministic at any Parallelism (every class is witnessed at
	// least once and counted once), unlike the prune counters, whose split
	// under parallel RF depends on which racing worker registers a state
	// first. SymmetryPrunes counts scheduling candidates dropped because a
	// lower-id never-started twin covers them (Reduce.Symmetry).
	// SpinloopBounds counts spin-iteration branches removed — futile
	// spinners excluded from scheduling plus stale re-reads floored past
	// the previous iteration's store (Reduce.Spinloop).
	RFEquivPrunes  int `json:"rf_equiv_prunes,omitempty"`
	RFClasses      int `json:"rf_classes,omitempty"`
	SymmetryPrunes int `json:"symmetry_prunes,omitempty"`
	SpinloopBounds int `json:"spinloop_bounds,omitempty"`

	// RFBranchPoints counts value-nondeterminism decision nodes opened by
	// the explorer (reads-from choices and CAS outcomes with more than
	// one alternative) — the real cost driver of weak-memory checking.
	// ScheduleBranchPoints counts scheduling decision nodes (more than
	// one runnable candidate, plus last-resort spinner wakes).
	RFBranchPoints       int `json:"rf_branch_points"`
	ScheduleBranchPoints int `json:"schedule_branch_points"`
	// ReplayedDecisions counts decisions re-driven from a recorded prefix
	// while backtracking (the stateless-replay overhead).
	ReplayedDecisions int `json:"replayed_decisions"`
	// MaxDecisionDepth is the deepest decision stack seen.
	MaxDecisionDepth int `json:"max_decision_depth"`
	// TotalSteps is the number of visible operations executed across all
	// executions (including pruned ones).
	TotalSteps int `json:"total_steps"`

	// Spec-checking counters, reported by the core layer through
	// System.ReportSpecStats from the OnExecution hook.
	//
	// Histories is the number of sequential histories enumerated and
	// replayed; HistoriesCapped counts executions whose enumeration was
	// truncated by Spec.MaxHistories before the space was exhausted.
	Histories       int `json:"histories"`
	HistoriesCapped int `json:"histories_capped"`
	// AdmissibilityChecks counts admissibility rule-pair evaluations.
	AdmissibilityChecks int `json:"admissibility_checks"`
	// JustifySearches counts justifying-subhistory searches (one per call
	// whose non-deterministic behavior needed justification).
	JustifySearches int `json:"justify_searches"`

	// Spec-check memoization counters. The spec layer caches the full
	// check result keyed by a canonical fingerprint of each execution's
	// spec-relevant content, so equivalent executions cost one lookup.
	// Caches are per exploration shard (Config.NewScratch): sequential
	// DFS opens one shard per root-decision branch — exactly the subtree
	// a parallel DFS task owns — so on exhaustive runs the branch-order
	// merge makes all three counters bit-identical between sequential and
	// parallel exploration, like every other non-timing field.
	//
	// SpecCacheHits counts feasible executions answered from the cache;
	// SpecCacheMisses counts executions that ran the full check;
	// SpecCacheEntries counts distinct fingerprints inserted (summed over
	// shards). Hits + Misses equals the feasible executions that reached
	// the spec checker with caching enabled, and all three stay zero when
	// the cache is disabled (Spec.DisableCheckCache).
	//
	// One caveat: checkpoints serialize the decision frontier, not the
	// cache contents, so a resumed run starts its caches cold and a
	// fingerprint first seen before the cut misses again after it. Across
	// a resume boundary Hits+Misses is still exact, but the hit/miss
	// split (and Entries) can shift toward misses; resume verification
	// compares the total, not the split.
	SpecCacheHits    int `json:"spec_cache_hits"`
	SpecCacheMisses  int `json:"spec_cache_misses"`
	SpecCacheEntries int `json:"spec_cache_entries"`

	// Phase-timing split: wall clock spent running executions vs checking
	// feasible executions against the specification. Parallel workers
	// accumulate concurrently, so the sums may exceed Result.Elapsed; both
	// fields are exempt from parallel-vs-sequential bit-identity.
	ExploreTime time.Duration `json:"explore_ns"`
	SpecTime    time.Duration `json:"spec_ns"`

	// Work-stealing scheduler telemetry. Unlike every other counter these
	// describe how the frontier happened to be carved across workers —
	// schedule-dependent by nature — so, like the timings, they are
	// exempt from sequential/parallel bit-identity and zeroed by
	// WithoutTimings. Steals counts frontier tasks taken from another
	// worker's deque; MaxFrontier is the high-water mark of outstanding
	// frontier entries; WorkerBusy sums the wall clock workers spent
	// inside executions (vs stealing or parked) — the numerator of the
	// kernel-bench busy-fraction column. All three survive
	// checkpoint/resume boundaries and stay zero outside the
	// work-stealing engine.
	Steals      int           `json:"steals"`
	MaxFrontier int           `json:"max_frontier"`
	WorkerBusy  time.Duration `json:"worker_busy_ns"`

	// Fast-mode telemetry (Config.FastMode).
	//
	// StoreBufferEvictions counts stores evicted from bounded per-location
	// store buffers — the knob-visible cost of the O(live state) memory
	// bound. It is a deterministic function of the run set (summed by
	// Merge, kept by WithoutTimings), so the parallel bit-identity tests
	// cover it like any other counter.
	StoreBufferEvictions int `json:"store_buffer_evictions,omitempty"`
	// RunsPerSec is Executions / Elapsed, computed once by exploreFast
	// after the worker merge. Timing-class: not summed by Merge, zeroed by
	// WithoutTimings.
	RunsPerSec float64 `json:"runs_per_sec,omitempty"`
}

// Merge folds o into s: counters add, depths max, timings add. The
// parallel explorer merges worker stats with it, and the harness uses it
// to aggregate stats across independent runs (e.g. Figure 8 trials).
func (s *Stats) Merge(o *Stats) {
	s.PrunedSleepSet += o.PrunedSleepSet
	s.PrunedFairness += o.PrunedFairness
	s.PrunedStepBound += o.PrunedStepBound
	s.RFEquivPrunes += o.RFEquivPrunes
	if o.RFClasses > s.RFClasses {
		// A live class-count snapshot is monotone, not additive: every
		// worker reads the same shared registry.
		s.RFClasses = o.RFClasses
	}
	s.SymmetryPrunes += o.SymmetryPrunes
	s.SpinloopBounds += o.SpinloopBounds
	s.RFBranchPoints += o.RFBranchPoints
	s.ScheduleBranchPoints += o.ScheduleBranchPoints
	s.ReplayedDecisions += o.ReplayedDecisions
	if o.MaxDecisionDepth > s.MaxDecisionDepth {
		s.MaxDecisionDepth = o.MaxDecisionDepth
	}
	s.TotalSteps += o.TotalSteps
	s.Histories += o.Histories
	s.HistoriesCapped += o.HistoriesCapped
	s.AdmissibilityChecks += o.AdmissibilityChecks
	s.JustifySearches += o.JustifySearches
	s.SpecCacheHits += o.SpecCacheHits
	s.SpecCacheMisses += o.SpecCacheMisses
	s.SpecCacheEntries += o.SpecCacheEntries
	s.ExploreTime += o.ExploreTime
	s.SpecTime += o.SpecTime
	s.Steals += o.Steals
	if o.MaxFrontier > s.MaxFrontier {
		s.MaxFrontier = o.MaxFrontier
	}
	s.WorkerBusy += o.WorkerBusy
	s.StoreBufferEvictions += o.StoreBufferEvictions
}

// WithoutTimings returns a copy with the wall-clock and scheduler-
// telemetry fields zeroed — the form the parallel determinism tests
// compare, since timing and scheduling are the only parts of Stats
// allowed to differ between an exhaustive parallel run and its
// sequential equivalent.
func (s Stats) WithoutTimings() Stats {
	s.ExploreTime, s.SpecTime = 0, 0
	s.Steals, s.MaxFrontier, s.WorkerBusy = 0, 0, 0
	s.RunsPerSec = 0
	return s
}
