package checker

import (
	"fmt"
	"sort"
	"sync"
	"testing"

	"repro/internal/memmodel"
)

// --- Fence dependence (sleep-set soundness) --------------------------

// TestFenceDependence pins the dependency relation for fences. wake()
// calls dependent(sleeper, executed): a thread sleeping at a fence must
// be woken by every other fence and every seq_cst memory operation (the
// operations a fence observes across threads), so it can never be
// starved by the sleep set. The old relation classified sigFence as
// independent of everything except an sc×sc pair, so these assertions
// fail against it.
func TestFenceDependence(t *testing.T) {
	fence := pendSig{class: sigFence, loc: -1}
	scFence := pendSig{class: sigFence, loc: -1, sc: true}
	mem := pendSig{class: sigMem, loc: 0, write: true}
	scMem := pendSig{class: sigMem, loc: 0, write: true, sc: true}
	mutex := pendSig{class: sigMutex, loc: 0}

	if !dependent(fence, scMem) {
		t.Error("a fence-pending sleeper must be woken by seq_cst memory operations")
	}
	if !dependent(fence, fence) || !dependent(fence, scFence) || !dependent(scFence, fence) {
		t.Error("a fence-pending sleeper must be woken by other fences")
	}
	if !dependent(scMem, scFence) || !dependent(scFence, scMem) {
		t.Error("sc×sc must stay dependent")
	}
	if dependent(fence, mutex) {
		t.Error("fence commutes with pure mutex transitions")
	}
	// The precise directions: a fence's release/acquire effects are
	// local to its own thread and reach other threads only through that
	// thread's stores and loads, which mem×mem dependence already
	// re-interleaves.
	if dependent(fence, mem) {
		t.Error("a fence-pending sleeper need not wake for non-SC memory operations")
	}
	if dependent(mem, fence) {
		t.Error("an executed plain fence need not wake a memory sleeper")
	}
}

// fenceMPOutcomes explores the fence-synchronized message-passing litmus
// (store x; release fence; store flag ∥ load flag; acquire fence; load x)
// and returns its outcome set.
func fenceMPOutcomes(t *testing.T, disableSleep bool) map[string]int {
	t.Helper()
	var mu sync.Mutex
	outcomes := map[string]int{}
	cfg := Config{
		DisableSleepSet: disableSleep,
	}
	res := Explore(cfg, func(root *Thread) {
		x := root.NewAtomicInit("x", 0)
		flag := root.NewAtomicInit("flag", 0)
		w := root.Spawn("writer", func(tt *Thread) {
			x.Store(tt, memmodel.Relaxed, 42)
			Fence(tt, memmodel.Release)
			flag.Store(tt, memmodel.Relaxed, 1)
		})
		r := root.Spawn("reader", func(tt *Thread) {
			f := flag.Load(tt, memmodel.Relaxed)
			Fence(tt, memmodel.Acquire)
			v := x.Load(tt, memmodel.Relaxed)
			mu.Lock()
			outcomes[fmt.Sprintf("f=%d v=%d", f, v)]++
			mu.Unlock()
		})
		root.Join(w)
		root.Join(r)
	})
	if !res.Exhausted {
		t.Fatalf("exploration not exhausted: %v", res)
	}
	if res.FailureCount != 0 {
		t.Fatalf("unexpected failures: %v", res)
	}
	return outcomes
}

// TestFenceSleepSetSoundness compares the outcome set of the fence MP
// litmus with the sleep-set reduction on vs off: the reduction may dedupe
// equivalent interleavings but must not lose outcomes.
func TestFenceSleepSetSoundness(t *testing.T) {
	keys := func(m map[string]int) []string {
		var ks []string
		for k := range m {
			ks = append(ks, k)
		}
		sort.Strings(ks)
		return ks
	}
	reduced := keys(fenceMPOutcomes(t, false))
	full := keys(fenceMPOutcomes(t, true))
	if fmt.Sprint(reduced) != fmt.Sprint(full) {
		t.Errorf("sleep set changed the outcome set:\n  reduced: %v\n  full:    %v", reduced, full)
	}
	for _, o := range reduced {
		if o == "f=1 v=0" {
			t.Errorf("fence synchronization violated: saw %q", o)
		}
	}
	if !contains2(reduced, "f=1 v=42") || !contains2(reduced, "f=0 v=0") {
		t.Errorf("expected both f=1 v=42 and f=0 v=0 outcomes: %v", reduced)
	}
}

func contains2(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// TestSCFenceSleepSetSoundness runs store buffering with seq_cst fences
// (the classic Dekker pattern: the fences forbid r0=r1=0) with the
// reduction on vs off, checking outcome-set equality and the forbidden
// outcome's absence. This exercises the fence×SC and fence×fence wake
// rules end to end.
func TestSCFenceSleepSetSoundness(t *testing.T) {
	run := func(disableSleep bool) []string {
		var mu sync.Mutex
		outcomes := map[string]bool{}
		res := Explore(Config{DisableSleepSet: disableSleep}, func(root *Thread) {
			x := root.NewAtomicInit("x", 0)
			y := root.NewAtomicInit("y", 0)
			var r0, r1 int64
			a := root.Spawn("a", func(tt *Thread) {
				x.Store(tt, memmodel.Relaxed, 1)
				Fence(tt, memmodel.SeqCst)
				r0 = int64(y.Load(tt, memmodel.Relaxed))
			})
			b := root.Spawn("b", func(tt *Thread) {
				y.Store(tt, memmodel.Relaxed, 1)
				Fence(tt, memmodel.SeqCst)
				r1 = int64(x.Load(tt, memmodel.Relaxed))
			})
			root.Join(a)
			root.Join(b)
			mu.Lock()
			outcomes[fmt.Sprintf("r0=%d r1=%d", r0, r1)] = true
			mu.Unlock()
		})
		if !res.Exhausted {
			t.Fatalf("exploration not exhausted: %v", res)
		}
		var ks []string
		for k := range outcomes {
			ks = append(ks, k)
		}
		sort.Strings(ks)
		return ks
	}
	reduced := run(false)
	full := run(true)
	if fmt.Sprint(reduced) != fmt.Sprint(full) {
		t.Errorf("sleep set changed the outcome set:\n  reduced: %v\n  full:    %v", reduced, full)
	}
	if contains2(reduced, "r0=0 r1=0") {
		t.Errorf("seq_cst fences must forbid r0=r1=0: %v", reduced)
	}
	if !contains2(reduced, "r0=1 r1=1") || !contains2(reduced, "r0=0 r1=1") || !contains2(reduced, "r0=1 r1=0") {
		t.Errorf("missing an allowed outcome: %v", reduced)
	}
}

// --- MaxExecutions ----------------------------------------------------

func manyExecProgram(root *Thread) {
	x := root.NewAtomicInit("x", 0)
	y := root.NewAtomicInit("y", 0)
	a := root.Spawn("a", func(tt *Thread) {
		x.Store(tt, memmodel.Relaxed, 1)
		_ = y.Load(tt, memmodel.Relaxed)
	})
	b := root.Spawn("b", func(tt *Thread) {
		y.Store(tt, memmodel.Relaxed, 1)
		_ = x.Load(tt, memmodel.Relaxed)
	})
	root.Join(a)
	root.Join(b)
}

// TestRandomWalkHonorsMaxExecutions: the walk budget is min(RandomWalk,
// MaxExecutions). The old loop ignored MaxExecutions entirely.
func TestRandomWalkHonorsMaxExecutions(t *testing.T) {
	res := Explore(Config{RandomWalk: 100, MaxExecutions: 7, Seed: 1}, manyExecProgram)
	if res.Executions != 7 {
		t.Errorf("random walk ran %d executions, want 7", res.Executions)
	}
	res = Explore(Config{RandomWalk: 5, MaxExecutions: 100, Seed: 1}, manyExecProgram)
	if res.Executions != 5 {
		t.Errorf("random walk ran %d executions, want 5", res.Executions)
	}
}

// TestDFSHonorsMaxExecutions: DFS stops exactly at the bound, sequential
// and parallel alike.
func TestDFSHonorsMaxExecutions(t *testing.T) {
	full := Explore(Config{}, manyExecProgram)
	if full.Executions <= 5 {
		t.Fatalf("program too small for the bound test: %v", full)
	}
	for _, par := range []int{1, 4} {
		res := Explore(Config{MaxExecutions: 5, Parallelism: par}, manyExecProgram)
		if res.Executions != 5 {
			t.Errorf("parallelism %d: ran %d executions, want 5", par, res.Executions)
		}
		if res.Exhausted {
			t.Errorf("parallelism %d: bounded run must not report Exhausted", par)
		}
	}
}

// --- Deadlock vs livelock classification ------------------------------

// TestDeadlockWithFairSpinner: a lock-cycle deadlock must be reported as
// a deadlock even when an unrelated fair spinner is stuck alongside it.
// The old classifier reported livelock whenever any fair spinner existed.
func TestDeadlockWithFairSpinner(t *testing.T) {
	res := Explore(Config{MaxFailures: 1 << 20}, func(root *Thread) {
		m1 := root.NewMutex("m1")
		m2 := root.NewMutex("m2")
		x := root.NewAtomicInit("x", 0)
		a := root.Spawn("a", func(tt *Thread) {
			m1.Lock(tt)
			m2.Lock(tt)
			m2.Unlock(tt)
			m1.Unlock(tt)
		})
		b := root.Spawn("b", func(tt *Thread) {
			m2.Lock(tt)
			m1.Lock(tt)
			m1.Unlock(tt)
			m2.Unlock(tt)
		})
		sp := root.Spawn("spin", func(tt *Thread) {
			for x.Load(tt, memmodel.Acquire) == 0 {
				tt.Yield()
			}
		})
		root.Join(a)
		root.Join(b)
		root.Join(sp)
	})
	if !res.HasKind(FailDeadlock) {
		t.Errorf("expected a deadlock report despite the fair spinner: %v", res)
	}
}

// TestLivelockWithJoiningParent: a parent joining a livelocked spinner is
// a casualty of the livelock, not an independent deadlock.
func TestLivelockWithJoiningParent(t *testing.T) {
	res := Explore(Config{}, func(root *Thread) {
		x := root.NewAtomicInit("x", 0)
		a := root.Spawn("a", func(tt *Thread) {
			for x.Load(tt, memmodel.Acquire) == 0 {
				tt.Yield()
			}
		})
		root.Join(a)
	})
	if !res.HasKind(FailLivelock) || res.HasKind(FailDeadlock) {
		t.Errorf("expected livelock only: %v", res)
	}
}

// --- Parallel determinism ---------------------------------------------

// compareParallel runs prog exhaustively with Parallelism 1 and n and
// requires identical Executions/Feasible/Pruned/Exhausted, identical
// retained failures (kind and execution index), and bit-identical Stats —
// with only the wall-clock fields (Elapsed and the Stats timing split)
// exempt from identity, since parallel workers accumulate those
// concurrently.
func compareParallel(t *testing.T, name string, n int, cfg Config, prog func(*Thread)) {
	t.Helper()
	seq := Explore(cfg, prog)
	pcfg := cfg
	pcfg.Parallelism = n
	par := Explore(pcfg, prog)
	if seq.Executions != par.Executions || seq.Feasible != par.Feasible ||
		seq.Pruned != par.Pruned || seq.Exhausted != par.Exhausted {
		t.Errorf("%s: counts differ: sequential %v, parallel(%d) %v", name, seq, n, par)
	}
	if seq.Stats.WithoutTimings() != par.Stats.WithoutTimings() {
		t.Errorf("%s: stats differ:\n  sequential: %+v\n  parallel(%d): %+v",
			name, seq.Stats.WithoutTimings(), n, par.Stats.WithoutTimings())
	}
	for _, r := range []*Result{seq, par} {
		if got := r.Stats.PrunedSleepSet + r.Stats.PrunedFairness + r.Stats.PrunedStepBound; got != r.Pruned {
			t.Errorf("%s: prune-reason split %d does not sum to Pruned %d", name, got, r.Pruned)
		}
	}
	// The timing exemption: both runs still measure real wall clock.
	if seq.Elapsed <= 0 || par.Elapsed <= 0 || seq.Stats.ExploreTime <= 0 || par.Stats.ExploreTime <= 0 {
		t.Errorf("%s: timing fields should be positive: seq %v/%v, par %v/%v",
			name, seq.Elapsed, seq.Stats.ExploreTime, par.Elapsed, par.Stats.ExploreTime)
	}
	if seq.FailureCount != par.FailureCount || len(seq.Failures) != len(par.Failures) {
		t.Errorf("%s: failure counts differ: sequential %v, parallel(%d) %v", name, seq, n, par)
		return
	}
	for i := range seq.Failures {
		sf, pf := seq.Failures[i], par.Failures[i]
		if sf.Kind != pf.Kind || sf.Execution != pf.Execution {
			t.Errorf("%s: failure %d differs: sequential %v@%d, parallel %v@%d",
				name, i, sf.Kind, sf.Execution, pf.Kind, pf.Execution)
		}
	}
}

func TestParallelDFSDeterminism(t *testing.T) {
	// Store buffering: pure scheduling + reads-from nondeterminism, no
	// failures.
	compareParallel(t, "store-buffering", 4, Config{}, manyExecProgram)

	// Message passing with a racy plain payload: data-race failures must
	// appear at identical execution indices.
	compareParallel(t, "mp-race", 4, Config{}, func(root *Thread) {
		x := root.NewPlainInit("x", 0)
		flag := root.NewAtomicInit("flag", 0)
		w := root.Spawn("writer", func(tt *Thread) {
			x.Store(tt, 42)
			flag.Store(tt, memmodel.Relaxed, 1)
		})
		r := root.Spawn("reader", func(tt *Thread) {
			if flag.Load(tt, memmodel.Relaxed) == 1 {
				_ = x.Load(tt)
			}
		})
		root.Join(w)
		root.Join(r)
	})

	// Fence-synchronized MP with seq_cst stores mixed in: exercises the
	// fence dependence path and SC ordering under the sleep set.
	compareParallel(t, "fence-mp-sc", 3, Config{}, func(root *Thread) {
		x := root.NewAtomicInit("x", 0)
		y := root.NewAtomicInit("y", 0)
		a := root.Spawn("a", func(tt *Thread) {
			x.Store(tt, memmodel.Relaxed, 1)
			Fence(tt, memmodel.SeqCst)
			_ = y.Load(tt, memmodel.Relaxed)
		})
		b := root.Spawn("b", func(tt *Thread) {
			y.Store(tt, memmodel.SeqCst, 1)
			Fence(tt, memmodel.SeqCst)
			_ = x.Load(tt, memmodel.Acquire)
		})
		root.Join(a)
		root.Join(b)
	})

	// Lock-cycle deadlock: failure kinds and indices must merge in
	// branch order.
	compareParallel(t, "deadlock", 4, Config{MaxFailures: 1 << 20}, func(root *Thread) {
		m1 := root.NewMutex("m1")
		m2 := root.NewMutex("m2")
		a := root.Spawn("a", func(tt *Thread) {
			m1.Lock(tt)
			m2.Lock(tt)
			m2.Unlock(tt)
			m1.Unlock(tt)
		})
		b := root.Spawn("b", func(tt *Thread) {
			m2.Lock(tt)
			m1.Lock(tt)
			m1.Unlock(tt)
			m2.Unlock(tt)
		})
		root.Join(a)
		root.Join(b)
	})
}

// TestParallelOutcomeSets: outcome sets recorded through a concurrency-
// safe OnExecution hook match between sequential and parallel runs.
func TestParallelOutcomeSets(t *testing.T) {
	run := func(parallelism int) []string {
		var mu sync.Mutex
		outcomes := map[string]bool{}
		res := Explore(Config{Parallelism: parallelism}, func(root *Thread) {
			x := root.NewAtomicInit("x", 0)
			y := root.NewAtomicInit("y", 0)
			var r0, r1 int64
			a := root.Spawn("a", func(tt *Thread) {
				x.Store(tt, memmodel.Relaxed, 1)
				r0 = int64(y.Load(tt, memmodel.Relaxed))
			})
			b := root.Spawn("b", func(tt *Thread) {
				y.Store(tt, memmodel.Relaxed, 1)
				r1 = int64(x.Load(tt, memmodel.Relaxed))
			})
			root.Join(a)
			root.Join(b)
			mu.Lock()
			outcomes[fmt.Sprintf("r0=%d r1=%d", r0, r1)] = true
			mu.Unlock()
		})
		if !res.Exhausted {
			t.Fatalf("not exhausted: %v", res)
		}
		var ks []string
		for k := range outcomes {
			ks = append(ks, k)
		}
		sort.Strings(ks)
		return ks
	}
	seq := run(1)
	par := run(4)
	if fmt.Sprint(seq) != fmt.Sprint(par) {
		t.Errorf("outcome sets differ:\n  sequential: %v\n  parallel:   %v", seq, par)
	}
	if !contains2(seq, "r0=0 r1=0") {
		t.Errorf("store buffering outcome missing (relaxed atomics admit it): %v", seq)
	}
}

// TestParallelRandomWalk: the sharded walk runs exactly the budgeted
// number of executions.
func TestParallelRandomWalk(t *testing.T) {
	res := Explore(Config{RandomWalk: 200, Seed: 42, Parallelism: 4}, manyExecProgram)
	if res.Executions != 200 {
		t.Errorf("parallel random walk ran %d executions, want 200", res.Executions)
	}
	res = Explore(Config{RandomWalk: 200, MaxExecutions: 50, Seed: 42, Parallelism: 4}, manyExecProgram)
	if res.Executions != 50 {
		t.Errorf("bounded parallel random walk ran %d executions, want 50", res.Executions)
	}
	// More workers than walks must not deadlock or overrun.
	res = Explore(Config{RandomWalk: 3, Seed: 7, Parallelism: 16}, manyExecProgram)
	if res.Executions != 3 {
		t.Errorf("oversubscribed parallel random walk ran %d executions, want 3", res.Executions)
	}
}

// TestParallelStopAtFirst: a parallel run with StopAtFirst reports at
// least one failure and stops early.
func TestParallelStopAtFirst(t *testing.T) {
	res := Explore(Config{StopAtFirst: true, Parallelism: 4}, deadlockProg)
	if res.FailureCount == 0 {
		t.Fatalf("expected a failure: %v", res)
	}
	if res.Exhausted {
		t.Errorf("StopAtFirst run must not report Exhausted: %v", res)
	}
}

func deadlockProg(root *Thread) {
	m1 := root.NewMutex("m1")
	m2 := root.NewMutex("m2")
	a := root.Spawn("a", func(tt *Thread) {
		m1.Lock(tt)
		m2.Lock(tt)
		m2.Unlock(tt)
		m1.Unlock(tt)
	})
	b := root.Spawn("b", func(tt *Thread) {
		m2.Lock(tt)
		m1.Lock(tt)
		m1.Unlock(tt)
		m2.Unlock(tt)
	})
	root.Join(a)
	root.Join(b)
}

// TestParallelSingleExecution: a deterministic program (no decision
// points) explores exactly once and reports exhaustion.
func TestParallelSingleExecution(t *testing.T) {
	res := Explore(Config{Parallelism: 8}, func(root *Thread) {
		x := root.NewAtomicInit("x", 0)
		x.Store(root, memmodel.Relaxed, 1)
	})
	if res.Executions != 1 || !res.Exhausted {
		t.Errorf("want 1 exhausted execution: %v", res)
	}
}
