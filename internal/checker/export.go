package checker

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"repro/internal/memmodel"
)

// ExportDOT renders the execution's action graph in Graphviz DOT format,
// the diagnostic view CDSChecker prints for buggy executions: one column
// per thread (sequenced-before edges) plus the cross-thread relations of
// the C/C++11 model.
//
// Edge legend:
//
//	dotted black, no arrowhead — sb (sequenced-before, per-thread order)
//	red "rf"                   — reads-from (store to the load observing it)
//	blue "mo"                  — modification order (consecutive stores of
//	                             one atomic location)
//	darkgreen bold "sw"        — synchronizes-with (release store or
//	                             release sequence read by an acquire load)
//	gray dashed "sc"           — consecutive seq_cst pairs involving a
//	                             fence (the fence's position in the total
//	                             order S)
//
// When the execution failed, the action the failure was detected at is
// drawn filled red.
func ExportDOT(sys *System) string {
	var b strings.Builder
	b.WriteString("digraph execution {\n")
	b.WriteString("  // edges: sb dotted; rf red; mo blue; sw green bold; sc(fence) gray dashed\n")
	b.WriteString("  rankdir=TB;\n  node [shape=box, fontsize=10];\n")

	failAction := -1
	if f := sys.Failure(); f != nil && f.ActionID > 0 {
		failAction = f.ActionID
	}

	byThread := map[int][]*memmodel.Action{}
	maxTid := 0
	for _, a := range sys.Actions() {
		byThread[a.Thread] = append(byThread[a.Thread], a)
		if a.Thread > maxTid {
			maxTid = a.Thread
		}
	}
	for tid := 0; tid <= maxTid; tid++ {
		acts := byThread[tid]
		if len(acts) == 0 {
			continue
		}
		// The trace is appended in execution order, so each per-thread
		// slice should already be ID-sorted — but the sb chain must hold
		// even if a future refactor reorders the trace, so sort
		// defensively rather than trust slice order.
		sort.Slice(acts, func(i, j int) bool { return acts[i].ID < acts[j].ID })
		fmt.Fprintf(&b, "  subgraph cluster_t%d {\n    label=\"T%d\";\n", tid, tid)
		for _, a := range acts {
			extra := ""
			if a.ID == failAction {
				extra = ", style=filled, fillcolor=red, fontcolor=white"
			}
			fmt.Fprintf(&b, "    a%d [label=%q%s];\n", a.ID, nodeLabel(a), extra)
		}
		b.WriteString("  }\n")
		// Sequenced-before chain.
		for i := 1; i < len(acts); i++ {
			fmt.Fprintf(&b, "  a%d -> a%d [style=dotted, arrowhead=none];\n",
				acts[i-1].ID, acts[i].ID)
		}
	}

	// Reads-from edges, plus synchronizes-with where the reading side is
	// an acquire and the store carries a release clock (it heads or
	// continues a release sequence). Fence-induced synchronization is
	// thread-wide rather than per-pair, so it is not drawn as sw.
	withSync := map[int]bool{}
	for _, loc := range sys.locs {
		for _, st := range loc.stores {
			if st.sync != nil {
				withSync[st.act.ID] = true
			}
		}
	}
	for _, a := range sys.Actions() {
		if a.RF == nil {
			continue
		}
		if a.Kind.IsAtomic() && a.Order.IsAcquire() && withSync[a.RF.ID] {
			fmt.Fprintf(&b, "  a%d -> a%d [color=darkgreen, style=bold, label=\"sw\", fontsize=8];\n",
				a.RF.ID, a.ID)
		}
		fmt.Fprintf(&b, "  a%d -> a%d [color=red, label=\"rf\", fontsize=8];\n",
			a.RF.ID, a.ID)
	}

	// Modification-order edges: consecutive stores per atomic location.
	for _, loc := range sys.locs {
		if !loc.atomic {
			continue
		}
		for i := 1; i < len(loc.stores); i++ {
			fmt.Fprintf(&b, "  a%d -> a%d [color=blue, label=\"mo\", fontsize=8];\n",
				loc.stores[i-1].act.ID, loc.stores[i].act.ID)
		}
	}

	// Fence placement in the seq_cst total order S: edges between
	// consecutive SC actions where at least one endpoint is a fence
	// (drawing all of S would clutter the graph; the memory-access part
	// of S is already visible through the S<n> node labels).
	var scActs []*memmodel.Action
	for _, a := range sys.Actions() {
		if a.SCIndex >= 0 {
			scActs = append(scActs, a)
		}
	}
	sort.Slice(scActs, func(i, j int) bool { return scActs[i].SCIndex < scActs[j].SCIndex })
	for i := 1; i < len(scActs); i++ {
		prev, cur := scActs[i-1], scActs[i]
		if prev.Kind != memmodel.KindFence && cur.Kind != memmodel.KindFence {
			continue
		}
		fmt.Fprintf(&b, "  a%d -> a%d [color=gray, style=dashed, label=\"sc\", fontsize=8];\n",
			prev.ID, cur.ID)
	}

	b.WriteString("}\n")
	return b.String()
}

func nodeLabel(a *memmodel.Action) string {
	switch {
	case a.Kind.IsAtomic():
		rmw := ""
		if a.Kind == memmodel.KindAtomicRMW {
			rmw = "rmw "
		}
		op := "R"
		if a.Kind == memmodel.KindAtomicStore || a.Kind == memmodel.KindAtomicRMW {
			op = "W"
		}
		sc := ""
		if a.SCIndex >= 0 {
			sc = fmt.Sprintf(" S%d", a.SCIndex)
		}
		return fmt.Sprintf("#%d %s%s %s=%d (%s)%s", a.ID, rmw, op, a.LocName, a.Value, a.Order, sc)
	case a.Kind == memmodel.KindPlainLoad:
		return fmt.Sprintf("#%d r %s=%d", a.ID, a.LocName, a.Value)
	case a.Kind == memmodel.KindPlainStore:
		return fmt.Sprintf("#%d w %s=%d", a.ID, a.LocName, a.Value)
	case a.Kind == memmodel.KindFence:
		return fmt.Sprintf("#%d fence(%s)", a.ID, a.Order)
	default:
		return fmt.Sprintf("#%d %s", a.ID, a.Kind)
	}
}

// ActionJSON is the machine-readable form of one trace action.
type ActionJSON struct {
	ID     int    `json:"id"`
	Thread int    `json:"thread"`
	Kind   string `json:"kind"`
	// Order is set for atomic accesses and fences.
	Order string `json:"order,omitempty"`
	Loc   string `json:"loc,omitempty"`
	Value uint64 `json:"value"`
	// RF is the ID of the store a load read from.
	RF *int `json:"rf,omitempty"`
	// MO is the store's index in its location's modification order.
	MO *int `json:"mo,omitempty"`
	// SC is the action's position in the seq_cst total order.
	SC *int `json:"sc,omitempty"`
}

// TraceJSON is the machine-readable form of one execution: the trace with
// the model's relations made explicit, plus the failure it exposed, if
// any. It is the JSON counterpart of ExportDOT.
type TraceJSON struct {
	Execution int          `json:"execution"`
	Threads   int          `json:"threads"`
	Actions   []ActionJSON `json:"actions"`
	Failure   *Failure     `json:"failure,omitempty"`
}

// ExportJSON renders the execution as an indented JSON document.
func ExportJSON(sys *System) ([]byte, error) {
	t := TraceJSON{
		Execution: sys.ExecIndex(),
		Threads:   len(sys.threads),
		Failure:   sys.Failure(),
	}
	for _, a := range sys.Actions() {
		ja := ActionJSON{
			ID:     a.ID,
			Thread: a.Thread,
			Kind:   a.Kind.String(),
			Loc:    a.LocName,
			Value:  a.Value,
		}
		if a.Kind.IsAtomic() || a.Kind == memmodel.KindFence {
			ja.Order = a.Order.String()
		}
		if a.RF != nil {
			rf := a.RF.ID
			ja.RF = &rf
		}
		if a.Kind.IsWrite() {
			mo := a.MOIndex
			ja.MO = &mo
		}
		if a.SCIndex >= 0 {
			sc := a.SCIndex
			ja.SC = &sc
		}
		t.Actions = append(t.Actions, ja)
	}
	return json.MarshalIndent(&t, "", "  ")
}
