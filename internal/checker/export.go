package checker

import (
	"fmt"
	"strings"

	"repro/internal/memmodel"
)

// ExportDOT renders the execution's action graph in Graphviz DOT format,
// the diagnostic view CDSChecker prints for buggy executions: one column
// per thread (sequenced-before edges) plus reads-from edges between
// stores and the loads that observed them.
func ExportDOT(sys *System) string {
	var b strings.Builder
	b.WriteString("digraph execution {\n")
	b.WriteString("  rankdir=TB;\n  node [shape=box, fontsize=10];\n")

	byThread := map[int][]*memmodel.Action{}
	maxTid := 0
	for _, a := range sys.Actions() {
		byThread[a.Thread] = append(byThread[a.Thread], a)
		if a.Thread > maxTid {
			maxTid = a.Thread
		}
	}
	for tid := 0; tid <= maxTid; tid++ {
		acts := byThread[tid]
		if len(acts) == 0 {
			continue
		}
		fmt.Fprintf(&b, "  subgraph cluster_t%d {\n    label=\"T%d\";\n", tid, tid)
		for _, a := range acts {
			fmt.Fprintf(&b, "    a%d [label=%q];\n", a.ID, nodeLabel(a))
		}
		b.WriteString("  }\n")
		// Sequenced-before chain.
		for i := 1; i < len(acts); i++ {
			fmt.Fprintf(&b, "  a%d -> a%d [style=dotted, arrowhead=none];\n",
				acts[i-1].ID, acts[i].ID)
		}
	}
	// Reads-from edges.
	for _, a := range sys.Actions() {
		if a.RF != nil {
			fmt.Fprintf(&b, "  a%d -> a%d [color=red, label=\"rf\", fontsize=8];\n",
				a.RF.ID, a.ID)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

func nodeLabel(a *memmodel.Action) string {
	switch {
	case a.Kind.IsAtomic():
		rmw := ""
		if a.Kind == memmodel.KindAtomicRMW {
			rmw = "rmw "
		}
		op := "R"
		if a.Kind == memmodel.KindAtomicStore || a.Kind == memmodel.KindAtomicRMW {
			op = "W"
		}
		sc := ""
		if a.SCIndex >= 0 {
			sc = fmt.Sprintf(" S%d", a.SCIndex)
		}
		return fmt.Sprintf("#%d %s%s %s=%d (%s)%s", a.ID, rmw, op, a.LocName, a.Value, a.Order, sc)
	case a.Kind == memmodel.KindPlainLoad:
		return fmt.Sprintf("#%d r %s=%d", a.ID, a.LocName, a.Value)
	case a.Kind == memmodel.KindPlainStore:
		return fmt.Sprintf("#%d w %s=%d", a.ID, a.LocName, a.Value)
	case a.Kind == memmodel.KindFence:
		return fmt.Sprintf("#%d fence(%s)", a.ID, a.Order)
	default:
		return fmt.Sprintf("#%d %s", a.ID, a.Kind)
	}
}
