package checker

import "testing"

// TestParseReduce: flag-value parsing round-trips through the canonical
// String form, and garbage is rejected with the valid values named.
func TestParseReduce(t *testing.T) {
	cases := []struct {
		in   string
		want ReduceSet
	}{
		{"", ReduceSet{}},
		{"none", ReduceSet{}},
		{"all", ReduceAll()},
		{"rf", ReduceSet{RF: true}},
		{"symmetry", ReduceSet{Symmetry: true}},
		{"spinloop", ReduceSet{Spinloop: true}},
		{"rf,spinloop", ReduceSet{RF: true, Spinloop: true}},
		{"spinloop, rf", ReduceSet{RF: true, Spinloop: true}}, // order/space insensitive
		{"rf,rf", ReduceSet{RF: true}},
		{"rf,symmetry,spinloop", ReduceAll()},
	}
	for _, tc := range cases {
		got, err := ParseReduce(tc.in)
		if err != nil {
			t.Errorf("ParseReduce(%q): %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParseReduce(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
		// The canonical String form must parse back to the same set.
		back, err := ParseReduce(got.String())
		if err != nil || back != got {
			t.Errorf("ParseReduce(%q).String() = %q does not round-trip (%+v, %v)",
				tc.in, got.String(), back, err)
		}
	}
	for _, bad := range []string{"bogus", "rf,bogus", "rf;spinloop", "ALL"} {
		if _, err := ParseReduce(bad); err == nil {
			t.Errorf("ParseReduce(%q) accepted", bad)
		}
	}
	if got := (ReduceSet{}).String(); got != "none" {
		t.Errorf("zero set String() = %q, want none", got)
	}
	if got := ReduceAll().String(); got != "rf,symmetry,spinloop" {
		t.Errorf("ReduceAll().String() = %q", got)
	}
}

// TestReduceConfigValidate: the sampling engines have no frontier to
// prune — FastMode rejects every reduction, RandomWalk rejects rf and
// symmetry but composes with spinloop filtering; the DFS engines accept
// everything.
func TestReduceConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"fastmode+rf", Config{FastMode: true, MaxExecutions: 1, Reduce: ReduceSet{RF: true}}, false},
		{"fastmode+spinloop", Config{FastMode: true, MaxExecutions: 1, Reduce: ReduceSet{Spinloop: true}}, false},
		{"randomwalk+rf", Config{RandomWalk: 10, Reduce: ReduceSet{RF: true}}, false},
		{"randomwalk+symmetry", Config{RandomWalk: 10, Reduce: ReduceSet{Symmetry: true}}, false},
		{"randomwalk+spinloop", Config{RandomWalk: 10, Reduce: ReduceSet{Spinloop: true}}, true},
		{"sequential+all", Config{Reduce: ReduceAll()}, true},
		{"worksteal+all", Config{Parallelism: 4, Reduce: ReduceAll()}, true},
	}
	for _, tc := range cases {
		err := tc.cfg.Validate()
		if tc.ok && err != nil {
			t.Errorf("%s: Validate() = %v, want nil", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: Validate() accepted", tc.name)
		}
	}
}
