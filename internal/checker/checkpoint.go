package checker

import (
	"fmt"
	"time"
)

// CheckpointSchema identifies the checkpoint payload layout. The harness
// wraps this payload in its own envelope (benchmark name, config flags)
// under the same version; bump both together.
const CheckpointSchema = "cdsspec-checkpoint/v1"

// Checkpoint is a consistent snapshot of a work-stealing exploration: the
// fold list's alternation of completed-region results and outstanding
// frontier tasks, plus the engine-level accumulators that live outside
// any region. A checkpoint needs no quiescence — a task whose execution
// is in flight at snapshot time is still serialized as pending, and a
// resumed run simply re-runs it — so snapshots are cheap and the final
// Result after any resume chain is bit-identical to an uninterrupted run.
type Checkpoint struct {
	Schema string `json:"schema"`
	// Executions is the sum over done cells — informational, and the
	// starting budget consumption for MaxExecutions accounting on resume.
	Executions int `json:"executions"`
	// Elapsed accumulates wall clock across the run segments so far.
	Elapsed time.Duration `json:"elapsed_ns"`
	// Steals, MaxFrontier and WorkerBusy carry the engine-level scheduler
	// telemetry across resume boundaries (they are not part of any cell's
	// Stats).
	Steals      int           `json:"steals"`
	MaxFrontier int           `json:"max_frontier"`
	WorkerBusy  time.Duration `json:"worker_busy_ns"`
	// Cells is the fold list in canonical decision-path order.
	Cells []CheckpointCell `json:"cells"`
}

// CheckpointCell is one fold-list slot: a completed region's Result, or a
// pending frontier task's frozen decision path (Pending set; the root
// task's path is empty).
type CheckpointCell struct {
	Result  *Result              `json:"result,omitempty"`
	Pending bool                 `json:"pending,omitempty"`
	Task    []CheckpointDecision `json:"task,omitempty"`
}

// CheckpointDecision is one decision along a pending task's path. For
// "sched" nodes Cands lists the candidate thread ids and Branch indexes
// into it (the explored sleep-set prefix is implied: Cands[:Branch]);
// for value nodes ("read"/"cas"/"wake") N is the alternative count and
// Branch the chosen index.
type CheckpointDecision struct {
	Kind   string `json:"kind"`
	N      int    `json:"n,omitempty"`
	Cands  []int  `json:"cands,omitempty"`
	Branch int    `json:"branch"`
}

// Complete reports whether the checkpoint has no outstanding work —
// resuming it folds and returns the stored result without exploring.
func (cp *Checkpoint) Complete() bool {
	for _, c := range cp.Cells {
		if c.Pending {
			return false
		}
	}
	return true
}

// Pending counts the outstanding frontier entries.
func (cp *Checkpoint) Pending() int {
	n := 0
	for _, c := range cp.Cells {
		if c.Pending {
			n++
		}
	}
	return n
}

// Validate checks the structural invariants a resume relies on. Explore
// panics on an invalid ResumeFrom; callers deserializing untrusted files
// should Validate first.
func (cp *Checkpoint) Validate() error {
	if cp.Schema != CheckpointSchema {
		return fmt.Errorf("checkpoint schema %q, want %q", cp.Schema, CheckpointSchema)
	}
	if len(cp.Cells) == 0 {
		return fmt.Errorf("checkpoint has no cells")
	}
	for i, c := range cp.Cells {
		if c.Pending == (c.Result != nil) {
			return fmt.Errorf("cell %d: exactly one of result/pending required", i)
		}
		if !c.Pending && len(c.Task) > 0 {
			return fmt.Errorf("cell %d: done cell carries a task path", i)
		}
		for j, d := range c.Task {
			if _, err := kindByte(d.Kind); err != nil {
				return fmt.Errorf("cell %d decision %d: %v", i, j, err)
			}
			if d.Kind == "sched" {
				if d.Branch < 0 || d.Branch >= len(d.Cands) {
					return fmt.Errorf("cell %d decision %d: branch %d out of %d candidates", i, j, d.Branch, len(d.Cands))
				}
			} else if d.Branch < 0 || d.Branch >= d.N {
				return fmt.Errorf("cell %d decision %d: branch %d out of %d alternatives", i, j, d.Branch, d.N)
			}
		}
	}
	return nil
}

func kindName(k byte) string {
	switch k {
	case 's':
		return "sched"
	case 'r':
		return "read"
	case 'c':
		return "cas"
	case 'l':
		return "wake"
	}
	return fmt.Sprintf("?%c", k)
}

func kindByte(name string) (byte, error) {
	switch name {
	case "sched":
		return 's', nil
	case "read":
		return 'r', nil
	case "cas":
		return 'c', nil
	case "wake":
		return 'l', nil
	}
	return 0, fmt.Errorf("unknown decision kind %q", name)
}

// checkpoint serializes the engine state. Cell results are deep-copied
// under the fold lock: later coalescing mutates them (failure-index
// offsets), and the caller may marshal the snapshot at leisure.
func (e *wsEngine) checkpoint(baseElapsed time.Duration) *Checkpoint {
	cp := &Checkpoint{
		Schema:      CheckpointSchema,
		Steals:      int(e.steals.Load()),
		WorkerBusy:  time.Duration(e.busy.Load()),
		Elapsed:     baseElapsed + time.Since(e.startTime),
		MaxFrontier: e.fold.frontierHighWater(),
	}
	if e.priorMaxFrontier > cp.MaxFrontier {
		cp.MaxFrontier = e.priorMaxFrontier
	}
	l := e.fold
	l.mu.Lock()
	defer l.mu.Unlock()
	for c := l.head; c != nil; c = c.next {
		switch {
		case c.res != nil:
			cp.Cells = append(cp.Cells, CheckpointCell{Result: cloneResult(c.res)})
			cp.Executions += c.res.Executions
		case c.task != nil:
			cp.Cells = append(cp.Cells, CheckpointCell{Pending: true, Task: taskPath(c.task)})
		}
	}
	return cp
}

// taskPath serializes a pending task's frozen path.
func taskPath(t *wsTask) []CheckpointDecision {
	path := t.path()
	out := make([]CheckpointDecision, len(path))
	for i, d := range path {
		cd := CheckpointDecision{Kind: kindName(d.kind), Branch: d.chosen}
		if d.kind == 's' {
			cd.Cands = append([]int(nil), d.cands...)
		} else {
			cd.N = d.n
		}
		out[i] = cd
	}
	return out
}

// cloneResult deep-copies a Result far enough for concurrent mutation of
// the original (coalescing offsets failure indices in place).
func cloneResult(r *Result) *Result {
	out := *r
	out.Failures = make([]*Failure, len(r.Failures))
	for i, f := range r.Failures {
		cf := *f
		out.Failures[i] = &cf
	}
	return &out
}

// restore rebuilds the fold list and worker deques from a checkpoint,
// returning the executions already spent (the resumed budget floor).
// Pending tasks are dealt round-robin across the deques in list order.
func (e *wsEngine) restore(cp *Checkpoint) int {
	if err := cp.Validate(); err != nil {
		panic(fmt.Sprintf("checker: invalid ResumeFrom checkpoint: %v", err))
	}
	e.priorMaxFrontier = cp.MaxFrontier
	e.steals.Store(int64(cp.Steals))
	e.busy.Store(int64(cp.WorkerBusy))
	already := 0
	next := 0
	npending := 0
	for _, c := range cp.Cells {
		if !c.Pending {
			e.fold.appendCell(&foldCell{res: cloneResult(c.Result)})
			already += c.Result.Executions
			continue
		}
		t := &wsTask{node: pathNodes(c.Task)}
		e.fold.appendCell(&foldCell{task: t})
		e.deques[next%len(e.deques)].push(t)
		next++
		npending++
	}
	e.unfinished.Store(int64(npending))
	return already
}

// pathNodes rebuilds a task's fnode chain from its serialized path.
func pathNodes(path []CheckpointDecision) *fnode {
	var parent *fnode
	for i, d := range path {
		k, err := kindByte(d.Kind)
		if err != nil {
			panic(fmt.Sprintf("checker: %v", err))
		}
		fn := &fnode{parent: parent, depth: i, kind: k, n: d.N, branch: d.Branch}
		if k == 's' {
			fn.cands = append([]int(nil), d.Cands...)
		}
		parent = fn
	}
	return parent
}
