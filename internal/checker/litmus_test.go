package checker

import (
	"fmt"
	"testing"

	"repro/internal/memmodel"
)

// exploreOutcomes runs an exhaustive exploration of prog and returns the
// set of outcome strings it produced. prog receives the root thread and a
// report function that records the outcome of the current execution.
func exploreOutcomes(t *testing.T, prog func(root *Thread, report func(string))) (map[string]int, *Result) {
	t.Helper()
	outcomes := map[string]int{}
	var cur []string
	cfg := Config{
		OnRunStart: func(sys *System) { cur = nil },
		OnExecution: func(sys *System) []*Failure {
			for _, o := range cur {
				outcomes[o]++
			}
			return nil
		},
	}
	res := Explore(cfg, func(root *Thread) {
		prog(root, func(o string) { cur = append(cur, o) })
	})
	if !res.Exhausted {
		t.Fatalf("exploration not exhausted: %v", res)
	}
	return outcomes, res
}

// exploreForFailures runs an exhaustive exploration and returns the result.
func exploreForFailures(prog func(root *Thread)) *Result {
	return Explore(Config{}, prog)
}

// --- Message passing -------------------------------------------------

// TestMPReleaseAcquire checks that release/acquire message passing never
// loses the payload: if the acquire load sees the flag, it sees the data.
func TestMPReleaseAcquire(t *testing.T) {
	out, _ := exploreOutcomes(t, func(root *Thread, report func(string)) {
		x := root.NewAtomicInit("x", 0)
		flag := root.NewAtomicInit("flag", 0)
		w := root.Spawn("writer", func(tt *Thread) {
			x.Store(tt, memmodel.Relaxed, 42)
			flag.Store(tt, memmodel.Release, 1)
		})
		r := root.Spawn("reader", func(tt *Thread) {
			f := flag.Load(tt, memmodel.Acquire)
			v := x.Load(tt, memmodel.Relaxed)
			report(fmt.Sprintf("f=%d v=%d", f, v))
		})
		root.Join(w)
		root.Join(r)
	})
	if out["f=1 v=0"] != 0 {
		t.Errorf("release/acquire MP lost the payload: %v", out)
	}
	if out["f=1 v=42"] == 0 {
		t.Errorf("never saw the flagged payload: %v", out)
	}
	if out["f=0 v=0"] == 0 {
		t.Errorf("never saw the unflagged case: %v", out)
	}
}

// TestMPRelaxed checks that fully relaxed message passing CAN lose the
// payload (the weak behavior CDSChecker exists to surface).
func TestMPRelaxed(t *testing.T) {
	out, _ := exploreOutcomes(t, func(root *Thread, report func(string)) {
		x := root.NewAtomicInit("x", 0)
		flag := root.NewAtomicInit("flag", 0)
		w := root.Spawn("writer", func(tt *Thread) {
			x.Store(tt, memmodel.Relaxed, 42)
			flag.Store(tt, memmodel.Relaxed, 1)
		})
		r := root.Spawn("reader", func(tt *Thread) {
			f := flag.Load(tt, memmodel.Relaxed)
			v := x.Load(tt, memmodel.Relaxed)
			report(fmt.Sprintf("f=%d v=%d", f, v))
		})
		root.Join(w)
		root.Join(r)
	})
	if out["f=1 v=0"] == 0 {
		t.Errorf("relaxed MP should admit the stale payload: %v", out)
	}
}

// TestMPPlainPayloadRace: a plain payload with a relaxed flag is a data
// race (built-in check).
func TestMPPlainPayloadRace(t *testing.T) {
	res := exploreForFailures(func(root *Thread) {
		x := root.NewPlainInit("x", 0)
		flag := root.NewAtomicInit("flag", 0)
		w := root.Spawn("writer", func(tt *Thread) {
			x.Store(tt, 42)
			flag.Store(tt, memmodel.Relaxed, 1)
		})
		r := root.Spawn("reader", func(tt *Thread) {
			if flag.Load(tt, memmodel.Relaxed) == 1 {
				_ = x.Load(tt)
			}
		})
		root.Join(w)
		root.Join(r)
	})
	if !res.HasKind(FailDataRace) {
		t.Errorf("expected a data race, got %v", res)
	}
}

// TestMPPlainPayloadSynchronized: with release/acquire the same program is
// race-free.
func TestMPPlainPayloadSynchronized(t *testing.T) {
	res := exploreForFailures(func(root *Thread) {
		x := root.NewPlainInit("x", 0)
		flag := root.NewAtomicInit("flag", 0)
		w := root.Spawn("writer", func(tt *Thread) {
			x.Store(tt, 42)
			flag.Store(tt, memmodel.Release, 1)
		})
		r := root.Spawn("reader", func(tt *Thread) {
			if flag.Load(tt, memmodel.Acquire) == 1 {
				v := x.Load(tt)
				tt.Assert(v == 42, "payload lost: %d", v)
			}
		})
		root.Join(w)
		root.Join(r)
	})
	if res.FailureCount != 0 {
		t.Errorf("expected no failures, got %v: %v", res, res.FirstFailure())
	}
}

// --- Store buffering --------------------------------------------------

func storeBuffering(t *testing.T, ord memmodel.MemOrder) map[string]int {
	out, _ := exploreOutcomes(t, func(root *Thread, report func(string)) {
		x := root.NewAtomicInit("x", 0)
		y := root.NewAtomicInit("y", 0)
		var r1, r2 memmodel.Value
		a := root.Spawn("a", func(tt *Thread) {
			x.Store(tt, ord, 1)
			r1 = y.Load(tt, ord)
		})
		b := root.Spawn("b", func(tt *Thread) {
			y.Store(tt, ord, 1)
			r2 = x.Load(tt, ord)
		})
		root.Join(a)
		root.Join(b)
		report(fmt.Sprintf("r1=%d r2=%d", r1, r2))
	})
	return out
}

// TestSBSeqCst: both-zero is forbidden under seq_cst.
func TestSBSeqCst(t *testing.T) {
	out := storeBuffering(t, memmodel.SeqCst)
	if out["r1=0 r2=0"] != 0 {
		t.Errorf("seq_cst store buffering admitted r1=r2=0: %v", out)
	}
	for _, want := range []string{"r1=1 r2=0", "r1=0 r2=1", "r1=1 r2=1"} {
		if out[want] == 0 {
			t.Errorf("missing SC outcome %q: %v", want, out)
		}
	}
}

// TestSBRelaxed: both-zero is allowed under relaxed (and acquire/release).
func TestSBRelaxed(t *testing.T) {
	out := storeBuffering(t, memmodel.Relaxed)
	if out["r1=0 r2=0"] == 0 {
		t.Errorf("relaxed store buffering should admit r1=r2=0: %v", out)
	}
}

// TestSBSCFences: relaxed accesses plus seq_cst fences between the store
// and the load forbid the both-zero outcome (Dekker with fences).
func TestSBSCFences(t *testing.T) {
	out, _ := exploreOutcomes(t, func(root *Thread, report func(string)) {
		x := root.NewAtomicInit("x", 0)
		y := root.NewAtomicInit("y", 0)
		var r1, r2 memmodel.Value
		a := root.Spawn("a", func(tt *Thread) {
			x.Store(tt, memmodel.Relaxed, 1)
			Fence(tt, memmodel.SeqCst)
			r1 = y.Load(tt, memmodel.Relaxed)
		})
		b := root.Spawn("b", func(tt *Thread) {
			y.Store(tt, memmodel.Relaxed, 1)
			Fence(tt, memmodel.SeqCst)
			r2 = x.Load(tt, memmodel.Relaxed)
		})
		root.Join(a)
		root.Join(b)
		report(fmt.Sprintf("r1=%d r2=%d", r1, r2))
	})
	if out["r1=0 r2=0"] != 0 {
		t.Errorf("SC fences should forbid r1=r2=0: %v", out)
	}
	if out["r1=1 r2=1"] == 0 {
		t.Errorf("missing interleaved outcome: %v", out)
	}
}

// --- Coherence --------------------------------------------------------

// TestCoherenceWriteRead: a thread reads its own most recent write.
func TestCoherenceWriteRead(t *testing.T) {
	out, _ := exploreOutcomes(t, func(root *Thread, report func(string)) {
		x := root.NewAtomicInit("x", 0)
		x.Store(root, memmodel.Relaxed, 1)
		x.Store(root, memmodel.Relaxed, 2)
		v := x.Load(root, memmodel.Relaxed)
		report(fmt.Sprintf("v=%d", v))
	})
	if len(out) != 1 || out["v=2"] == 0 {
		t.Errorf("write-read coherence violated: %v", out)
	}
}

// TestCoherenceReadRead: two sequenced reads never observe one writer's
// stores out of order.
func TestCoherenceReadRead(t *testing.T) {
	out, _ := exploreOutcomes(t, func(root *Thread, report func(string)) {
		x := root.NewAtomicInit("x", 0)
		w := root.Spawn("w", func(tt *Thread) {
			x.Store(tt, memmodel.Relaxed, 1)
			x.Store(tt, memmodel.Relaxed, 2)
		})
		r := root.Spawn("r", func(tt *Thread) {
			a := x.Load(tt, memmodel.Relaxed)
			b := x.Load(tt, memmodel.Relaxed)
			report(fmt.Sprintf("a=%d b=%d", a, b))
		})
		root.Join(w)
		root.Join(r)
	})
	if out["a=2 b=1"] != 0 || out["a=1 b=0"] != 0 || out["a=2 b=0"] != 0 {
		t.Errorf("read-read coherence violated: %v", out)
	}
	if out["a=1 b=2"] == 0 || out["a=0 b=0"] == 0 || out["a=2 b=2"] == 0 {
		t.Errorf("missing coherent outcomes: %v", out)
	}
}

// TestStaleReadAllowed: a reader with no synchronization may see an old
// value even after the writer finished — the fundamental relaxed behavior.
func TestStaleReadAllowed(t *testing.T) {
	out, _ := exploreOutcomes(t, func(root *Thread, report func(string)) {
		x := root.NewAtomicInit("x", 0)
		w := root.Spawn("w", func(tt *Thread) {
			x.Store(tt, memmodel.Relaxed, 7)
		})
		r := root.Spawn("r", func(tt *Thread) {
			report(fmt.Sprintf("v=%d", x.Load(tt, memmodel.Relaxed)))
		})
		root.Join(w)
		root.Join(r)
	})
	if out["v=0"] == 0 || out["v=7"] == 0 {
		t.Errorf("expected both stale and fresh reads: %v", out)
	}
}

// TestJoinSynchronizes: after Join, the parent must see the child's writes.
func TestJoinSynchronizes(t *testing.T) {
	out, _ := exploreOutcomes(t, func(root *Thread, report func(string)) {
		x := root.NewAtomicInit("x", 0)
		w := root.Spawn("w", func(tt *Thread) {
			x.Store(tt, memmodel.Relaxed, 7)
		})
		root.Join(w)
		report(fmt.Sprintf("v=%d", x.Load(root, memmodel.Relaxed)))
	})
	if len(out) != 1 || out["v=7"] == 0 {
		t.Errorf("join must synchronize: %v", out)
	}
}

// --- IRIW -------------------------------------------------------------

func iriw(t *testing.T, storeOrd, loadOrd memmodel.MemOrder) map[string]int {
	out, _ := exploreOutcomes(t, func(root *Thread, report func(string)) {
		x := root.NewAtomicInit("x", 0)
		y := root.NewAtomicInit("y", 0)
		var r1, r2, r3, r4 memmodel.Value
		ths := []*Thread{
			root.Spawn("wx", func(tt *Thread) { x.Store(tt, storeOrd, 1) }),
			root.Spawn("wy", func(tt *Thread) { y.Store(tt, storeOrd, 1) }),
			root.Spawn("r1", func(tt *Thread) {
				r1 = x.Load(tt, loadOrd)
				r2 = y.Load(tt, loadOrd)
			}),
			root.Spawn("r2", func(tt *Thread) {
				r3 = y.Load(tt, loadOrd)
				r4 = x.Load(tt, loadOrd)
			}),
		}
		for _, th := range ths {
			root.Join(th)
		}
		report(fmt.Sprintf("%d%d%d%d", r1, r2, r3, r4))
	})
	return out
}

// TestIRIWSeqCst: the two readers must agree on the order of independent
// writes under seq_cst.
func TestIRIWSeqCst(t *testing.T) {
	out := iriw(t, memmodel.SeqCst, memmodel.SeqCst)
	if out["1010"] != 0 {
		t.Errorf("seq_cst IRIW admitted disagreement: %v", out)
	}
}

// TestIRIWAcquireRelease: with acquire/release the readers may disagree —
// the exact behavior §1.2 of the paper highlights as breaking sequential
// histories.
func TestIRIWAcquireRelease(t *testing.T) {
	out := iriw(t, memmodel.Release, memmodel.Acquire)
	if out["1010"] == 0 {
		t.Errorf("acq/rel IRIW should admit disagreement: %v", out)
	}
}

// --- RMW --------------------------------------------------------------

// TestFetchAddAtomic: concurrent increments never lose updates.
func TestFetchAddAtomic(t *testing.T) {
	out, _ := exploreOutcomes(t, func(root *Thread, report func(string)) {
		x := root.NewAtomicInit("x", 0)
		a := root.Spawn("a", func(tt *Thread) { x.FetchAdd(tt, memmodel.Relaxed, 1) })
		b := root.Spawn("b", func(tt *Thread) { x.FetchAdd(tt, memmodel.Relaxed, 1) })
		root.Join(a)
		root.Join(b)
		report(fmt.Sprintf("v=%d", x.Load(root, memmodel.Relaxed)))
	})
	if len(out) != 1 || out["v=2"] == 0 {
		t.Errorf("fetch_add lost an update: %v", out)
	}
}

// TestCASSuccessAndFailure: a CAS against a contended location can fail,
// and exactly one of two competing CASes succeeds.
func TestCASSuccessAndFailure(t *testing.T) {
	out, _ := exploreOutcomes(t, func(root *Thread, report func(string)) {
		x := root.NewAtomicInit("x", 0)
		var ok1, ok2 bool
		a := root.Spawn("a", func(tt *Thread) { _, ok1 = x.CAS(tt, 0, 1, memmodel.Relaxed, memmodel.Relaxed) })
		b := root.Spawn("b", func(tt *Thread) { _, ok2 = x.CAS(tt, 0, 2, memmodel.Relaxed, memmodel.Relaxed) })
		root.Join(a)
		root.Join(b)
		report(fmt.Sprintf("ok1=%v ok2=%v v=%d", ok1, ok2, x.Load(root, memmodel.Relaxed)))
	})
	if out["ok1=true ok2=false v=1"] == 0 || out["ok1=false ok2=true v=2"] == 0 {
		t.Errorf("missing single-winner outcomes: %v", out)
	}
	if out["ok1=true ok2=true v=1"] != 0 || out["ok1=true ok2=true v=2"] != 0 {
		t.Errorf("both CASes succeeded: %v", out)
	}
}

// TestCASStaleFailure: a strong CAS may fail by reading a stale value even
// when the newest value matches expected (C/C++11 allows it when the read
// is not required to be the latest — our model keeps it).
func TestCASStaleFailure(t *testing.T) {
	out, _ := exploreOutcomes(t, func(root *Thread, report func(string)) {
		x := root.NewAtomicInit("x", 0) // mo: [0]
		w := root.Spawn("w", func(tt *Thread) {
			x.Store(tt, memmodel.Relaxed, 5)
		})
		c := root.Spawn("c", func(tt *Thread) {
			got, ok := x.CAS(tt, 5, 9, memmodel.Relaxed, memmodel.Relaxed)
			report(fmt.Sprintf("got=%d ok=%v", got, ok))
		})
		root.Join(w)
		root.Join(c)
	})
	if out["got=0 ok=false"] == 0 {
		t.Errorf("expected stale CAS failure: %v", out)
	}
	if out["got=5 ok=true"] == 0 {
		t.Errorf("expected CAS success: %v", out)
	}
}

// --- Release sequences and fences --------------------------------------

// TestReleaseSequenceThroughRMW: an acquire load reading an RMW that
// extends a release store's release sequence synchronizes with the store.
func TestReleaseSequenceThroughRMW(t *testing.T) {
	res := exploreForFailures(func(root *Thread) {
		data := root.NewPlainInit("data", 0)
		x := root.NewAtomicInit("x", 0)
		w := root.Spawn("w", func(tt *Thread) {
			data.Store(tt, 1)
			x.Store(tt, memmodel.Release, 1)
		})
		m := root.Spawn("m", func(tt *Thread) {
			// Relaxed RMW continues the release sequence.
			x.FetchAdd(tt, memmodel.Relaxed, 1)
		})
		r := root.Spawn("r", func(tt *Thread) {
			if x.Load(tt, memmodel.Acquire) == 2 {
				// Reading the RMW must synchronize with the head of
				// the release sequence, so data is visible, no race.
				v := data.Load(tt)
				tt.Assert(v == 1, "release sequence broken: data=%d", v)
			}
		})
		root.Join(w)
		root.Join(m)
		root.Join(r)
	})
	// The RMW can also run before the release store; in that case the
	// acquire load reading value 2 is impossible, and other reads don't
	// touch data. The only failures possible would be races/asserts.
	for _, f := range res.Failures {
		if f.Kind == FailDataRace || f.Kind == FailAssertion {
			t.Errorf("release sequence through RMW broken: %v", f)
		}
	}
}

// TestReleaseFence: relaxed store after a release fence + acquire load
// synchronizes.
func TestReleaseFence(t *testing.T) {
	res := exploreForFailures(func(root *Thread) {
		data := root.NewPlainInit("data", 0)
		flag := root.NewAtomicInit("flag", 0)
		w := root.Spawn("w", func(tt *Thread) {
			data.Store(tt, 1)
			Fence(tt, memmodel.Release)
			flag.Store(tt, memmodel.Relaxed, 1)
		})
		r := root.Spawn("r", func(tt *Thread) {
			if flag.Load(tt, memmodel.Acquire) == 1 {
				v := data.Load(tt)
				tt.Assert(v == 1, "release fence broken: data=%d", v)
			}
		})
		root.Join(w)
		root.Join(r)
	})
	if res.FailureCount != 0 {
		t.Errorf("expected no failures: %v", res.FirstFailure())
	}
}

// TestAcquireFence: relaxed load + subsequent acquire fence synchronizes
// with a release store.
func TestAcquireFence(t *testing.T) {
	res := exploreForFailures(func(root *Thread) {
		data := root.NewPlainInit("data", 0)
		flag := root.NewAtomicInit("flag", 0)
		w := root.Spawn("w", func(tt *Thread) {
			data.Store(tt, 1)
			flag.Store(tt, memmodel.Release, 1)
		})
		r := root.Spawn("r", func(tt *Thread) {
			if flag.Load(tt, memmodel.Relaxed) == 1 {
				Fence(tt, memmodel.Acquire)
				v := data.Load(tt)
				tt.Assert(v == 1, "acquire fence broken: data=%d", v)
			}
		})
		root.Join(w)
		root.Join(r)
	})
	if res.FailureCount != 0 {
		t.Errorf("expected no failures: %v", res.FirstFailure())
	}
}

// TestRelaxedLoadNoSync: without the acquire fence the same program races.
func TestRelaxedLoadNoSync(t *testing.T) {
	res := exploreForFailures(func(root *Thread) {
		data := root.NewPlainInit("data", 0)
		flag := root.NewAtomicInit("flag", 0)
		w := root.Spawn("w", func(tt *Thread) {
			data.Store(tt, 1)
			flag.Store(tt, memmodel.Release, 1)
		})
		r := root.Spawn("r", func(tt *Thread) {
			if flag.Load(tt, memmodel.Relaxed) == 1 {
				_ = data.Load(tt)
			}
		})
		root.Join(w)
		root.Join(r)
	})
	if !res.HasKind(FailDataRace) {
		t.Errorf("expected a data race: %v", res)
	}
}

// --- Built-in checks ----------------------------------------------------

// TestUninitializedAtomicLoad is CDSChecker's uninitialized-load check.
func TestUninitializedAtomicLoad(t *testing.T) {
	res := exploreForFailures(func(root *Thread) {
		x := root.NewAtomic("x")
		_ = x.Load(root, memmodel.Relaxed)
	})
	if !res.HasKind(FailUninitLoad) {
		t.Errorf("expected uninitialized load: %v", res)
	}
}

// TestMutexMutualExclusion: plain accesses under a mutex never race.
func TestMutexMutualExclusion(t *testing.T) {
	res := exploreForFailures(func(root *Thread) {
		m := root.NewMutex("m")
		c := root.NewPlainInit("c", 0)
		inc := func(tt *Thread) {
			m.Lock(tt)
			c.Store(tt, c.Load(tt)+1)
			m.Unlock(tt)
		}
		a := root.Spawn("a", inc)
		b := root.Spawn("b", inc)
		root.Join(a)
		root.Join(b)
		root.Assert(c.Load(root) == 2, "lost update: %d", c.Load(root))
	})
	if res.FailureCount != 0 {
		t.Errorf("expected no failures: %v", res.FirstFailure())
	}
}

// TestMutexRace: the same program without the mutex races.
func TestMutexRace(t *testing.T) {
	res := exploreForFailures(func(root *Thread) {
		c := root.NewPlainInit("c", 0)
		inc := func(tt *Thread) { c.Store(tt, c.Load(tt)+1) }
		a := root.Spawn("a", inc)
		b := root.Spawn("b", inc)
		root.Join(a)
		root.Join(b)
	})
	if !res.HasKind(FailDataRace) {
		t.Errorf("expected a data race: %v", res)
	}
}

// TestDeadlockDetected: a lock-ordering deadlock is reported.
func TestDeadlockDetected(t *testing.T) {
	res := exploreForFailures(func(root *Thread) {
		m1 := root.NewMutex("m1")
		m2 := root.NewMutex("m2")
		a := root.Spawn("a", func(tt *Thread) {
			m1.Lock(tt)
			m2.Lock(tt)
			m2.Unlock(tt)
			m1.Unlock(tt)
		})
		b := root.Spawn("b", func(tt *Thread) {
			m2.Lock(tt)
			m1.Lock(tt)
			m1.Unlock(tt)
			m2.Unlock(tt)
		})
		root.Join(a)
		root.Join(b)
	})
	if !res.HasKind(FailDeadlock) {
		t.Errorf("expected deadlock: %v", res)
	}
}

// TestLivelockDetected: spinning on a value nobody will write is reported.
func TestLivelockDetected(t *testing.T) {
	res := exploreForFailures(func(root *Thread) {
		x := root.NewAtomicInit("x", 0)
		a := root.Spawn("a", func(tt *Thread) {
			for x.Load(tt, memmodel.Acquire) == 0 {
				tt.Yield()
			}
		})
		root.Join(a)
	})
	if !res.HasKind(FailLivelock) {
		t.Errorf("expected livelock: %v", res)
	}
}

// TestSpinLoopCompletes: a spin loop that is eventually satisfied
// completes in every execution.
func TestSpinLoopCompletes(t *testing.T) {
	res := exploreForFailures(func(root *Thread) {
		x := root.NewAtomicInit("x", 0)
		a := root.Spawn("a", func(tt *Thread) {
			for x.Load(tt, memmodel.Acquire) == 0 {
				tt.Yield()
			}
		})
		b := root.Spawn("b", func(tt *Thread) {
			x.Store(tt, memmodel.Release, 1)
		})
		root.Join(a)
		root.Join(b)
	})
	if res.FailureCount != 0 {
		t.Errorf("expected clean exploration: %v", res.FirstFailure())
	}
	if res.Feasible == 0 {
		t.Errorf("no feasible executions: %v", res)
	}
}

// --- Exploration mechanics ---------------------------------------------

// TestDeterministicReplay: two explorations of the same program produce
// identical statistics.
func TestDeterministicReplay(t *testing.T) {
	prog := func(root *Thread) {
		x := root.NewAtomicInit("x", 0)
		y := root.NewAtomicInit("y", 0)
		a := root.Spawn("a", func(tt *Thread) {
			x.Store(tt, memmodel.Release, 1)
			_ = y.Load(tt, memmodel.Acquire)
		})
		b := root.Spawn("b", func(tt *Thread) {
			y.Store(tt, memmodel.Release, 1)
			_ = x.Load(tt, memmodel.Acquire)
		})
		root.Join(a)
		root.Join(b)
	}
	r1 := exploreForFailures(prog)
	r2 := exploreForFailures(prog)
	if r1.Executions != r2.Executions || r1.Feasible != r2.Feasible {
		t.Errorf("exploration not deterministic: %v vs %v", r1, r2)
	}
}

// TestMaxExecutionsBound: the execution bound is honored.
func TestMaxExecutionsBound(t *testing.T) {
	res := Explore(Config{MaxExecutions: 3}, func(root *Thread) {
		x := root.NewAtomicInit("x", 0)
		a := root.Spawn("a", func(tt *Thread) { x.Store(tt, memmodel.Relaxed, 1) })
		b := root.Spawn("b", func(tt *Thread) { _ = x.Load(tt, memmodel.Relaxed) })
		root.Join(a)
		root.Join(b)
	})
	if res.Executions != 3 || res.Exhausted {
		t.Errorf("expected exactly 3 executions, got %v", res)
	}
}

// TestRandomWalk: the random walk mode runs the requested number of
// executions.
func TestRandomWalk(t *testing.T) {
	res := Explore(Config{RandomWalk: 25, Seed: 42}, func(root *Thread) {
		x := root.NewAtomicInit("x", 0)
		a := root.Spawn("a", func(tt *Thread) { x.Store(tt, memmodel.Relaxed, 1) })
		root.Join(a)
	})
	if res.Executions != 25 {
		t.Errorf("expected 25 random executions, got %v", res)
	}
}

// TestDisableStaleReads: with stale reads disabled, relaxed MP cannot lose
// the payload — the ablation that shows why rf-branching matters.
func TestDisableStaleReads(t *testing.T) {
	outcomes := map[string]int{}
	var cur string
	cfg := Config{
		DisableStaleReads: true,
		OnRunStart:        func(sys *System) { cur = "" },
		OnExecution: func(sys *System) []*Failure {
			outcomes[cur]++
			return nil
		},
	}
	res := Explore(cfg, func(root *Thread) {
		x := root.NewAtomicInit("x", 0)
		flag := root.NewAtomicInit("flag", 0)
		w := root.Spawn("w", func(tt *Thread) {
			x.Store(tt, memmodel.Relaxed, 42)
			flag.Store(tt, memmodel.Relaxed, 1)
		})
		r := root.Spawn("r", func(tt *Thread) {
			f := flag.Load(tt, memmodel.Relaxed)
			v := x.Load(tt, memmodel.Relaxed)
			cur = fmt.Sprintf("f=%d v=%d", f, v)
		})
		root.Join(w)
		root.Join(r)
	})
	if !res.Exhausted {
		t.Fatalf("not exhausted: %v", res)
	}
	if outcomes["f=1 v=0"] != 0 {
		t.Errorf("SC-only exploration should not see stale payload: %v", outcomes)
	}
}

// TestSCPerLocationOrder: an SC load never reads a store older than the
// last SC store to the location preceding it in S.
func TestSCPerLocationOrder(t *testing.T) {
	out, _ := exploreOutcomes(t, func(root *Thread, report func(string)) {
		x := root.NewAtomicInit("x", 0)
		w := root.Spawn("w", func(tt *Thread) {
			x.Store(tt, memmodel.SeqCst, 1)
		})
		r := root.Spawn("r", func(tt *Thread) {
			a := x.Load(tt, memmodel.SeqCst)
			b := x.Load(tt, memmodel.SeqCst)
			report(fmt.Sprintf("a=%d b=%d", a, b))
		})
		root.Join(w)
		root.Join(r)
	})
	if out["a=1 b=0"] != 0 {
		t.Errorf("SC reads went backwards: %v", out)
	}
}
