package checker

import (
	"repro/internal/memmodel"
)

// storeRec is one entry in a location's modification order.
type storeRec struct {
	act *memmodel.Action
	// sync is the release clock an acquire load synchronizes with when
	// it reads this store: the clock of the head(s) of the release
	// sequence(s) this store belongs to, nil if none.
	sync *memmodel.ClockVector
}

// loadRec records a past load for read-read coherence.
type loadRec struct {
	tid  int
	tseq uint32
	// rfMO is the modification-order index of the store the load read.
	rfMO int
}

// readRef identifies which store a thread read from a location, for the
// spin-loop fairness check.
type readRef struct {
	loc  *location
	rfMO int
}

// scFloor records a seq_cst visibility constraint: any load whose
// effective SC position is after scIdx must read the store at
// modification-order index moIdx or a later one.
type scFloor struct {
	scIdx int
	moIdx int
}

// location is the checker-internal state of one memory location.
type location struct {
	id     int
	name   string
	atomic bool
	// creator identifies the creating thread and the per-thread sequence
	// number its creation is ordered at: an access by another thread
	// whose clock does not cover it touches memory whose construction
	// never happened-before the access (C/C++ object-lifetime UB).
	creatorTid  int
	creatorTSeq uint32

	// stores is the modification order (the order stores executed).
	stores []storeRec
	// loads is every load of this location so far.
	loads []loadRec
	// lastStoreByThread maps thread id -> latest mo index it stored.
	lastStoreByThread map[int]int
	// scFloors are seq_cst visibility constraints (monotone in scIdx).
	scFloors []scFloor
}

// lastStoreIdx returns the mo index of the newest store, or -1.
func (l *location) lastStoreIdx() int { return len(l.stores) - 1 }

// Atomic is a simulated C/C++11 atomic location. All accesses must go
// through a *Thread so the checker can schedule and record them.
type Atomic struct {
	loc *location
	sys *System
}

// Name returns the debug name of the location.
func (a *Atomic) Name() string { return a.loc.name }

// Plain is a simulated non-atomic location, subject to data-race
// detection.
type Plain struct {
	loc *location
	sys *System
}

// Name returns the debug name of the location.
func (p *Plain) Name() string { return p.loc.name }
