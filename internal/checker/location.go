package checker

import (
	"repro/internal/memmodel"
)

// storeRec is one entry in a location's modification order.
type storeRec struct {
	act *memmodel.Action
	// sync is the release clock an acquire load synchronizes with when
	// it reads this store: the clock of the head(s) of the release
	// sequence(s) this store belongs to, nil if none.
	sync *memmodel.ClockVector
}

// loadRec records a past load for read-read coherence.
type loadRec struct {
	tid  int
	tseq uint32
	// rfMO is the modification-order index of the store the load read.
	rfMO int
}

// readRef identifies which store a thread read from a location, for the
// spin-loop fairness check.
type readRef struct {
	loc  *location
	rfMO int
}

// scFloor records a seq_cst visibility constraint: any load whose
// effective SC position is after scIdx must read the store at
// modification-order index moIdx or a later one.
type scFloor struct {
	scIdx int
	moIdx int
}

// floorEntry caches one thread's visibleFloor result for a location.
// The entry is valid while the triple (clockEpoch, storeEpoch, scIdx)
// matches the current state exactly — see visibleFloor for the
// invalidation argument. floor may additionally be raised in place when
// the owning thread performs a load of the location (its own loads are
// always covered by its own clock, so they tighten the read-read floor
// without any epoch moving).
type floorEntry struct {
	clockEpoch uint64
	storeEpoch uint64
	scIdx      int
	floor      int
	published  bool
	valid      bool
}

// location is the checker-internal state of one memory location.
type location struct {
	id     int
	name   string
	atomic bool
	// creator identifies the creating thread and the per-thread sequence
	// number its creation is ordered at: an access by another thread
	// whose clock does not cover it touches memory whose construction
	// never happened-before the access (C/C++ object-lifetime UB).
	creatorTid  int
	creatorTSeq uint32

	// stores holds the tail of the modification order starting at
	// absolute mo index moBase: stores[i] is mo index moBase+i. Exhaustive
	// exploration never evicts, so moBase stays 0 and stores is the whole
	// modification order; fast mode bounds the window (Config.StoreBound)
	// and evicts the oldest half when it overflows, keeping memory O(live
	// state) on programs with millions of stores.
	stores []storeRec
	// moBase is the absolute mo index of stores[0] (0 unless fast mode
	// evicted a prefix).
	moBase int
	// evictedVal is the value of the newest evicted store — what a plain
	// load whose visibility floor fell below the window reads.
	evictedVal memmodel.Value
	// loads is every load of this location still relevant for read-read
	// coherence; compactLoads discards entries provably dominated for
	// every possible future reader.
	loads []loadRec
	// maxLoadRF is the largest rfMO over the retained loads (-1 if none):
	// when the store-derived floor already reaches it, the loads scan is
	// skipped entirely.
	maxLoadRF int
	// nextCompact is the loads length at which the next compaction pass
	// runs (0 = not yet armed; maybeCompactLoads arms it lazily from the
	// configured threshold).
	nextCompact int
	// lastStoreBy[tid] is the latest mo index thread tid stored (-1 none).
	lastStoreBy []int
	// scFloors are seq_cst visibility constraints (monotone in scIdx).
	scFloors []scFloor

	// floorCache[tid] memoizes visibleFloor per thread.
	floorCache []floorEntry

	// Canonical identity and modification-order stream for the reduction
	// fingerprint (reduce.go); id is allocation-order-dependent, this
	// pair is not.
	canonA   uint64
	canonSeq uint32
	fpMo     fpPair

	// Per-thread latest-access vectors for exact O(threads) race checks
	// (C11Tester-style): readSeq[tid]/writeSeq[tid] is the tseq of thread
	// tid's newest read/write of this location, 0 if none (real accesses
	// always have tseq >= 1 — threadMain burns tseq 1 on ThreadStart).
	// Covering a thread's latest access implies covering all its earlier
	// ones, so one vector entry per thread suffices. Maintained in every
	// mode; fast mode uses them as its only race detector.
	readSeq  []uint32
	writeSeq []uint32
	// rawReadSeq/rawWriteSeq track *non-atomic* accesses to an atomic
	// location (Atomic.RawLoad/RawStore). Allocated lazily — nil until
	// the first raw access — so the mixed-access race checks cost nothing
	// for programs that never mix.
	rawReadSeq  []uint32
	rawWriteSeq []uint32
}

// moNext returns the absolute mo index the next store will get (one past
// the newest store), i.e. the store count over the location's lifetime.
func (l *location) moNext() int { return l.moBase + len(l.stores) }

// store returns the record at absolute mo index mo, which must be inside
// the retained window [moBase, moNext).
func (l *location) store(mo int) *storeRec { return &l.stores[mo-l.moBase] }

// setSeq grows v to cover tid and records seq as its latest access.
func setSeq(v *[]uint32, tid int, seq uint32) {
	for len(*v) <= tid {
		*v = append(*v, 0)
	}
	(*v)[tid] = seq
}

// lastStoreIdx returns the absolute mo index of the newest store, or -1.
func (l *location) lastStoreIdx() int { return l.moNext() - 1 }

// lastStoreByThread returns the mo index of the newest store by tid, or
// -1 when the thread has not stored to the location.
func (l *location) lastStoreByThread(tid int) int {
	if tid >= len(l.lastStoreBy) {
		return -1
	}
	return l.lastStoreBy[tid]
}

// setLastStoreByThread records mo index mo as thread tid's newest store.
func (l *location) setLastStoreByThread(tid, mo int) {
	for len(l.lastStoreBy) <= tid {
		l.lastStoreBy = append(l.lastStoreBy, -1)
	}
	l.lastStoreBy[tid] = mo
}

// cacheFor returns the floor-cache slot for thread tid, growing the
// cache on demand.
func (l *location) cacheFor(tid int) *floorEntry {
	for len(l.floorCache) <= tid {
		l.floorCache = append(l.floorCache, floorEntry{})
	}
	return &l.floorCache[tid]
}

// reset returns the location to its freshly created state while keeping
// every slice's capacity, so a pooled execution repopulates it without
// allocating. The caller overwrites the identity fields (name, atomic,
// creator) afterwards.
func (l *location) reset() {
	l.stores = l.stores[:0]
	l.moBase = 0
	l.evictedVal = 0
	l.loads = l.loads[:0]
	l.maxLoadRF = -1
	l.nextCompact = 0
	l.lastStoreBy = l.lastStoreBy[:0]
	l.scFloors = l.scFloors[:0]
	for i := range l.floorCache {
		l.floorCache[i].valid = false
	}
	l.readSeq = l.readSeq[:0]
	l.writeSeq = l.writeSeq[:0]
	l.rawReadSeq = nil
	l.rawWriteSeq = nil
}

// Atomic is a simulated C/C++11 atomic location. All accesses must go
// through a *Thread so the checker can schedule and record them.
type Atomic struct {
	loc *location
	sys *System
}

// Name returns the debug name of the location.
func (a *Atomic) Name() string { return a.loc.name }

// Plain is a simulated non-atomic location, subject to data-race
// detection.
type Plain struct {
	loc *location
	sys *System
}

// Name returns the debug name of the location.
func (p *Plain) Name() string { return p.loc.name }
