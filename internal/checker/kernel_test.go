package checker

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"repro/internal/memmodel"
)

// This file pins down the kernel hot-path optimizations (floor caching,
// execution pooling, load compaction, replay pinning): every one of them
// is a pure performance transformation, so exploration results must be
// bit-identical with each of them on or off, sequentially and in
// parallel.

// kernelProg is a litmus program that reports per-execution outcomes.
type kernelProg struct {
	name string
	prog func(root *Thread, report func(string))
}

// kernelProgs is a suite chosen to exercise every optimized path: the
// floor cache (relaxed loads with many readable stores), SC floors
// (IRIW, fences), load compaction (long read-read coherence histories),
// replay pinning (deep DFS trees with value branching), pooling
// (spawn/join churn, mutexes), and failure reporting (races, deadlock).
var kernelProgs = []kernelProg{
	{"store-buffering", func(root *Thread, report func(string)) {
		x := root.NewAtomicInit("x", 0)
		y := root.NewAtomicInit("y", 0)
		var r0, r1 memmodel.Value
		a := root.Spawn("a", func(tt *Thread) {
			x.Store(tt, memmodel.Relaxed, 1)
			r0 = y.Load(tt, memmodel.Relaxed)
		})
		b := root.Spawn("b", func(tt *Thread) {
			y.Store(tt, memmodel.Relaxed, 1)
			r1 = x.Load(tt, memmodel.Relaxed)
		})
		root.Join(a)
		root.Join(b)
		report(fmt.Sprintf("r0=%d r1=%d", r0, r1))
	}},
	{"mp-acquire-release", func(root *Thread, report func(string)) {
		x := root.NewAtomicInit("x", 0)
		flag := root.NewAtomicInit("flag", 0)
		w := root.Spawn("writer", func(tt *Thread) {
			x.Store(tt, memmodel.Relaxed, 42)
			flag.Store(tt, memmodel.Release, 1)
		})
		var f, v memmodel.Value
		r := root.Spawn("reader", func(tt *Thread) {
			f = flag.Load(tt, memmodel.Acquire)
			v = x.Load(tt, memmodel.Relaxed)
		})
		root.Join(w)
		root.Join(r)
		report(fmt.Sprintf("f=%d v=%d", f, v))
	}},
	{"iriw-sc", func(root *Thread, report func(string)) {
		x := root.NewAtomicInit("x", 0)
		y := root.NewAtomicInit("y", 0)
		w1 := root.Spawn("w1", func(tt *Thread) { x.Store(tt, memmodel.SeqCst, 1) })
		w2 := root.Spawn("w2", func(tt *Thread) { y.Store(tt, memmodel.SeqCst, 1) })
		var a, b, c, d memmodel.Value
		r1 := root.Spawn("r1", func(tt *Thread) {
			a = x.Load(tt, memmodel.SeqCst)
			b = y.Load(tt, memmodel.SeqCst)
		})
		r2 := root.Spawn("r2", func(tt *Thread) {
			c = y.Load(tt, memmodel.SeqCst)
			d = x.Load(tt, memmodel.SeqCst)
		})
		root.Join(w1)
		root.Join(w2)
		root.Join(r1)
		root.Join(r2)
		report(fmt.Sprintf("a=%d b=%d c=%d d=%d", a, b, c, d))
	}},
	{"fence-mp", func(root *Thread, report func(string)) {
		x := root.NewAtomicInit("x", 0)
		y := root.NewAtomicInit("y", 0)
		a := root.Spawn("a", func(tt *Thread) {
			x.Store(tt, memmodel.Relaxed, 1)
			Fence(tt, memmodel.SeqCst)
			_ = y.Load(tt, memmodel.Relaxed)
		})
		var r memmodel.Value
		b := root.Spawn("b", func(tt *Thread) {
			y.Store(tt, memmodel.Relaxed, 1)
			Fence(tt, memmodel.SeqCst)
			r = x.Load(tt, memmodel.Acquire)
		})
		root.Join(a)
		root.Join(b)
		report(fmt.Sprintf("r=%d", r))
	}},
	{"cas-contention", func(root *Thread, report func(string)) {
		c := root.NewAtomicInit("c", 0)
		worker := func(tt *Thread) {
			for {
				old := c.Load(tt, memmodel.Relaxed)
				if _, ok := c.CAS(tt, old, old+1, memmodel.AcqRel, memmodel.Relaxed); ok {
					return
				}
			}
		}
		a := root.Spawn("a", worker)
		b := root.Spawn("b", worker)
		root.Join(a)
		root.Join(b)
		report(fmt.Sprintf("c=%d", c.Load(root, memmodel.Relaxed)))
	}},
	{"load-history", func(root *Thread, report func(string)) {
		// Long read-read coherence history on one location: the writer
		// grows the modification order while two readers pile up loadRec
		// entries, so compaction (threshold permitting) has dominated
		// records to discard mid-exploration.
		x := root.NewAtomicInit("x", 0)
		w := root.Spawn("w", func(tt *Thread) {
			for i := 1; i <= 3; i++ {
				x.Store(tt, memmodel.Release, memmodel.Value(i))
			}
		})
		reader := func(out *memmodel.Value, loads int) func(*Thread) {
			return func(tt *Thread) {
				var last memmodel.Value
				for i := 0; i < loads; i++ {
					last = x.Load(tt, memmodel.Acquire)
				}
				*out = last
			}
		}
		var ra, rb memmodel.Value
		a := root.Spawn("a", reader(&ra, 3))
		b := root.Spawn("b", reader(&rb, 2))
		root.Join(w)
		root.Join(a)
		root.Join(b)
		report(fmt.Sprintf("ra=%d rb=%d", ra, rb))
	}},
	{"mutex-race", func(root *Thread, report func(string)) {
		// A guarded counter plus an unguarded plain access: exercises
		// mutex clock snapshots under pooling and produces data-race
		// failures whose indices must stay put.
		m := root.NewMutex("m")
		p := root.NewPlainInit("p", 0)
		flag := root.NewAtomicInit("flag", 0)
		a := root.Spawn("a", func(tt *Thread) {
			m.Lock(tt)
			p.Store(tt, 1)
			m.Unlock(tt)
			flag.Store(tt, memmodel.Relaxed, 1)
		})
		b := root.Spawn("b", func(tt *Thread) {
			if flag.Load(tt, memmodel.Relaxed) == 1 {
				_ = p.Load(tt) // racy: relaxed flag gives no ordering
			}
		})
		root.Join(a)
		root.Join(b)
		report("done")
	}},
}

// kernelOptsOff is the ablation configuration: every hot-path
// optimization disabled.
func kernelOptsOff() Config {
	return Config{
		DisableFloorCache:     true,
		DisablePooling:        true,
		DisableLoadCompaction: true,
		DisableReplayPinning:  true,
	}
}

// normalizeResult strips the timing exemption (wall-clock fields) so the
// remainder can be compared bit-for-bit.
func normalizeResult(r *Result) Result {
	cp := *r
	cp.Elapsed = 0
	cp.Stats = r.Stats.WithoutTimings()
	return cp
}

// runKernelProg explores p exhaustively under cfg. Outcomes are
// collected only when parallelism is 1 (the per-execution report slice
// is not sharded); parallel callers compare Results alone.
func runKernelProg(t *testing.T, cfg Config, p kernelProg) (Result, map[string]int) {
	t.Helper()
	outcomes := map[string]int{}
	var mu sync.Mutex
	var cur []string
	if cfg.Parallelism <= 1 {
		cfg.OnRunStart = func(sys *System) { cur = nil }
		cfg.OnExecution = func(sys *System) []*Failure {
			mu.Lock()
			for _, o := range cur {
				outcomes[o]++
			}
			mu.Unlock()
			return nil
		}
	}
	res := Explore(cfg, func(root *Thread) {
		p.prog(root, func(o string) {
			if cfg.Parallelism <= 1 {
				cur = append(cur, o)
			}
		})
	})
	if !res.Exhausted {
		t.Fatalf("%s: exploration not exhausted under %+v", p.name, cfg)
	}
	return normalizeResult(res), outcomes
}

// TestKernelOptsDeterminism: with every optimization on (the default)
// and with every optimization off, exploration produces bit-identical
// Results — Executions, Feasible, Pruned, failure list, and every
// non-timing Stats counter — sequentially and at Parallelism 4, and a
// DebugReplayCheck run (which revalidates every pinned replay record)
// agrees too.
func TestKernelOptsDeterminism(t *testing.T) {
	for _, p := range kernelProgs {
		p := p
		t.Run(p.name, func(t *testing.T) {
			base, baseOut := runKernelProg(t, Config{}, p)
			variants := []struct {
				name string
				cfg  Config
			}{
				{"opts-off", kernelOptsOff()},
				{"opts-off-par4", func() Config { c := kernelOptsOff(); c.Parallelism = 4; return c }()},
				{"opts-on-par4", Config{Parallelism: 4}},
				{"replay-check", Config{DebugReplayCheck: true}},
			}
			for _, v := range variants {
				got, gotOut := runKernelProg(t, v.cfg, p)
				if !reflect.DeepEqual(base, got) {
					t.Errorf("%s: Result differs from default run:\n default: %+v\n %s: %+v",
						v.name, base, v.name, got)
				}
				if v.cfg.Parallelism <= 1 && !reflect.DeepEqual(baseOut, gotOut) {
					t.Errorf("%s: outcome sets differ:\n default: %v\n %s: %v",
						v.name, baseOut, v.name, gotOut)
				}
			}
		})
	}
}

// TestLoadCompactionSoundness: compaction discards loadRec entries that
// are dominated for every possible future reader, so forcing it to run
// aggressively (threshold 2) must leave both the outcome sets and the
// full Result identical to a run with compaction disabled.
func TestLoadCompactionSoundness(t *testing.T) {
	for _, p := range kernelProgs {
		p := p
		t.Run(p.name, func(t *testing.T) {
			off, offOut := runKernelProg(t, Config{DisableLoadCompaction: true}, p)
			on, onOut := runKernelProg(t, Config{compactThreshold: 2}, p)
			if !reflect.DeepEqual(offOut, onOut) {
				t.Errorf("outcome sets differ:\n compaction off: %v\n threshold 2:   %v", offOut, onOut)
			}
			if !reflect.DeepEqual(off, on) {
				t.Errorf("Result differs:\n compaction off: %+v\n threshold 2:   %+v", off, on)
			}
		})
	}
}

// TestPooledExecutionIsolation: under pooling, state from one execution
// (store histories, thread clocks, sleep sets) must never leak into the
// next. A leak would change execution counts or outcomes versus the
// unpooled run; run the most stateful programs back-to-back with a tiny
// pool-stressing parallel sweep for good measure.
func TestPooledExecutionIsolation(t *testing.T) {
	for _, p := range []kernelProg{kernelProgs[4], kernelProgs[5], kernelProgs[6]} {
		p := p
		t.Run(p.name, func(t *testing.T) {
			pooled, pooledOut := runKernelProg(t, Config{}, p)
			unpooled, unpooledOut := runKernelProg(t, Config{DisablePooling: true}, p)
			if !reflect.DeepEqual(pooled, unpooled) {
				t.Errorf("Result differs:\n pooled:   %+v\n unpooled: %+v", pooled, unpooled)
			}
			if !reflect.DeepEqual(pooledOut, unpooledOut) {
				t.Errorf("outcomes differ:\n pooled:   %v\n unpooled: %v", pooledOut, unpooledOut)
			}
		})
	}
}

// BenchmarkKernelVisibleFloor measures the visibility-floor hot path —
// the load-history program is floor-computation bound (every load
// consults store floors, read-read coherence, and release clocks).
func BenchmarkKernelVisibleFloor(b *testing.B) {
	prog := kernelProgs[5] // load-history
	for _, mode := range []struct {
		name string
		cfg  Config
	}{
		{"cached", Config{}},
		{"uncached", Config{DisableFloorCache: true}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res := Explore(mode.cfg, func(root *Thread) { prog.prog(root, func(string) {}) })
				if !res.Exhausted {
					b.Fatal("not exhausted")
				}
			}
		})
	}
}

// BenchmarkKernelExecutionReset measures per-execution setup/teardown:
// the store-buffering program is tiny, so the cost is dominated by
// building (or pool-resetting) the System, threads, and locations.
func BenchmarkKernelExecutionReset(b *testing.B) {
	for _, mode := range []struct {
		name string
		cfg  Config
	}{
		{"pooled", Config{}},
		{"unpooled", Config{DisablePooling: true}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res := Explore(mode.cfg, manyExecProgram)
				if !res.Exhausted {
					b.Fatal("not exhausted")
				}
			}
		})
	}
}
