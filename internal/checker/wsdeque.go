package checker

import "sync/atomic"

// wsDeque is the work-stealing scheduler's Chase-Lev deque — the real
// (native-atomics) sibling of the simulated benchmark in
// internal/structures/chaselev, after Chase & Lev and the C11 adaptation
// of Lê, Pop, Cohen and Zappa Nardelli:
//
//   - the owner pushes and pops at the bottom (LIFO, so a worker keeps
//     descending into the subtree it just opened — the sequential DFS
//     order),
//   - thieves CAS the top (FIFO, so a steal takes the shallowest — and
//     statistically largest — outstanding subtree),
//   - push grows the circular array when full, publishing the new buffer
//     through an atomic pointer; a thief still holding the old buffer
//     reads the same elements, because growth copies [top, bottom) and
//     the old slots are never written again.
//
// Go's sync/atomic operations are sequentially consistent, strictly
// stronger than the acquire/release/seq_cst mix the C11 version needs, so
// the owner/thief race on the last element is arbitrated by the CAS on
// top exactly as in the paper's bug-fixed orders.
type wsDeque struct {
	top    atomic.Int64
	bottom atomic.Int64
	ring   atomic.Pointer[wsRing]
}

// wsRing is one circular-buffer generation; size is a power of two.
type wsRing struct {
	mask  int64
	slots []atomic.Pointer[wsTask]
}

const wsDequeInitialSize = 64

func newWSRing(size int64) *wsRing {
	return &wsRing{mask: size - 1, slots: make([]atomic.Pointer[wsTask], size)}
}

func (r *wsRing) get(i int64) *wsTask    { return r.slots[i&r.mask].Load() }
func (r *wsRing) put(i int64, t *wsTask) { r.slots[i&r.mask].Store(t) }

func newWSDeque() *wsDeque {
	d := &wsDeque{}
	d.ring.Store(newWSRing(wsDequeInitialSize))
	return d
}

// push adds t at the bottom. Owner only — except before the worker
// goroutines start, when the engine seeds the deques single-threadedly.
func (d *wsDeque) push(t *wsTask) {
	b := d.bottom.Load()
	top := d.top.Load()
	r := d.ring.Load()
	if b-top > r.mask {
		r = d.grow(r, top, b)
	}
	r.put(b, t)
	d.bottom.Store(b + 1)
}

// grow doubles the ring, copying the live window [top, b).
func (d *wsDeque) grow(old *wsRing, top, b int64) *wsRing {
	r := newWSRing((old.mask + 1) * 2)
	for i := top; i < b; i++ {
		r.put(i, old.get(i))
	}
	d.ring.Store(r)
	return r
}

// popBottom removes and returns the bottom element (owner only), or nil
// when the deque is empty or a thief won the race for the last element.
func (d *wsDeque) popBottom() *wsTask {
	b := d.bottom.Load() - 1
	d.bottom.Store(b)
	top := d.top.Load()
	if top > b {
		// Empty: restore bottom.
		d.bottom.Store(b + 1)
		return nil
	}
	t := d.ring.Load().get(b)
	if top == b {
		// Last element: race the thieves on top.
		if !d.top.CompareAndSwap(top, top+1) {
			t = nil
		}
		d.bottom.Store(b + 1)
	}
	return t
}

// steal removes and returns the top element (any worker), or nil when the
// deque looks empty or the CAS race was lost. A nil result is not a
// proof of emptiness; callers sweep and retry.
func (d *wsDeque) steal() *wsTask {
	top := d.top.Load()
	b := d.bottom.Load()
	if top >= b {
		return nil
	}
	// Read the slot before the CAS: a successful CAS transfers ownership
	// of exactly this element, and the owner cannot overwrite the slot
	// until top has moved past it (the grow check keeps bottom-top within
	// one ring generation).
	t := d.ring.Load().get(top)
	if !d.top.CompareAndSwap(top, top+1) {
		return nil
	}
	return t
}
