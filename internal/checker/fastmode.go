package checker

import (
	"time"
)

// This file implements fast mode (Config.FastMode): the C11Tester-style
// engine that samples one plausible execution per run in O(live state)
// memory instead of enumerating the execution tree. Each run draws a
// fresh schedule and reads-from assignment from a biased sampler seeded
// by (Config.Seed, run index), so a fixed budget produces bit-identical
// results at any Parallelism (workers own contiguous index blocks merged
// in block order, exactly like exploreRandomWalk). The per-run state the
// System retains is bounded: per-location store buffers hold at most
// StoreBound stores (system.go maybeEvict), the action trace is not
// recorded (system.go recordFast), and actions/clocks recycle through
// free lists between runs (system.go sweepFast, wired via the execution
// pool).

// derivedSeed maps (seed, run index) to an independent 64-bit stream
// seed via the splitmix64 finalizer. Both the random-walk and fast-mode
// engines key every run's decisions on this value alone, which is what
// makes results independent of how runs are distributed over workers.
func derivedSeed(seed int64, i int) uint64 {
	z := uint64(seed) + (uint64(i)+1)*0x9E3779B97F4A7C15
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}

// fastChooser draws fast-mode decisions from an inline splitmix64
// stream with C11Tester-flavoured biases: reads-from prefers recent
// stores (a geometric distribution over distance from the newest
// readable store — real hardware rarely serves deep-stale values, and
// recent-biased sampling reaches buggy interleavings sooner), CAS
// outcomes prefer the deterministic branch, and the scheduler is sticky
// (it keeps running the previous thread with probability 3/4, producing
// the long uninterrupted bursts real schedulers exhibit while still
// exercising preemption points).
type fastChooser struct {
	s          uint64 // splitmix64 state, reseeded per run
	lastTid    int    // thread the previous pickThread chose (-1 at run start)
	disableRF  bool
	stats      *Stats
	scratchRec floorRec
}

// reseed repositions the decision stream for one run.
func (f *fastChooser) reseed(seed uint64) {
	f.s = seed
	f.lastTid = -1
}

// next advances the splitmix64 stream.
func (f *fastChooser) next() uint64 {
	f.s += 0x9E3779B97F4A7C15
	z := f.s
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}

// intn returns a value in [0, n). The modulo bias is irrelevant here —
// the sampler only needs a reproducible spread, not uniformity.
func (f *fastChooser) intn(n int) int { return int(f.next() % uint64(n)) }

// pinnedFloor: fast runs never replay a prefix, so value sites always
// compute fresh.
func (f *fastChooser) pinnedFloor() (*floorRec, bool) { return nil, false }

// freshDecision: fast runs never replay. (Moot in practice — Validate
// rejects FastMode with any reduction enabled.)
func (f *fastChooser) freshDecision() bool { return true }

func (f *fastChooser) noteFloor(rec floorRec) *floorRec {
	f.scratchRec = rec
	return &f.scratchRec
}

func (f *fastChooser) choose(n int, kind byte) int {
	if n <= 1 {
		return 0
	}
	if f.disableRF && (kind == 'r' || kind == 'c') {
		if kind == 'r' {
			return n - 1
		}
		return 0
	}
	if f.stats != nil {
		// Fast runs never replay, so every multi-way decision is a
		// branch point (mirrors randChooser).
		if kind == 'l' {
			f.stats.ScheduleBranchPoints++
		} else {
			f.stats.RFBranchPoints++
		}
	}
	switch kind {
	case 'r':
		// Alternatives are ordered oldest..newest; pick an offset from
		// the newest with P(offset = k) ∝ (1/2)^k.
		k := 0
		for k < n-1 && f.next()&1 == 0 {
			k++
		}
		return n - 1 - k
	case 'c':
		// Keep the deterministic CAS outcome 3/4 of the time.
		if f.next()&3 != 0 {
			return 0
		}
		return f.intn(n)
	default:
		return f.intn(n)
	}
}

func (f *fastChooser) pickThread(s *System, enabled []*Thread) *Thread {
	if len(enabled) == 1 {
		f.lastTid = enabled[0].id
		return enabled[0]
	}
	if f.stats != nil {
		f.stats.ScheduleBranchPoints++
	}
	if f.lastTid >= 0 && f.next()&3 != 0 {
		for _, t := range enabled {
			if t.id == f.lastTid {
				return t
			}
		}
	}
	t := enabled[f.intn(len(enabled))]
	f.lastTid = t.id
	return t
}

// fastRunBudget returns the number of fast-mode runs: MaxExecutions, or
// 1000 when unset (fast mode cannot exhaust the execution space, so an
// unlimited budget would never terminate without a TimeBudget).
func (c *Config) fastRunBudget() int {
	if c.MaxExecutions > 0 {
		return c.MaxExecutions
	}
	return 1000
}

// exploreFast is Explore for fast mode. It shares the sharding and merge
// discipline of exploreRandomWalk — contiguous run-index blocks per
// worker, per-run derived seeds, block-order merge — so the Result is
// bit-identical (modulo timing fields) across Parallelism settings for a
// fixed budget. TimeBudget, StopAtFirst and Interrupt cut the run
// sequence between runs; with Parallelism > 1 the cut point is
// nondeterministic.
func exploreFast(c *Config, root func(*Thread)) *Result {
	res := &Result{}
	start := time.Now()
	defer func() {
		res.Elapsed += time.Since(start)
		if s := res.Elapsed.Seconds(); s > 0 {
			res.Stats.RunsPerSec = float64(res.Executions) / s
		}
	}()
	total := c.fastRunBudget()
	if total <= 0 {
		return res
	}
	var deadline time.Time
	if c.TimeBudget > 0 {
		deadline = start.Add(c.TimeBudget)
	}
	workers := c.Parallelism
	if workers < 1 {
		workers = 1
	}
	if workers > total {
		workers = total
	}
	if workers == 1 {
		fastBlock(c, res, root, 0, total, deadline, nil)
		return res
	}
	b := newBounds(0, 0)
	defer b.cancel()
	starts := make([]int, workers+1)
	for w := 0; w < workers; w++ {
		n := total / workers
		if w < total%workers {
			n++
		}
		starts[w+1] = starts[w] + n
	}
	locals := make([]*Result, workers)
	runPool(workers, workers, func(w int) {
		local := &Result{}
		locals[w] = local
		fastBlock(c, local, root, starts[w], starts[w+1], deadline, b)
	})
	mergeInto(res, locals, c.MaxFailures)
	return res
}

// fastBlock runs fast-mode run indices [from, to) into res, reseeding
// the chooser per index. deadline (zero = none) is the TimeBudget cutoff;
// b (nil when sequential) carries StopAtFirst/TimeBudget cancellation.
func fastBlock(c *Config, res *Result, root func(*Thread), from, to int, deadline time.Time, b *bounds) {
	ch := &fastChooser{disableRF: c.DisableStaleReads, stats: &res.Stats}
	pool := newExecPool(c)
	for i := from; i < to; i++ {
		if b != nil && b.stopped() {
			return
		}
		if !deadline.IsZero() && !time.Now().Before(deadline) {
			if b != nil {
				b.cancel()
			}
			return
		}
		if c.Interrupt != nil {
			select {
			case <-c.Interrupt:
				return
			default:
			}
		}
		ch.reseed(derivedSeed(c.Seed, i))
		scratch := c.newScratch() // each run is one shard
		failed := runOne(c, res, ch, root, scratch, pool)
		if failed && c.StopAtFirst {
			if b != nil {
				b.cancel()
			}
			return
		}
	}
}
