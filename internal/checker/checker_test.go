package checker

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/memmodel"
)

// --- Coherence shapes (CoWW/CoRW/CoWR/CoRR beyond the litmus file) -----

// TestCoWR: a thread that stored must not read an older store afterwards.
func TestCoWR(t *testing.T) {
	out, _ := exploreOutcomes(t, func(root *Thread, report func(string)) {
		x := root.NewAtomicInit("x", 0)
		w := root.Spawn("w", func(tt *Thread) {
			x.Store(tt, memmodel.Relaxed, 1)
		})
		r := root.Spawn("r", func(tt *Thread) {
			x.Store(tt, memmodel.Relaxed, 2)
			report(fmt.Sprintf("v=%d", x.Load(tt, memmodel.Relaxed)))
		})
		root.Join(w)
		root.Join(r)
	})
	// The reader may see its own 2 or the other thread's 1 if it is
	// mo-later, but never the initial 0 (hidden by its own store).
	if out["v=0"] != 0 {
		t.Errorf("CoWR violated: %v", out)
	}
}

// TestCoRW: after reading a store, the thread's own store is mo-later —
// rereads never return anything older than the observed store.
func TestCoRW(t *testing.T) {
	out, _ := exploreOutcomes(t, func(root *Thread, report func(string)) {
		x := root.NewAtomicInit("x", 0)
		w := root.Spawn("w", func(tt *Thread) {
			x.Store(tt, memmodel.Relaxed, 1)
		})
		r := root.Spawn("r", func(tt *Thread) {
			a := x.Load(tt, memmodel.Relaxed)
			x.Store(tt, memmodel.Relaxed, 9)
			b := x.Load(tt, memmodel.Relaxed)
			report(fmt.Sprintf("a=%d b=%d", a, b))
		})
		root.Join(w)
		root.Join(r)
	})
	for o := range out {
		if strings.HasSuffix(o, "b=0") {
			t.Errorf("CoRW violated (read of init after own store): %v", out)
		}
		if o == "a=1 b=1" {
			// Would require the observer's store 9 to be mo-before 1,
			// impossible once 1 was already read.
			t.Errorf("CoRW violated: %v", out)
		}
	}
}

// TestRMWChainNoLostUpdates (property-ish): N concurrent increments from
// distinct threads always sum correctly.
func TestRMWChainNoLostUpdates(t *testing.T) {
	for _, n := range []int{2, 3} {
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			res := Explore(Config{}, func(root *Thread) {
				x := root.NewAtomicInit("x", 0)
				var ths []*Thread
				for i := 0; i < n; i++ {
					ths = append(ths, root.Spawn("w", func(tt *Thread) {
						x.FetchAdd(tt, memmodel.Relaxed, 1)
					}))
				}
				for _, th := range ths {
					root.Join(th)
				}
				got := x.Load(root, memmodel.Relaxed)
				root.Assert(got == memmodel.Value(n), "sum = %d, want %d", got, n)
			})
			if res.FailureCount != 0 {
				t.Fatalf("lost update: %v", res.FirstFailure())
			}
		})
	}
}

// TestFetchSub: subtraction mirrors addition.
func TestFetchSub(t *testing.T) {
	res := Explore(Config{}, func(root *Thread) {
		x := root.NewAtomicInit("x", 10)
		old := x.FetchSub(root, memmodel.Relaxed, 3)
		root.Assert(old == 10, "old = %d", old)
		root.Assert(x.Load(root, memmodel.Relaxed) == 7, "new value")
	})
	if res.FailureCount != 0 {
		t.Fatal(res.FirstFailure())
	}
}

// TestExchange returns the previous value atomically.
func TestExchange(t *testing.T) {
	res := Explore(Config{}, func(root *Thread) {
		x := root.NewAtomicInit("x", 1)
		a := root.Spawn("a", func(tt *Thread) {
			old := x.Exchange(tt, memmodel.AcqRel, 2)
			tt.Assert(old == 1 || old == 3, "old = %d", old)
		})
		b := root.Spawn("b", func(tt *Thread) {
			old := x.Exchange(tt, memmodel.AcqRel, 3)
			tt.Assert(old == 1 || old == 2, "old = %d", old)
		})
		root.Join(a)
		root.Join(b)
		final := x.Load(root, memmodel.Relaxed)
		root.Assert(final == 2 || final == 3, "final = %d", final)
	})
	if res.FailureCount != 0 {
		t.Fatal(res.FirstFailure())
	}
}

// --- Mutex API -----------------------------------------------------------

func TestTryLockSemantics(t *testing.T) {
	res := Explore(Config{}, func(root *Thread) {
		m := root.NewMutex("m")
		root.Assert(m.TryLock(root), "trylock on free mutex")
		root.Assert(!m.TryLock(root), "trylock on held mutex")
		m.Unlock(root)
		root.Assert(m.TryLock(root), "trylock after unlock")
		m.Unlock(root)
	})
	if res.FailureCount != 0 {
		t.Fatal(res.FirstFailure())
	}
}

func TestUnlockByNonOwnerFails(t *testing.T) {
	res := Explore(Config{StopAtFirst: true}, func(root *Thread) {
		m := root.NewMutex("m")
		a := root.Spawn("a", func(tt *Thread) { m.Lock(tt) })
		root.Join(a)
		m.Unlock(root) // not the owner
	})
	if !res.HasKind(FailAPIMisuse) {
		t.Errorf("expected API misuse, got %v", res)
	}
}

// TestMutexHandoffSynchronizes: unlock -> lock is an hb edge.
func TestMutexHandoffSynchronizes(t *testing.T) {
	res := Explore(Config{}, func(root *Thread) {
		m := root.NewMutex("m")
		d := root.NewPlainInit("d", 0)
		a := root.Spawn("a", func(tt *Thread) {
			m.Lock(tt)
			d.Store(tt, 1)
			m.Unlock(tt)
		})
		b := root.Spawn("b", func(tt *Thread) {
			m.Lock(tt)
			_ = d.Load(tt)
			m.Unlock(tt)
		})
		root.Join(a)
		root.Join(b)
	})
	if res.FailureCount != 0 {
		t.Fatalf("mutex handoff raced: %v", res.FirstFailure())
	}
}

// --- Lifetime / publication ---------------------------------------------

// TestUnpublishedAccessDetected: dereferencing a location through an
// unsynchronized pointer is flagged.
func TestUnpublishedAccessDetected(t *testing.T) {
	res := Explore(Config{StopAtFirst: true}, func(root *Thread) {
		ptr := root.NewAtomicInit("ptr", 0)
		var inner *Atomic
		a := root.Spawn("a", func(tt *Thread) {
			inner = tt.NewAtomicInit("inner", 42)
			ptr.Store(tt, memmodel.Relaxed, 1) // relaxed: no publication
		})
		b := root.Spawn("b", func(tt *Thread) {
			if ptr.Load(tt, memmodel.Acquire) == 1 {
				_ = inner.Load(tt, memmodel.Relaxed)
			}
		})
		root.Join(a)
		root.Join(b)
	})
	if !res.HasKind(FailUninitLoad) {
		t.Errorf("unpublished access not detected: %v", res)
	}
}

// TestPublishedAccessClean: the same shape with a release store is clean.
func TestPublishedAccessClean(t *testing.T) {
	res := Explore(Config{}, func(root *Thread) {
		ptr := root.NewAtomicInit("ptr", 0)
		var inner *Atomic
		a := root.Spawn("a", func(tt *Thread) {
			inner = tt.NewAtomicInit("inner", 42)
			ptr.Store(tt, memmodel.Release, 1)
		})
		b := root.Spawn("b", func(tt *Thread) {
			if ptr.Load(tt, memmodel.Acquire) == 1 {
				v := inner.Load(tt, memmodel.Relaxed)
				tt.Assert(v == 42, "v = %d", v)
			}
		})
		root.Join(a)
		root.Join(b)
	})
	if res.FailureCount != 0 {
		t.Fatalf("published access flagged: %v", res.FirstFailure())
	}
}

// TestDisableLifetimeCheck: the knob silences the whole family.
func TestDisableLifetimeCheck(t *testing.T) {
	prog := func(root *Thread) {
		ptr := root.NewAtomicInit("ptr", 0)
		var inner *Atomic
		a := root.Spawn("a", func(tt *Thread) {
			inner = tt.NewAtomicInit("inner", 42)
			ptr.Store(tt, memmodel.Relaxed, 1)
		})
		b := root.Spawn("b", func(tt *Thread) {
			if ptr.Load(tt, memmodel.Acquire) == 1 {
				_ = inner.Load(tt, memmodel.Relaxed)
			}
		})
		root.Join(a)
		root.Join(b)
	}
	res := Explore(Config{DisableLifetimeCheck: true}, prog)
	if res.HasKind(FailUninitLoad) {
		t.Errorf("lifetime check fired despite the knob: %v", res.FirstFailure())
	}
}

// --- Exploration mechanics ----------------------------------------------

// TestStepBoundPrunes: a busy loop hits MaxSteps and is pruned, not
// reported as a bug.
func TestStepBoundPrunes(t *testing.T) {
	res := Explore(Config{MaxSteps: 50, MaxExecutions: 10}, func(root *Thread) {
		x := root.NewAtomicInit("x", 0)
		for i := 0; i < 1000; i++ {
			x.Store(root, memmodel.Relaxed, memmodel.Value(i))
		}
	})
	if res.Pruned == 0 {
		t.Errorf("expected pruned runs: %v", res)
	}
	if res.FailureCount != 0 {
		t.Errorf("step bound should prune, not fail: %v", res.FirstFailure())
	}
}

// TestRandomWalkDeterministicSeed: same seed, same outcome counts.
func TestRandomWalkDeterministicSeed(t *testing.T) {
	run := func() string {
		var log []string
		cfg := Config{RandomWalk: 20, Seed: 7,
			OnExecution: func(sys *System) []*Failure {
				log = append(log, fmt.Sprint(len(sys.Actions())))
				return nil
			}}
		Explore(cfg, func(root *Thread) {
			x := root.NewAtomicInit("x", 0)
			a := root.Spawn("a", func(tt *Thread) { x.Store(tt, memmodel.Relaxed, 1) })
			b := root.Spawn("b", func(tt *Thread) { _ = x.Load(tt, memmodel.Relaxed) })
			root.Join(a)
			root.Join(b)
		})
		return strings.Join(log, ",")
	}
	if run() != run() {
		t.Error("random walk with fixed seed not deterministic")
	}
}

// TestStopAtFirst stops after the first failing execution.
func TestStopAtFirst(t *testing.T) {
	res := Explore(Config{StopAtFirst: true}, func(root *Thread) {
		x := root.NewAtomic("x")
		_ = x.Load(root, memmodel.Relaxed) // uninit on every execution
	})
	if res.Executions != 1 || res.FailureCount != 1 {
		t.Errorf("StopAtFirst ignored: %v", res)
	}
}

// TestMaxFailuresCap: retained failures are capped, the count is not.
func TestMaxFailuresCap(t *testing.T) {
	res := Explore(Config{MaxFailures: 2}, func(root *Thread) {
		x := root.NewAtomicInit("x", 0)
		a := root.Spawn("a", func(tt *Thread) { x.Store(tt, memmodel.Relaxed, 1) })
		b := root.Spawn("b", func(tt *Thread) {
			v := x.Load(tt, memmodel.Relaxed)
			tt.Assert(v == 99, "always fails (v=%d)", v)
		})
		root.Join(a)
		root.Join(b)
	})
	if len(res.Failures) > 2 {
		t.Errorf("retained %d failures, cap was 2", len(res.Failures))
	}
	if res.FailureCount <= 2 {
		t.Errorf("FailureCount should exceed the cap: %v", res)
	}
}

// TestTooManyThreads: exceeding MaxThreads is an API misuse, not a hang.
func TestTooManyThreads(t *testing.T) {
	res := Explore(Config{MaxThreads: 2, StopAtFirst: true}, func(root *Thread) {
		root.Spawn("a", func(tt *Thread) {})
		root.Spawn("b", func(tt *Thread) {})
	})
	if !res.HasKind(FailAPIMisuse) {
		t.Errorf("expected API misuse: %v", res)
	}
}

// TestTraceRendering: failure traces include the participating actions.
func TestTraceRendering(t *testing.T) {
	res := Explore(Config{StopAtFirst: true}, func(root *Thread) {
		x := root.NewAtomicInit("watched", 0)
		x.Store(root, memmodel.Release, 5)
		root.Assert(false, "boom")
	})
	f := res.FirstFailure()
	if f == nil {
		t.Fatal("no failure")
	}
	if !strings.Contains(f.Trace, "watched") || !strings.Contains(f.Trace, "release") {
		t.Errorf("trace missing detail:\n%s", f.Trace)
	}
}

// TestResultHelpers: the Result accessors behave.
func TestResultHelpers(t *testing.T) {
	r := &Result{Failures: []*Failure{{Kind: FailDataRace}, {Kind: FailAssertion}}}
	if !r.HasKind(FailDataRace) || r.HasKind(FailDeadlock) {
		t.Error("HasKind wrong")
	}
	if !r.HasBuiltIn() {
		t.Error("HasBuiltIn wrong")
	}
	if r.FirstFailure().Kind != FailDataRace {
		t.Error("FirstFailure wrong")
	}
	if (&Result{}).FirstFailure() != nil {
		t.Error("empty FirstFailure should be nil")
	}
	if s := r.String(); !strings.Contains(s, "executions=") {
		t.Errorf("String() = %q", s)
	}
}

// TestFailureKindStrings: every kind renders and classifies.
func TestFailureKindStrings(t *testing.T) {
	builtins := map[FailureKind]bool{
		FailDataRace: true, FailUninitLoad: true, FailDeadlock: true, FailLivelock: true,
		FailTooManySteps: false, FailAssertion: false, FailAdmissibility: false, FailAPIMisuse: false,
	}
	for k, want := range builtins {
		if k.BuiltIn() != want {
			t.Errorf("%v.BuiltIn() = %v, want %v", k, k.BuiltIn(), want)
		}
		if strings.HasPrefix(k.String(), "FailureKind(") {
			t.Errorf("kind %d has no name", k)
		}
	}
}

// TestFailureError: Failure implements error usefully.
func TestFailureError(t *testing.T) {
	f := &Failure{Kind: FailDataRace, Msg: "x races", Execution: 3}
	if !strings.Contains(f.Error(), "data-race") || !strings.Contains(f.Error(), "x races") {
		t.Errorf("Error() = %q", f.Error())
	}
}

// --- Thread API ------------------------------------------------------

func TestThreadAccessors(t *testing.T) {
	res := Explore(Config{MaxExecutions: 1}, func(root *Thread) {
		if root.ID() != 0 || root.Name() != "main" {
			root.Assert(false, "root identity wrong: %d %q", root.ID(), root.Name())
		}
		child := root.Spawn("worker", func(tt *Thread) {
			tt.Assert(tt.ID() == 1 && tt.Name() == "worker", "child identity wrong")
			tt.Assert(tt.Sys() != nil, "Sys nil")
		})
		root.Join(child)
		if root.Clock().Get(1) == 0 {
			root.Assert(false, "join did not merge the child clock")
		}
	})
	if res.FailureCount != 0 {
		t.Fatal(res.FirstFailure())
	}
}

// TestLastAction exposes the most recent action for the spec layer.
func TestLastAction(t *testing.T) {
	res := Explore(Config{MaxExecutions: 1}, func(root *Thread) {
		x := root.NewAtomicInit("x", 0)
		x.Store(root, memmodel.Release, 9)
		a := root.LastAction()
		root.Assert(a != nil && a.Kind == memmodel.KindAtomicStore && a.Value == 9,
			"LastAction = %v", a)
	})
	if res.FailureCount != 0 {
		t.Fatal(res.FirstFailure())
	}
}

// TestPlainValueVisibility: a plain read returns the hb-latest write.
func TestPlainValueVisibility(t *testing.T) {
	res := Explore(Config{}, func(root *Thread) {
		d := root.NewPlainInit("d", 1)
		d.Store(root, 2)
		root.Assert(d.Load(root) == 2, "plain read = %d", d.Load(root))
		a := root.Spawn("a", func(tt *Thread) {
			tt.Assert(d.Load(tt) == 2, "spawned reader sees parent's write")
		})
		root.Join(a)
	})
	if res.FailureCount != 0 {
		t.Fatal(res.FirstFailure())
	}
}

// TestVarNames: debug names round-trip.
func TestVarNames(t *testing.T) {
	res := Explore(Config{MaxExecutions: 1}, func(root *Thread) {
		x := root.NewAtomicInit("myatomic", 0)
		p := root.NewPlainInit("myplain", 0)
		m := root.NewMutex("mymutex")
		root.Assert(x.Name() == "myatomic" && p.Name() == "myplain" && m.Name() == "mymutex",
			"names wrong: %q %q %q", x.Name(), p.Name(), m.Name())
	})
	if res.FailureCount != 0 {
		t.Fatal(res.FirstFailure())
	}
}
