package checker

import (
	"repro/internal/memmodel"
)

// execPool recycles the per-execution state of one exploration shard —
// the System shell, thread structs, locations, actions, and clock
// snapshots — so replaying millions of executions allocates (amortized)
// nothing per execution instead of rebuilding everything from scratch.
//
// A pool is single-threaded: it belongs to exactly one shard (the unit
// of single-threaded exploration — see Config.NewScratch), the same way
// a Scratch value does. Pooling is invisible to results: a pooled run is
// bit-identical to an unpooled one (pinned by tests), because every
// recycled object is fully reset or fully overwritten before reuse.
//
// The load-bearing invariant is *lifetime*: pointers into pooled state —
// *memmodel.Action, Action.Clock, storeRec.sync — are valid only within
// the execution that produced them. Everything the checker retains
// across executions already obeys this (Failure renders its trace to a
// string at creation time; Result holds no actions), and the spec layer
// above keeps only derived data (fingerprints, counters) in its
// cross-execution caches. Config.DisablePooling opts out for any client
// that must retain actions.
type execPool struct {
	sys *System

	// threads and locs are supersets of any single execution's threads
	// and locations; newThread/newLocation take the next entry and reset
	// it instead of allocating. The per-execution System slices alias
	// prefixes of these.
	threads []*Thread
	locs    []*location

	// acts and clks are arenas of recycled actions and clock snapshots;
	// actIdx/clkIdx are the next free slots, rewound on reset.
	acts   []*memmodel.Action
	actIdx int
	clks   []*memmodel.ClockVector
	clkIdx int
}

// newExecPool returns an empty pool for one shard, or nil when pooling
// is disabled — every use site treats a nil pool as "allocate fresh".
func newExecPool(c *Config) *execPool {
	if c.DisablePooling {
		return nil
	}
	return &execPool{}
}

// take returns a System reset for the next execution. The first call
// builds the shell; later calls rewind it.
func (p *execPool) take(cfg *Config, ch chooser, execIndex int, scratch any) *System {
	if p.sys == nil {
		p.sys = &System{sleep: newSleepSet(), schedDone: make(chan struct{})}
	}
	s := p.sys
	if cfg.FastMode {
		// Return the previous run's live store-buffer actions and clocks
		// to the free lists before the location slices are truncated —
		// this (plus eviction during the run) is what keeps fast-mode
		// allocation amortized-zero per run. Must happen before s.locs
		// and s.threads are rewound below.
		s.sweepFast()
	}
	// Full overwrite of the shell except the pooled containers.
	s.cfg = cfg
	s.chooser = ch
	s.threads = s.threads[:0]
	s.locs = s.locs[:0]
	s.actions = s.actions[:0]
	s.scCount = 0
	s.storeEpoch = 0
	s.stepCount = 0
	s.execIndex = execIndex
	s.aborted = false
	s.draining = false
	s.pruned = false
	s.pruneReason = pruneNone
	s.failure = nil
	s.mutexCount = 0
	s.mutexes = s.mutexes[:0]
	s.symClasses = s.symClasses[:0]
	s.fpSC = fpPair{}
	s.redSpinBounds = 0
	s.redSymPrunes = 0
	s.actionCount = 0
	s.lastActID = 0
	s.evictions = 0
	s.specReport = SpecReport{}
	s.sleep.clear()
	s.Aux = nil
	s.Scratch = scratch
	s.pool = p
	p.actIdx = 0
	p.clkIdx = 0
	return s
}

// getThread returns the id-th thread struct, recycled and reset to run
// fn with a clock copied from src. The previous execution's goroutine
// has fully exited (drain guarantees it), so the channels are idle and
// reusable; only a fresh goroutine is started per execution.
func (p *execPool) getThread(s *System, id int, name string, fn func(*Thread), src *memmodel.ClockVector) *Thread {
	if id < len(p.threads) {
		t := p.threads[id]
		t.reset(s, name, fn, src)
		return t
	}
	t := newThreadStruct(s, id, name, fn, cloneOrNew(src))
	p.threads = append(p.threads, t)
	return t
}

// getLocation returns the id-th location struct, recycled and reset.
func (p *execPool) getLocation(id int) *location {
	if id < len(p.locs) {
		l := p.locs[id]
		l.reset()
		return l
	}
	l := &location{maxLoadRF: -1}
	p.locs = append(p.locs, l)
	return l
}

// getAction returns a recycled Action; the caller overwrites every field.
func (p *execPool) getAction() *memmodel.Action {
	if p.actIdx < len(p.acts) {
		a := p.acts[p.actIdx]
		p.actIdx++
		return a
	}
	a := &memmodel.Action{}
	p.acts = append(p.acts, a)
	p.actIdx++
	return a
}

// getClock returns a recycled clock holding a copy of src (empty when
// src is nil).
func (p *execPool) getClock(src *memmodel.ClockVector) *memmodel.ClockVector {
	var cv *memmodel.ClockVector
	if p.clkIdx < len(p.clks) {
		cv = p.clks[p.clkIdx]
	} else {
		cv = memmodel.NewClockVector()
		p.clks = append(p.clks, cv)
	}
	p.clkIdx++
	if src == nil {
		cv.Reset()
	} else {
		cv.CopyFrom(src)
	}
	return cv
}

// cloneOrNew deep-copies src, or returns a fresh clock when src is nil.
func cloneOrNew(src *memmodel.ClockVector) *memmodel.ClockVector {
	if src == nil {
		return memmodel.NewClockVector()
	}
	return src.Clone()
}
