package checker

import (
	"repro/internal/memmodel"
)

// Load performs an atomic load with the given memory order. The set of
// stores the load may read from is computed from the C/C++11 visibility
// rules (coherence floors, seq_cst floors); when more than one store is
// readable the exploration branches.
func (a *Atomic) Load(t *Thread, ord memmodel.MemOrder) memmodel.Value {
	t.schedulePoint(pendSig{class: sigMem, loc: a.loc.id, sc: ord.IsSeqCst()})
	return t.sys.doLoad(t, a.loc, ord)
}

// Store performs an atomic store with the given memory order.
func (a *Atomic) Store(t *Thread, ord memmodel.MemOrder, v memmodel.Value) {
	t.schedulePoint(pendSig{class: sigMem, loc: a.loc.id, write: true, sc: ord.IsSeqCst()})
	t.sys.doStore(t, a.loc, ord, v, nil)
}

// Exchange atomically replaces the value and returns the previous one.
func (a *Atomic) Exchange(t *Thread, ord memmodel.MemOrder, v memmodel.Value) memmodel.Value {
	t.schedulePoint(pendSig{class: sigMem, loc: a.loc.id, write: true, sc: ord.IsSeqCst()})
	return t.sys.doRMW(t, a.loc, ord, func(memmodel.Value) memmodel.Value { return v })
}

// FetchAdd atomically adds delta and returns the previous value.
func (a *Atomic) FetchAdd(t *Thread, ord memmodel.MemOrder, delta memmodel.Value) memmodel.Value {
	t.schedulePoint(pendSig{class: sigMem, loc: a.loc.id, write: true, sc: ord.IsSeqCst()})
	return t.sys.doRMW(t, a.loc, ord, func(old memmodel.Value) memmodel.Value { return old + delta })
}

// FetchSub atomically subtracts delta and returns the previous value.
func (a *Atomic) FetchSub(t *Thread, ord memmodel.MemOrder, delta memmodel.Value) memmodel.Value {
	t.schedulePoint(pendSig{class: sigMem, loc: a.loc.id, write: true, sc: ord.IsSeqCst()})
	return t.sys.doRMW(t, a.loc, ord, func(old memmodel.Value) memmodel.Value { return old - delta })
}

// CAS is compare_exchange_strong: it atomically replaces the value with
// desired if the current value equals expected. On failure it returns the
// value read with failOrd; a failing CAS behaves as a load and may read
// any visible store whose value differs from expected (C/C++11 allows a
// strong CAS to fail on a stale read even when the newest value matches).
func (a *Atomic) CAS(t *Thread, expected, desired memmodel.Value, succOrd, failOrd memmodel.MemOrder) (memmodel.Value, bool) {
	t.schedulePoint(pendSig{class: sigMem, loc: a.loc.id, write: true, sc: succOrd.IsSeqCst() || failOrd.IsSeqCst()})
	return t.sys.doCAS(t, a.loc, expected, desired, succOrd, failOrd)
}

// RawLoad performs a *non-atomic* load of an atomic location — the mixed
// atomic/non-atomic access pattern C11Tester's race detector targets
// (e.g. reading a counter outside its critical section). It conflicts
// with every concurrent write by another thread, atomic or not; such a
// pair is reported as a FailMixedRace. Like Plain accesses it is not a
// scheduling point.
func (a *Atomic) RawLoad(t *Thread) memmodel.Value {
	return t.sys.doRawLoad(t, a.loc)
}

// RawStore performs a *non-atomic* store to an atomic location. It
// conflicts with every concurrent access by another thread (atomic or
// not, read or write); the value joins the modification order so later
// atomic loads observe it.
func (a *Atomic) RawStore(t *Thread, v memmodel.Value) {
	t.sys.doRawStore(t, a.loc, v)
}

// Fence issues a stand-alone memory fence with the given order on behalf
// of the calling thread.
func Fence(t *Thread, ord memmodel.MemOrder) {
	t.schedulePoint(pendSig{class: sigFence, loc: -1, sc: ord.IsSeqCst()})
	t.sys.doFence(t, ord)
}

// Load performs a non-atomic load. It returns the value of the
// happens-before-latest store; a concurrent conflicting access is
// reported as a data race (built-in check).
func (p *Plain) Load(t *Thread) memmodel.Value {
	return t.sys.doPlainLoad(t, p.loc)
}

// Store performs a non-atomic store (race-detected).
func (p *Plain) Store(t *Thread, v memmodel.Value) {
	t.sys.doPlainStore(t, p.loc, v)
}

// Mutex is a simulated mutex with C/C++11 acquire/release semantics:
// Unlock releases the thread's clock, Lock acquires the last unlocker's.
type Mutex struct {
	sys   *System
	id    int
	name  string
	owner int
	clock *memmodel.ClockVector

	// Canonical identity and acquisition-order stream for the reduction
	// fingerprint (reduce.go); id is allocation-order-dependent, this
	// pair is not.
	canonA   uint64
	canonSeq uint32
	fp       fpPair
}

// Name returns the mutex's debug name.
func (m *Mutex) Name() string { return m.name }

// Lock blocks until the mutex is free, then acquires it.
func (m *Mutex) Lock(t *Thread) {
	t.pendSig = pendSig{class: sigMutex, loc: m.id, write: true}
	if t.skipNextPark && m.owner == -1 {
		t.skipNextPark = false
	} else {
		t.skipNextPark = false
		t.state = tsLock
		t.waitMutex = m
		t.park()
		t.waitMutex = nil
	}
	if m.owner != -1 {
		t.sys.failf(FailAPIMisuse, "mutex %s granted while held by T%d", m.name, m.owner)
	}
	m.owner = t.id
	t.sys.stepCount++
	t.tseq++
	t.clock.Set(t.id, t.tseq)
	if t.clock.Merge(m.clock) {
		t.clockEpoch++
	}
	t.sys.record(t, memmodel.KindLock, memmodel.Acquire, nil, 0)
	t.sys.fpMutexOp(m, fpOpLock, t, 1)
	t.spinClear()
	t.sys.sleep.wake(pendSig{class: sigMutex, loc: m.id, write: true})
}

// TryLock acquires the mutex if it is free and reports whether it did.
func (m *Mutex) TryLock(t *Thread) bool {
	t.schedulePoint(pendSig{class: sigMutex, loc: m.id, write: true})
	if m.owner != -1 {
		t.sys.stepCount++
		t.tseq++
		t.clock.Set(t.id, t.tseq)
		t.sys.record(t, memmodel.KindLock, memmodel.Relaxed, nil, 0)
		t.sys.fpMutexOp(m, fpOpTryLock, t, 0)
		t.spinClear()
		return false
	}
	m.owner = t.id
	t.sys.stepCount++
	t.tseq++
	t.clock.Set(t.id, t.tseq)
	if t.clock.Merge(m.clock) {
		t.clockEpoch++
	}
	t.sys.record(t, memmodel.KindLock, memmodel.Acquire, nil, 0)
	t.sys.fpMutexOp(m, fpOpTryLock, t, 1)
	t.spinClear()
	t.sys.sleep.wake(pendSig{class: sigMutex, loc: m.id, write: true})
	return true
}

// Unlock releases the mutex. Unlocking a mutex the thread does not hold is
// an API-misuse failure.
func (m *Mutex) Unlock(t *Thread) {
	t.schedulePoint(pendSig{class: sigMutex, loc: m.id, write: true})
	if m.owner != t.id {
		t.sys.failf(FailAPIMisuse, "T%d unlocks mutex %s held by T%d", t.id, m.name, m.owner)
	}
	t.sys.stepCount++
	t.tseq++
	t.clock.Set(t.id, t.tseq)
	if t.sys.cfg.FastMode && m.clock != nil {
		t.sys.freeClock(m.clock) // fast-mode snapshots are owned copies
	}
	m.clock = t.sys.snap(t.clock)
	m.owner = -1
	t.sys.storeEpoch++ // an unlock can unblock spinners and lock-waiters
	t.sys.record(t, memmodel.KindUnlock, memmodel.Release, nil, 0)
	t.sys.fpMutexOp(m, fpOpUnlock, t, 0)
	t.spinClear()
	t.sys.sleep.wake(pendSig{class: sigMutex, loc: m.id, write: true})
}
