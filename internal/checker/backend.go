package checker

import (
	"repro/internal/checker/model"
	"repro/internal/memmodel"
)

// consistency is the per-model rule seam carved out of the execution
// kernel: everything that decides which stores a load may observe, which
// synchronization edges an access creates, which actions join the seq_cst
// total order, and when two accesses race. The kernel (scheduling, the
// decision tree, replay, pooling, statistics) is model-independent and
// calls through this interface at every atomic access.
//
// Plain and raw accesses are deliberately outside the seam: in a
// race-free program they read the unique newest ordered store under every
// model the checker supports, and in a racy one the race itself is the
// reported outcome.
//
// Implementations must satisfy the contract documented in package
// internal/checker/model: floors are deterministic functions of the
// execution state (replay pinning), monotone as the execution extends
// (load compaction), and either O(1) without the floor cache or
// invalidated exactly by the (clockEpoch, storeEpoch, scIdx) key.
type consistency interface {
	id() model.ID

	// loadFloor computes the lowest modification-order index a load by t
	// at loc with order ord may read, and whether any readable store is
	// published to t. This is the hot path and may consult the floor
	// cache.
	loadFloor(s *System, t *Thread, loc *location, ord memmodel.MemOrder) (floor int, published bool)

	// scanFloor is loadFloor without the cache — the recomputation used
	// by DebugReplayCheck pin validation and the soundness tests.
	scanFloor(s *System, t *Thread, loc *location, ord memmodel.MemOrder) (floor int, published bool)

	// storeSync computes the release clock a new store by t with order
	// ord carries (nil when the store synchronizes nothing). rfSync is
	// the read-from store's clock for RMW release-sequence continuation.
	storeSync(s *System, t *Thread, ord memmodel.MemOrder, rfSync *memmodel.ClockVector) *memmodel.ClockVector

	// readSync applies the acquire side of t reading store st with order
	// ord.
	readSync(s *System, t *Thread, ord memmodel.MemOrder, st storeRec)

	// assignSC decides membership in the seq_cst total order S, stamping
	// act.SCIndex and advancing s.scCount for members.
	assignSC(s *System, act *memmodel.Action, ord memmodel.MemOrder)

	// races reports whether a recorded access (tid, tseq) of another
	// thread is unordered with thread t's current point — the race
	// predicate behind the mixed-access and plain-access checks.
	races(t *Thread, tid int, tseq uint32) bool
}

// backendFor resolves a model ID to its backend singleton. All backends
// are stateless; per-execution state stays on System/Thread/location.
func backendFor(id model.ID) consistency {
	switch id.OrDefault() {
	case model.SC:
		return scB
	case model.SCAtomics:
		return scAtomicsB
	default:
		return c11B
	}
}

var (
	c11B       = c11Backend{}
	scB        = scBackend{}
	scAtomicsB = scAtomicsBackend{}
)

// rules returns the active consistency backend. A nil backend (a System
// built outside Explore, e.g. directly in a test) means the default
// C/C++11 rules.
func (s *System) rules() consistency {
	if s.cfg.backend == nil {
		return c11B
	}
	return s.cfg.backend
}

// hbOrdered is the shared race predicate: an access (tid, tseq) by
// another thread races with t unless t's clock covers it. All three
// models define races through happens-before — they differ only in which
// synchronization edges build the clock, which the storeSync/readSync
// rules already encode.
func hbOrdered(t *Thread, tid int, tseq uint32) bool {
	return t.clock.Contains(tid, tseq)
}

// forcedLatest is the interleaving-semantics visibility rule: the only
// readable store is the modification-order-newest one, and a location
// with any store at all is considered published (visibility is global
// under SC, not gated on happens-before publication). O(1), so the floor
// cache is bypassed entirely — nothing to invalidate.
func forcedLatest(loc *location) (floor int, published bool) {
	return loc.lastStoreIdx(), loc.moNext() > 0
}

// c11Backend is the C/C++11 model exactly as before the seam existed:
// per-location coherence, release/acquire synchronization, release
// sequences, fences, and the seq_cst order S, with the floor cache and
// load compaction in their original form. Every method delegates to the
// pre-existing System rule to keep the output bit-identical.
type c11Backend struct{}

func (c11Backend) id() model.ID { return model.C11 }

func (c11Backend) loadFloor(s *System, t *Thread, loc *location, ord memmodel.MemOrder) (int, bool) {
	return s.visibleFloor(t, loc, ord)
}

func (c11Backend) scanFloor(s *System, t *Thread, loc *location, ord memmodel.MemOrder) (int, bool) {
	return s.visibleFloorScan(t, loc, s.effectiveSCIdx(t, ord))
}

func (c11Backend) storeSync(s *System, t *Thread, ord memmodel.MemOrder, rfSync *memmodel.ClockVector) *memmodel.ClockVector {
	return s.releaseClockFor(t, ord, rfSync)
}

func (c11Backend) readSync(s *System, t *Thread, ord memmodel.MemOrder, st storeRec) {
	s.applyReadSync(t, ord, st)
}

func (c11Backend) assignSC(s *System, act *memmodel.Action, ord memmodel.MemOrder) {
	s.assignSCIndex(act, ord)
}

func (c11Backend) races(t *Thread, tid int, tseq uint32) bool {
	return !hbOrdered(t, tid, tseq)
}

// scBackend is plain sequential consistency (interleaving semantics):
// every load reads the newest store, every store carries the writer's
// full clock, and every read merges it — so there is no stale-read
// branching and the exploration space collapses to thread interleavings.
// Membership in S is left as in C11 (only seq_cst-ordered actions):
// stamping every action with a global index would make operations on
// different locations observably order-dependent, which both defeats the
// sleep-set reduction and is invisible to interleaving semantics anyway —
// ordering between communicating operations is already in the clocks.
type scBackend struct{}

func (scBackend) id() model.ID { return model.SC }

func (scBackend) loadFloor(s *System, t *Thread, loc *location, ord memmodel.MemOrder) (int, bool) {
	return forcedLatest(loc)
}

func (scBackend) scanFloor(s *System, t *Thread, loc *location, ord memmodel.MemOrder) (int, bool) {
	return forcedLatest(loc)
}

func (scBackend) storeSync(s *System, t *Thread, ord memmodel.MemOrder, rfSync *memmodel.ClockVector) *memmodel.ClockVector {
	return s.releaseClockFor(t, memmodel.SeqCst, rfSync)
}

func (scBackend) readSync(s *System, t *Thread, ord memmodel.MemOrder, st storeRec) {
	s.applyReadSync(t, memmodel.SeqCst, st)
}

func (scBackend) assignSC(s *System, act *memmodel.Action, ord memmodel.MemOrder) {
	s.assignSCIndex(act, ord)
}

func (scBackend) races(t *Thread, tid int, tseq uint32) bool {
	return !hbOrdered(t, tid, tseq)
}

// scAtomicsBackend is the strengthened-SC-atomics model (Batty et al.,
// "Overhauling SC Atomics in C11 and OpenCL"): seq_cst accesses get
// interleaving semantics — a seq_cst load (or the failure load of a CAS
// with a seq_cst failure order) reads the newest store — layered over the
// unmodified C/C++11 rules for relaxed/acquire/release accesses and for
// synchronization. The forced-latest path is O(1) and bypasses the floor
// cache; the non-seq_cst path is exactly the cached C11 computation, so
// it inherits C11's invalidation argument unchanged.
type scAtomicsBackend struct{}

func (scAtomicsBackend) id() model.ID { return model.SCAtomics }

func (scAtomicsBackend) loadFloor(s *System, t *Thread, loc *location, ord memmodel.MemOrder) (int, bool) {
	if ord.IsSeqCst() {
		return forcedLatest(loc)
	}
	return s.visibleFloor(t, loc, ord)
}

func (scAtomicsBackend) scanFloor(s *System, t *Thread, loc *location, ord memmodel.MemOrder) (int, bool) {
	if ord.IsSeqCst() {
		return forcedLatest(loc)
	}
	return s.visibleFloorScan(t, loc, s.effectiveSCIdx(t, ord))
}

func (scAtomicsBackend) storeSync(s *System, t *Thread, ord memmodel.MemOrder, rfSync *memmodel.ClockVector) *memmodel.ClockVector {
	return s.releaseClockFor(t, ord, rfSync)
}

func (scAtomicsBackend) readSync(s *System, t *Thread, ord memmodel.MemOrder, st storeRec) {
	s.applyReadSync(t, ord, st)
}

func (scAtomicsBackend) assignSC(s *System, act *memmodel.Action, ord memmodel.MemOrder) {
	s.assignSCIndex(act, ord)
}

func (scAtomicsBackend) races(t *Thread, tid int, tseq uint32) bool {
	return !hbOrdered(t, tid, tseq)
}
