package checker

import (
	"sync"
	"sync/atomic"
	"time"
)

// This file implements the work-stealing DFS engine (the parallel
// explorer for Parallelism > 1, and the substrate for checkpoint/resume
// at any parallelism). Each worker owns a Chase-Lev deque (wsdeque.go) of
// frontier tasks (frontier.go): it pops its own bottom — descending into
// the subtree it just opened, the sequential DFS order — and steals from
// the top of a victim's deque when dry, taking the shallowest (and so
// statistically largest) outstanding subtree. Results stay bit-identical
// to sequential DFS because every task's result is folded at its
// canonical decision-path position (foldList), never in completion order.

// wsEngine is one work-stealing exploration.
type wsEngine struct {
	c    *Config
	root func(*Thread)
	b    *bounds
	fold *foldList

	deques []*wsDeque

	// unfinished counts created-but-not-finished tasks; the last decrement
	// to zero ends the run. Incremented before a task is published,
	// decremented when it completes or is abandoned (budget/stop).
	unfinished atomic.Int64
	// steals and busy are scheduler telemetry (Stats.Steals /
	// Stats.WorkerBusy); both are seeded from a resumed checkpoint.
	steals atomic.Int64
	busy   atomic.Int64

	// stop requests a graceful halt: workers finish their current
	// execution and exit, leaving unrun tasks pending in the fold list
	// (where a final checkpoint picks them up).
	stop atomic.Bool

	// Per-root-branch shard state (Config.NewScratch), created lazily
	// under scratchMu so the hook runs exactly once per branch — the same
	// count a sequential run produces.
	scratchMu sync.Mutex
	scratches map[int]any

	// lot parks idle workers: version increments on every publish (and on
	// stop/done) so a sweep that raced a push never sleeps through it.
	lot struct {
		mu      sync.Mutex
		cond    *sync.Cond
		version uint64
		done    bool
	}

	// resumed engine-level counters (frontier high-water mark of the
	// prior run segments).
	priorMaxFrontier int
	// startTime anchors this segment's wall clock (checkpoints add the
	// resumed base on top).
	startTime time.Time
}

// exploreWorkSteal runs the engine; c has defaults applied. The returned
// Result's Elapsed is owned by exploreParallel (the engine only adds the
// resumed base).
func exploreWorkSteal(c *Config, root func(*Thread)) *Result {
	workers := c.Parallelism
	if workers < 1 {
		workers = 1
	}
	e := &wsEngine{
		c:         c,
		root:      root,
		fold:      newFoldList(c.MaxFailures),
		deques:    make([]*wsDeque, workers),
		scratches: map[int]any{},
		startTime: time.Now(),
	}
	e.lot.cond = sync.NewCond(&e.lot.mu)
	for w := range e.deques {
		e.deques[w] = newWSDeque()
	}

	already := 0
	var baseElapsed time.Duration
	if cp := c.ResumeFrom; cp != nil {
		already = e.restore(cp)
		baseElapsed = cp.Elapsed
	} else {
		rootTask := &wsTask{}
		e.fold.appendCell(&foldCell{task: rootTask})
		e.deques[0].push(rootTask)
		e.unfinished.Store(1)
	}
	e.b = newBounds(c.MaxExecutions, already)
	defer e.b.cancel()
	if c.progress != nil {
		c.progress.attachEngine(&e.steals, &e.fold.pending)
	}
	if e.unfinished.Load() == 0 {
		// Resumed a completed run: nothing outstanding.
		e.lot.done = true
	}

	watcherStop := make(chan struct{})
	var watchers sync.WaitGroup
	if c.Interrupt != nil {
		watchers.Add(1)
		go func() {
			defer watchers.Done()
			select {
			case <-c.Interrupt:
				e.requestStop()
			case <-watcherStop:
			}
		}()
	}
	if c.Checkpoint != nil && c.CheckpointEvery > 0 {
		watchers.Add(1)
		go func() {
			defer watchers.Done()
			tick := time.NewTicker(c.CheckpointEvery)
			defer tick.Stop()
			for {
				select {
				case <-tick.C:
					c.Checkpoint(e.checkpoint(baseElapsed))
				case <-watcherStop:
					return
				}
			}
		}()
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			e.worker(w)
		}(w)
	}
	wg.Wait()
	close(watcherStop)
	watchers.Wait()

	if c.Checkpoint != nil {
		// Final snapshot: with a drained frontier it is a single done
		// cell (resuming it just returns the result); otherwise it is the
		// outstanding frontier a resumed run continues from.
		c.Checkpoint(e.checkpoint(baseElapsed))
	}

	res := e.fold.foldResult()
	res.Stats.Steals += int(e.steals.Load())
	if hw := e.fold.frontierHighWater(); hw > res.Stats.MaxFrontier {
		res.Stats.MaxFrontier = hw
	}
	if e.priorMaxFrontier > res.Stats.MaxFrontier {
		res.Stats.MaxFrontier = e.priorMaxFrontier
	}
	res.Stats.WorkerBusy += time.Duration(e.busy.Load())
	if c.rfSeen != nil {
		// Exact final class count: the per-run snapshots folded from
		// worker results are monotone reads of the shared registry and may
		// trail it (see runOne); the workers have all stopped here.
		res.Stats.RFClasses = int(c.rfSeen.classes.Load())
	}
	// Exhausted mirrors the sequential loop: true only when the frontier
	// drained without a stop and without consuming the entire execution
	// budget (sequential DFS returns before testing advance() once the
	// budget is spent, so an exactly-budget-sized space reports false).
	res.Exhausted = e.fold.pendingCount() == 0 && !e.b.stopped() &&
		(c.MaxExecutions == 0 || res.Executions < c.MaxExecutions)
	res.Elapsed = baseElapsed
	return res
}

// worker is one scheduler loop: drain the own deque bottom-first, then
// steal; park when the whole frontier is in flight elsewhere.
func (e *wsEngine) worker(w int) {
	d := newDFSChooser(e.c)
	pool := newExecPool(e.c)
	dq := e.deques[w]
	for {
		if e.stop.Load() {
			return
		}
		t := dq.popBottom()
		if t == nil {
			t = e.acquire(w)
			if t == nil {
				return
			}
		}
		e.runTask(d, pool, dq, t)
	}
}

// runTask explores one frontier entry: one execution plus the publication
// of the sibling branches it discovered.
func (e *wsEngine) runTask(d *dfsChooser, pool *execPool, dq *wsDeque, t *wsTask) {
	if e.stop.Load() || !e.b.tryStart() {
		// Budget exhausted or stop requested: leave the cell pending (the
		// checkpoint will carry it) and fold nothing.
		e.requestStop()
		e.taskDone()
		return
	}
	busyStart := time.Now()
	prefix := t.path()
	d.resetTo(prefix)
	local := &Result{}
	d.stats = &local.Stats
	scratch := e.scratchFor(t.rootBranch())
	failed := runOne(e.c, local, d, e.root, scratch, pool)
	subs := spawnSubtasks(t, d.decisions, len(prefix))
	e.fold.complete(t, local, subs)
	e.unfinished.Add(int64(len(subs)))
	// Push in reverse fold order so the owner's next popBottom is the
	// deepest fresh node's next branch — sequential DFS's next leaf —
	// while thieves steal the shallowest from the top.
	for i := len(subs) - 1; i >= 0; i-- {
		dq.push(subs[i])
	}
	if len(subs) > 0 {
		e.notifyWork()
	}
	e.busy.Add(int64(time.Since(busyStart)))
	if failed && e.c.StopAtFirst {
		e.b.cancel()
		e.requestStop()
	}
	e.taskDone()
}

// spawnSubtasks builds the frontier entries for the sibling branches of
// every decision node freshly opened by the execution (decisions beyond
// prefixLen), in fold order: deepest node first, branches ascending —
// the order sequential DFS visits them after this leaf.
func spawnSubtasks(t *wsTask, decisions []decision, prefixLen int) []*wsTask {
	fresh := decisions[prefixLen:]
	if len(fresh) == 0 {
		return nil
	}
	// Materialize the fresh chain (every fresh node was taken at branch
	// 0); siblings share the parent pointer and the cands slice.
	chain := make([]*fnode, len(fresh))
	parent := t.node
	for i := range fresh {
		nd := &fresh[i]
		fn := &fnode{parent: parent, depth: prefixLen + i, kind: nd.kind, n: nd.n, branch: nd.chosen}
		if nd.kind == 's' {
			fn.cands = append([]int(nil), nd.cands...)
		}
		chain[i] = fn
		parent = fn
	}
	var subs []*wsTask
	for i := len(chain) - 1; i >= 0; i-- {
		fn := chain[i]
		for b := fn.branch + 1; b < fn.branchCount(); b++ {
			sib := &fnode{parent: fn.parent, depth: fn.depth, kind: fn.kind, n: fn.n, cands: fn.cands, branch: b}
			subs = append(subs, &wsTask{node: sib})
		}
	}
	return subs
}

// scratchFor returns the shard scratch for a root branch, invoking
// Config.NewScratch exactly once per branch. Multiple workers may explore
// one branch concurrently, so the scratch value must tolerate concurrent
// use (see Config.NewScratch).
func (e *wsEngine) scratchFor(branch int) any {
	if e.c.NewScratch == nil {
		return nil
	}
	e.scratchMu.Lock()
	defer e.scratchMu.Unlock()
	s, ok := e.scratches[branch]
	if !ok {
		s = e.c.NewScratch()
		e.scratches[branch] = s
	}
	return s
}

// acquire sweeps the other deques for a steal, parking between sweeps.
// Returns nil when the exploration is over (done or stopped).
func (e *wsEngine) acquire(w int) *wsTask {
	for {
		e.lot.mu.Lock()
		v := e.lot.version
		done := e.lot.done
		e.lot.mu.Unlock()
		if done || e.stop.Load() {
			return nil
		}
		if t := e.sweep(w); t != nil {
			return t
		}
		e.lot.mu.Lock()
		if e.lot.done || e.stop.Load() {
			e.lot.mu.Unlock()
			return nil
		}
		if e.lot.version == v {
			// No publish since the sweep started: safe to sleep.
			e.lot.cond.Wait()
		}
		e.lot.mu.Unlock()
	}
}

// sweep tries to steal once from every other worker's deque.
func (e *wsEngine) sweep(w int) *wsTask {
	n := len(e.deques)
	for i := 1; i < n; i++ {
		v := (w + i) % n
		if t := e.deques[v].steal(); t != nil {
			e.steals.Add(1)
			return t
		}
	}
	return nil
}

// notifyWork wakes parked workers after a publish.
func (e *wsEngine) notifyWork() {
	e.lot.mu.Lock()
	e.lot.version++
	e.lot.cond.Broadcast()
	e.lot.mu.Unlock()
}

// requestStop asks every worker to halt after its current execution.
func (e *wsEngine) requestStop() {
	e.stop.Store(true)
	e.lot.mu.Lock()
	e.lot.version++
	e.lot.cond.Broadcast()
	e.lot.mu.Unlock()
}

// taskDone retires one task; the last retirement ends the run.
func (e *wsEngine) taskDone() {
	if e.unfinished.Add(-1) == 0 {
		e.lot.mu.Lock()
		e.lot.done = true
		e.lot.cond.Broadcast()
		e.lot.mu.Unlock()
	}
}
