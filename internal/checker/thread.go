package checker

import (
	"fmt"

	"repro/internal/memmodel"
)

// threadState is the scheduling state of a simulated thread.
type threadState uint8

const (
	tsRunning  threadState = iota // holds the baton
	tsParked                      // waiting at a schedule point, always runnable
	tsYield                       // parked in a spin loop, runnable after a state change
	tsLock                        // parked waiting for a mutex
	tsJoin                        // parked waiting for a thread to finish
	tsFinished                    // fn returned (or the run was aborted)
)

// abortRun is the sentinel panic value used to unwind a simulated thread
// when the current execution is abandoned.
type abortRun struct{}

// Thread is the execution context handed to simulated-thread functions.
// All simulated memory operations take the Thread as their first argument;
// each such operation is a scheduling point where the checker may switch
// to another thread or branch the exploration.
type Thread struct {
	sys  *System
	id   int
	name string

	// clock is the thread's current happens-before clock (always
	// includes all of the thread's own actions).
	clock *memmodel.ClockVector
	// clockEpoch counts the external merges that changed clock (acquire
	// reads, acquire fences, joins, lock acquisitions). Raising the
	// thread's own entry does not bump it: the visibility caches keyed on
	// the epoch only depend on the thread's view of *other* threads'
	// actions (its own stores move the global storeEpoch, its own loads
	// are folded into the cache in place).
	clockEpoch uint64
	// tseq is the per-thread action counter.
	tseq uint32

	// relFence is the clock at the last release fence, nil if none.
	relFence *memmodel.ClockVector
	// acqPending accumulates the release clocks of stores read by
	// relaxed loads; an acquire fence merges it into clock.
	acqPending *memmodel.ClockVector
	// lastSCFence is the SC index of the thread's last seq_cst fence,
	// or -1.
	lastSCFence int

	// lastAction is the most recent action the thread performed
	// (used by the spec layer's ordering-point annotations).
	lastAction *memmodel.Action

	// yieldEpoch is the store epoch observed at the last Yield.
	yieldEpoch uint64
	// lastResortEpoch is the store epoch at which the scheduler last
	// woke this thread as a last resort (^uint64(0) = never).
	lastResortEpoch uint64

	state       threadState
	waitMutex   *Mutex
	waitThread  *Thread
	finishClock *memmodel.ClockVector
	// skipNextPark elides the park of the next visible operation; set
	// after the start-of-thread grant so that starting a thread and its
	// first operation consume a single scheduling step (a sound
	// reduction: thread start has no visible effect).
	skipNextPark bool
	// pendSig describes the visible operation the thread is parked on,
	// for the sleep-set dependency check.
	pendSig pendSig
	// recentReads records the loads since the thread last woke from a
	// yield. When exploration gets stuck, a yielded thread whose recent
	// reads have unconsumed newer stores marks the execution as unfair
	// (pruned); otherwise the stuck state is a genuine livelock.
	recentReads []readRef

	// Reduction state (reduce.go). canon is the schedule-independent
	// canonical thread id (0 = not yet assigned); spawnKey the spawn-tree
	// derived id computed at Spawn; spawnSeq counts this thread's spawns
	// and allocSeq its location allocations (both feed canonical identity
	// of children/locations); classIdx is the symmetry class (-1 = none);
	// fp is the thread's operation-stream hash. The spin* fields drive
	// the spinloop/await bound: spinPure tracks whether the current
	// Yield-delimited iteration has performed any side effect, spinMuts
	// the spec-monitor mutation count at its start, spinIterPure the
	// frozen verdict for the iteration that just yielded, and
	// spinLoc/spinRF the armed single-location re-read bound.
	canon        uint64
	spawnKey     uint64
	spawnSeq     uint32
	allocSeq     uint32
	classIdx     int
	fp           fpPair
	spinPure     bool
	spinIterPure bool
	spinMuts     uint64
	spinLoc      *location
	spinRF       int

	fn     func(*Thread)
	resume chan struct{}
	parked chan struct{}
}

// newThreadStruct builds a fresh Thread. clock ownership passes to the
// thread.
func newThreadStruct(s *System, id int, name string, fn func(*Thread), clock *memmodel.ClockVector) *Thread {
	return &Thread{
		sys:             s,
		id:              id,
		name:            name,
		clock:           clock,
		lastSCFence:     -1,
		lastResortEpoch: ^uint64(0),
		acqPending:      memmodel.NewClockVector(),
		classIdx:        -1,
		fn:              fn,
		resume:          make(chan struct{}),
		parked:          make(chan struct{}),
	}
}

// reset returns a pooled Thread to its just-constructed state, keeping
// the id, the channels (the previous execution's goroutine has fully
// exited, so they are idle), and every clock's storage. src seeds the
// clock (nil = empty).
func (t *Thread) reset(s *System, name string, fn func(*Thread), src *memmodel.ClockVector) {
	t.sys = s
	t.name = name
	if src == nil {
		t.clock.Reset()
	} else {
		t.clock.CopyFrom(src)
	}
	t.clockEpoch = 0
	t.tseq = 0
	t.relFence = nil
	t.acqPending.Reset()
	t.lastSCFence = -1
	t.lastAction = nil
	t.yieldEpoch = 0
	t.lastResortEpoch = ^uint64(0)
	t.state = tsRunning
	t.waitMutex = nil
	t.waitThread = nil
	t.finishClock = nil
	t.skipNextPark = false
	t.pendSig = pendSig{}
	t.recentReads = t.recentReads[:0]
	t.canon = 0
	t.spawnKey = 0
	t.spawnSeq = 0
	t.allocSeq = 0
	t.classIdx = -1
	t.fp = fpPair{}
	t.spinPure = false
	t.spinIterPure = false
	t.spinMuts = 0
	t.spinLoc = nil
	t.spinRF = 0
	t.fn = fn
}

// ID returns the thread id (0 for the root thread).
func (t *Thread) ID() int { return t.id }

// Name returns the thread's debug name.
func (t *Thread) Name() string { return t.name }

// Sys returns the system the thread runs under; the spec layer uses it to
// reach shared per-execution state.
func (t *Thread) Sys() *System { return t.sys }

// LastAction returns the most recent action the thread performed, or nil.
// The spec layer uses it to resolve ordering-point annotations ("the
// atomic operation that immediately precedes the annotation").
func (t *Thread) LastAction() *memmodel.Action { return t.lastAction }

// Clock returns a copy of the thread's current happens-before clock.
func (t *Thread) Clock() *memmodel.ClockVector { return t.clock.Clone() }

// park is a scheduling point: the caller must have set t.state (and any
// wait fields) first. The scheduling decision runs inline in the calling
// goroutine — the baton passes directly from thread to thread without a
// central scheduler goroutine in between, so re-picking the current
// thread costs no context switch at all and switching threads costs one
// channel handoff instead of two.
func (t *Thread) park() {
	s := t.sys
	next := s.nextThread()
	if next == t {
		t.state = tsRunning
		return
	}
	if next == nil {
		s.schedDone <- struct{}{}
	} else {
		next.resume <- struct{}{}
	}
	<-t.resume
	if s.aborted {
		panic(abortRun{})
	}
	t.state = tsRunning
}

// schedulePoint parks the thread as plainly runnable, announcing the
// operation it is about to perform. Every visible operation calls it
// before executing.
func (t *Thread) schedulePoint(sig pendSig) {
	t.pendSig = sig
	if t.skipNextPark {
		t.skipNextPark = false
		return
	}
	t.state = tsParked
	t.park()
}

// Spawn creates and starts a child thread running fn. The child inherits
// the parent's happens-before clock (thread creation synchronizes).
// Spawn returns immediately; use Join to wait for the child.
//
// Spawn is not a scheduling point: the child cannot run before the
// spawner's next park anyway, so parking here would only inflate the
// state space.
func (t *Thread) Spawn(name string, fn func(*Thread)) *Thread {
	t.sys.stepCount++
	t.tseq++
	t.clock.Set(t.id, t.tseq)
	t.sys.record(t, memmodel.KindThreadCreate, memmodel.Relaxed, nil, 0)
	child := t.sys.newThread(name, fn, t.clock)
	if t.sys.cfg.Reduce.Symmetry {
		t.sys.registerSymmetry(child, fn)
	}
	if t.sys.cfg.rfSeen != nil {
		t.spawnSeq++
		child.spawnKey = spawnCanon(t.canon, t.spawnSeq)
		t.sys.fpThreadOp(t, fpOpSpawn, nil, child.spawnKey, 0)
	}
	t.spinClear()
	return child
}

// Join blocks until child has finished and merges its final clock
// (thread join synchronizes).
func (t *Thread) Join(child *Thread) {
	if t.skipNextPark && child.state == tsFinished {
		t.skipNextPark = false
	} else {
		t.skipNextPark = false
		t.pendSig = pendSig{class: sigNone, loc: -1}
		t.state = tsJoin
		t.waitThread = child
		t.park()
		t.waitThread = nil
	}
	t.sys.stepCount++
	t.tseq++
	t.clock.Set(t.id, t.tseq)
	if t.clock.Merge(child.finishClock) {
		t.clockEpoch++
	}
	t.sys.record(t, memmodel.KindThreadJoin, memmodel.Relaxed, nil, 0)
	t.sys.fpThreadOp(t, fpOpJoin, nil, t.sys.canonOf(child.id), 0)
	t.spinClear()
}

// Yield parks the thread until some other thread changes shared state
// (performs a store or an unlock). Spin loops must call it after an
// unsuccessful iteration; the checker uses it both for fairness and to
// keep the execution space finite (CDSChecker relies on the same idiom).
func (t *Thread) Yield() {
	t.sys.stepCount++
	t.tseq++
	t.clock.Set(t.id, t.tseq)
	t.sys.record(t, memmodel.KindYield, memmodel.Relaxed, nil, 0)
	t.sys.fpThreadOp(t, fpOpYield, nil, 0, 0)
	t.yieldEpoch = t.sys.storeEpoch
	// Freeze the completed iteration's purity verdict and arm the
	// re-read bound while recentReads still describes it (reduce.go).
	t.spinPark()
	t.pendSig = pendSig{class: sigYield, loc: -1}
	t.state = tsYield
	t.park()
	// A new spin iteration begins: forget the reads that led here, and
	// fold the wake-up into the next operation's scheduling step (the
	// wake-up itself performs nothing visible).
	t.recentReads = t.recentReads[:0]
	t.skipNextPark = true
	t.spinWake()
}

// Assert reports a failure of kind FailAssertion when cond is false.
// The current execution is abandoned.
func (t *Thread) Assert(cond bool, format string, args ...any) {
	if !cond {
		t.sys.failf(FailAssertion, format, args...)
	}
}

// NewAtomic creates a fresh atomic location with no initial value;
// loading it before any store is an uninitialized-load error (a
// CDSChecker built-in check).
func (t *Thread) NewAtomic(name string) *Atomic {
	return t.sys.newAtomic(name)
}

// NewAtomicInit creates an atomic location and initializes it with a
// relaxed store by the calling thread, the moral equivalent of C++'s
// atomic_init in a constructor: visibility to other threads is inherited
// from the happens-before edges the program establishes (e.g. Spawn).
func (t *Thread) NewAtomicInit(name string, v memmodel.Value) *Atomic {
	a := t.sys.newAtomic(name)
	a.Store(t, memmodel.Relaxed, v)
	return a
}

// NewPlain creates a fresh non-atomic location (race-detected).
func (t *Thread) NewPlain(name string) *Plain {
	return t.sys.newPlain(name)
}

// NewPlainInit creates a non-atomic location initialized by the calling
// thread.
func (t *Thread) NewPlainInit(name string, v memmodel.Value) *Plain {
	p := t.sys.newPlain(name)
	p.Store(t, v)
	return p
}

// NewMutex creates a mutex.
func (t *Thread) NewMutex(name string) *Mutex {
	t.sys.mutexCount++
	m := &Mutex{sys: t.sys, id: t.sys.mutexCount, name: name, owner: -1}
	if t.sys.cfg.rfSeen != nil {
		// Canonical identity, like newLocation's: (creator canonical id,
		// per-creator allocation index).
		t.allocSeq++
		m.canonA, m.canonSeq = t.sys.canonOf(t.id), t.allocSeq
	}
	t.sys.mutexes = append(t.sys.mutexes, m)
	return m
}

// threadMain is the goroutine body of a simulated thread.
func (t *Thread) threadMain() {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(abortRun); !ok {
				// A real panic in user code: surface it on the
				// scheduler side rather than crashing the process
				// with a half-useful goroutine dump.
				t.sys.failure = &Failure{
					Kind:      FailAssertion,
					Msg:       fmt.Sprintf("panic in thread %d (%s): %v", t.id, t.name, r),
					Execution: t.sys.execIndex,
					ActionID:  t.sys.lastActionID(),
				}
				t.sys.aborted = true
			}
		}
		t.finishClock = t.clock.Share()
		t.state = tsFinished
		// A finishing (or unwinding) thread holds the baton: pass it on
		// exactly as park would, unless reap is already collecting
		// goroutines (it owns the baton then). The parked send is the
		// exit signal reap consumes before the Thread can be pooled.
		if !t.sys.draining {
			if next := t.sys.nextThread(); next != nil {
				next.resume <- struct{}{}
			} else {
				t.sys.schedDone <- struct{}{}
			}
		}
		t.parked <- struct{}{}
	}()

	// Born parked (newThread sets tsParked before the goroutine starts):
	// block until a scheduling decision picks this thread.
	<-t.resume
	if t.sys.aborted {
		panic(abortRun{})
	}
	t.state = tsRunning

	t.tseq++
	t.clock.Set(t.id, t.tseq)
	t.sys.record(t, memmodel.KindThreadStart, memmodel.Relaxed, nil, 0)

	// The start grant also covers the thread's first visible operation.
	t.skipNextPark = true
	t.fn(t)
	t.skipNextPark = false

	t.tseq++
	t.clock.Set(t.id, t.tseq)
	t.sys.record(t, memmodel.KindThreadFinish, memmodel.Relaxed, nil, 0)
}
