package checker

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestScratchShardAlignment pins the shard contract of Config.NewScratch:
// exhaustive sequential and parallel DFS must create the same number of
// scratches (one per root-decision branch), because per-shard counters
// derived from scratch state (the spec-check cache) are only bit-identical
// across modes if the shard boundaries coincide.
func TestScratchShardAlignment(t *testing.T) {
	count := func(parallelism int) int {
		var n atomic.Int64
		cfg := Config{
			Parallelism: parallelism,
			NewScratch:  func() any { n.Add(1); return new(int) },
		}
		res := Explore(cfg, manyExecProgram)
		if !res.Exhausted {
			t.Fatalf("parallelism %d: not exhausted: %v", parallelism, res)
		}
		return int(n.Load())
	}
	seq := count(1)
	par := count(4)
	if seq < 2 {
		t.Fatalf("program too small: only %d shards sequentially", seq)
	}
	if seq != par {
		t.Errorf("shard counts differ: sequential %d, parallel %d", seq, par)
	}
}

// TestScratchVisibleInHooks: the shard's scratch value is installed on the
// System before OnRunStart and stays for the whole execution, and one
// scratch serves many executions (it outlives the execution, unlike Aux).
func TestScratchVisibleInHooks(t *testing.T) {
	var mu sync.Mutex
	perScratch := map[*int]int{}
	cfg := Config{
		NewScratch: func() any { return new(int) },
		OnExecution: func(sys *System) []*Failure {
			p, ok := sys.Scratch.(*int)
			if !ok {
				t.Error("Scratch not visible in OnExecution")
				return nil
			}
			mu.Lock()
			perScratch[p]++
			mu.Unlock()
			return nil
		},
	}
	res := Explore(cfg, manyExecProgram)
	if !res.Exhausted {
		t.Fatalf("not exhausted: %v", res)
	}
	total := 0
	reused := false
	for _, c := range perScratch {
		total += c
		if c > 1 {
			reused = true
		}
	}
	if total != res.Feasible {
		t.Errorf("scratch seen in %d executions, want %d (OnExecution runs per feasible execution)", total, res.Feasible)
	}
	if !reused {
		t.Error("no scratch served more than one execution; shard reuse is broken")
	}
}

// TestNoScratchByDefault: without a NewScratch hook the Scratch slot stays
// nil (callers type-assert it, so a stray value would be harmless but a
// nil check is the documented fast path).
func TestNoScratchByDefault(t *testing.T) {
	cfg := Config{
		OnExecution: func(sys *System) []*Failure {
			if sys.Scratch != nil {
				t.Error("Scratch should be nil without a NewScratch hook")
			}
			return nil
		},
	}
	Explore(cfg, manyExecProgram)
}
