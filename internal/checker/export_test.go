package checker

import (
	"strings"
	"testing"

	"repro/internal/memmodel"
)

// TestExportDOT: the DOT export contains every thread cluster, the
// accessed locations, and a reads-from edge.
func TestExportDOT(t *testing.T) {
	var dot string
	cfg := Config{
		MaxExecutions: 1,
		OnExecution: func(sys *System) []*Failure {
			dot = ExportDOT(sys)
			return nil
		},
	}
	res := Explore(cfg, func(root *Thread) {
		x := root.NewAtomicInit("shared", 0)
		a := root.Spawn("a", func(tt *Thread) { x.Store(tt, memmodel.Release, 1) })
		b := root.Spawn("b", func(tt *Thread) { _ = x.Load(tt, memmodel.Acquire) })
		root.Join(a)
		root.Join(b)
	})
	if res.Feasible == 0 {
		t.Fatalf("no feasible execution: %v", res)
	}
	for _, want := range []string{
		"digraph execution",
		"cluster_t0", "cluster_t1", "cluster_t2",
		"shared",
		`label="rf"`,
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT export missing %q:\n%s", want, dot)
		}
	}
}

// TestExportDOTFenceAndPlain: fences and plain accesses render too.
func TestExportDOTFenceAndPlain(t *testing.T) {
	var dot string
	cfg := Config{
		MaxExecutions: 1,
		OnExecution: func(sys *System) []*Failure {
			dot = ExportDOT(sys)
			return nil
		},
	}
	Explore(cfg, func(root *Thread) {
		p := root.NewPlainInit("plainloc", 0)
		p.Store(root, 3)
		_ = p.Load(root)
		Fence(root, memmodel.SeqCst)
	})
	if !strings.Contains(dot, "plainloc") || !strings.Contains(dot, "fence(seq_cst)") {
		t.Errorf("DOT export missing plain/fence nodes:\n%s", dot)
	}
}
