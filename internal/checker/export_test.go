package checker

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"repro/internal/memmodel"
)

// TestExportDOT: the DOT export contains every thread cluster, the
// accessed locations, and a reads-from edge.
func TestExportDOT(t *testing.T) {
	var dot string
	cfg := Config{
		MaxExecutions: 1,
		OnExecution: func(sys *System) []*Failure {
			dot = ExportDOT(sys)
			return nil
		},
	}
	res := Explore(cfg, func(root *Thread) {
		x := root.NewAtomicInit("shared", 0)
		a := root.Spawn("a", func(tt *Thread) { x.Store(tt, memmodel.Release, 1) })
		b := root.Spawn("b", func(tt *Thread) { _ = x.Load(tt, memmodel.Acquire) })
		root.Join(a)
		root.Join(b)
	})
	if res.Feasible == 0 {
		t.Fatalf("no feasible execution: %v", res)
	}
	for _, want := range []string{
		"digraph execution",
		"cluster_t0", "cluster_t1", "cluster_t2",
		"shared",
		`label="rf"`,
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT export missing %q:\n%s", want, dot)
		}
	}
}

// TestExportDOTRelations: across an exhaustive exploration of a
// release/acquire message-passing shape with a seq_cst fence, the DOT
// export draws every cross-thread relation at least once — rf, mo, sw
// (acquire load reading a release store), and the fence's sc edges —
// and the legend comment is present.
func TestExportDOTRelations(t *testing.T) {
	var all strings.Builder
	cfg := Config{
		OnExecution: func(sys *System) []*Failure {
			all.WriteString(ExportDOT(sys))
			return nil
		},
	}
	res := Explore(cfg, func(root *Thread) {
		x := root.NewAtomicInit("x", 0)
		a := root.Spawn("a", func(tt *Thread) {
			x.Store(tt, memmodel.Release, 1)
			Fence(tt, memmodel.SeqCst)
			x.Store(tt, memmodel.SeqCst, 2)
		})
		b := root.Spawn("b", func(tt *Thread) {
			_ = x.Load(tt, memmodel.Acquire)
		})
		root.Join(a)
		root.Join(b)
	})
	if res.Feasible == 0 {
		t.Fatalf("no feasible execution: %v", res)
	}
	dot := all.String()
	for _, want := range []string{
		"// edges: sb dotted; rf red; mo blue; sw green bold; sc(fence) gray dashed",
		`label="rf"`, `label="mo"`, `label="sw"`, `label="sc"`,
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("no execution's DOT export contained %q", want)
		}
	}
}

// TestExportDOTSortedChains: with two threads interleaving several
// actions each, every sequenced-before edge runs from a lower action ID
// to a higher one — the per-thread chains are ID-sorted regardless of
// trace interleaving.
func TestExportDOTSortedChains(t *testing.T) {
	checked := 0
	cfg := Config{
		OnExecution: func(sys *System) []*Failure {
			for _, line := range strings.Split(ExportDOT(sys), "\n") {
				if !strings.Contains(line, "style=dotted") {
					continue
				}
				var from, to int
				if _, err := fmt.Sscanf(strings.TrimSpace(line), "a%d -> a%d", &from, &to); err != nil {
					t.Fatalf("unparseable sb edge %q: %v", line, err)
				}
				if from >= to {
					t.Errorf("sb edge a%d -> a%d not in ID order:\n%s", from, to, line)
				}
				checked++
			}
			return nil
		},
	}
	Explore(cfg, func(root *Thread) {
		x := root.NewAtomicInit("x", 0)
		y := root.NewAtomicInit("y", 0)
		a := root.Spawn("a", func(tt *Thread) {
			x.Store(tt, memmodel.Relaxed, 1)
			y.Store(tt, memmodel.Relaxed, 1)
			_ = x.Load(tt, memmodel.Relaxed)
		})
		b := root.Spawn("b", func(tt *Thread) {
			y.Store(tt, memmodel.Relaxed, 2)
			x.Store(tt, memmodel.Relaxed, 2)
			_ = y.Load(tt, memmodel.Relaxed)
		})
		root.Join(a)
		root.Join(b)
	})
	if checked == 0 {
		t.Fatal("no sequenced-before edges examined")
	}
}

// TestExportDOTFailureHighlight: a failing execution's failure site is
// drawn filled red.
func TestExportDOTFailureHighlight(t *testing.T) {
	var dot string
	cfg := Config{
		MaxExecutions: 1,
		OnExecution: func(sys *System) []*Failure {
			// Attach a failure at the trace's last action, as failf does,
			// and export — the in-package equivalent of dumping a real
			// failing execution.
			sys.failure = &Failure{Kind: FailAssertion, Msg: "boom", ActionID: sys.lastActionID()}
			dot = ExportDOT(sys)
			return nil
		},
	}
	Explore(cfg, func(root *Thread) {
		x := root.NewAtomicInit("x", 0)
		x.Store(root, memmodel.Relaxed, 1)
	})
	if !strings.Contains(dot, "style=filled, fillcolor=red, fontcolor=white") {
		t.Errorf("failure action not highlighted:\n%s", dot)
	}
}

// TestExportJSON: the JSON trace round-trips and carries the relations —
// rf on reading loads, mo on stores, sc on seq_cst actions, memory
// orders on atomics and fences.
func TestExportJSON(t *testing.T) {
	var blob []byte
	cfg := Config{
		MaxExecutions: 1,
		OnExecution: func(sys *System) []*Failure {
			var err error
			if blob, err = ExportJSON(sys); err != nil {
				t.Fatalf("ExportJSON: %v", err)
			}
			return nil
		},
	}
	Explore(cfg, func(root *Thread) {
		p := root.NewPlainInit("plain", 0)
		x := root.NewAtomicInit("x", 0)
		x.Store(root, memmodel.SeqCst, 7)
		_ = x.Load(root, memmodel.Acquire)
		Fence(root, memmodel.SeqCst)
		p.Store(root, 1)
	})
	var tr TraceJSON
	if err := json.Unmarshal(blob, &tr); err != nil {
		t.Fatalf("trace does not round-trip: %v\n%s", err, blob)
	}
	if tr.Execution != 1 || tr.Threads == 0 || len(tr.Actions) == 0 {
		t.Fatalf("implausible trace header: %+v", tr)
	}
	var sawRF, sawMO, sawSC, sawOrder, sawPlain bool
	for _, a := range tr.Actions {
		if a.RF != nil {
			sawRF = true
		}
		if a.MO != nil {
			sawMO = true
		}
		if a.SC != nil {
			sawSC = true
		}
		if a.Order != "" {
			sawOrder = true
		}
		if a.Loc == "plain" && a.Order == "" {
			sawPlain = true
		}
	}
	if !sawRF || !sawMO || !sawSC || !sawOrder || !sawPlain {
		t.Errorf("trace missing relations (rf=%v mo=%v sc=%v order=%v plain=%v):\n%s",
			sawRF, sawMO, sawSC, sawOrder, sawPlain, blob)
	}
	if tr.Failure != nil {
		t.Errorf("clean execution should have no failure: %+v", tr.Failure)
	}
}

// TestExportDOTFenceAndPlain: fences and plain accesses render too.
func TestExportDOTFenceAndPlain(t *testing.T) {
	var dot string
	cfg := Config{
		MaxExecutions: 1,
		OnExecution: func(sys *System) []*Failure {
			dot = ExportDOT(sys)
			return nil
		},
	}
	Explore(cfg, func(root *Thread) {
		p := root.NewPlainInit("plainloc", 0)
		p.Store(root, 3)
		_ = p.Load(root)
		Fence(root, memmodel.SeqCst)
	})
	if !strings.Contains(dot, "plainloc") || !strings.Contains(dot, "fence(seq_cst)") {
		t.Errorf("DOT export missing plain/fence nodes:\n%s", dot)
	}
}
