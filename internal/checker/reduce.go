package checker

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"unsafe"
)

// This file implements the execution-equivalence reduction layer: the
// rf-class state fingerprint, the shared seen-set that cuts subtrees
// whose frozen prefix can only re-derive an already-witnessed class, the
// thread-symmetry machinery, and the spinloop/await bound. DESIGN.md §5c
// documents the equivalence key and the soundness argument; the short
// version lives on each piece below.
//
// Soundness skeleton (shared by every prune in this file): the state
// fingerprint is a function of everything that can influence the
// remainder of an execution — the execution graph built so far (per-
// thread operation streams with reads-from edges, per-location
// modification orders, the SC order, per-mutex acquisition orders), the
// schedule-invariant thread states, the step budget already spent, and
// the spec monitor's recorded calls (via the AuxFingerprinter hook, since
// call records are order-sensitive). Two prefixes with equal fingerprints
// therefore have *identical* sets of possible continuations, and a
// continuation produces byte-identical spec fingerprints and failure
// kinds from either. Pruning the second prefix at the branch point loses
// nothing as long as the first one's subtree is (or will be) fully
// explored. That holds by induction on the step count — it strictly
// increases into a subtree, so a chain of "pruned against" references can
// never cycle back to a shallower state — with one caveat for sleep sets:
// a registered state was only explored under *its* sleep set, so a later
// instance may be pruned only when its own sleep set is a superset of a
// registered one (Godefroid's classical condition for combining sleep
// sets with state caching). The seen-set stores sleep signatures per
// state key and applies exactly that subset test.

// ReduceSet selects the execution-equivalence reductions to apply.
// Zero value means no reduction (the pre-reduction explorer).
type ReduceSet struct {
	// RF prunes decision subtrees whose frozen prefix re-derives an
	// already-witnessed execution-graph equivalence class.
	RF bool
	// Symmetry canonicalizes identical thread roots and prunes schedule
	// branches that merely permute never-started symmetric threads.
	Symmetry bool
	// Spinloop bounds side-effect-free read-loop iterations: a thread
	// about to re-read the same store it just read (with nothing but
	// Yield in between) awaits a newer visible store instead.
	Spinloop bool
}

// ReduceAll enables every reduction.
func ReduceAll() ReduceSet { return ReduceSet{RF: true, Symmetry: true, Spinloop: true} }

// ParseReduce parses a -reduce flag value: "none" (or empty) and "all",
// or a comma-separated subset of rf, symmetry, spinloop.
func ParseReduce(s string) (ReduceSet, error) {
	switch strings.TrimSpace(s) {
	case "", "none":
		return ReduceSet{}, nil
	case "all":
		return ReduceAll(), nil
	}
	var r ReduceSet
	for _, part := range strings.Split(s, ",") {
		switch strings.TrimSpace(part) {
		case "rf":
			r.RF = true
		case "symmetry":
			r.Symmetry = true
		case "spinloop":
			r.Spinloop = true
		default:
			return ReduceSet{}, fmt.Errorf("unknown reduction %q (valid: rf, symmetry, spinloop, all, none)", strings.TrimSpace(part))
		}
	}
	return r, nil
}

// Any reports whether any reduction is enabled.
func (r ReduceSet) Any() bool { return r.RF || r.Symmetry || r.Spinloop }

// String renders the canonical flag form: "none" or a subset of
// "rf,symmetry,spinloop" in that order.
func (r ReduceSet) String() string {
	if !r.Any() {
		return "none"
	}
	parts := make([]string, 0, 3)
	if r.RF {
		parts = append(parts, "rf")
	}
	if r.Symmetry {
		parts = append(parts, "symmetry")
	}
	if r.Spinloop {
		parts = append(parts, "spinloop")
	}
	return strings.Join(parts, ",")
}

// AuxFingerprinter is implemented by System.Aux owners (the spec
// monitor) that carry spec-layer state the reduction fingerprint must
// respect: the monitor's call record is order-sensitive (call IDs are
// assigned in global begin order), so two prefixes may only merge when
// their records match exactly.
type AuxFingerprinter interface {
	ReduceFingerprint() (uint64, uint64)
}

// mix64 is the splitmix64 finalizer — a cheap full-avalanche bijection
// used both to chain stream hashes and to derive canonical thread ids.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// fpPair is a two-lane order-sensitive hash stream. Two independent
// lanes make accidental 64-bit collisions (which would cause an unsound
// prune) a 128-bit event.
type fpPair struct{ a, b uint64 }

const (
	fpLaneA = 0x9e3779b97f4a7c15
	fpLaneB = 0xc2b2ae3d27d4eb4f
)

// push chains one word into the stream (order-sensitive).
func (p *fpPair) push(w uint64) {
	p.a = mix64(p.a ^ mix64(w^fpLaneA))
	p.b = mix64(p.b ^ mix64(w^fpLaneB))
}

// fpKey is a combined state fingerprint.
type fpKey struct{ a, b uint64 }

// add folds one multiset element into the key (commutative, so map
// iteration order never leaks into the fingerprint).
func (k *fpKey) add(e fpKey) {
	k.a += e.a
	k.b += e.b
}

// fpEntry hashes a tagged tuple into one multiset element.
func fpEntry(words ...uint64) fpKey {
	var p fpPair
	for _, w := range words {
		p.push(w)
	}
	return fpKey{p.a, p.b}
}

// Multiset-entry tags. Distinct tags keep structurally different state
// components from aliasing.
const (
	fpTagThread uint64 = iota + 1
	fpTagUnstarted
	fpTagLoc
	fpTagMutex
	fpTagSC
	fpTagAux
	fpTagSite
)

// Thread-stream opcodes.
const (
	fpOpLoad uint64 = iota + 1
	fpOpStore
	fpOpRMW
	fpOpCASFail
	fpOpFence
	fpOpPlainStore
	fpOpRawStore
	fpOpYield
	fpOpSpawn
	fpOpJoin
	fpOpLock
	fpOpTryLock
	fpOpUnlock
)

// rfShards is the seen-set shard count (mutex-striped, like the spec
// cache's per-shard locking).
const rfShards = 16

// rfSeenSet is the shared registry of witnessed state fingerprints. The
// prefix map holds branch-point states with the sleep signatures they
// were registered under; the complete map holds finished feasible
// executions and backs the RFClasses counter.
type rfSeenSet struct {
	classes atomic.Int64
	shards  [rfShards]rfShard
}

type rfShard struct {
	mu sync.Mutex
	// prefix maps a branch-point state key to the sleep signatures it has
	// been registered (and therefore explored) under. Each signature is a
	// sorted slice of per-sleeper entry hashes.
	prefix   map[fpKey][][]uint64
	complete map[fpKey]struct{}
}

func newRFSeenSet() *rfSeenSet {
	s := &rfSeenSet{}
	for i := range s.shards {
		s.shards[i].prefix = map[fpKey][][]uint64{}
		s.shards[i].complete = map[fpKey]struct{}{}
	}
	return s
}

func (s *rfSeenSet) shard(k fpKey) *rfShard { return &s.shards[k.a%rfShards] }

// subsetOf reports whether sorted slice a is a subset of sorted slice b.
func subsetOf(a, b []uint64) bool {
	if len(a) > len(b) {
		return false
	}
	j := 0
	for _, x := range a {
		for j < len(b) && b[j] < x {
			j++
		}
		if j >= len(b) || b[j] != x {
			return false
		}
		j++
	}
	return true
}

// seenPrefix is the atomic check-and-register for a branch-point state.
// It returns true (prune) when the state was already registered under a
// sleep signature no larger than the caller's — the registered instance
// explores a superset of the caller's continuations. Otherwise it
// registers the caller (who must then explore) and returns false. The
// check and the insert share one critical section, so exactly one of two
// racing equal-state workers explores; the loser prunes.
func (s *rfSeenSet) seenPrefix(k fpKey, sleep []uint64) bool {
	sh := s.shard(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	list := sh.prefix[k]
	for _, reg := range list {
		if subsetOf(reg, sleep) {
			return true
		}
	}
	// Register under our (incomparable or smaller) sleep signature,
	// dropping registered supersets we now dominate.
	kept := list[:0]
	for _, reg := range list {
		if !subsetOf(sleep, reg) {
			kept = append(kept, reg)
		}
	}
	own := make([]uint64, len(sleep))
	copy(own, sleep)
	sh.prefix[k] = append(kept, own)
	return false
}

// addComplete registers a feasible execution's end-state fingerprint and
// counts distinct equivalence classes.
func (s *rfSeenSet) addComplete(k fpKey) {
	sh := s.shard(k)
	sh.mu.Lock()
	_, seen := sh.complete[k]
	if !seen {
		sh.complete[k] = struct{}{}
	}
	sh.mu.Unlock()
	if !seen {
		s.classes.Add(1)
	}
}

// symClass groups threads spawned with an identical closure (same
// funcval, i.e. same code and same captured environment). Members are
// interchangeable until they first act; canonical slot ids are handed
// out in first-action order, which is exactly the renaming that makes
// permuted schedules of symmetric threads collide in the fingerprint.
type symClass struct {
	key      unsafe.Pointer
	tids     []int
	assigned int
}

// fpRootCanon is the root thread's canonical id (never 0 — zero means
// "not yet assigned" for symmetry-class members).
const fpRootCanon = 0x5ca1ab1e0ddba11

// registerSymmetry classifies a freshly spawned thread by its closure
// identity. Closure pointers are only compared within one execution —
// they are per-execution addresses and never enter a fingerprint.
func (s *System) registerSymmetry(t *Thread, fn func(*Thread)) {
	key := *(*unsafe.Pointer)(unsafe.Pointer(&fn))
	for i := range s.symClasses {
		if s.symClasses[i].key == key {
			s.symClasses[i].tids = append(s.symClasses[i].tids, t.id)
			t.classIdx = i
			return
		}
	}
	s.symClasses = append(s.symClasses, symClass{key: key, tids: []int{t.id}})
	t.classIdx = len(s.symClasses) - 1
}

// symTwin reports whether t is a member of a multi-member symmetry
// class (and therefore interchangeable with its never-started twins).
func (s *System) symTwin(t *Thread) bool {
	return s.cfg.Reduce.Symmetry && t.classIdx >= 0 && len(s.symClasses[t.classIdx].tids) > 1
}

// assignCanon gives t its canonical id on first action. Members of a
// multi-member symmetry class draw slots in first-action order (the
// canonicalizing renaming); other spawned threads take their spawn-tree
// id; the root thread (never spawned) takes the fixed root id.
func (s *System) assignCanon(t *Thread) {
	if t.canon != 0 {
		return
	}
	switch {
	case s.symTwin(t):
		cl := &s.symClasses[t.classIdx]
		t.canon = mix64(fpTagUnstarted ^ mix64(uint64(t.classIdx)<<20|uint64(cl.assigned)))
		cl.assigned++
	case t.spawnKey != 0:
		t.canon = t.spawnKey
	default:
		t.canon = fpRootCanon
	}
}

// spawnCanon derives the canonical id of a non-symmetric child: a hash
// chain over (parent canonical id, per-parent spawn index), which is
// schedule-independent — unlike raw thread ids, whose assignment order
// leaks the interleaving of spawns on different parents.
func spawnCanon(parent uint64, seq uint32) uint64 {
	c := mix64(parent ^ mix64(uint64(seq)+fpLaneA))
	if c == 0 {
		c = 1
	}
	return c
}

// canonOf returns the canonical id of a thread whether or not it has
// acted: assigned id, else (for a never-started symmetry twin) a class
// id shared with its interchangeable twins, else the spawn-tree id, else
// the root id.
func (s *System) canonOf(tid int) uint64 {
	t := s.threads[tid]
	if t.canon != 0 {
		return t.canon
	}
	if s.symTwin(t) {
		return mix64(fpTagUnstarted ^ uint64(t.classIdx+1))
	}
	if t.spawnKey != 0 {
		return t.spawnKey
	}
	return fpRootCanon
}

// --- incremental stream hooks (called from system.go / ops.go) ---

// fpThreadOp appends one operation to t's history stream. loc may be
// nil for fences/yields; a/b carry op-specific payload (rf index and
// value for loads, mo index and value for stores, ...).
func (s *System) fpThreadOp(t *Thread, op uint64, loc *location, a, b uint64) {
	if s.cfg.rfSeen == nil {
		return
	}
	t.fp.push(op)
	if loc != nil {
		t.fp.push(loc.canonA)
		t.fp.push(uint64(loc.canonSeq))
	} else {
		t.fp.push(0)
		t.fp.push(0)
	}
	t.fp.push(a)
	t.fp.push(b)
}

// fpMoOp appends one store to loc's modification-order stream.
func (s *System) fpMoOp(loc *location, op uint64, writer *Thread, val uint64) {
	if s.cfg.rfSeen == nil {
		return
	}
	loc.fpMo.push(op)
	loc.fpMo.push(writer.canon)
	loc.fpMo.push(uint64(writer.tseq))
	loc.fpMo.push(val)
}

// fpSCOp appends one action to the global seq_cst order stream. Hooked
// in assignSCIndex, so whatever SC order the active model backend
// induces is captured automatically.
func (s *System) fpSCOp(t *Thread, kind uint64) {
	if s.cfg.rfSeen == nil {
		return
	}
	s.fpSC.push(kind)
	s.fpSC.push(t.canon)
	s.fpSC.push(uint64(t.tseq))
}

// fpMutexOp appends one acquisition-order event to m's stream and
// mirrors it into the actor's thread stream.
func (s *System) fpMutexOp(m *Mutex, op uint64, t *Thread, outcome uint64) {
	if s.cfg.rfSeen == nil {
		return
	}
	m.fp.push(op)
	m.fp.push(t.canon)
	m.fp.push(uint64(t.tseq))
	m.fp.push(outcome)
	t.fp.push(op)
	t.fp.push(m.canonA)
	t.fp.push(uint64(m.canonSeq))
	t.fp.push(outcome)
	t.fp.push(0)
}

// --- state fingerprint ---

// threadEnabledNow mirrors enabledThreads' schedulability rules for a
// single thread (plus running/finished states, which enabledThreads
// never sees).
func (s *System) threadEnabledNow(t *Thread) bool {
	switch t.state {
	case tsRunning, tsParked:
		return true
	case tsYield:
		return s.storeEpoch > t.yieldEpoch
	case tsLock:
		return t.waitMutex.owner == -1
	case tsJoin:
		return t.waitThread.state == tsFinished
	}
	return false
}

// threadResource identifies what a blocked thread waits on (the wait
// target changes the continuations even while the thread is disabled).
func (s *System) threadResource(t *Thread) (uint64, uint64) {
	switch t.state {
	case tsLock:
		return t.waitMutex.canonA, uint64(t.waitMutex.canonSeq)
	case tsJoin:
		return s.canonOf(t.waitThread.id), ^uint64(0)
	}
	return 0, 0
}

func boolW(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// stateFingerprint combines the current state into one key: per-thread
// streams and schedule-invariant thread state, per-location mo streams,
// per-mutex streams, the SC stream, the spec monitor's record, the step
// budget spent, and the decision site itself (kind + active thread +
// location). Everything is folded commutatively, so registry iteration
// order is irrelevant; each component is an order-sensitive stream
// internally.
func (s *System) stateFingerprint(kind byte, active *Thread, loc *location) fpKey {
	var acc fpKey
	for _, t := range s.threads {
		enabled := boolW(s.threadEnabledNow(t))
		if t.canon == 0 && s.symTwin(t) {
			// Never-started symmetry-class member: interchangeable with
			// its unstarted twins, so the entry carries the class, not
			// the identity (the commutative fold handles multiplicity).
			acc.add(fpEntry(fpTagUnstarted, uint64(t.classIdx), uint64(t.state), enabled))
			continue
		}
		ra, rb := s.threadResource(t)
		acc.add(fpEntry(fpTagThread, s.canonOf(t.id), t.fp.a, t.fp.b,
			uint64(t.state), uint64(t.tseq), enabled,
			boolW(t.lastResortEpoch == s.storeEpoch), boolW(t.skipNextPark), ra, rb))
	}
	for _, l := range s.locs {
		acc.add(fpEntry(fpTagLoc, l.canonA, uint64(l.canonSeq), l.fpMo.a, l.fpMo.b))
	}
	for _, m := range s.mutexes {
		acc.add(fpEntry(fpTagMutex, m.canonA, uint64(m.canonSeq), m.fp.a, m.fp.b))
	}
	acc.add(fpEntry(fpTagSC, s.fpSC.a, s.fpSC.b))
	if af, ok := s.Aux.(AuxFingerprinter); ok {
		a, b := af.ReduceFingerprint()
		acc.add(fpEntry(fpTagAux, a, b))
	}
	var siteT, siteA, siteB uint64
	if active != nil {
		siteT = s.canonOf(active.id)
	}
	if loc != nil {
		siteA, siteB = loc.canonA, uint64(loc.canonSeq)
	}
	acc.add(fpEntry(fpTagSite, uint64(kind), uint64(s.stepCount), siteT, siteA, siteB))
	return acc
}

// sleepSignature renders the current sleep set as a sorted slice of
// per-sleeper entry hashes (canonical thread id + pending-op signature
// with canonical resource identity). The returned slice aliases the
// system's scratch buffer — seenPrefix copies what it keeps.
func (s *System) sleepSignature() []uint64 {
	buf := s.fpSleepBuf[:0]
	for tid, sig := range s.sleep.m {
		ra, rb := s.sleepResource(sig)
		e := fpEntry(s.canonOf(tid), uint64(sig.class), ra, rb, boolW(sig.write), boolW(sig.sc))
		buf = append(buf, e.a^e.b)
	}
	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	s.fpSleepBuf = buf
	return buf
}

// sleepResource maps a pending-op signature's resource to canonical
// identity: sigMem carries a location id, sigMutex a 1-based mutex id.
func (s *System) sleepResource(sig pendSig) (uint64, uint64) {
	switch sig.class {
	case sigMem:
		if sig.loc >= 0 && sig.loc < len(s.locs) {
			l := s.locs[sig.loc]
			return l.canonA, uint64(l.canonSeq)
		}
	case sigMutex:
		if sig.loc >= 1 && sig.loc <= len(s.mutexes) {
			m := s.mutexes[sig.loc-1]
			return m.canonA, uint64(m.canonSeq)
		}
	}
	return ^uint64(0), ^uint64(0)
}

// rfStateSeen is the branch-point check: has an equal state (under a no-
// larger sleep set) already been registered? The first caller registers
// and must explore; later equal-state callers prune. Callers gate on a
// fresh decision (never a replay — a replayed branch node was registered
// by its own first visit and must not self-prune).
func (s *System) rfStateSeen(kind byte, active *Thread, loc *location) bool {
	if s.cfg.rfSeen == nil {
		return false
	}
	return s.cfg.rfSeen.seenPrefix(s.stateFingerprint(kind, active, loc), s.sleepSignature())
}

// rfCheck is the branch-point prune for value-nondeterminism sites: at a
// fresh decision with real fan-out, cut the subtree when an equal state
// was already registered (under a no-larger sleep set). Replayed sites
// are never re-checked — the branch node registered itself on its first
// visit and must not prune its own siblings' replays.
func (s *System) rfCheck(kind byte, t *Thread, loc *location, n int) {
	if n <= 1 || !s.cfg.Reduce.RF || s.cfg.rfSeen == nil || !s.chooser.freshDecision() {
		return
	}
	if s.rfStateSeen(kind, t, loc) {
		s.pruneReason = pruneRFEquiv
		s.prune()
	}
}

// countSpinBound counts one spinloop floor bump, once per branch node
// (fresh decisions only, so parallel and sequential runs agree).
func (s *System) countSpinBound() {
	if s.chooser.freshDecision() {
		s.redSpinBounds++
	}
}

// noteCompleteExecution registers a finished feasible execution's
// equivalence class.
func (s *System) noteCompleteExecution() {
	if s.cfg.rfSeen == nil {
		return
	}
	s.cfg.rfSeen.addComplete(s.stateFingerprint('e', nil, nil))
}

// --- spinloop/await bounding ---
//
// A spin iteration is the code a thread runs between two Yields. The
// Yield contract already declares such iterations to be retry loops
// ("spin loops must call it after an unsuccessful iteration"); the
// reduction additionally *verifies* an iteration was observably pure —
// no stores, RMWs, successful CAS, fences, mutex ops, allocations,
// spawns/joins, raw accesses, and no spec-monitor mutations by the
// thread (tracked via AuxMutTracker) — before treating its repetition
// as redundant. A pure iteration is a deterministic function of the
// values its loads read, so if none of the read locations has a newer
// store, re-running it provably re-reads the same stores, re-derives
// the same local computation, and re-yields: GenMC's spin-assume
// argument. (A loop that counts iterations and acts on the count is the
// one program shape this misreads; DESIGN.md §5c documents that caveat
// — such loops need -reduce without spinloop.)
//
// Two mechanisms build on that proof:
//
//   - spinBlocked: a yielded thread whose completed iteration was pure
//     and none of whose read locations has a newer store is excluded
//     from scheduling (awaiting, GenMC-style) even after storeEpoch
//     moved for unrelated locations. The unreduced explorer instead
//     schedules the futile iteration at every interleaving point.
//   - spinBound: when the pure iteration read exactly one location, the
//     next iteration's re-read of it may skip the store it already saw
//     if a newer one is visible — reading the old store only reproduces
//     the previous iteration. (With multiple locations the stale
//     re-read can combine with a fresh read elsewhere into a genuinely
//     new outcome, so the bound is restricted to single-location
//     iterations.)

// AuxMutTracker is implemented by System.Aux owners that mutate spec
// state outside the checker's view (the CDSSpec monitor): it reports a
// per-thread mutation counter so the spinloop reduction can verify an
// iteration made no spec-layer mutations.
type AuxMutTracker interface {
	ReduceThreadMuts(tid int) uint64
}

// auxThreadMuts reads the Aux owner's per-thread mutation counter (0
// when no tracker is installed — litmus programs without a monitor).
func (s *System) auxThreadMuts(tid int) uint64 {
	if m, ok := s.Aux.(AuxMutTracker); ok {
		return m.ReduceThreadMuts(tid)
	}
	return 0
}

// spinClear marks the current iteration impure. Called from every
// side-effecting operation; cheap enough to run unconditionally.
func (t *Thread) spinClear() {
	t.spinPure = false
	t.spinLoc = nil
}

// spinPark freezes the purity verdict for the iteration that is about
// to yield, and arms the single-location re-read bound when it applies.
// Called from Yield before parking; recentReads still holds the
// completed iteration's loads.
func (t *Thread) spinPark() {
	t.spinIterPure = t.spinPure && t.sys.auxThreadMuts(t.id) == t.spinMuts
	t.spinLoc = nil
	if !t.spinIterPure || len(t.recentReads) == 0 {
		return
	}
	loc, rf := t.recentReads[0].loc, t.recentReads[0].rfMO
	for _, r := range t.recentReads[1:] {
		if r.loc != loc {
			return
		}
		if r.rfMO > rf {
			rf = r.rfMO
		}
	}
	t.spinLoc, t.spinRF = loc, rf
}

// spinWake starts purity tracking for the next iteration. Called from
// Yield after waking (recentReads has just been reset).
func (t *Thread) spinWake() {
	t.spinPure = true
	t.spinMuts = t.sys.auxThreadMuts(t.id)
}

// spinBound bumps a load's visibility floor past the store the previous
// (pure, single-location) iteration read when a newer store is visible.
// The caller resolves and clears the armed bound deterministically on
// both the fresh and the replayed path (see doLoad), so replays remain
// bit-identical.
func (s *System) spinBound(t *Thread, loc *location, prevRF, floor int) int {
	if loc.lastStoreIdx() > prevRF && prevRF+1 > floor {
		return prevRF + 1
	}
	return floor
}

// reduceCandidates applies the scheduling-side reductions to pickThread's
// candidate list, filtering in place. It is a deterministic function of
// the execution state, so replays and frozen-prefix re-drives recompute
// identical candidate sets at every node. fresh gates the prune counters:
// counted once per fresh visit, never on replays, so sequential and
// parallel totals agree.
//
// Spinloop: provably futile spinners (spinBlocked) are dropped — unless
// that would drop every candidate, in which case the list is kept whole
// so a futile spinner still runs its last identical iteration and the
// livelock/deadlock detection in reportStuck fires as without reduction.
//
// Symmetry: among the never-started members of one symmetry class, only
// the first may take its first step at this node. Starting twin B before
// twin A yields an execution identical to the A-first one up to the
// canonical thread renaming, under the symmetry contract (DESIGN.md §5c):
// same-closure threads are treated symmetrically by the rest of the
// program (batch spawn, batch join, no effects between the joins).
func (s *System) reduceCandidates(cands []int, fresh bool) []int {
	if s.cfg.Reduce.Spinloop {
		live := 0
		for _, tid := range cands {
			if !s.spinBlocked(s.threads[tid]) {
				live++
			}
		}
		if live > 0 && live < len(cands) {
			if fresh {
				s.redSpinBounds += len(cands) - live
			}
			out := cands[:0]
			for _, tid := range cands {
				if !s.spinBlocked(s.threads[tid]) {
					out = append(out, tid)
				}
			}
			cands = out
		}
	}
	if s.cfg.Reduce.Symmetry && len(s.symClasses) > 0 && len(s.symClasses) <= 64 {
		var seen uint64
		out := cands[:0]
		for _, tid := range cands {
			t := s.threads[tid]
			if t.tseq == 0 && s.symTwin(t) {
				if seen&(1<<uint(t.classIdx)) != 0 {
					if fresh {
						s.redSymPrunes++
					}
					continue
				}
				seen |= 1 << uint(t.classIdx)
			}
			out = append(out, tid)
		}
		cands = out
	}
	return cands
}

// spinBlocked reports whether scheduling yielded thread t is provably
// futile: its completed iteration was pure and none of the locations it
// read has a newer store, so re-running it re-derives the identical
// iteration and re-yields. The check is a deterministic function of the
// state (recentReads is frozen while the thread is parked), so replays
// and checkpoint resumes see identical candidate sets.
func (s *System) spinBlocked(t *Thread) bool {
	if !s.cfg.Reduce.Spinloop || t.state != tsYield || !t.spinIterPure || len(t.recentReads) == 0 {
		return false
	}
	for _, r := range t.recentReads {
		if r.loc.lastStoreIdx() != r.rfMO {
			return false
		}
	}
	return true
}
