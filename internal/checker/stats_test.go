package checker

import (
	"testing"
	"time"

	"repro/internal/memmodel"
)

// TestStepBoundPrunedAccounting is the regression test for the
// step-bound accounting bug: an execution that exceeds MaxSteps must be
// counted exactly once, as Pruned — never as a failure that could leak
// into FailureCount and the Figure 8 detection channels.
func TestStepBoundPrunedAccounting(t *testing.T) {
	res := Explore(Config{MaxSteps: 10}, func(root *Thread) {
		x := root.NewAtomicInit("x", 0)
		for i := 0; i < 20; i++ {
			x.Store(root, memmodel.Relaxed, memmodel.Value(i))
		}
	})
	if res.Executions == 0 {
		t.Fatalf("explored nothing: %v", res)
	}
	if res.Pruned == 0 || res.Stats.PrunedStepBound == 0 {
		t.Errorf("step-bound overrun not counted as pruned: %v stats %+v", res, res.Stats)
	}
	if res.FailureCount != 0 || len(res.Failures) != 0 {
		t.Errorf("step-bound overrun leaked into failures: %v", res.Failures)
	}
	for _, f := range res.Failures {
		if f.Kind == FailTooManySteps {
			t.Errorf("FailTooManySteps must never be retained as a failure: %v", f)
		}
	}
	if res.Executions != res.Feasible+res.Pruned {
		t.Errorf("executions=%d != feasible=%d + pruned=%d", res.Executions, res.Feasible, res.Pruned)
	}
}

// TestStepBoundPrunedAccountingMultiThread: same invariant when the
// bound trips across an exhaustive multi-threaded exploration, where the
// old code's create-failure-then-prune sequence was easiest to get wrong.
func TestStepBoundPrunedAccountingMultiThread(t *testing.T) {
	res := Explore(Config{MaxSteps: 6}, manyExecProgram)
	if res.Stats.PrunedStepBound == 0 {
		t.Fatalf("expected step-bound prunes with MaxSteps=6: %+v", res.Stats)
	}
	if res.FailureCount != 0 {
		t.Errorf("step-bound prunes leaked into FailureCount=%d: %v", res.FailureCount, res.Failures)
	}
	if sum := res.Stats.PrunedSleepSet + res.Stats.PrunedFairness + res.Stats.PrunedStepBound; sum != res.Pruned {
		t.Errorf("prune-reason split %d does not sum to Pruned %d", sum, res.Pruned)
	}
}

// TestStatsCounters: an exhaustive run of the store-buffering program
// populates every exploration-side counter sensibly.
func TestStatsCounters(t *testing.T) {
	res := Explore(Config{}, manyExecProgram)
	s := res.Stats
	if res.Executions < 2 {
		t.Fatalf("expected multiple executions, got %v", res)
	}
	if s.RFBranchPoints == 0 {
		t.Error("relaxed loads with stale stores should open rf branch points")
	}
	if s.ScheduleBranchPoints == 0 {
		t.Error("two runnable threads should open schedule branch points")
	}
	if s.ReplayedDecisions == 0 {
		t.Error("backtracking across executions should replay decisions")
	}
	if s.MaxDecisionDepth == 0 {
		t.Error("decision stack depth never recorded")
	}
	if s.TotalSteps < res.Executions {
		t.Errorf("TotalSteps=%d implausibly small for %d executions", s.TotalSteps, res.Executions)
	}
	if sum := s.PrunedSleepSet + s.PrunedFairness + s.PrunedStepBound; sum != res.Pruned {
		t.Errorf("prune-reason split %d does not sum to Pruned %d", sum, res.Pruned)
	}
	if s.ExploreTime <= 0 {
		t.Error("ExploreTime not measured")
	}
}

// TestStatsMerge: counters add, depth maxes, timings add.
func TestStatsMerge(t *testing.T) {
	a := Stats{
		PrunedSleepSet: 1, PrunedFairness: 2, PrunedStepBound: 3,
		RFBranchPoints: 4, ScheduleBranchPoints: 5, ReplayedDecisions: 6,
		MaxDecisionDepth: 7, TotalSteps: 8,
		Histories: 9, HistoriesCapped: 1, AdmissibilityChecks: 10, JustifySearches: 11,
		ExploreTime: time.Second, SpecTime: time.Millisecond,
	}
	b := Stats{MaxDecisionDepth: 3, RFBranchPoints: 1, ExploreTime: time.Second}
	a.Merge(&b)
	if a.MaxDecisionDepth != 7 {
		t.Errorf("MaxDecisionDepth should max, got %d", a.MaxDecisionDepth)
	}
	if a.RFBranchPoints != 5 {
		t.Errorf("RFBranchPoints should sum, got %d", a.RFBranchPoints)
	}
	if a.ExploreTime != 2*time.Second {
		t.Errorf("ExploreTime should sum, got %v", a.ExploreTime)
	}
	c := Stats{MaxDecisionDepth: 9}
	c.Merge(&a)
	if c.MaxDecisionDepth != 9 {
		t.Errorf("MaxDecisionDepth should keep the larger side, got %d", c.MaxDecisionDepth)
	}
	wt := a.WithoutTimings()
	if wt.ExploreTime != 0 || wt.SpecTime != 0 {
		t.Errorf("WithoutTimings left timings: %+v", wt)
	}
	if wt.RFBranchPoints != a.RFBranchPoints || a.ExploreTime == 0 {
		t.Error("WithoutTimings must copy, not mutate")
	}
}

// TestProgressFinalSnapshot: the closing Progress snapshot is always
// delivered and its counts equal the returned Result, sequentially and
// in parallel.
func TestProgressFinalSnapshot(t *testing.T) {
	for _, par := range []int{1, 4} {
		var got []Progress
		res := Explore(Config{
			Parallelism:      par,
			Progress:         func(p Progress) { got = append(got, p) },
			ProgressInterval: time.Millisecond,
		}, manyExecProgram)
		if len(got) == 0 {
			t.Fatalf("parallelism %d: no progress snapshots delivered", par)
		}
		last := got[len(got)-1]
		if !last.Final {
			t.Errorf("parallelism %d: last snapshot not Final: %+v", par, last)
		}
		for _, p := range got[:len(got)-1] {
			if p.Final {
				t.Errorf("parallelism %d: non-last snapshot marked Final", par)
			}
		}
		if last.Executions != res.Executions || last.Feasible != res.Feasible ||
			last.Pruned != res.Pruned || last.Failures != res.FailureCount {
			t.Errorf("parallelism %d: final snapshot %+v does not match result %v", par, last, res)
		}
		if last.Elapsed <= 0 || last.ExecsPerSec <= 0 {
			t.Errorf("parallelism %d: final snapshot missing rate: %+v", par, last)
		}
	}
}

// TestProgressTrackerETA: the rate/ETA math on a tracker driven by hand
// (interval long enough that the ticker never fires).
func TestProgressTrackerETA(t *testing.T) {
	var finals []Progress
	tr := newProgressTracker(func(p Progress) { finals = append(finals, p) }, time.Hour, 100)
	for i := 0; i < 10; i++ {
		tr.observe(i%2 == 0, i%2 != 0, 0, 0, false, 0, 0)
	}
	tr.observe(false, false, 3, 2, false, 0, 0)
	time.Sleep(time.Millisecond) // ensure a measurable elapsed for the rate
	p := tr.snapshot(false)
	if p.Executions != 11 || p.Feasible != 5 || p.Pruned != 5 || p.Failures != 3 {
		t.Errorf("snapshot counts wrong: %+v", p)
	}
	if p.ExecsPerSec <= 0 || p.ETA <= 0 {
		t.Errorf("expected positive rate and ETA toward maxExecs=100: %+v", p)
	}
	tr.close()
	if len(finals) != 1 || !finals[0].Final {
		t.Fatalf("close must deliver exactly one final snapshot: %+v", finals)
	}
	// At the cap there is nothing left to estimate.
	tr2 := newProgressTracker(func(Progress) {}, time.Hour, 5)
	for i := 0; i < 5; i++ {
		tr2.observe(true, false, 0, 0, false, 0, 0)
	}
	if p := tr2.snapshot(false); p.ETA != 0 {
		t.Errorf("ETA should be zero at MaxExecutions: %+v", p)
	}
	tr2.close()
}
