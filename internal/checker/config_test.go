package checker

import (
	"strings"
	"testing"

	"repro/internal/checker/model"
	"repro/internal/memmodel"
)

// TestConfigValidate pins the rejection of configurations that earlier
// versions silently mishandled: a negative StoreBound was clamped up to 2
// as if it were a small bound, and FastMode quietly ignored checkpoint,
// resume, and random-walk settings instead of refusing them.
func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want string // substring of the error, "" = valid
	}{
		{"zero", Config{}, ""},
		{"model-c11", Config{Model: model.C11}, ""},
		{"model-sc", Config{Model: model.SC}, ""},
		{"model-scatomics", Config{Model: model.SCAtomics}, ""},
		{"model-unknown", Config{Model: "tso"}, "unknown memory model"},
		{"negative-store-bound", Config{StoreBound: -1}, "StoreBound"},
		{"store-bound-one-clamps", Config{StoreBound: 1}, ""}, // documented min-clamp, not an error
		{"fastmode-plain", Config{FastMode: true}, ""},
		{"fastmode-checkpoint", Config{FastMode: true, Checkpoint: func(*Checkpoint) {}}, "cannot checkpoint"},
		{"fastmode-checkpoint-every", Config{FastMode: true, CheckpointEvery: 1}, "cannot checkpoint"},
		{"fastmode-resume", Config{FastMode: true, ResumeFrom: &Checkpoint{}}, "cannot resume"},
		{"fastmode-randomwalk", Config{FastMode: true, RandomWalk: 10}, "mutually exclusive"},
		{"randomwalk-resume", Config{RandomWalk: 10, ResumeFrom: &Checkpoint{}}, "cannot resume"},
		{"randomwalk-checkpoint-ignored", Config{RandomWalk: 10, Checkpoint: func(*Checkpoint) {}}, ""},
		// Checkpoint-interval misconfigurations: a negative interval used
		// to fall through every `> 0` guard (behaving as "final snapshot
		// only" while still forcing the engine), and a positive interval
		// without a sink ticked a snapshot loop that delivered nowhere.
		{"negative-checkpoint-every", Config{CheckpointEvery: -1, Checkpoint: func(*Checkpoint) {}}, "CheckpointEvery must be >= 0"},
		{"checkpoint-every-no-sink", Config{CheckpointEvery: 1}, "no Checkpoint sink"},
		{"checkpoint-final-only", Config{Checkpoint: func(*Checkpoint) {}}, ""}, // 0 interval with a sink = final snapshot only
		{"checkpoint-periodic", Config{CheckpointEvery: 1, Checkpoint: func(*Checkpoint) {}}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if tc.want == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Validate() = %v, want error containing %q", err, tc.want)
			}
		})
	}
}

// TestExplorePanicsOnInvalidConfig: Explore treats an invalid Config like
// an invalid checkpoint — a caller bug, reported by panic.
func TestExplorePanicsOnInvalidConfig(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Explore accepted FastMode + RandomWalk without panicking")
		}
		if s, ok := r.(string); !ok || !strings.Contains(s, "mutually exclusive") {
			t.Fatalf("unexpected panic value: %v", r)
		}
	}()
	Explore(Config{FastMode: true, RandomWalk: 5}, func(root *Thread) {})
}

// routingProg is a tiny exhaustible program (relaxed SB) for the routing
// tests: sequential DFS exhausts it in well under 100 executions, so a
// bounded sampling engine (Executions == budget, Exhausted == false) is
// distinguishable from the DFS engines (Exhausted == true).
func routingProg(root *Thread) {
	x := root.NewAtomicInit("x", 0)
	y := root.NewAtomicInit("y", 0)
	a := root.Spawn("a", func(tt *Thread) {
		x.Store(tt, memmodel.Relaxed, 1)
		_ = y.Load(tt, memmodel.Relaxed)
	})
	b := root.Spawn("b", func(tt *Thread) {
		y.Store(tt, memmodel.Relaxed, 1)
		_ = x.Load(tt, memmodel.Relaxed)
	})
	root.Join(a)
	root.Join(b)
}

// TestEngineRoutingPrecedence pins the documented routing table
// (FastMode > RandomWalk > work-stealing engine > sequential DFS) through
// observable engine behavior. The FastMode-vs-RandomWalk edge needs no
// routing pin anymore: Validate rejects the combination outright.
func TestEngineRoutingPrecedence(t *testing.T) {
	// Sequential DFS baseline: exhausts.
	seq := Explore(Config{}, routingProg)
	if !seq.Exhausted {
		t.Fatalf("sequential DFS did not exhaust: %v", seq)
	}
	if seq.Executions >= 100 {
		t.Fatalf("routing program too large for the routing probes: %d executions", seq.Executions)
	}

	// FastMode outranks the work-stealing engine: even with Parallelism
	// set, the run is a fixed sampling budget, never an exhausting DFS.
	fast := Explore(Config{FastMode: true, MaxExecutions: 100, Parallelism: 4, Seed: 3}, routingProg)
	if fast.Exhausted || fast.Executions != 100 {
		t.Errorf("FastMode + Parallelism routed wrong: exhausted=%v executions=%d, want false/100",
			fast.Exhausted, fast.Executions)
	}

	// RandomWalk outranks the work-stealing engine, and its documented-
	// ignored Checkpoint stays ignored (walks have no frontier).
	cpCalls := 0
	walk := Explore(Config{RandomWalk: 120, Parallelism: 4, Seed: 3, Checkpoint: func(*Checkpoint) { cpCalls++ }}, routingProg)
	if walk.Exhausted || walk.Executions != 120 {
		t.Errorf("RandomWalk + Parallelism routed wrong: exhausted=%v executions=%d, want false/120",
			walk.Exhausted, walk.Executions)
	}
	if cpCalls != 0 {
		t.Errorf("RandomWalk invoked the Checkpoint callback %d times; walks do not checkpoint", cpCalls)
	}

	// A checkpoint request routes Parallelism <= 1 through the
	// work-stealing engine (the callback fires at least once, for the
	// final snapshot) and stays bit-identical to sequential DFS.
	cpCalls = 0
	eng := Explore(Config{Checkpoint: func(*Checkpoint) { cpCalls++ }}, routingProg)
	if cpCalls == 0 {
		t.Error("work-stealing engine never delivered the final checkpoint snapshot")
	}
	if !eng.Exhausted || eng.Executions != seq.Executions || eng.Feasible != seq.Feasible || eng.Pruned != seq.Pruned {
		t.Errorf("engine result differs from sequential DFS:\n engine:     %v\n sequential: %v", eng, seq)
	}
}
