package checker

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// This file implements parallel exploration (Config.Parallelism > 1).
//
// RandomWalk mode shards the walk count across workers; every execution
// already owns a private System, so only the Result merge matters.
//
// DFS mode uses the work-stealing engine (worksteal.go): the decision
// frontier is a set of unexplored subtree branches spread across
// per-worker Chase-Lev deques, and every branch's result is folded at
// its canonical decision-path position (frontier.go), which reproduces
// the sequential DFS output bit-for-bit on exhaustive runs no matter
// which worker explored which subtree. The same engine serves
// checkpoint/resume at any parallelism (checkpoint.go).

// exploreParallel is Explore for parallel DFS (Parallelism > 1, and any
// DFS run with checkpoint/resume/interrupt plumbing). c has defaults
// applied; RandomWalk and FastMode route through their own engines
// before this one (see the precedence on Config.RandomWalk).
func exploreParallel(c *Config, root func(*Thread)) *Result {
	start := time.Now()
	res := exploreWorkSteal(c, root)
	// Elapsed is the run's wall clock (plus, for resumed runs, the base
	// the engine restored from the checkpoint — the only reason this adds
	// instead of assigning). The merge deliberately never folds per-worker
	// timings into it (a per-worker sum can exceed wall clock by a factor
	// of Parallelism); the Stats timing fields, by contrast, are
	// cumulative across workers by design.
	res.Elapsed += time.Since(start)
	return res
}

// bounds is the shared execution budget and cancellation state of a
// parallel exploration.
type bounds struct {
	ctx    context.Context
	cancel context.CancelFunc
	// max bounds total executions (0 = unlimited); executed counts
	// reservations made so far and never exceeds max.
	max      int64
	executed atomic.Int64
}

func newBounds(maxExecutions, already int) *bounds {
	ctx, cancel := context.WithCancel(context.Background())
	b := &bounds{ctx: ctx, cancel: cancel, max: int64(maxExecutions)}
	b.executed.Store(int64(already))
	return b
}

// tryStart reserves budget for one execution. Reserving before running
// makes the total number of executions across all workers exactly equal
// the bound: the CAS loop never pushes the counter past max, so a
// cancelled exploration cannot overshoot MaxExecutions — each worker
// finishes at most the one execution it had already reserved before the
// cancellation landed (an overshoot of executions-in-flight, bounded by
// the worker count, never of the counter).
func (b *bounds) tryStart() bool {
	if b.ctx.Err() != nil {
		return false
	}
	if b.max <= 0 {
		return true
	}
	for {
		cur := b.executed.Load()
		if cur >= b.max {
			return false
		}
		if b.executed.CompareAndSwap(cur, cur+1) {
			return true
		}
	}
}

// stopped reports whether the exploration was cancelled (StopAtFirst).
func (b *bounds) stopped() bool { return b.ctx.Err() != nil }

// runPool runs tasks 0..tasks-1 on at most workers goroutines and waits
// for all of them. workers is clamped to [1, tasks]; zero tasks is a
// no-op.
func runPool(workers, tasks int, run func(task int)) {
	if tasks <= 0 {
		return
	}
	if workers > tasks {
		workers = tasks
	}
	if workers < 1 {
		workers = 1
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				t := int(next.Add(1)) - 1
				if t >= tasks {
					return
				}
				run(t)
			}
		}()
	}
	wg.Wait()
}

// mergeInto folds the per-task results into res in task order, offsetting
// each failure's Execution index by the number of executions that earlier
// tasks contributed. Each task retains up to maxFailures failures of its
// own, so the ordered concatenation always contains every failure a
// sequential run would have retained (sequential keeps the first
// maxFailures in this exact order); the final cap then drops precisely
// the surplus, never a failure the sequential run kept. Used by the
// random-walk merge; DFS folds through foldList instead.
func mergeInto(res *Result, locals []*Result, maxFailures int) {
	for _, local := range locals {
		if local == nil {
			continue
		}
		mergeResults(res, local, maxFailures)
	}
}

// exploreRandomWalk runs the RandomWalk engine at any Parallelism. Each
// walk index draws its decisions from an independent seed derived from
// (Seed, index), and workers own contiguous index blocks merged in block
// order — so walk i behaves identically no matter which worker runs it,
// and the Result (Executions, Failures, every non-timing Stat) is
// bit-identical across Parallelism 1/4/16 for a fixed budget. (The old
// per-worker seeding made results depend on the worker count, and
// RandomWalk with Parallelism > 1 silently fell into the DFS branch.)
//
// Each walk is its own exploration shard (fresh Scratch): spec-check
// caching never carries over between walks, trading cross-walk cache
// reuse for seed stability — cache counters are a deterministic function
// of the walk set alone. StopAtFirst and Interrupt cut the walk sequence
// nondeterministically when Parallelism > 1.
func exploreRandomWalk(c *Config, root func(*Thread)) *Result {
	res := &Result{}
	start := time.Now()
	defer func() { res.Elapsed += time.Since(start) }()
	total := c.randomWalkBudget()
	if total <= 0 {
		return res
	}
	workers := c.Parallelism
	if workers < 1 {
		workers = 1
	}
	if workers > total {
		workers = total
	}
	if workers == 1 {
		walkBlock(c, res, root, 0, total, nil)
		return res
	}
	b := newBounds(0, 0)
	defer b.cancel()
	starts := make([]int, workers+1)
	for w := 0; w < workers; w++ {
		n := total / workers
		if w < total%workers {
			n++
		}
		starts[w+1] = starts[w] + n
	}
	locals := make([]*Result, workers)
	runPool(workers, workers, func(w int) {
		local := &Result{}
		locals[w] = local
		walkBlock(c, local, root, starts[w], starts[w+1], b)
	})
	mergeInto(res, locals, c.MaxFailures)
	return res
}

// walkBlock runs walk indices [from, to) into res, reseeding the chooser
// per index. b (nil when sequential) carries StopAtFirst cancellation.
func walkBlock(c *Config, res *Result, root func(*Thread), from, to int, b *bounds) {
	ch := &randChooser{disableRF: c.DisableStaleReads, stats: &res.Stats}
	pool := newExecPool(c)
	for i := from; i < to; i++ {
		if b != nil && b.stopped() {
			return
		}
		if c.Interrupt != nil {
			select {
			case <-c.Interrupt:
				return
			default:
			}
		}
		ch.rng = rand.New(rand.NewSource(int64(derivedSeed(c.Seed, i))))
		scratch := c.newScratch() // each walk is one shard
		failed := runOne(c, res, ch, root, scratch, pool)
		if failed && c.StopAtFirst {
			if b != nil {
				b.cancel()
			}
			return
		}
	}
}
