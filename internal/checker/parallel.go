package checker

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// This file implements parallel exploration (Config.Parallelism > 1).
//
// RandomWalk mode shards the walk count across workers; every execution
// already owns a private System, so only the Result merge matters.
//
// DFS mode uses prefix-sharding: one probe execution expands the root
// decision node, then each of its subtrees — a frozen one-decision
// prefix — becomes a task run by an ordinary replay-based dfsChooser
// restricted with advanceFrom(1). Merging the per-subtree results in
// branch order (with execution indices offset by the cumulative count of
// earlier branches) reproduces the sequential DFS output bit-for-bit on
// exhaustive runs, because sequential DFS visits exactly those subtrees
// in that order.

// exploreParallel is Explore for Parallelism > 1. c has defaults applied.
func exploreParallel(c *Config, root func(*Thread)) *Result {
	start := time.Now()
	var res *Result
	if c.RandomWalk > 0 {
		res = parallelRandomWalk(c, root)
	} else {
		res = parallelDFS(c, root)
	}
	// Elapsed is the parallel run's wall clock, assigned here and only
	// here; mergeInto deliberately never folds the per-worker timings into
	// it (a per-worker sum can exceed wall clock by a factor of
	// Parallelism). The Stats timing fields, by contrast, are cumulative
	// across workers by design.
	res.Elapsed = time.Since(start)
	return res
}

// bounds is the shared execution budget and cancellation state of a
// parallel exploration.
type bounds struct {
	ctx    context.Context
	cancel context.CancelFunc
	// max bounds total executions (0 = unlimited); executed counts
	// reservations made so far.
	max      int64
	executed atomic.Int64
}

func newBounds(maxExecutions, already int) *bounds {
	ctx, cancel := context.WithCancel(context.Background())
	b := &bounds{ctx: ctx, cancel: cancel, max: int64(maxExecutions)}
	b.executed.Store(int64(already))
	return b
}

// tryStart reserves budget for one execution. Reserving before running
// makes the total number of executions across all workers exactly equal
// the bound.
func (b *bounds) tryStart() bool {
	if b.ctx.Err() != nil {
		return false
	}
	if b.max > 0 && b.executed.Add(1) > b.max {
		return false
	}
	return true
}

// stopped reports whether the exploration was cancelled (StopAtFirst).
func (b *bounds) stopped() bool { return b.ctx.Err() != nil }

// runPool runs tasks 0..tasks-1 on at most workers goroutines and waits
// for all of them.
func runPool(workers, tasks int, run func(task int)) {
	if workers > tasks {
		workers = tasks
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				t := int(next.Add(1)) - 1
				if t >= tasks {
					return
				}
				run(t)
			}
		}()
	}
	wg.Wait()
}

// mergeInto folds the per-task results into res in task order, offsetting
// each failure's Execution index by the number of executions that earlier
// tasks (and the probe, already in res) contributed. On exhaustive DFS
// runs this reproduces the sequential numbering exactly.
func mergeInto(res *Result, locals []*Result, maxFailures int) {
	for _, local := range locals {
		if local == nil {
			continue
		}
		for _, f := range local.Failures {
			f.Execution += res.Executions
		}
		res.Failures = append(res.Failures, local.Failures...)
		res.Executions += local.Executions
		res.Feasible += local.Feasible
		res.Pruned += local.Pruned
		res.FailureCount += local.FailureCount
		res.Stats.Merge(&local.Stats)
	}
	// Each task capped its retained failures locally; re-cap the ordered
	// concatenation so the merged result keeps the first MaxFailures,
	// just as a sequential run would.
	if len(res.Failures) > maxFailures {
		res.Failures = res.Failures[:maxFailures]
	}
}

// parallelRandomWalk shards the walk budget across Parallelism workers,
// each drawing from an independent seed derived from Seed.
func parallelRandomWalk(c *Config, root func(*Thread)) *Result {
	res := &Result{}
	total := c.randomWalkBudget()
	if total <= 0 {
		return res
	}
	workers := c.Parallelism
	if workers > total {
		workers = total
	}
	b := newBounds(0, 0)
	defer b.cancel()
	locals := make([]*Result, workers)
	runPool(workers, workers, func(w int) {
		count := total / workers
		if w < total%workers {
			count++
		}
		// A fixed odd multiplier (Weyl/Knuth constant) spreads the
		// per-worker seeds far apart even for adjacent base seeds.
		seed := int64(uint64(c.Seed) + uint64(w+1)*0x9E3779B97F4A7C15)
		local := &Result{}
		ch := &randChooser{rng: rand.New(rand.NewSource(seed)), disableRF: c.DisableStaleReads, stats: &local.Stats}
		locals[w] = local
		scratch := c.newScratch() // each walk worker is one shard
		pool := newExecPool(c)
		for i := 0; i < count; i++ {
			if b.stopped() {
				return
			}
			failed := runOne(c, local, ch, root, scratch, pool)
			if failed && c.StopAtFirst {
				b.cancel()
				return
			}
		}
	})
	mergeInto(res, locals, c.MaxFailures)
	return res
}

// parallelDFS runs prefix-sharded exhaustive exploration: the probe
// execution expands the root decision node, then each root branch is
// explored by its own dfsChooser whose depth-0 decision is frozen.
func parallelDFS(c *Config, root func(*Thread)) *Result {
	res := &Result{}
	probe := newDFSChooser(c)
	probe.stats = &res.Stats
	// The probe is the first execution of root branch 0, so it opens that
	// branch's shard; task 0 continues with the same scratch, exactly as
	// the sequential DFS would.
	probeScratch := c.newScratch()
	probePool := newExecPool(c)
	failed := runOne(c, res, probe, root, probeScratch, probePool)
	if failed && c.StopAtFirst {
		return res
	}
	if c.MaxExecutions > 0 && res.Executions >= c.MaxExecutions {
		return res
	}
	if len(probe.decisions) == 0 {
		// A single deterministic execution: nothing to shard.
		res.Exhausted = true
		return res
	}

	// One task per branch of the root decision. Task 0 continues the
	// probe's chooser (already positioned on branch 0's first leaf);
	// task j > 0 starts a fresh chooser whose frozen prefix selects
	// branch j.
	rootNode := probe.decisions[0]
	var branches int
	if rootNode.kind == 's' {
		branches = len(rootNode.cands)
	} else {
		branches = rootNode.n
	}
	choosers := make([]*dfsChooser, branches)
	choosers[0] = probe
	for j := 1; j < branches; j++ {
		d := newDFSChooser(c)
		if rootNode.kind == 's' {
			// Branch j runs candidate j with candidates 0..j-1 already
			// explored, so replay puts them to sleep exactly as the
			// sequential DFS would when it reaches this branch.
			cands := append([]int(nil), rootNode.cands...)
			d.decisions = []decision{{
				kind:     's',
				cands:    cands,
				chosen:   j,
				explored: append([]int(nil), cands[:j]...),
			}}
		} else {
			d.decisions = []decision{{kind: rootNode.kind, n: rootNode.n, chosen: j}}
		}
		choosers[j] = d
	}

	b := newBounds(c.MaxExecutions, res.Executions)
	defer b.cancel()
	locals := make([]*Result, branches)
	exhausted := make([]bool, branches)
	runPool(c.Parallelism, branches, func(task int) {
		d := choosers[task]
		local := &Result{}
		locals[task] = local
		// Re-point the chooser's counters at the task-local result (the
		// probe's were aimed at res); the merge sums them back in branch
		// order, reproducing the sequential totals.
		d.stats = &local.Stats
		// Each root branch is one shard: task 0 inherits the probe's
		// scratch (and execution pool), other tasks open fresh ones —
		// matching the sequential DFS, which renews its scratch at every
		// root-branch boundary. Pools must not be shared across tasks:
		// tasks run concurrently and a pool is single-threaded.
		scratch := probeScratch
		pool := probePool
		if task != 0 {
			scratch = c.newScratch()
			pool = newExecPool(c)
		}
		// The probe already ran task 0's first leaf; every other task's
		// chooser is positioned on an unexplored leaf.
		needAdvance := task == 0
		for {
			if needAdvance && !d.advanceFrom(1) {
				exhausted[task] = true
				return
			}
			needAdvance = true
			if !b.tryStart() {
				return
			}
			failed := runOne(c, local, d, root, scratch, pool)
			if failed && c.StopAtFirst {
				b.cancel()
				return
			}
		}
	})
	mergeInto(res, locals, c.MaxFailures)
	all := true
	for _, e := range exhausted {
		all = all && e
	}
	res.Exhausted = all && !b.stopped()
	return res
}
