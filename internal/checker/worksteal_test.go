package checker

import (
	"encoding/json"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// --- Chase-Lev deque ---------------------------------------------------

// TestWSDequeSequential: owner-side LIFO, thief-side FIFO, and growth
// past the initial ring size.
func TestWSDequeSequential(t *testing.T) {
	d := newWSDeque()
	if d.popBottom() != nil || d.steal() != nil {
		t.Fatal("empty deque must return nil")
	}
	n := wsDequeInitialSize * 3 // forces two growths
	tasks := make([]*wsTask, n)
	for i := range tasks {
		tasks[i] = &wsTask{}
		d.push(tasks[i])
	}
	// Owner pops newest-first.
	if got := d.popBottom(); got != tasks[n-1] {
		t.Fatalf("popBottom: got %p, want last push %p", got, tasks[n-1])
	}
	// Thieves steal oldest-first.
	if got := d.steal(); got != tasks[0] {
		t.Fatalf("steal: got %p, want first push %p", got, tasks[0])
	}
	if got := d.steal(); got != tasks[1] {
		t.Fatalf("second steal: got %p, want %p", got, tasks[1])
	}
	// Drain the rest from the bottom; every remaining task appears once.
	seen := map[*wsTask]bool{}
	for {
		x := d.popBottom()
		if x == nil {
			break
		}
		if seen[x] {
			t.Fatal("task popped twice")
		}
		seen[x] = true
	}
	if len(seen) != n-3 {
		t.Fatalf("drained %d tasks, want %d", len(seen), n-3)
	}
	if d.popBottom() != nil || d.steal() != nil {
		t.Fatal("drained deque must return nil")
	}
}

// TestWSDequeConcurrent: one owner pushing and popping against stealing
// thieves; every task must be consumed exactly once (run under -race in
// CI, which also exercises the memory ordering).
func TestWSDequeConcurrent(t *testing.T) {
	const total = 20000
	const thieves = 4
	d := newWSDeque()
	var consumed atomic.Int64
	counts := make([]atomic.Int32, total)
	var wg sync.WaitGroup
	for i := 0; i < thieves; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for consumed.Load() < total {
				if task := d.steal(); task != nil {
					counts[task.node.depth].Add(1)
					consumed.Add(1)
				}
			}
		}()
	}
	// Owner: push in batches, pop some back — the popBottom/steal race on
	// the last element is the hard part of the algorithm.
	for i := 0; i < total; {
		for j := 0; j < 50 && i < total; j++ {
			d.push(&wsTask{node: &fnode{depth: i}})
			i++
		}
		for j := 0; j < 25; j++ {
			if task := d.popBottom(); task != nil {
				counts[task.node.depth].Add(1)
				consumed.Add(1)
			}
		}
	}
	for {
		task := d.popBottom()
		if task == nil {
			if consumed.Load() >= total {
				break
			}
			continue // thieves still draining in flight
		}
		counts[task.node.depth].Add(1)
		consumed.Add(1)
	}
	wg.Wait()
	for i := range counts {
		if c := counts[i].Load(); c != 1 {
			t.Fatalf("task %d consumed %d times, want exactly once", i, c)
		}
	}
}

// --- Determinism and the MaxExecutions invariant -----------------------

// TestParallelDeterminism: work-stealing exploration is bit-identical to
// sequential across worker counts, including under a tight failure cap
// (the per-merge cap must retain exactly the failures a sequential run
// keeps); and a cancelled bounded run never overshoots MaxExecutions —
// bounds.tryStart reserves with a CAS loop, so the counter cannot pass
// the bound no matter how StopAtFirst's cancel races it.
func TestParallelDeterminism(t *testing.T) {
	for _, n := range []int{2, 4, 16} {
		compareParallel(t, fmt.Sprintf("store-buffering-%dw", n), n, Config{}, manyExecProgram)
	}
	// Failure retention under a cap smaller than the failure count.
	compareParallel(t, "deadlock-capped", 4, Config{MaxFailures: 3}, deadlockProg)

	// The overshoot invariant, raced 25 times: StopAtFirst cancels while
	// other workers hold budget reservations.
	for i := 0; i < 25; i++ {
		res := Explore(Config{MaxExecutions: 6, StopAtFirst: true, Parallelism: 8}, deadlockProg)
		if res.Executions > 6 {
			t.Fatalf("iteration %d: cancelled bounded run overshot MaxExecutions: %d > 6", i, res.Executions)
		}
		if res.Exhausted {
			t.Fatalf("iteration %d: cut-short run must not report Exhausted", i)
		}
	}
	// Same without StopAtFirst: the reservation makes the bound exact.
	for _, par := range []int{2, 8} {
		res := Explore(Config{MaxExecutions: 6, Parallelism: par}, manyExecProgram)
		if res.Executions != 6 {
			t.Fatalf("parallelism %d: bounded run made %d executions, want exactly 6", par, res.Executions)
		}
	}
}

// --- Checkpoint / resume ----------------------------------------------

// checkpointAt runs prog up to cut executions with the given parallelism
// and returns the final checkpoint (which carries the outstanding
// frontier when cut is smaller than the space).
func checkpointAt(t *testing.T, cfg Config, prog func(*Thread), cut, par int) *Checkpoint {
	t.Helper()
	var cp *Checkpoint
	cfg.MaxExecutions = cut
	cfg.Parallelism = par
	cfg.Checkpoint = func(c *Checkpoint) { cp = c }
	res := Explore(cfg, prog)
	if res.Executions != cut {
		t.Fatalf("bounded run made %d executions, want %d", res.Executions, cut)
	}
	if cp == nil {
		t.Fatal("no checkpoint emitted")
	}
	if err := cp.Validate(); err != nil {
		t.Fatalf("invalid checkpoint: %v", err)
	}
	return cp
}

// requireIdentical asserts the full bit-identity contract between two
// results (timings and scheduler telemetry exempt).
func requireIdentical(t *testing.T, name string, want, got *Result) {
	t.Helper()
	if want.Executions != got.Executions || want.Feasible != got.Feasible ||
		want.Pruned != got.Pruned || want.Exhausted != got.Exhausted ||
		want.FailureCount != got.FailureCount {
		t.Fatalf("%s: counts differ: want %v (exhausted=%v), got %v (exhausted=%v)",
			name, want, want.Exhausted, got, got.Exhausted)
	}
	if want.Stats.WithoutTimings() != got.Stats.WithoutTimings() {
		t.Fatalf("%s: stats differ:\n  want: %+v\n  got:  %+v",
			name, want.Stats.WithoutTimings(), got.Stats.WithoutTimings())
	}
	if len(want.Failures) != len(got.Failures) {
		t.Fatalf("%s: retained failures differ: want %d, got %d", name, len(want.Failures), len(got.Failures))
	}
	for i := range want.Failures {
		wf, gf := want.Failures[i], got.Failures[i]
		if wf.Kind != gf.Kind || wf.Execution != gf.Execution {
			t.Fatalf("%s: failure %d differs: want %v@%d, got %v@%d",
				name, i, wf.Kind, wf.Execution, gf.Kind, gf.Execution)
		}
	}
}

// TestCheckpointResumeDeterminism: a run killed at any point resumes from
// its checkpoint to the exact sequential Result, across checkpoint
// parallelism × resume parallelism, for a failure-free and a
// failure-heavy program.
func TestCheckpointResumeDeterminism(t *testing.T) {
	progs := []struct {
		name string
		prog func(*Thread)
		cfg  Config
	}{
		{"store-buffering", manyExecProgram, Config{}},
		{"deadlock", deadlockProg, Config{MaxFailures: 1 << 20}},
	}
	for _, p := range progs {
		seq := Explore(p.cfg, p.prog)
		if seq.Executions < 8 {
			t.Fatalf("%s: too small for the cut points: %v", p.name, seq)
		}
		for _, cut := range []int{1, 3, seq.Executions / 2, seq.Executions - 1} {
			for _, cpPar := range []int{1, 4} {
				for _, resPar := range []int{1, 4, 16} {
					cp := checkpointAt(t, p.cfg, p.prog, cut, cpPar)
					rcfg := p.cfg
					rcfg.Parallelism = resPar
					rcfg.ResumeFrom = cp
					resumed := Explore(rcfg, p.prog)
					requireIdentical(t,
						fmt.Sprintf("%s cut=%d cpPar=%d resPar=%d", p.name, cut, cpPar, resPar),
						seq, resumed)
				}
			}
		}
	}
}

// TestCheckpointChained: checkpoint → resume with a budget → checkpoint
// again → resume to completion; the chained total equals sequential.
func TestCheckpointChained(t *testing.T) {
	seq := Explore(Config{}, manyExecProgram)
	cp1 := checkpointAt(t, Config{}, manyExecProgram, 2, 4)

	var cp2 *Checkpoint
	mid := Explore(Config{
		MaxExecutions: seq.Executions / 2,
		Parallelism:   2,
		ResumeFrom:    cp1,
		Checkpoint:    func(c *Checkpoint) { cp2 = c },
	}, manyExecProgram)
	if mid.Executions != seq.Executions/2 {
		t.Fatalf("middle segment stopped at %d executions, want %d", mid.Executions, seq.Executions/2)
	}
	if cp2 == nil || cp2.Complete() {
		t.Fatalf("middle checkpoint should carry outstanding work: %+v", cp2)
	}
	final := Explore(Config{Parallelism: 4, ResumeFrom: cp2}, manyExecProgram)
	requireIdentical(t, "chained", seq, final)
}

// TestCheckpointJSONRoundTrip: the checkpoint survives JSON serialization
// (the CLI's on-disk form) and the deserialized copy resumes to the same
// result.
func TestCheckpointJSONRoundTrip(t *testing.T) {
	seq := Explore(Config{MaxFailures: 1 << 20}, deadlockProg)
	cp := checkpointAt(t, Config{MaxFailures: 1 << 20}, deadlockProg, seq.Executions/2, 4)

	blob, err := json.Marshal(cp)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Checkpoint
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if err := back.Validate(); err != nil {
		t.Fatalf("round-tripped checkpoint invalid: %v", err)
	}
	if back.Executions != cp.Executions || back.Pending() != cp.Pending() {
		t.Fatalf("round trip changed shape: %d/%d executions, %d/%d pending",
			back.Executions, cp.Executions, back.Pending(), cp.Pending())
	}
	resumed := Explore(Config{MaxFailures: 1 << 20, Parallelism: 4, ResumeFrom: &back}, deadlockProg)
	requireIdentical(t, "json-round-trip", seq, resumed)
}

// TestCheckpointOfCompletedRun: a run that drains its frontier emits a
// complete checkpoint (a single done cell); resuming it returns the
// result without exploring anything new.
func TestCheckpointOfCompletedRun(t *testing.T) {
	var cp *Checkpoint
	full := Explore(Config{Parallelism: 4, Checkpoint: func(c *Checkpoint) { cp = c }}, manyExecProgram)
	if !full.Exhausted {
		t.Fatalf("expected exhaustion: %v", full)
	}
	if cp == nil || !cp.Complete() {
		t.Fatalf("final checkpoint of a completed run should be complete: %+v", cp)
	}
	resumed := Explore(Config{ResumeFrom: cp}, manyExecProgram)
	requireIdentical(t, "resume-completed", full, resumed)
}

// TestCheckpointInterrupt: closing Config.Interrupt stops the run
// gracefully and the final checkpoint resumes to the sequential result.
func TestCheckpointInterrupt(t *testing.T) {
	seq := Explore(Config{}, manyExecProgram)
	intr := make(chan struct{})
	close(intr) // interrupt immediately: workers stop after their first executions
	var cp *Checkpoint
	partial := Explore(Config{
		Parallelism: 2,
		Interrupt:   intr,
		Checkpoint:  func(c *Checkpoint) { cp = c },
	}, manyExecProgram)
	if cp == nil {
		t.Fatal("no checkpoint after interrupt")
	}
	if partial.Executions+cp.Pending() == 0 {
		t.Fatal("interrupted run recorded nothing")
	}
	resumed := Explore(Config{Parallelism: 4, ResumeFrom: cp}, manyExecProgram)
	requireIdentical(t, "interrupt", seq, resumed)
}

// TestCheckpointValidate rejects the malformed shapes a hand-edited or
// truncated file could produce.
func TestCheckpointValidate(t *testing.T) {
	bad := []Checkpoint{
		{},
		{Schema: "cdsspec-checkpoint/v0", Cells: []CheckpointCell{{Pending: true}}},
		{Schema: CheckpointSchema},
		{Schema: CheckpointSchema, Cells: []CheckpointCell{{}}},
		{Schema: CheckpointSchema, Cells: []CheckpointCell{{Result: &Result{}, Pending: true}}},
		{Schema: CheckpointSchema, Cells: []CheckpointCell{
			{Pending: true, Task: []CheckpointDecision{{Kind: "bogus"}}}}},
		{Schema: CheckpointSchema, Cells: []CheckpointCell{
			{Pending: true, Task: []CheckpointDecision{{Kind: "sched", Cands: []int{1, 2}, Branch: 2}}}}},
		{Schema: CheckpointSchema, Cells: []CheckpointCell{
			{Pending: true, Task: []CheckpointDecision{{Kind: "read", N: 2, Branch: 5}}}}},
	}
	for i, cp := range bad {
		if err := cp.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
	good := Checkpoint{Schema: CheckpointSchema, Cells: []CheckpointCell{
		{Result: &Result{}},
		{Pending: true, Task: []CheckpointDecision{{Kind: "sched", Cands: []int{1, 2}, Branch: 1}}},
		{Pending: true}, // root task, empty path
	}}
	if err := good.Validate(); err != nil {
		t.Errorf("valid checkpoint rejected: %v", err)
	}
}

// --- Progress: ETA clamp and scheduler gauges --------------------------

// TestEtaForClamp: the ETA is clamped to zero on overshoot (final
// snapshots can exceed maxExecs), zero/negative rates, and non-finite
// rates — all of which previously produced negative or NaN durations.
func TestEtaForClamp(t *testing.T) {
	cases := []struct {
		execs, max int
		rate       float64
		want       time.Duration
	}{
		{50, 100, 50, time.Second},
		{100, 100, 50, 0}, // exactly at the bound
		{150, 100, 50, 0}, // overshoot: was negative
		{0, 100, 0, 0},    // no rate yet: was +Inf via division? (guarded)
		{0, 100, math.NaN(), 0},
		{0, 100, math.Inf(1), 0},
		{0, 100, -5, 0},
		{50, 0, 50, 0}, // unbounded run
	}
	for i, c := range cases {
		if got := etaFor(c.execs, c.max, c.rate); got != c.want {
			t.Errorf("case %d: etaFor(%d, %d, %v) = %v, want %v", i, c.execs, c.max, c.rate, got, c.want)
		}
	}
}

// TestProgressStealsAndFrontier: a parallel run's final snapshot reports
// the engine gauges (frontier drained to zero) and a clamped ETA.
func TestProgressStealsAndFrontier(t *testing.T) {
	var final Progress
	res := Explore(Config{
		Parallelism:      4,
		Progress:         func(p Progress) { final = p },
		ProgressInterval: time.Hour, // only the closing snapshot
	}, manyExecProgram)
	if !final.Final {
		t.Fatal("closing snapshot not delivered")
	}
	if final.Executions != res.Executions {
		t.Errorf("final snapshot executions %d, want %d", final.Executions, res.Executions)
	}
	if final.Frontier != 0 {
		t.Errorf("drained run should report frontier 0, got %d", final.Frontier)
	}
	if final.Steals != res.Stats.Steals {
		t.Errorf("final snapshot steals %d, want %d", final.Steals, res.Stats.Steals)
	}
	if final.ETA != 0 {
		t.Errorf("unbounded run must report zero ETA, got %v", final.ETA)
	}
}

// --- runPool / mergeInto edge cases ------------------------------------

// TestRunPoolEdges: more workers than tasks runs each task exactly once;
// zero tasks (and zero workers) is a no-op instead of a hang.
func TestRunPoolEdges(t *testing.T) {
	var ran atomic.Int64
	runPool(16, 3, func(int) { ran.Add(1) })
	if ran.Load() != 3 {
		t.Errorf("workers>tasks: ran %d tasks, want 3", ran.Load())
	}
	runPool(4, 0, func(int) { t.Error("zero tasks must not run anything") })
	ran.Store(0)
	runPool(0, 2, func(int) { ran.Add(1) })
	if ran.Load() != 2 {
		t.Errorf("zero workers: ran %d tasks, want 2 (clamped to one worker)", ran.Load())
	}
}

// TestMergeIntoFailureCap: per-shard results each retain up to the cap,
// and the merged result keeps exactly the first maxFailures in task
// order with correctly offset execution indices — never under-reporting
// a failure a sequential run would have kept.
func TestMergeIntoFailureCap(t *testing.T) {
	mk := func(execs int, at ...int) *Result {
		r := &Result{Executions: execs, FailureCount: len(at)}
		for _, e := range at {
			r.Failures = append(r.Failures, &Failure{Kind: FailDeadlock, Execution: e})
		}
		return r
	}
	res := &Result{}
	locals := []*Result{
		mk(4, 1, 3), // global 1, 3
		nil,         // worker that never started
		mk(2, 2),    // global 6
		mk(3, 1, 2, 3),
	}
	mergeInto(res, locals, 4)
	if res.Executions != 9 || res.FailureCount != 6 {
		t.Fatalf("merged counts wrong: %+v", res)
	}
	want := []int{1, 3, 6, 7} // the first 4 in fold order
	if len(res.Failures) != len(want) {
		t.Fatalf("retained %d failures, want %d", len(res.Failures), len(want))
	}
	for i, w := range want {
		if res.Failures[i].Execution != w {
			t.Errorf("failure %d at execution %d, want %d", i, res.Failures[i].Execution, w)
		}
	}
}
