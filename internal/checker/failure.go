package checker

import (
	"encoding/json"
	"fmt"
)

// FailureKind classifies a problem detected during exploration.
type FailureKind uint8

const (
	// FailDataRace is a data race on a plain (non-atomic) location —
	// a CDSChecker built-in check.
	FailDataRace FailureKind = iota
	// FailUninitLoad is an atomic load with no store to read from —
	// a CDSChecker built-in check.
	FailUninitLoad
	// FailDeadlock means no thread can ever make progress (threads
	// blocked on locks/joins that will never be satisfied).
	FailDeadlock
	// FailLivelock means all remaining threads spin in yield loops with
	// no possible state change.
	FailLivelock
	// FailTooManySteps means the execution exceeded the per-run step
	// bound; the run is pruned rather than reported as a bug.
	FailTooManySteps
	// FailAssertion is a user assertion failure (Thread.Assert) or a
	// specification violation reported by the OnExecution hook.
	FailAssertion
	// FailAdmissibility is an inadmissible execution reported by the
	// specification checker (the CDSSpec "warning" channel).
	FailAdmissibility
	// FailAPIMisuse is an incorrect use of the checker API itself
	// (unlocking a mutex the thread does not hold, etc.).
	FailAPIMisuse
	// FailMixedRace is a race between an atomic access and a non-atomic
	// access to the same atomic location (Atomic.RawLoad/RawStore) — the
	// C11Tester-style mixed-access check, a built-in like FailDataRace.
	// Appended after FailAPIMisuse so persisted numeric kinds (if any)
	// keep their values.
	FailMixedRace

	// numFailureKinds counts the kinds above. Keep it last: the
	// exhaustiveness tests iterate 0..numFailureKinds-1 to catch a new
	// kind that silently falls through to the String() default or lands
	// in the wrong Figure 8 channel.
	numFailureKinds
)

// FailureKinds returns every defined failure kind in declaration order.
// Exhaustiveness tests outside this package (the fuzz triage switch, the
// harness Figure 8 channels) iterate it so a newly added kind cannot
// silently fall through their classification switches.
func FailureKinds() []FailureKind {
	out := make([]FailureKind, 0, numFailureKinds)
	for k := FailureKind(0); k < numFailureKinds; k++ {
		out = append(out, k)
	}
	return out
}

// String returns a short name for the failure kind.
func (k FailureKind) String() string {
	switch k {
	case FailDataRace:
		return "data-race"
	case FailUninitLoad:
		return "uninitialized-load"
	case FailDeadlock:
		return "deadlock"
	case FailLivelock:
		return "livelock"
	case FailTooManySteps:
		return "step-bound"
	case FailAssertion:
		return "assertion"
	case FailAdmissibility:
		return "admissibility"
	case FailAPIMisuse:
		return "api-misuse"
	case FailMixedRace:
		return "mixed-race"
	default:
		return fmt.Sprintf("FailureKind(%d)", uint8(k))
	}
}

// BuiltIn reports whether the failure corresponds to one of CDSChecker's
// built-in checks (as opposed to a CDSSpec specification check). The
// paper's Figure 8 classifies injected-bug detections by this distinction.
func (k FailureKind) BuiltIn() bool {
	switch k {
	case FailDataRace, FailUninitLoad, FailDeadlock, FailLivelock, FailMixedRace:
		return true
	}
	return false
}

// Channel names the Figure 8 detection channel a failure of this kind is
// counted under: "builtin" for CDSChecker's built-in checks,
// "admissibility" for the CDSSpec warning channel, "assertion" for user
// assertions and specification violations, and "none" for kinds that
// must never surface as failures at all (a FailTooManySteps run is
// pruned, not reported). The harness classifies by this method so a new
// kind cannot silently land in the wrong column.
func (k FailureKind) Channel() string {
	switch {
	case k == FailTooManySteps:
		return "none"
	case k.BuiltIn():
		return "builtin"
	case k == FailAdmissibility:
		return "admissibility"
	default:
		return "assertion"
	}
}

// MarshalJSON encodes the kind as its String() name, keeping exported
// JSON stable if the enum is ever reordered.
func (k FailureKind) MarshalJSON() ([]byte, error) {
	return []byte(fmt.Sprintf("%q", k.String())), nil
}

// UnmarshalJSON decodes a kind from its String() name, so exported
// failures (bench snapshots, fuzz corpora, shrink results) round-trip.
func (k *FailureKind) UnmarshalJSON(data []byte) error {
	var name string
	if err := json.Unmarshal(data, &name); err != nil {
		return err
	}
	for _, cand := range FailureKinds() {
		if cand.String() == name {
			*k = cand
			return nil
		}
	}
	return fmt.Errorf("unknown failure kind %q", name)
}

// Failure describes one detected problem, with enough context to act on.
type Failure struct {
	Kind FailureKind `json:"kind"`
	// Msg is a human-readable description.
	Msg string `json:"msg"`
	// Execution is the 1-based index of the execution that exposed the
	// failure.
	Execution int `json:"execution"`
	// ActionID is the trace ID of the last action recorded when the
	// failure was detected — the node ExportDOT highlights. 0 means
	// unknown: action 0 is always the root thread's thread-start, never
	// itself a failure site. Spec-layer failures (reported after the
	// execution completes) leave it 0.
	ActionID int `json:"action_id,omitempty"`
	// Trace is a rendering of the execution's action trace (may be
	// truncated).
	Trace string `json:"trace,omitempty"`
}

// Error implements the error interface.
func (f *Failure) Error() string {
	return fmt.Sprintf("%s: %s (execution %d)", f.Kind, f.Msg, f.Execution)
}
