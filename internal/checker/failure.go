package checker

import "fmt"

// FailureKind classifies a problem detected during exploration.
type FailureKind uint8

const (
	// FailDataRace is a data race on a plain (non-atomic) location —
	// a CDSChecker built-in check.
	FailDataRace FailureKind = iota
	// FailUninitLoad is an atomic load with no store to read from —
	// a CDSChecker built-in check.
	FailUninitLoad
	// FailDeadlock means no thread can ever make progress (threads
	// blocked on locks/joins that will never be satisfied).
	FailDeadlock
	// FailLivelock means all remaining threads spin in yield loops with
	// no possible state change.
	FailLivelock
	// FailTooManySteps means the execution exceeded the per-run step
	// bound; the run is pruned rather than reported as a bug.
	FailTooManySteps
	// FailAssertion is a user assertion failure (Thread.Assert) or a
	// specification violation reported by the OnExecution hook.
	FailAssertion
	// FailAdmissibility is an inadmissible execution reported by the
	// specification checker (the CDSSpec "warning" channel).
	FailAdmissibility
	// FailAPIMisuse is an incorrect use of the checker API itself
	// (unlocking a mutex the thread does not hold, etc.).
	FailAPIMisuse
)

// String returns a short name for the failure kind.
func (k FailureKind) String() string {
	switch k {
	case FailDataRace:
		return "data-race"
	case FailUninitLoad:
		return "uninitialized-load"
	case FailDeadlock:
		return "deadlock"
	case FailLivelock:
		return "livelock"
	case FailTooManySteps:
		return "step-bound"
	case FailAssertion:
		return "assertion"
	case FailAdmissibility:
		return "admissibility"
	case FailAPIMisuse:
		return "api-misuse"
	default:
		return fmt.Sprintf("FailureKind(%d)", uint8(k))
	}
}

// BuiltIn reports whether the failure corresponds to one of CDSChecker's
// built-in checks (as opposed to a CDSSpec specification check). The
// paper's Figure 8 classifies injected-bug detections by this distinction.
func (k FailureKind) BuiltIn() bool {
	switch k {
	case FailDataRace, FailUninitLoad, FailDeadlock, FailLivelock:
		return true
	}
	return false
}

// Failure describes one detected problem, with enough context to act on.
type Failure struct {
	Kind FailureKind
	// Msg is a human-readable description.
	Msg string
	// Execution is the 1-based index of the execution that exposed the
	// failure.
	Execution int
	// Trace is a rendering of the execution's action trace (may be
	// truncated).
	Trace string
}

// Error implements the error interface.
func (f *Failure) Error() string {
	return fmt.Sprintf("%s: %s (execution %d)", f.Kind, f.Msg, f.Execution)
}
