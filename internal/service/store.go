package service

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/harness"
)

// The store owns the daemon's state directory:
//
//	state/
//	  journal.jsonl        append-only job event log, fsynced per record
//	  addr                 the bound API address (written on Start)
//	  jobs/<id>/checkpoint.json   explore-job checkpoint (atomic + durable)
//	  jobs/<id>/result.json       terminal payload (atomic + durable)
//
// Crash-safety contract: every journal append is fsynced before the
// daemon acts on it (acknowledges a submit, starts a run, reports a
// terminal state), and checkpoint/result files go through the
// harness.WriteCheckpointFile discipline — temp file, fsync, rename,
// directory fsync — so a power loss can never observe an acknowledged
// record missing or a torn file under a final name.

// JournalSchema identifies the journal record layout.
const JournalSchema = "cdsspec-journal/v1"

// journalRecord is one line of the journal. Submit records carry the
// spec; state records carry the transition (and, for terminal states,
// the summary and error).
type journalRecord struct {
	Schema string `json:"schema,omitempty"` // first record only
	Seq    int    `json:"seq"`
	Event  string `json:"event"` // "submit" | "state"
	ID     string `json:"id"`
	// Submit fields.
	Spec *JobSpec `json:"spec,omitempty"`
	// State fields.
	State   JobState `json:"state,omitempty"`
	Summary *Summary `json:"summary,omitempty"`
	Error   string   `json:"error,omitempty"`
}

// store is the on-disk half of the server. Not safe for concurrent use;
// the server serializes access under its own mutex.
type store struct {
	dir     string
	journal *os.File
	seq     int
}

// openStore creates (or reopens) the state directory and its journal.
func openStore(dir string) (*store, error) {
	if dir == "" {
		return nil, fmt.Errorf("service: state directory path is empty")
	}
	if err := os.MkdirAll(filepath.Join(dir, "jobs"), 0o755); err != nil {
		return nil, fmt.Errorf("service: creating state directory: %w", err)
	}
	path := filepath.Join(dir, "journal.jsonl")
	_, statErr := os.Stat(path)
	created := os.IsNotExist(statErr)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("service: opening journal: %w", err)
	}
	if created {
		// Make the journal's creation itself durable: the per-record
		// file fsync does not cover the directory entry, and a journal
		// that vanishes in a crash silently forgets acknowledged jobs.
		if err := harness.SyncDir(dir); err != nil {
			f.Close()
			return nil, err
		}
	}
	return &store{dir: dir, journal: f}, nil
}

func (st *store) close() error { return st.journal.Close() }

// append writes one record and fsyncs it. The daemon only acts on an
// event (acknowledges, starts, finishes) after append returns, so the
// journal is always at least as new as any externally visible state.
func (st *store) append(rec journalRecord) error {
	st.seq++
	rec.Seq = st.seq
	if st.seq == 1 {
		rec.Schema = JournalSchema
	}
	blob, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("service: encoding journal record: %w", err)
	}
	if _, err := st.journal.Write(append(blob, '\n')); err != nil {
		return fmt.Errorf("service: appending journal record: %w", err)
	}
	if err := st.journal.Sync(); err != nil {
		return fmt.Errorf("service: syncing journal: %w", err)
	}
	return nil
}

// jobDir returns (and creates) the job's artifact directory.
func (st *store) jobDir(id string) (string, error) {
	dir := filepath.Join(st.dir, "jobs", id)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("service: creating job directory: %w", err)
	}
	return dir, nil
}

// checkpointPath is where an explore job's checkpoint envelope lives.
func (st *store) checkpointPath(id string) string {
	return filepath.Join(st.dir, "jobs", id, "checkpoint.json")
}

// writeResult durably persists a terminal payload (the full Result or
// TriageResult, wrapped with the job id and kind) next to the
// checkpoint, via the same temp-fsync-rename-fsync discipline.
func (st *store) writeResult(id string, payload any) error {
	dir, err := st.jobDir(id)
	if err != nil {
		return err
	}
	blob, err := json.MarshalIndent(payload, "", "  ")
	if err != nil {
		return fmt.Errorf("service: encoding result: %w", err)
	}
	path := filepath.Join(dir, "result.json")
	tmp, err := os.CreateTemp(dir, ".result-*")
	if err != nil {
		return fmt.Errorf("service: creating result temp file: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(append(blob, '\n')); err != nil {
		tmp.Close()
		return fmt.Errorf("service: writing result: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("service: syncing result: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("service: closing result temp file: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("service: committing result: %w", err)
	}
	return harness.SyncDir(dir)
}

// replay reads the journal back and rebuilds the job table in submit
// order. A torn final line (the one write that can be lost to a crash,
// since every complete record was fsynced) is tolerated and dropped;
// garbage anywhere earlier is a corrupt journal and refuses recovery.
func (st *store) replay() ([]*job, error) {
	f, err := os.Open(filepath.Join(st.dir, "journal.jsonl"))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("service: opening journal for replay: %w", err)
	}
	defer f.Close()

	byID := map[string]*job{}
	var order []*job
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	line := 0
	var torn bool
	for sc.Scan() {
		line++
		if torn {
			return nil, fmt.Errorf("service: journal line %d: record follows an undecodable line — journal is corrupt, not torn", line)
		}
		var rec journalRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			// Only acceptable as the final, partially written line.
			torn = true
			continue
		}
		if rec.Seq > st.seq {
			st.seq = rec.Seq
		}
		switch rec.Event {
		case "submit":
			if rec.Spec == nil {
				return nil, fmt.Errorf("service: journal line %d: submit record without a spec", line)
			}
			j := &job{id: rec.ID, spec: *rec.Spec, state: StateQueued}
			byID[rec.ID] = j
			order = append(order, j)
		case "state":
			j := byID[rec.ID]
			if j == nil {
				return nil, fmt.Errorf("service: journal line %d: state record for unknown job %s", line, rec.ID)
			}
			j.state = rec.State
			if rec.State == StateRunning {
				j.attempts++
			}
			if rec.Summary != nil {
				j.summary = rec.Summary
			}
			if rec.Error != "" {
				j.err = rec.Error
			}
		default:
			return nil, fmt.Errorf("service: journal line %d: unknown event %q", line, rec.Event)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("service: reading journal: %w", err)
	}
	return order, nil
}
