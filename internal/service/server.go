package service

import (
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/checker"
	"repro/internal/core"
	"repro/internal/fuzz"
	"repro/internal/harness"
)

// Config configures a daemon instance.
type Config struct {
	// StateDir is the directory holding the journal and per-job
	// artifacts (required). Reopening an existing directory recovers its
	// queue and resumes checkpointed jobs.
	StateDir string
	// Addr is the listen address (host:port). Empty means
	// "127.0.0.1:0"; the bound address is written to StateDir/addr
	// either way, so clients and tests can discover an ephemeral port.
	Addr string
	// Workers is the job worker-pool size (default 1). Each running job
	// additionally parallelizes internally per its spec's Parallelism.
	Workers int
	// CheckpointEvery is the default periodic checkpoint interval for
	// explore jobs (default 2s; a job spec may override it).
	CheckpointEvery time.Duration
	// ProgressEvery is the progress snapshot period fed to watchers and
	// the metrics endpoint (default 250ms).
	ProgressEvery time.Duration
	// Logf, when set, receives daemon log lines (default: discard).
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 2 * time.Second
	}
	if c.ProgressEvery <= 0 {
		c.ProgressEvery = 250 * time.Millisecond
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// job is the server-side state of one submission. All mutable fields
// are guarded by the server mutex; stop is closed at most once (via
// stopOnce) with stopReason recorded first.
type job struct {
	id   string
	spec JobSpec

	state    JobState
	attempts int
	resumed  bool
	err      string
	summary  *Summary
	progress *checker.Progress

	stop       chan struct{}
	stopOnce   *sync.Once
	stopReason string // "cancel" | "drain" | "deadline"

	subs map[chan Event]struct{}
}

func (j *job) view() JobView {
	v := JobView{
		ID:       j.id,
		Spec:     j.spec,
		State:    j.state,
		Attempts: j.attempts,
		Resumed:  j.resumed,
		Error:    j.err,
		Summary:  j.summary,
	}
	if j.progress != nil && j.state == StateRunning {
		p := *j.progress
		v.Progress = &p
	}
	return v
}

// Server is one daemon instance. Open it against a state directory,
// Start it to bind the API and the worker pool, and Drain it to stop
// gracefully (running jobs checkpoint and suspend; a later Open against
// the same directory resumes them).
type Server struct {
	cfg Config
	st  *store

	mu       sync.Mutex
	cond     *sync.Cond
	jobs     map[string]*job
	order    []*job
	queue    []*job
	draining bool
	nextID   int
	// resumes counts explore attempts that continued a checkpoint.
	resumes int

	start   time.Time
	wg      sync.WaitGroup
	ln      net.Listener
	httpSrv *http.Server
}

// Open loads (or initializes) the state directory, replays the journal,
// and requeues every non-terminal job — the crash/restart recovery path.
// The server is not yet serving; call Start.
func Open(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	st, err := openStore(cfg.StateDir)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:   cfg,
		st:    st,
		jobs:  map[string]*job{},
		start: time.Now(),
	}
	s.cond = sync.NewCond(&s.mu)
	recovered, err := st.replay()
	if err != nil {
		st.close()
		return nil, err
	}
	for _, j := range recovered {
		s.jobs[j.id] = j
		s.order = append(s.order, j)
		var n int
		if _, err := fmt.Sscanf(j.id, "j%d", &n); err == nil && n > s.nextID {
			s.nextID = n
		}
		if !j.state.Terminal() {
			// Queued again, whatever the journal last said: a job caught
			// running or suspended by the crash/drain resumes from its
			// checkpoint if one exists, or restarts from scratch.
			if j.state != StateQueued {
				s.cfg.Logf("service: recovered %s job %s (%s) from state %s", j.spec.KindOrDefault(), j.id, j.spec.Benchmark, j.state)
			}
			j.state = StateQueued
			s.queue = append(s.queue, j)
		}
	}
	return s, nil
}

// Start binds the listener, writes the addr file, and starts the worker
// pool and the HTTP API.
func (s *Server) Start() error {
	addr := s.cfg.Addr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("service: listening on %s: %w", addr, err)
	}
	s.ln = ln
	if err := os.WriteFile(filepath.Join(s.cfg.StateDir, "addr"), []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
		ln.Close()
		return fmt.Errorf("service: writing addr file: %w", err)
	}
	s.httpSrv = &http.Server{Handler: s.apiHandler()}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		if err := s.httpSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
			s.cfg.Logf("service: http server: %v", err)
		}
	}()
	for w := 0; w < s.cfg.Workers; w++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.workerLoop()
		}()
	}
	s.cfg.Logf("service: serving on %s (state %s, %d workers)", ln.Addr(), s.cfg.StateDir, s.cfg.Workers)
	return nil
}

// Addr returns the bound API address (valid after Start).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Drain stops the daemon gracefully: the queue closes, running jobs are
// interrupted with reason "drain" — their engines write a final
// checkpoint and the jobs journal as suspended — the workers and the
// HTTP server stop, and the journal is closed. A subsequent Open against
// the same state directory requeues the suspended jobs and resumes them
// from their checkpoints.
func (s *Server) Drain() error {
	s.mu.Lock()
	s.draining = true
	for _, j := range s.jobs {
		if j.state == StateRunning {
			s.stopLocked(j, "drain")
		}
	}
	s.cond.Broadcast()
	s.mu.Unlock()
	if s.httpSrv != nil {
		s.httpSrv.Close()
	}
	s.wg.Wait()
	return s.st.close()
}

// stopLocked records the stop reason and closes the job's interrupt
// channel, exactly once. Caller holds s.mu.
func (s *Server) stopLocked(j *job, reason string) {
	if j.stop == nil {
		return
	}
	once, stop := j.stopOnce, j.stop
	if j.stopReason == "" {
		j.stopReason = reason
	}
	once.Do(func() { close(stop) })
}

// Submit validates, journals, and enqueues a job. The journal append
// happens before the job is acknowledged, so a crash immediately after
// Submit returns still knows the job.
func (s *Server) Submit(spec JobSpec) (JobView, error) {
	if err := spec.Validate(); err != nil {
		return JobView{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return JobView{}, fmt.Errorf("service: daemon is draining, not accepting jobs")
	}
	s.nextID++
	id := fmt.Sprintf("j%06d", s.nextID)
	if err := s.st.append(journalRecord{Event: "submit", ID: id, Spec: &spec}); err != nil {
		return JobView{}, err
	}
	j := &job{id: id, spec: spec, state: StateQueued}
	s.jobs[id] = j
	s.order = append(s.order, j)
	s.queue = append(s.queue, j)
	s.cond.Signal()
	s.publishLocked(j, Event{ID: id, State: StateQueued})
	return j.view(), nil
}

// Job returns one job's view.
func (s *Server) Job(id string) (JobView, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobView{}, false
	}
	return j.view(), true
}

// JobList returns every job in submit order.
func (s *Server) JobList() []JobView {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobView, len(s.order))
	for i, j := range s.order {
		out[i] = j.view()
	}
	return out
}

// Cancel requests cancellation: a queued job goes terminal immediately,
// a running one is interrupted (its engine checkpoints and returns, and
// the worker journals the terminal state). Canceling a terminal job is
// an error.
func (s *Server) Cancel(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return fmt.Errorf("service: unknown job %s", id)
	}
	switch j.state {
	case StateQueued:
		if err := s.st.append(journalRecord{Event: "state", ID: id, State: StateCanceled}); err != nil {
			return err
		}
		j.state = StateCanceled
		s.publishLocked(j, Event{ID: id, State: StateCanceled})
		return nil
	case StateRunning:
		s.stopLocked(j, "cancel")
		return nil
	default:
		return fmt.Errorf("service: job %s is already %s", id, j.state)
	}
}

// workerLoop pops queued jobs until the daemon drains.
func (s *Server) workerLoop() {
	for {
		s.mu.Lock()
		for !s.draining && len(s.queue) == 0 {
			s.cond.Wait()
		}
		if s.draining {
			s.mu.Unlock()
			return
		}
		j := s.queue[0]
		s.queue = s.queue[1:]
		if j.state != StateQueued {
			// Canceled while queued; already journaled terminal.
			s.mu.Unlock()
			continue
		}
		if err := s.st.append(journalRecord{Event: "state", ID: j.id, State: StateRunning}); err != nil {
			s.failLocked(j, fmt.Sprintf("journaling run start: %v", err))
			s.mu.Unlock()
			continue
		}
		j.state = StateRunning
		j.attempts++
		j.stop = make(chan struct{})
		j.stopOnce = &sync.Once{}
		j.stopReason = ""
		s.publishLocked(j, Event{ID: j.id, State: StateRunning})
		s.mu.Unlock()

		s.runJob(j)
	}
}

// failLocked journals a terminal failure. Caller holds s.mu. Journal
// errors at this point are logged and the in-memory state still moves,
// so the daemon never wedges on a full disk — the job is simply re-run
// after a restart.
func (s *Server) failLocked(j *job, msg string) {
	if err := s.st.append(journalRecord{Event: "state", ID: j.id, State: StateFailed, Error: msg}); err != nil {
		s.cfg.Logf("service: journaling failure of %s: %v", j.id, err)
	}
	j.state = StateFailed
	j.err = msg
	s.publishLocked(j, Event{ID: j.id, State: StateFailed, Error: msg})
}

// runJob runs one job to a terminal (or suspended) state. Called off the
// worker goroutine with the job already journaled as running.
func (s *Server) runJob(j *job) {
	var timer *time.Timer
	if d := j.spec.Deadline; d > 0 {
		timer = time.AfterFunc(d, func() {
			s.mu.Lock()
			defer s.mu.Unlock()
			if j.state == StateRunning {
				s.stopLocked(j, "deadline")
			}
		})
		defer timer.Stop()
	}

	var summary *Summary
	var payload any
	var runErr error
	switch j.spec.KindOrDefault() {
	case KindExplore:
		summary, payload, runErr = s.runExplore(j)
	case KindFast:
		summary, payload, runErr = s.runFast(j)
	case KindTriage:
		summary, payload, runErr = s.runTriage(j)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if timer != nil {
		timer.Stop()
	}
	if runErr != nil {
		s.failLocked(j, runErr.Error())
		return
	}

	state := StateDone
	switch j.stopReason {
	case "cancel":
		state = StateCanceled
	case "deadline":
		state = StateDeadline
	case "drain":
		// Not terminal: the final checkpoint is on disk (explore) or the
		// job simply reruns (fast/triage); the restart replay requeues.
		if err := s.st.append(journalRecord{Event: "state", ID: j.id, State: StateSuspended}); err != nil {
			s.cfg.Logf("service: journaling suspension of %s: %v", j.id, err)
		}
		j.state = StateSuspended
		j.summary = summary
		s.publishLocked(j, Event{ID: j.id, State: StateSuspended, Summary: summary})
		return
	}

	// Persist the full payload before journaling the terminal state:
	// once the journal says done, result.json must exist.
	if payload != nil {
		if err := s.st.writeResult(j.id, payload); err != nil {
			s.failLocked(j, err.Error())
			return
		}
	}
	if err := s.st.append(journalRecord{Event: "state", ID: j.id, State: state, Summary: summary}); err != nil {
		s.cfg.Logf("service: journaling completion of %s: %v", j.id, err)
	}
	j.state = state
	j.summary = summary
	s.publishLocked(j, Event{ID: j.id, State: state, Summary: summary})
	s.cfg.Logf("service: job %s (%s %s) -> %s", j.id, j.spec.KindOrDefault(), j.spec.Benchmark, state)
}

// resultPayload wraps a terminal payload with its job identity, so a
// result.json is self-describing.
type resultPayload struct {
	ID        string              `json:"id"`
	Kind      JobKind             `json:"kind"`
	Benchmark string              `json:"benchmark"`
	Result    *checker.Result     `json:"result,omitempty"`
	Triage    *fuzz.TriageResult  `json:"triage,omitempty"`
}

// runExplore runs (or resumes) a spec-checked work-stealing exploration.
func (s *Server) runExplore(j *job) (*Summary, any, error) {
	b := harness.BenchmarkByName(j.spec.Benchmark)
	if b == nil {
		return nil, nil, fmt.Errorf("unknown benchmark %q", j.spec.Benchmark)
	}
	nocache := j.spec.NoCache
	cpPath := s.st.checkpointPath(j.id)
	if _, err := s.st.jobDir(j.id); err != nil {
		return nil, nil, err
	}

	cfg := checker.Config{
		Model:            j.spec.ModelID(),
		MaxExecutions:    j.spec.MaxExecutions,
		Parallelism:      j.spec.Parallelism,
		ProgressInterval: s.cfg.ProgressEvery,
		Progress:         func(p checker.Progress) { s.publishProgress(j, p) },
		Interrupt:        j.stop,
	}

	// Resume path: a checkpoint on disk means a previous attempt was
	// suspended or crashed. The envelope must belong to this job's
	// benchmark and model (the PR 8 refusal — a frontier is only valid
	// under the model that produced it); the spec-cache switch is
	// adopted from the envelope so the resumed half explores under the
	// exact configuration of the first half.
	if _, err := os.Stat(cpPath); err == nil {
		cf, err := harness.ReadCheckpointFile(cpPath)
		if err != nil {
			return nil, nil, fmt.Errorf("reading job checkpoint: %w", err)
		}
		if cf.Benchmark != b.Name {
			return nil, nil, fmt.Errorf("job checkpoint belongs to benchmark %q, job wants %q", cf.Benchmark, b.Name)
		}
		if err := cf.ValidateModel(j.spec.ModelID()); err != nil {
			return nil, nil, err
		}
		nocache = cf.NoCache
		cfg.ResumeFrom = cf.State
		s.mu.Lock()
		j.resumed = true
		s.resumes++
		s.mu.Unlock()
		s.cfg.Logf("service: job %s resumes from checkpoint (%d pending tasks, %d executions done)",
			j.id, cf.State.Pending(), cf.State.Executions)
	} else if !os.IsNotExist(err) {
		return nil, nil, fmt.Errorf("probing job checkpoint: %w", err)
	}

	cfg.Checkpoint = func(cp *checker.Checkpoint) {
		cf := &harness.CheckpointFile{
			Schema:    harness.CheckpointFileSchema,
			Benchmark: b.Name,
			Workers:   j.spec.Parallelism,
			Model:     string(j.spec.ModelID()),
			NoCache:   nocache,
			State:     cp,
		}
		if err := harness.WriteCheckpointFile(cpPath, cf); err != nil {
			s.cfg.Logf("service: checkpointing job %s: %v", j.id, err)
		}
	}
	cfg.CheckpointEvery = j.spec.CheckpointEvery
	if cfg.CheckpointEvery <= 0 {
		cfg.CheckpointEvery = s.cfg.CheckpointEvery
	}
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}

	spec := b.Spec()
	spec.DisableCheckCache = nocache
	res := core.Explore(spec, cfg, b.Progs(b.Orders())[0])
	return summarize(res), &resultPayload{ID: j.id, Kind: KindExplore, Benchmark: b.Name, Result: res}, nil
}

// runFast runs a fast-mode screen (bare checker, built-in checks only).
func (s *Server) runFast(j *job) (*Summary, any, error) {
	b := harness.BenchmarkByName(j.spec.Benchmark)
	if b == nil {
		return nil, nil, fmt.Errorf("unknown benchmark %q", j.spec.Benchmark)
	}
	cfg := checker.Config{
		FastMode:      true,
		Model:         j.spec.ModelID(),
		Seed:          int64(j.spec.Seed),
		MaxExecutions: j.spec.MaxExecutions,
		Parallelism:   j.spec.Parallelism,
		Interrupt:     j.stop,
	}
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	res := checker.Explore(cfg, b.Progs(b.Orders())[0])
	return summarize(res), &resultPayload{ID: j.id, Kind: KindFast, Benchmark: b.Name, Result: res}, nil
}

// runTriage runs a fuzz triage campaign (screen → confirm → shrink).
func (s *Server) runTriage(j *job) (*Summary, any, error) {
	b := harness.BenchmarkByName(j.spec.Benchmark)
	if b == nil {
		return nil, nil, fmt.Errorf("unknown benchmark %q", j.spec.Benchmark)
	}
	tcfg := fuzz.TriageConfig{
		Seed:          j.spec.Seed,
		Count:         j.spec.Count,
		FastRuns:      j.spec.FastRuns,
		ConfirmBudget: j.spec.Budget,
		Shrink:        j.spec.Shrink,
		Interrupt:     j.stop,
	}
	if j.spec.Parallelism > 0 {
		tcfg.Workers = j.spec.Parallelism
	}
	tres, err := fuzz.Triage(b.FuzzTarget(), tcfg)
	if err != nil {
		return nil, nil, err
	}
	sum := &Summary{
		Executions: tres.FastExecutions + tres.ConfirmExecutions,
		Elapsed:    tres.Elapsed,
		Screened:   tres.Screened,
		Flagged:    tres.Flagged,
		Confirmed:  len(tres.Confirmed),
	}
	return sum, &resultPayload{ID: j.id, Kind: KindTriage, Benchmark: b.Name, Triage: tres}, nil
}

// publishProgress records a running job's latest snapshot and fans it
// out to watchers.
func (s *Server) publishProgress(j *job, p checker.Progress) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j.progress = &p
	if j.state == StateRunning {
		s.publishLocked(j, Event{ID: j.id, State: StateRunning, Progress: &p})
	}
}

// publishLocked fans an event out to the job's subscribers without
// blocking: a watcher that cannot keep up loses intermediate progress
// snapshots, never its subscription (terminal events fit because the
// subscriber channel outsizes the event burst a transition produces).
func (s *Server) publishLocked(j *job, ev Event) {
	for ch := range j.subs {
		select {
		case ch <- ev:
		default:
		}
	}
}

// subscribe registers a watcher channel and returns the job's current
// event so late subscribers see state immediately.
func (s *Server) subscribe(id string, ch chan Event) (Event, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return Event{}, false
	}
	if j.subs == nil {
		j.subs = map[chan Event]struct{}{}
	}
	j.subs[ch] = struct{}{}
	cur := Event{ID: j.id, State: j.state, Summary: j.summary, Error: j.err}
	if j.progress != nil && j.state == StateRunning {
		p := *j.progress
		cur.Progress = &p
	}
	return cur, true
}

func (s *Server) unsubscribe(id string, ch chan Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j, ok := s.jobs[id]; ok {
		delete(j.subs, ch)
	}
}

// Metrics is the counters document the /metrics endpoint serves.
type Metrics struct {
	Schema      string         `json:"schema"`
	Uptime      time.Duration  `json:"uptime_ns"`
	Workers     int            `json:"workers"`
	QueueDepth  int            `json:"queue_depth"`
	Draining    bool           `json:"draining"`
	JobsByState map[string]int `json:"jobs_by_state"`
	// Resumes counts explore attempts that continued a checkpoint.
	Resumes int `json:"resumes"`
	// Executions sums finished jobs' executions plus running jobs'
	// latest progress; ExecsPerSec sums running jobs' current rates.
	Executions  int     `json:"executions"`
	ExecsPerSec float64 `json:"execs_per_sec"`
	// Steals / WorkerBusy / spec-cache counters aggregate the scheduler
	// telemetry the same way.
	Steals          int           `json:"steals"`
	WorkerBusy      time.Duration `json:"worker_busy_ns"`
	SpecCacheHits   int           `json:"spec_cache_hits"`
	SpecCacheMisses int           `json:"spec_cache_misses"`
	// CacheHitRate is hits/(hits+misses) in percent (-1 when no cached
	// checking has happened yet).
	CacheHitRate int `json:"cache_hit_rate_percent"`
}

// MetricsSchema identifies the metrics document layout.
const MetricsSchema = "cdsspec-service-metrics/v1"

// Metrics aggregates the counters across the job table.
func (s *Server) Metrics() Metrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := Metrics{
		Schema:      MetricsSchema,
		Uptime:      time.Since(s.start),
		Workers:     s.cfg.Workers,
		QueueDepth:  len(s.queue),
		Draining:    s.draining,
		JobsByState: map[string]int{},
		Resumes:     s.resumes,
	}
	for _, j := range s.order {
		m.JobsByState[string(j.state)]++
		if j.summary != nil {
			m.Executions += j.summary.Executions
			if st := j.summary.Stats; st != nil {
				m.Steals += st.Steals
				m.WorkerBusy += st.WorkerBusy
				m.SpecCacheHits += st.SpecCacheHits
				m.SpecCacheMisses += st.SpecCacheMisses
			}
			continue
		}
		if j.state == StateRunning && j.progress != nil {
			m.Executions += j.progress.Executions
			m.ExecsPerSec += j.progress.ExecsPerSec
			m.Steals += j.progress.Steals
			m.SpecCacheHits += j.progress.SpecCacheHits
		}
	}
	if total := m.SpecCacheHits + m.SpecCacheMisses; total > 0 {
		m.CacheHitRate = m.SpecCacheHits * 100 / total
	} else {
		m.CacheHitRate = -1
	}
	return m
}
