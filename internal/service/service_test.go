package service

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/checker"
	"repro/internal/core"
	"repro/internal/harness"
)

// startServer opens and starts a daemon against dir, registering
// cleanup. Tests drive it through the HTTP client like real callers.
func startServer(t *testing.T, dir string, workers int) (*Server, *Client) {
	t.Helper()
	srv, err := Open(Config{
		StateDir:        dir,
		Workers:         workers,
		CheckpointEvery: 10 * time.Millisecond,
		ProgressEvery:   5 * time.Millisecond,
		Logf:            t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	return srv, &Client{Base: srv.Addr()}
}

// waitState polls until the job reaches want (or any terminal state)
// and returns its view.
func waitState(t *testing.T, cl *Client, id string, want JobState) JobView {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		v, err := cl.Job(id)
		if err != nil {
			t.Fatalf("polling %s: %v", id, err)
		}
		if v.State == want {
			return v
		}
		if v.State.Terminal() {
			t.Fatalf("job %s reached %s (error %q) while waiting for %s", id, v.State, v.Error, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s", id, want)
	return JobView{}
}

// exploreReference runs the benchmark's primary workload directly, the
// way the daemon's explore jobs do, as the bit-identity reference.
func exploreReference(t *testing.T, name string) *checker.Result {
	t.Helper()
	b := harness.BenchmarkByName(name)
	if b == nil {
		t.Fatalf("benchmark %q missing", name)
	}
	return core.Explore(b.Spec(), checker.Config{}, b.Progs(b.Orders())[0])
}

// readResult loads and decodes a job's persisted result.json.
func readResult(t *testing.T, dir, id string) *resultPayload {
	t.Helper()
	blob, err := os.ReadFile(filepath.Join(dir, "jobs", id, "result.json"))
	if err != nil {
		t.Fatal(err)
	}
	var p resultPayload
	if err := json.Unmarshal(blob, &p); err != nil {
		t.Fatalf("decoding result.json: %v", err)
	}
	return &p
}

// requireResumeIdentical asserts the resume-boundary bit-identity
// contract between a reference run and a (possibly resumed) job result.
func requireResumeIdentical(t *testing.T, name string, want, got *checker.Result) {
	t.Helper()
	if want.Executions != got.Executions || want.Feasible != got.Feasible ||
		want.Pruned != got.Pruned || want.Exhausted != got.Exhausted ||
		want.FailureCount != got.FailureCount {
		t.Fatalf("%s: result differs:\n  want %v (exhausted=%v)\n  got  %v (exhausted=%v)",
			name, want, want.Exhausted, got, got.Exhausted)
	}
	ws, gs := harness.ResumeComparableStats(want.Stats), harness.ResumeComparableStats(got.Stats)
	if ws != gs {
		t.Fatalf("%s: stats differ:\n  want %+v\n  got  %+v", name, ws, gs)
	}
}

// TestServiceExploreJob: submit → run → done, with the persisted result
// bit-identical to a direct exploration and the metrics reflecting it.
func TestServiceExploreJob(t *testing.T) {
	dir := t.TempDir()
	srv, cl := startServer(t, dir, 2)
	defer srv.Drain()

	if err := cl.Health(); err != nil {
		t.Fatal(err)
	}
	v, err := cl.Submit(JobSpec{Benchmark: "RCU", Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	if v.ID == "" || v.State != StateQueued && v.State != StateRunning {
		t.Fatalf("bad submit ack: %+v", v)
	}
	final := waitState(t, cl, v.ID, StateDone)
	if final.Summary == nil || !final.Summary.Exhausted {
		t.Fatalf("done job has no exhausted summary: %+v", final.Summary)
	}

	ref := exploreReference(t, "RCU")
	payload := readResult(t, dir, v.ID)
	if payload.Kind != KindExplore || payload.Benchmark != "RCU" || payload.Result == nil {
		t.Fatalf("bad result payload: kind=%s benchmark=%s", payload.Kind, payload.Benchmark)
	}
	requireResumeIdentical(t, "RCU", ref, payload.Result)

	m, err := cl.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if m.Schema != MetricsSchema || m.JobsByState["done"] != 1 || m.Executions != ref.Executions {
		t.Fatalf("metrics don't reflect the finished job: %+v", m)
	}
}

// TestServiceFastAndTriageJobs: the other two kinds run to done and
// persist kind-appropriate payloads.
func TestServiceFastAndTriageJobs(t *testing.T) {
	dir := t.TempDir()
	srv, cl := startServer(t, dir, 1)
	defer srv.Drain()

	fast, err := cl.Submit(JobSpec{Kind: KindFast, Benchmark: "SPSC Queue", Seed: 7, MaxExecutions: 200})
	if err != nil {
		t.Fatal(err)
	}
	tri, err := cl.Submit(JobSpec{Kind: KindTriage, Benchmark: "Ticket Lock", Seed: 1, Count: 4, FastRuns: 50})
	if err != nil {
		t.Fatal(err)
	}

	fv := waitState(t, cl, fast.ID, StateDone)
	if fv.Summary == nil || fv.Summary.Executions != 200 {
		t.Fatalf("fast job summary: %+v", fv.Summary)
	}
	if p := readResult(t, dir, fast.ID); p.Kind != KindFast || p.Result == nil {
		t.Fatalf("fast payload: %+v", p)
	}

	tv := waitState(t, cl, tri.ID, StateDone)
	if tv.Summary == nil || tv.Summary.Screened != 4 {
		t.Fatalf("triage job summary: %+v", tv.Summary)
	}
	if p := readResult(t, dir, tri.ID); p.Kind != KindTriage || p.Triage == nil || p.Triage.Screened != 4 {
		t.Fatalf("triage payload: %+v", p)
	}
}

// TestServiceSubmitValidation: the API boundary rejects bad specs and
// unknown jobs without creating journal entries.
func TestServiceSubmitValidation(t *testing.T) {
	dir := t.TempDir()
	srv, cl := startServer(t, dir, 1)
	defer srv.Drain()

	bad := []JobSpec{
		{},                                  // no benchmark
		{Benchmark: "No Such Structure"},    // unknown benchmark
		{Benchmark: "RCU", Kind: "exhume"},  // unknown kind
		{Benchmark: "RCU", Model: "tso"},    // unknown model
		{Benchmark: "RCU", MaxExecutions: -1},
		{Benchmark: "RCU", Deadline: -time.Second},
	}
	for i, spec := range bad {
		if _, err := cl.Submit(spec); err == nil {
			t.Errorf("bad spec %d accepted: %+v", i, spec)
		}
	}
	if _, err := cl.Job("j999999"); err == nil || !strings.Contains(err.Error(), "unknown job") {
		t.Errorf("unknown job lookup: %v", err)
	}
	if _, err := cl.Cancel("j999999"); err == nil {
		t.Error("canceling an unknown job succeeded")
	}
	jobs, err := cl.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 0 {
		t.Fatalf("rejected submissions created jobs: %+v", jobs)
	}
}

// TestServiceCancel: canceling a queued job is immediate; canceling a
// running one interrupts the engine; canceling a terminal job errors.
func TestServiceCancel(t *testing.T) {
	dir := t.TempDir()
	srv, cl := startServer(t, dir, 1) // one worker, so the second job queues
	defer srv.Drain()

	running, err := cl.Submit(JobSpec{Benchmark: "Linux RW Lock"})
	if err != nil {
		t.Fatal(err)
	}
	queued, err := cl.Submit(JobSpec{Benchmark: "Seqlock"})
	if err != nil {
		t.Fatal(err)
	}

	if _, err := cl.Cancel(queued.ID); err != nil {
		t.Fatalf("canceling queued job: %v", err)
	}
	if v, _ := cl.Job(queued.ID); v.State != StateCanceled {
		t.Fatalf("queued job after cancel: %s", v.State)
	}
	if _, err := cl.Cancel(queued.ID); err == nil {
		t.Error("canceling a terminal job succeeded")
	}

	waitState(t, cl, running.ID, StateRunning)
	if _, err := cl.Cancel(running.ID); err != nil {
		t.Fatalf("canceling running job: %v", err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		v, err := cl.Job(running.ID)
		if err != nil {
			t.Fatal(err)
		}
		if v.State.Terminal() {
			if v.State != StateCanceled {
				t.Fatalf("canceled running job landed in %s", v.State)
			}
			if v.Summary == nil || v.Summary.Exhausted {
				t.Fatalf("canceled job should report a partial summary: %+v", v.Summary)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("cancel never took effect")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestServiceDeadline: a job whose wall-clock budget expires lands in
// the first-class deadline state with its partial result persisted.
func TestServiceDeadline(t *testing.T) {
	dir := t.TempDir()
	srv, cl := startServer(t, dir, 1)
	defer srv.Drain()

	v, err := cl.Submit(JobSpec{Benchmark: "Seqlock", Deadline: 80 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		cur, err := cl.Job(v.ID)
		if err != nil {
			t.Fatal(err)
		}
		if cur.State.Terminal() {
			if cur.State != StateDeadline {
				t.Fatalf("deadline job landed in %s (error %q)", cur.State, cur.Error)
			}
			if cur.Summary == nil || cur.Summary.Exhausted {
				t.Fatalf("deadline summary should be partial: %+v", cur.Summary)
			}
			if p := readResult(t, dir, v.ID); p.Result == nil || p.Result.Exhausted {
				t.Fatalf("deadline job result should be partial: %+v", p.Result)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("deadline never fired")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestServiceWatch: the SSE stream delivers progress and ends with the
// terminal event carrying the summary.
func TestServiceWatch(t *testing.T) {
	dir := t.TempDir()
	srv, cl := startServer(t, dir, 1)
	defer srv.Drain()

	v, err := cl.Submit(JobSpec{Benchmark: "Linux RW Lock"})
	if err != nil {
		t.Fatal(err)
	}
	var progressEvents int
	last, err := cl.Watch(v.ID, func(ev Event) bool {
		if ev.Progress != nil {
			progressEvents++
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if last.State != StateDone || last.Summary == nil {
		t.Fatalf("watch ended on %s (summary %v)", last.State, last.Summary)
	}
	if progressEvents == 0 {
		t.Error("watch saw no progress events over a ~250ms exploration")
	}
	if _, err := cl.Watch("j999999", nil); err == nil {
		t.Error("watching an unknown job succeeded")
	}
}

// TestServiceDrainResume: the in-process half of the restart-recovery
// contract. Drain a daemon mid-exploration (job suspends with a
// checkpoint), reopen the same state directory, and the resumed job's
// final result is bit-identical to an uninterrupted run.
func TestServiceDrainResume(t *testing.T) {
	dir := t.TempDir()
	srv, cl := startServer(t, dir, 1)

	v, err := cl.Submit(JobSpec{Benchmark: "Linux RW Lock", Parallelism: 2, CheckpointEvery: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the exploration is demonstrably mid-flight: far enough
	// in to have checkpointed, far from the benchmark's 6762 executions.
	deadline := time.Now().Add(30 * time.Second)
	for {
		cur, err := cl.Job(v.ID)
		if err != nil {
			t.Fatal(err)
		}
		if cur.State == StateRunning && cur.Progress != nil && cur.Progress.Executions >= 500 {
			break
		}
		if cur.State.Terminal() {
			t.Fatalf("job finished (%s) before the drain window", cur.State)
		}
		if time.Now().After(deadline) {
			t.Fatal("job never reached the drain window")
		}
		time.Sleep(time.Millisecond)
	}
	if err := srv.Drain(); err != nil {
		t.Fatal(err)
	}

	// The journal now records the suspension and the checkpoint is on
	// disk.
	if _, err := os.Stat(filepath.Join(dir, "jobs", v.ID, "checkpoint.json")); err != nil {
		t.Fatalf("suspended job has no checkpoint: %v", err)
	}

	srv2, cl2 := startServer(t, dir, 1)
	defer srv2.Drain()
	final := waitState(t, cl2, v.ID, StateDone)
	if !final.Resumed || final.Attempts != 2 {
		t.Fatalf("recovered job should be a second, resumed attempt: resumed=%v attempts=%d",
			final.Resumed, final.Attempts)
	}
	ref := exploreReference(t, "Linux RW Lock")
	payload := readResult(t, dir, v.ID)
	requireResumeIdentical(t, "Linux RW Lock drain+resume", ref, payload.Result)

	m, err := cl2.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if m.Resumes != 1 {
		t.Fatalf("metrics should count the resume: %+v", m)
	}
}

// TestServiceModelMismatchOnResume: a suspended job whose checkpoint was
// produced under a different model is refused on resume (the job fails
// instead of silently exploring an incompatible frontier).
func TestServiceModelMismatchOnResume(t *testing.T) {
	dir := t.TempDir()
	srv, cl := startServer(t, dir, 1)

	v, err := cl.Submit(JobSpec{Benchmark: "Seqlock", CheckpointEvery: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		cur, err := cl.Job(v.ID)
		if err != nil {
			t.Fatal(err)
		}
		if cur.State == StateRunning && cur.Progress != nil && cur.Progress.Executions >= 500 {
			break
		}
		if cur.State.Terminal() || time.Now().After(deadline) {
			t.Fatalf("no drain window: %+v", cur)
		}
		time.Sleep(time.Millisecond)
	}
	if err := srv.Drain(); err != nil {
		t.Fatal(err)
	}

	// Corrupt the world: rewrite the checkpoint envelope's model, as if
	// the state directory were shared with a differently-configured run.
	cpPath := filepath.Join(dir, "jobs", v.ID, "checkpoint.json")
	cf, err := harness.ReadCheckpointFile(cpPath)
	if err != nil {
		t.Fatal(err)
	}
	cf.Model = "sc"
	if err := harness.WriteCheckpointFile(cpPath, cf); err != nil {
		t.Fatal(err)
	}

	srv2, cl2 := startServer(t, dir, 1)
	defer srv2.Drain()
	deadline = time.Now().Add(30 * time.Second)
	for {
		cur, err := cl2.Job(v.ID)
		if err != nil {
			t.Fatal(err)
		}
		if cur.State.Terminal() {
			if cur.State != StateFailed || !strings.Contains(cur.Error, "model") {
				t.Fatalf("mismatched resume should fail with a model error, got %s %q", cur.State, cur.Error)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("mismatched resume never resolved")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestServiceDrainRejectsSubmit: a draining daemon refuses new work.
func TestServiceDrainRejectsSubmit(t *testing.T) {
	dir := t.TempDir()
	srv, cl := startServer(t, dir, 1)
	if err := srv.Drain(); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Submit(JobSpec{Benchmark: "RCU"}); err == nil {
		t.Error("draining daemon accepted a job")
	}
}

// TestStoreReplay: journal replay rebuilds the job table, tolerates a
// torn final line, and refuses corruption anywhere earlier.
func TestStoreReplay(t *testing.T) {
	dir := t.TempDir()
	st, err := openStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	spec := &JobSpec{Benchmark: "RCU"}
	records := []journalRecord{
		{Event: "submit", ID: "j000001", Spec: spec},
		{Event: "state", ID: "j000001", State: StateRunning},
		{Event: "state", ID: "j000001", State: StateDone, Summary: &Summary{Executions: 79}},
		{Event: "submit", ID: "j000002", Spec: spec},
		{Event: "state", ID: "j000002", State: StateRunning},
		{Event: "state", ID: "j000002", State: StateSuspended},
	}
	for _, rec := range records {
		if err := st.append(rec); err != nil {
			t.Fatal(err)
		}
	}
	st.close()

	jpath := filepath.Join(dir, "journal.jsonl")
	// A torn final line — half a record, no newline — must be dropped.
	f, err := os.OpenFile(jpath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprint(f, `{"seq":7,"event":"sta`)
	f.Close()

	st2, err := openStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := st2.replay()
	if err != nil {
		t.Fatalf("torn final line should be tolerated: %v", err)
	}
	st2.close()
	if len(jobs) != 2 {
		t.Fatalf("replay found %d jobs, want 2", len(jobs))
	}
	if jobs[0].state != StateDone || jobs[0].summary == nil || jobs[0].summary.Executions != 79 {
		t.Fatalf("job 1 replayed wrong: %+v", jobs[0])
	}
	if jobs[1].state != StateSuspended || jobs[1].attempts != 1 {
		t.Fatalf("job 2 replayed wrong: state=%s attempts=%d", jobs[1].state, jobs[1].attempts)
	}

	// Garbage in the middle is corruption, not tearing.
	blob, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(blob), "\n"), "\n")
	lines[2] = `{"seq":`
	if err := os.WriteFile(jpath, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	st3, err := openStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st3.close()
	if _, err := st3.replay(); err == nil {
		t.Fatal("mid-journal corruption accepted")
	}
}
