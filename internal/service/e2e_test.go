package service

import (
	"log"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

// The kill -9 end-to-end test: a real daemon process is SIGKILLed in
// the middle of a Seqlock exploration (84k executions, seconds of
// work), a second process is started against the same state directory,
// and the recovered job's final result must be bit-identical to an
// uninterrupted run. The daemon lives in a subprocess via the TestMain
// re-exec pattern, so the kill is a genuine process death — no deferred
// cleanup, no flushes, nothing graceful.

const e2eStateEnv = "CDSSPEC_SERVE_E2E_STATE"

func TestMain(m *testing.M) {
	if dir := os.Getenv(e2eStateEnv); dir != "" {
		// Helper mode: run a daemon against dir until killed.
		log.SetPrefix("e2e-daemon: ")
		srv, err := Open(Config{
			StateDir:        dir,
			Workers:         1,
			CheckpointEvery: 25 * time.Millisecond,
			ProgressEvery:   10 * time.Millisecond,
			Logf:            log.Printf,
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := srv.Start(); err != nil {
			log.Fatal(err)
		}
		select {} // parked until SIGKILL
	}
	os.Exit(m.Run())
}

// startDaemonProc launches the test binary in helper mode and waits for
// its addr file.
func startDaemonProc(t *testing.T, dir string) (*exec.Cmd, *Client) {
	t.Helper()
	// Remove any previous addr file so the wait below cannot read a
	// dead daemon's address.
	os.Remove(filepath.Join(dir, "addr"))
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), e2eStateEnv+"="+dir)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		blob, err := os.ReadFile(filepath.Join(dir, "addr"))
		if err == nil && len(blob) > 0 {
			cl := &Client{Base: string(blob[:len(blob)-1])}
			if cl.Health() == nil {
				return cmd, cl
			}
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			cmd.Wait()
			t.Fatal("daemon subprocess never came up")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestServiceKillDashNineRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("-short: skipping the subprocess kill -9 recovery test (~10s)")
	}
	dir := t.TempDir()

	cmd, cl := startDaemonProc(t, dir)
	v, err := cl.Submit(JobSpec{Benchmark: "Seqlock", Parallelism: 2, CheckpointEvery: 25 * time.Millisecond})
	if err != nil {
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatal(err)
	}

	// Wait for the exploration to be well underway — thousands of
	// executions in, a checkpoint on disk, tens of thousands still to
	// go — then pull the plug.
	cpPath := filepath.Join(dir, "jobs", v.ID, "checkpoint.json")
	deadline := time.Now().Add(60 * time.Second)
	for {
		cur, err := cl.Job(v.ID)
		if err != nil {
			cmd.Process.Kill()
			cmd.Wait()
			t.Fatal(err)
		}
		if cur.State.Terminal() {
			cmd.Process.Kill()
			cmd.Wait()
			t.Fatalf("job finished (%s) before the kill window", cur.State)
		}
		_, cpErr := os.Stat(cpPath)
		if cur.State == StateRunning && cur.Progress != nil &&
			cur.Progress.Executions >= 5000 && cpErr == nil {
			break
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			cmd.Wait()
			t.Fatal("job never reached the kill window")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait() // reap; exit error is expected after SIGKILL

	// Restart against the same state directory. Replay requeues the
	// killed job; it must resume from the checkpoint and finish.
	cmd2, cl2 := startDaemonProc(t, dir)
	defer func() {
		cmd2.Process.Kill()
		cmd2.Wait()
	}()

	deadline = time.Now().Add(120 * time.Second)
	var final JobView
	for {
		cur, err := cl2.Job(v.ID)
		if err != nil {
			t.Fatal(err)
		}
		if cur.State.Terminal() {
			final = cur
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("recovered job never finished")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if final.State != StateDone {
		t.Fatalf("recovered job landed in %s (error %q)", final.State, final.Error)
	}
	if !final.Resumed || final.Attempts < 2 {
		t.Fatalf("recovery should resume the checkpoint on a later attempt: resumed=%v attempts=%d",
			final.Resumed, final.Attempts)
	}

	// The recovered result must be bit-identical to an uninterrupted
	// exploration (stats compared under the resume-boundary rules: the
	// spec cache restarts cold, so only the hit+miss total must match).
	ref := exploreReference(t, "Seqlock")
	payload := readResult(t, dir, v.ID)
	requireResumeIdentical(t, "Seqlock kill -9 recovery", ref, payload.Result)
}
