package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// Client talks to a running daemon. It backs the cdsspec
// submit/jobs/watch/cancel subcommands and the service tests.
type Client struct {
	// Base is the daemon address, with or without the http:// prefix
	// (the addr file stores the bare host:port).
	Base string
	// HTTPClient overrides the transport (default http.DefaultClient).
	// Watch streams indefinitely, so the client must not set a global
	// timeout.
	HTTPClient *http.Client
}

func (c *Client) url(path string) string {
	base := c.Base
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	return strings.TrimRight(base, "/") + path
}

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// do runs one request and decodes the JSON response into out, turning
// {"error": ...} bodies into Go errors.
func (c *Client) do(method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		blob, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("encoding request: %w", err)
		}
		body = bytes.NewReader(blob)
	}
	req, err := http.NewRequest(method, c.url(path), body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("reading response: %w", err)
	}
	if resp.StatusCode >= 400 {
		var apiErr struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(blob, &apiErr) == nil && apiErr.Error != "" {
			return fmt.Errorf("%s", apiErr.Error)
		}
		return fmt.Errorf("%s %s: %s", method, path, resp.Status)
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(blob, out); err != nil {
		return fmt.Errorf("decoding response: %w", err)
	}
	return nil
}

// Health checks the daemon's liveness probe.
func (c *Client) Health() error {
	resp, err := c.http().Get(c.url("/healthz"))
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("health check: %s", resp.Status)
	}
	return nil
}

// Submit submits a job and returns its acknowledged view.
func (c *Client) Submit(spec JobSpec) (JobView, error) {
	var v JobView
	err := c.do(http.MethodPost, "/api/v1/jobs", spec, &v)
	return v, err
}

// Jobs lists every job in submit order.
func (c *Client) Jobs() ([]JobView, error) {
	var out []JobView
	err := c.do(http.MethodGet, "/api/v1/jobs", nil, &out)
	return out, err
}

// Job fetches one job's view.
func (c *Client) Job(id string) (JobView, error) {
	var v JobView
	err := c.do(http.MethodGet, "/api/v1/jobs/"+id, nil, &v)
	return v, err
}

// Cancel requests cancellation and returns the job's view at that
// moment (still running until the engine honors the interrupt).
func (c *Client) Cancel(id string) (JobView, error) {
	var v JobView
	err := c.do(http.MethodPost, "/api/v1/jobs/"+id+"/cancel", nil, &v)
	return v, err
}

// Metrics fetches the daemon counters.
func (c *Client) Metrics() (Metrics, error) {
	var m Metrics
	err := c.do(http.MethodGet, "/api/v1/metrics", nil, &m)
	return m, err
}

// Watch subscribes to a job's event stream and calls fn for each event
// until the stream ends (terminal state or drain suspension), the
// server goes away, or fn returns false. It returns the last event seen.
func (c *Client) Watch(id string, fn func(Event) bool) (Event, error) {
	resp, err := c.http().Get(c.url("/api/v1/jobs/" + id + "/events"))
	if err != nil {
		return Event{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		blob, _ := io.ReadAll(resp.Body)
		var apiErr struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(blob, &apiErr) == nil && apiErr.Error != "" {
			return Event{}, fmt.Errorf("%s", apiErr.Error)
		}
		return Event{}, fmt.Errorf("watch %s: %s", id, resp.Status)
	}
	var last Event
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev Event
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			return last, fmt.Errorf("decoding event: %w", err)
		}
		last = ev
		if fn != nil && !fn(ev) {
			return last, nil
		}
	}
	if err := sc.Err(); err != nil {
		return last, fmt.Errorf("reading event stream: %w", err)
	}
	return last, nil
}
