// Package service is the long-running verification daemon behind
// `cdsspec serve`: it accepts verification jobs over an HTTP/JSON API,
// runs them on a bounded worker pool over the existing exploration
// engines (work-stealing DFS, fast mode, fuzz triage), persists a
// per-job atomic checkpoint plus an fsynced journal under a state
// directory, and streams progress to watchers. The design goal is
// crash-safety: kill -9 the daemon mid-job, restart it against the same
// state directory, and the job resumes from its last checkpoint with a
// final Result bit-identical to an uninterrupted run (the PR 6 resume
// contract, with the PR 8 model-mismatch refusal).
package service

import (
	"fmt"
	"time"

	"repro/internal/checker"
	"repro/internal/checker/model"
	"repro/internal/harness"
)

// JobKind selects which engine a job runs on.
type JobKind string

const (
	// KindExplore is a spec-checked exhaustive (or budgeted) DFS
	// exploration under the work-stealing engine — the only kind that
	// checkpoints and resumes bit-identically across daemon restarts.
	KindExplore JobKind = "explore"
	// KindFast is a C11Tester-style fast-mode screen: independent
	// plausible executions, built-in checks only. No frontier, so no
	// checkpoint — a crash reruns the job from scratch.
	KindFast JobKind = "fast"
	// KindTriage is a fuzz triage campaign (fast screen → exhaustive
	// confirm → shrink) over generated programs. Not checkpointable
	// either; a crash reruns it (same seed, same batch).
	KindTriage JobKind = "triage"
)

// JobState is one node of the job lifecycle state machine:
//
//	queued ──► running ──► done | failed | canceled | deadline
//	  ▲            │
//	  └─ suspended ┘   (graceful drain or crash; requeued on restart)
//
// done/failed/canceled/deadline are terminal. A suspended job holds a
// checkpoint (explore jobs) or simply its spec (fast/triage) and is
// requeued by the recovery replay when the daemon restarts.
type JobState string

const (
	StateQueued    JobState = "queued"
	StateRunning   JobState = "running"
	StateSuspended JobState = "suspended"
	StateDone      JobState = "done"
	StateFailed    JobState = "failed"
	StateCanceled  JobState = "canceled"
	StateDeadline  JobState = "deadline"
)

// Terminal reports whether the state ends the job's lifecycle.
func (s JobState) Terminal() bool {
	switch s {
	case StateDone, StateFailed, StateCanceled, StateDeadline:
		return true
	}
	return false
}

// JobSpec is a submitted verification job: the benchmark/spec to check
// plus the checker.Config knobs the API exposes. The zero value of every
// optional field means "engine default".
type JobSpec struct {
	// Kind selects the engine (default explore).
	Kind JobKind `json:"kind,omitempty"`
	// Benchmark names the harness benchmark to verify (required).
	Benchmark string `json:"benchmark"`
	// Model is the consistency model (empty = c11). An explore job that
	// resumes a checkpoint refuses a model mismatch, like cdsspec resume.
	Model string `json:"model,omitempty"`
	// MaxExecutions bounds the exploration / run budget (0 = exhaustive
	// for explore, engine default for fast/triage).
	MaxExecutions int `json:"max_executions,omitempty"`
	// Parallelism is the within-job worker count (checker.Config
	// semantics: 0 or 1 sequential, >1 work-stealing).
	Parallelism int `json:"parallelism,omitempty"`
	// Deadline is the per-job wall-clock budget. When it expires the job
	// is interrupted and lands in the first-class terminal state
	// "deadline" with whatever partial result it had (0 = no deadline).
	Deadline time.Duration `json:"deadline_ns,omitempty"`
	// CheckpointEvery overrides the daemon's periodic checkpoint
	// interval for explore jobs (0 = the server default).
	CheckpointEvery time.Duration `json:"checkpoint_every_ns,omitempty"`
	// NoCache disables the spec-check memoization cache (explore jobs).
	NoCache bool `json:"nocache,omitempty"`
	// Seed seeds fast-mode runs and triage program generation.
	Seed uint64 `json:"seed,omitempty"`
	// Count is the triage program count (0 = triage default).
	Count int `json:"count,omitempty"`
	// Budget is the triage per-program confirm budget (0 = exhaustive).
	Budget int `json:"budget,omitempty"`
	// FastRuns is the triage per-program fast-mode screen budget
	// (0 = triage default).
	FastRuns int `json:"fast_runs,omitempty"`
	// Shrink asks triage to minimize confirmed hits.
	Shrink bool `json:"shrink,omitempty"`
}

// Validate rejects a spec the daemon could not run, so submission errors
// surface at the API boundary instead of as failed jobs.
func (js *JobSpec) Validate() error {
	switch js.Kind {
	case "", KindExplore, KindFast, KindTriage:
	default:
		return fmt.Errorf("unknown job kind %q (valid: %s, %s, %s)", js.Kind, KindExplore, KindFast, KindTriage)
	}
	if js.Benchmark == "" {
		return fmt.Errorf("job spec names no benchmark")
	}
	if harness.BenchmarkByName(js.Benchmark) == nil {
		return fmt.Errorf("unknown benchmark %q", js.Benchmark)
	}
	if _, err := model.Parse(js.Model); err != nil {
		return err
	}
	if js.MaxExecutions < 0 || js.Count < 0 || js.Budget < 0 || js.FastRuns < 0 {
		return fmt.Errorf("job budgets must be >= 0")
	}
	if js.Deadline < 0 || js.CheckpointEvery < 0 {
		return fmt.Errorf("job durations must be >= 0")
	}
	return nil
}

// KindOrDefault resolves the default job kind.
func (js *JobSpec) KindOrDefault() JobKind {
	if js.Kind == "" {
		return KindExplore
	}
	return js.Kind
}

// ModelID resolves the spec's consistency model.
func (js *JobSpec) ModelID() model.ID {
	return model.ID(js.Model).OrDefault()
}

// Summary condenses a finished (or interrupted) job's outcome for the
// journal, the list API, and the metrics counters. Explore/fast jobs
// fill the Result-shaped fields; triage jobs fill the triage ones. The
// full per-kind payload lives in the job's result.json.
type Summary struct {
	Executions   int           `json:"executions"`
	Feasible     int           `json:"feasible,omitempty"`
	Pruned       int           `json:"pruned,omitempty"`
	FailureCount int           `json:"failure_count,omitempty"`
	Exhausted    bool          `json:"exhausted,omitempty"`
	Elapsed      time.Duration `json:"elapsed_ns,omitempty"`
	// Stats carries the checker counters (explore/fast jobs); the
	// metrics endpoint aggregates steals, busy time, and cache hits
	// from it.
	Stats *checker.Stats `json:"stats,omitempty"`
	// Screened/Flagged/Confirmed are the triage funnel.
	Screened  int `json:"screened,omitempty"`
	Flagged   int `json:"flagged,omitempty"`
	Confirmed int `json:"confirmed,omitempty"`
}

// summarize folds a checker Result into the journal summary.
func summarize(res *checker.Result) *Summary {
	if res == nil {
		return nil
	}
	stats := res.Stats
	return &Summary{
		Executions:   res.Executions,
		Feasible:     res.Feasible,
		Pruned:       res.Pruned,
		FailureCount: res.FailureCount,
		Exhausted:    res.Exhausted,
		Elapsed:      res.Elapsed,
		Stats:        &stats,
	}
}

// JobView is the API representation of one job.
type JobView struct {
	ID    string   `json:"id"`
	Spec  JobSpec  `json:"spec"`
	State JobState `json:"state"`
	// Attempts counts run starts, across restarts: an explore job that
	// was suspended and resumed twice reports 3.
	Attempts int `json:"attempts,omitempty"`
	// Resumed marks an explore attempt that continued a checkpoint
	// rather than starting from scratch.
	Resumed bool `json:"resumed,omitempty"`
	// Error describes why a failed job failed.
	Error string `json:"error,omitempty"`
	// Progress is the latest snapshot of a running job.
	Progress *checker.Progress `json:"progress,omitempty"`
	// Summary is the terminal outcome (and the partial outcome of a
	// deadline/canceled job).
	Summary *Summary `json:"summary,omitempty"`
}

// Event is one message on a job's watch stream: a state transition or a
// progress snapshot. Terminal events carry the summary so watchers can
// render the outcome without a second status call.
type Event struct {
	ID       string            `json:"id"`
	State    JobState          `json:"state"`
	Progress *checker.Progress `json:"progress,omitempty"`
	Summary  *Summary          `json:"summary,omitempty"`
	Error    string            `json:"error,omitempty"`
}
