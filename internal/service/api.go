package service

import (
	"encoding/json"
	"fmt"
	"net/http"
)

// The HTTP/JSON API surface:
//
//	GET  /healthz                     liveness probe ("ok")
//	POST /api/v1/jobs                 submit a JobSpec, returns the JobView
//	GET  /api/v1/jobs                 list all jobs in submit order
//	GET  /api/v1/jobs/{id}            one job's view
//	POST /api/v1/jobs/{id}/cancel     request cancellation
//	GET  /api/v1/jobs/{id}/events     SSE stream of Events until terminal
//	GET  /api/v1/metrics              daemon counters (Metrics document)
//
// Errors are {"error": "..."} with a 4xx/5xx status.

func (s *Server) apiHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("POST /api/v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /api/v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.JobList())
	})
	mux.HandleFunc("GET /api/v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		v, ok := s.Job(r.PathValue("id"))
		if !ok {
			writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %s", r.PathValue("id")))
			return
		}
		writeJSON(w, http.StatusOK, v)
	})
	mux.HandleFunc("POST /api/v1/jobs/{id}/cancel", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		if err := s.Cancel(id); err != nil {
			status := http.StatusConflict
			if _, ok := s.Job(id); !ok {
				status = http.StatusNotFound
			}
			writeError(w, status, err)
			return
		}
		v, _ := s.Job(id)
		writeJSON(w, http.StatusOK, v)
	})
	mux.HandleFunc("GET /api/v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /api/v1/metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Metrics())
	})
	return mux
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding job spec: %w", err))
		return
	}
	v, err := s.Submit(spec)
	if err != nil {
		status := http.StatusBadRequest
		if s.isDraining() {
			status = http.StatusServiceUnavailable
		}
		writeError(w, status, err)
		return
	}
	writeJSON(w, http.StatusAccepted, v)
}

func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// handleEvents streams a job's events as server-sent events. The stream
// starts with the job's current state (so late watchers catch up
// immediately) and closes after the terminal event, after a drain
// suspension, or when the client goes away.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	ch := make(chan Event, 64)
	cur, ok := s.subscribe(id, ch)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %s", id))
		return
	}
	defer s.unsubscribe(id, ch)

	flusher, canFlush := w.(http.Flusher)
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	send := func(ev Event) bool {
		blob, err := json.Marshal(ev)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "data: %s\n\n", blob); err != nil {
			return false
		}
		if canFlush {
			flusher.Flush()
		}
		// Terminal and suspended both end the stream: neither state
		// produces further events this side of a restart.
		return !ev.State.Terminal() && ev.State != StateSuspended
	}
	if !send(cur) {
		return
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case ev := <-ch:
			if !send(ev) {
				return
			}
		}
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
