package harness

import (
	"encoding/json"
	"fmt"
	"runtime"
	"strings"
	"time"

	"repro/internal/checker"
)

// This file implements the kernel benchmark gate: every paper benchmark's
// primary unit test explored through the bare checker — no spec monitor
// attached, so the measurement isolates the memory-model kernel — once
// with the hot-path optimizations on and once with them off. The rows
// back EXPERIMENTS.md's before/after table and the BENCH_kernel.json CI
// artifact.

// KernelRow is one benchmark's kernel before/after measurement.
type KernelRow struct {
	Name       string `json:"name"`
	Executions int    `json:"executions"`
	Feasible   int    `json:"feasible"`
	// OptTime/OptAllocs measure the run with every kernel optimization
	// on (the defaults); BaseTime/BaseAllocs with every optimization
	// off. Allocs counts heap allocations (runtime MemStats.Mallocs
	// delta over the run).
	OptTime    time.Duration `json:"opt_ns"`
	BaseTime   time.Duration `json:"base_ns"`
	OptAllocs  uint64        `json:"opt_allocs"`
	BaseAllocs uint64        `json:"base_allocs"`
	// Identical reports that both runs produced the same Executions,
	// Feasible, Pruned, and FailureCount — the optimizations are pure
	// performance transformations, so anything else is a checker bug.
	Identical bool `json:"identical"`
}

// SpeedupX is the wall-clock ratio base/opt (>1 means the optimizations
// help).
func (r KernelRow) SpeedupX() float64 {
	if r.OptTime <= 0 {
		return 0
	}
	return float64(r.BaseTime) / float64(r.OptTime)
}

// AllocReductionPct is the percentage of heap allocations the optimized
// run avoids relative to the baseline.
func (r KernelRow) AllocReductionPct() float64 {
	if r.BaseAllocs == 0 {
		return 0
	}
	return 100 * (1 - float64(r.OptAllocs)/float64(r.BaseAllocs))
}

// measureKernel explores prog exhaustively under cfg and returns the
// result with the wall clock and the heap-allocation count of the run.
func measureKernel(cfg checker.Config, prog func(*checker.Thread)) (*checker.Result, time.Duration, uint64) {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	res := checker.Explore(cfg, prog)
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	return res, elapsed, after.Mallocs - before.Mallocs
}

// RunKernelBench measures every benchmark's kernel row. The rows run
// strictly sequentially regardless of opts.Workers — the Mallocs delta
// is process-wide, so concurrent rows would pollute each other's
// allocation counts. opts' progress callback and kernel-opt switch are
// ignored for the same reason: both sides of the comparison are fixed
// here.
func RunKernelBench(opts Options) []KernelRow {
	rows := make([]KernelRow, 0, len(Benchmarks()))
	for _, b := range Benchmarks() {
		prog := b.Progs(b.Orders())[0]
		optCfg := Options{}.ExplorerConfig(b.Name)
		baseCfg := Options{DisableKernelOpts: true}.ExplorerConfig(b.Name)
		optRes, optTime, optAllocs := measureKernel(optCfg, prog)
		baseRes, baseTime, baseAllocs := measureKernel(baseCfg, prog)
		rows = append(rows, KernelRow{
			Name:       b.Name,
			Executions: optRes.Executions,
			Feasible:   optRes.Feasible,
			OptTime:    optTime,
			BaseTime:   baseTime,
			OptAllocs:  optAllocs,
			BaseAllocs: baseAllocs,
			Identical: optRes.Executions == baseRes.Executions &&
				optRes.Feasible == baseRes.Feasible &&
				optRes.Pruned == baseRes.Pruned &&
				optRes.FailureCount == baseRes.FailureCount,
		})
	}
	return rows
}

// KernelSnapshotSchema identifies the BENCH_kernel.json layout.
const KernelSnapshotSchema = "cdsspec-kernelbench/v1"

// KernelSnapshot is the serialized form of a kernel benchmark run.
type KernelSnapshot struct {
	Schema string      `json:"schema"`
	Rows   []KernelRow `json:"kernel"`
}

// KernelSnapshotJSON serializes rows into the BENCH_kernel.json blob.
func KernelSnapshotJSON(rows []KernelRow) ([]byte, error) {
	return json.MarshalIndent(&KernelSnapshot{Schema: KernelSnapshotSchema, Rows: rows}, "", "  ")
}

// FormatKernelBench renders the rows as the EXPERIMENTS.md-style table.
func FormatKernelBench(rows []KernelRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-22s %10s %12s %12s %8s %12s %12s %8s %s\n",
		"benchmark", "execs", "base-time", "opt-time", "speedup", "base-allocs", "opt-allocs", "alloc-%", "identical")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-22s %10d %12s %12s %7.2fx %12d %12d %7.1f%% %v\n",
			r.Name, r.Executions,
			r.BaseTime.Round(10*time.Microsecond), r.OptTime.Round(10*time.Microsecond),
			r.SpeedupX(), r.BaseAllocs, r.OptAllocs, r.AllocReductionPct(), r.Identical)
	}
	return sb.String()
}
