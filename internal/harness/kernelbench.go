package harness

import (
	"encoding/json"
	"fmt"
	"runtime"
	"strings"
	"time"

	"repro/internal/checker"
)

// This file implements the kernel benchmark gate: every paper benchmark's
// primary unit test explored through the bare checker — no spec monitor
// attached, so the measurement isolates the memory-model kernel — once
// with the hot-path optimizations on, once with them off, and once under
// the work-stealing parallel engine. The rows back EXPERIMENTS.md's
// before/after table and the BENCH_kernel.json CI artifact.

// KernelRow is one benchmark's kernel before/after measurement.
type KernelRow struct {
	Name       string `json:"name"`
	Executions int    `json:"executions"`
	Feasible   int    `json:"feasible"`
	// OptTime/OptAllocs measure the run with every kernel optimization
	// on (the defaults); BaseTime/BaseAllocs with every optimization
	// off. Allocs counts heap allocations (runtime MemStats.Mallocs
	// delta over the run).
	OptTime    time.Duration `json:"opt_ns"`
	BaseTime   time.Duration `json:"base_ns"`
	OptAllocs  uint64        `json:"opt_allocs"`
	BaseAllocs uint64        `json:"base_allocs"`
	// Identical reports that both runs produced the same Executions,
	// Feasible, Pruned, and FailureCount — the optimizations are pure
	// performance transformations, so anything else is a checker bug.
	Identical bool `json:"identical"`

	// Work-stealing columns (schema v2): the same exploration under the
	// parallel engine with WsWorkers workers, optimizations on. WsBusy is
	// the summed wall clock workers spent inside executions; the
	// steal-efficiency number the CI table prints is
	// WsBusy / (WsTime × WsWorkers). WsIdentical additionally requires the
	// parallel run's Stats (timings and scheduler telemetry excluded) to
	// match the sequential optimized run bit-for-bit.
	WsTime      time.Duration `json:"ws_ns,omitempty"`
	WsWorkers   int           `json:"ws_workers,omitempty"`
	WsBusy      time.Duration `json:"ws_busy_ns,omitempty"`
	WsSteals    int           `json:"ws_steals,omitempty"`
	WsIdentical bool          `json:"ws_identical,omitempty"`

	// Reduction columns (schema v3): the same exploration, sequential
	// with optimizations on, under the full execution-equivalence
	// reduction set (RedReduce records it). The (Executions,
	// RedExecutions) pair is the before/after executions-explored
	// column in EXPERIMENTS.md; RedClasses is the rf-equivalence class
	// count the reduced run partitioned the space into. Without a spec
	// monitor attached the reduction is pure kernel-state caching, so
	// the failure count must be unchanged — RedIdentical pins that.
	RedTime       time.Duration `json:"red_ns,omitempty"`
	RedReduce     string        `json:"red_reduce,omitempty"`
	RedExecutions int           `json:"red_executions,omitempty"`
	RedClasses    int           `json:"red_classes,omitempty"`
	RedIdentical  bool          `json:"red_identical,omitempty"`
}

// SpeedupX is the wall-clock ratio base/opt (>1 means the optimizations
// help).
func (r KernelRow) SpeedupX() float64 {
	if r.OptTime <= 0 {
		return 0
	}
	return float64(r.BaseTime) / float64(r.OptTime)
}

// AllocReductionPct is the percentage of heap allocations the optimized
// run avoids relative to the baseline.
func (r KernelRow) AllocReductionPct() float64 {
	if r.BaseAllocs == 0 {
		return 0
	}
	return 100 * (1 - float64(r.OptAllocs)/float64(r.BaseAllocs))
}

// ReductionX is the executions-explored ratio unreduced/reduced (>1
// means the reduction shrank the space).
func (r KernelRow) ReductionX() float64 {
	if r.RedExecutions <= 0 {
		return 0
	}
	return float64(r.Executions) / float64(r.RedExecutions)
}

// WsSpeedupX is the wall-clock ratio sequential-opt/parallel (>1 means
// the work-stealing engine helps).
func (r KernelRow) WsSpeedupX() float64 {
	if r.WsTime <= 0 {
		return 0
	}
	return float64(r.OptTime) / float64(r.WsTime)
}

// WsBusyPct is the steal-efficiency column: the fraction of the parallel
// run's worker-seconds spent inside executions rather than stealing or
// parked, as a percentage. Low values mean the frontier was too shallow
// to feed the workers.
func (r KernelRow) WsBusyPct() float64 {
	if r.WsTime <= 0 || r.WsWorkers <= 0 {
		return 0
	}
	return 100 * float64(r.WsBusy) / (float64(r.WsTime) * float64(r.WsWorkers))
}

// measureKernel explores prog exhaustively under cfg and returns the
// result with the wall clock and the heap-allocation count of the run.
func measureKernel(cfg checker.Config, prog func(*checker.Thread)) (*checker.Result, time.Duration, uint64) {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	res := checker.Explore(cfg, prog)
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	return res, elapsed, after.Mallocs - before.Mallocs
}

// kernelWsWorkers returns the worker count for the work-stealing leg:
// the requested parallelism if set, else min(8, GOMAXPROCS) so CI
// machines with few cores still measure a real parallel run.
func kernelWsWorkers(opts Options) int {
	if opts.Parallelism > 1 {
		return opts.Parallelism
	}
	if n := runtime.GOMAXPROCS(0); n < 8 {
		return max(n, 2)
	}
	return 8
}

// RunKernelBench measures every benchmark's kernel row. The rows run
// strictly sequentially regardless of opts.Workers — the Mallocs delta
// is process-wide, so concurrent rows would pollute each other's
// allocation counts. opts' progress callback and kernel-opt switch are
// ignored for the same reason: the three legs of the comparison are
// fixed here (opts.Parallelism only overrides the work-stealing leg's
// worker count).
func RunKernelBench(opts Options) []KernelRow {
	wsWorkers := kernelWsWorkers(opts)
	rows := make([]KernelRow, 0, len(Benchmarks()))
	for _, b := range Benchmarks() {
		prog := b.Progs(b.Orders())[0]
		optCfg := Options{}.ExplorerConfig(b.Name)
		baseCfg := Options{DisableKernelOpts: true}.ExplorerConfig(b.Name)
		wsCfg := Options{Parallelism: wsWorkers}.ExplorerConfig(b.Name)
		redCfg := Options{Reduce: checker.ReduceAll()}.ExplorerConfig(b.Name)
		optRes, optTime, optAllocs := measureKernel(optCfg, prog)
		baseRes, baseTime, baseAllocs := measureKernel(baseCfg, prog)
		wsRes, wsTime, _ := measureKernel(wsCfg, prog)
		redRes, redTime, _ := measureKernel(redCfg, prog)
		rows = append(rows, KernelRow{
			Name:       b.Name,
			Executions: optRes.Executions,
			Feasible:   optRes.Feasible,
			OptTime:    optTime,
			BaseTime:   baseTime,
			OptAllocs:  optAllocs,
			BaseAllocs: baseAllocs,
			Identical: optRes.Executions == baseRes.Executions &&
				optRes.Feasible == baseRes.Feasible &&
				optRes.Pruned == baseRes.Pruned &&
				optRes.FailureCount == baseRes.FailureCount,
			WsTime:    wsTime,
			WsWorkers: wsWorkers,
			WsBusy:    wsRes.Stats.WorkerBusy,
			WsSteals:  wsRes.Stats.Steals,
			WsIdentical: wsRes.Executions == optRes.Executions &&
				wsRes.Feasible == optRes.Feasible &&
				wsRes.Pruned == optRes.Pruned &&
				wsRes.FailureCount == optRes.FailureCount &&
				wsRes.Stats.WithoutTimings() == optRes.Stats.WithoutTimings(),
			RedTime:       redTime,
			RedReduce:     checker.ReduceAll().String(),
			RedExecutions: redRes.Executions,
			RedClasses:    redRes.Stats.RFClasses,
			RedIdentical:  redRes.FailureCount == optRes.FailureCount,
		})
	}
	return rows
}

// KernelSnapshotSchema identifies the BENCH_kernel.json layout. v3 added
// the execution-equivalence reduction columns (red_ns, red_reduce,
// red_executions, red_classes, red_identical); v2 added the
// work-stealing columns. Both changes are additive, so older blobs stay
// readable through ReadKernelSnapshot (absent columns decode as zero and
// render as "n/a").
const KernelSnapshotSchema = "cdsspec-kernelbench/v3"

// KernelSnapshotSchemaV2 is the pre-reduction layout, still accepted by
// ReadKernelSnapshot so CI can diff against archived artifacts.
const KernelSnapshotSchemaV2 = "cdsspec-kernelbench/v2"

// KernelSnapshotSchemaV1 is the pre-work-stealing layout, still accepted
// by ReadKernelSnapshot so CI can diff against archived artifacts.
const KernelSnapshotSchemaV1 = "cdsspec-kernelbench/v1"

// KernelSnapshot is the serialized form of a kernel benchmark run.
type KernelSnapshot struct {
	Schema string      `json:"schema"`
	Rows   []KernelRow `json:"kernel"`
}

// KernelSnapshotJSON serializes rows into the BENCH_kernel.json blob.
func KernelSnapshotJSON(rows []KernelRow) ([]byte, error) {
	return json.MarshalIndent(&KernelSnapshot{Schema: KernelSnapshotSchema, Rows: rows}, "", "  ")
}

// ReadKernelSnapshot decodes a BENCH_kernel.json blob produced by this
// or an earlier supported schema version, rejecting unknown schemas
// outright rather than misreading them.
func ReadKernelSnapshot(data []byte) (*KernelSnapshot, error) {
	var s KernelSnapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("decoding kernel snapshot: %w", err)
	}
	switch s.Schema {
	case KernelSnapshotSchema, KernelSnapshotSchemaV2, KernelSnapshotSchemaV1:
		return &s, nil
	default:
		return nil, fmt.Errorf("unsupported kernel snapshot schema %q (want %q, %q, or %q)",
			s.Schema, KernelSnapshotSchema, KernelSnapshotSchemaV2, KernelSnapshotSchemaV1)
	}
}

// FormatKernelBench renders the rows as the EXPERIMENTS.md-style table,
// including the work-stealing columns — ws-time is the parallel wall
// clock, ws-speedup the sequential/parallel ratio, busy the
// steal-efficiency (worker busy-fraction), steals the cross-deque task
// transfers — and the reduction columns: red-execs is the executions
// explored with the full reduction set on, red-x the unreduced/reduced
// ratio, classes the rf-equivalence class count. Rows from older
// snapshots render missing legs as "n/a".
func FormatKernelBench(rows []KernelRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-22s %10s %12s %12s %8s %12s %12s %8s %9s %12s %10s %6s %7s %-12s %10s %8s %8s\n",
		"benchmark", "execs", "base-time", "opt-time", "speedup", "base-allocs", "opt-allocs", "alloc-%", "identical",
		"ws-time", "ws-speedup", "busy", "steals", "ws-identical", "red-execs", "red-x", "classes")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-22s %10d %12s %12s %7.2fx %12d %12d %7.1f%% %9v ",
			r.Name, r.Executions,
			r.BaseTime.Round(10*time.Microsecond), r.OptTime.Round(10*time.Microsecond),
			r.SpeedupX(), r.BaseAllocs, r.OptAllocs, r.AllocReductionPct(), r.Identical)
		if r.WsWorkers > 0 {
			fmt.Fprintf(&sb, "%12s %10s %5.1f%% %6d %-12v ",
				r.WsTime.Round(10*time.Microsecond),
				fmt.Sprintf("%.2fx/%dw", r.WsSpeedupX(), r.WsWorkers),
				r.WsBusyPct(), r.WsSteals, r.WsIdentical)
		} else {
			fmt.Fprintf(&sb, "%12s %10s %6s %6s %-12s ", "n/a", "n/a", "n/a", "n/a", "n/a")
		}
		if r.RedExecutions > 0 {
			fmt.Fprintf(&sb, "%10d %7.2fx %8d\n", r.RedExecutions, r.ReductionX(), r.RedClasses)
		} else {
			fmt.Fprintf(&sb, "%10s %8s %8s\n", "n/a", "n/a", "n/a")
		}
	}
	return sb.String()
}
