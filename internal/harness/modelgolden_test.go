package harness

import (
	"fmt"
	"testing"

	"repro/internal/checker"
	"repro/internal/checker/model"
)

// The c11 backend must be bit-identical to the pre-backend checker: the
// consistency seam was extracted from system.go with the explicit
// contract that model.C11 (and the zero-value Model) reproduce the old
// inlined rules exactly. These goldens were captured before the seam
// existed; any drift in a non-timing counter means the extraction
// changed the explored space.

type goldenRow struct {
	executions, feasible, pruned int
	failures                     int
	exhausted                    bool
	stats                        checker.Stats
}

func c11Goldens() map[string]goldenRow {
	return map[string]goldenRow{
		"SPSC Queue": {
			executions: 96, feasible: 48, pruned: 48, failures: 0, exhausted: true,
			stats: checker.Stats{
				PrunedSleepSet: 12, PrunedFairness: 36, PrunedStepBound: 0,
				RFBranchPoints: 72, ScheduleBranchPoints: 23,
				ReplayedDecisions: 625, MaxDecisionDepth: 9, TotalSteps: 1784,
				Histories: 96, JustifySearches: 0,
				SpecCacheHits: 45, SpecCacheMisses: 3, SpecCacheEntries: 3,
			},
		},
		"M&S Queue": {
			executions: 1957, feasible: 1407, pruned: 550, failures: 0, exhausted: true,
			stats: checker.Stats{
				PrunedSleepSet: 523, PrunedFairness: 27, PrunedStepBound: 0,
				RFBranchPoints: 739, ScheduleBranchPoints: 1217,
				ReplayedDecisions: 28587, MaxDecisionDepth: 24, TotalSteps: 70708,
				Histories: 2252, JustifySearches: 1407,
				SpecCacheHits: 1396, SpecCacheMisses: 11, SpecCacheEntries: 11,
			},
		},
	}
}

func checkGolden(t *testing.T, label, name string, res *checker.Result) {
	t.Helper()
	want := c11Goldens()[name]
	if res.Executions != want.executions || res.Feasible != want.feasible ||
		res.Pruned != want.pruned || res.FailureCount != want.failures ||
		res.Exhausted != want.exhausted {
		t.Errorf("%s: result drifted from pre-backend golden:\n  want: exec=%d feas=%d pruned=%d fails=%d exhausted=%v\n  got:  %v (exhausted=%v)",
			label, want.executions, want.feasible, want.pruned, want.failures, want.exhausted, res, res.Exhausted)
	}
	if got := res.Stats.WithoutTimings(); got != want.stats {
		t.Errorf("%s: stats drifted from pre-backend golden:\n  want: %+v\n  got:  %+v", label, want.stats, got)
	}
}

// TestC11GoldenStats runs the golden workloads under the explicit c11
// model and the zero-value Model at workers 1, 4, and 16, requiring every
// non-timing counter to match the pre-refactor capture exactly.
func TestC11GoldenStats(t *testing.T) {
	names := []string{"SPSC Queue"}
	if !testing.Short() {
		names = append(names, "M&S Queue")
	}
	for _, name := range names {
		b := BenchmarkByName(name)
		if b == nil {
			t.Fatalf("benchmark %q missing", name)
		}
		for _, id := range []model.ID{"", model.C11} {
			for _, workers := range []int{1, 4, 16} {
				cfg := checker.Config{Parallelism: workers, Model: id}
				if workers == 1 {
					// Route through the work-stealing engine even at one
					// worker (Parallelism 1 runs the sequential loop).
					cfg.Checkpoint = func(*checker.Checkpoint) {}
				}
				res := exploreBench(b, cfg)
				checkGolden(t, fmt.Sprintf("%s model=%q workers=%d", name, id, workers), name, res)
			}
		}
		// The plain sequential DFS path (no engine) must match too.
		res := exploreBench(b, checker.Config{Model: model.C11})
		checkGolden(t, name+" sequential", name, res)
	}
}
