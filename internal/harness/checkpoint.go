package harness

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/checker"
	"repro/internal/checker/model"
)

// This file wraps the checker's exploration checkpoint in an on-disk
// envelope. The checker's Checkpoint serializes only the decision
// frontier — it has no idea which benchmark it belongs to — so the
// envelope pins the benchmark name and the spec-affecting switches, and
// Read refuses to resume a checkpoint under a configuration that would
// change the explored space (resuming a -nocache checkpoint with the
// cache on would, for instance, break the spec_cache_* counters' bit-
// identity guarantee).

// CheckpointFileSchema identifies the on-disk envelope layout. The inner
// state carries the checker's own schema (checker.CheckpointSchema) and
// is validated separately.
const CheckpointFileSchema = "cdsspec-checkpoint-file/v1"

// ResumeComparableStats normalizes a Stats record for comparison across
// a checkpoint/resume boundary: timings and scheduler telemetry are
// dropped (WithoutTimings), and the spec-cache hit/miss split is folded
// into SpecCacheHits as the hits+misses total. The split itself is not
// resume-stable — checkpoints carry the decision frontier but not the
// in-memory memoization caches, so a resumed run re-misses fingerprints
// it saw before the cut — but the total equals the feasible executions
// that reached the checker and must match exactly. Entries (distinct
// fingerprints, also cache-lifetime-dependent) are dropped.
func ResumeComparableStats(s checker.Stats) checker.Stats {
	s = s.WithoutTimings()
	s.SpecCacheHits += s.SpecCacheMisses
	s.SpecCacheMisses = 0
	s.SpecCacheEntries = 0
	return s
}

// CheckpointFile is the on-disk form of a suspended exploration.
type CheckpointFile struct {
	Schema string `json:"schema"`
	// Benchmark names the Figure 7 row the checkpoint belongs to; resume
	// rebuilds the program from the registry rather than trusting the
	// file.
	Benchmark string `json:"benchmark"`
	// Workers records the parallelism of the run that wrote the file —
	// informational only, a resume may use any worker count and still
	// produce the identical Result.
	Workers int `json:"workers,omitempty"`
	// Model names the consistency model the frontier was explored under.
	// Unlike the opt switches it changes the explored space itself, so a
	// resume under a different model would silently mix incompatible
	// explorations — ValidateModel refuses it. Files written before model
	// identity existed omit the field; absence means c11 (the only model
	// that existed when v1 envelopes were introduced).
	Model string `json:"model,omitempty"`
	// NoCache / NoKernelOpts record the spec-cache and kernel-opt
	// switches. They don't change the explored space's Results, but
	// NoCache changes the spec_cache_* counters, so a resume must match.
	NoCache      bool `json:"nocache,omitempty"`
	NoKernelOpts bool `json:"nokernelopts,omitempty"`
	// Reduce records the execution-equivalence reduction set the frontier
	// was explored under (checker.ReduceSet canonical string). Like Model
	// it shapes the explored space — a reduced frontier has already pruned
	// subtrees an unreduced resume would expect to visit — so a resume
	// must match (ValidateReduce). Files written before the reduction
	// layer existed omit the field; absence means no reduction.
	Reduce string `json:"reduce,omitempty"`
	// State is the checker's frontier snapshot.
	State *checker.Checkpoint `json:"state"`
}

// ModelID resolves the envelope's model with v1 back-compat: an absent
// field means the checkpoint predates model identity and was necessarily
// explored under c11.
func (cf *CheckpointFile) ModelID() model.ID {
	return model.ID(cf.Model).OrDefault()
}

// ValidateModel checks that a resume requested under the given model can
// legally continue this checkpoint's frontier. It returns a nil error
// only when the models agree; the error spells out both sides, since the
// usual cause is an absent or mistyped -model flag.
func (cf *CheckpointFile) ValidateModel(requested model.ID) error {
	if requested.OrDefault() != cf.ModelID() {
		return fmt.Errorf("checkpoint was explored under memory model %q but resume requested %q: a frontier is only valid under the model that produced it (re-explore from scratch to switch models)",
			cf.ModelID(), requested.OrDefault())
	}
	return nil
}

// ReduceSet resolves the envelope's reduction set with back-compat: an
// absent field means the checkpoint predates the reduction layer and was
// necessarily explored unreduced (ParseReduce maps "" to the zero set).
func (cf *CheckpointFile) ReduceSet() checker.ReduceSet {
	r, err := checker.ParseReduce(cf.Reduce)
	if err != nil {
		// ReadCheckpointFile validates the field; an invalid value can only
		// reach here through a hand-built envelope.
		return checker.ReduceSet{}
	}
	return r
}

// ValidateReduce checks that a resume requested under the given reduction
// set can legally continue this checkpoint's frontier. Like the model, the
// reduction shapes the explored space: a reduced frontier has already cut
// subtrees an unreduced continuation would need to visit, and vice versa.
func (cf *CheckpointFile) ValidateReduce(requested checker.ReduceSet) error {
	if requested != cf.ReduceSet() {
		return fmt.Errorf("checkpoint was explored with reduction %q but resume requested %q: a frontier is only valid under the reduction set that produced it (re-explore from scratch to change reductions)",
			cf.ReduceSet(), requested)
	}
	return nil
}

// WriteCheckpointFile atomically and durably writes the envelope to
// path: the blob lands in a same-directory temp file first, is fsynced,
// and is renamed over the target — so a SIGKILL mid-write leaves the
// previous checkpoint intact rather than a truncated JSON document — and
// the containing directory is fsynced after the rename, so a power loss
// after Write returns cannot observe the acknowledged checkpoint missing
// (the rename itself lives in the directory's metadata, which the
// file-level fsync does not cover).
func WriteCheckpointFile(path string, cf *CheckpointFile) error {
	if path == "" {
		return fmt.Errorf("checkpoint path is empty")
	}
	blob, err := json.MarshalIndent(cf, "", "  ")
	if err != nil {
		return fmt.Errorf("encoding checkpoint: %w", err)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".cdsspec-checkpoint-*")
	if err != nil {
		return fmt.Errorf("creating checkpoint temp file: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(append(blob, '\n')); err != nil {
		tmp.Close()
		return fmt.Errorf("writing checkpoint: %w", err)
	}
	// Sync before rename: without it the rename can become durable
	// before the data blocks, and a crash leaves an empty or partial
	// file under the final name — exactly the torn state the temp-file
	// dance exists to prevent.
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("syncing checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("closing checkpoint temp file: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("committing checkpoint: %w", err)
	}
	return SyncDir(dir)
}

// SyncDir fsyncs a directory, making durable any renames or creates
// committed inside it. The service journal and job store share it with
// the checkpoint writer.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("opening directory for sync: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("syncing directory %s: %w", dir, err)
	}
	return nil
}

// ReadCheckpointFile reads and fully validates a checkpoint envelope:
// the envelope schema, the presence and internal consistency of the
// inner state, and that the benchmark still exists in the registry.
func ReadCheckpointFile(path string) (*CheckpointFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("reading checkpoint: %w", err)
	}
	var cf CheckpointFile
	if err := json.Unmarshal(data, &cf); err != nil {
		return nil, fmt.Errorf("decoding checkpoint %s: %w", path, err)
	}
	if cf.Schema != CheckpointFileSchema {
		return nil, fmt.Errorf("%s: unsupported checkpoint schema %q (want %q)",
			path, cf.Schema, CheckpointFileSchema)
	}
	if cf.State == nil {
		return nil, fmt.Errorf("%s: checkpoint has no exploration state", path)
	}
	if err := cf.State.Validate(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if BenchmarkByName(cf.Benchmark) == nil {
		return nil, fmt.Errorf("%s: unknown benchmark %q", path, cf.Benchmark)
	}
	if _, err := model.Parse(cf.Model); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if _, err := checker.ParseReduce(cf.Reduce); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &cf, nil
}
