package harness

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/checker"
	"repro/internal/checker/model"
)

// captureCheckpoint runs the SPSC workload far enough to cut a valid
// frontier snapshot for the envelope tests.
func captureCheckpoint(t *testing.T) *checker.Checkpoint {
	t.Helper()
	var cp *checker.Checkpoint
	b := BenchmarkByName("SPSC Queue")
	cfg := checker.Config{Checkpoint: func(c *checker.Checkpoint) { cp = c }}
	exploreBench(b, cfg)
	if cp == nil {
		t.Fatal("exploration delivered no checkpoint")
	}
	return cp
}

// TestCheckpointModelRoundTrip: the envelope records the model and a
// resume under the same model (spelled or defaulted) is accepted.
func TestCheckpointModelRoundTrip(t *testing.T) {
	cp := captureCheckpoint(t)
	path := filepath.Join(t.TempDir(), "cp.json")
	cf := &CheckpointFile{
		Schema:    CheckpointFileSchema,
		Benchmark: "SPSC Queue",
		Model:     string(model.SC),
		State:     cp,
	}
	if err := WriteCheckpointFile(path, cf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCheckpointFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.ModelID() != model.SC {
		t.Fatalf("ModelID = %q, want sc", got.ModelID())
	}
	if err := got.ValidateModel(model.SC); err != nil {
		t.Errorf("same-model resume rejected: %v", err)
	}
}

// TestCheckpointModelMismatch: resuming a frontier under a different
// model fails with an error naming both models.
func TestCheckpointModelMismatch(t *testing.T) {
	cf := &CheckpointFile{Model: string(model.SC)}
	err := cf.ValidateModel(model.C11)
	if err == nil {
		t.Fatal("cross-model resume accepted")
	}
	for _, want := range []string{`"sc"`, `"c11"`} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("mismatch error should name %s, got: %v", want, err)
		}
	}
	// The other direction too: a c11 frontier refused under sc.
	if err := (&CheckpointFile{}).ValidateModel(model.SC); err == nil {
		t.Error("c11 frontier accepted under sc")
	}
}

// TestCheckpointModelBackCompat: envelopes written before model identity
// existed omit the field entirely; they must read back as c11 and resume
// under c11 (spelled or defaulted).
func TestCheckpointModelBackCompat(t *testing.T) {
	cp := captureCheckpoint(t)
	path := filepath.Join(t.TempDir(), "cp.json")
	if err := WriteCheckpointFile(path, &CheckpointFile{
		Schema:    CheckpointFileSchema,
		Benchmark: "SPSC Queue",
		State:     cp,
	}); err != nil {
		t.Fatal(err)
	}
	// The zero model must serialize to an absent field (omitempty), i.e.
	// new writers still produce v1-readable envelopes.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var fields map[string]json.RawMessage
	if err := json.Unmarshal(raw, &fields); err != nil {
		t.Fatal(err)
	}
	if _, present := fields["model"]; present {
		t.Error("zero model serialized an explicit field; v1 envelopes must stay field-free")
	}
	got, err := ReadCheckpointFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.ModelID() != model.C11 {
		t.Fatalf("absent model field resolved to %q, want c11", got.ModelID())
	}
	if err := got.ValidateModel(""); err != nil {
		t.Errorf("defaulted resume of a v1 envelope rejected: %v", err)
	}
	if err := got.ValidateModel(model.C11); err != nil {
		t.Errorf("explicit c11 resume of a v1 envelope rejected: %v", err)
	}
	if err := got.ValidateModel(model.SCAtomics); err == nil {
		t.Error("scatomics resume of a c11 envelope accepted")
	}
}

// TestCheckpointModelGarbage: an envelope naming an unknown model is
// rejected at read time, before any resume logic runs.
func TestCheckpointModelGarbage(t *testing.T) {
	cp := captureCheckpoint(t)
	path := filepath.Join(t.TempDir(), "cp.json")
	if err := WriteCheckpointFile(path, &CheckpointFile{
		Schema:    CheckpointFileSchema,
		Benchmark: "SPSC Queue",
		Model:     "tso",
		State:     cp,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadCheckpointFile(path); err == nil || !strings.Contains(err.Error(), "unknown memory model") {
		t.Errorf("garbage model accepted at read time: %v", err)
	}
}
