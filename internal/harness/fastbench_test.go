package harness

import (
	"strings"
	"testing"
)

// TestFastBenchSmoke runs the whole gate at reduced budgets: every
// unit row must stay clean with all runs feasible, both seeded rows must
// detect their §6.4.1 bug, and the scaled row must push ≥10⁵ operations
// per run through bounded store buffers (evictions prove the bound
// engaged). No wall-clock assertion — CI machines vary; the throughput
// columns are reported, not gated, and EXPERIMENTS.md records reference
// numbers.
func TestFastBenchSmoke(t *testing.T) {
	cfg := FastBenchConfig{
		UnitRuns:           300,
		SeededRuns:         2000,
		ScaledRuns:         1,
		ScaledOpsPerThread: 25000,
	}
	rows := RunFastBench(cfg)
	if len(rows) != len(Benchmarks())+3 {
		t.Fatalf("got %d rows, want %d unit + 2 seeded + 1 scaled", len(rows), len(Benchmarks()))
	}
	var scaled *FastRow
	for i := range rows {
		r := &rows[i]
		if !r.Pass() {
			t.Errorf("row %q (%s) failed: failures=%d feasible=%d/%d detected=%v first=%s",
				r.Name, r.RowKind, r.Failures, r.Feasible, r.Runs, r.Detected, r.FirstFailure)
		}
		if r.RowKind == "scaled" {
			scaled = r
		}
	}
	if scaled == nil {
		t.Fatal("no scaled row")
	}
	if scaled.OpsPerRun < 100000 {
		t.Errorf("scaled row runs %d ops, want >= 1e5", scaled.OpsPerRun)
	}
	if scaled.Evictions == 0 {
		t.Error("scaled row saw no store-buffer evictions: the memory bound never engaged")
	}
	if scaled.HeapHighWaterBytes == 0 {
		t.Error("scaled row recorded no heap high-water")
	}

	table := FormatFastBench(rows)
	for _, want := range []string{"benchmark", "runs/sec", "ops/sec", "heap-high", "MPMC ring"} {
		if !strings.Contains(table, want) {
			t.Errorf("formatted table missing %q:\n%s", want, table)
		}
	}
}

// TestFastSnapshotRoundTrip: the BENCH_fastmode.json blob decodes back
// bit-identically and unknown schemas are rejected.
func TestFastSnapshotRoundTrip(t *testing.T) {
	rows := []FastRow{{
		Name: "x", RowKind: "unit", Runs: 10, Feasible: 10,
		RunsPerSec: 1234.5, HeapHighWaterBytes: 1 << 20,
	}}
	blob, err := FastSnapshotJSON(rows)
	if err != nil {
		t.Fatal(err)
	}
	s, err := ReadFastSnapshot(blob)
	if err != nil {
		t.Fatal(err)
	}
	if s.Schema != FastSnapshotSchema || len(s.Rows) != 1 || s.Rows[0] != rows[0] {
		t.Errorf("snapshot did not round-trip: %+v", s)
	}
	if _, err := ReadFastSnapshot([]byte(`{"schema":"bogus/v9"}`)); err == nil {
		t.Error("unknown schema accepted")
	}
}
