package harness

import (
	"encoding/json"
	"fmt"
	"runtime"
	"strings"
	"time"

	"repro/internal/checker"
	"repro/internal/memmodel"
	"repro/internal/structures/chaselev"
	"repro/internal/structures/mpmc"
	"repro/internal/structures/msqueue"
)

// This file implements the fast-mode benchmark gate behind the
// BENCH_fastmode.json CI artifact: C11Tester-style sampling measured on
// three row classes.
//
//   - unit rows: every paper benchmark's primary unit test sampled for a
//     few thousand runs — the runs-per-second number (the paper-scale
//     programs must clear 1000 runs/sec by a wide margin) and a
//     zero-false-positive check (correct orders must stay clean).
//   - seeded rows: the builtin-detectable §6.4.1 bugs (the M&S queue
//     enqueue-publication CAS and the Chase-Lev resize publication) under
//     their known-bug order tables — fast mode must find each within the
//     run budget, the detection-power check.
//   - scaled rows: a 10⁵-operation MPMC workload no exhaustive engine
//     can touch (the execution tree at that depth is astronomically
//     large; exhaustive checking of the 6-op unit test already takes
//     thousands of executions) — fast mode samples whole runs in bounded
//     memory, the O(live state) check. Throughput is reported as
//     operations per second (runs at this scale take ~100ms each;
//     runs/sec is the unit-row metric).
//
// All rows run fast mode sequentially with fixed seeds, so every
// non-timing column is deterministic.

// FastRow is one fast-mode measurement.
type FastRow struct {
	Name string `json:"name"`
	// RowKind is "unit", "seeded", or "scaled".
	RowKind string `json:"row_kind"`
	// Runs is the sampled run count; OpsPerRun the data-structure
	// operations per run (scaled rows; 0 means unit-test scale).
	Runs      int `json:"runs"`
	OpsPerRun int `json:"ops_per_run,omitempty"`
	// Feasible counts runs that completed without pruning; a clean row
	// must have every run feasible (a step-bound or fairness prune on a
	// correct benchmark means the budget or the sampler is wrong).
	Feasible int `json:"feasible"`
	// Failures counts failing runs; Detected is whether any failure was
	// found. Seeded rows expect Detected (ExpectDetect true), all other
	// rows expect zero failures.
	Failures     int    `json:"failures"`
	Detected     bool   `json:"detected"`
	ExpectDetect bool   `json:"expect_detect"`
	FirstFailure string `json:"first_failure,omitempty"`
	// RunsPerSec is the sampling throughput; OpsPerSec multiplies it by
	// OpsPerRun for scaled rows.
	RunsPerSec float64       `json:"runs_per_sec"`
	OpsPerSec  float64       `json:"ops_per_sec,omitempty"`
	Time       time.Duration `json:"time_ns"`
	// Evictions counts store-buffer evictions (Stats.StoreBufferEvictions)
	// — nonzero on scaled rows, evidence the memory bound engaged.
	Evictions int `json:"evictions"`
	// HeapHighWaterBytes is the process heap high-water observed across
	// the row's runs (runtime.MemStats.HeapAlloc sampled between runs) —
	// the bounded-memory evidence for scaled rows. Process-wide, so rows
	// run strictly sequentially.
	HeapHighWaterBytes uint64 `json:"heap_high_water_bytes"`
}

// Pass reports whether the row met its expectation: seeded rows must
// detect their bug; every other row must stay clean with every run
// feasible (no failures hidden behind prunes).
func (r FastRow) Pass() bool {
	if r.ExpectDetect {
		return r.Detected
	}
	return r.Failures == 0 && r.Feasible == r.Runs
}

// fastHeapSampleEvery is the run period of the heap high-water sampling
// hook (sampling ReadMemStats per run would dominate unit-row runtime).
const fastHeapSampleEvery = 50

// measureFast samples prog under cfg (FastMode forced on) and fills a
// row. Heap is sampled every fastHeapSampleEvery runs via OnRunStart
// plus once after the final run.
func measureFast(name, rowKind string, cfg checker.Config, prog func(*checker.Thread)) FastRow {
	cfg.FastMode = true
	var high uint64
	sample := func() {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		if ms.HeapAlloc > high {
			high = ms.HeapAlloc
		}
	}
	runs := 0
	userStart := cfg.OnRunStart
	cfg.OnRunStart = func(sys *checker.System) {
		if runs%fastHeapSampleEvery == 0 {
			sample()
		}
		runs++
		if userStart != nil {
			userStart(sys)
		}
	}
	runtime.GC()
	res := checker.Explore(cfg, prog)
	sample()
	row := FastRow{
		Name:               name,
		RowKind:            rowKind,
		Runs:               res.Executions,
		Feasible:           res.Feasible,
		Failures:           res.FailureCount,
		Detected:           res.FailureCount > 0,
		RunsPerSec:         res.Stats.RunsPerSec,
		Time:               res.Elapsed,
		Evictions:          res.Stats.StoreBufferEvictions,
		HeapHighWaterBytes: high,
	}
	if f := res.FirstFailure(); f != nil {
		row.FirstFailure = fmt.Sprintf("%s: %s", f.Kind, f.Msg)
	}
	return row
}

// scaledMPMCProg builds the production-sized workload: perThread
// operations by each of two producers and two consumers against one
// bounded ring. The MPMC queue reuses a fixed set of locations (slots +
// two tickets), so live state stays bounded no matter how many
// operations flow through — the workload the store-buffer bound exists
// for. (The M&S queue would allocate two locations per enqueue and grow
// without bound.)
func scaledMPMCProg(perThread, capacity int) func(*checker.Thread) {
	return func(root *checker.Thread) {
		q := mpmc.New(root, "q", nil, capacity)
		worker := func(name string, enq bool) *checker.Thread {
			return root.Spawn(name, func(tt *checker.Thread) {
				for i := 0; i < perThread; i++ {
					if enq {
						q.Enq(tt, memmodel.Value(i+1))
					} else {
						q.Deq(tt)
					}
				}
			})
		}
		p1, p2 := worker("p1", true), worker("p2", true)
		c1, c2 := worker("c1", false), worker("c2", false)
		root.Join(p1)
		root.Join(p2)
		root.Join(c1)
		root.Join(c2)
	}
}

// FastBenchConfig scales the gate; the zero value is the CI shape.
type FastBenchConfig struct {
	// Seed seeds every row (default 1).
	Seed int64
	// UnitRuns is the run budget per unit row (default 2000).
	UnitRuns int
	// SeededRuns is the run budget per seeded-bug row (default 2000).
	SeededRuns int
	// ScaledRuns is the run budget per scaled row (default 3).
	ScaledRuns int
	// ScaledOpsPerThread is the per-thread op count of the scaled
	// workload; four threads, so total ops = 4× this (default 25000,
	// i.e. a 10⁵-op program).
	ScaledOpsPerThread int
}

func (c FastBenchConfig) withDefaults() FastBenchConfig {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.UnitRuns == 0 {
		c.UnitRuns = 2000
	}
	if c.SeededRuns == 0 {
		c.SeededRuns = 2000
	}
	if c.ScaledRuns == 0 {
		c.ScaledRuns = 3
	}
	if c.ScaledOpsPerThread == 0 {
		c.ScaledOpsPerThread = 25000
	}
	return c
}

// RunFastBench measures every row. Rows run strictly sequentially: the
// heap high-water sample is process-wide, and sequential rows keep every
// deterministic column reproducible.
func RunFastBench(cfg FastBenchConfig) []FastRow {
	cfg = cfg.withDefaults()
	var rows []FastRow

	// Unit rows: correct orders, so any failure is a fast-mode false
	// positive (or a real paper-benchmark bug — either way a gate stop).
	for _, b := range Benchmarks() {
		rows = append(rows, measureFast(b.Name, "unit", checker.Config{
			MaxExecutions: cfg.UnitRuns,
			Seed:          cfg.Seed,
		}, b.Progs(b.Orders())[0]))
	}

	// Seeded rows: builtin-detectable §6.4.1 bugs. StopAtFirst — the
	// row measures detection, not post-detection throughput.
	ms := BenchmarkByName("M&S Queue")
	rows = append(rows, measureFast("M&S Queue [seeded enq bug]", "seeded", checker.Config{
		MaxExecutions: cfg.SeededRuns,
		Seed:          cfg.Seed,
		StopAtFirst:   true,
	}, ms.Progs(msqueue.KnownBugEnqueue())[0]))
	cl := BenchmarkByName("Chase-Lev Deque")
	rows = append(rows, measureFast("Chase-Lev Deque [seeded resize bug]", "seeded", checker.Config{
		MaxExecutions: cfg.SeededRuns,
		Seed:          cfg.Seed,
		StopAtFirst:   true,
	}, cl.Progs(chaselev.KnownBugOrders())[1]))
	for i := len(rows) - 2; i < len(rows); i++ {
		rows[i].ExpectDetect = true
	}

	// Scaled row: 4 × ScaledOpsPerThread operations per run. The step
	// bound must cover data-structure steps plus spin retries; 100×
	// leaves headroom (a blown bound prunes the run, which Pass catches
	// as Feasible < Runs).
	totalOps := 4 * cfg.ScaledOpsPerThread
	scaled := measureFast(
		fmt.Sprintf("MPMC ring 4×%d ops", cfg.ScaledOpsPerThread), "scaled",
		checker.Config{
			MaxExecutions: cfg.ScaledRuns,
			Seed:          cfg.Seed,
			MaxSteps:      100 * totalOps,
		}, scaledMPMCProg(cfg.ScaledOpsPerThread, 64))
	scaled.OpsPerRun = totalOps
	scaled.OpsPerSec = scaled.RunsPerSec * float64(totalOps)
	rows = append(rows, scaled)

	return rows
}

// FastSnapshotSchema identifies the BENCH_fastmode.json layout.
const FastSnapshotSchema = "cdsspec-fastmode/v1"

// FastSnapshot is the serialized form of a fast-mode benchmark run.
type FastSnapshot struct {
	Schema string    `json:"schema"`
	Rows   []FastRow `json:"fastmode"`
}

// FastSnapshotJSON serializes rows into the BENCH_fastmode.json blob.
func FastSnapshotJSON(rows []FastRow) ([]byte, error) {
	return json.MarshalIndent(&FastSnapshot{Schema: FastSnapshotSchema, Rows: rows}, "", "  ")
}

// ReadFastSnapshot decodes a BENCH_fastmode.json blob, rejecting unknown
// schemas outright rather than misreading them.
func ReadFastSnapshot(data []byte) (*FastSnapshot, error) {
	var s FastSnapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("decoding fastmode snapshot: %w", err)
	}
	if s.Schema != FastSnapshotSchema {
		return nil, fmt.Errorf("unsupported fastmode snapshot schema %q (want %q)", s.Schema, FastSnapshotSchema)
	}
	return &s, nil
}

// FormatFastBench renders the rows as the EXPERIMENTS.md-style table.
// Unit and seeded rows print runs/sec; the scaled row adds ops/sec and
// the heap high-water, the bounded-memory evidence.
func FormatFastBench(rows []FastRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-36s %-6s %8s %10s %12s %12s %10s %9s %6s %s\n",
		"benchmark", "kind", "runs", "ops/run", "runs/sec", "ops/sec", "heap-high", "evictions", "pass", "failure")
	for _, r := range rows {
		opsPerRun, opsPerSec := "n/a", "n/a"
		if r.OpsPerRun > 0 {
			opsPerRun = fmt.Sprintf("%d", r.OpsPerRun)
			opsPerSec = fmt.Sprintf("%.0f", r.OpsPerSec)
		}
		fail := r.FirstFailure
		if fail == "" {
			fail = "-"
		}
		fmt.Fprintf(&sb, "%-36s %-6s %8d %10s %12.0f %12s %9.1fM %9d %6v %s\n",
			r.Name, r.RowKind, r.Runs, opsPerRun, r.RunsPerSec, opsPerSec,
			float64(r.HeapHighWaterBytes)/(1<<20), r.Evictions, r.Pass(), fail)
	}
	return sb.String()
}
