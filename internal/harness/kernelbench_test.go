package harness

import (
	"strings"
	"testing"
	"time"
)

// TestReadKernelSnapshotBackCompat: v3 round-trips, v2/v1 blobs (no
// reduction / no ws columns) still load with the absent fields zero,
// unknown schemas are rejected.
func TestReadKernelSnapshotBackCompat(t *testing.T) {
	rows := []KernelRow{{
		Name: "M&S Queue", Executions: 1957, Feasible: 1407,
		OptTime: 25 * time.Millisecond, BaseTime: 50 * time.Millisecond,
		Identical: true,
		WsTime:    12 * time.Millisecond, WsWorkers: 8,
		WsBusy: 90 * time.Millisecond, WsSteals: 80, WsIdentical: true,
		RedTime: 8 * time.Millisecond, RedReduce: "rf,symmetry,spinloop",
		RedExecutions: 495, RedClasses: 83, RedIdentical: true,
	}}
	blob, err := KernelSnapshotJSON(rows)
	if err != nil {
		t.Fatal(err)
	}
	s, err := ReadKernelSnapshot(blob)
	if err != nil {
		t.Fatal(err)
	}
	if s.Schema != KernelSnapshotSchema || len(s.Rows) != 1 || s.Rows[0].WsSteals != 80 || s.Rows[0].RedExecutions != 495 {
		t.Errorf("v3 round trip mangled the snapshot: %+v", s)
	}
	if x := s.Rows[0].ReductionX(); x < 3.9 || x > 4.0 {
		t.Errorf("ReductionX() = %v, want 1957/495", x)
	}

	v2 := `{"schema":"` + KernelSnapshotSchemaV2 + `","kernel":[{"name":"RCU","executions":79,"ws_workers":8,"identical":true}]}`
	s, err = ReadKernelSnapshot([]byte(v2))
	if err != nil {
		t.Fatalf("v2 snapshot rejected: %v", err)
	}
	if s.Rows[0].RedExecutions != 0 || s.Rows[0].ReductionX() != 0 {
		t.Errorf("v2 row grew reduction columns: %+v", s.Rows[0])
	}

	v1 := `{"schema":"` + KernelSnapshotSchemaV1 + `","kernel":[{"name":"RCU","executions":79,"identical":true}]}`
	s, err = ReadKernelSnapshot([]byte(v1))
	if err != nil {
		t.Fatalf("v1 snapshot rejected: %v", err)
	}
	if s.Rows[0].WsWorkers != 0 {
		t.Errorf("v1 row grew ws columns: %+v", s.Rows[0])
	}
	// A v1 row (no ws or reduction leg) renders those columns as n/a.
	if out := FormatKernelBench(s.Rows); !strings.Contains(out, "n/a") {
		t.Errorf("v1 row should render ws columns as n/a:\n%s", out)
	}

	if _, err := ReadKernelSnapshot([]byte(`{"schema":"cdsspec-kernelbench/v9"}`)); err == nil {
		t.Error("unknown schema accepted")
	}
}

// TestKernelRowWsMetrics: the derived work-stealing metrics.
func TestKernelRowWsMetrics(t *testing.T) {
	r := KernelRow{
		OptTime: 100 * time.Millisecond,
		WsTime:  25 * time.Millisecond, WsWorkers: 8,
		WsBusy: 160 * time.Millisecond,
	}
	if got := r.WsSpeedupX(); got != 4.0 {
		t.Errorf("WsSpeedupX() = %v, want 4.0", got)
	}
	if got := r.WsBusyPct(); got != 80.0 {
		t.Errorf("WsBusyPct() = %v, want 80.0", got)
	}
	var zero KernelRow
	if zero.WsSpeedupX() != 0 || zero.WsBusyPct() != 0 {
		t.Error("zero row must report zero ws metrics, not NaN/Inf")
	}
}
