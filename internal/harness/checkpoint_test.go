package harness

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/checker"
	"repro/internal/core"
)

// The ISSUE's end-to-end determinism suite: full spec-checked
// explorations of real benchmarks must produce bit-identical
// Result/Stats across worker counts and across checkpoint/resume
// boundaries. MPMC Queue is the imbalanced 159k-execution workload, so
// it only runs in full (non -short) mode.

// exploreBench explores the benchmark's primary workload under cfg.
func exploreBench(b *Benchmark, cfg checker.Config) *checker.Result {
	spec := b.Spec()
	return core.Explore(spec, cfg, b.Progs(b.Orders())[0])
}

// requireSameResult asserts the cross-worker bit-identity contract:
// every Result field and every Stats counter except the timings and
// scheduler telemetry.
func requireSameResult(t *testing.T, name string, want, got *checker.Result, resumed bool) {
	t.Helper()
	if want.Executions != got.Executions || want.Feasible != got.Feasible ||
		want.Pruned != got.Pruned || want.Exhausted != got.Exhausted ||
		want.FailureCount != got.FailureCount {
		t.Fatalf("%s: result differs:\n  want: %v (exhausted=%v)\n  got:  %v (exhausted=%v)",
			name, want, want.Exhausted, got, got.Exhausted)
	}
	// Across a resume boundary the spec-cache hit/miss split shifts (the
	// cache restarts cold); within one run it is exact.
	ws, gs := want.Stats.WithoutTimings(), got.Stats.WithoutTimings()
	if resumed {
		ws, gs = ResumeComparableStats(want.Stats), ResumeComparableStats(got.Stats)
	}
	if ws != gs {
		t.Fatalf("%s: stats differ:\n  want: %+v\n  got:  %+v", name, ws, gs)
	}
	if len(want.Failures) != len(got.Failures) {
		t.Fatalf("%s: retained failures differ: %d vs %d", name, len(want.Failures), len(got.Failures))
	}
	for i := range want.Failures {
		wf, gf := want.Failures[i], got.Failures[i]
		if wf.Kind != gf.Kind || wf.Execution != gf.Execution {
			t.Fatalf("%s: failure %d differs: %v@%d vs %v@%d",
				name, i, wf.Kind, wf.Execution, gf.Kind, gf.Execution)
		}
	}
}

// determinismBenchmarks returns the ISSUE's required trio, with the
// heavyweight MPMC row dropped under -short.
func determinismBenchmarks(t *testing.T) []string {
	names := []string{"M&S Queue", "RCU"}
	if testing.Short() {
		t.Log("-short: skipping the MPMC Queue workload (~10s per exploration)")
	} else {
		names = append(names, "MPMC Queue")
	}
	return names
}

// TestWorkStealDeterminismAcrossWorkers: workers 1, 4, 16 all reproduce
// the sequential exploration bit-for-bit.
func TestWorkStealDeterminismAcrossWorkers(t *testing.T) {
	for _, name := range determinismBenchmarks(t) {
		b := BenchmarkByName(name)
		if b == nil {
			t.Fatalf("benchmark %q missing", name)
		}
		seq := exploreBench(b, checker.Config{})
		if !seq.Exhausted {
			t.Fatalf("%s: sequential exploration did not exhaust", name)
		}
		for _, workers := range []int{1, 4, 16} {
			// Parallelism 1 routes through the sequential loop; force the
			// engine by asking for a (discarded) checkpoint, so the
			// one-worker engine is covered too.
			cfg := checker.Config{Parallelism: workers}
			if workers == 1 {
				cfg.Checkpoint = func(*checker.Checkpoint) {}
			}
			par := exploreBench(b, cfg)
			requireSameResult(t, fmt.Sprintf("%s workers=%d", name, workers), seq, par, false)
		}
	}
}

// TestWorkStealDeterminismAcrossResume: for each benchmark, cut the
// exploration at several points, round-trip the checkpoint through the
// on-disk envelope, resume at a different worker count, and require the
// final result to match the uninterrupted sequential run.
func TestWorkStealDeterminismAcrossResume(t *testing.T) {
	dir := t.TempDir()
	for _, name := range determinismBenchmarks(t) {
		b := BenchmarkByName(name)
		if b == nil {
			t.Fatalf("benchmark %q missing", name)
		}
		seq := exploreBench(b, checker.Config{})
		for _, frac := range []int{10, 2} { // cut at 1/10th and half
			cut := seq.Executions / frac
			if cut == 0 {
				cut = 1
			}
			var cp *checker.Checkpoint
			partial := exploreBench(b, checker.Config{
				Parallelism:   4,
				MaxExecutions: cut,
				Checkpoint:    func(c *checker.Checkpoint) { cp = c },
			})
			if partial.Executions != cut || cp == nil || cp.Complete() {
				t.Fatalf("%s: bad cut at %d: executions=%d cp=%v", name, cut, partial.Executions, cp)
			}

			// Round-trip through the on-disk envelope, exactly as the CLI
			// does.
			path := filepath.Join(dir, "cp.json")
			if err := WriteCheckpointFile(path, &CheckpointFile{
				Schema: CheckpointFileSchema, Benchmark: name, Workers: 4, State: cp,
			}); err != nil {
				t.Fatal(err)
			}
			cf, err := ReadCheckpointFile(path)
			if err != nil {
				t.Fatal(err)
			}

			resumed := exploreBench(b, checker.Config{Parallelism: 8, ResumeFrom: cf.State})
			requireSameResult(t, fmt.Sprintf("%s cut=1/%d", name, frac), seq, resumed, true)
		}
	}
}

// TestCheckpointFileValidation: the envelope reader rejects missing
// files, foreign schemas, absent state, and unknown benchmarks.
func TestCheckpointFileValidation(t *testing.T) {
	dir := t.TempDir()
	if _, err := ReadCheckpointFile(filepath.Join(dir, "absent.json")); err == nil {
		t.Error("missing file accepted")
	}
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	state := `{"schema":"` + checker.CheckpointSchema + `","cells":[{"pending":true}]}`
	cases := map[string]string{
		"garbage.json":  `{`,
		"schema.json":   `{"schema":"cdsspec-checkpoint-file/v9","benchmark":"RCU","state":` + state + `}`,
		"nostate.json":  `{"schema":"` + CheckpointFileSchema + `","benchmark":"RCU"}`,
		"badstate.json": `{"schema":"` + CheckpointFileSchema + `","benchmark":"RCU","state":{"schema":"nope"}}`,
		"nobench.json":  `{"schema":"` + CheckpointFileSchema + `","benchmark":"No Such Structure","state":` + state + `}`,
	}
	for name, content := range cases {
		if _, err := ReadCheckpointFile(write(name, content)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if _, err := ReadCheckpointFile(write("badreduce.json",
		`{"schema":"`+CheckpointFileSchema+`","benchmark":"RCU","reduce":"bogus","state":`+state+`}`)); err == nil {
		t.Error("badreduce.json: accepted")
	}
	good := write("good.json", `{"schema":"`+CheckpointFileSchema+`","benchmark":"RCU","state":`+state+`}`)
	cf, err := ReadCheckpointFile(good)
	if err != nil {
		t.Fatalf("valid envelope rejected: %v", err)
	}
	if cf.Benchmark != "RCU" || cf.State.Pending() != 1 {
		t.Errorf("round trip mangled the envelope: %+v", cf)
	}
	// Reduction identity: an absent field means unreduced (pre-reduction
	// envelopes), a recorded set must match the resume's exactly.
	if cf.ReduceSet().Any() {
		t.Errorf("absent reduce field resolved to %v, want the zero set", cf.ReduceSet())
	}
	if err := cf.ValidateReduce(checker.ReduceSet{}); err != nil {
		t.Errorf("matching (empty) reduction refused: %v", err)
	}
	if err := cf.ValidateReduce(checker.ReduceAll()); err == nil {
		t.Error("mismatched reduction accepted on an unreduced checkpoint")
	}
	red := write("reduced.json",
		`{"schema":"`+CheckpointFileSchema+`","benchmark":"RCU","reduce":"rf,spinloop","state":`+state+`}`)
	cf, err = ReadCheckpointFile(red)
	if err != nil {
		t.Fatalf("reduced envelope rejected: %v", err)
	}
	if got := cf.ReduceSet(); got != (checker.ReduceSet{RF: true, Spinloop: true}) {
		t.Errorf("ReduceSet() = %+v, want rf+spinloop", got)
	}
	if err := cf.ValidateReduce(checker.ReduceSet{RF: true, Spinloop: true}); err != nil {
		t.Errorf("matching reduction refused: %v", err)
	}
	if err := cf.ValidateReduce(checker.ReduceSet{RF: true}); err == nil {
		t.Error("subset reduction accepted — a frontier is only valid under the exact set that produced it")
	}
}

// TestWriteCheckpointFileDurability: an empty path is refused outright
// (it used to surface as an opaque rename error into the working
// directory), a successful write round-trips through the full
// fsync-file + rename + fsync-dir path, and a failed write leaves the
// previous checkpoint intact with no temp-file litter.
func TestWriteCheckpointFileDurability(t *testing.T) {
	cf := &CheckpointFile{
		Schema:    CheckpointFileSchema,
		Benchmark: "RCU",
		State:     &checker.Checkpoint{Schema: checker.CheckpointSchema, Cells: []checker.CheckpointCell{{Pending: true}}},
	}
	if err := WriteCheckpointFile("", cf); err == nil {
		t.Error("empty checkpoint path accepted")
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "cp.json")
	if err := WriteCheckpointFile(path, cf); err != nil {
		t.Fatalf("durable write failed: %v", err)
	}
	got, err := ReadCheckpointFile(path)
	if err != nil {
		t.Fatalf("written checkpoint unreadable: %v", err)
	}
	if got.Benchmark != "RCU" || got.State.Pending() != 1 {
		t.Errorf("round trip mangled the envelope: %+v", got)
	}
	// A write into a missing directory fails without touching path.
	bad := filepath.Join(dir, "no-such-dir", "cp.json")
	if err := WriteCheckpointFile(bad, cf); err == nil {
		t.Error("write into a missing directory succeeded")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "cp.json" {
		t.Errorf("temp-file litter or lost checkpoint after failed write: %v", entries)
	}
}
