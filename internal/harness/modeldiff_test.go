package harness

import (
	"strings"
	"testing"

	"repro/internal/checker/model"
)

// TestModelDiffSB is the acceptance check for the modeldiff surface: the
// store-buffering litmus must report at least one outcome present under
// c11 and absent under sc — specifically the relaxed r1=0 r2=0 weak
// behavior — and nothing sc-only.
func TestModelDiffSB(t *testing.T) {
	rep, err := RunModelDiff("SB", model.C11, model.SC, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.A.Exhausted || !rep.B.Exhausted {
		t.Fatalf("legs not exhausted: %+v", rep)
	}
	if rep.OnlyACount < 1 {
		t.Fatalf("expected at least one c11-only outcome, got %+v", rep)
	}
	found := false
	for _, o := range rep.OnlyA {
		if o == "r1=0 r2=0" {
			found = true
		}
	}
	if !found {
		t.Errorf("r1=0 r2=0 not among the c11-only outcomes: %v", rep.OnlyA)
	}
	if rep.OnlyBCount != 0 {
		t.Errorf("sc admitted outcomes c11 forbids: %v", rep.OnlyB)
	}
	if rep.Common != 3 {
		t.Errorf("SB interleaving outcomes should be the 3 common ones, got %d", rep.Common)
	}
	if rep.B.Executions >= rep.A.Executions {
		t.Errorf("sc should explore fewer executions than c11: %d vs %d",
			rep.B.Executions, rep.A.Executions)
	}
	out := rep.Render()
	for _, want := range []string{"modeldiff SB", "only c11: r1=0 r2=0", "behaviors: 3 common, 1 only under c11"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q:\n%s", want, out)
		}
	}
}

// TestModelDiffBenchmark runs a benchmark target: sc's spec-fingerprint
// behaviors must be a subset of c11's (every interleaving is a consistent
// C/C++11 execution), with a shared common core and no failures on
// either side.
func TestModelDiffBenchmark(t *testing.T) {
	rep, err := RunModelDiff("SPSC Queue", model.C11, model.SC, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Kind != "benchmark" {
		t.Fatalf("kind = %q, want benchmark", rep.Kind)
	}
	if !rep.A.Exhausted || !rep.B.Exhausted {
		t.Fatalf("legs not exhausted: %+v", rep)
	}
	if rep.Common < 1 {
		t.Errorf("no common behaviors between c11 and sc: %+v", rep)
	}
	if rep.OnlyBCount != 0 {
		t.Errorf("sc produced spec behaviors c11 cannot: %v", rep.OnlyB)
	}
	if len(rep.FailOnlyA) != 0 || len(rep.FailOnlyB) != 0 || rep.FailCommon != 0 {
		t.Errorf("SPSC Queue should be failure-free under both models: %+v", rep)
	}
}

// TestModelDiffSelf diffs a model against itself: identical legs, empty
// diff. This doubles as a determinism check on the fingerprint keys.
func TestModelDiffSelf(t *testing.T) {
	rep, err := RunModelDiff("MP", model.SC, model.SC, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OnlyACount != 0 || rep.OnlyBCount != 0 {
		t.Errorf("self-diff is non-empty: %+v", rep)
	}
	if !strings.Contains(rep.Render(), "no behavioral difference observed") {
		t.Errorf("Render of an empty diff should say so:\n%s", rep.Render())
	}
}

// TestModelDiffErrors pins the error surface: unknown targets list the
// valid names, unknown models are rejected before any exploration.
func TestModelDiffErrors(t *testing.T) {
	_, err := RunModelDiff("nope", model.C11, model.SC, Options{})
	if err == nil || !strings.Contains(err.Error(), "unknown target") || !strings.Contains(err.Error(), "SB") {
		t.Errorf("unknown target error should list valid names, got: %v", err)
	}
	_, err = RunModelDiff("SB", "tso", model.SC, Options{})
	if err == nil || !strings.Contains(err.Error(), "unknown memory model") {
		t.Errorf("unknown model error missing, got: %v", err)
	}
}

// TestLitmusRegistry: every litmus target resolves and no litmus name
// shadows a benchmark name.
func TestLitmusRegistry(t *testing.T) {
	for _, lt := range LitmusTests() {
		if LitmusByName(lt.Name) == nil {
			t.Errorf("litmus %q does not resolve", lt.Name)
		}
		if BenchmarkByName(lt.Name) != nil {
			t.Errorf("litmus %q shadows a benchmark of the same name", lt.Name)
		}
	}
}
