package harness

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/checker"
	"repro/internal/checker/model"
	"repro/internal/core"
	"repro/internal/structures/chaselev"
	"repro/internal/structures/msqueue"
)

// This file is the reduction soundness suite: for every mechanism in
// checker.ReduceSet the reduced exploration must observe the identical
// behavior set (litmus outcomes; spec fingerprints for benchmarks) and
// the identical failure kinds as the unreduced one, under every model
// backend and every engine (sequential and work-stealing at several
// worker counts). The one documented exception is thread symmetry on
// programs with identical-closure siblings, where the reduced behavior
// set is a canonical subset of the unreduced one (the spec fingerprint
// keys raw thread ids, and symmetry merges thread-renamed twins); that
// contract gets its own test with a deliberately symmetric program.
//
// The suite also pins the acceptance numbers: exact sequential execution
// counts for the reduced and unreduced legs on MP, the M&S queue, and
// the MPMC queue, and the >=5x reduction factors the issue gates on.

var soundnessModels = []model.ID{"c11", "sc", "scatomics"}
var soundnessWorkers = []int{1, 4, 16}

// behaviorEqual asserts two legs observed identical behavior-key sets.
func behaviorEqual(t *testing.T, label string, u, r *legRun) {
	t.Helper()
	onlyU, onlyR, _ := setDiff(u.behaviors, r.behaviors)
	if len(onlyU) > 0 {
		t.Errorf("%s: reduction lost %d behaviors (e.g. %q)", label, len(onlyU), onlyU[0])
	}
	if len(onlyR) > 0 {
		t.Errorf("%s: reduction invented %d behaviors (e.g. %q)", label, len(onlyR), onlyR[0])
	}
}

// failureKindsEqual asserts two legs observed identical failure kinds.
// Kinds, not full signatures: a failure message may embed prefix-
// dependent detail, and the reduction guarantee is that every kind of
// violation stays witnessed, not that the same interleaving reports it.
func failureKindsEqual(t *testing.T, label string, u, r *checker.Result) {
	t.Helper()
	kinds := func(res *checker.Result) map[string]bool {
		out := map[string]bool{}
		for _, f := range res.Failures {
			out[f.Kind.String()] = true
		}
		return out
	}
	onlyU, onlyR, _ := setDiff(kinds(u), kinds(r))
	if len(onlyU) > 0 {
		t.Errorf("%s: reduction lost failure kinds %v", label, onlyU)
	}
	if len(onlyR) > 0 {
		t.Errorf("%s: reduction invented failure kinds %v", label, onlyR)
	}
}

// runProgLeg explores an arbitrary program against a spec, collecting
// spec fingerprints as behavior keys — runBenchmarkLeg for programs that
// are not a benchmark's primary workload.
func runProgLeg(spec *core.Spec, cfg checker.Config, prog func(*checker.Thread)) *legRun {
	lr := &legRun{behaviors: map[string]bool{}, failures: map[string]bool{}}
	var mu sync.Mutex
	cfg.OnExecution = func(sys *checker.System) []*checker.Failure {
		if mon := core.FromSys(sys); mon != nil {
			key := fmt.Sprintf("%016x", mon.Fingerprint())
			mu.Lock()
			lr.behaviors[key] = true
			mu.Unlock()
		}
		return nil
	}
	lr.res = core.Explore(spec, cfg, prog)
	for _, f := range lr.res.Failures {
		lr.failures[failureSig(f)] = true
	}
	return lr
}

// TestReduceSoundnessLitmus checks the full matrix on the litmus trio:
// every model, every worker count, reduced vs unreduced, identical
// outcome sets and failure signatures.
func TestReduceSoundnessLitmus(t *testing.T) {
	for _, lt := range LitmusTests() {
		for _, id := range soundnessModels {
			for _, workers := range soundnessWorkers {
				label := fmt.Sprintf("%s/%s/w%d", lt.Name, id, workers)
				u := runLitmusLeg(lt, id, Options{Parallelism: workers, Model: id})
				r := runLitmusLeg(lt, id, Options{Parallelism: workers, Model: id, Reduce: checker.ReduceAll()})
				behaviorEqual(t, label, u, r)
				failureKindsEqual(t, label, u.res, r.res)
				if r.res.Executions > u.res.Executions {
					t.Errorf("%s: reduced leg explored more executions (%d) than unreduced (%d)",
						label, r.res.Executions, u.res.Executions)
				}
			}
		}
	}
}

// TestReduceSoundnessMSQueue checks the M&S queue primary workload on
// the same matrix, and that the rf class count is a deterministic
// property of (program, model) — identical at every worker count.
func TestReduceSoundnessMSQueue(t *testing.T) {
	b := BenchmarkByName("M&S Queue")
	for _, id := range soundnessModels {
		classes := -1
		for _, workers := range soundnessWorkers {
			label := fmt.Sprintf("msqueue/%s/w%d", id, workers)
			u := runBenchmarkLeg(b, id, Options{Parallelism: workers, Model: id})
			r := runBenchmarkLeg(b, id, Options{Parallelism: workers, Model: id, Reduce: checker.ReduceAll()})
			behaviorEqual(t, label, u, r)
			failureKindsEqual(t, label, u.res, r.res)
			if classes == -1 {
				classes = r.res.Stats.RFClasses
			} else if r.res.Stats.RFClasses != classes {
				t.Errorf("%s: rf classes = %d, want %d (same as at other worker counts)",
					label, r.res.Stats.RFClasses, classes)
			}
		}
	}
}

// TestReduceSoundnessMPMC checks the MPMC queue (the largest registry
// workload) under c11 at every worker count, plus the >=5x acceptance
// ratio on its primary workload.
func TestReduceSoundnessMPMC(t *testing.T) {
	if testing.Short() {
		t.Skip("MPMC unreduced leg explores >150k executions")
	}
	b := BenchmarkByName("MPMC Queue")
	for _, workers := range soundnessWorkers {
		label := fmt.Sprintf("mpmc/c11/w%d", workers)
		u := runBenchmarkLeg(b, "c11", Options{Parallelism: workers})
		r := runBenchmarkLeg(b, "c11", Options{Parallelism: workers, Reduce: checker.ReduceAll()})
		behaviorEqual(t, label, u, r)
		failureKindsEqual(t, label, u.res, r.res)
		if ratio := float64(u.res.Executions) / float64(r.res.Executions); ratio < 5 {
			t.Errorf("%s: reduction factor %.2fx, want >=5x (unreduced %d, reduced %d)",
				label, ratio, u.res.Executions, r.res.Executions)
		}
	}
}

// TestReduceSoundnessSeededBugs re-runs the §6.4.1 seeded-bug programs
// exhaustively (no StopAtFirst) reduced vs unreduced: the reduction must
// keep every violation kind witnessed and the buggy behavior sets
// identical.
func TestReduceSoundnessSeededBugs(t *testing.T) {
	ms := BenchmarkByName("M&S Queue")
	cl := BenchmarkByName("Chase-Lev Deque")
	cases := []struct {
		name string
		spec *core.Spec
		prog func(*checker.Thread)
	}{
		{"msqueue-weak-enqueue", ms.Spec(), ms.Progs(msqueue.KnownBugEnqueue())[0]},
		{"msqueue-weak-dequeue", ms.Spec(), ms.Progs(msqueue.KnownBugDequeue())[0]},
		{"chaselev-weak-resize", cl.Spec(), cl.Progs(chaselev.KnownBugOrders())[1]},
	}
	for _, tc := range cases {
		u := runProgLeg(tc.spec, checker.Config{}, tc.prog)
		r := runProgLeg(tc.spec, checker.Config{Reduce: checker.ReduceAll()}, tc.prog)
		if len(u.res.Failures) == 0 || len(r.res.Failures) == 0 {
			t.Errorf("%s: seeded bug not detected (unreduced %d failures, reduced %d)",
				tc.name, len(u.res.Failures), len(r.res.Failures))
		}
		behaviorEqual(t, tc.name, u, r)
		failureKindsEqual(t, tc.name, u.res, r.res)
	}
}

// TestReduceExecutionCountsPinned pins the sequential execution counts
// on the acceptance targets. Sequential reduction is deterministic, so
// any drift here means the explored space changed — compare the reduced
// and unreduced behavior sets before updating the pins.
func TestReduceExecutionCountsPinned(t *testing.T) {
	if testing.Short() {
		t.Skip("MPMC unreduced leg explores >150k executions")
	}
	cases := []struct {
		target       string
		unreduced    int
		reduced      int
		reducedFloor float64 // minimum acceptable unreduced/reduced ratio
	}{
		{"MP", 25, 15, 0},
		{"M&S Queue", 1957, 495, 0},
		{"MPMC Queue", 159076, 5507, 5},
	}
	for _, tc := range cases {
		rep, err := RunReduceDiff(tc.target, checker.ReduceAll(), Options{})
		if err != nil {
			t.Fatalf("%s: %v", tc.target, err)
		}
		if !rep.Sound {
			t.Errorf("%s: reduction is not sound: %d behaviors only unreduced, %d only reduced",
				tc.target, rep.OnlyUnreducedCount, rep.OnlyReducedCount)
		}
		if rep.Unreduced.Executions != tc.unreduced {
			t.Errorf("%s: unreduced executions = %d, want %d", tc.target, rep.Unreduced.Executions, tc.unreduced)
		}
		if rep.Reduced.Executions != tc.reduced {
			t.Errorf("%s: reduced executions = %d, want %d", tc.target, rep.Reduced.Executions, tc.reduced)
		}
		if rep.Ratio < tc.reducedFloor {
			t.Errorf("%s: reduction factor %.2fx below the %.0fx acceptance floor", tc.target, rep.Ratio, tc.reducedFloor)
		}
	}
}

// TestReduceRatioMSQueueWorkload is the msqueue side of the >=5x
// acceptance gate. The primary Figure 7 workload (2+2 operations) tops
// out near 4x — each convergence the rf check discovers still costs the
// one replay that discovers it, and with only 83 rf classes the replays
// dominate — but the factor grows combinatorially with the workload:
// at 3+3 operations per thread the full reduction cuts executions by
// >50x with a byte-identical fingerprint set.
func TestReduceRatioMSQueueWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("unreduced leg explores >600k executions")
	}
	b := BenchmarkByName("M&S Queue")
	ord := b.Orders()
	prog := func(root *checker.Thread) {
		q := msqueue.New(root, "q", ord)
		a := root.Spawn("a", func(tt *checker.Thread) {
			q.Enq(tt, 1)
			q.Deq(tt)
			q.Enq(tt, 3)
		})
		bb := root.Spawn("b", func(tt *checker.Thread) {
			q.Enq(tt, 2)
			q.Deq(tt)
			q.Deq(tt)
		})
		root.Join(a)
		root.Join(bb)
		q.Deq(root)
	}
	u := runProgLeg(b.Spec(), checker.Config{}, prog)
	r := runProgLeg(b.Spec(), checker.Config{Reduce: checker.ReduceAll()}, prog)
	behaviorEqual(t, "msqueue-3x3", u, r)
	failureKindsEqual(t, "msqueue-3x3", u.res, r.res)
	ratio := float64(u.res.Executions) / float64(r.res.Executions)
	if ratio < 5 {
		t.Errorf("msqueue-3x3: reduction factor %.2fx, want >=5x (unreduced %d, reduced %d)",
			ratio, u.res.Executions, r.res.Executions)
	}
	t.Logf("msqueue-3x3: %d -> %d executions (%.2fx), %d behaviors", u.res.Executions, r.res.Executions, ratio, len(u.behaviors))
}

// TestReduceSymmetryRenamesBehaviors pins the symmetry contract on a
// program with genuinely interchangeable threads (one shared closure):
// symmetry merges executions that differ only by a thread renaming, so
// the reduced fingerprint set is a strict subset of the unreduced one,
// while rf+spinloop alone (no symmetry) still preserve it exactly.
func TestReduceSymmetryRenamesBehaviors(t *testing.T) {
	b := BenchmarkByName("M&S Queue")
	ord := b.Orders()
	prog := func(root *checker.Thread) {
		q := msqueue.New(root, "q", ord)
		body := func(tt *checker.Thread) {
			q.Enq(tt, 7)
			q.Deq(tt)
		}
		a := root.Spawn("a", body)
		bb := root.Spawn("b", body)
		root.Join(a)
		root.Join(bb)
		q.Deq(root)
	}
	u := runProgLeg(b.Spec(), checker.Config{}, prog)
	sym := runProgLeg(b.Spec(), checker.Config{Reduce: checker.ReduceAll()}, prog)
	nosym := runProgLeg(b.Spec(), checker.Config{Reduce: checker.ReduceSet{RF: true, Spinloop: true}}, prog)

	behaviorEqual(t, "symmetric-twins/no-symmetry", u, nosym)
	failureKindsEqual(t, "symmetric-twins/no-symmetry", u.res, nosym.res)

	// With symmetry on: no invented behaviors, and every unreduced
	// behavior lost must have a thread-renamed representative kept — we
	// check the weaker, structural half (strict subset + prunes fired);
	// the renaming bijection itself is what canonical ids implement.
	_, onlyR, _ := setDiff(u.behaviors, sym.behaviors)
	if len(onlyR) > 0 {
		t.Errorf("symmetric-twins: symmetry invented %d behaviors", len(onlyR))
	}
	if sym.res.Stats.SymmetryPrunes == 0 {
		t.Error("symmetric-twins: expected symmetry prunes on identical-closure threads, got none")
	}
	if len(sym.behaviors) >= len(u.behaviors) {
		t.Errorf("symmetric-twins: expected a strict behavior-set subset under symmetry, got %d vs %d",
			len(sym.behaviors), len(u.behaviors))
	}
	failureKindsEqual(t, "symmetric-twins", u.res, sym.res)
}
