package harness

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"repro/internal/checker"
	"repro/internal/core"
)

// TestFig7AllBenchmarksClean: every benchmark's primary workload explores
// exhaustively with zero failures and a nonzero feasible count — the
// precondition for the Figure 7 numbers to mean anything.
func TestFig7AllBenchmarksClean(t *testing.T) {
	for _, b := range Benchmarks() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			row := b.RunFig7(Options{})
			if row.Executions == 0 || row.Feasible == 0 {
				t.Fatalf("%s explored nothing: %+v", b.Name, row)
			}
			if row.Executions != row.Feasible+row.Pruned {
				t.Errorf("%s: executions=%d != feasible=%d + pruned=%d (clean runs have no failures)",
					b.Name, row.Executions, row.Feasible, row.Pruned)
			}
			if got := row.Stats.PrunedSleepSet + row.Stats.PrunedFairness + row.Stats.PrunedStepBound; got != row.Pruned {
				t.Errorf("%s: prune-reason split %d does not sum to Pruned %d", b.Name, got, row.Pruned)
			}
			t.Logf("%s: executions=%d feasible=%d elapsed=%v explore=%v spec=%v (paper %d/%d/%ss)",
				b.Name, row.Executions, row.Feasible, row.Elapsed,
				row.Stats.ExploreTime, row.Stats.SpecTime,
				row.PaperExecutions, row.PaperFeasible, row.PaperTime)
		})
	}
}

// TestFig8DetectionRates: the measured detection must match the expected
// shape — every site not in the benchmark's UndetectableSites list is
// detected, and the overall rate stays high (paper: 93%).
func TestFig8DetectionRates(t *testing.T) {
	totalInj, totalDet := 0, 0
	for _, b := range Benchmarks() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			row := b.RunFig8(Options{})
			totalInj += row.Injections
			totalDet += row.Detected
			t.Logf("%s: %d/%d detected (builtin %d, admissibility %d, assertion %d; paper %d@%d%%)",
				b.Name, row.Detected, row.Injections,
				row.Builtin, row.Admissibility, row.Assertion,
				b.PaperInjections, b.PaperRatePercent)
			for _, m := range row.Missed {
				site := strings.SplitN(m, ":", 2)[0]
				if !b.UndetectableSites[site] {
					t.Errorf("%s: unexpected missed injection %q", b.Name, m)
				}
			}
		})
	}
	if totalInj == 0 {
		t.Fatal("no injections ran")
	}
	rate := totalDet * 100 / totalInj
	t.Logf("overall: %d/%d detected (%d%%; paper 93%%)", totalDet, totalInj, rate)
	if rate < 70 {
		t.Errorf("overall detection rate %d%% too low (paper: 93%%)", rate)
	}
}

// TestKnownBugsAllDetected: the three §6.4.1 bugs (in both Chase-Lev
// guises) are detected.
func TestKnownBugsAllDetected(t *testing.T) {
	for _, r := range RunKnownBugs() {
		if !r.Detected {
			t.Errorf("known bug not detected: %s", r.Name)
		} else {
			t.Logf("%s: %s", r.Name, r.Channel)
		}
	}
}

// TestOverlyStrongCAS: the §6.4.3 relaxation produces zero violations
// over an exhaustive exploration.
func TestOverlyStrongCAS(t *testing.T) {
	r := RunOverlyStrong()
	if r.Violations != 0 {
		t.Errorf("overly strong CAS relaxation flagged %d violations", r.Violations)
	}
	if r.Feasible == 0 {
		t.Error("no feasible executions explored")
	}
	t.Logf("overly-strong experiment: %d executions, %d feasible, %d violations",
		r.Executions, r.Feasible, r.Violations)
}

// TestSpecStats: the specification-size statistics are in the paper's
// ballpark (27 methods across 10 benchmarks, a handful of admissibility
// rules).
func TestSpecStats(t *testing.T) {
	stats := RunSpecStats()
	if len(stats) != 10 {
		t.Fatalf("expected 10 benchmarks, got %d", len(stats))
	}
	methods, rules := 0, 0
	for _, s := range stats {
		methods += s.Methods
		rules += s.AdmitRules
	}
	if methods < 20 || methods > 40 {
		t.Errorf("total methods = %d, expected ~27 (paper)", methods)
	}
	if rules == 0 {
		t.Error("no admissibility rules found")
	}
	t.Logf("\n%s", FormatSpecStats(stats))
}

// TestFormatters: the table renderers produce non-empty output with the
// right headers.
func TestFormatters(t *testing.T) {
	f7 := FormatFig7([]Fig7Row{{Name: "X", Executions: 1, Feasible: 1}})
	if !strings.Contains(f7, "# Executions") || !strings.Contains(f7, "X") {
		t.Errorf("bad Figure 7 table:\n%s", f7)
	}
	f8 := FormatFig8([]Fig8Row{{Name: "X", Injections: 2, Builtin: 1, Detected: 1, Missed: []string{"s: a -> b"}}})
	if !strings.Contains(f8, "Admissibility") || !strings.Contains(f8, "missed") {
		t.Errorf("bad Figure 8 table:\n%s", f8)
	}
	kb := FormatKnownBugs([]KnownBugResult{{Name: "B", Detected: true, Channel: "assertion"}})
	if !strings.Contains(kb, "detected via assertion") {
		t.Errorf("bad known-bugs table:\n%s", kb)
	}
}

// TestSnapshotJSON: the bench-snapshot blob is valid JSON, carries the
// schema marker, and round-trips the rows (the contract the CI
// bench-snapshot artifact relies on).
func TestSnapshotJSON(t *testing.T) {
	fig7 := []Fig7Row{{Name: "X", Executions: 5, Feasible: 4, Pruned: 1,
		Stats: checker.Stats{PrunedSleepSet: 1, TotalSteps: 40, SpecCacheHits: 7}}}
	fig8 := []Fig8Row{{Name: "X", Injections: 3, Detected: 2, Builtin: 2}}
	blob, err := SnapshotJSON(fig7, fig8)
	if err != nil {
		t.Fatal(err)
	}
	var snap BenchSnapshot
	if err := json.Unmarshal(blob, &snap); err != nil {
		t.Fatalf("snapshot does not round-trip: %v\n%s", err, blob)
	}
	if snap.Schema != SnapshotSchema {
		t.Errorf("schema = %q, want %q", snap.Schema, SnapshotSchema)
	}
	if len(snap.Fig7) != 1 || snap.Fig7[0].Stats.TotalSteps != 40 {
		t.Errorf("fig7 rows did not survive the round-trip: %+v", snap.Fig7)
	}
	if len(snap.Fig8) != 1 || snap.Fig8[0].Detected != 2 {
		t.Errorf("fig8 rows did not survive the round-trip: %+v", snap.Fig8)
	}
	if snap.Fig7[0].Stats.SpecCacheHits != 7 {
		t.Errorf("spec-cache counters did not survive the round-trip: %+v", snap.Fig7[0].Stats)
	}
}

// TestReadSnapshotBackCompat: ReadSnapshot accepts both the current v2
// schema and archived v1 blobs (whose Stats lack the spec_cache_*
// fields and must decode as zero / render as n/a), and rejects unknown
// schemas.
func TestReadSnapshotBackCompat(t *testing.T) {
	v1 := []byte(`{
	  "schema": "cdsspec-bench/v1",
	  "fig7": [{"name": "X", "executions": 5, "feasible": 4,
	            "stats": {"histories": 9, "total_steps": 40}}]
	}`)
	snap, err := ReadSnapshot(v1)
	if err != nil {
		t.Fatalf("v1 snapshot rejected: %v", err)
	}
	if snap.Schema != SnapshotSchemaV1 || len(snap.Fig7) != 1 {
		t.Fatalf("v1 snapshot misread: %+v", snap)
	}
	r := snap.Fig7[0]
	if r.Stats.Histories != 9 || r.Stats.SpecCacheHits != 0 || r.Stats.SpecCacheMisses != 0 {
		t.Errorf("v1 stats misread: %+v", r.Stats)
	}
	if got := SpecCacheHitRate(&r.Stats); got != "n/a" {
		t.Errorf("v1 hit rate = %q, want n/a", got)
	}

	blob, err := SnapshotJSON([]Fig7Row{{Name: "X", Stats: checker.Stats{SpecCacheHits: 3, SpecCacheMisses: 1}}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	snap, err = ReadSnapshot(blob)
	if err != nil {
		t.Fatalf("v2 snapshot rejected: %v", err)
	}
	if got := SpecCacheHitRate(&snap.Fig7[0].Stats); got != "75%" {
		t.Errorf("v2 hit rate = %q, want 75%%", got)
	}

	if _, err := ReadSnapshot([]byte(`{"schema": "cdsspec-bench/v99"}`)); err == nil {
		t.Error("unknown schema accepted")
	}
	if _, err := ReadSnapshot([]byte(`not json`)); err == nil {
		t.Error("malformed blob accepted")
	}
}

// TestDiffSnapshots: the CI diff renderer compares rows by name, flags
// execution-count drift, and renders v1 sides as n/a hit rate.
func TestDiffSnapshots(t *testing.T) {
	old := &BenchSnapshot{Schema: SnapshotSchemaV1, Fig7: []Fig7Row{
		{Name: "A", Executions: 10},
		{Name: "Gone", Executions: 3},
	}}
	new_ := &BenchSnapshot{Schema: SnapshotSchema, Fig7: []Fig7Row{
		{Name: "A", Executions: 12, Stats: checker.Stats{SpecCacheHits: 9, SpecCacheMisses: 1}},
		{Name: "B", Executions: 4, Stats: checker.Stats{SpecCacheHits: 1, SpecCacheMisses: 1}},
	}}
	out := DiffSnapshots(old, new_)
	for _, want := range []string{"EXECUTION COUNT CHANGED", "n/a", "90%", "(new row)", "(row removed)"} {
		if !strings.Contains(out, want) {
			t.Errorf("diff output missing %q:\n%s", want, out)
		}
	}
	same := DiffSnapshots(new_, new_)
	if strings.Contains(same, "CHANGED") || strings.Contains(same, "removed") {
		t.Errorf("self-diff should be quiet:\n%s", same)
	}
}

// TestFig7CacheColumn: the rendered Figure 7 table carries the cache
// hit-rate column.
func TestFig7CacheColumn(t *testing.T) {
	rows := []Fig7Row{{Name: "X", Stats: checker.Stats{SpecCacheHits: 3, SpecCacheMisses: 1}}}
	out := FormatFig7(rows)
	if !strings.Contains(out, "Cache") || !strings.Contains(out, "75%") {
		t.Errorf("Figure 7 table missing cache column:\n%s", out)
	}
}

// TestDisableSpecCacheOption: the harness-level switch reaches the spec.
func TestDisableSpecCacheOption(t *testing.T) {
	b := BenchmarkByName("M&S Queue")
	if b == nil {
		t.Fatal("M&S Queue benchmark missing")
	}
	if !b.spec(Options{DisableSpecCache: true}).DisableCheckCache {
		t.Error("DisableSpecCache option not applied to the spec")
	}
	if b.spec(Options{}).DisableCheckCache {
		t.Error("cache disabled by default")
	}
}

// TestFig8ParallelDeterminism: a worker-pool Figure 8 sweep produces a
// row identical to the sequential sweep (trials are independent and the
// fold is in weakening order).
func TestFig8ParallelDeterminism(t *testing.T) {
	b := BenchmarkByName("SPSC Queue")
	if b == nil {
		t.Fatal("SPSC Queue benchmark missing")
	}
	seq := b.RunFig8(Options{Workers: 1})
	par := b.RunFig8(Options{Workers: 4})
	// The Stats timing fields are wall-clock measurements and differ even
	// between two sequential runs; everything else must be bit-identical.
	seqCmp, parCmp := seq, par
	seqCmp.Stats = seqCmp.Stats.WithoutTimings()
	parCmp.Stats = parCmp.Stats.WithoutTimings()
	if fmt.Sprintf("%+v", seqCmp) != fmt.Sprintf("%+v", parCmp) {
		t.Errorf("parallel Fig8 row differs:\n  seq: %+v\n  par: %+v", seqCmp, parCmp)
	}
}

// TestMSQueueParallelDFSDeterminism: exhaustive checker-level parallel
// exploration of the M&S queue workload matches the sequential run
// exactly (the ISSUE's determinism suite anchor).
func TestMSQueueParallelDFSDeterminism(t *testing.T) {
	b := BenchmarkByName("M&S Queue")
	if b == nil {
		t.Fatal("M&S Queue benchmark missing")
	}
	prog := b.Progs(b.Orders())[0]
	seq := core.Explore(b.Spec(), checker.Config{}, prog)
	par := core.Explore(b.Spec(), checker.Config{Parallelism: 4}, prog)
	if seq.Executions != par.Executions || seq.Feasible != par.Feasible ||
		seq.Pruned != par.Pruned || seq.Exhausted != par.Exhausted ||
		seq.FailureCount != par.FailureCount {
		t.Errorf("parallel exploration differs:\n  seq: %v\n  par: %v", seq, par)
	}
	// Stats must be bit-identical too, except the wall-clock timings
	// (Elapsed and the Stats.ExploreTime/SpecTime split), which are
	// explicitly exempt: parallel workers accumulate them concurrently.
	if seq.Stats.WithoutTimings() != par.Stats.WithoutTimings() {
		t.Errorf("parallel stats differ:\n  seq: %+v\n  par: %+v",
			seq.Stats.WithoutTimings(), par.Stats.WithoutTimings())
	}
	if seq.Stats.Histories == 0 {
		t.Error("spec-layer history count missing from stats")
	}
	// The WithoutTimings equality above already covers the spec-cache
	// counters; additionally require that the cache actually engaged, so
	// the bit-identity claim is about a nontrivial hit pattern.
	if seq.Stats.SpecCacheHits == 0 || seq.Stats.SpecCacheMisses == 0 {
		t.Errorf("spec cache idle on the M&S queue workload: hits=%d misses=%d",
			seq.Stats.SpecCacheHits, seq.Stats.SpecCacheMisses)
	}
	if seq.Elapsed <= 0 || par.Elapsed <= 0 || seq.Stats.ExploreTime <= 0 || seq.Stats.SpecTime <= 0 {
		t.Errorf("timing fields should be positive: seq elapsed=%v explore=%v spec=%v, par elapsed=%v",
			seq.Elapsed, seq.Stats.ExploreTime, seq.Stats.SpecTime, par.Elapsed)
	}
}

// TestRatePercentZeroInjections: a row with no injections reports 0 (not
// 100) and renders as n/a.
func TestRatePercentZeroInjections(t *testing.T) {
	r := Fig8Row{Name: "empty"}
	if got := r.RatePercent(); got != 0 {
		t.Errorf("RatePercent() = %d for zero injections, want 0", got)
	}
	out := FormatFig8([]Fig8Row{r})
	if !strings.Contains(out, "n/a") {
		t.Errorf("FormatFig8 should render n/a for zero injections:\n%s", out)
	}
}
