// Package harness drives the paper's evaluation (§6): Figure 7 (benchmark
// exploration statistics), Figure 8 (bug-injection detection), the known
// bugs of §6.4.1, the overly strong parameter of §6.4.3, and the
// ease-of-use statistics of §6.2. Each experiment is reproducible from
// the cdsspec CLI and from the repository-root benchmarks.
package harness

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/checker"
	"repro/internal/core"
	"repro/internal/memmodel"
)

// Benchmark bundles one paper benchmark: its spec, parameterized orders,
// unit tests, and the numbers the paper reports for it.
type Benchmark struct {
	// Name matches the Figure 7 row.
	Name string
	// Spec builds the CDSSpec specification.
	Spec func() *core.Spec
	// Orders returns the correct memory-order table.
	Orders func() *memmodel.OrderTable
	// Progs returns the unit tests for the given orders; Progs()[0] is
	// the primary workload used for Figure 7.
	Progs func(ord *memmodel.OrderTable) []func(*checker.Thread)
	// UndetectableSites lists sites whose one-step weakening is known to
	// be unobservable — either an overly strong parameter (the paper's
	// §6.4.3 phenomenon) or a modification-order anomaly our model
	// excludes (DESIGN.md limitation 2).
	UndetectableSites map[string]bool

	// Paper numbers (Figures 7 and 8).
	PaperExecutions, PaperFeasible     int
	PaperTime                          string
	PaperInjections, PaperBuiltin      int
	PaperAdmissibility, PaperAssertion int
	PaperRatePercent                   int
}

// Fig7Row is one measured row of Figure 7.
type Fig7Row struct {
	Name                 string
	Executions, Feasible int
	Elapsed              time.Duration
	PaperExecutions      int
	PaperFeasible        int
	PaperTime            string
}

// RunFig7 explores the primary unit test exhaustively and returns the
// measured row.
func (b *Benchmark) RunFig7() Fig7Row {
	res := core.Explore(b.Spec(), checker.Config{}, b.Progs(b.Orders())[0])
	return Fig7Row{
		Name:            b.Name,
		Executions:      res.Executions,
		Feasible:        res.Feasible,
		Elapsed:         res.Elapsed,
		PaperExecutions: b.PaperExecutions,
		PaperFeasible:   b.PaperFeasible,
		PaperTime:       b.PaperTime,
	}
}

// Fig8Row is one measured row of Figure 8.
type Fig8Row struct {
	Name                               string
	Injections                         int
	Builtin, Admissibility, Assertion  int
	Detected                           int
	Missed                             []string
	PaperInjections, PaperBuiltin      int
	PaperAdmissibility, PaperAssertion int
	PaperRatePercent                   int
}

// RatePercent returns the measured detection rate.
func (r Fig8Row) RatePercent() int {
	if r.Injections == 0 {
		return 100
	}
	return r.Detected * 100 / r.Injections
}

// RunFig8 runs the §6.4.2 injection experiment: every one-step weakening
// of every exercised site, classified by the first detection channel in
// the paper's priority order (built-in, then admissibility, then
// assertion).
func (b *Benchmark) RunFig8() Fig8Row {
	row := Fig8Row{
		Name:               b.Name,
		PaperInjections:    b.PaperInjections,
		PaperBuiltin:       b.PaperBuiltin,
		PaperAdmissibility: b.PaperAdmissibility,
		PaperAssertion:     b.PaperAssertion,
		PaperRatePercent:   b.PaperRatePercent,
	}
	defaults := b.Orders()
	for _, weak := range defaults.Weakenings() {
		row.Injections++
		var hit *checker.Failure
		for _, prog := range b.Progs(weak) {
			res := core.Explore(b.Spec(), checker.Config{StopAtFirst: true}, prog)
			if f := res.FirstFailure(); f != nil {
				hit = f
				break
			}
		}
		switch {
		case hit == nil:
			row.Missed = append(row.Missed, describeWeakening(defaults, weak))
		case hit.Kind.BuiltIn():
			row.Builtin++
			row.Detected++
		case hit.Kind == checker.FailAdmissibility:
			row.Admissibility++
			row.Detected++
		default:
			row.Assertion++
			row.Detected++
		}
	}
	return row
}

func describeWeakening(defaults, weak *memmodel.OrderTable) string {
	for _, s := range defaults.Sites() {
		if weak.Get(s.Name) != s.Default {
			return fmt.Sprintf("%s: %s -> %s", s.Name, s.Default, weak.Get(s.Name))
		}
	}
	return "?"
}

// FormatFig7 renders the Figure 7 table.
func FormatFig7(rows []Fig7Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s %12s %10s %10s   %s\n", "Benchmark", "# Executions", "# Feasible", "Time", "(paper: exec/feasible/time)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-18s %12d %10d %10s   (%d / %d / %ss)\n",
			r.Name, r.Executions, r.Feasible, r.Elapsed.Round(time.Millisecond),
			r.PaperExecutions, r.PaperFeasible, r.PaperTime)
	}
	return b.String()
}

// FormatFig8 renders the Figure 8 table.
func FormatFig8(rows []Fig8Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s %6s %9s %14s %11s %6s   %s\n",
		"Benchmark", "# Inj", "# Builtin", "# Admissibility", "# Assertion", "Rate", "(paper: inj/bi/adm/asr/rate)")
	ti, td := 0, 0
	pi, pd := 0, 0
	for _, r := range rows {
		fmt.Fprintf(&b, "%-18s %6d %9d %14d %11d %5d%%   (%d/%d/%d/%d/%d%%)\n",
			r.Name, r.Injections, r.Builtin, r.Admissibility, r.Assertion, r.RatePercent(),
			r.PaperInjections, r.PaperBuiltin, r.PaperAdmissibility, r.PaperAssertion, r.PaperRatePercent)
		for _, m := range r.Missed {
			fmt.Fprintf(&b, "%-18s   missed: %s\n", "", m)
		}
		ti += r.Injections
		td += r.Detected
		pi += r.PaperInjections
		pd += r.PaperInjections * r.PaperRatePercent / 100
	}
	fmt.Fprintf(&b, "%-18s %6d  detected %d (%d%%)   paper: %d injections, %d detected (93%%)\n",
		"Total", ti, td, td*100/max(ti, 1), pi, pd)
	return b.String()
}
