// Package harness drives the paper's evaluation (§6): Figure 7 (benchmark
// exploration statistics), Figure 8 (bug-injection detection), the known
// bugs of §6.4.1, the overly strong parameter of §6.4.3, and the
// ease-of-use statistics of §6.2. Each experiment is reproducible from
// the cdsspec CLI and from the repository-root benchmarks.
package harness

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/checker"
	"repro/internal/checker/model"
	"repro/internal/core"
	"repro/internal/fuzz"
	"repro/internal/memmodel"
)

// Options configures how the harness schedules its independent work
// items — Figure 8 weakening trials and Figure 7 benchmark rows.
type Options struct {
	// Workers bounds the worker pool. 0 means runtime.GOMAXPROCS(0).
	Workers int
	// Parallelism sets checker.Config.Parallelism for every exploration
	// the harness runs: 0 or 1 explores sequentially, >1 runs the
	// work-stealing engine with that many workers. Orthogonal to Workers,
	// which parallelizes across independent work items (Figure 8 trials,
	// Figure 7 rows) rather than within one exploration.
	Parallelism int
	// Model selects the consistency model for every exploration the
	// harness runs (zero value = c11). The paper's numbers are C/C++11
	// numbers; the other models exist for behavior diffing (modeldiff).
	Model model.ID
	// Reduce selects the execution-equivalence reductions
	// (checker.Config.Reduce) for every exploration the harness runs.
	// Zero value = no reduction. Reduction preserves the behavior set —
	// spec fingerprints and failure kinds — while cutting the executions
	// explored; the reducediff comparison pins that claim per benchmark.
	Reduce checker.ReduceSet
	// Progress, when set, receives periodic exploration snapshots labeled
	// with the benchmark name (the cdsspec -progress flag feeds on it).
	// Rows may explore concurrently, so the callback must be safe for
	// concurrent use.
	Progress func(name string, p checker.Progress)
	// ProgressInterval is the snapshot period (default 1s).
	ProgressInterval time.Duration
	// DisableSpecCache turns off the per-shard spec-check memoization for
	// every exploration the harness runs (Spec.DisableCheckCache), for
	// cache-on/off ablation runs. Results must be identical either way;
	// only timings and the spec_cache_* counters change.
	DisableSpecCache bool
	// DisableKernelOpts turns off every memory-model kernel hot-path
	// optimization (visibility-floor caching, execution pooling, load
	// compaction, replay pinning) for every exploration the harness
	// runs. Like DisableSpecCache, results must be bit-identical either
	// way; the switch exists for ablation runs and the kernelbench
	// before/after comparison.
	DisableKernelOpts bool
	// CPUProfile and MemProfile, when non-empty, are file paths the CLI
	// writes pprof profiles to around the invoked experiment (see
	// StartProfiles).
	CPUProfile, MemProfile string
}

// StartProfiles starts CPU profiling when CPUProfile is set and returns
// a stop function that finishes the CPU profile and writes the heap
// profile when MemProfile is set. The stop function is always non-nil
// and safe to call once.
func (o Options) StartProfiles() (stop func() error, err error) {
	var cpuFile *os.File
	if o.CPUProfile != "" {
		cpuFile, err = os.Create(o.CPUProfile)
		if err != nil {
			return nil, fmt.Errorf("creating cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("starting cpu profile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
		}
		if o.MemProfile != "" {
			f, err := os.Create(o.MemProfile)
			if err != nil {
				return fmt.Errorf("creating mem profile: %w", err)
			}
			defer f.Close()
			runtime.GC() // flush recently freed objects out of the heap profile
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("writing mem profile: %w", err)
			}
		}
		return nil
	}, nil
}

// spec builds the benchmark's spec with the harness-level cache switch
// applied.
func (b *Benchmark) spec(opts Options) *core.Spec {
	s := b.Spec()
	if opts.DisableSpecCache {
		s.DisableCheckCache = true
	}
	return s
}

func (o Options) workerCount() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// ExplorerConfig builds the checker configuration for one benchmark run,
// wiring the name-labeled progress callback when requested. The cdsspec
// CLI uses it for one-off explorations that bypass the Run* helpers.
func (o Options) ExplorerConfig(name string) checker.Config {
	cfg := checker.Config{ProgressInterval: o.ProgressInterval, Parallelism: o.Parallelism, Model: o.Model, Reduce: o.Reduce}
	if o.Progress != nil {
		cfg.Progress = func(p checker.Progress) { o.Progress(name, p) }
	}
	if o.DisableKernelOpts {
		cfg.DisableFloorCache = true
		cfg.DisablePooling = true
		cfg.DisableLoadCompaction = true
		cfg.DisableReplayPinning = true
	}
	return cfg
}

// forEach runs f(0..n-1) on at most workers goroutines and waits for all
// of them. Callers write results into index-addressed slots, so the
// output order is deterministic regardless of scheduling.
func forEach(workers, n int, f func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				f(i)
			}
		}()
	}
	wg.Wait()
}

// Benchmark bundles one paper benchmark: its spec, parameterized orders,
// unit tests, and the numbers the paper reports for it.
type Benchmark struct {
	// Name matches the Figure 7 row.
	Name string
	// Spec builds the CDSSpec specification.
	Spec func() *core.Spec
	// Orders returns the correct memory-order table.
	Orders func() *memmodel.OrderTable
	// Progs returns the unit tests for the given orders; Progs()[0] is
	// the primary workload used for Figure 7.
	Progs func(ord *memmodel.OrderTable) []func(*checker.Thread)
	// UndetectableSites lists sites whose one-step weakening is known to
	// be unobservable — either an overly strong parameter (the paper's
	// §6.4.3 phenomenon) or a modification-order anomaly our model
	// excludes (DESIGN.md limitation 2).
	UndetectableSites map[string]bool
	// Ops returns the structure's fuzzable client-operation registry,
	// from which the generative campaigns build programs.
	Ops func() *fuzz.Registry

	// Paper numbers (Figures 7 and 8).
	PaperExecutions, PaperFeasible     int
	PaperTime                          string
	PaperInjections, PaperBuiltin      int
	PaperAdmissibility, PaperAssertion int
	PaperRatePercent                   int
}

// FuzzTarget bundles the benchmark's spec, orders, and op registry into
// the fuzz package's target form, so campaigns check generated programs
// against the same specification the hand-written unit tests use.
func (b *Benchmark) FuzzTarget() *fuzz.Target {
	return &fuzz.Target{
		Name:     b.Name,
		Spec:     b.Spec,
		Orders:   b.Orders,
		Registry: b.Ops(),
	}
}

// Fig7Row is one measured row of Figure 7, with the observability extras
// (prune split, branch counts, phase timings) carried in Stats.
type Fig7Row struct {
	Name            string        `json:"name"`
	Executions      int           `json:"executions"`
	Feasible        int           `json:"feasible"`
	Pruned          int           `json:"pruned"`
	Elapsed         time.Duration `json:"elapsed_ns"`
	Stats           checker.Stats `json:"stats"`
	PaperExecutions int           `json:"paper_executions"`
	PaperFeasible   int           `json:"paper_feasible"`
	PaperTime       string        `json:"paper_time_s"`
}

// RunFig7 explores the primary unit test exhaustively and returns the
// measured row.
func (b *Benchmark) RunFig7(opts Options) Fig7Row {
	res := core.Explore(b.spec(opts), opts.ExplorerConfig(b.Name), b.Progs(b.Orders())[0])
	return Fig7Row{
		Name:            b.Name,
		Executions:      res.Executions,
		Feasible:        res.Feasible,
		Pruned:          res.Pruned,
		Elapsed:         res.Elapsed,
		Stats:           res.Stats,
		PaperExecutions: b.PaperExecutions,
		PaperFeasible:   b.PaperFeasible,
		PaperTime:       b.PaperTime,
	}
}

// Fig8Row is one measured row of Figure 8. Executions and Stats aggregate
// over every weakening trial of the row.
type Fig8Row struct {
	Name               string        `json:"name"`
	Injections         int           `json:"injections"`
	Builtin            int           `json:"builtin"`
	Admissibility      int           `json:"admissibility"`
	Assertion          int           `json:"assertion"`
	Detected           int           `json:"detected"`
	Missed             []string      `json:"missed,omitempty"`
	Executions         int           `json:"executions"`
	Stats              checker.Stats `json:"stats"`
	PaperInjections    int           `json:"paper_injections"`
	PaperBuiltin       int           `json:"paper_builtin"`
	PaperAdmissibility int           `json:"paper_admissibility"`
	PaperAssertion     int           `json:"paper_assertion"`
	PaperRatePercent   int           `json:"paper_rate_percent"`
}

// RatePercent returns the measured detection rate, or 0 when the row had
// no injections (rendered as "n/a" by FormatFig8).
func (r Fig8Row) RatePercent() int {
	if r.Injections == 0 {
		return 0
	}
	return r.Detected * 100 / r.Injections
}

// RunFig8 runs the §6.4.2 injection experiment: every one-step weakening
// of every exercised site, classified by the first detection channel in
// the paper's priority order (built-in, then admissibility, then
// assertion). The trials are independent and run on opts' worker pool;
// the row is folded in weakening order, so Missed ordering and every
// count are deterministic.
func (b *Benchmark) RunFig8(opts Options) Fig8Row {
	row := Fig8Row{
		Name:               b.Name,
		PaperInjections:    b.PaperInjections,
		PaperBuiltin:       b.PaperBuiltin,
		PaperAdmissibility: b.PaperAdmissibility,
		PaperAssertion:     b.PaperAssertion,
		PaperRatePercent:   b.PaperRatePercent,
	}
	defaults := b.Orders()
	weaks := defaults.Weakenings()
	hits := make([]*checker.Failure, len(weaks))
	trialExecs := make([]int, len(weaks))
	trialStats := make([]checker.Stats, len(weaks))
	forEach(opts.workerCount(), len(weaks), func(i int) {
		for _, prog := range b.Progs(weaks[i]) {
			cfg := opts.ExplorerConfig(b.Name)
			cfg.StopAtFirst = true
			res := core.Explore(b.spec(opts), cfg, prog)
			trialExecs[i] += res.Executions
			trialStats[i].Merge(&res.Stats)
			if f := res.FirstFailure(); f != nil {
				hits[i] = f
				break
			}
		}
	})
	for i, weak := range weaks {
		row.Injections++
		row.Executions += trialExecs[i]
		row.Stats.Merge(&trialStats[i])
		hit := hits[i]
		if hit == nil {
			row.Missed = append(row.Missed, describeWeakening(defaults, weak))
			continue
		}
		// Classify by the kind's Figure 8 channel rather than ad-hoc kind
		// tests, so a newly added kind cannot land in the wrong column.
		switch hit.Kind.Channel() {
		case "builtin":
			row.Builtin++
			row.Detected++
		case "admissibility":
			row.Admissibility++
			row.Detected++
		case "assertion":
			row.Assertion++
			row.Detected++
		default:
			// "none": a prune-only kind (e.g. step-bound) leaked out as a
			// failure — a checker accounting bug. Count it as a miss so
			// the detection rate never benefits from it.
			row.Missed = append(row.Missed, fmt.Sprintf("%s (non-detection failure %s)",
				describeWeakening(defaults, weak), hit.Kind))
		}
	}
	return row
}

// RunAllFig7 measures every Figure 7 row, exploring the independent rows
// on opts' worker pool; the returned slice is in Benchmarks() order.
func RunAllFig7(opts Options) []Fig7Row {
	bs := Benchmarks()
	rows := make([]Fig7Row, len(bs))
	forEach(opts.workerCount(), len(bs), func(i int) {
		rows[i] = bs[i].RunFig7(opts)
	})
	return rows
}

// RunAllFig8 measures every Figure 8 row in Benchmarks() order. Rows run
// one at a time; each row's weakening trials use opts' worker pool.
func RunAllFig8(opts Options) []Fig8Row {
	bs := Benchmarks()
	rows := make([]Fig8Row, len(bs))
	for i, b := range bs {
		rows[i] = b.RunFig8(opts)
	}
	return rows
}

func describeWeakening(defaults, weak *memmodel.OrderTable) string {
	for _, s := range defaults.Sites() {
		if weak.Get(s.Name) != s.Default {
			return fmt.Sprintf("%s: %s -> %s", s.Name, s.Default, weak.Get(s.Name))
		}
	}
	return "?"
}

// SpecCacheHitRate returns the spec-cache hit rate of a Stats record as a
// percentage string, or "n/a" when no cached checking happened — caching
// disabled, no feasible executions, or a pre-cache (schema v1) snapshot
// whose Stats lack the counters entirely.
func SpecCacheHitRate(s *checker.Stats) string {
	total := s.SpecCacheHits + s.SpecCacheMisses
	if total == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%d%%", s.SpecCacheHits*100/total)
}

// FormatFig7 renders the Figure 7 table with the observability extras:
// the prune split folded into one column, rf-branch decision counts, the
// exploration vs spec-checking time split, and the spec-cache hit rate.
func FormatFig7(rows []Fig7Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s %12s %10s %8s %8s %10s %9s %9s %6s   %s\n",
		"Benchmark", "# Executions", "# Feasible", "# Pruned", "RF-br", "Time", "Explore", "Spec", "Cache",
		"(paper: exec/feasible/time)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-18s %12d %10d %8d %8d %10s %9s %9s %6s   (%d / %d / %ss)\n",
			r.Name, r.Executions, r.Feasible, r.Pruned, r.Stats.RFBranchPoints,
			r.Elapsed.Round(time.Millisecond),
			r.Stats.ExploreTime.Round(time.Millisecond), r.Stats.SpecTime.Round(time.Millisecond),
			SpecCacheHitRate(&r.Stats),
			r.PaperExecutions, r.PaperFeasible, r.PaperTime)
	}
	return b.String()
}

// FormatFig8 renders the Figure 8 table.
func FormatFig8(rows []Fig8Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s %6s %9s %14s %11s %6s   %s\n",
		"Benchmark", "# Inj", "# Builtin", "# Admissibility", "# Assertion", "Rate", "(paper: inj/bi/adm/asr/rate)")
	ti, td := 0, 0
	pi, pd := 0, 0
	for _, r := range rows {
		rate := "n/a"
		if r.Injections > 0 {
			rate = fmt.Sprintf("%d%%", r.RatePercent())
		}
		fmt.Fprintf(&b, "%-18s %6d %9d %14d %11d %6s   (%d/%d/%d/%d/%d%%)\n",
			r.Name, r.Injections, r.Builtin, r.Admissibility, r.Assertion, rate,
			r.PaperInjections, r.PaperBuiltin, r.PaperAdmissibility, r.PaperAssertion, r.PaperRatePercent)
		for _, m := range r.Missed {
			fmt.Fprintf(&b, "%-18s   missed: %s\n", "", m)
		}
		ti += r.Injections
		td += r.Detected
		pi += r.PaperInjections
		pd += r.PaperInjections * r.PaperRatePercent / 100
	}
	fmt.Fprintf(&b, "%-18s %6d  detected %d (%d%%)   paper: %d injections, %d detected (93%%)\n",
		"Total", ti, td, td*100/max(ti, 1), pi, pd)
	return b.String()
}

// BenchSnapshot is the machine-readable benchmark record the CI
// bench-snapshot job uploads as BENCH_<date>.json, seeding the repo's
// performance trajectory. The date lives in the artifact filename, not
// the payload, so two runs of the same tree produce comparable blobs.
type BenchSnapshot struct {
	// Schema versions the blob layout.
	Schema string `json:"schema"`
	// Model names the consistency model the rows were measured under.
	// Absent in blobs written before model identity existed, which were
	// necessarily c11 — a diff of rows across different models is
	// meaningless (the explored spaces differ), so DiffSnapshots warns.
	Model string         `json:"model,omitempty"`
	Fig7  []Fig7Row      `json:"fig7,omitempty"`
	Fig8  []Fig8Row      `json:"fig8,omitempty"`
	Fuzz  []fuzz.Summary `json:"fuzz,omitempty"`
}

// SnapshotSchema identifies the current BenchSnapshot layout. v3 added
// the optional fuzz-campaign summaries; v2 added the spec_cache_*
// counters to every Stats record. Both changes are additive, so older
// blobs stay readable (missing fields decode as zero and render as
// "n/a").
const SnapshotSchema = "cdsspec-bench/v3"

// SnapshotSchemaV2 is the pre-fuzz layout, still accepted by
// ReadSnapshot so CI can diff against archived artifacts.
const SnapshotSchemaV2 = "cdsspec-bench/v2"

// SnapshotSchemaV1 is the pre-spec-cache layout, still accepted by
// ReadSnapshot so CI can diff against archived artifacts.
const SnapshotSchemaV1 = "cdsspec-bench/v1"

// SnapshotJSON renders the measured rows as an indented JSON snapshot
// under the default (c11) model.
func SnapshotJSON(fig7 []Fig7Row, fig8 []Fig8Row) ([]byte, error) {
	return SnapshotJSONFor(model.Default(), fig7, fig8)
}

// SnapshotJSONFor is SnapshotJSON with the measuring model recorded in
// the blob, so archived artifacts from non-c11 runs are never silently
// diffed against c11 baselines.
func SnapshotJSONFor(id model.ID, fig7 []Fig7Row, fig8 []Fig8Row) ([]byte, error) {
	return json.MarshalIndent(&BenchSnapshot{
		Schema: SnapshotSchema,
		Model:  id.OrDefault().String(),
		Fig7:   fig7,
		Fig8:   fig8,
	}, "", "  ")
}

// ReadSnapshot decodes a BenchSnapshot produced by this or an earlier
// supported schema version, rejecting unknown schemas outright rather
// than misreading them.
func ReadSnapshot(data []byte) (*BenchSnapshot, error) {
	var s BenchSnapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("decoding snapshot: %w", err)
	}
	switch s.Schema {
	case SnapshotSchema, SnapshotSchemaV2, SnapshotSchemaV1:
		return &s, nil
	default:
		return nil, fmt.Errorf("unsupported snapshot schema %q (want %q, %q, or %q)",
			s.Schema, SnapshotSchema, SnapshotSchemaV2, SnapshotSchemaV1)
	}
}

// DiffSnapshots renders a row-by-row comparison of two snapshots' Figure
// 7 measurements: execution counts (which must not drift on exhaustive
// runs), wall clock, and spec-cache hit rate. CI runs it against the
// archived previous artifact so a regression in the cache's
// effectiveness is visible in the job log. Rows present on only one side
// are reported as added/removed.
func DiffSnapshots(prev, curr *BenchSnapshot) string {
	var b strings.Builder
	if pm, cm := model.ID(prev.Model).OrDefault(), model.ID(curr.Model).OrDefault(); pm != cm {
		fmt.Fprintf(&b, "WARNING: snapshots measured under different memory models (%s vs %s); the explored spaces are not comparable\n", pm, cm)
	}
	fmt.Fprintf(&b, "%-18s %14s %14s %8s %8s %7s %7s\n",
		"Benchmark", "execs(old)", "execs(new)", "t(old)", "t(new)", "hit(old)", "hit(new)")
	oldRows := map[string]Fig7Row{}
	for _, r := range prev.Fig7 {
		oldRows[r.Name] = r
	}
	seen := map[string]bool{}
	for _, n := range curr.Fig7 {
		seen[n.Name] = true
		o, ok := oldRows[n.Name]
		if !ok {
			fmt.Fprintf(&b, "%-18s %14s %14d %8s %8s %7s %7s   (new row)\n",
				n.Name, "-", n.Executions, "-", n.Elapsed.Round(time.Millisecond),
				"-", SpecCacheHitRate(&n.Stats))
			continue
		}
		note := ""
		if o.Executions != n.Executions {
			note = "   EXECUTION COUNT CHANGED"
		}
		fmt.Fprintf(&b, "%-18s %14d %14d %8s %8s %7s %7s%s\n",
			n.Name, o.Executions, n.Executions,
			o.Elapsed.Round(time.Millisecond), n.Elapsed.Round(time.Millisecond),
			SpecCacheHitRate(&o.Stats), SpecCacheHitRate(&n.Stats), note)
	}
	for _, o := range prev.Fig7 {
		if !seen[o.Name] {
			fmt.Fprintf(&b, "%-18s %14d %14s   (row removed)\n", o.Name, o.Executions, "-")
		}
	}
	return b.String()
}
