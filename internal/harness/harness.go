// Package harness drives the paper's evaluation (§6): Figure 7 (benchmark
// exploration statistics), Figure 8 (bug-injection detection), the known
// bugs of §6.4.1, the overly strong parameter of §6.4.3, and the
// ease-of-use statistics of §6.2. Each experiment is reproducible from
// the cdsspec CLI and from the repository-root benchmarks.
package harness

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/checker"
	"repro/internal/core"
	"repro/internal/memmodel"
)

// Options configures how the harness schedules its independent work
// items — Figure 8 weakening trials and Figure 7 benchmark rows.
type Options struct {
	// Workers bounds the worker pool. 0 means runtime.GOMAXPROCS(0).
	Workers int
}

func (o Options) workerCount() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// forEach runs f(0..n-1) on at most workers goroutines and waits for all
// of them. Callers write results into index-addressed slots, so the
// output order is deterministic regardless of scheduling.
func forEach(workers, n int, f func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				f(i)
			}
		}()
	}
	wg.Wait()
}

// Benchmark bundles one paper benchmark: its spec, parameterized orders,
// unit tests, and the numbers the paper reports for it.
type Benchmark struct {
	// Name matches the Figure 7 row.
	Name string
	// Spec builds the CDSSpec specification.
	Spec func() *core.Spec
	// Orders returns the correct memory-order table.
	Orders func() *memmodel.OrderTable
	// Progs returns the unit tests for the given orders; Progs()[0] is
	// the primary workload used for Figure 7.
	Progs func(ord *memmodel.OrderTable) []func(*checker.Thread)
	// UndetectableSites lists sites whose one-step weakening is known to
	// be unobservable — either an overly strong parameter (the paper's
	// §6.4.3 phenomenon) or a modification-order anomaly our model
	// excludes (DESIGN.md limitation 2).
	UndetectableSites map[string]bool

	// Paper numbers (Figures 7 and 8).
	PaperExecutions, PaperFeasible     int
	PaperTime                          string
	PaperInjections, PaperBuiltin      int
	PaperAdmissibility, PaperAssertion int
	PaperRatePercent                   int
}

// Fig7Row is one measured row of Figure 7.
type Fig7Row struct {
	Name                 string
	Executions, Feasible int
	Elapsed              time.Duration
	PaperExecutions      int
	PaperFeasible        int
	PaperTime            string
}

// RunFig7 explores the primary unit test exhaustively and returns the
// measured row.
func (b *Benchmark) RunFig7() Fig7Row {
	res := core.Explore(b.Spec(), checker.Config{}, b.Progs(b.Orders())[0])
	return Fig7Row{
		Name:            b.Name,
		Executions:      res.Executions,
		Feasible:        res.Feasible,
		Elapsed:         res.Elapsed,
		PaperExecutions: b.PaperExecutions,
		PaperFeasible:   b.PaperFeasible,
		PaperTime:       b.PaperTime,
	}
}

// Fig8Row is one measured row of Figure 8.
type Fig8Row struct {
	Name                               string
	Injections                         int
	Builtin, Admissibility, Assertion  int
	Detected                           int
	Missed                             []string
	PaperInjections, PaperBuiltin      int
	PaperAdmissibility, PaperAssertion int
	PaperRatePercent                   int
}

// RatePercent returns the measured detection rate, or 0 when the row had
// no injections (rendered as "n/a" by FormatFig8).
func (r Fig8Row) RatePercent() int {
	if r.Injections == 0 {
		return 0
	}
	return r.Detected * 100 / r.Injections
}

// RunFig8 runs the §6.4.2 injection experiment: every one-step weakening
// of every exercised site, classified by the first detection channel in
// the paper's priority order (built-in, then admissibility, then
// assertion). The trials are independent and run on opts' worker pool;
// the row is folded in weakening order, so Missed ordering and every
// count are deterministic.
func (b *Benchmark) RunFig8(opts Options) Fig8Row {
	row := Fig8Row{
		Name:               b.Name,
		PaperInjections:    b.PaperInjections,
		PaperBuiltin:       b.PaperBuiltin,
		PaperAdmissibility: b.PaperAdmissibility,
		PaperAssertion:     b.PaperAssertion,
		PaperRatePercent:   b.PaperRatePercent,
	}
	defaults := b.Orders()
	weaks := defaults.Weakenings()
	hits := make([]*checker.Failure, len(weaks))
	forEach(opts.workerCount(), len(weaks), func(i int) {
		for _, prog := range b.Progs(weaks[i]) {
			res := core.Explore(b.Spec(), checker.Config{StopAtFirst: true}, prog)
			if f := res.FirstFailure(); f != nil {
				hits[i] = f
				break
			}
		}
	})
	for i, weak := range weaks {
		row.Injections++
		hit := hits[i]
		switch {
		case hit == nil:
			row.Missed = append(row.Missed, describeWeakening(defaults, weak))
		case hit.Kind.BuiltIn():
			row.Builtin++
			row.Detected++
		case hit.Kind == checker.FailAdmissibility:
			row.Admissibility++
			row.Detected++
		default:
			row.Assertion++
			row.Detected++
		}
	}
	return row
}

// RunAllFig7 measures every Figure 7 row, exploring the independent rows
// on opts' worker pool; the returned slice is in Benchmarks() order.
func RunAllFig7(opts Options) []Fig7Row {
	bs := Benchmarks()
	rows := make([]Fig7Row, len(bs))
	forEach(opts.workerCount(), len(bs), func(i int) {
		rows[i] = bs[i].RunFig7()
	})
	return rows
}

// RunAllFig8 measures every Figure 8 row in Benchmarks() order. Rows run
// one at a time; each row's weakening trials use opts' worker pool.
func RunAllFig8(opts Options) []Fig8Row {
	bs := Benchmarks()
	rows := make([]Fig8Row, len(bs))
	for i, b := range bs {
		rows[i] = b.RunFig8(opts)
	}
	return rows
}

func describeWeakening(defaults, weak *memmodel.OrderTable) string {
	for _, s := range defaults.Sites() {
		if weak.Get(s.Name) != s.Default {
			return fmt.Sprintf("%s: %s -> %s", s.Name, s.Default, weak.Get(s.Name))
		}
	}
	return "?"
}

// FormatFig7 renders the Figure 7 table.
func FormatFig7(rows []Fig7Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s %12s %10s %10s   %s\n", "Benchmark", "# Executions", "# Feasible", "Time", "(paper: exec/feasible/time)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-18s %12d %10d %10s   (%d / %d / %ss)\n",
			r.Name, r.Executions, r.Feasible, r.Elapsed.Round(time.Millisecond),
			r.PaperExecutions, r.PaperFeasible, r.PaperTime)
	}
	return b.String()
}

// FormatFig8 renders the Figure 8 table.
func FormatFig8(rows []Fig8Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s %6s %9s %14s %11s %6s   %s\n",
		"Benchmark", "# Inj", "# Builtin", "# Admissibility", "# Assertion", "Rate", "(paper: inj/bi/adm/asr/rate)")
	ti, td := 0, 0
	pi, pd := 0, 0
	for _, r := range rows {
		rate := "n/a"
		if r.Injections > 0 {
			rate = fmt.Sprintf("%d%%", r.RatePercent())
		}
		fmt.Fprintf(&b, "%-18s %6d %9d %14d %11d %6s   (%d/%d/%d/%d/%d%%)\n",
			r.Name, r.Injections, r.Builtin, r.Admissibility, r.Assertion, rate,
			r.PaperInjections, r.PaperBuiltin, r.PaperAdmissibility, r.PaperAssertion, r.PaperRatePercent)
		for _, m := range r.Missed {
			fmt.Fprintf(&b, "%-18s   missed: %s\n", "", m)
		}
		ti += r.Injections
		td += r.Detected
		pi += r.PaperInjections
		pd += r.PaperInjections * r.PaperRatePercent / 100
	}
	fmt.Fprintf(&b, "%-18s %6d  detected %d (%d%%)   paper: %d injections, %d detected (93%%)\n",
		"Total", ti, td, td*100/max(ti, 1), pi, pd)
	return b.String()
}
