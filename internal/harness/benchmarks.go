package harness

import (
	"repro/internal/checker"
	"repro/internal/core"
	"repro/internal/memmodel"
	"repro/internal/structures/chaselev"
	"repro/internal/structures/linuxrwlock"
	"repro/internal/structures/lockfreehash"
	"repro/internal/structures/mcslock"
	"repro/internal/structures/mpmc"
	"repro/internal/structures/msqueue"
	"repro/internal/structures/rcu"
	"repro/internal/structures/seqlock"
	"repro/internal/structures/spsc"
	"repro/internal/structures/ticketlock"
)

// Benchmarks returns the ten Figure 7/8 benchmarks with their paper
// numbers and unit-test workloads (≤3 threads, a few calls per thread,
// per §6.4's "Limitation of Unit Tests").
func Benchmarks() []*Benchmark {
	return []*Benchmark{
		chaselevBenchmark(),
		spscBenchmark(),
		rcuBenchmark(),
		lockfreehashBenchmark(),
		mcslockBenchmark(),
		mpmcBenchmark(),
		msqueueBenchmark(),
		linuxrwlockBenchmark(),
		seqlockBenchmark(),
		ticketlockBenchmark(),
	}
}

// BenchmarkByName returns the named benchmark, or nil.
func BenchmarkByName(name string) *Benchmark {
	for _, b := range Benchmarks() {
		if b.Name == name {
			return b
		}
	}
	return nil
}

func chaselevBenchmark() *Benchmark {
	return &Benchmark{
		Name:   "Chase-Lev Deque",
		Ops:    chaselev.FuzzOps,
		Spec:   func() *core.Spec { return chaselev.Spec("d") },
		Orders: chaselev.DefaultOrders,
		Progs: func(ord *memmodel.OrderTable) []func(*checker.Thread) {
			resize := func(root *checker.Thread) {
				d := chaselev.New(root, "d", ord, 2)
				owner := root.Spawn("owner", func(tt *checker.Thread) {
					d.Push(tt, 1)
					d.Push(tt, 2)
					d.Push(tt, 3) // forces a resize
					d.Take(tt)
					d.Take(tt)
				})
				thief := root.Spawn("thief", func(tt *checker.Thread) {
					d.Steal(tt)
					d.Steal(tt)
				})
				root.Join(owner)
				root.Join(thief)
			}
			last := func(root *checker.Thread) {
				d := chaselev.New(root, "d", ord, 2)
				var got, stole memmodel.Value
				owner := root.Spawn("owner", func(tt *checker.Thread) {
					d.Push(tt, 7)
					got = d.Take(tt)
				})
				thief := root.Spawn("thief", func(tt *checker.Thread) {
					stole = d.Steal(tt)
				})
				root.Join(owner)
				root.Join(thief)
				root.Assert(got == chaselev.Empty || stole == chaselev.Empty, "element duplicated")
			}
			return []func(*checker.Thread){last, resize}
		},
		UndetectableSites: map[string]bool{
			chaselev.SiteTakeCASTop:   true, // §6.4.3: confirmed overly strong
			chaselev.SitePushLoadTop:  true, // mo-anomaly only (DESIGN.md lim. 2)
			chaselev.SiteStealLoadTop: true, // mo-anomaly only
			chaselev.SiteStealCASTop:  true, // mo-anomaly only
		},
		PaperExecutions: 893, PaperFeasible: 158, PaperTime: "0.10",
		PaperInjections: 7, PaperBuiltin: 3, PaperAdmissibility: 0, PaperAssertion: 4, PaperRatePercent: 100,
	}
}

func spscBenchmark() *Benchmark {
	return &Benchmark{
		Name:   "SPSC Queue",
		Ops:    spsc.FuzzOps,
		Spec:   func() *core.Spec { return spsc.Spec("q") },
		Orders: spsc.DefaultOrders,
		Progs: func(ord *memmodel.OrderTable) []func(*checker.Thread) {
			return []func(*checker.Thread){func(root *checker.Thread) {
				q := spsc.New(root, "q", ord)
				p := root.Spawn("p", func(tt *checker.Thread) {
					q.Enq(tt, 1)
					q.Enq(tt, 2)
				})
				c := root.Spawn("c", func(tt *checker.Thread) {
					v1 := q.Deq(tt)
					v2 := q.Deq(tt)
					tt.Assert(v1 == 1 && v2 == 2, "FIFO broken: %d %d", v1, v2)
				})
				root.Join(p)
				root.Join(c)
			}}
		},
		PaperExecutions: 18, PaperFeasible: 15, PaperTime: "0.01",
		PaperInjections: 2, PaperBuiltin: 0, PaperAdmissibility: 0, PaperAssertion: 2, PaperRatePercent: 100,
	}
}

func rcuBenchmark() *Benchmark {
	return &Benchmark{
		Name:   "RCU",
		Ops:    rcu.FuzzOps,
		Spec:   func() *core.Spec { return rcu.Spec("r", 100) },
		Orders: rcu.DefaultOrders,
		Progs: func(ord *memmodel.OrderTable) []func(*checker.Thread) {
			return []func(*checker.Thread){func(root *checker.Thread) {
				r := rcu.New(root, "r", ord, 100)
				w := root.Spawn("w", func(tt *checker.Thread) { r.Update(tt, 200) })
				rd := root.Spawn("rd", func(tt *checker.Thread) {
					v := r.Read(tt)
					tt.Assert(v == 100 || v == 200, "invalid read: %d", v)
				})
				root.Join(w)
				root.Join(rd)
				root.Assert(r.Read(root) == 200, "final read")
			}}
		},
		PaperExecutions: 47, PaperFeasible: 18, PaperTime: "0.01",
		PaperInjections: 3, PaperBuiltin: 3, PaperAdmissibility: 0, PaperAssertion: 0, PaperRatePercent: 100,
	}
}

func lockfreehashBenchmark() *Benchmark {
	return &Benchmark{
		Name:   "Lockfree Hashtable",
		Ops:    lockfreehash.FuzzOps,
		Spec:   func() *core.Spec { return lockfreehash.Spec("h") },
		Orders: lockfreehash.DefaultOrders,
		Progs: func(ord *memmodel.OrderTable) []func(*checker.Thread) {
			contended := func(root *checker.Thread) {
				tbl := lockfreehash.New(root, "h", ord, 4)
				a := root.Spawn("a", func(tt *checker.Thread) {
					tbl.Put(tt, 1, 10)
					tbl.Get(tt, 1)
				})
				b := root.Spawn("b", func(tt *checker.Thread) {
					tbl.Put(tt, 1, 11)
					tbl.Get(tt, 1)
				})
				root.Join(a)
				root.Join(b)
			}
			return []func(*checker.Thread){contended}
		},
		UndetectableSites: map[string]bool{
			lockfreehash.SitePutStoreKey: true, // repaired by the lock fallback
			lockfreehash.SiteGetLoadKey:  true, // repaired by the lock fallback
		},
		PaperExecutions: 6, PaperFeasible: 6, PaperTime: "0.01",
		PaperInjections: 4, PaperBuiltin: 2, PaperAdmissibility: 0, PaperAssertion: 2, PaperRatePercent: 100,
	}
}

func mcslockBenchmark() *Benchmark {
	return &Benchmark{
		Name:   "MCS Lock",
		Ops:    mcslock.FuzzOps,
		Spec:   func() *core.Spec { return mcslock.Spec("l") },
		Orders: mcslock.DefaultOrders,
		Progs: func(ord *memmodel.OrderTable) []func(*checker.Thread) {
			spec := func(root *checker.Thread) {
				l := mcslock.New(root, "l", ord)
				body := func(tt *checker.Thread) {
					l.Lock(tt)
					l.Unlock(tt)
				}
				a := root.Spawn("a", body)
				b := root.Spawn("b", body)
				root.Join(a)
				root.Join(b)
			}
			data := func(root *checker.Thread) {
				l := mcslock.New(root, "l", ord)
				cnt := root.NewPlainInit("cnt", 0)
				body := func(tt *checker.Thread) {
					l.Lock(tt)
					cnt.Store(tt, cnt.Load(tt)+1)
					l.Unlock(tt)
				}
				a := root.Spawn("a", body)
				b := root.Spawn("b", body)
				root.Join(a)
				root.Join(b)
				root.Assert(cnt.Load(root) == 2, "lost update")
			}
			return []func(*checker.Thread){spec, data}
		},
		PaperExecutions: 21126, PaperFeasible: 13786, PaperTime: "3.00",
		PaperInjections: 8, PaperBuiltin: 4, PaperAdmissibility: 0, PaperAssertion: 4, PaperRatePercent: 100,
	}
}

func mpmcBenchmark() *Benchmark {
	return &Benchmark{
		Name:   "MPMC Queue",
		Ops:    mpmc.FuzzOps,
		Spec:   func() *core.Spec { return mpmc.Spec("q", 2) },
		Orders: mpmc.DefaultOrders,
		Progs: func(ord *memmodel.OrderTable) []func(*checker.Thread) {
			reuse := func(root *checker.Thread) {
				q := mpmc.New(root, "q", ord, 2)
				a := root.Spawn("a", func(tt *checker.Thread) {
					q.Enq(tt, 1)
					q.Enq(tt, 2)
					q.Enq(tt, 3)
				})
				b := root.Spawn("b", func(tt *checker.Thread) {
					q.Deq(tt)
					q.Deq(tt)
					q.Deq(tt)
				})
				root.Join(a)
				root.Join(b)
			}
			return []func(*checker.Thread){reuse}
		},
		UndetectableSites: map[string]bool{
			mpmc.SiteEnqFAddPos:   true, // rollover protection (§6.4.2 story)
			mpmc.SiteDeqFAddPos:   true,
			mpmc.SiteEnqStoreData: true, // redundant with the sequence handoff
			mpmc.SiteDeqLoadData:  true,
		},
		PaperExecutions: 2911, PaperFeasible: 1274, PaperTime: "4.83",
		PaperInjections: 8, PaperBuiltin: 0, PaperAdmissibility: 4, PaperAssertion: 0, PaperRatePercent: 50,
	}
}

func msqueueBenchmark() *Benchmark {
	return &Benchmark{
		Name:   "M&S Queue",
		Ops:    msqueue.FuzzOps,
		Spec:   func() *core.Spec { return msqueue.Spec("q") },
		Orders: msqueue.DefaultOrders,
		Progs: func(ord *memmodel.OrderTable) []func(*checker.Thread) {
			symmetric := func(root *checker.Thread) {
				q := msqueue.New(root, "q", ord)
				a := root.Spawn("a", func(tt *checker.Thread) {
					q.Enq(tt, 1)
					q.Deq(tt)
				})
				b := root.Spawn("b", func(tt *checker.Thread) {
					q.Enq(tt, 2)
					q.Deq(tt)
				})
				root.Join(a)
				root.Join(b)
				q.Deq(root)
			}
			split := func(root *checker.Thread) {
				q := msqueue.New(root, "q", ord)
				p := root.Spawn("p", func(tt *checker.Thread) {
					q.Enq(tt, 1)
					q.Enq(tt, 2)
				})
				c := root.Spawn("c", func(tt *checker.Thread) {
					q.Deq(tt)
					q.Deq(tt)
				})
				root.Join(p)
				root.Join(c)
				q.Deq(root)
			}
			return []func(*checker.Thread){symmetric, split}
		},
		PaperExecutions: 296, PaperFeasible: 150, PaperTime: "0.03",
		PaperInjections: 10, PaperBuiltin: 3, PaperAdmissibility: 0, PaperAssertion: 7, PaperRatePercent: 100,
	}
}

func linuxrwlockBenchmark() *Benchmark {
	return &Benchmark{
		Name:   "Linux RW Lock",
		Ops:    linuxrwlock.FuzzOps,
		Spec:   func() *core.Spec { return linuxrwlock.Spec("l") },
		Orders: linuxrwlock.DefaultOrders,
		Progs: func(ord *memmodel.OrderTable) []func(*checker.Thread) {
			mixed := func(root *checker.Thread) {
				l := linuxrwlock.New(root, "l", ord)
				a := root.Spawn("a", func(tt *checker.Thread) {
					l.ReadLock(tt)
					l.ReadUnlock(tt)
					l.WriteLock(tt)
					l.WriteUnlock(tt)
				})
				b := root.Spawn("b", func(tt *checker.Thread) {
					l.WriteLock(tt)
					l.WriteUnlock(tt)
					if l.WriteTryLock(tt) == 1 {
						l.WriteUnlock(tt)
					}
				})
				root.Join(a)
				root.Join(b)
			}
			trylock := func(root *checker.Thread) {
				l := linuxrwlock.New(root, "l", ord)
				a := root.Spawn("a", func(tt *checker.Thread) {
					l.WriteLock(tt)
					l.WriteUnlock(tt)
				})
				b := root.Spawn("b", func(tt *checker.Thread) {
					if l.ReadTryLock(tt) == 1 {
						l.ReadUnlock(tt)
					}
				})
				root.Join(a)
				root.Join(b)
			}
			return []func(*checker.Thread){mixed, trylock}
		},
		PaperExecutions: 69386, PaperFeasible: 1822, PaperTime: "13.71",
		PaperInjections: 8, PaperBuiltin: 0, PaperAdmissibility: 0, PaperAssertion: 8, PaperRatePercent: 100,
	}
}

func seqlockBenchmark() *Benchmark {
	return &Benchmark{
		Name:   "Seqlock",
		Ops:    seqlock.FuzzOps,
		Spec:   func() *core.Spec { return seqlock.Spec("s") },
		Orders: seqlock.DefaultOrders,
		Progs: func(ord *memmodel.OrderTable) []func(*checker.Thread) {
			return []func(*checker.Thread){func(root *checker.Thread) {
				s := seqlock.New(root, "s", ord)
				w := root.Spawn("w", func(tt *checker.Thread) {
					s.Write(tt, 10)
					s.Write(tt, 20)
				})
				r := root.Spawn("r", func(tt *checker.Thread) { s.Read(tt) })
				root.Join(w)
				root.Join(r)
				root.Assert(s.Read(root) == 20, "final read")
			}}
		},
		UndetectableSites: map[string]bool{
			seqlock.SiteWriteCASSeq: true, // mo-anomaly only (DESIGN.md lim. 2)
		},
		PaperExecutions: 89, PaperFeasible: 36, PaperTime: "0.01",
		PaperInjections: 5, PaperBuiltin: 0, PaperAdmissibility: 0, PaperAssertion: 5, PaperRatePercent: 100,
	}
}

func ticketlockBenchmark() *Benchmark {
	return &Benchmark{
		Name:   "Ticket Lock",
		Ops:    ticketlock.FuzzOps,
		Spec:   func() *core.Spec { return ticketlock.Spec("l") },
		Orders: ticketlock.DefaultOrders,
		Progs: func(ord *memmodel.OrderTable) []func(*checker.Thread) {
			return []func(*checker.Thread){func(root *checker.Thread) {
				l := ticketlock.New(root, "l", ord)
				body := func(tt *checker.Thread) {
					l.Lock(tt)
					l.Unlock(tt)
				}
				a := root.Spawn("a", body)
				b := root.Spawn("b", body)
				root.Join(a)
				root.Join(b)
			}}
		},
		PaperExecutions: 1790, PaperFeasible: 978, PaperTime: "0.17",
		PaperInjections: 2, PaperBuiltin: 0, PaperAdmissibility: 0, PaperAssertion: 2, PaperRatePercent: 100,
	}
}
